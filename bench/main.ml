(* Bechamel benchmarks: one measured workload per paper artefact
   (tables 1 and 2, the figure-1 pathologies, the section-6.1 baseline)
   plus microbenchmarks of every substrate the artefacts are built on.

     dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Satg_logic
open Satg_bdd
open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_sg
open Satg_stg
open Satg_core
open Satg_bench

let get_entry name = Option.get (Suite.find name)

let get_circuit synth name =
  match synth (get_entry name) with
  | Ok c -> c
  | Error m -> failwith m

(* --- substrate microbenches ---------------------------------------------- *)

let bench_bdd =
  Test.make ~name:"bdd/relational-product"
    (Staged.stage (fun () ->
         let m = Bdd.create ~nvars:24 () in
         let rel = ref (Bdd.one m) in
         for i = 0 to 7 do
           rel :=
             Bdd.and_ m !rel
               (Bdd.iff m (Bdd.var m (3 * i)) (Bdd.var m ((3 * i) + 1)))
         done;
         let src = Bdd.var m 0 in
         ignore
           (Bdd.and_exists m
              ~vars:(List.init 8 (fun i -> 3 * i))
              src !rel)))

let bench_qm =
  Test.make ~name:"logic/quine-mccluskey"
    (Staged.stage (fun () ->
         ignore (Qm.minimize ~n:4 ~on:[ 4; 8; 10; 11; 12; 15 ] ~dc:[ 9; 14 ]);
         ignore
           (Qm.minimize ~n:6
              ~on:[ 0; 3; 5; 9; 17; 21; 29; 33; 41; 45; 53; 61; 62 ]
              ~dc:[ 2; 12; 22; 32; 42; 52 ])))

let bench_ternary =
  let c = get_circuit Suite.speed_independent "master-read" in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"sim/ternary-test-cycle"
    (Staged.stage (fun () ->
         ignore
           (Ternary_sim.apply_vector c
              (Ternary_sim.of_bool_state reset)
              [| true; false; false |])))

let bench_parallel =
  let c = get_circuit Suite.speed_independent "master-read" in
  let reset = Option.get (Circuit.initial c) in
  (* the whole universe in one multi-word pack — no 62-fault cap *)
  let faults =
    Array.of_list (Fault.universe_input_sa c @ Fault.universe_output_sa c)
  in
  Test.make ~name:"sim/parallel-fault-pack"
    (Staged.stage (fun () ->
         let pack = Parallel_sim.create c faults ~reset in
         Parallel_sim.apply_vector pack [| true; false; false |];
         Parallel_sim.apply_vector pack [| true; true; false |]))

let bench_exact_exploration =
  let c = Figures.mutex_latch () in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"sim/exact-exploration"
    (Staged.stage (fun () ->
         ignore (Async_sim.apply_vector c ~k:24 reset [| true; true |])))

let bench_stg =
  let e = get_entry "ebergen" in
  Test.make ~name:"stg/explore+synthesize"
    (Staged.stage (fun () ->
         match Synth.complex_gate e.Suite.stg with
         | Ok _ -> ()
         | Error m -> failwith m))

let bench_symbolic =
  let c = Figures.celem_handshake () in
  Test.make ~name:"sg/symbolic-cssg"
    (Staged.stage (fun () -> ignore (Symbolic.build c)))

(* --- figure artefacts ------------------------------------------------------ *)

let bench_fig1a =
  let c = Figures.fig1a () in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"fig1a/non-confluence-detection"
    (Staged.stage (fun () ->
         match Async_sim.apply_vector c ~k:64 reset [| true; false |] with
         | Async_sim.Non_confluent _ -> ()
         | _ -> failwith "fig1a misclassified"))

let bench_fig1b =
  let c = Figures.fig1b () in
  let reset = Option.get (Circuit.initial c) in
  Test.make ~name:"fig1b/oscillation-detection"
    (Staged.stage (fun () ->
         match Async_sim.classify_vector c ~k:64 reset [| true |] with
         | Async_sim.C_invalid _ -> ()
         | _ -> failwith "fig1b misclassified"))

let bench_fig2 =
  let c = Figures.mutex_latch () in
  Test.make ~name:"fig2/cssg-construction"
    (Staged.stage (fun () -> ignore (Explicit.build c)))

(* --- table artefacts ------------------------------------------------------- *)

(* One full table row (synthesis done): CSSG + ATPG on both universes. *)
let table_row circuit () =
  let g = Explicit.build circuit in
  let out_r =
    Engine.run ~cssg:g circuit ~faults:(Fault.universe_output_sa circuit)
  in
  let in_r =
    Engine.run ~cssg:g circuit ~faults:(Fault.universe_input_sa circuit)
  in
  ignore (Engine.detected out_r + Engine.detected in_r)

let bench_table1_small =
  let c = get_circuit Suite.speed_independent "vbe6a" in
  Test.make ~name:"table1/row-vbe6a" (Staged.stage (table_row c))

let bench_table1_large =
  let c = get_circuit Suite.speed_independent "master-read" in
  Test.make ~name:"table1/row-master-read" (Staged.stage (table_row c))

let bench_table2_clean =
  let c = get_circuit Suite.bounded_delay "hazard" in
  Test.make ~name:"table2/row-hazard" (Staged.stage (table_row c))

let bench_table2_redundant =
  (* the redundancy showcase: undetectable-fault searches dominate *)
  let c = get_circuit Suite.bounded_delay "vbe6a" in
  Test.make ~name:"table2/row-vbe6a-redundant" (Staged.stage (table_row c))

let bench_timed_replay =
  let c = get_circuit Suite.speed_independent "ebergen" in
  let reset = Option.get (Circuit.initial c) in
  let delays = Timed_sim.random_delays c ~seed:9 in
  Test.make ~name:"sim/timed-burst-replay"
    (Staged.stage (fun () ->
         let sim = Timed_sim.create c ~delays reset in
         ignore (Timed_sim.apply_vector sim [| true; false |]);
         ignore (Timed_sim.apply_vector sim [| false; false |])))

let bench_delay_fault =
  let c = get_circuit Suite.speed_independent "vbe6a" in
  let g = Explicit.build c in
  Test.make ~name:"delay/row-vbe6a"
    (Staged.stage (fun () -> ignore (Delay_fault.run g)))

let bench_baseline =
  let c = get_circuit Suite.speed_independent "vbe6a" in
  let g = Explicit.build c in
  let faults = Fault.universe_output_sa c in
  Test.make ~name:"baseline/row-vbe6a"
    (Staged.stage (fun () -> ignore (Baseline.run c ~cssg:g ~faults)))

(* --- parallel fault-sim throughput ----------------------------------------- *)

(* Head-to-head: one multi-word Parallel_sim pack over the whole fault
   universe versus one scalar Ternary_sim run per fault, on the same
   deterministic vector stream.  The result (patterns/sec each way and
   the speedup) is written to BENCH_parallel_sim.json — the first data
   point of the perf trajectory (see docs/PERF.md). *)

let toggle_farm_fallback () =
  let n = 14 in
  let b = Circuit.Builder.create "toggle_farm" in
  let xs =
    List.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "X%d" i))
  in
  let ys =
    List.mapi
      (fun i x ->
        Circuit.Builder.add_gate b ~name:(Printf.sprintf "Y%d" i) Gatefunc.Buf
          [ x ])
      xs
  in
  List.iter (Circuit.Builder.mark_output b) ys;
  let c = Circuit.Builder.finalize b in
  Circuit.with_initial c (Array.make (Circuit.n_nodes c) false)

let load_netlist path =
  if Sys.file_exists path then
    match Parser.parse_file path with
    | Ok c -> c
    | Error m -> failwith (path ^ ": " ^ m)
  else toggle_farm_fallback ()

(* Deterministic vector stream (xorshift), identical for both sides. *)
let vector_stream n_inputs n =
  let state = ref 0x2545F4914F6CDD1D in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x;
    x
  in
  List.init n (fun _ ->
      let bits = next () in
      Array.init n_inputs (fun i -> (bits lsr i) land 1 = 1))

(* Wall-clock a thunk, repeating until the total is long enough to
   trust (>= 0.2 s) and reporting seconds per repetition. *)
let time_thunk f =
  let rec go reps acc =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    let acc = acc +. dt in
    if acc >= 0.2 || reps >= 9 then acc /. float_of_int (reps + 1)
    else go (reps + 1) acc
  in
  go 0 0.0

let fault_sim_bench path =
  let c = load_netlist path in
  let reset =
    match Circuit.initial c with
    | Some s -> s
    | None -> failwith "fault-sim bench: netlist has no reset state"
  in
  let faults =
    Array.of_list (Fault.universe_input_sa c @ Fault.universe_output_sa c)
  in
  let n_faults = Array.length faults in
  let n_vectors = 64 in
  let vectors = vector_stream (Circuit.n_inputs c) n_vectors in
  let parallel_seconds =
    time_thunk (fun () ->
        let pack = Parallel_sim.create c faults ~reset in
        List.iter (fun v -> Parallel_sim.apply_vector pack v) vectors)
  in
  let scalar_seconds =
    time_thunk (fun () ->
        Array.iter
          (fun f ->
            let fc = Fault.inject c f in
            let st =
              ref
                (Ternary_sim.of_bool_state (Fault.initial_faulty_state c f reset))
            in
            let v0 = Circuit.input_vector_of_state c reset in
            st := Ternary_sim.apply_vector fc !st v0;
            List.iter (fun v -> st := Ternary_sim.apply_vector fc !st v) vectors)
          faults)
  in
  (* Fault-dropping detection pass (good machine simulated alongside),
     for the record: how many of the universe the stream catches. *)
  let pack = Parallel_sim.create c faults ~reset in
  let good = ref (Ternary_sim.of_bool_state reset) in
  let detected = ref 0 in
  List.iter
    (fun v ->
      if Parallel_sim.n_live pack > 0 then begin
        Parallel_sim.apply_vector pack v;
        good := Ternary_sim.apply_vector c !good v;
        detected :=
          !detected
          + List.length
              (Parallel_sim.detected pack
                 ~good_outputs:(Ternary_sim.outputs c !good))
      end)
    vectors;
  let patterns = float_of_int (n_faults * n_vectors) in
  let parallel_pps = patterns /. parallel_seconds in
  let scalar_pps = patterns /. scalar_seconds in
  let speedup = scalar_seconds /. parallel_seconds in
  let json =
    Printf.sprintf
      {|{
  "bench": "parallel_fault_sim",
  "circuit": "%s",
  "n_faults": %d,
  "n_words": %d,
  "n_vectors": %d,
  "detected_by_stream": %d,
  "parallel": { "seconds": %.6f, "patterns_per_sec": %.1f },
  "scalar_ternary": { "seconds": %.6f, "patterns_per_sec": %.1f },
  "speedup": %.2f
}
|}
      (Circuit.name c) n_faults
      (Parallel_sim.n_words pack)
      n_vectors !detected parallel_seconds parallel_pps scalar_seconds
      scalar_pps speedup
  in
  let oc = open_out "BENCH_parallel_sim.json" in
  output_string oc json;
  close_out oc;
  Printf.printf
    "parallel fault sim (%s): %d faults x %d vectors\n\
    \  pack:   %8.4f s  (%10.1f patterns/s, %d words)\n\
    \  scalar: %8.4f s  (%10.1f patterns/s)\n\
    \  speedup: %.2fx  -> BENCH_parallel_sim.json\n"
    (Circuit.name c) n_faults n_vectors parallel_seconds parallel_pps
    (Parallel_sim.n_words pack)
    scalar_seconds scalar_pps speedup

(* --- BDD engine throughput -------------------------------------------------- *)

(* Head-to-head: the int-packed manager (open-addressing unique table,
   direct-mapped shared op cache) versus the pre-rewrite design
   (tuple-keyed Hashtbl unique table, one unbounded Hashtbl cache per
   operation), kept here as the frozen baseline.  Both sides run the
   same netlist-derived workload through a shared formula builder, so
   the logical work is identical; the result goes to BENCH_bdd.json. *)

module Legacy = struct
  type t = {
    mutable var_ : int array;
    mutable low : int array;
    mutable high : int array;
    mutable n : int;
    unique : (int * int * int, int) Hashtbl.t;
    and_c : (int * int, int) Hashtbl.t;
    or_c : (int * int, int) Hashtbl.t;
    xor_c : (int * int, int) Hashtbl.t;
    not_c : (int, int) Hashtbl.t;
    ite_c : (int * int * int, int) Hashtbl.t;
    mutable ops : int;  (* cache probes, the apply-throughput unit *)
  }

  let create () =
    let var_ = Array.make 1024 max_int in
    {
      var_;
      low = Array.make 1024 (-1);
      high = Array.make 1024 (-1);
      n = 2;
      unique = Hashtbl.create 1024;
      and_c = Hashtbl.create 256;
      or_c = Hashtbl.create 256;
      xor_c = Hashtbl.create 256;
      not_c = Hashtbl.create 256;
      ite_c = Hashtbl.create 256;
      ops = 0;
    }

  let grow m =
    let cap = 2 * Array.length m.var_ in
    let g a def =
      let b = Array.make cap def in
      Array.blit a 0 b 0 m.n;
      b
    in
    m.var_ <- g m.var_ max_int;
    m.low <- g m.low (-1);
    m.high <- g m.high (-1)

  let mk m v l h =
    if l = h then l
    else
      match Hashtbl.find_opt m.unique (v, l, h) with
      | Some u -> u
      | None ->
        if m.n >= Array.length m.var_ then grow m;
        let u = m.n in
        m.n <- u + 1;
        m.var_.(u) <- v;
        m.low.(u) <- l;
        m.high.(u) <- h;
        Hashtbl.add m.unique (v, l, h) u;
        u

  let level m u = if u < 2 then max_int else m.var_.(u)
  let var m v = mk m v 0 1

  let rec not_ m a =
    if a < 2 then 1 - a
    else begin
      m.ops <- m.ops + 1;
      match Hashtbl.find_opt m.not_c a with
      | Some r -> r
      | None ->
        let r = mk m m.var_.(a) (not_ m m.low.(a)) (not_ m m.high.(a)) in
        Hashtbl.add m.not_c a r;
        r
    end

  let rec apply m op cache a b =
    let shortcut =
      match op with
      | `And ->
        if a = 0 || b = 0 then Some 0
        else if a = 1 then Some b
        else if b = 1 then Some a
        else if a = b then Some a
        else None
      | `Or ->
        if a = 1 || b = 1 then Some 1
        else if a = 0 then Some b
        else if b = 0 then Some a
        else if a = b then Some a
        else None
      | `Xor ->
        if a = 0 then Some b
        else if b = 0 then Some a
        else if a = 1 then Some (not_ m b)
        else if b = 1 then Some (not_ m a)
        else if a = b then Some 0
        else None
    in
    match shortcut with
    | Some r -> r
    | None -> begin
      m.ops <- m.ops + 1;
      let key = if a <= b then (a, b) else (b, a) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        let va = level m a and vb = level m b in
        let v = min va vb in
        let a0, a1 = if va = v then (m.low.(a), m.high.(a)) else (a, a) in
        let b0, b1 = if vb = v then (m.low.(b), m.high.(b)) else (b, b) in
        let r = mk m v (apply m op cache a0 b0) (apply m op cache a1 b1) in
        Hashtbl.add cache key r;
        r
    end

  let and_ m a b = apply m `And m.and_c a b
  let or_ m a b = apply m `Or m.or_c a b
  let xor_ m a b = apply m `Xor m.xor_c a b

  let rec ite m f g h =
    if f = 1 then g
    else if f = 0 then h
    else if g = h then g
    else begin
      m.ops <- m.ops + 1;
      match Hashtbl.find_opt m.ite_c (f, g, h) with
      | Some r -> r
      | None ->
        let v = min (level m f) (min (level m g) (level m h)) in
        let cof u = if level m u = v then (m.low.(u), m.high.(u)) else (u, u) in
        let f0, f1 = cof f in
        let g0, g1 = cof g in
        let h0, h1 = cof h in
        let r = mk m v (ite m f0 g0 h0) (ite m f1 g1 h1) in
        Hashtbl.add m.ite_c (f, g, h) r;
        r
    end
end

(* Manager-agnostic boolean constructors, so both engines build the
   exact same formulas. *)
type 'b bool_ops = {
  b_zero : 'b;
  b_one : 'b;
  b_var : int -> 'b;
  b_and : 'b -> 'b -> 'b;
  b_or : 'b -> 'b -> 'b;
  b_xor : 'b -> 'b -> 'b;
  b_not : 'b -> 'b;
  b_ite : 'b -> 'b -> 'b -> 'b;
}

(* A gate's output function over current-value variables (var 2i for
   node i; 2i+1 is reserved for its next value). *)
let func_formula ops c gid =
  let fanin = Circuit.fanins c gid in
  let in_ p = ops.b_var (2 * fanin.(p)) in
  let fold op unit_ =
    let acc = ref unit_ in
    Array.iteri (fun p _ -> acc := op !acc (in_ p)) fanin;
    !acc
  in
  match Circuit.func c gid with
  | Gatefunc.Buf -> in_ 0
  | Gatefunc.Not -> ops.b_not (in_ 0)
  | Gatefunc.And -> fold ops.b_and ops.b_one
  | Gatefunc.Or -> fold ops.b_or ops.b_zero
  | Gatefunc.Nand -> ops.b_not (fold ops.b_and ops.b_one)
  | Gatefunc.Nor -> ops.b_not (fold ops.b_or ops.b_zero)
  | Gatefunc.Xor -> fold ops.b_xor ops.b_zero
  | Gatefunc.Xnor -> ops.b_not (fold ops.b_xor ops.b_zero)
  | Gatefunc.Mux -> ops.b_ite (in_ 0) (in_ 1) (in_ 2)
  | Gatefunc.Celem ->
    let all = fold ops.b_and ops.b_one in
    let any = fold ops.b_or ops.b_zero in
    ops.b_or all (ops.b_and (ops.b_var (2 * gid)) any)
  | Gatefunc.Const b -> if b then ops.b_one else ops.b_zero
  | Gatefunc.Sop cover ->
    List.fold_left
      (fun acc cube ->
        let term = ref ops.b_one in
        Array.iteri
          (fun p l ->
            match l with
            | Cube.D -> ()
            | Cube.T -> term := ops.b_and !term (in_ p)
            | Cube.F -> term := ops.b_and !term (ops.b_not (in_ p)))
          (Cube.lits cube);
        ops.b_or acc !term)
      ops.b_zero (Cover.cubes cover)

(* The workload: build the circuit's transition relation
   (next(g) <-> f_g over all gates) and its excitation set, then a few
   ite mixes of the two — the same shapes the symbolic CSSG engine
   produces, deterministic per netlist. *)
let bdd_workload ops c =
  let iff a b = ops.b_not (ops.b_xor a b) in
  let gates = Circuit.gates c in
  let delta =
    Array.fold_left
      (fun acc gid ->
        ops.b_and acc (iff (ops.b_var ((2 * gid) + 1)) (func_formula ops c gid)))
      ops.b_one gates
  in
  let excited =
    Array.fold_left
      (fun acc gid ->
        ops.b_or acc (ops.b_xor (ops.b_var (2 * gid)) (func_formula ops c gid)))
      ops.b_zero gates
  in
  ignore (ops.b_ite excited delta (ops.b_not delta));
  ignore (ops.b_and delta (ops.b_not excited))

let packed_run c =
  let m = Bdd.create ~nvars:(2 * Circuit.n_nodes c) () in
  bdd_workload
    {
      b_zero = Bdd.zero m;
      b_one = Bdd.one m;
      b_var = Bdd.var m;
      b_and = Bdd.and_ m;
      b_or = Bdd.or_ m;
      b_xor = Bdd.xor_ m;
      b_not = Bdd.not_ m;
      b_ite = Bdd.ite m;
    }
    c;
  Bdd.stats m

let legacy_run c =
  let m = Legacy.create () in
  bdd_workload
    {
      b_zero = 0;
      b_one = 1;
      b_var = Legacy.var m;
      b_and = Legacy.and_ m;
      b_or = Legacy.or_ m;
      b_xor = Legacy.xor_ m;
      b_not = Legacy.not_ m;
      b_ite = Legacy.ite m;
    }
    c;
  m

let bdd_netlists =
  [
    "examples/netlists/celem_handshake.cct";
    "examples/netlists/mutex_latch.cct";
    "examples/netlists/ring_storm.cct";
    "examples/netlists/toggle_farm.cct";
  ]

(* --- partitioned vs monolithic symbolic builds ------------------------------ *)

(* Style and reorder head-to-heads through [Symbolic.build] itself, in
   three regimes.  The two small circuits run to completion — every
   style × reorder combination must agree on the reachable count, and
   the rows show reordering is free below the sifting trigger.
   ring_storm runs under a states-only cap, so both styles perform the
   same semantic work before tripping and the comparison isolates the
   image pipeline: partitioned never materialises R_delta, which shows
   up as a several-fold smaller retained-node footprint (asserted
   here; the per-step relational products cost somewhat more, recorded
   honestly in the timings).  toggle_farm runs under the full
   deterministic caps, where monolithic burns most of its budget
   constructing R_delta before the first image — the time-to-budget
   win for the partitioned form.  Lands in the "symbolic" section of
   BENCH_bdd.json. *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type sym_cell = {
  sc_style : string;
  sc_reorder : string;
  sc_seconds : float;
  sc_reachable : int;
  sc_truncated : bool;
  sc_live : int;
  sc_reorders : int;
  sc_swaps : int;
}

let sym_cell c ~style ~reorder ~guard_of =
  let st_name = match style with `Partitioned -> "partitioned" | `Monolithic -> "monolithic" in
  let ro_name = match reorder with Bdd.Reorder_none -> "none" | Bdd.Reorder_sift -> "sift" in
  let t, seconds =
    timed (fun () -> Symbolic.build ~style ~reorder ~guard:(guard_of ()) c)
  in
  let st = Symbolic.bdd_stats t in
  {
    sc_style = st_name;
    sc_reorder = ro_name;
    sc_seconds = seconds;
    sc_reachable = Symbolic.n_reachable t;
    sc_truncated = Symbolic.truncated t <> None;
    sc_live = Symbolic.live_nodes t;
    sc_reorders = st.Bdd.reorders;
    sc_swaps = st.Bdd.swaps;
  }

let sym_cell_json indent cell =
  Printf.sprintf
    {|%s{ "style": "%s", "reorder": "%s", "seconds": %.6f,
%s  "reachable": %d, "truncated": %b, "live_nodes": %d,
%s  "reorders": %d, "swaps": %d }|}
    indent cell.sc_style cell.sc_reorder cell.sc_seconds indent
    cell.sc_reachable cell.sc_truncated cell.sc_live indent cell.sc_reorders
    cell.sc_swaps

let sym_print cell =
  Printf.printf
    "  %-11s %-4s: %8.4f s  reachable=%d%s live=%d  (%d reorders, %d swaps)\n"
    cell.sc_style cell.sc_reorder cell.sc_seconds cell.sc_reachable
    (if cell.sc_truncated then " (truncated)" else "")
    cell.sc_live cell.sc_reorders cell.sc_swaps

(* The deterministic caps shared with the SAT race and the CI
   backend-agreement job. *)
let sat_cap_states = 500
let sat_cap_transitions = 200_000

let symbolic_style_bench () =
  (* Regime 1: uncapped small circuits, full style × reorder grid. *)
  let complete_rows =
    List.map
      (fun path ->
        let c = load_netlist path in
        let cells =
          List.map
            (fun (style, reorder) ->
              sym_cell c ~style ~reorder ~guard_of:(fun () ->
                  Satg_guard.Guard.none))
            [
              (`Partitioned, Bdd.Reorder_none);
              (`Partitioned, Bdd.Reorder_sift);
              (`Monolithic, Bdd.Reorder_none);
              (`Monolithic, Bdd.Reorder_sift);
            ]
        in
        Printf.printf "symbolic (%s): uncapped\n" (Circuit.name c);
        List.iter sym_print cells;
        (match cells with
        | first :: rest ->
          List.iter
            (fun cl ->
              if cl.sc_reachable <> first.sc_reachable || cl.sc_truncated then
                failwith
                  (Printf.sprintf
                     "%s: %s/%s disagrees on reachable states (%d vs %d)"
                     (Circuit.name c) cl.sc_style cl.sc_reorder cl.sc_reachable
                     first.sc_reachable))
            rest
        | [] -> assert false);
        Printf.sprintf
          {|      { "circuit": "%s",
        "cells": [
%s
        ] }|}
          (Circuit.name c)
          (String.concat ",\n" (List.map (sym_cell_json "          ") cells)))
      [
        "examples/netlists/celem_handshake.cct";
        "examples/netlists/mutex_latch.cct";
      ]
  in
  (* Regime 2: ring_storm under a states-only cap — equal semantic work
     on both sides, relation footprint is the partitioned win. *)
  let ring_cap = sat_cap_states in
  let ring =
    let c = load_netlist "examples/netlists/ring_storm.cct" in
    let guard_of () = Satg_guard.Guard.create ~max_states:ring_cap () in
    let part = sym_cell c ~style:`Partitioned ~reorder:Bdd.Reorder_none ~guard_of in
    let mono = sym_cell c ~style:`Monolithic ~reorder:Bdd.Reorder_none ~guard_of in
    Printf.printf "symbolic (%s): states cap %d\n" (Circuit.name c) ring_cap;
    sym_print part;
    sym_print mono;
    if part.sc_reachable <> mono.sc_reachable then
      failwith
        (Printf.sprintf "%s: styles disagree under equal state cap (%d vs %d)"
           (Circuit.name c) part.sc_reachable mono.sc_reachable);
    if mono.sc_live < part.sc_live then
      failwith
        (Printf.sprintf
           "%s: monolithic retained fewer nodes than partitioned (%d < %d)"
           (Circuit.name c) mono.sc_live part.sc_live);
    Printf.printf "  footprint ratio (mono/part): %.2fx\n"
      (float_of_int mono.sc_live /. float_of_int part.sc_live);
    Printf.sprintf
      {|      "circuit": "ring_storm",
      "max_states": %d,
      "partitioned": %s,
      "monolithic": %s,
      "footprint_ratio": %.2f|}
      ring_cap
      (sym_cell_json "" part |> String.trim)
      (sym_cell_json "" mono |> String.trim)
      (float_of_int mono.sc_live /. float_of_int part.sc_live)
  in
  (* Regime 3: toggle_farm under the full deterministic caps —
     time-to-budget, where relation construction itself is on the
     clock. *)
  let toggle =
    let c = load_netlist "examples/netlists/toggle_farm.cct" in
    let guard_of () =
      Satg_guard.Guard.create ~max_states:sat_cap_states
        ~max_transitions:sat_cap_transitions ()
    in
    let part = sym_cell c ~style:`Partitioned ~reorder:Bdd.Reorder_none ~guard_of in
    let mono = sym_cell c ~style:`Monolithic ~reorder:Bdd.Reorder_none ~guard_of in
    let part_sift = sym_cell c ~style:`Partitioned ~reorder:Bdd.Reorder_sift ~guard_of in
    Printf.printf "symbolic (%s): caps %d states / %d transitions\n"
      (Circuit.name c) sat_cap_states sat_cap_transitions;
    sym_print part;
    sym_print mono;
    sym_print part_sift;
    Printf.printf "  time-to-budget speedup (mono/part): %.2fx\n"
      (mono.sc_seconds /. part.sc_seconds);
    Printf.sprintf
      {|      "circuit": "toggle_farm",
      "caps": { "max_states": %d, "max_transitions": %d },
      "partitioned": %s,
      "monolithic": %s,
      "partitioned_sift": %s,
      "time_to_budget_speedup": %.2f|}
      sat_cap_states sat_cap_transitions
      (sym_cell_json "" part |> String.trim)
      (sym_cell_json "" mono |> String.trim)
      (sym_cell_json "" part_sift |> String.trim)
      (mono.sc_seconds /. part.sc_seconds)
  in
  Printf.sprintf
    {|  "symbolic": {
    "complete": [
%s
    ],
    "ring_storm_states_cap": {
%s
    },
    "toggle_farm_full_caps": {
%s
    }
  }|}
    (String.concat ",\n" complete_rows)
    ring toggle

let bdd_engine_bench () =
  let row path =
    let c = load_netlist path in
    (* Fresh manager per repetition on both sides: cold caches each
       time, so the comparison is build throughput, not cache replay. *)
    let stats = packed_run c in
    let legacy = legacy_run c in
    let packed_ops = Bdd.apply_ops stats in
    let legacy_ops = legacy.Legacy.ops in
    let packed_seconds = time_thunk (fun () -> ignore (packed_run c)) in
    let legacy_seconds = time_thunk (fun () -> ignore (legacy_run c)) in
    let packed_ops_s = float_of_int packed_ops /. packed_seconds in
    let legacy_ops_s = float_of_int legacy_ops /. legacy_seconds in
    let speedup = legacy_seconds /. packed_seconds in
    Printf.printf
      "bdd engine (%s): %d vars\n\
      \  packed: %8.5f s  (%12.1f apply ops/s, peak %d nodes, %.1f%% cache hits)\n\
      \  legacy: %8.5f s  (%12.1f apply ops/s, peak %d nodes)\n\
      \  speedup: %.2fx\n"
      (Circuit.name c)
      (2 * Circuit.n_nodes c)
      packed_seconds packed_ops_s stats.Bdd.peak_nodes
      (100.0 *. Bdd.cache_hit_rate stats)
      legacy_seconds legacy_ops_s legacy.Legacy.n speedup;
    Printf.sprintf
      {|    {
      "circuit": "%s",
      "nvars": %d,
      "packed": { "seconds": %.6f, "apply_ops": %d, "ops_per_sec": %.1f,
                  "peak_nodes": %d, "cache_hit_rate": %.4f,
                  "unique_buckets_init": %d, "cache_threshold": %d },
      "legacy": { "seconds": %.6f, "apply_ops": %d, "ops_per_sec": %.1f,
                  "peak_nodes": %d },
      "speedup": %.2f
    }|}
      (Circuit.name c)
      (2 * Circuit.n_nodes c)
      packed_seconds packed_ops packed_ops_s stats.Bdd.peak_nodes
      (Bdd.cache_hit_rate stats) stats.Bdd.unique_buckets_init
      stats.Bdd.cache_threshold legacy_seconds legacy_ops legacy_ops_s
      legacy.Legacy.n speedup
    |> fun json -> (json, speedup)
  in
  let rows = List.map row bdd_netlists in
  let max_speedup =
    List.fold_left (fun acc (_, s) -> Float.max acc s) 0.0 rows
  in
  let symbolic_json = symbolic_style_bench () in
  let json =
    Printf.sprintf
      {|{
  "bench": "bdd_engine",
  "circuits": [
%s
  ],
%s,
  "max_speedup": %.2f
}
|}
      (String.concat ",\n" (List.map fst rows))
      symbolic_json max_speedup
  in
  let oc = open_out "BENCH_bdd.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "max speedup: %.2fx  -> BENCH_bdd.json\n" max_speedup

(* --- SAT vs BDD deterministic-phase head-to-head ---------------------------- *)

(* The two justification/differentiation backends race through the full
   ATPG pipeline on the figure-1 pathology pair.  Unguarded BDD image
   computation is intractable on both circuits (minutes), so the race
   runs under the same deterministic resource caps the CI agreement job
   uses; both sides then produce sound partial results and the bench
   also checks their detected/undetected partitions coincide.  The
   result goes to BENCH_sat.json. *)

let sat_netlists =
  [ "examples/netlists/ring_storm.cct"; "examples/netlists/toggle_farm.cct" ]

(* Fresh-solver-per-fault vs one long-lived incremental solver, raced
   over the full fault universe of the pipeline family at n = 1..8.
   Per size: both modes must produce the identical per-fault partition,
   the incremental engine must have spawned exactly one solver
   instance, and the row records the retention counters (reused shared
   clauses, deletions) next to the raw timings.  The rows land in the
   "incremental_ladder" section of BENCH_sat.json. *)
let sat_incremental_sizes = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let sat_incremental_ladder () =
  List.map
    (fun n ->
      let entry =
        match Suite.generate "pipeline" ~n with
        | Ok e -> e
        | Error m -> failwith (Printf.sprintf "pipeline n=%d: %s" n m)
      in
      let c =
        match Synth.complex_gate entry.Suite.stg with
        | Ok c -> c
        | Error m -> failwith (entry.Suite.name ^ ": synth: " ^ m)
      in
      let g = Explicit.build c in
      let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
      let sweep incremental =
        let se = Sat_engine.create ~incremental g in
        let statuses =
          List.map
            (fun f ->
              match Three_phase.find_test ~backend:(Sat_engine.backend se) g f with
              | Some seq -> `Detected (List.length seq)
              | None -> `Undetected
              | exception Satg_guard.Guard.Exhausted _ -> `Aborted)
            faults
        in
        (statuses, Sat_engine.stats se)
      in
      let time incremental =
        time_thunk (fun () -> ignore (sweep incremental))
      in
      let fresh_st, fresh = sweep false in
      let incr_st, incr = sweep true in
      let fresh_seconds = time false in
      let incr_seconds = time true in
      if fresh_st <> incr_st then
        failwith
          (Printf.sprintf
             "pipeline n=%d: incremental and fresh partitions differ" n);
      if incr.Satg_sat.Sat.instances <> 1 then
        failwith
          (Printf.sprintf "pipeline n=%d: incremental spawned %d instances" n
             incr.Satg_sat.Sat.instances);
      let detected =
        List.length
          (List.filter (function `Detected _ -> true | _ -> false) incr_st)
      in
      let speedup = fresh_seconds /. incr_seconds in
      Printf.printf
        "sat incremental (pipeline n=%d): %d faults, %d detected\n\
        \  fresh: %8.4f s  (%d instances, %d solves, %d conflicts)\n\
        \  incr : %8.4f s  (%d instances, %d solves, %d reused shared, %d \
         deleted)\n\
        \  partitions agree: true   speedup: %.2fx\n"
        n (List.length faults) detected fresh_seconds
        fresh.Satg_sat.Sat.instances fresh.Satg_sat.Sat.solves
        fresh.Satg_sat.Sat.conflicts incr_seconds incr.Satg_sat.Sat.instances
        incr.Satg_sat.Sat.solves incr.Satg_sat.Sat.reused_shared
        incr.Satg_sat.Sat.deleted_clauses speedup;
      Printf.sprintf
        {|    {
      "family": "pipeline",
      "n": %d,
      "n_faults": %d,
      "detected": %d,
      "fresh": { "seconds": %.6f, "instances": %d, "solves": %d,
                 "decisions": %d, "propagations": %d, "conflicts": %d,
                 "learned": %d },
      "incremental": { "seconds": %.6f, "instances": %d, "solves": %d,
                       "decisions": %d, "propagations": %d,
                       "reused_shared": %d, "reused_learned": %d,
                       "deleted_clauses": %d },
      "partitions_agree": true,
      "speedup": %.2f
    }|}
        n (List.length faults) detected fresh_seconds
        fresh.Satg_sat.Sat.instances fresh.Satg_sat.Sat.solves
        fresh.Satg_sat.Sat.decisions fresh.Satg_sat.Sat.propagations
        fresh.Satg_sat.Sat.conflicts fresh.Satg_sat.Sat.learned incr_seconds
        incr.Satg_sat.Sat.instances incr.Satg_sat.Sat.solves
        incr.Satg_sat.Sat.decisions incr.Satg_sat.Sat.propagations
        incr.Satg_sat.Sat.reused_shared incr.Satg_sat.Sat.reused_learned
        incr.Satg_sat.Sat.deleted_clauses speedup)
    sat_incremental_sizes

let sat_engine_bench () =
  let row path =
    let c = load_netlist path in
    let faults = Fault.universe_input_sa c in
    (* one shared capped CSSG, so the timing isolates the backends *)
    let g =
      Explicit.build
        ~guard:
          (Satg_guard.Guard.create ~max_states:sat_cap_states
             ~max_transitions:sat_cap_transitions ())
        c
    in
    let config engine =
      {
        Engine.default_config with
        engine;
        max_states = Some sat_cap_states;
        max_transitions = Some sat_cap_transitions;
      }
    in
    let sift_config =
      { (config Engine.Bdd) with Engine.reorder = Bdd.Reorder_sift }
    in
    let run engine = Engine.run ~config:(config engine) ~cssg:g c ~faults in
    let run_sift () = Engine.run ~config:sift_config ~cssg:g c ~faults in
    let sat_r = ref (run Engine.Sat) in
    let bdd_r = ref (run Engine.Bdd) in
    let sift_r = ref (run_sift ()) in
    let sat_seconds = time_thunk (fun () -> sat_r := run Engine.Sat) in
    let bdd_seconds = time_thunk (fun () -> bdd_r := run Engine.Bdd) in
    let sift_seconds = time_thunk (fun () -> sift_r := run_sift ()) in
    let sat_r = !sat_r and bdd_r = !bdd_r and sift_r = !sift_r in
    let partition r =
      List.map (fun o -> Testset.is_detected o.Testset.status) r.Engine.outcomes
    in
    let agree =
      partition sat_r = partition bdd_r && partition sat_r = partition sift_r
    in
    let speedup = bdd_seconds /. sat_seconds in
    let ss =
      match sat_r.Engine.sat_stats with
      | Some s -> s
      | None -> failwith "sat run reported no solver stats"
    in
    Printf.printf
      "sat engine (%s): %d faults, caps %d states / %d transitions\n\
      \  sat     : %8.4f s  (%d detected, %d aborted; %d conflicts, %d \
       learned)\n\
      \  bdd     : %8.4f s  (%d detected, %d aborted)\n\
      \  bdd+sift: %8.4f s  (%d detected, %d aborted)\n\
      \  partitions agree: %b   speedup: %.2fx\n"
      (Circuit.name c) (List.length faults) sat_cap_states sat_cap_transitions
      sat_seconds (Engine.detected sat_r) (Engine.aborted sat_r)
      ss.Satg_sat.Sat.conflicts ss.Satg_sat.Sat.learned bdd_seconds
      (Engine.detected bdd_r) (Engine.aborted bdd_r) sift_seconds
      (Engine.detected sift_r) (Engine.aborted sift_r) agree speedup;
    if not agree then failwith (Circuit.name c ^ ": backend partitions differ");
    Printf.sprintf
      {|    {
      "circuit": "%s",
      "n_faults": %d,
      "caps": { "max_states": %d, "max_transitions": %d },
      "sat": { "seconds": %.6f, "detected": %d, "aborted": %d,
               "decisions": %d, "propagations": %d, "conflicts": %d,
               "learned": %d, "restarts": %d, "vars": %d, "clauses": %d },
      "bdd": { "seconds": %.6f, "detected": %d, "aborted": %d },
      "bdd_sift": { "seconds": %.6f, "detected": %d, "aborted": %d },
      "partitions_agree": %b,
      "speedup": %.2f
    }|}
      (Circuit.name c) (List.length faults) sat_cap_states sat_cap_transitions
      sat_seconds (Engine.detected sat_r) (Engine.aborted sat_r)
      ss.Satg_sat.Sat.decisions ss.Satg_sat.Sat.propagations
      ss.Satg_sat.Sat.conflicts ss.Satg_sat.Sat.learned
      ss.Satg_sat.Sat.restarts ss.Satg_sat.Sat.n_vars
      ss.Satg_sat.Sat.n_clauses bdd_seconds (Engine.detected bdd_r)
      (Engine.aborted bdd_r) sift_seconds (Engine.detected sift_r)
      (Engine.aborted sift_r) agree speedup
  in
  let rows = List.map row sat_netlists in
  let ladder = sat_incremental_ladder () in
  let json =
    Printf.sprintf
      {|{
  "bench": "sat_engine",
  "circuits": [
%s
  ],
  "incremental_ladder": [
%s
  ]
}
|}
      (String.concat ",\n" rows)
      (String.concat ",\n" ladder)
  in
  let oc = open_out "BENCH_sat.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "-> BENCH_sat.json\n"

(* --- multicore domain-pool scaling ------------------------------------------ *)

(* The full explicit-engine pipeline (CSSG + random + deterministic
   phases) at -j 1/2/4/8 on the figure-1 pathology pair, under the same
   caps as the SAT race, against the sequential pipeline as baseline.
   Every run's detected/undetected/aborted partition is hashed and the
   bench *fails* if any two differ — the determinism contract, measured
   rather than assumed.  Results (plus [host_cores], so a flat curve on
   a single-core runner is readable as such) go to BENCH_domains.json. *)

let domains_js = [ 1; 2; 4; 8 ]

let partition_hash r =
  List.fold_left
    (fun h o ->
      let c =
        match o.Testset.status with
        | Testset.Detected _ -> 'D'
        | Testset.Undetected -> 'U'
        | Testset.Aborted _ -> 'A'
      in
      ((h * 33) + Char.code c) land 0x3FFFFFFF)
    5381 r.Engine.outcomes

(* Packed-Bytes interning (the [Explicit.build] hot path) against the
   pre-rewrite string-keyed table, on an identical deterministic lookup
   stream with a realistic hit rate. *)
let intern_bench () =
  let n_nodes = 48 in
  let n_distinct = 512 in
  let n_lookups = 100_000 in
  let state = ref 0x2545F4914F6CDD1D in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x;
    x
  in
  let pool =
    Array.init n_distinct (fun _ ->
        let a = next () and b = next () in
        Array.init n_nodes (fun i ->
            let w = if i < 32 then a else b in
            (w lsr (i land 31)) land 1 = 1))
  in
  let stream =
    Array.init n_lookups (fun _ -> pool.(abs (next ()) mod n_distinct))
  in
  let string_run () =
    let tbl = Hashtbl.create 64 in
    let count = ref 0 in
    Array.iter
      (fun s ->
        let key = String.init n_nodes (fun i -> if s.(i) then '1' else '0') in
        match Hashtbl.find_opt tbl key with
        | Some _ -> ()
        | None ->
          Hashtbl.replace tbl key !count;
          incr count)
      stream
  in
  let packed_run () =
    let it = Explicit.Intern.create ~n_nodes in
    Array.iter
      (fun s ->
        ignore (Explicit.Intern.intern it ~guard:Satg_guard.Guard.none s))
      stream
  in
  let string_seconds = time_thunk string_run in
  let packed_seconds = time_thunk packed_run in
  let speedup = string_seconds /. packed_seconds in
  Printf.printf
    "intern (%d nodes, %d lookups, %d distinct)\n\
    \  string keys: %8.5f s  (%10.1f lookups/s)\n\
    \  packed keys: %8.5f s  (%10.1f lookups/s)\n\
    \  speedup: %.2fx\n"
    n_nodes n_lookups n_distinct string_seconds
    (float_of_int n_lookups /. string_seconds)
    packed_seconds
    (float_of_int n_lookups /. packed_seconds)
    speedup;
  Printf.sprintf
    {|  "intern": { "n_nodes": %d, "n_lookups": %d, "n_distinct": %d,
              "string_keys": { "seconds": %.6f, "lookups_per_sec": %.1f },
              "packed_keys": { "seconds": %.6f, "lookups_per_sec": %.1f },
              "speedup": %.2f }|}
    n_nodes n_lookups n_distinct string_seconds
    (float_of_int n_lookups /. string_seconds)
    packed_seconds
    (float_of_int n_lookups /. packed_seconds)
    speedup

(* Frontier-chunk sizing for [Explicit.build_par], relative to the host:
   few cores want larger batches (amortise dispatch), many cores want
   smaller ones (balance load).  The untruncated graph is identical for
   every chunk (asserted below), so this measures pure scheduling
   overhead.  Runs on an uncapped mid-size family circuit where the
   sequential build completes. *)
let build_par_chunk_bench ~host_cores =
  let entry =
    match Suite.generate "pipeline" ~n:8 with
    | Ok e -> e
    | Error m -> failwith ("pipeline n=8: " ^ m)
  in
  let c =
    match Synth.complex_gate entry.Suite.stg with
    | Ok c -> c
    | Error m -> failwith (entry.Suite.name ^ ": synth: " ^ m)
  in
  let sized_chunk = max 4 (256 / host_cores) in
  Satg_pool.Pool.with_pool ~jobs:host_cores (fun pool ->
      let seq = Explicit.build c in
      let default_g = ref (Explicit.build_par ~pool c) in
      let sized_g = ref (Explicit.build_par ~chunk:sized_chunk ~pool c) in
      let default_seconds =
        time_thunk (fun () -> default_g := Explicit.build_par ~pool c)
      in
      let sized_seconds =
        time_thunk (fun () ->
            sized_g := Explicit.build_par ~chunk:sized_chunk ~pool c)
      in
      let shape g = (Cssg.n_states g, Cssg.n_edges g) in
      if shape !default_g <> shape seq || shape !sized_g <> shape seq then
        failwith "build_par: chunk size changed the untruncated graph";
      let n_states, n_edges = shape seq in
      Printf.printf
        "build_par chunks (%s): %d states, %d edges, jobs %d\n\
        \  chunk  32 (default)  : %8.4f s\n\
        \  chunk %3d (host-sized): %8.4f s\n"
        (Circuit.name c) n_states n_edges host_cores default_seconds
        sized_chunk sized_seconds;
      Printf.sprintf
        {|  "build_par_chunk": { "circuit": "%s", "jobs": %d,
              "n_states": %d, "n_edges": %d,
              "default": { "chunk": 32, "seconds": %.6f },
              "host_sized": { "chunk": %d, "seconds": %.6f },
              "graphs_equal": true }|}
        (Circuit.name c) host_cores n_states n_edges default_seconds
        sized_chunk sized_seconds)

let domains_bench () =
  let host_cores = Domain.recommended_domain_count () in
  (* Honest rows only: an oversubscribed -j on a small host measures
     scheduler noise, not scaling.  -j 1 always runs (it anchors the
     determinism contract); larger -j rows run only when the host
     actually has the cores. *)
  let js_run, js_skipped =
    List.partition (fun j -> j = 1 || j <= host_cores) domains_js
  in
  if js_skipped <> [] then
    Printf.printf "domains: host has %d core(s); skipping -j %s\n" host_cores
      (String.concat "/" (List.map string_of_int js_skipped));
  let intern_json = intern_bench () in
  let chunk_json = build_par_chunk_bench ~host_cores in
  let row path =
    let c = load_netlist path in
    let faults = Fault.universe_input_sa c in
    let config jobs =
      {
        Engine.default_config with
        engine = Engine.Explicit;
        jobs;
        max_states = Some sat_cap_states;
        max_transitions = Some sat_cap_transitions;
      }
    in
    let run jobs = Engine.run ~config:(config jobs) c ~faults in
    let seq_r = ref (run None) in
    let seq_seconds = time_thunk (fun () -> seq_r := run None) in
    let seq_hash = partition_hash !seq_r in
    let cells =
      List.map
        (fun j ->
          let r = ref (run (Some j)) in
          let seconds = time_thunk (fun () -> r := run (Some j)) in
          (j, seconds, partition_hash !r, Engine.detected !r,
           Engine.aborted !r))
        js_run
    in
    let j1_seconds =
      match cells with (1, s, _, _, _) :: _ -> s | _ -> seq_seconds
    in
    List.iter
      (fun (j, _, h, _, _) ->
        if h <> seq_hash then
          failwith
            (Printf.sprintf "%s: -j %d partition differs from sequential"
               (Circuit.name c) j))
      cells;
    Printf.printf "domains (%s): %d faults, caps %d states / %d transitions\n"
      (Circuit.name c) (List.length faults) sat_cap_states sat_cap_transitions;
    Printf.printf "  seq : %8.4f s  (hash %08x)\n" seq_seconds seq_hash;
    List.iter
      (fun (j, s, h, det, ab) ->
        Printf.printf
          "  -j %d: %8.4f s  (x%.2f vs -j1; hash %08x, %d detected, %d \
           aborted)\n"
          j s (j1_seconds /. s) h det ab)
      cells;
    Printf.sprintf
      {|    {
      "circuit": "%s",
      "n_faults": %d,
      "caps": { "max_states": %d, "max_transitions": %d },
      "sequential": { "seconds": %.6f, "partition_hash": "%08x" },
      "jobs": [
%s
      ],
      "partitions_equal": true
    }|}
      (Circuit.name c) (List.length faults) sat_cap_states sat_cap_transitions
      seq_seconds seq_hash
      (String.concat ",\n"
         (List.map
            (fun (j, s, h, det, ab) ->
              Printf.sprintf
                {|        { "j": %d, "seconds": %.6f, "speedup_vs_j1": %.2f,
          "partition_hash": "%08x", "detected": %d, "aborted": %d }|}
                j s (j1_seconds /. s) h det ab)
            cells))
  in
  let rows = List.map row sat_netlists in
  let json =
    Printf.sprintf
      {|{
  "bench": "domains",
  "host_cores": %d,
  "jobs_skipped": [%s],
%s,
%s,
  "circuits": [
%s
  ]
}
|}
      host_cores
      (String.concat ", " (List.map string_of_int js_skipped))
      intern_json chunk_json
      (String.concat ",\n" rows)
  in
  let oc = open_out "BENCH_domains.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "host cores: %d  -> BENCH_domains.json\n" host_cores

(* --- driver ---------------------------------------------------------------- *)

let tests =
  Test.make_grouped ~name:"satg"
    [
      bench_bdd; bench_qm; bench_ternary; bench_parallel;
      bench_exact_exploration; bench_stg; bench_symbolic; bench_fig1a;
      bench_fig1b; bench_fig2; bench_table1_small; bench_table1_large;
      bench_table2_clean; bench_table2_redundant; bench_timed_replay;
      bench_delay_fault; bench_baseline;
    ]

let default_netlist = "examples/netlists/toggle_farm.cct"

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%10.3f s " (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%10.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%10.3f us" (ns /. 1e3)
    else Printf.sprintf "%10.1f ns" ns
  in
  Printf.printf "%-42s %12s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 56 '-');
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (t :: _) -> Printf.printf "%-42s %12s\n" name (pretty t)
         | Some [] | None -> Printf.printf "%-42s %12s\n" name "n/a")

(* --- generated benchmark families: size ladder vs engines ------------------- *)

(* The concept-combinator families swept along a CI-tractable size
   ladder, each instance run through all three deterministic engines
   (no random phase, so the backends do the actual work).  Rows record
   states / faults / coverage / time per engine against N; the bench
   *fails* unless every instance's explicit/bdd/sat partitions and the
   -j1/-j4 pooled runs coincide, and unless at least one instance
   forces real CDCL search (nonzero decisions and conflicts).  Results
   go to BENCH_families.json. *)

let family_ladder =
  [
    ("pipeline", [ 1; 2; 3 ], `Complex);
    ("arbiter", [ 2; 3 ], `Complex);
    ("ring", [ 2; 4; 8 ], `Complex);
    ("fifo", [ 2; 4 ], `Complex);
    ("latch", [ 1; 2 ], `Redundant);
  ]

let families_bench () =
  let sat_nontrivial = ref false in
  let row fname n style =
    let entry =
      match Suite.generate fname ~n with
      | Ok e -> e
      | Error m -> failwith (fname ^ ": " ^ m)
    in
    let c =
      match
        match style with
        | `Complex -> Synth.complex_gate entry.Suite.stg
        | `Redundant -> Synth.decomposed ~redundant:true entry.Suite.stg
      with
      | Ok c -> c
      | Error m -> failwith (entry.Suite.name ^ ": synth: " ^ m)
    in
    let faults = Fault.universe_input_sa c in
    let g = Explicit.build c in
    let config engine =
      { Engine.default_config with engine; enable_random = false }
    in
    let run engine = Engine.run ~config:(config engine) ~cssg:g c ~faults in
    let timed engine =
      let r = ref (run engine) in
      let seconds = time_thunk (fun () -> r := run engine) in
      (!r, seconds)
    in
    let exp_r, exp_s = timed Engine.Explicit in
    let bdd_r, bdd_s = timed Engine.Bdd in
    let sat_r, sat_s = timed Engine.Sat in
    let partition r =
      List.map (fun o -> Testset.is_detected o.Testset.status) r.Engine.outcomes
    in
    let agree =
      partition exp_r = partition bdd_r && partition exp_r = partition sat_r
    in
    let pooled j =
      Engine.run
        ~config:{ Engine.default_config with jobs = Some j }
        c ~faults
    in
    let jobs_agree = partition (pooled 1) = partition (pooled 4) in
    let ss =
      match sat_r.Engine.sat_stats with
      | Some s -> s
      | None -> failwith (entry.Suite.name ^ ": sat run reported no stats")
    in
    (* real work = branching happened AND the long-lived instance
       re-served clauses across faults; conflicts stay zero here — the
       time-frame encoding is propagation-complete on the families
       (docs/PERF.md) *)
    if ss.Satg_sat.Sat.decisions > 0 && ss.Satg_sat.Sat.reused_shared > 0 then
      sat_nontrivial := true;
    Printf.printf
      "%-10s n=%-2d %-9s %4d states %3d faults  cov %6.2f%%  \
       exp %8.4fs  bdd %8.4fs  sat %8.4fs (%d dec, %d cfl)  agree %b  -j %b\n"
      fname n
      (match style with `Complex -> "complex" | `Redundant -> "redundant")
      (Cssg.n_states g) (List.length faults)
      (Engine.coverage_pct exp_r) exp_s bdd_s sat_s ss.Satg_sat.Sat.decisions
      ss.Satg_sat.Sat.conflicts agree jobs_agree;
    if not agree then
      failwith (entry.Suite.name ^ ": engine partitions differ");
    if not jobs_agree then
      failwith (entry.Suite.name ^ ": -j1 and -j4 partitions differ");
    Printf.sprintf
      {|    {
      "family": "%s",
      "n": %d,
      "style": "%s",
      "cssg_states": %d,
      "n_faults": %d,
      "coverage_pct": %.2f,
      "explicit": { "seconds": %.6f, "detected": %d },
      "bdd": { "seconds": %.6f, "detected": %d },
      "sat": { "seconds": %.6f, "detected": %d,
               "decisions": %d, "conflicts": %d,
               "propagations": %d, "learned": %d,
               "instances": %d, "reused_shared": %d },
      "partitions_agree": %b,
      "jobs_partitions_agree": %b
    }|}
      fname n
      (match style with `Complex -> "complex" | `Redundant -> "redundant")
      (Cssg.n_states g) (List.length faults) (Engine.coverage_pct exp_r)
      exp_s (Engine.detected exp_r) bdd_s (Engine.detected bdd_r) sat_s
      (Engine.detected sat_r) ss.Satg_sat.Sat.decisions
      ss.Satg_sat.Sat.conflicts ss.Satg_sat.Sat.propagations
      ss.Satg_sat.Sat.learned ss.Satg_sat.Sat.instances
      ss.Satg_sat.Sat.reused_shared agree jobs_agree
  in
  let rows =
    List.concat_map
      (fun (fname, sizes, style) -> List.map (fun n -> row fname n style) sizes)
      family_ladder
  in
  if not !sat_nontrivial then
    failwith
      "no family instance produced nonzero SAT decisions and shared-clause \
       reuse";
  let json =
    Printf.sprintf {|{
  "bench": "families",
  "sat_nontrivial": %b,
  "instances": [
%s
  ]
}
|}
      !sat_nontrivial
      (String.concat ",\n" rows)
  in
  let oc = open_out "BENCH_families.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "-> BENCH_families.json\n"

(* --- persistent-service latency: warm hits vs cold misses ------------------ *)

(* Forks a real daemon (the [satg serve] library, not the binary) on a
   private socket and measures request latency through the full wire
   path: protocol round trips with no ATPG behind them ("ping"), one
   cold miss that pays parse + CSSG build + fault search, then the
   identical request repeated against the warm content-addressed store
   (zero fault searches).  The bench *fails* unless the cold request
   misses and every warm repeat hits, so the numbers cannot silently
   measure the wrong path.  Results (plus [host_cores] — measured, not
   assumed) go to BENCH_serve.json. *)

let serve_bench () =
  let module Proto = Satg_server.Proto in
  let module Client = Satg_server.Client in
  let host_cores = Domain.recommended_domain_count () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "satg-bench-serve-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket = Filename.concat dir "satg.sock" in
  let pid = Unix.fork () in
  if pid = 0 then (
    (* child: the daemon *)
    try
      let service = Satg_server.Service.create () in
      match Satg_server.Server.serve ~socket service with
      | Ok () -> Unix._exit 0
      | Error _ -> Unix._exit 1
    with _ -> Unix._exit 2);
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      (try Sys.remove socket with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let request req =
    match Client.one_shot ~retry_for:10. ~socket req with
    | Ok r -> r
    | Error m -> failwith ("serve bench: " ^ m)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let circuit_name = "master-read" in
  let netlist =
    Parser.to_string (get_circuit Suite.speed_independent circuit_name)
  in
  let atpg =
    Proto.Atpg
      { netlist; universe = Session.Both; config = Engine.default_config }
  in
  let ping_runs = 50 in
  let ping_total, () =
    time (fun () ->
        for _ = 1 to ping_runs do
          match request Proto.Stats with
          | Proto.Stats_r _ -> ()
          | _ -> failwith "serve bench: expected stats"
        done)
  in
  let cold_s, cold_hit =
    time (fun () ->
        match request atpg with
        | Proto.Result { hit; _ } -> hit
        | _ -> failwith "serve bench: expected a settled result")
  in
  if cold_hit then failwith "serve bench: cold request must miss";
  let warm_runs = 20 in
  let warm_total, warm_hits =
    time (fun () ->
        let hits = ref 0 in
        for _ = 1 to warm_runs do
          match request atpg with
          | Proto.Result { hit = true; _ } -> incr hits
          | Proto.Result { hit = false; _ } ->
            failwith "serve bench: warm repeat missed the store"
          | _ -> failwith "serve bench: expected a settled result"
        done;
        !hits)
  in
  if warm_hits <> warm_runs then failwith "serve bench: lost warm hits";
  let ping_each = ping_total /. float_of_int ping_runs in
  let warm_each = warm_total /. float_of_int warm_runs in
  let json =
    Printf.sprintf
      {|{
  "bench": "serve",
  "host_cores": %d,
  "circuit": "%s",
  "ping": { "runs": %d, "seconds_each": %.6f },
  "cold": { "seconds": %.6f, "hit": false },
  "warm": { "runs": %d, "seconds_each": %.6f, "hit": true },
  "cold_over_warm": %.1f
}
|}
      host_cores circuit_name ping_runs ping_each cold_s warm_runs warm_each
      (cold_s /. warm_each)
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "cold %.6fs  warm %.6fs/req  ping %.6fs/req  -> BENCH_serve.json\n"
    cold_s warm_each ping_each

(* [--fault-sim [FILE.cct]] runs only the parallel fault-sim
   throughput bench, [--bdd] only the BDD engine head-to-head, [--sat]
   (alias [--sat-incremental]) the SAT-vs-BDD backend race plus the
   fresh-vs-incremental solver ladder — together they produce
   BENCH_sat.json — [--domains] only the domain-pool scaling + intern
   benches (the CI smoke jobs), and [--serve] the daemon warm-vs-cold
   latency bench; the default runs the full bechamel suite and then
   every throughput bench. *)
let () =
  let argv = Array.to_list Sys.argv in
  match argv with
  | _ :: "--fault-sim" :: rest ->
    let path = match rest with p :: _ -> p | [] -> default_netlist in
    fault_sim_bench path
  | _ :: "--bdd" :: _ -> bdd_engine_bench ()
  | _ :: "--sat" :: _ | _ :: "--sat-incremental" :: _ -> sat_engine_bench ()
  | _ :: "--domains" :: _ -> domains_bench ()
  | _ :: "--families" :: _ -> families_bench ()
  | _ :: "--serve" :: _ -> serve_bench ()
  | _ ->
    run_bechamel ();
    fault_sim_bench default_netlist;
    bdd_engine_bench ();
    sat_engine_bench ();
    domains_bench ();
    families_bench ();
    serve_bench ()
