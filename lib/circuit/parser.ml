open Satg_logic

type line =
  | L_circuit of string
  | L_input of string list
  | L_output of string list
  | L_gate of string * string * string list  (* name, func, fanins *)
  | L_sop of string * string list * string list  (* name, fanins, cubes *)
  | L_initial of (string * bool) list
  | L_end

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  (* '\r' is a separator too: a CRLF-encoded file otherwise leaves a
     carriage return glued to each line's last token, and the error
     surfaces much later as a baffling [unknown signal "b\r"]. *)
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun s -> s <> "")

let parse_assign tok =
  match String.split_on_char '=' tok with
  | [ nm; "0" ] -> (nm, false)
  | [ nm; "1" ] -> (nm, true)
  | _ -> fail "bad initial assignment %S" tok

let parse_line lineno raw =
  match tokenize raw with
  | [] -> None
  | "circuit" :: [ nm ] -> Some (L_circuit nm)
  | "input" :: nms when nms <> [] -> Some (L_input nms)
  | "output" :: nms when nms <> [] -> Some (L_output nms)
  | "gate" :: nm :: fn :: ins -> Some (L_gate (nm, String.uppercase_ascii fn, ins))
  | "celem" :: nm :: ins when ins <> [] -> Some (L_gate (nm, "CELEM", ins))
  | "sop" :: nm :: "(" :: rest -> (
    let rec split_ins acc = function
      | ")" :: cubes -> (List.rev acc, cubes)
      | x :: rest -> split_ins (x :: acc) rest
      | [] -> fail "line %d: sop %s: missing ')'" lineno nm
    in
    match split_ins [] rest with
    | _, [] -> fail "line %d: sop %s: no cubes" lineno nm
    | ins, cubes -> Some (L_sop (nm, ins, cubes)))
  | "initial" :: toks when toks <> [] ->
    Some (L_initial (List.map parse_assign toks))
  | [ "end" ] -> Some L_end
  | tok :: _ -> fail "line %d: unrecognised directive %S" lineno tok

let build lines =
  let cname =
    match
      List.find_map (function L_circuit nm -> Some nm | _ -> None) lines
    with
    | Some nm -> nm
    | None -> fail "missing 'circuit' line"
  in
  let b = Circuit.Builder.create cname in
  let signal_of = Hashtbl.create 32 in
  (* Inputs first: their buffer ids become the referencable signals. *)
  List.iter
    (function
      | L_input nms ->
        List.iter
          (fun nm -> Hashtbl.replace signal_of nm (Circuit.Builder.add_input b nm))
          nms
      | _ -> ())
    lines;
  (* Declare all gates so feedback references resolve. *)
  let gate_defs =
    List.filter_map
      (function
        | L_gate (nm, fn, ins) -> Some (nm, `Fixed fn, ins)
        | L_sop (nm, ins, cubes) -> Some (nm, `Sop cubes, ins)
        | _ -> None)
      lines
  in
  List.iter
    (fun (nm, _, _) ->
      if Hashtbl.mem signal_of nm then fail "duplicate signal %S" nm;
      Hashtbl.replace signal_of nm (Circuit.Builder.declare_gate b ~name:nm))
    gate_defs;
  let resolve nm =
    match Hashtbl.find_opt signal_of nm with
    | Some id -> id
    | None -> fail "unknown signal %S" nm
  in
  List.iter
    (fun (nm, kind, ins) ->
      let fanin = List.map resolve ins in
      let func =
        match kind with
        | `Fixed fn -> (
          match Gatefunc.of_name fn with
          | Some f -> f
          | None -> fail "gate %S: unknown function %S" nm fn)
        | `Sop cubes ->
          let n = List.length ins in
          let parse_cube c =
            if String.length c <> n then
              fail "sop %S: cube %S has width %d, expected %d" nm c
                (String.length c) n;
            try Cube.of_string c
            with Invalid_argument m -> fail "sop %S: %s" nm m
          in
          Gatefunc.Sop (Cover.make ~n (List.map parse_cube cubes))
      in
      Circuit.Builder.define_gate b (resolve nm) func fanin)
    gate_defs;
  List.iter
    (function
      | L_output nms ->
        List.iter (fun nm -> Circuit.Builder.mark_output b (resolve nm)) nms
      | _ -> ())
    lines;
  let circuit =
    try Circuit.Builder.finalize b
    with Invalid_argument m -> fail "%s" m
  in
  (* Initial state, if present. *)
  let assigns =
    List.concat_map (function L_initial a -> a | _ -> []) lines
  in
  if assigns = [] then circuit
  else begin
    let st = Array.make (Circuit.n_nodes circuit) false in
    let assigned = Array.make (Circuit.n_nodes circuit) false in
    List.iter
      (fun (nm, v) ->
        match Circuit.find_node circuit nm with
        | None -> fail "initial: unknown signal %S" nm
        | Some id ->
          st.(id) <- v;
          assigned.(id) <- true;
          (* Input names also set the environment node. *)
          (match Circuit.find_node circuit (nm ^ "$env") with
          | Some env ->
            st.(env) <- v;
            assigned.(env) <- true
          | None -> ()))
      assigns;
    Array.iteri
      (fun i a ->
        if not a then
          fail "initial: signal %S not assigned" (Circuit.node_name circuit i))
      assigned;
    try Circuit.with_initial circuit st
    with Invalid_argument m -> fail "%s" m
  end

(* ------------------------------------------------------------------ *)
(* Lint: collect every semantic problem, with line numbers             *)
(* ------------------------------------------------------------------ *)

type diag = {
  line : int;  (* 1-based; 0 for file-level problems *)
  msg : string;
}

(* Unlike [parse_string], which fails on the first problem (its job is
   to refuse bad input), the lint walks the whole file and reports
   every diagnostic it can find in one run: duplicate net names,
   dangling fanin references, arity mismatches, malformed directives,
   bad initial assignments.  It never raises and never builds. *)
let lint_string text =
  let diags = ref [] in
  let emit line fmt =
    Printf.ksprintf (fun msg -> diags := { line; msg } :: !diags) fmt
  in
  let lines =
    List.mapi (fun i raw -> (i + 1, tokenize raw))
      (String.split_on_char '\n' text)
  in
  (* Pass 1: declarations.  [decl : name -> (line, what)] doubles as
     the symbol table for the reference checks of pass 2. *)
  let decl = Hashtbl.create 32 in
  let declare line nm what =
    match Hashtbl.find_opt decl nm with
    | Some (l0, what0) ->
      emit line "duplicate net %S: already declared as %s on line %d" nm what0
        l0
    | None -> Hashtbl.add decl nm (line, what)
  in
  let circuit_line = ref None in
  List.iter
    (fun (line, toks) ->
      match toks with
      | [] -> ()
      | "circuit" :: rest -> (
        (match rest with
        | [ _ ] -> ()
        | _ -> emit line "'circuit' expects exactly one name");
        match !circuit_line with
        | None -> circuit_line := Some line
        | Some l0 ->
          emit line "duplicate 'circuit' directive (first on line %d)" l0)
      | [ "input" ] -> emit line "'input' expects at least one name"
      | "input" :: nms -> List.iter (fun nm -> declare line nm "an input") nms
      | "gate" :: nm :: _ :: _ | "celem" :: nm :: _ :: _ ->
        declare line nm "a gate"
      | [ "gate" ] | [ "gate"; _ ] ->
        emit line "'gate' expects a name, a function and fanins"
      | [ "celem" ] | [ "celem"; _ ] ->
        emit line "'celem' expects a name and fanins"
      | "sop" :: nm :: "(" :: _ -> declare line nm "a gate"
      | "sop" :: _ ->
        emit line "'sop' expects a name and a parenthesised fanin list"
      | "output" :: _ | "initial" :: _ | [ "end" ] -> ()
      | tok :: _ -> emit line "unrecognised directive %S" tok)
    lines;
  if !circuit_line = None then emit 0 "missing 'circuit' directive";
  (* Pass 2: references and shapes. *)
  let check_ref line what nm =
    if not (Hashtbl.mem decl nm) then
      emit line "%s: unknown signal %S (dangling reference)" what nm
  in
  let initial_line = ref None in
  let assigned = Hashtbl.create 32 in
  List.iter
    (fun (line, toks) ->
      match toks with
      | "gate" :: nm :: fn :: ins -> (
        List.iter (check_ref line ("gate " ^ nm)) ins;
        match Gatefunc.of_name (String.uppercase_ascii fn) with
        | None -> emit line "gate %S: unknown function %S" nm fn
        | Some f ->
          if not (Gatefunc.arity_ok f (List.length ins)) then
            emit line "gate %S: function %s does not take %d fanin(s)" nm
              (Gatefunc.name f) (List.length ins))
      | "celem" :: nm :: ins when ins <> [] ->
        List.iter (check_ref line ("celem " ^ nm)) ins;
        if not (Gatefunc.arity_ok Gatefunc.Celem (List.length ins)) then
          emit line "celem %S: %d fanin(s) not accepted" nm (List.length ins)
      | "sop" :: nm :: "(" :: rest -> (
        let rec split_ins acc = function
          | ")" :: cubes -> Some (List.rev acc, cubes)
          | x :: rest -> split_ins (x :: acc) rest
          | [] -> None
        in
        match split_ins [] rest with
        | None -> emit line "sop %S: missing ')'" nm
        | Some (_, []) -> emit line "sop %S: no cubes" nm
        | Some (ins, cubes) ->
          List.iter (check_ref line ("sop " ^ nm)) ins;
          let n = List.length ins in
          List.iter
            (fun c ->
              if String.length c <> n then
                emit line "sop %S: cube %S has width %d, expected %d" nm c
                  (String.length c) n
              else
                match Cube.of_string c with
                | _ -> ()
                | exception Invalid_argument m -> emit line "sop %S: %s" nm m)
            cubes)
      | "output" :: nms -> (
        match nms with
        | [] -> emit line "'output' expects at least one name"
        | nms -> List.iter (check_ref line "output") nms)
      | "initial" :: toks ->
        if !initial_line = None then initial_line := Some line;
        List.iter
          (fun tok ->
            match String.split_on_char '=' tok with
            | [ nm; ("0" | "1") ] -> (
              check_ref line "initial" nm;
              match Hashtbl.find_opt assigned nm with
              | Some l0 ->
                emit line "initial: %S assigned twice (first on line %d)" nm
                  l0
              | None -> Hashtbl.add assigned nm line)
            | _ -> emit line "initial: bad assignment %S (want name=0|1)" tok)
          toks
      | _ -> ())
    lines;
  (* A partial initial state is an error: the builder requires every
     declared net assigned once any 'initial' line appears. *)
  (match !initial_line with
  | None -> ()
  | Some iline ->
    Hashtbl.iter
      (fun nm _ ->
        if not (Hashtbl.mem assigned nm) then
          emit iline "initial: signal %S not assigned" nm)
      decl);
  List.stable_sort
    (fun a b -> compare (a.line, a.msg) (b.line, b.msg))
    !diags

let lint_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  in
  lint_string text

let parse_string text =
  let lines = String.split_on_char '\n' text in
  try
    let parsed = List.filteri (fun _ _ -> true) lines in
    let ast =
      List.concat
        (List.mapi
           (fun i raw ->
             match parse_line (i + 1) raw with Some l -> [ l ] | None -> [])
           parsed)
    in
    Ok (build ast)
  with
  | Parse_error m -> Error m
  | Invalid_argument m -> Error m

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "circuit %s\n" (Circuit.name c);
  let input_nms = Circuit.input_names c in
  if Array.length input_nms > 0 then
    pr "input %s\n" (String.concat " " (Array.to_list input_nms));
  let buffer_ids =
    Array.to_list (Array.mapi (fun k _ -> Circuit.buffer_of_input c k) (Circuit.inputs c))
  in
  Array.iter
    (fun gid ->
      if not (List.mem gid buffer_ids) then begin
        let nm = Circuit.node_name c gid in
        let ins =
          Circuit.fanins c gid |> Array.to_list
          |> List.map (Circuit.node_name c)
        in
        match Circuit.func c gid with
        | Gatefunc.Sop cover ->
          pr "sop %s ( %s ) %s\n" nm (String.concat " " ins)
            (String.concat " "
               (List.map Cube.to_string (Cover.cubes cover)))
        | f -> pr "gate %s %s %s\n" nm (Gatefunc.name f) (String.concat " " ins)
      end)
    (Circuit.gates c);
  if Array.length (Circuit.outputs c) > 0 then
    pr "output %s\n"
      (String.concat " "
         (Array.to_list (Array.map (Circuit.node_name c) (Circuit.outputs c))));
  (match Circuit.initial c with
  | None -> ()
  | Some st ->
    let parts = ref [] in
    Array.iter
      (fun gid ->
        let nm = Circuit.node_name c gid in
        parts := Printf.sprintf "%s=%d" nm (if st.(gid) then 1 else 0) :: !parts)
      (Circuit.gates c);
    pr "initial %s\n" (String.concat " " (List.rev !parts)));
  pr "end\n";
  Buffer.contents buf
