(** Text format for circuits (".cct").

    {v
    # comment
    circuit fig1a
    input A B
    gate a NOT B
    gate c AND a b
    celem y a c          # shorthand for gate y CELEM a c
    sop w ( a b c ) 11- --1
    output y
    initial A=0 B=1 a=1 c=0 y=0 w=0
    end
    v}

    Gate definitions may reference later gates (feedback).  The
    [initial] line assigns every gate by name; assigning an input name
    sets both the environment node and its buffer. *)

val parse_string : string -> (Circuit.t, string) result
val parse_file : string -> (Circuit.t, string) result

(** One lint finding.  [line] is 1-based; 0 marks a file-level problem
    (e.g. a missing [circuit] directive). *)
type diag = {
  line : int;
  msg : string;
}

val lint_string : string -> diag list
(** Semantic validation that reports {e every} problem — duplicate net
    names, dangling fanin/output/initial references, gate arity
    mismatches, malformed cubes and directives, partial or duplicated
    initial assignments — sorted by line, instead of stopping at the
    first like {!parse_string}.  Empty means {!parse_string} will
    almost surely succeed (builder-level errors excepted).  Never
    raises. *)

val lint_file : string -> diag list
(** {!lint_string} on the file's bytes.
    @raise Sys_error if the file cannot be read. *)

val to_string : Circuit.t -> string
(** Render in the same format (modulo comments); [parse_string] of the
    result reproduces the circuit. *)
