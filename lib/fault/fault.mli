(** Stuck-at fault models for asynchronous netlists.

    The paper evaluates two universes:
    - {e output stuck-at}: a gate output (including the input-delay
      buffers, i.e. the primary-input wires) is stuck at 0 or 1;
    - {e input stuck-at}: a single fanin pin of a single gate (a fanout
      branch) is stuck at 0 or 1.  This universe subsumes the output
      universe behaviourally (a stem fault equals all its branch faults
      at once) and is the model the paper's ATPG targets. *)

open Satg_circuit

type t =
  | Input_sa of {
      gate : int;  (** reading gate node id *)
      pin : int;  (** fanin position *)
      stuck : bool;
    }
  | Output_sa of {
      gate : int;  (** gate node id whose output is stuck *)
      stuck : bool;
    }

val equal : t -> t -> bool
val compare : t -> t -> int

val universe_input_sa : Circuit.t -> t list
(** Both polarities for every fanin pin of every gate, in a stable
    order.  Pins of constant gates are excluded (none exist). *)

val universe_output_sa : Circuit.t -> t list
(** Both polarities for every gate output (buffers included). *)

val site_signal : Circuit.t -> t -> int
(** The node whose {e stable} value excites the fault: the read node
    for an input fault, the gate itself for an output fault. *)

val stuck_value : t -> bool

val inject : Circuit.t -> t -> Circuit.t
(** Faulty copy of the circuit.  For input faults the pin is retargeted
    to a fresh constant node (the faulty circuit therefore has up to
    one extra node); for output faults the gate becomes a constant.
    Node ids of the original circuit are preserved; any reset state is
    dropped. *)

val initial_faulty_state : Circuit.t -> t -> bool array -> bool array
(** Power-up state of the injected circuit given the good circuit's
    reset state: the same values, with a stuck output forced to its
    stuck value from the start (the faulty node never held the good
    value) and the injection constant appended for input faults.  The
    result has {!Satg_circuit.Circuit.n_nodes} of the injected
    circuit. *)

val representative : Circuit.t -> t -> t
(** Canonical member of the fault's structural-equivalence class
    (classic rules: controlling-value input faults fold into the output
    fault; buffer/inverter input faults fold into the output fault).
    Two faults are equivalent — the injected circuits compute the same
    network function, so any test detecting one detects the other —
    iff their representatives are equal. *)

val collapse : Circuit.t -> t list -> t list
(** Structural equivalence collapsing: one fault per
    {!representative} class, keeping list order of first
    representatives. *)

val to_string : Circuit.t -> t -> string
val pp : Circuit.t -> Format.formatter -> t -> unit
