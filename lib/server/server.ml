let stop = ref false

let install_drain service =
  let handle =
    Sys.Signal_handle
      (fun _ ->
        stop := true;
        Service.interrupt service)
  in
  try
    Sys.set_signal Sys.sigint handle;
    Sys.set_signal Sys.sigterm handle;
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* A socket file may be a live daemon or the corpse of a killed one.
   Probing with a connect tells them apart: refusal means nobody is
   listening and the path can be reclaimed. *)
let claim_socket path =
  if not (Sys.file_exists path) then Ok ()
  else
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Error (Printf.sprintf "%s: a daemon is already serving" path)
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        (match Unix.unlink path with
        | () -> Ok ()
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ())
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
    in
    Unix.close fd;
    verdict

(* One connection: frames in, frames out, until EOF, a lost framing
   sync, a dead peer or the drain flag. *)
let serve_connection service fd =
  Service.note_connection service;
  let respond response =
    match Proto.write_frame fd (Proto.encode_response response) with
    | () -> true
    | exception Unix.Unix_error (_, _, _) -> false
  in
  let rec loop () =
    if !stop then ()
    else
      match Proto.read_frame fd with
      | Error Proto.Eof -> ()
      | Error Proto.Interrupted -> loop ()
      | Error (Proto.Malformed _) -> Service.note_malformed service
      | Ok payload ->
        let response =
          match Proto.decode_request payload with
          | Error msg -> Proto.Failure { code = "proto"; msg }
          | Ok request -> Service.handle service request
        in
        if respond response then loop ()
  in
  loop ()

let serve ?(on_ready = fun () -> ()) ~socket service =
  install_drain service;
  match claim_socket socket with
  | Error _ as e ->
    Service.shutdown service;
    e
  | Ok () ->
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let cleanup () =
      Unix.close listen_fd;
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      Service.shutdown service
    in
    (match
       Unix.bind listen_fd (Unix.ADDR_UNIX socket);
       Unix.listen listen_fd 16
     with
    | () ->
      on_ready ();
      let rec accept_loop () =
        if not !stop then
          match Unix.accept listen_fd with
          | client_fd, _ ->
            Fun.protect
              ~finally:(fun () -> try Unix.close client_fd with _ -> ())
              (fun () -> serve_connection service client_fd);
            accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ();
      cleanup ();
      Ok ()
    | exception Unix.Unix_error (e, op, _) ->
      cleanup ();
      Error (Printf.sprintf "%s %s: %s" op socket (Unix.error_message e)))
