(** Client side of the {!Proto} socket: connect, exchange frames,
    decode.  Used by [satg client], the conformance tests and the
    [--serve] benchmark. *)

type t

val connect :
  ?retry_for:float -> socket:string -> unit -> (t, string) result
(** Connect to the daemon's socket.  [retry_for] (seconds, default 0)
    keeps retrying a missing or refusing socket — the "daemon still
    booting" window after [satg serve] was forked. *)

val request : t -> Proto.request -> (Proto.response, string) result
(** One round trip.  [Error] on a dropped connection or an undecodable
    response; the connection should be considered dead afterwards. *)

val close : t -> unit

val one_shot :
  ?retry_for:float ->
  socket:string ->
  Proto.request ->
  (Proto.response, string) result
(** [connect], one {!request}, [close]. *)
