(** Request execution for the ATPG daemon: one long-lived {!t} owns the
    warm store, the worker pool and the counters; {!handle} maps each
    decoded {!Proto.request} to its {!Proto.response}.

    {2 QoS}

    Every ATPG/CSSG request runs under a fresh {!Satg_guard.Guard}
    built from the request's own budgets (deadline, state and
    transition ceilings) — one slow client degrades its own answer
    (a truncated graph, [Aborted] faults), never the daemon or the
    requests behind it.  {!interrupt} cancels the in-flight guard
    {e and} every guard created after it, which is how a drain signal
    turns the rest of a batch into fast degraded responses instead of
    hours of work.

    {2 Warm store}

    Results keyed by {!Satg_store.Session.key_of} — netlist bytes
    plus the exhaustive {!Satg_core.Session.config_fields} — are kept
    in memory (and, with [cache_dir], in the durable object store).
    Only {!Satg_store.Session.cacheable} results are stored: a
    deterministically budget-capped run is reproducible and therefore
    cacheable; a wall-clock or drain abort is not.  A hit is served
    with zero fault searches and [hit = true] on the wire.

    {2 Batches}

    Batch members are served in order, each under its own guard (and
    its own response — a tripped member degrades alone).  ATPG members
    sharing netlist bytes and CSSG-shaping budgets ([k], [timeout],
    [max-states], [max-transitions]) share one graph build per batch;
    the per-member phases still run under per-member guards, which
    reproduces the one-shot pipeline exactly (the run guard's counters
    are only ever spent on graph construction). *)

type t

val create : ?cache_dir:string -> ?jobs:int -> unit -> t
(** [jobs] spins up one {!Satg_pool.Pool} reused by every request —
    the daemon amortizes domain creation across its lifetime.
    [cache_dir] backs the warm store with the durable object store
    (shared with one-shot [--cache-dir] runs, both directions). *)

val handle : t -> Proto.request -> Proto.response
(** Never raises: parse failures, guard trips and internal errors all
    come back as responses. *)

val interrupt : t -> unit
(** Begin draining: cancel the in-flight guard family with
    [Interrupt], and pre-cancel every future one.  Safe from a signal
    handler.  Irreversible. *)

val shutdown : t -> unit
(** Release the worker pool.  The [t] must not be used afterwards. *)

val note_connection : t -> unit
(** Server-side accounting hooks for the accept loop. *)

val note_malformed : t -> unit

val stats_fields : t -> (string * string) list
(** The counters behind the [stats] request kind, in a fixed order:
    connections, malformed frames, per-kind request counts, warm-store
    hits/misses, CSSG builds, degraded responses, failures. *)
