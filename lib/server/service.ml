open Satg_circuit
open Satg_core
module Guard = Satg_guard.Guard
module Pool = Satg_pool.Pool
module Cssg = Satg_sg.Cssg
module Explicit = Satg_sg.Explicit
module Store = Satg_store.Session
module Inject = Satg_inject.Inject

type counters = {
  mutable connections : int;
  mutable malformed : int;
  mutable requests : int;
  mutable atpg : int;
  mutable cssg : int;
  mutable check : int;
  mutable batch : int;
  mutable batch_members : int;
  mutable stats : int;
  mutable hits : int;
  mutable misses : int;
  mutable cssg_builds : int;
  mutable degraded : int;
  mutable failures : int;
}

type t = {
  cache_dir : string option;
  pool : Pool.t option;
  warm : (string, Satg_store.Codec.result_payload) Hashtbl.t;
  k : counters;
  mutable draining : bool;
  mutable active : Guard.t option;
}

let create ?cache_dir ?jobs () =
  {
    cache_dir;
    pool = Option.map (fun jobs -> Pool.create ~jobs) jobs;
    warm = Hashtbl.create 64;
    k =
      {
        connections = 0;
        malformed = 0;
        requests = 0;
        atpg = 0;
        cssg = 0;
        check = 0;
        batch = 0;
        batch_members = 0;
        stats = 0;
        hits = 0;
        misses = 0;
        cssg_builds = 0;
        degraded = 0;
        failures = 0;
      };
    draining = false;
    active = None;
  }

let shutdown t = Option.iter Pool.shutdown t.pool
let note_connection t = t.k.connections <- t.k.connections + 1
let note_malformed t = t.k.malformed <- t.k.malformed + 1

let stats_fields t =
  let k = t.k in
  [
    ("connections", string_of_int k.connections);
    ("malformed-frames", string_of_int k.malformed);
    ("requests", string_of_int k.requests);
    ("atpg", string_of_int k.atpg);
    ("cssg", string_of_int k.cssg);
    ("check", string_of_int k.check);
    ("batch", string_of_int k.batch);
    ("batch-members", string_of_int k.batch_members);
    ("stats", string_of_int k.stats);
    ("hits", string_of_int k.hits);
    ("misses", string_of_int k.misses);
    ("cssg-builds", string_of_int k.cssg_builds);
    ("degraded", string_of_int k.degraded);
    ("failures", string_of_int k.failures);
  ]

(* --- drain ------------------------------------------------------------------ *)

let interrupt t =
  t.draining <- true;
  match t.active with Some g -> Guard.cancel g Guard.Interrupt | None -> ()

(* The per-request guard: the client's budgets, nobody else's.  Under
   drain it is born cancelled, so a queued batch member trips at its
   first probe and comes back as a fast degraded response. *)
let fresh_guard t ?timeout ?max_states ?max_transitions () =
  let g = Guard.create ?timeout ?max_states ?max_transitions () in
  t.active <- Some g;
  if t.draining then Guard.cancel g Guard.Interrupt;
  g

(* --- responses -------------------------------------------------------------- *)

let failure t code msg =
  t.k.failures <- t.k.failures + 1;
  Proto.Failure { code; msg }

let respond_result t ~hit payload =
  if Session.degraded payload then t.k.degraded <- t.k.degraded + 1;
  Proto.Result { hit; payload }

let respond_text t ~degraded text =
  if degraded then t.k.degraded <- t.k.degraded + 1;
  Proto.Text { degraded; text }

(* --- warm store ------------------------------------------------------------- *)

let warm_lookup t key =
  match Hashtbl.find_opt t.warm key with
  | Some p -> Some p
  | None -> (
    match t.cache_dir with
    | None -> None
    | Some dir -> (
      match Store.cached ~dir ~key with
      | Some p ->
        Hashtbl.replace t.warm key p;
        Some p
      | None -> None))

let warm_store t key payload =
  Hashtbl.replace t.warm key payload;
  match t.cache_dir with
  | None -> ()
  | Some dir -> (
    try Store.publish ~dir ~key payload
    with Sys_error _ | Unix.Unix_error _ | Inject.Injected _ -> ())

(* --- CSSG sharing ----------------------------------------------------------- *)

(* Two ATPG requests may share a graph build iff every input to the
   build is equal: the netlist bytes, the cycle budget and the guard
   ceilings that shape a truncation.  (The builder itself is
   deterministic for a fixed pool width, and the service has exactly
   one pool.) *)
let opt_int = function None -> "-" | Some n -> string_of_int n
let opt_float = function None -> "-" | Some f -> Printf.sprintf "%.17g" f

let group_key ~netlist (config : Engine.config) =
  String.concat "|"
    [
      Digest.to_hex (Digest.string netlist);
      opt_int config.Engine.k;
      opt_float config.Engine.timeout;
      opt_int config.Engine.max_states;
      opt_int config.Engine.max_transitions;
    ]

let build_cssg t ?k ~guard c =
  t.k.cssg_builds <- t.k.cssg_builds + 1;
  match t.pool with
  | Some pool -> Explicit.build_par ?k ~guard ~pool c
  | None -> Explicit.build ?k ~guard c

(* The first member of a group builds under its own request guard —
   exactly where the one-shot pipeline spends the run guard's counters
   — and later members reuse the graph with their counters unspent.
   That is still bit-faithful to their own one-shot runs: the engine
   spends run-guard counters on nothing but construction, and every
   phase gets fresh-counter sub-guards either way. *)
let shared_cssg t ~memo ~netlist ~config ~guard c =
  let gk = group_key ~netlist config in
  match Hashtbl.find_opt memo gk with
  | Some g -> g
  | None ->
    let g = build_cssg t ?k:config.Engine.k ~guard c in
    Hashtbl.replace memo gk g;
    g

(* --- request kinds ---------------------------------------------------------- *)

let run_atpg t ~memo (a : Proto.atpg_request) =
  t.k.atpg <- t.k.atpg + 1;
  (* the wire never carries [jobs]; the service pool is the daemon's *)
  let config = { a.Proto.config with Engine.jobs = None } in
  match Parser.parse_string a.Proto.netlist with
  | Error m -> failure t "parse" m
  | Ok c -> (
    let key =
      Store.key_of ~netlist:a.Proto.netlist ~universe:a.Proto.universe ~config
    in
    match warm_lookup t key with
    | Some payload ->
      t.k.hits <- t.k.hits + 1;
      respond_result t ~hit:true payload
    | None ->
      t.k.misses <- t.k.misses + 1;
      let guard =
        fresh_guard t ?timeout:config.Engine.timeout
          ?max_states:config.Engine.max_states
          ?max_transitions:config.Engine.max_transitions ()
      in
      let cssg =
        shared_cssg t ~memo ~netlist:a.Proto.netlist ~config ~guard c
      in
      let r = Session.run ~guard ?pool:t.pool ~cssg ~config c a.Proto.universe in
      let payload = Session.summary_of_result r in
      (* cacheable = reproducible: deterministic budget trips qualify,
         wall-clock/drain aborts and injected failures do not *)
      if Store.cacheable r && not (Inject.enabled ()) then
        warm_store t key payload;
      respond_result t ~hit:false payload)

let run_cssg t (c : Proto.cssg_request) =
  t.k.cssg <- t.k.cssg + 1;
  match Parser.parse_string c.Proto.c_netlist with
  | Error m -> failure t "parse" m
  | Ok circuit ->
    let guard =
      fresh_guard t ?timeout:c.Proto.c_timeout ?max_states:c.Proto.c_max_states
        ?max_transitions:c.Proto.c_max_transitions ()
    in
    let g = build_cssg t ?k:c.Proto.c_k ~guard circuit in
    let text =
      if c.Proto.c_dump then Format.asprintf "%a@." Cssg.pp g
      else Format.asprintf "%a@." Cssg.pp_stats g
    in
    respond_text t ~degraded:(Cssg.truncated g <> None) text

let run_check t netlist =
  t.k.check <- t.k.check + 1;
  match Parser.lint_string netlist with
  | _ :: _ as diags -> Proto.Diags diags
  | [] -> (
    match Parser.parse_string netlist with
    | Error m -> failure t "parse" m
    | Ok c -> (
      match Circuit.validate c with
      | Error m -> failure t "parse" m
      | Ok () -> respond_text t ~degraded:false (Session.check_report c)))

(* A request must never take the daemon down with it: anything a
   pathological netlist or an armed injection harness can raise comes
   back as a [Failure] response on that request alone. *)
let protect t f =
  try f () with
  | Inject.Injected m -> failure t "server" ("injected fault: " ^ m)
  | Unix.Unix_error (e, op, arg) ->
    failure t "server"
      (Printf.sprintf "%s %s: %s" op arg (Unix.error_message e))
  | Invalid_argument m | Sys_error m | Failure m -> failure t "server" m
  | e -> failure t "server" (Printexc.to_string e)

let rec handle_one t ~memo = function
  | Proto.Atpg a -> protect t (fun () -> run_atpg t ~memo a)
  | Proto.Cssg c -> protect t (fun () -> run_cssg t c)
  | Proto.Check netlist -> protect t (fun () -> run_check t netlist)
  | Proto.Stats ->
    t.k.stats <- t.k.stats + 1;
    Proto.Stats_r (stats_fields t)
  | Proto.Batch members ->
    t.k.batch <- t.k.batch + 1;
    t.k.batch_members <- t.k.batch_members + List.length members;
    Proto.Batch_r (List.map (handle_one t ~memo) members)

let handle t req =
  t.k.requests <- t.k.requests + 1;
  (* the CSSG memo lives for one request: a batch shares builds among
     its own members; cross-request warmth is the result store's job *)
  handle_one t ~memo:(Hashtbl.create 4) req
