(** The daemon's accept loop: a Unix-domain stream socket, one
    connection at a time, one {!Proto} frame per request.

    Sequential connection handling is a feature, not a shortcut: the
    expensive work inside a request already fans out over the service's
    worker pool, and serving requests in arrival order keeps the
    daemon's outcomes — and its counters — deterministic.

    Failure containment, from the outside in: a malformed frame drops
    its connection (framing sync is lost) and the loop keeps accepting;
    an undecodable payload earns a ["proto"] failure response on a
    still-healthy connection; a request that fails in execution earns a
    ["server"] failure response.  SIGPIPE is ignored (a client gone
    mid-response costs the connection, nothing else).

    SIGINT/SIGTERM start a {e graceful drain}: the in-flight request's
    guard family is cancelled (it returns a fast degraded response),
    queued batch members are born cancelled, the loop stops accepting,
    the socket is unlinked and {!serve} returns normally — so the CLI
    can print final stats and exit 0. *)

val serve :
  ?on_ready:(unit -> unit) -> socket:string -> Service.t -> (unit, string) result
(** Bind [socket], call [on_ready] once listening, serve until a drain
    signal, then clean up (close, unlink, {!Service.shutdown}).

    A pre-existing socket path is probed: a dead one (stale file from a
    killed daemon, connection refused) is unlinked and reclaimed; a
    live one is an [Error] — two daemons must not share a socket. *)
