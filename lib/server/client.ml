type t = Unix.file_descr

let connect ?(retry_for = 0.) ~socket () =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      (match e with
      | (Unix.ECONNREFUSED | Unix.ENOENT)
        when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.02;
        go ()
      | _ -> Error (Printf.sprintf "%s: %s" socket (Unix.error_message e)))
  in
  go ()

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let request fd req =
  match Proto.write_frame fd (Proto.encode_request req) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send: %s" (Unix.error_message e))
  | () -> (
    match Proto.read_frame fd with
    | Ok payload -> Proto.decode_response payload
    | Error Proto.Eof -> Error "connection closed by daemon"
    | Error Proto.Interrupted -> Error "interrupted"
    | Error (Proto.Malformed m) -> Error ("malformed response: " ^ m))

let one_shot ?retry_for ~socket req =
  match connect ?retry_for ~socket () with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect ~finally:(fun () -> close fd) (fun () -> request fd req)
