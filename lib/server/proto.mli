(** Wire protocol of the ATPG service.

    {2 Framing}

    One message is one {e frame}:

    {v u32le payload-length ++ u32le crc32(payload) ++ payload v}

    — the store's journal-record discipline ({!Satg_store.Journal}),
    applied to a socket.  The CRC makes a torn or corrupted stream a
    clean {!read_error}, never a half-parsed request; the length
    ceiling ({!max_frame_bytes}) rejects hostile headers before any
    allocation.  A malformed frame poisons only its connection (the
    stream has lost sync); the daemon keeps serving.

    {2 Payloads}

    Payloads are line-oriented text: a kind line, a [key value] header
    block closed by one empty line, then free bytes (the netlist).
    The ATPG config block is exactly
    {!Satg_core.Session.config_fields} — the same exhaustive field
    list the cache key hashes, so a request's wire form and its cache
    identity cannot drift apart.  Batch payloads nest length-prefixed
    sub-payloads (one level only).

    Everything round-trips exactly; decoders return [Error] on any
    malformed input. *)

open Satg_core
open Satg_circuit

type atpg_request = {
  netlist : string;  (** raw [.cct] bytes *)
  universe : Session.universe;
  config : Engine.config;
      (** outcome-relevant fields only travel; [jobs] is stripped (the
          server owns its own parallelism; outcomes are j-invariant) *)
}

type cssg_request = {
  c_netlist : string;
  c_k : int option;
  c_dump : bool;
  c_timeout : float option;
  c_max_states : int option;
  c_max_transitions : int option;
}

type request =
  | Atpg of atpg_request
  | Cssg of cssg_request
  | Check of string  (** netlist bytes; lint + structural report *)
  | Batch of request list
      (** members are served in order; same-netlist ATPG members with
          equal CSSG-relevant budgets share one graph build *)
  | Stats  (** server-side counters *)

type response =
  | Result of { hit : bool; payload : Satg_store.Codec.result_payload }
      (** a settled ATPG run; [hit] means it was served from the warm
          store with zero fault searches *)
  | Text of { degraded : bool; text : string }
      (** rendered report ([cssg], [check] success); [degraded] maps
          to the CLI's exit code 2 *)
  | Diags of Parser.diag list
      (** structured [check] lint findings — a malformed netlist is an
          answer, never a daemon crash *)
  | Failure of { code : string; msg : string }
      (** ["parse"], ["proto"], ["server"]; maps to CLI exit 1 *)
  | Batch_r of response list
  | Stats_r of (string * string) list

val max_frame_bytes : int

type read_error =
  | Eof  (** clean end of stream between frames *)
  | Interrupted  (** a signal broke the read (daemon drain) *)
  | Malformed of string
      (** bad length, bad CRC, torn frame — the connection must be
          dropped (framing sync is lost) *)

val write_frame : Unix.file_descr -> string -> unit
(** @raise Invalid_argument beyond {!max_frame_bytes};
    Unix errors propagate (the caller owns the connection). *)

val read_frame : Unix.file_descr -> (string, read_error) result

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
