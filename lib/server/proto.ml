open Satg_core
open Satg_circuit
module Codec = Satg_store.Codec
module Crc32 = Satg_store.Crc32

type atpg_request = {
  netlist : string;
  universe : Session.universe;
  config : Engine.config;
}

type cssg_request = {
  c_netlist : string;
  c_k : int option;
  c_dump : bool;
  c_timeout : float option;
  c_max_states : int option;
  c_max_transitions : int option;
}

type request =
  | Atpg of atpg_request
  | Cssg of cssg_request
  | Check of string
  | Batch of request list
  | Stats

type response =
  | Result of { hit : bool; payload : Codec.result_payload }
  | Text of { degraded : bool; text : string }
  | Diags of Parser.diag list
  | Failure of { code : string; msg : string }
  | Batch_r of response list
  | Stats_r of (string * string) list

(* --- framing --------------------------------------------------------------- *)

let max_frame_bytes = 1 lsl 26 (* 64 MiB: a netlist plus headroom *)

type read_error = Eof | Interrupted | Malformed of string

let rec write_all fd b pos len =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame_bytes then invalid_arg "Proto.write_frame: frame too large";
  let b = Bytes.create (8 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int32_le b 4 (Int32.of_int (Crc32.string payload));
  Bytes.blit_string payload 0 b 8 n;
  write_all fd b 0 (8 + n)

(* [`Eof n] = stream ended after [n] of the wanted bytes.  EINTR is
   surfaced, not retried: a drain signal must be able to break an idle
   daemon out of a blocking read. *)
let really_read fd b len =
  let rec go pos =
    if pos >= len then `Ok
    else
      match Unix.read fd b pos (len - pos) with
      | 0 -> `Eof pos
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Intr
  in
  go 0

let u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let read_frame fd =
  let header = Bytes.create 8 in
  match really_read fd header 8 with
  | `Eof 0 -> Error Eof
  | `Eof _ -> Error (Malformed "torn frame header")
  | `Intr -> Error Interrupted
  | `Ok ->
    let len = u32 header 0 and crc = u32 header 4 in
    if len > max_frame_bytes then
      Error (Malformed (Printf.sprintf "oversized frame (%d bytes)" len))
    else
      let body = Bytes.create len in
      (match really_read fd body len with
      | `Eof _ -> Error (Malformed "torn frame payload")
      | `Intr -> Error Interrupted
      | `Ok ->
        let payload = Bytes.unsafe_to_string body in
        if Crc32.string payload <> crc then
          Error (Malformed "frame checksum mismatch")
        else Ok payload)

(* --- payload text ---------------------------------------------------------- *)

let opt_int_str = function None -> "-" | Some n -> string_of_int n
let opt_float_str = function None -> "-" | Some f -> Printf.sprintf "%.17g" f

let opt_int_of = function
  | "-" -> Some None
  | s -> Option.map Option.some (int_of_string_opt s)

let opt_float_of = function
  | "-" -> Some None
  | s -> Option.map Option.some (float_of_string_opt s)

let fields_block fields =
  String.concat "" (List.map (fun (k, v) -> k ^ " " ^ v ^ "\n") fields)

let split_first_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* [key value] lines up to one empty line; the rest is free bytes. *)
let parse_header body =
  let rec go acc pos =
    match String.index_from_opt body pos '\n' with
    | None -> Error "unterminated header block"
    | Some i ->
      let line = String.sub body pos (i - pos) in
      if line = "" then
        Ok (List.rev acc, String.sub body (i + 1) (String.length body - i - 1))
      else (
        match String.index_opt line ' ' with
        | None -> Error (Printf.sprintf "malformed header line %S" line)
        | Some j ->
          go
            ((String.sub line 0 j,
              String.sub line (j + 1) (String.length line - j - 1))
            :: acc)
            (i + 1))
  in
  go [] 0

let field fields k = List.assoc_opt k fields

let cssg_fields (c : cssg_request) =
  [
    ("k", opt_int_str c.c_k);
    ("timeout", opt_float_str c.c_timeout);
    ("max-states", opt_int_str c.c_max_states);
    ("max-transitions", opt_int_str c.c_max_transitions);
  ]

(* --- requests -------------------------------------------------------------- *)

let rec encode_request = function
  | Atpg a ->
    "atpg\n"
    ^ fields_block (Session.config_fields ~universe:a.universe a.config)
    ^ "\n" ^ a.netlist
  | Cssg c ->
    Printf.sprintf "cssg %d\n" (Bool.to_int c.c_dump)
    ^ fields_block (cssg_fields c)
    ^ "\n" ^ c.c_netlist
  | Check netlist -> "check\n\n" ^ netlist
  | Stats -> "stats\n"
  | Batch reqs ->
    Printf.sprintf "batch %d\n" (List.length reqs)
    ^ String.concat ""
        (List.map
           (fun r ->
             let p = encode_request r in
             Printf.sprintf "%d\n%s" (String.length p) p)
           reqs)

let decode_atpg body =
  match parse_header body with
  | Error m -> Error m
  | Ok (fields, netlist) -> (
    match Session.config_of_fields fields with
    | None -> Error "bad atpg config block"
    | Some (universe, config) -> Ok (Atpg { netlist; universe; config }))

let decode_cssg arg body =
  match (arg, parse_header body) with
  | _, Error m -> Error m
  | Some ("0" | "1"), Ok (fields, c_netlist) -> (
    let c_dump = arg = Some "1" in
    match
      ( Option.bind (field fields "k") opt_int_of,
        Option.bind (field fields "timeout") opt_float_of,
        Option.bind (field fields "max-states") opt_int_of,
        Option.bind (field fields "max-transitions") opt_int_of )
    with
    | Some c_k, Some c_timeout, Some c_max_states, Some c_max_transitions ->
      Ok
        (Cssg
           {
             c_netlist;
             c_k;
             c_dump;
             c_timeout;
             c_max_states;
             c_max_transitions;
           })
    | _ -> Error "bad cssg config block")
  | _, Ok _ -> Error "bad cssg dump flag"

(* [len\n ++ bytes], repeated [n] times. *)
let decode_nested decode_one n body =
  let len = String.length body in
  let rec go acc n pos =
    if n = 0 then
      if pos = len then Ok (List.rev acc) else Error "trailing batch bytes"
    else
      match String.index_from_opt body pos '\n' with
      | None -> Error "torn batch member"
      | Some i -> (
        match int_of_string_opt (String.sub body pos (i - pos)) with
        | Some l when l >= 0 && i + 1 + l <= len -> (
          match decode_one (String.sub body (i + 1) l) with
          | Ok r -> go (r :: acc) (n - 1) (i + 1 + l)
          | Error m -> Error m)
        | _ -> Error "bad batch member length")
  in
  go [] n 0

let rec decode_request s =
  let kind_line, body = split_first_line s in
  let kind, arg =
    match String.index_opt kind_line ' ' with
    | None -> (kind_line, None)
    | Some i ->
      ( String.sub kind_line 0 i,
        Some
          (String.sub kind_line (i + 1) (String.length kind_line - i - 1)) )
  in
  let decode_member m =
    let k, _ = split_first_line m in
    let k = match String.index_opt k ' ' with
      | None -> k
      | Some i -> String.sub k 0 i
    in
    match k with
    | "batch" -> Error "nested batch"
    | "stats" -> Error "stats inside batch"
    | _ -> decode_request m
  in
  match (kind, arg) with
  | "atpg", None -> decode_atpg body
  | "cssg", _ -> decode_cssg arg body
  | "check", None -> (
    match parse_header body with
    | Error m -> Error m
    | Ok ([], netlist) -> Ok (Check netlist)
    | Ok (_ :: _, _) -> Error "unexpected check header fields")
  | "stats", None -> Ok Stats
  | "batch", Some n -> (
    match int_of_string_opt n with
    | Some n when n >= 0 && n <= 4096 ->
      Result.map (fun rs -> Batch rs) (decode_nested decode_member n body)
    | _ -> Error "bad batch count")
  | _ -> Error (Printf.sprintf "unknown request kind %S" kind_line)

(* --- responses ------------------------------------------------------------- *)

let rec encode_response = function
  | Result { hit; payload } ->
    Printf.sprintf "result %d\n" (Bool.to_int hit)
    ^ Codec.result_to_string payload
  | Text { degraded; text } ->
    Printf.sprintf "text %d\n" (Bool.to_int degraded) ^ text
  | Diags ds ->
    Printf.sprintf "diags %d\n" (List.length ds)
    ^ String.concat ""
        (List.map
           (fun (d : Parser.diag) ->
             Printf.sprintf "%d %s\n" d.Parser.line d.Parser.msg)
           ds)
  | Failure { code; msg } -> Printf.sprintf "error %s\n" code ^ msg
  | Batch_r rs ->
    Printf.sprintf "batch %d\n" (List.length rs)
    ^ String.concat ""
        (List.map
           (fun r ->
             let p = encode_response r in
             Printf.sprintf "%d\n%s" (String.length p) p)
           rs)
  | Stats_r fields ->
    Printf.sprintf "stats %d\n" (List.length fields) ^ fields_block fields

let decode_diag line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i -> (
    match int_of_string_opt (String.sub line 0 i) with
    | Some n when n >= 0 ->
      Some
        {
          Parser.line = n;
          msg = String.sub line (i + 1) (String.length line - i - 1);
        }
    | _ -> None)

let decode_lines body n of_line what =
  let rec go acc n pos =
    if n = 0 then Ok (List.rev acc)
    else
      match String.index_from_opt body pos '\n' with
      | None -> Error ("torn " ^ what)
      | Some i -> (
        match of_line (String.sub body pos (i - pos)) with
        | Some d -> go (d :: acc) (n - 1) (i + 1)
        | None -> Error ("bad " ^ what))
  in
  go [] n 0

let rec decode_response s =
  let kind_line, body = split_first_line s in
  let kind, arg =
    match String.index_opt kind_line ' ' with
    | None -> (kind_line, None)
    | Some i ->
      ( String.sub kind_line 0 i,
        Some
          (String.sub kind_line (i + 1) (String.length kind_line - i - 1)) )
  in
  match (kind, arg) with
  | "result", Some (("0" | "1") as hit) ->
    Result.map
      (fun payload -> Result { hit = hit = "1"; payload })
      (Codec.result_of_string body)
  | "text", Some (("0" | "1") as d) ->
    Ok (Text { degraded = d = "1"; text = body })
  | "diags", Some n -> (
    match int_of_string_opt n with
    | Some n when n >= 0 ->
      Result.map (fun ds -> Diags ds) (decode_lines body n decode_diag "diag")
    | _ -> Error "bad diags count")
  | "error", Some code -> Ok (Failure { code; msg = body })
  | "batch", Some n -> (
    match int_of_string_opt n with
    | Some n when n >= 0 && n <= 4096 ->
      Result.map (fun rs -> Batch_r rs) (decode_nested decode_response n body)
    | _ -> Error "bad batch count")
  | "stats", Some n -> (
    match int_of_string_opt n with
    | Some n when n >= 0 ->
      Result.map
        (fun fields -> Stats_r fields)
        (decode_lines body n
           (fun line ->
             match String.index_opt line ' ' with
             | None -> None
             | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.sub line (i + 1) (String.length line - i - 1) ))
           "stats field")
    | _ -> Error "bad stats count")
  | _ -> Error (Printf.sprintf "unknown response kind %S" kind_line)
