(** Symbolic (BDD-based) CSSG construction — the paper's actual method
    (§4.2): transition relations [R_I] and [R_delta] as BDDs, the
    k-step test-cycle relation [TCR_k] by relational-product iteration,
    and the non-confluence pruning by the pair-splitting check
    [∃ s''. TCR_k(s, s'') ∧ X_I(s'') = X_I(s') ∧ s'' ≠ s'].

    Each circuit node owns three adjacent BDD variables (present, next,
    auxiliary) at its {e rank} in the variable order; the rank
    permutation is configurable ([?node_order]), which is the paper's
    §6 suggestion of studying variable-ordering strategies. *)

open Satg_guard
open Satg_circuit
open Satg_bdd

type t

val default_cluster_cap : int

val build :
  ?k:int ->
  ?node_order:int array ->
  ?style:[ `Partitioned | `Monolithic ] ->
  ?reorder:Bdd.reorder_mode ->
  ?cluster_cap:int ->
  ?guard:Guard.t ->
  Circuit.t ->
  t
(** [node_order] maps each node id to its rank in the variable order
    (default: creation order, which interleaves inputs and gates).

    [style] selects the transition-relation representation (default
    [`Partitioned]): the partitioned form keeps one excited∧flip
    conjunct per gate plus frame-equality clusters chunked along the
    rank order under [cluster_cap] nodes each, and computes images by
    a clustered [and_exists] schedule that quantifies every auxiliary
    variable out at the last conjunct mentioning it.  [`Monolithic] is
    the paper's literal single-BDD [R_delta] — kept as the reference
    oracle for benchmarks and conformance runs; both styles produce
    identical graphs.

    [reorder] (default {!Bdd.Reorder_none}) enables sifting-based
    dynamic variable reordering inside the manager.

    [guard] governs the traversal: one transition per relational
    product, states spent as the reachable set grows (counted by
    sat-count after each ring).  Exhaustion does {e not} raise: the
    last completed ring is kept and the result is tagged
    {!truncated} — a sound under-approximation of the full graph.

    The guard is also installed in the BDD manager, so [mk]/[apply]
    cache misses probe it and a deadline trips {e inside} a runaway
    image computation, not just at ring boundaries.  A trip that
    predates the transition relations degrades to the one-state
    (reset, no edges) graph, still tagged {!truncated}.
    @raise Invalid_argument if the circuit has no (stable) reset state
    or [node_order] is not a permutation. *)

val truncated : t -> Guard.reason option
(** Why the reachability traversal stopped early, if it did. *)

val live_nodes : t -> int
(** Total BDD nodes of the retained artefacts (transition relations,
    reachable set, CSSG relation) — the variable-ordering metric. *)

val circuit : t -> Circuit.t
val k : t -> int
val man : t -> Bdd.man

val bdd_stats : t -> Bdd.stats
(** Health counters of the underlying manager (node counts, unique
    table load, per-op cache hit/miss) — the [--stats] payload. *)

val with_guard : t -> Guard.t -> (unit -> 'a) -> 'a
(** Run [f] with the manager's hot-path guard swapped for [g]
    (restored on return or exception) — how per-fault budgets govern
    symbolic justification inside the three-phase engine. *)

val stable_set : t -> Bdd.t
(** All stable states, over present variables. *)

val reachable : t -> Bdd.t
(** Stable states reachable in test mode from reset (present vars). *)

val n_reachable : t -> int

val cssg_relation : t -> Bdd.t
(** Valid edges over (present, next) variables. *)

val gate_function : t -> int -> Bdd.t
(** The gate's instantaneous function over present variables. *)

val state_to_bdd : t -> bool array -> Bdd.t
(** Minterm over present variables. *)

val justify :
  t -> target:Bdd.t -> (bool array list * bool array) option
(** Onion-ring shortest path from the reset state to any state in
    [target] (a set over present variables), following only valid CSSG
    edges.  Returns the input-vector sequence and the concrete reached
    state. *)

val to_cssg : t -> Cssg.t
(** Enumerate the symbolic graph into the explicit representation
    (for cross-checks and for the concrete ATPG phases).  The
    {!truncated} tag carries over to {!Cssg.truncated}. *)

val sift_order : t -> int array
(** Greedy sifting over node ranks: starting from this instance's
    order, repeatedly try moving each node's variable triple to every
    position and keep the placement minimising the transferred size of
    the retained artefacts.  Returns a [node_order] suitable for
    {!build}; rebuilding with it never yields more live nodes than the
    original order. *)
