open Satg_guard
open Satg_circuit

type edge = {
  vector : bool array;
  target : int;
}

type t = {
  circuit : Circuit.t;
  k : int;
  states : bool array array;
  index : (string, int) Hashtbl.t;
  succ : edge list array;
  initial : int list;
  deterministic : bool array;
  truncated : Guard.reason option;
}

let reachable_via_edges succ initial n =
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter (fun e -> visit e.target) succ.(i)
    end
  in
  List.iter visit initial;
  seen

let make ?truncated ~circuit ~k ~states ~succ ~initial () =
  let n = Array.length states in
  if Array.length succ <> n then invalid_arg "Cssg.make: succ length mismatch";
  List.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Cssg.make: bad initial id")
    initial;
  Array.iter
    (fun edges ->
      List.iter
        (fun e ->
          if e.target < 0 || e.target >= n then
            invalid_arg "Cssg.make: bad edge target")
        edges)
    succ;
  let index = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun i s -> Hashtbl.replace index (Circuit.state_to_string circuit s) i)
    states;
  {
    circuit;
    k;
    states;
    index;
    succ;
    initial;
    deterministic = reachable_via_edges succ initial n;
    truncated;
  }

let circuit t = t.circuit
let k t = t.k
let truncated t = t.truncated
let n_states t = Array.length t.states
let n_edges t = Array.fold_left (fun acc es -> acc + List.length es) 0 t.succ
let state t i = Array.copy t.states.(i)

let id_of_state t s =
  Hashtbl.find_opt t.index (Circuit.state_to_string t.circuit s)

let initial t = t.initial
let successors t i = t.succ.(i)

let apply t i v =
  List.find_map
    (fun e -> if e.vector = v then Some e.target else None)
    t.succ.(i)

let deterministically_reachable t i = t.deterministic.(i)

let justify t ?from ~target () =
  let sources = match from with Some l -> l | None -> t.initial in
  let n = Array.length t.states in
  let parent = Array.make n None in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let found = ref None in
  List.iter
    (fun i ->
      if not seen.(i) then begin
        seen.(i) <- true;
        Queue.add i queue
      end)
    sources;
  (try
     while not (Queue.is_empty queue) do
       let i = Queue.take queue in
       if target i then begin
         found := Some i;
         raise Exit
       end;
       List.iter
         (fun e ->
           if not seen.(e.target) then begin
             seen.(e.target) <- true;
             parent.(e.target) <- Some (i, e.vector);
             Queue.add e.target queue
           end)
         t.succ.(i)
     done
   with Exit -> ());
  match !found with
  | None -> None
  | Some goal ->
    let rec unwind i acc =
      match parent.(i) with
      | None -> acc
      | Some (p, v) -> unwind p (v :: acc)
    in
    Some (unwind goal [], goal)

let reachable_from t sources =
  reachable_via_edges t.succ sources (Array.length t.states)

let pp_stats fmt t =
  let det =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.deterministic
  in
  Format.fprintf fmt
    "CSSG(%s, k=%d): %d stable states (%d deterministically reachable), %d valid edges%s"
    (Circuit.name t.circuit) t.k (n_states t) det (n_edges t)
    (match t.truncated with
    | None -> ""
    | Some r -> Printf.sprintf " [TRUNCATED: %s]" (Guard.reason_to_string r))

(* Initial membership as a flat mask (mirrors [has_incoming] below):
   [List.mem] per state would make printing O(states × initials). *)
let initial_mask t =
  let is_initial = Array.make (Array.length t.states) false in
  List.iter (fun i -> is_initial.(i) <- true) t.initial;
  is_initial

let pp fmt t =
  pp_stats fmt t;
  Format.pp_print_newline fmt ();
  let is_initial = initial_mask t in
  Array.iteri
    (fun i s ->
      Format.fprintf fmt "  [%d]%s %s ->" i
        (if is_initial.(i) then "*" else "")
        (Circuit.state_to_string t.circuit s);
      List.iter
        (fun e ->
          let v =
            String.init (Array.length e.vector) (fun j ->
                if e.vector.(j) then '1' else '0')
          in
          Format.fprintf fmt " %s:[%d]" v e.target)
        t.succ.(i);
      Format.pp_print_newline fmt ())
    t.states

let to_dot t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph \"%s\" {\n  rankdir=LR;\n" (Circuit.name t.circuit);
  let has_incoming = Array.make (Array.length t.states) false in
  Array.iter
    (List.iter (fun e -> has_incoming.(e.target) <- true))
    t.succ;
  let is_initial = initial_mask t in
  Array.iteri
    (fun i s ->
      let initial = is_initial.(i) in
      pr "  s%d [label=\"%s\"%s%s];\n" i
        (Circuit.state_to_string t.circuit s)
        (if initial then ", peripheries=2" else "")
        (if (not initial) && not has_incoming.(i) then
           ", style=filled, fillcolor=lightgrey"
         else "")
    )
    t.states;
  Array.iteri
    (fun i edges ->
      List.iter
        (fun e ->
          let v =
            String.init (Array.length e.vector) (fun j ->
                if e.vector.(j) then '1' else '0')
          in
          pr "  s%d -> s%d [label=\"%s\"];\n" i e.target v)
        edges)
    t.succ;
  pr "}\n";
  Buffer.contents buf
