(** Explicit-state CSSG construction.

    Enumerates stable states reachable in test mode from the circuit's
    reset state.  Two strategies:

    - [`Pure]: every (state, vector) pair is classified by exhaustive
      unbounded-delay exploration ({!Satg_sim.Async_sim}), exactly as
      the paper defines [TCR_k] — the oracle used to cross-check the
      symbolic engine, exponential in the concurrency width;
    - [`Hybrid] (default): the same verdicts through the early-exit
      classifier {!Satg_sim.Async_sim.classify_vector} (a second stable
      outcome or a repeating frontier ends the analysis immediately),
      capped at [max_frontier] interleaving states per layer.  A capped
      pair is conservatively pruned and no TCSG nodes are harvested
      from it; below the cap both strategies agree exactly.

    Note that a ternary-simulation shortcut would be {e unsound} here:
    ternary simulation certifies settling of every fair execution,
    while [TCR_k] also counts unfair interleavings in which a transient
    oscillation consumes the whole budget while some other excited gate
    waits (the paper's "transient oscillations" remark in section 2).
    The test suite contains a random-circuit property that distinguishes
    the two semantics. *)

open Satg_guard
open Satg_circuit
open Satg_pool

val build :
  ?k:int ->
  ?exploration:[ `Hybrid | `Pure ] ->
  ?max_frontier:int ->
  ?guard:Guard.t ->
  Circuit.t ->
  Cssg.t
(** [k] defaults to {!Satg_circuit.Structure.default_k};
    [max_frontier] (default 20_000) only limits [`Hybrid] fallback
    exploration.

    [guard] governs the whole construction: one state spent per
    interned stable state (the reset state is exempt, so even a
    zero-budget build yields a valid one-state graph), transitions
    spent by the underlying unbounded-delay exploration.  Exhaustion
    does {e not} raise out of [build]: the graph explored so far is
    returned, tagged with {!Cssg.truncated}.
    @raise Invalid_argument if the circuit has no stable reset state. *)

val build_par :
  ?k:int ->
  ?exploration:[ `Hybrid | `Pure ] ->
  ?max_frontier:int ->
  ?chunk:int ->
  ?guard:Guard.t ->
  pool:Pool.t ->
  Circuit.t ->
  Cssg.t
(** [build] fanned out over a {!Satg_pool.Pool}: fixed-size batches of
    the BFS frontier are classified concurrently (each worker under a
    private [Guard.sub] carrying the shared deadline and the batch's
    transition allowance), then merged on the caller in frontier order
    — interning, edge recording and budget re-spending all happen
    sequentially in the merge, so state numbering is identical to
    {!build} and the resulting graph is bit-identical for {e every}
    pool width, including a 1-worker pool.

    [chunk] (default 32, clamped to ≥ 1) is the frontier batch size
    between merge barriers.  The default is deliberately {e not}
    derived from the pool width — that is what makes truncation points
    [-j]-independent.  A caller sizing it to the measured host core
    count (the benchmark does) trades that invariance for fuller
    batches on wide machines; the untruncated graph is identical for
    every [chunk].

    On an untruncated run the graph equals {!build}'s exactly.  Under
    a tripped budget the truncation point is deterministic across pool
    widths (batch boundaries never depend on [jobs]) but may differ
    from the sequential builder's, which trips mid-classification
    rather than at merge granularity. *)

(** Packed-key state interning — the [build] hot path, exposed for the
    intern micro-benchmark and white-box tests. *)
module Intern : sig
  type t

  val create : n_nodes:int -> t

  val intern : t -> guard:Guard.t -> bool array -> int * bool
  (** The id, and whether the state is new.  Spends one guard state
      per fresh intern after the first.
      @raise Satg_guard.Guard.Exhausted when the state budget trips. *)

  val count : t -> int

  val states : t -> bool array array
  (** In intern order. *)
end
