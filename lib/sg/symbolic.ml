open Satg_logic
open Satg_guard
open Satg_circuit
open Satg_bdd

type t = {
  circuit : Circuit.t;
  k : int;
  man : Bdd.man;
  rank : int array;  (* node id -> position in the variable order *)
  node_of_rank : int array;
  stable : Bdd.t;
  r_input : Bdd.t;  (* R_I over (x, y) *)
  r_delta_zy : Bdd.t;  (* R_delta over (z, y), pre-renamed for iteration *)
  reachable : Bdd.t;  (* over x *)
  cssg : Bdd.t;  (* over (x, y) *)
  reset : bool array;
  truncated : Guard.reason option;
}

(* Each node owns three adjacent BDD variables at its rank: present,
   next, auxiliary.  The rank permutation is the variable-ordering
   knob; the triple structure never changes, so the x/y/z renamings
   below are rank-independent. *)
let x_of t i = 3 * t.rank.(i)
let y_of t i = (3 * t.rank.(i)) + 1

let circuit t = t.circuit
let k t = t.k
let man t = t.man
let stable_set t = t.stable
let reachable t = t.reachable
let cssg_relation t = t.cssg
let truncated t = t.truncated

(* --- building blocks ---------------------------------------------------- *)

let func_bdd m c var_of gid =
  let fanin = Circuit.fanins c gid in
  let in_var p = Bdd.var m (var_of fanin.(p)) in
  match Circuit.func c gid with
  | Gatefunc.Buf -> in_var 0
  | Gatefunc.Not -> Bdd.not_ m (in_var 0)
  | Gatefunc.And -> Bdd.and_list m (List.init (Array.length fanin) in_var)
  | Gatefunc.Or -> Bdd.or_list m (List.init (Array.length fanin) in_var)
  | Gatefunc.Nand ->
    Bdd.not_ m (Bdd.and_list m (List.init (Array.length fanin) in_var))
  | Gatefunc.Nor ->
    Bdd.not_ m (Bdd.or_list m (List.init (Array.length fanin) in_var))
  | Gatefunc.Xor ->
    List.fold_left (Bdd.xor_ m) (Bdd.zero m)
      (List.init (Array.length fanin) in_var)
  | Gatefunc.Xnor ->
    Bdd.not_ m
      (List.fold_left (Bdd.xor_ m) (Bdd.zero m)
         (List.init (Array.length fanin) in_var))
  | Gatefunc.Mux -> Bdd.ite m (in_var 0) (in_var 1) (in_var 2)
  | Gatefunc.Celem ->
    let all = Bdd.and_list m (List.init (Array.length fanin) in_var) in
    let any = Bdd.or_list m (List.init (Array.length fanin) in_var) in
    let self = Bdd.var m (var_of gid) in
    Bdd.or_ m all (Bdd.and_ m self any)
  | Gatefunc.Const b -> if b then Bdd.one m else Bdd.zero m
  | Gatefunc.Sop cover ->
    List.fold_left
      (fun acc cube ->
        let term = ref (Bdd.one m) in
        Array.iteri
          (fun p l ->
            match l with
            | Cube.D -> ()
            | Cube.T -> term := Bdd.and_ m !term (in_var p)
            | Cube.F -> term := Bdd.and_ m !term (Bdd.not_ m (in_var p)))
          (Cube.lits cube);
        Bdd.or_ m acc !term)
      (Bdd.zero m) (Cover.cubes cover)

let gate_function t gid = func_bdd t.man t.circuit (x_of t) gid

(* --- construction -------------------------------------------------------- *)

let build ?k ?node_order ?(guard = Guard.none) c =
  let k = match k with Some k -> k | None -> Structure.default_k c in
  let reset =
    match Circuit.initial c with
    | Some s when Circuit.is_stable c s -> s
    | Some _ -> invalid_arg "Symbolic.build: reset state not stable"
    | None -> invalid_arg "Symbolic.build: circuit has no reset state"
  in
  let n = Circuit.n_nodes c in
  let rank =
    match node_order with
    | None -> Array.init n Fun.id
    | Some r ->
      if Array.length r <> n then
        invalid_arg "Symbolic.build: node_order length mismatch";
      let seen = Array.make n false in
      Array.iter
        (fun v ->
          if v < 0 || v >= n || seen.(v) then
            invalid_arg "Symbolic.build: node_order is not a permutation";
          seen.(v) <- true)
        r;
      Array.copy r
  in
  let node_of_rank = Array.make n 0 in
  Array.iteri (fun i r -> node_of_rank.(r) <- i) rank;
  (* The guard rides inside the manager: Bdd.mk/apply probe it on every
     cache miss, so a deadline trips mid-apply even when one image
     computation blows up between the loop-boundary checks below. *)
  let m = Bdd.create ~nvars:(3 * n) ~cache_size:(1 lsl 15) ~guard () in
  let xv i = 3 * rank.(i) and yv i = (3 * rank.(i)) + 1 in
  let zv i = (3 * rank.(i)) + 2 in
  let reset_bdd_of () =
    Bdd.and_list m
      (List.init n (fun i ->
           if reset.(i) then Bdd.var m (xv i) else Bdd.nvar m (xv i)))
  in
  try
  let gates = Circuit.gates c in
  let env = Circuit.inputs c in
  let excited =
    Array.map
      (fun gid -> Bdd.xor_ m (func_bdd m c xv gid) (Bdd.var m (xv gid)))
      gates
  in
  let stable =
    Array.fold_left
      (fun acc e -> Bdd.and_ m acc (Bdd.not_ m e))
      (Bdd.one m) excited
  in
  (* Equality chains over all nodes in rank order (keeps the
     conjunction shallow w.r.t. the chosen order). *)
  let eq_xy =
    Array.init n (fun i -> Bdd.iff m (Bdd.var m (xv i)) (Bdd.var m (yv i)))
  in
  (* prefix.(r) = equality of the first r nodes in rank order *)
  let prefix = Array.make (n + 1) (Bdd.one m) in
  for r = 0 to n - 1 do
    prefix.(r + 1) <- Bdd.and_ m prefix.(r) eq_xy.(node_of_rank.(r))
  done;
  let suffix = Array.make (n + 1) (Bdd.one m) in
  for r = n - 1 downto 0 do
    suffix.(r) <- Bdd.and_ m suffix.(r + 1) eq_xy.(node_of_rank.(r))
  done;
  let all_eq = prefix.(n) in
  let fire_disjuncts =
    Array.to_list
      (Array.mapi
         (fun idx gid ->
           let flip =
             Bdd.iff m (Bdd.var m (yv gid)) (Bdd.not_ m (Bdd.var m (xv gid)))
           in
           let r = rank.(gid) in
           let frame = Bdd.and_ m prefix.(r) suffix.(r + 1) in
           Bdd.and_list m [ excited.(idx); flip; frame ])
         gates)
  in
  let r_delta =
    Bdd.or_ m (Bdd.or_list m fire_disjuncts) (Bdd.and_ m stable all_eq)
  in
  let gates_eq =
    Array.fold_left (fun acc gid -> Bdd.and_ m acc eq_xy.(gid)) (Bdd.one m) gates
  in
  let env_all_eq =
    Array.fold_left (fun acc e -> Bdd.and_ m acc eq_xy.(e)) (Bdd.one m) env
  in
  let r_input = Bdd.and_list m [ stable; gates_eq; Bdd.not_ m env_all_eq ] in
  let x_to_z v = if v mod 3 = 0 then v + 2 else if v mod 3 = 2 then v - 2 else v in
  let r_delta_zy = Bdd.permute m x_to_z r_delta in
  let y_to_z v = if v mod 3 = 1 then v + 1 else if v mod 3 = 2 then v - 1 else v in
  let z_vars = List.init n zv in
  let x_vars = List.init n xv in
  let tcr srcs =
    let t0 = Bdd.and_ m srcs r_input in
    let rec iterate i t =
      if i >= k then t
      else begin
        Guard.spend_transition guard;
        Guard.check_time guard;
        let t_xz = Bdd.permute m y_to_z t in
        let t' = Bdd.and_exists m ~vars:z_vars t_xz r_delta_zy in
        if Bdd.equal t' t then t else iterate (i + 1) t'
      end
    in
    iterate 0 t0
  in
  let stable_y = Bdd.permute m (fun v -> if v mod 3 = 0 then v + 1 else v) stable in
  let y_as_x = Bdd.permute m (fun v -> if v mod 3 = 1 then v - 1 else v) in
  let reset_bdd = reset_bdd_of () in
  (* Sets over x-vars only: each x-state contributes exactly 2^(2n)
     assignments of the free y/z variables, so the exact integer count
     divides out without float rounding. *)
  let count_states set =
    match Bdd.sat_count_int m ~nvars:(3 * n) set with
    | Some cnt -> cnt asr (2 * n)
    | None ->
      let cnt = Bdd.sat_count m ~nvars:(3 * n) set in
      int_of_float ((cnt /. (2.0 ** float_of_int (2 * n))) +. 0.5)
  in
  (* Fail-soft reachability: a tripped guard keeps the last completed
     ring.  The partial (reach, tcr) pair is a sound under-approximation
     of the full graph — every state and edge in it is genuine — so the
     CSSG pruning below still applies verbatim. *)
  let truncated = ref None in
  let rec reach_loop reach t_prev n_prev =
    match
      try
        let t = tcr reach in
        let new_stables =
          y_as_x (Bdd.exists m ~vars:x_vars (Bdd.and_ m t stable_y))
        in
        let reach' = Bdd.or_ m reach new_stables in
        let n' = count_states reach' in
        if n' > n_prev then Guard.spend_states guard (n' - n_prev);
        Guard.check_time guard;
        `Step (reach', t, n')
      with Guard.Exhausted r ->
        truncated := Some r;
        (* The guard stays tripped; detach it so salvaging the partial
           result below (conflict pruning, CSSG conjunction) is not
           re-tripped by the very probes that stopped the loop. *)
        Bdd.set_guard m Guard.none;
        `Stop
    with
    | `Stop -> (reach, t_prev)
    | `Step (reach', t, n') ->
      if Bdd.equal reach' reach then (reach, t) else reach_loop reach' t n'
  in
  let reachable, tcr_final = reach_loop reset_bdd (Bdd.zero m) 1 in
  let tcr_xz = Bdd.permute m y_to_z tcr_final in
  let env_eq_yz =
    Array.fold_left
      (fun acc e ->
        Bdd.and_ m acc (Bdd.iff m (Bdd.var m (yv e)) (Bdd.var m (zv e))))
      (Bdd.one m) env
  in
  let all_eq_yz =
    List.fold_left
      (fun acc i ->
        Bdd.and_ m acc (Bdd.iff m (Bdd.var m (yv i)) (Bdd.var m (zv i))))
      (Bdd.one m)
      (List.init n Fun.id)
  in
  let conflict =
    Bdd.and_exists m ~vars:z_vars tcr_xz
      (Bdd.and_ m env_eq_yz (Bdd.not_ m all_eq_yz))
  in
  let cssg = Bdd.and_list m [ tcr_final; stable_y; Bdd.not_ m conflict ] in
  {
    circuit = c;
    k;
    man = m;
    rank;
    node_of_rank;
    stable;
    r_input;
    r_delta_zy;
    reachable;
    cssg;
    reset;
    truncated = !truncated;
  }
  with Guard.Exhausted r ->
    (* The budget died before the relations existed (the guard inside
       the manager can now trip during R_delta construction itself).
       Degrade to the smallest sound result: the reset state with no
       edges — every state and edge it contains is genuine. *)
    Bdd.set_guard m Guard.none;
    let reset_bdd = reset_bdd_of () in
    {
      circuit = c;
      k;
      man = m;
      rank;
      node_of_rank;
      stable = reset_bdd;
      r_input = Bdd.zero m;
      r_delta_zy = Bdd.zero m;
      reachable = reset_bdd;
      cssg = Bdd.zero m;
      reset;
      truncated = Some r;
    }

(* --- queries ------------------------------------------------------------- *)

let live_nodes t =
  Bdd.size t.man t.cssg + Bdd.size t.man t.reachable
  + Bdd.size t.man t.r_delta_zy + Bdd.size t.man t.r_input

let n_reachable t =
  let n = Circuit.n_nodes t.circuit in
  match Bdd.sat_count_int t.man ~nvars:(3 * n) t.reachable with
  | Some count -> count asr (2 * n)
  | None ->
    let count = Bdd.sat_count t.man ~nvars:(3 * n) t.reachable in
    int_of_float ((count /. (2.0 ** float_of_int (2 * n))) +. 0.5)

let bdd_stats t = Bdd.stats t.man

let with_guard t g f =
  let old = Bdd.guard t.man in
  Bdd.set_guard t.man g;
  Fun.protect ~finally:(fun () -> Bdd.set_guard t.man old) f

let state_to_bdd t s =
  let m = t.man in
  Bdd.and_list m
    (List.init (Array.length s) (fun i ->
         if s.(i) then Bdd.var m (x_of t i) else Bdd.nvar m (x_of t i)))

let bool_state_of_assign t assign =
  let n = Circuit.n_nodes t.circuit in
  let s = Array.make n false in
  List.iter
    (fun (v, b) -> if v mod 3 = 0 then s.(t.node_of_rank.(v / 3)) <- b)
    assign;
  s

(* Enumerate the concrete states of a set over x-vars. *)
let enumerate_states t set =
  let n = Circuit.n_nodes t.circuit in
  let rec expand assign free =
    match free with
    | [] -> [ bool_state_of_assign t assign ]
    | v :: rest ->
      expand ((v, false) :: assign) rest @ expand ((v, true) :: assign) rest
  in
  Bdd.fold_sat t.man set ~init:[] ~f:(fun acc cube ->
      let bound = List.map fst cube in
      let free =
        List.filter
          (fun v -> not (List.mem v bound))
          (List.init n (fun i -> x_of t i))
      in
      expand cube free @ acc)
  |> List.sort_uniq Stdlib.compare

let apply_rel t rel src_bdd =
  let n = Circuit.n_nodes t.circuit in
  let x_vars = List.init n (fun i -> x_of t i) in
  let img = Bdd.and_exists t.man ~vars:x_vars src_bdd rel in
  Bdd.permute t.man (fun v -> if v mod 3 = 1 then v - 1 else v) img

let justify t ~target =
  let m = t.man in
  let init = state_to_bdd t t.reset in
  if not (Bdd.is_zero (Bdd.and_ m init target)) then Some ([], t.reset)
  else begin
    let rec forward rings seen front =
      let next = Bdd.diff m (apply_rel t t.cssg front) seen in
      if Bdd.is_zero next then None
      else if not (Bdd.is_zero (Bdd.and_ m next target)) then
        Some (List.rev (front :: rings), Bdd.and_ m next target)
      else forward (front :: rings) (Bdd.or_ m seen next) next
    in
    match forward [] init init with
    | None -> None
    | Some (rings, hit) ->
      let n = Circuit.n_nodes t.circuit in
      let concrete set = bool_state_of_assign t (Bdd.any_sat m set) in
      let goal = concrete hit in
      let rec backward rings target_state acc =
        match rings with
        | [] -> acc
        | ring :: earlier ->
          let tgt = state_to_bdd t target_state in
          let y_tgt =
            Bdd.permute m (fun v -> if v mod 3 = 0 then v + 1 else v) tgt
          in
          let y_vars = List.init n (fun i -> y_of t i) in
          let pre =
            Bdd.and_ m ring
              (Bdd.exists m ~vars:y_vars (Bdd.and_ m t.cssg y_tgt))
          in
          assert (not (Bdd.is_zero pre));
          let src = concrete pre in
          let vector =
            Array.map (fun e -> target_state.(e)) (Circuit.inputs t.circuit)
          in
          backward earlier src (vector :: acc)
      in
      let vectors = backward (List.rev rings) goal [] in
      Some (vectors, goal)
  end

let to_cssg t =
  let m = t.man in
  let states = Array.of_list (enumerate_states t t.reachable) in
  let index = Hashtbl.create 64 in
  Array.iteri
    (fun i s -> Hashtbl.replace index (Circuit.state_to_string t.circuit s) i)
    states;
  let id_of s = Hashtbl.find index (Circuit.state_to_string t.circuit s) in
  let succ =
    Array.map
      (fun s ->
        let src = state_to_bdd t s in
        let succs_set = apply_rel t t.cssg src in
        enumerate_states t (Bdd.and_ m succs_set t.reachable)
        |> List.map (fun s' ->
               {
                 Cssg.vector =
                   Array.map (fun e -> s'.(e)) (Circuit.inputs t.circuit);
                 target = id_of s';
               }))
      states
  in
  Cssg.make ?truncated:t.truncated ~circuit:t.circuit ~k:t.k ~states ~succ
    ~initial:[ id_of t.reset ] ()

(* Greedy sifting at node-triple granularity.  Candidate orders are
   evaluated by transferring the two big artefacts (CSSG relation and
   the pre-renamed R_delta) into a scratch manager with the candidate
   order and measuring their combined size. *)
let sift_order t =
  let n = Circuit.n_nodes t.circuit in
  let roots = [ t.cssg; t.r_delta_zy; t.reachable; t.r_input ] in
  let measure rank =
    let dst = Bdd.create ~nvars:(3 * n) () in
    (* variable v = 3*old_rank + j moves to 3*rank.(node) + j *)
    let map v =
      let old_rank = v / 3 and j = v mod 3 in
      (3 * rank.(t.node_of_rank.(old_rank))) + j
    in
    List.fold_left
      (fun acc root -> acc + Bdd.size dst (Bdd.transfer ~src:t.man ~dst map root))
      0 roots
  in
  let best = Array.copy t.rank in
  let best_size = ref (measure best) in
  (* One greedy pass: move each node to its best rank. *)
  for node = 0 to n - 1 do
    let try_rank r =
      let old = best.(node) in
      if r <> old then begin
        (* rotate: every node ranked between the two positions shifts *)
        let candidate =
          Array.mapi
            (fun i ri ->
              if i = node then r
              else if old < r && ri > old && ri <= r then ri - 1
              else if old > r && ri >= r && ri < old then ri + 1
              else ri)
            best
        in
        let size = measure candidate in
        if size < !best_size then begin
          best_size := size;
          Array.blit candidate 0 best 0 n
        end
      end
    in
    for r = 0 to n - 1 do
      try_rank r
    done
  done;
  best
