open Satg_logic
open Satg_guard
open Satg_circuit
open Satg_bdd

(* The delta-step transition relation.  [Monolithic] is the paper's
   literal construction: one BDD for R_delta over (z, y) — every
   per-gate disjunct carries an explicit frame-equality product — and
   images are a single relational product against it.  [Partitioned]
   never forms it: the relation stays one small conjunct per gate
   (its excitation, fanin-local support), and the image pushes early
   quantification to its limit.  Under interleaved single-gate firing
   the frame conjunct ∏_{i≠g}(y_i = z_i) quantifies each frame
   variable out at the very equality that mentions it — an identity
   rename — and the firing gate's own ∃z_g against (y_g = ¬z_g) is a
   one-variable cofactor exchange: the gate-g disjunct of the image is
   [Bdd.flip_var (T ∧ excited_g)].  No frame BDD is ever built, no
   relational product is ever run, and no intermediate result carries
   a dead variable. *)
type schedule = int list * (Bdd.t * int list) list

type rel =
  | Monolithic of Bdd.t  (* R_delta over (z, y), pre-renamed for iteration *)
  | Partitioned of {
      excited_y : Bdd.t array;
          (* per gate, in gate order: excitation over the y rail *)
      stable_y : Bdd.t;  (* the stable self-loop disjunct's one conjunct *)
    }

type t = {
  circuit : Circuit.t;
  k : int;
  man : Bdd.man;
  rank : int array;  (* node id -> position in the variable order *)
  node_of_rank : int array;
  stable : Bdd.t;
  r_input : Bdd.t;  (* R_I over (x, y) *)
  rel : rel;
  reachable : Bdd.t;  (* over x *)
  cssg : Bdd.t;  (* over (x, y) *)
  cssg_sched : schedule;  (* CSSG as conjuncts, for scheduled images *)
  reset : bool array;
  truncated : Guard.reason option;
}

(* Each node owns three adjacent BDD variables at its rank: present,
   next, auxiliary.  The rank permutation is the variable-ordering
   knob; the triple structure never changes, so the x/y/z renamings
   below are rank-independent. *)
let x_of t i = 3 * t.rank.(i)
let y_of t i = (3 * t.rank.(i)) + 1

let circuit t = t.circuit
let k t = t.k
let man t = t.man
let stable_set t = t.stable
let reachable t = t.reachable
let cssg_relation t = t.cssg
let truncated t = t.truncated

let default_cluster_cap = 1024

(* --- building blocks ---------------------------------------------------- *)

let func_bdd m c var_of gid =
  let fanin = Circuit.fanins c gid in
  let in_var p = Bdd.var m (var_of fanin.(p)) in
  match Circuit.func c gid with
  | Gatefunc.Buf -> in_var 0
  | Gatefunc.Not -> Bdd.not_ m (in_var 0)
  | Gatefunc.And -> Bdd.and_list m (List.init (Array.length fanin) in_var)
  | Gatefunc.Or -> Bdd.or_list m (List.init (Array.length fanin) in_var)
  | Gatefunc.Nand ->
    Bdd.not_ m (Bdd.and_list m (List.init (Array.length fanin) in_var))
  | Gatefunc.Nor ->
    Bdd.not_ m (Bdd.or_list m (List.init (Array.length fanin) in_var))
  | Gatefunc.Xor ->
    List.fold_left (Bdd.xor_ m) (Bdd.zero m)
      (List.init (Array.length fanin) in_var)
  | Gatefunc.Xnor ->
    Bdd.not_ m
      (List.fold_left (Bdd.xor_ m) (Bdd.zero m)
         (List.init (Array.length fanin) in_var))
  | Gatefunc.Mux -> Bdd.ite m (in_var 0) (in_var 1) (in_var 2)
  | Gatefunc.Celem ->
    let all = Bdd.and_list m (List.init (Array.length fanin) in_var) in
    let any = Bdd.or_list m (List.init (Array.length fanin) in_var) in
    let self = Bdd.var m (var_of gid) in
    Bdd.or_ m all (Bdd.and_ m self any)
  | Gatefunc.Const b -> if b then Bdd.one m else Bdd.zero m
  | Gatefunc.Sop cover ->
    List.fold_left
      (fun acc cube ->
        let term = ref (Bdd.one m) in
        Array.iteri
          (fun p l ->
            match l with
            | Cube.D -> ()
            | Cube.T -> term := Bdd.and_ m !term (in_var p)
            | Cube.F -> term := Bdd.and_ m !term (Bdd.not_ m (in_var p)))
          (Cube.lits cube);
        Bdd.or_ m acc !term)
      (Bdd.zero m) (Cover.cubes cover)

let gate_function t gid = func_bdd t.man t.circuit (x_of t) gid

(* --- clustered early-quantification schedules ---------------------------- *)

(* A schedule evaluates [∃ quant. src ∧ c1 ∧ ... ∧ cm] left to right,
   quantifying each variable of [quant] out at the {e last} conjunct
   whose support mentions it — the earliest point where it is dead in
   the remaining product, so no intermediate result carries a variable
   longer than it must.  Variables no conjunct mentions are quantified
   out of [src] up front.  Supports are computed once here, never per
   image. *)
let make_schedule m ~quant parts : schedule =
  let nv = Bdd.nvars m in
  let inq = Array.make nv false in
  List.iter (fun v -> inq.(v) <- true) quant;
  let last = Array.make nv (-1) in
  List.iteri
    (fun i p ->
      List.iter (fun v -> if inq.(v) then last.(v) <- i) (Bdd.support m p))
    parts;
  let unseen = List.filter (fun v -> last.(v) < 0) quant in
  let steps =
    List.mapi (fun i p -> (p, List.filter (fun v -> last.(v) = i) quant)) parts
  in
  (unseen, steps)

let run_schedule m ((unseen, steps) : schedule) src =
  let acc = if unseen = [] then src else Bdd.exists m ~vars:unseen src in
  List.fold_left
    (fun acc (p, kill) ->
      if kill = [] then Bdd.and_ m acc p
      else Bdd.and_exists m ~vars:kill acc p)
    acc steps

(* --- construction -------------------------------------------------------- *)

let build ?k ?node_order ?(style = `Partitioned) ?(reorder = Bdd.Reorder_none)
    ?(cluster_cap = default_cluster_cap) ?(guard = Guard.none) c =
  let k = match k with Some k -> k | None -> Structure.default_k c in
  let reset =
    match Circuit.initial c with
    | Some s when Circuit.is_stable c s -> s
    | Some _ -> invalid_arg "Symbolic.build: reset state not stable"
    | None -> invalid_arg "Symbolic.build: circuit has no reset state"
  in
  let n = Circuit.n_nodes c in
  let rank =
    match node_order with
    | None -> Array.init n Fun.id
    | Some r ->
      if Array.length r <> n then
        invalid_arg "Symbolic.build: node_order length mismatch";
      let seen = Array.make n false in
      Array.iter
        (fun v ->
          if v < 0 || v >= n || seen.(v) then
            invalid_arg "Symbolic.build: node_order is not a permutation";
          seen.(v) <- true)
        r;
      Array.copy r
  in
  let node_of_rank = Array.make n 0 in
  Array.iteri (fun i r -> node_of_rank.(r) <- i) rank;
  (* The guard rides inside the manager: Bdd.mk/apply probe it on every
     cache miss, so a deadline trips mid-apply even when one image
     computation blows up between the loop-boundary checks below. *)
  let m = Bdd.create ~nvars:(3 * n) ~cache_size:(1 lsl 15) ~guard () in
  Bdd.set_reorder m reorder;
  let xv i = 3 * rank.(i) and yv i = (3 * rank.(i)) + 1 in
  let zv i = (3 * rank.(i)) + 2 in
  let reset_bdd_of () =
    Bdd.and_list m
      (List.init n (fun i ->
           if reset.(i) then Bdd.var m (xv i) else Bdd.nvar m (xv i)))
  in
  try
  let gates = Circuit.gates c in
  let env = Circuit.inputs c in
  (* Work-proportional budgeting: one allocated BDD node charges one
     transition, so [max_transitions] bounds the symbolic phase by the
     same order of work it bounds the explicit one.  The seed charged
     one transition per whole image step, which let a capped build burn
     minutes of image computation against a budget meant to stop it in
     milliseconds — and then threw the result away as truncated. *)
  let charged = ref (Bdd.node_count m) in
  let charge_alloc () =
    let now = Bdd.node_count m in
    if now > !charged then begin
      let d = now - !charged in
      charged := now;
      Guard.spend_transitions guard d
    end;
    Guard.check_time guard
  in
  let y_to_x v = if v mod 3 = 1 then v - 1 else v in
  (* Excitation over the next-state (y) rail, where the delta relation
     iterates; the x-rail stable set is a rename of its complement
     (each y sits one order position below its free x slot, so the
     rename is order-preserving and linear). *)
  let excited_y =
    Array.map
      (fun gid -> Bdd.xor_ m (func_bdd m c yv gid) (Bdd.var m (yv gid)))
      gates
  in
  let stable_y =
    Array.fold_left
      (fun acc e -> Bdd.and_ m acc (Bdd.not_ m e))
      (Bdd.one m) excited_y
  in
  let stable = Bdd.permute m y_to_x stable_y in
  (* Equality chains over all nodes in rank order (keeps the
     conjunction shallow w.r.t. the chosen order). *)
  let eq_xy =
    Array.init n (fun i -> Bdd.iff m (Bdd.var m (xv i)) (Bdd.var m (yv i)))
  in
  let eq_zy =
    Array.init n (fun i -> Bdd.iff m (Bdd.var m (zv i)) (Bdd.var m (yv i)))
  in
  let gates_eq =
    Array.fold_left (fun acc gid -> Bdd.and_ m acc eq_xy.(gid)) (Bdd.one m) gates
  in
  let env_all_eq =
    Array.fold_left (fun acc e -> Bdd.and_ m acc eq_xy.(e)) (Bdd.one m) env
  in
  let r_input = Bdd.and_list m [ stable; gates_eq; Bdd.not_ m env_all_eq ] in
  let z_vars = List.init n zv in
  let x_vars = List.init n xv in
  let rel =
    match style with
    | `Monolithic ->
      (* The paper's literal R_delta over (z, y): excitation rebuilt on
         the z rail, every firing disjunct carrying an explicit
         frame-equality product (prefix.(r) = equality of the first r
         nodes in rank order). *)
      let excited_z =
        Array.map
          (fun gid -> Bdd.xor_ m (func_bdd m c zv gid) (Bdd.var m (zv gid)))
          gates
      in
      let stable_z =
        Array.fold_left
          (fun acc e -> Bdd.and_ m acc (Bdd.not_ m e))
          (Bdd.one m) excited_z
      in
      let prefix = Array.make (n + 1) (Bdd.one m) in
      for r = 0 to n - 1 do
        prefix.(r + 1) <- Bdd.and_ m prefix.(r) eq_zy.(node_of_rank.(r))
      done;
      let suffix = Array.make (n + 1) (Bdd.one m) in
      for r = n - 1 downto 0 do
        suffix.(r) <- Bdd.and_ m suffix.(r + 1) eq_zy.(node_of_rank.(r))
      done;
      let all_eq_zy = prefix.(n) in
      let fire_disjuncts =
        Array.to_list
          (Array.mapi
             (fun idx gid ->
               let flip =
                 Bdd.iff m (Bdd.var m (yv gid))
                   (Bdd.not_ m (Bdd.var m (zv gid)))
               in
               let r = rank.(gid) in
               let frame = Bdd.and_ m prefix.(r) suffix.(r + 1) in
               Bdd.and_list m [ excited_z.(idx); flip; frame ])
             gates)
      in
      Monolithic
        (Bdd.or_ m
           (Bdd.or_list m fire_disjuncts)
           (Bdd.and_ m stable_z all_eq_zy))
    | `Partitioned -> Partitioned { excited_y; stable_y }
  in
  (* Relation construction is real work too; a budget small enough to
     be tripped by it degrades (below) to the reset-only graph. *)
  charge_alloc ();
  let y_to_z v = if v mod 3 = 1 then v + 1 else if v mod 3 = 2 then v - 1 else v in
  (* One delta step of the frontier relation T(x, y).  The partitioned
     image needs no auxiliary rail at all: a firing of gate g toggles
     exactly one variable, so its disjunct is the one-variable flip of
     T ∧ excited_g — each frame variable is "quantified" at the very
     equality conjunct that mentions it, which degenerates to the
     identity rename, and the firing variable's ∃z_g collapses into
     {!Bdd.flip_var}.  No frame BDD, no relational product. *)
  let delta_image t =
    match rel with
    | Monolithic r_zy ->
      Bdd.and_exists m ~vars:z_vars (Bdd.permute m y_to_z t) r_zy
    | Partitioned { excited_y; stable_y } ->
      let img = ref (Bdd.and_ m t stable_y) in
      Array.iteri
        (fun idx gid ->
          let u = Bdd.and_ m t excited_y.(idx) in
          img := Bdd.or_ m !img (Bdd.flip_var m ~var:(yv gid) u))
        gates;
      !img
  in
  (* The frontier sequence t_{i+1} = F(t_i) is deterministic, so it is
     eventually periodic; unstable states bouncing around a ring make
     the period small and the k horizon large (default 4·gates).  Once
     a repeat is seen, t_k is read off the recorded cycle instead of
     grinding the remaining steps — exact-step semantics preserved
     (they are load-bearing: unstable states surviving at step k are
     the non-settling witnesses of the confluence check). *)
  let tcr srcs =
    let t0 = Bdd.and_ m srcs r_input in
    let hist = Array.make (k + 1) t0 in
    let seen = Hashtbl.create 64 in
    let rec iterate i t =
      if i >= k then t
      else
        match Hashtbl.find_opt seen t with
        | Some j ->
          (* t_i = t_j with j < i: period i - j *)
          hist.(j + ((k - j) mod (i - j)))
        | None ->
          Hashtbl.add seen t i;
          hist.(i) <- t;
          charge_alloc ();
          iterate (i + 1) (delta_image t)
    in
    iterate 0 t0
  in
  let y_as_x = Bdd.permute m (fun v -> if v mod 3 = 1 then v - 1 else v) in
  let reset_bdd = reset_bdd_of () in
  (* Sets over x-vars only: each x-state contributes exactly 2^(2n)
     assignments of the free y/z variables, so the exact integer count
     divides out without float rounding. *)
  let count_states set =
    match Bdd.sat_count_int m ~nvars:(3 * n) set with
    | Some cnt -> cnt asr (2 * n)
    | None ->
      let cnt = Bdd.sat_count m ~nvars:(3 * n) set in
      int_of_float ((cnt /. (2.0 ** float_of_int (2 * n))) +. 0.5)
  in
  (* Fail-soft reachability: a tripped guard keeps the last completed
     ring.  The partial (reach, tcr) pair is a sound under-approximation
     of the full graph — every state and edge in it is genuine — so the
     CSSG pruning below still applies verbatim. *)
  let truncated = ref None in
  let rec reach_loop reach t_prev n_prev =
    match
      try
        let t = tcr reach in
        let new_stables =
          y_as_x (Bdd.exists m ~vars:x_vars (Bdd.and_ m t stable_y))
        in
        let reach' = Bdd.or_ m reach new_stables in
        let n' = count_states reach' in
        if n' > n_prev then Guard.spend_states guard (n' - n_prev);
        Guard.check_time guard;
        `Step (reach', t, n')
      with Guard.Exhausted r ->
        truncated := Some r;
        (* The guard stays tripped; detach it so salvaging the partial
           result below (conflict pruning, CSSG conjunction) is not
           re-tripped by the very probes that stopped the loop.  Also
           freeze the variable order: salvage must stay cheap, and an
           unguarded sifting pass over whatever the store grew to
           before the trip could dwarf the budget that just expired. *)
        Bdd.set_guard m Guard.none;
        Bdd.disable_reorder m;
        `Stop
    with
    | `Stop -> (reach, t_prev)
    | `Step (reach', t, n') ->
      if Bdd.equal reach' reach then (reach, t) else reach_loop reach' t n'
  in
  let reachable, tcr_final = reach_loop reset_bdd (Bdd.zero m) 1 in
  let tcr_xz = Bdd.permute m y_to_z tcr_final in
  (* Non-confluence check, ∃z. TCR(x,z) ∧ X_I(z)=X_I(y) ∧ z≠y, run as a
     clustered early-quantification schedule: the input equalities are
     chunked along the rank order under [cluster_cap] nodes per
     cluster, the disequality conjunct goes first (it is the last
     mention of every gate's z, so those die immediately), and each
     input's z dies at its own cluster.  The monolithic conjunct
     X_I(z)=X_I(y) ∧ z≠y is never built. *)
  let env_eq_chunks =
    let cap = max 16 cluster_cap in
    let env_ranked =
      List.sort
        (fun a b -> Stdlib.compare rank.(a) rank.(b))
        (Array.to_list env)
    in
    let open_chunk, closed =
      List.fold_left
        (fun (acc, closed) e ->
          let eq = Bdd.iff m (Bdd.var m (yv e)) (Bdd.var m (zv e)) in
          match acc with
          | None -> (Some eq, closed)
          | Some b ->
            let b' = Bdd.and_ m b eq in
            if Bdd.size m b' > cap then (Some eq, b :: closed)
            else (Some b', closed))
        (None, []) env_ranked
    in
    List.rev
      (match open_chunk with None -> closed | Some b -> b :: closed)
  in
  let all_eq_yz = Array.fold_left (Bdd.and_ m) (Bdd.one m) eq_zy in
  let conflict_sched =
    make_schedule m ~quant:z_vars (Bdd.not_ m all_eq_yz :: env_eq_chunks)
  in
  let conflict = run_schedule m conflict_sched tcr_xz in
  let not_conflict = Bdd.not_ m conflict in
  let cssg = Bdd.and_list m [ tcr_final; stable_y; not_conflict ] in
  (* The CSSG kept as conjuncts: forward images during justification
     reuse the same early-quantification machinery as the build
     (stable_y mentions no x variable, so every x dies by the second
     conjunct). *)
  let cssg_sched =
    make_schedule m ~quant:x_vars [ tcr_final; not_conflict; stable_y ]
  in
  {
    circuit = c;
    k;
    man = m;
    rank;
    node_of_rank;
    stable;
    r_input;
    rel;
    reachable;
    cssg;
    cssg_sched;
    reset;
    truncated = !truncated;
  }
  with Guard.Exhausted r ->
    (* The budget died before the relations existed (the guard inside
       the manager can now trip during R_delta construction itself).
       Degrade to the smallest sound result: the reset state with no
       edges — every state and edge it contains is genuine. *)
    Bdd.set_guard m Guard.none;
    Bdd.disable_reorder m;
    let reset_bdd = reset_bdd_of () in
    {
      circuit = c;
      k;
      man = m;
      rank;
      node_of_rank;
      stable = reset_bdd;
      r_input = Bdd.zero m;
      rel = Monolithic (Bdd.zero m);
      reachable = reset_bdd;
      cssg = Bdd.zero m;
      cssg_sched = ([], [ (Bdd.zero m, List.init n (fun i -> 3 * i)) ]);
      reset;
      truncated = Some r;
    }

(* --- queries ------------------------------------------------------------- *)

let rel_roots t =
  match t.rel with
  | Monolithic r -> [ r ]
  | Partitioned { excited_y; stable_y } ->
    stable_y :: Array.to_list excited_y

let live_nodes t =
  List.fold_left
    (fun acc root -> acc + Bdd.size t.man root)
    0
    (t.cssg :: t.reachable :: t.r_input :: rel_roots t)

let n_reachable t =
  let n = Circuit.n_nodes t.circuit in
  match Bdd.sat_count_int t.man ~nvars:(3 * n) t.reachable with
  | Some count -> count asr (2 * n)
  | None ->
    let count = Bdd.sat_count t.man ~nvars:(3 * n) t.reachable in
    int_of_float ((count /. (2.0 ** float_of_int (2 * n))) +. 0.5)

let bdd_stats t = Bdd.stats t.man

let with_guard t g f =
  let old = Bdd.guard t.man in
  Bdd.set_guard t.man g;
  Fun.protect ~finally:(fun () -> Bdd.set_guard t.man old) f

let state_to_bdd t s =
  let m = t.man in
  Bdd.and_list m
    (List.init (Array.length s) (fun i ->
         if s.(i) then Bdd.var m (x_of t i) else Bdd.nvar m (x_of t i)))

let bool_state_of_assign t assign =
  let n = Circuit.n_nodes t.circuit in
  let s = Array.make n false in
  List.iter
    (fun (v, b) -> if v mod 3 = 0 then s.(t.node_of_rank.(v / 3)) <- b)
    assign;
  s

(* Enumerate the concrete states of a set over x-vars. *)
let enumerate_states t set =
  let n = Circuit.n_nodes t.circuit in
  let rec expand assign free =
    match free with
    | [] -> [ bool_state_of_assign t assign ]
    | v :: rest ->
      expand ((v, false) :: assign) rest @ expand ((v, true) :: assign) rest
  in
  Bdd.fold_sat t.man set ~init:[] ~f:(fun acc cube ->
      let bound = List.map fst cube in
      let free =
        List.filter
          (fun v -> not (List.mem v bound))
          (List.init n (fun i -> x_of t i))
      in
      expand cube free @ acc)
  |> List.sort_uniq Stdlib.compare

(* One forward CSSG image: successors (over x) of a set of states
   (over x), through the scheduled conjunct form of the relation. *)
let cssg_image t src_bdd =
  let img = run_schedule t.man t.cssg_sched src_bdd in
  Bdd.permute t.man (fun v -> if v mod 3 = 1 then v - 1 else v) img

let justify t ~target =
  let m = t.man in
  let init = state_to_bdd t t.reset in
  if not (Bdd.is_zero (Bdd.and_ m init target)) then Some ([], t.reset)
  else begin
    let rec forward rings seen front =
      let next = Bdd.diff m (cssg_image t front) seen in
      if Bdd.is_zero next then None
      else if not (Bdd.is_zero (Bdd.and_ m next target)) then
        Some (List.rev (front :: rings), Bdd.and_ m next target)
      else forward (front :: rings) (Bdd.or_ m seen next) next
    in
    match forward [] init init with
    | None -> None
    | Some (rings, hit) ->
      let n = Circuit.n_nodes t.circuit in
      let concrete set = bool_state_of_assign t (Bdd.any_sat m set) in
      let goal = concrete hit in
      let rec backward rings target_state acc =
        match rings with
        | [] -> acc
        | ring :: earlier ->
          let tgt = state_to_bdd t target_state in
          let y_tgt =
            Bdd.permute m (fun v -> if v mod 3 = 0 then v + 1 else v) tgt
          in
          let y_vars = List.init n (fun i -> y_of t i) in
          let pre =
            Bdd.and_ m ring
              (Bdd.exists m ~vars:y_vars (Bdd.and_ m t.cssg y_tgt))
          in
          assert (not (Bdd.is_zero pre));
          let src = concrete pre in
          let vector =
            Array.map (fun e -> target_state.(e)) (Circuit.inputs t.circuit)
          in
          backward earlier src (vector :: acc)
      in
      let vectors = backward (List.rev rings) goal [] in
      Some (vectors, goal)
  end

let to_cssg t =
  let m = t.man in
  let states = Array.of_list (enumerate_states t t.reachable) in
  let index = Hashtbl.create 64 in
  Array.iteri
    (fun i s -> Hashtbl.replace index (Circuit.state_to_string t.circuit s) i)
    states;
  let id_of s = Hashtbl.find index (Circuit.state_to_string t.circuit s) in
  let succ =
    Array.map
      (fun s ->
        let src = state_to_bdd t s in
        let succs_set = cssg_image t src in
        enumerate_states t (Bdd.and_ m succs_set t.reachable)
        |> List.map (fun s' ->
               {
                 Cssg.vector =
                   Array.map (fun e -> s'.(e)) (Circuit.inputs t.circuit);
                 target = id_of s';
               }))
      states
  in
  Cssg.make ?truncated:t.truncated ~circuit:t.circuit ~k:t.k ~states ~succ
    ~initial:[ id_of t.reset ] ()

(* Greedy sifting at node-triple granularity.  Candidate orders are
   evaluated by transferring the retained artefacts (CSSG relation,
   reachable set, R_I and the transition-relation conjuncts) into a
   scratch manager with the candidate order and measuring their
   combined size. *)
let sift_order t =
  let n = Circuit.n_nodes t.circuit in
  let roots = t.cssg :: t.reachable :: t.r_input :: rel_roots t in
  let measure rank =
    let dst = Bdd.create ~nvars:(3 * n) () in
    (* variable v = 3*old_rank + j moves to 3*rank.(node) + j *)
    let map v =
      let old_rank = v / 3 and j = v mod 3 in
      (3 * rank.(t.node_of_rank.(old_rank))) + j
    in
    List.fold_left
      (fun acc root -> acc + Bdd.size dst (Bdd.transfer ~src:t.man ~dst map root))
      0 roots
  in
  let best = Array.copy t.rank in
  let best_size = ref (measure best) in
  (* One greedy pass: move each node to its best rank. *)
  for node = 0 to n - 1 do
    let try_rank r =
      let old = best.(node) in
      if r <> old then begin
        (* rotate: every node ranked between the two positions shifts *)
        let candidate =
          Array.mapi
            (fun i ri ->
              if i = node then r
              else if old < r && ri > old && ri <= r then ri - 1
              else if old > r && ri >= r && ri < old then ri + 1
              else ri)
            best
        in
        let size = measure candidate in
        if size < !best_size then begin
          best_size := size;
          Array.blit candidate 0 best 0 n
        end
      end
    in
    for r = 0 to n - 1 do
      try_rank r
    done
  done;
  best
