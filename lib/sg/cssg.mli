(** The Confluent Stable State Graph (paper §4).

    Nodes are stable states of the circuit in test mode; an edge
    [s --v--> s'] exists iff applying input vector [v] to [s] settles
    {e confluently} to the unique stable state [s'] within the test
    cycle budget [k].  The CSSG is a deterministic synchronous FSM
    abstraction of the asynchronous circuit: every edge is safe to
    drive from a synchronous tester.

    Nodes reachable only through invalid (non-confluent) patterns are
    kept, as in the paper's figure 2 (they may still serve as forced
    reset states), but they are flagged as not deterministically
    reachable and justification never routes through them.

    A graph may be {e truncated}: a builder that exhausted its
    {!Satg_guard.Guard} budget returns the region explored so far,
    tagged with the exhaustion reason.  A truncated graph is a sound
    under-approximation — every state and edge it contains is a real
    CSSG state/edge — so random TPG, fault simulation and deterministic
    ATPG all remain valid over it; only completeness (coverage) is
    lost. *)

open Satg_guard
open Satg_circuit

type edge = {
  vector : bool array;  (** input vector labelling the transition *)
  target : int;
}

type t

val make :
  ?truncated:Guard.reason ->
  circuit:Circuit.t ->
  k:int ->
  states:bool array array ->
  succ:edge list array ->
  initial:int list ->
  unit ->
  t
(** Used by the builders; normalises nothing but checks array lengths
    and computes deterministic reachability.
    @raise Invalid_argument on inconsistent sizes. *)

val circuit : t -> Circuit.t
val k : t -> int

val truncated : t -> Guard.reason option
(** Why construction stopped early, if it did. *)

val n_states : t -> int
val n_edges : t -> int
val state : t -> int -> bool array
val id_of_state : t -> bool array -> int option
val initial : t -> int list
val successors : t -> int -> edge list

val apply : t -> int -> bool array -> int option
(** Follow the edge labelled with the given vector, if valid here. *)

val deterministically_reachable : t -> int -> bool
(** Reachable from an initial state through valid edges only. *)

val justify :
  t -> ?from:int list -> target:(int -> bool) -> unit -> (bool array list * int) option
(** Shortest sequence of input vectors leading from an initial state
    (or [from]) to a state satisfying [target], breadth-first.  Returns
    the vector sequence and the reached state id.  A state in [from]
    already satisfying [target] yields [([], id)]. *)

val reachable_from : t -> int list -> bool array
(** Characteristic vector of states reachable via valid edges. *)

val pp_stats : Format.formatter -> t -> unit

val pp : Format.formatter -> t -> unit
(** Full dump: one line per state with its outgoing vectors (small
    graphs only). *)

val to_dot : t -> string
(** Graphviz rendering: stable states as nodes (initial states double
    circled, states without incoming valid edges grey), edges labelled
    with their input vectors. *)
