open Satg_guard
open Satg_circuit
open Satg_sim

let all_vectors n =
  List.init (1 lsl n) (fun mask ->
      Array.init n (fun i -> mask land (1 lsl i) <> 0))

let build ?k ?(exploration = `Hybrid) ?(max_frontier = 20_000)
    ?(guard = Guard.none) c =
  let k = match k with Some k -> k | None -> Structure.default_k c in
  let reset =
    match Circuit.initial c with
    | Some s -> s
    | None -> invalid_arg "Explicit.build: circuit has no reset state"
  in
  if not (Circuit.is_stable c reset) then
    invalid_arg "Explicit.build: reset state not stable";
  let vectors = all_vectors (Circuit.n_inputs c) in
  let index = Hashtbl.create 64 in
  let rev_states = ref [] in
  let count = ref 0 in
  let intern s =
    let key = Circuit.state_to_string c s in
    match Hashtbl.find_opt index key with
    | Some i -> (i, false)
    | None ->
      (* Spend before registering, so a truncated graph never holds
         more than [max_states] states and every recorded edge points
         at a registered state.  The reset state is exempt: even a
         zero-budget build yields a valid one-state graph. *)
      if !count > 0 then Guard.spend_state guard;
      let i = !count in
      incr count;
      Hashtbl.replace index key i;
      rev_states := s :: !rev_states;
      (i, true)
  in
  let edges = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue s =
    let i, fresh = intern s in
    if fresh then Queue.add (i, s) queue;
    i
  in
  (* Exhaustive classification of one (stable state, vector) pair:
     [Some target] = valid edge, [None] = invalid (or capped),
     harvesting reachable stable states as TCSG nodes on the way.  The
     pure oracle runs the full k-step frontier (the literal TCR_k
     definition); the hybrid fallback uses the early-exit classifier. *)
  let classify_pure s v =
    let s1 = Circuit.apply_input_vector c s v in
    let finals = Async_sim.states_after ~guard c ~k s1 in
    let stables = List.filter (Circuit.is_stable c) finals in
    let ids = List.map enqueue stables in
    match (finals, ids) with
    | [ _ ], [ target ] -> Some target
    | _ -> None
  in
  let classify_fallback s v =
    match Async_sim.classify_vector ~max_frontier ~guard c ~k s v with
    | Async_sim.C_settles final -> Some (enqueue final)
    | Async_sim.C_invalid stables ->
      List.iter (fun s' -> ignore (enqueue s')) stables;
      None
    | Async_sim.C_capped -> None
  in
  let classify s v =
    match exploration with
    | `Pure -> classify_pure s v
    | `Hybrid -> classify_fallback s v
  in
  let truncated = ref None in
  (* Fail-soft exploration: a tripped guard ends the BFS where it
     stands.  States already interned keep their (possibly empty) edge
     lists; the partially classified state of the moment drops its
     in-flight edges, so everything recorded is exact. *)
  (try
     let (_ : int) = enqueue reset in
     while not (Queue.is_empty queue) do
       Guard.check_time guard;
       let i, s = Queue.take queue in
       let current_inputs = Circuit.input_vector_of_state c s in
       let out = ref [] in
       List.iter
         (fun v ->
           if v <> current_inputs then
             match classify s v with
             | Some target -> out := { Cssg.vector = v; target } :: !out
             | None -> ())
         vectors;
       Hashtbl.replace edges i (List.rev !out)
     done
   with Guard.Exhausted r -> truncated := Some r);
  let states = Array.of_list (List.rev !rev_states) in
  let succ =
    Array.init (Array.length states) (fun i ->
        Option.value ~default:[] (Hashtbl.find_opt edges i))
  in
  Cssg.make ?truncated:!truncated ~circuit:c ~k ~states ~succ ~initial:[ 0 ] ()
