open Satg_guard
open Satg_circuit
open Satg_sim
open Satg_pool

(* --- packed state interning ------------------------------------------------ *)

(* The intern path used to format every probed state into a string
   ([Circuit.state_to_string]) just to use it as a Hashtbl key — one
   byte per node plus an allocation per *lookup*.  States are packed
   into a bit-per-node [Bytes] scratch buffer instead: lookups reuse
   the scratch (zero allocation when the state is already known) and
   only a fresh intern copies the key. *)
module Intern = struct
  type t = {
    scratch : Bytes.t;
    index : (Bytes.t, int) Hashtbl.t;
    mutable rev_states : bool array list;
    mutable count : int;
  }

  let create ~n_nodes =
    {
      scratch = Bytes.make ((n_nodes + 7) lsr 3) '\000';
      index = Hashtbl.create 64;
      rev_states = [];
      count = 0;
    }

  (* One store per eight nodes: each output byte is accumulated in a
     register, so there is no clear pass and no read-modify-write. *)
  let pack_into buf s =
    let n = Array.length s in
    for byte = 0 to Bytes.length buf - 1 do
      let base = byte lsl 3 in
      let stop = min 8 (n - base) in
      let v = ref 0 in
      for bit = 0 to stop - 1 do
        if Array.unsafe_get s (base + bit) then v := !v lor (1 lsl bit)
      done;
      Bytes.unsafe_set buf byte (Char.unsafe_chr !v)
    done

  (* Spend before registering, so a truncated graph never holds more
     than [max_states] states and every recorded edge points at a
     registered state.  The first state (reset) is exempt: even a
     zero-budget build yields a valid one-state graph. *)
  let intern t ~guard s =
    pack_into t.scratch s;
    match Hashtbl.find_opt t.index t.scratch with
    | Some i -> (i, false)
    | None ->
      if t.count > 0 then Guard.spend_state guard;
      let i = t.count in
      t.count <- i + 1;
      Hashtbl.replace t.index (Bytes.copy t.scratch) i;
      t.rev_states <- s :: t.rev_states;
      (i, true)

  let count t = t.count
  let states t = Array.of_list (List.rev t.rev_states)
end

(* --- input-vector masks ---------------------------------------------------- *)

(* Input vectors are enumerated as integer masks (bit [i] = input [i]),
   never materialised as a [2^n] list of arrays: one scratch array per
   enumerator is refilled in place, and only vectors that actually
   label an edge are copied out. *)

let fill_from_mask v mask =
  Array.iteri (fun i _ -> v.(i) <- mask land (1 lsl i) <> 0) v

let mask_of_vector v =
  let m = ref 0 in
  Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) v;
  !m

(* --- per-pair classification ----------------------------------------------- *)

(* The verdict of one (stable state, vector) pair, with the stable
   states it harvested on the way.  [Settles] is the valid-edge case;
   [Harvest] covers invalid pairs whose reachable stable states still
   enter the graph as TCSG nodes; [Nothing] is a capped pair. *)
type verdict =
  | Settles of bool array
  | Harvest of bool array list
  | Nothing

let classify_pair ~exploration ~max_frontier ~guard c ~k s v =
  match exploration with
  | `Pure -> (
    let s1 = Circuit.apply_input_vector c s v in
    let finals = Async_sim.states_after ~guard c ~k s1 in
    let stables = List.filter (Circuit.is_stable c) finals in
    match (finals, stables) with
    | [ _ ], [ target ] -> Settles target
    | _ -> Harvest stables)
  | `Hybrid -> (
    match Async_sim.classify_vector ~max_frontier ~guard c ~k s v with
    | Async_sim.C_settles final -> Settles final
    | Async_sim.C_invalid stables -> Harvest stables
    | Async_sim.C_capped -> Nothing)

let check_reset c =
  let reset =
    match Circuit.initial c with
    | Some s -> s
    | None -> invalid_arg "Explicit.build: circuit has no reset state"
  in
  if not (Circuit.is_stable c reset) then
    invalid_arg "Explicit.build: reset state not stable";
  reset

(* --- sequential construction ----------------------------------------------- *)

let build ?k ?(exploration = `Hybrid) ?(max_frontier = 20_000)
    ?(guard = Guard.none) c =
  let k = match k with Some k -> k | None -> Structure.default_k c in
  let reset = check_reset c in
  let n_in = Circuit.n_inputs c in
  let n_vec = 1 lsl n_in in
  let it = Intern.create ~n_nodes:(Circuit.n_nodes c) in
  let edges = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue s =
    let i, fresh = Intern.intern it ~guard s in
    if fresh then Queue.add (i, s) queue;
    i
  in
  let scratch = Array.make n_in false in
  let truncated = ref None in
  (* Fail-soft exploration: a tripped guard ends the BFS where it
     stands.  States already interned keep their (possibly empty) edge
     lists; the partially classified state of the moment drops its
     in-flight edges, so everything recorded is exact. *)
  (try
     let (_ : int) = enqueue reset in
     while not (Queue.is_empty queue) do
       Guard.check_time guard;
       let i, s = Queue.take queue in
       let current = mask_of_vector (Circuit.input_vector_of_state c s) in
       let out = ref [] in
       for mask = 0 to n_vec - 1 do
         if mask <> current then begin
           fill_from_mask scratch mask;
           match classify_pair ~exploration ~max_frontier ~guard c ~k s scratch with
           | Settles target ->
             out :=
               { Cssg.vector = Array.copy scratch; target = enqueue target }
               :: !out
           | Harvest stables -> List.iter (fun s' -> ignore (enqueue s')) stables
           | Nothing -> ()
         end
       done;
       Hashtbl.replace edges i (List.rev !out)
     done
   with Guard.Exhausted r -> truncated := Some r);
  let states = Intern.states it in
  let succ =
    Array.init (Array.length states) (fun i ->
        Option.value ~default:[] (Hashtbl.find_opt edges i))
  in
  Cssg.make ?truncated:!truncated ~circuit:c ~k ~states ~succ ~initial:[ 0 ] ()

(* --- parallel construction ------------------------------------------------- *)

(* One worker-side result for one (state, vector) pair: the verdict
   plus the transitions the classification spent, so the merge can
   re-spend them against the shared guard in deterministic order.
   Runs of [Nothing] verdicts fold their cost into the next
   interesting pair ([carried]) instead of allocating an item each. *)
type item = {
  carried : int;  (* transitions, this pair plus preceding boring ones *)
  vec_mask : int;
  verdict : verdict;
}

type state_task = {
  items : item list;  (* mask-ascending *)
  residual : int;  (* transitions after the last interesting pair *)
  worker_trip : Guard.reason option;  (* the task stopped early *)
}

(* How many frontier states fan out between merge barriers.  The
   default is a fixed constant (never derived from [jobs]): that keeps
   the barrier schedule — and therefore budget accounting and
   truncation points — identical for every [-j], which is what the
   j-determinism contract rests on.  It also bounds speculative waste
   after a budget trip to one batch.  Callers that want wider batches
   on wide hosts pass [?chunk] explicitly and own the consequence: the
   truncation point then depends on the chunk size they chose (the
   untruncated graph never does). *)
let batch_states = 32

let build_par ?k ?(exploration = `Hybrid) ?(max_frontier = 20_000)
    ?(chunk = batch_states) ?(guard = Guard.none) ~pool c =
  let chunk = max 1 chunk in
  let k = match k with Some k -> k | None -> Structure.default_k c in
  let reset = check_reset c in
  let n_in = Circuit.n_inputs c in
  let n_vec = 1 lsl n_in in
  let it = Intern.create ~n_nodes:(Circuit.n_nodes c) in
  let edges = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue s =
    let i, fresh = Intern.intern it ~guard s in
    if fresh then Queue.add (i, s) queue;
    i
  in
  (* Classify one frontier state against every vector.  Pure function
     of [(c, s, k)] plus its private sub-guard: no interning, no shared
     writes — safe on any worker.  The sub-guard carries the shared
     deadline, the family cancel token and this batch's transition
     allowance, so a budget blowup stops the worker without poisoning
     the shared counters.

     The state budget needs its own worker-side cutoff: workers cannot
     intern (that is the merge's job), but the sequential build trips
     its state ceiling *during* classification, so without a bound a
     worker would classify the whole vector space — minutes of
     speculation a [--max-states] run would have cut after a few
     hundred pairs.  Once a task has harvested more target states than
     the batch's remaining state allowance could possibly intern, it
     stops with a [State_limit] trip.  The cutoff is a pure function of
     the state and the batch-start allowance, so it is identical for
     every pool width. *)
  let classify_state t_allowance s_allowance s =
    let local = Guard.sub ?max_transitions:t_allowance guard in
    let scratch = Array.make n_in false in
    let current = mask_of_vector (Circuit.input_vector_of_state c s) in
    let items = ref [] in
    let carried = ref 0 in
    let spent = ref 0 in
    let targets = ref 0 in
    let trip = ref None in
    (try
       for mask = 0 to n_vec - 1 do
         if mask <> current then begin
           (match s_allowance with
           | Some a when !targets > a -> raise (Guard.Exhausted Guard.State_limit)
           | _ -> ());
           fill_from_mask scratch mask;
           let verdict =
             classify_pair ~exploration ~max_frontier ~guard:local c ~k s
               scratch
           in
           let now = Guard.transitions_used local in
           let cost = now - !spent in
           spent := now;
           carried := !carried + cost;
           match verdict with
           | Nothing -> ()
           | Settles _ ->
             targets := !targets + 1;
             items := { carried = !carried; vec_mask = mask; verdict } :: !items;
             carried := 0
           | Harvest stables ->
             targets := !targets + List.length stables;
             items := { carried = !carried; vec_mask = mask; verdict } :: !items;
             carried := 0
         end
       done
     with Guard.Exhausted r ->
       trip := Some r;
       (* the in-flight pair's spending, so the merge re-spends the
          worker's full bill *)
       carried := !carried + (Guard.transitions_used local - !spent));
    { items = List.rev !items; residual = !carried; worker_trip = !trip }
  in
  let truncated = ref None in
  (try
     let (_ : int) = enqueue reset in
     while not (Queue.is_empty queue) do
       Guard.check_time guard;
       (* Take a fixed-size batch off the BFS frontier and classify it
          on the pool.  Workers read a frozen snapshot of each state;
          nothing they compute depends on the intern table, so batch
          classification commutes with the sequential build's
          state-by-state discovery. *)
       let batch = ref [] in
       while (not (Queue.is_empty queue)) && List.length !batch < chunk do
         batch := Queue.take queue :: !batch
       done;
       let batch = Array.of_list (List.rev !batch) in
       let t_allowance = Guard.remaining_transitions guard in
       let s_allowance = Guard.remaining_states guard in
       let tasks =
         Pool.map pool
           (fun _wid (_, s) -> classify_state t_allowance s_allowance s)
           batch
       in
       (* Deterministic merge: walk states in frontier order and pairs
          in vector order, re-spending each recorded cost against the
          shared guard before interning the pair's harvest.  Budget
          trips therefore land at a batch-size-independent point; a
          mid-state trip drops that state's in-flight edges exactly
          like the sequential build. *)
       Array.iteri
         (fun bi (i, _) ->
           let task = tasks.(bi) in
           let out = ref [] in
           List.iter
             (fun { carried; vec_mask; verdict } ->
               Guard.spend_transitions guard carried;
               match verdict with
               | Settles target ->
                 let vec = Array.make n_in false in
                 fill_from_mask vec vec_mask;
                 out := { Cssg.vector = vec; target = enqueue target } :: !out
               | Harvest stables ->
                 List.iter (fun s' -> ignore (enqueue s')) stables
               | Nothing -> ())
             task.items;
           Guard.spend_transitions guard task.residual;
           (match task.worker_trip with
           | Some r ->
             (* The worker stopped before exhausting the vector space
                (its allowance ran dry, or the deadline passed) and the
                merge's own re-spend did not trip first: truncate here
                with the worker's reason.  Raised directly — not
                through the shared guard — so a budget trip inside the
                build does not poison later phases that share this
                guard family. *)
             raise (Guard.Exhausted r)
           | None -> ());
           Hashtbl.replace edges i (List.rev !out))
         batch
     done
   with Guard.Exhausted r -> truncated := Some r);
  let states = Intern.states it in
  let succ =
    Array.init (Array.length states) (fun i ->
        Option.value ~default:[] (Hashtbl.find_opt edges i))
  in
  Cssg.make ?truncated:!truncated ~circuit:c ~k ~states ~succ ~initial:[ 0 ] ()
