open Satg_inject

let max_record_bytes = 1 lsl 24
let default_segment_bytes = 64 * 1024
let meta_name = "meta"
let meta_magic = "satg-journal v1\n"

type t = {
  dir : string;
  segment_bytes : int;
  mutable seg_index : int;  (* index of the active .open segment *)
  mutable fd : Unix.file_descr option;  (* None once closed *)
  mutable seg_size : int;
  mutable appended : int;
}

let seg_name sealed i =
  Printf.sprintf "wal-%06d.%s" i (if sealed then "seg" else "open")

let ( // ) = Filename.concat

let fsync fd =
  Inject.fail "store.fsync";
  Unix.fsync fd

let rename src dst =
  Inject.fail "store.rename";
  Sys.rename src dst

let fsync_dir dir =
  (* Persist directory entries (created/renamed files).  Best-effort on
     platforms where directories cannot be opened for fsync. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write_all fd bytes pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes (pos + !written) (len - !written)
  done

(* Atomic small-file commit: write-tmp → fsync → rename. *)
let write_file_atomic dir name content =
  let tmp = dir // (name ^ ".tmp") in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let b = Bytes.of_string content in
  write_all fd b 0 (Bytes.length b);
  fsync fd;
  rename tmp (dir // name);
  fsync_dir dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* ------------------------------------------------------------------ *)
(* Record framing                                                      *)
(* ------------------------------------------------------------------ *)

let u32le_put b pos v =
  Bytes.set b pos (Char.chr (v land 0xFF));
  Bytes.set b (pos + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (pos + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (pos + 3) (Char.chr ((v lsr 24) land 0xFF))

let u32le_get b pos =
  Char.code (Bytes.get b pos)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 3)) lsl 24)

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  u32le_put b 0 len;
  u32le_put b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b 8 len;
  b

(* Scan one segment's bytes.  Returns the records of the valid prefix,
   the byte offset the prefix ends at, and whether the whole buffer
   parsed cleanly. *)
let scan buf =
  let len = Bytes.length buf in
  let rec go pos acc =
    if pos = len then (List.rev acc, pos, true)
    else if pos + 8 > len then (List.rev acc, pos, false)
    else
      let rlen = u32le_get buf pos in
      if rlen > max_record_bytes || pos + 8 + rlen > len then
        (List.rev acc, pos, false)
      else
        let crc = u32le_get buf (pos + 4) in
        if Crc32.bytes buf (pos + 8) rlen <> crc then (List.rev acc, pos, false)
        else
          go (pos + 8 + rlen)
            (Bytes.sub_string buf (pos + 8) rlen :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Directory layout                                                    *)
(* ------------------------------------------------------------------ *)

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         let parse ext =
           let pre = "wal-" and suf = "." ^ ext in
           let plen = String.length pre and slen = String.length suf in
           if String.length f > plen + slen
              && String.sub f 0 plen = pre
              && String.sub f (String.length f - slen) slen = suf
           then
             int_of_string_opt
               (String.sub f plen (String.length f - plen - slen))
           else None
         in
         match parse "seg" with
         | Some i -> Some (i, false, f)
         | None -> (
           match parse "open" with
           | Some i -> Some (i, true, f)
           | None -> None))
  |> List.sort compare

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_segment dir i =
  Unix.openfile (dir // seg_name false i)
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let create ?(segment_bytes = default_segment_bytes) ?(meta = "") dir =
  mkdir_p dir;
  List.iter (fun (_, _, f) -> Sys.remove (dir // f)) (list_segments dir);
  write_file_atomic dir meta_name (meta_magic ^ meta);
  let fd = open_segment dir 1 in
  fsync_dir dir;
  { dir; segment_bytes; seg_index = 1; fd = Some fd; seg_size = 0;
    appended = 0 }

type recovery = {
  entries : string list;
  salvaged_bytes : int;
  meta : string;
}

let replay dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "journal %s: no such directory" dir)
  else
    match read_file (dir // meta_name) with
    | exception Sys_error _ -> Error (Printf.sprintf "journal %s: missing meta" dir)
    | raw when not (String.length raw >= String.length meta_magic
                    && String.sub raw 0 (String.length meta_magic) = meta_magic)
      -> Error (Printf.sprintf "journal %s: bad meta magic" dir)
    | raw -> (
      let meta =
        String.sub raw (String.length meta_magic)
          (String.length raw - String.length meta_magic)
      in
      let segs = list_segments dir in
      let n = List.length segs in
      let rec read_segs k acc = function
        | [] -> Ok (List.concat (List.rev acc), 0)
        | (_, is_open, f) :: rest -> (
          let buf = Bytes.unsafe_of_string (read_file (dir // f)) in
          let records, consumed, clean = scan buf in
          let last = k = n - 1 in
          if is_open && not last then
            Error (Printf.sprintf "journal %s: stray active segment %s" dir f)
          else if not last && not clean then
            Error (Printf.sprintf "journal %s: sealed segment %s is corrupt" dir f)
          else if last && not clean then
            if is_open then
              (* torn tail of the active segment: salvage the prefix *)
              Ok (List.concat (List.rev (records :: acc)),
                  Bytes.length buf - consumed)
            else
              Error
                (Printf.sprintf "journal %s: sealed segment %s is corrupt" dir f)
          else read_segs (k + 1) (records :: acc) rest)
      in
      match read_segs 0 [] segs with
      | Error _ as e -> e
      | Ok (entries, salvaged_bytes) -> Ok { entries; salvaged_bytes; meta })

let open_resume ?(segment_bytes = default_segment_bytes) dir =
  match replay dir with
  | Error _ as e -> e
  | Ok recovery ->
    let segs = list_segments dir in
    let t =
      match List.rev segs with
      | (i, true, f) :: _ ->
        (* active segment: drop the torn tail, append after it *)
        let path = dir // f in
        let keep = (Unix.stat path).Unix.st_size - recovery.salvaged_bytes in
        if recovery.salvaged_bytes > 0 then begin
          Unix.truncate path keep;
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          (try Unix.fsync fd with Unix.Unix_error _ -> ());
          Unix.close fd
        end;
        let fd = open_segment dir i in
        { dir; segment_bytes; seg_index = i; fd = Some fd; seg_size = keep;
          appended = List.length recovery.entries }
      | (i, false, _) :: _ ->
        (* cleanly sealed journal (or crash between seal and next open):
           start the next segment *)
        let fd = open_segment dir (i + 1) in
        { dir; segment_bytes; seg_index = i + 1; fd = Some fd; seg_size = 0;
          appended = List.length recovery.entries }
      | [] ->
        let fd = open_segment dir 1 in
        { dir; segment_bytes; seg_index = 1; fd = Some fd; seg_size = 0;
          appended = List.length recovery.entries }
    in
    fsync_dir dir;
    Ok (t, recovery)

let seal t fd =
  fsync fd;
  Unix.close fd;
  rename (t.dir // seg_name false t.seg_index) (t.dir // seg_name true t.seg_index);
  fsync_dir t.dir

let rotate t fd =
  seal t fd;
  t.seg_index <- t.seg_index + 1;
  let fd = open_segment t.dir t.seg_index in
  fsync_dir t.dir;
  t.fd <- Some fd;
  t.seg_size <- 0;
  fd

let append t payload =
  if String.length payload > max_record_bytes then
    invalid_arg "Journal.append: record too large";
  let fd =
    match t.fd with
    | None -> invalid_arg "Journal.append: closed journal"
    | Some fd -> if t.seg_size >= t.segment_bytes then rotate t fd else fd
  in
  let b = frame payload in
  let injected = Inject.probe "journal.append" in
  (match injected with
  | Some "enospc" -> raise (Unix.Unix_error (Unix.ENOSPC, "write", t.dir))
  | Some ("short" | "torn-kill" as action) ->
    (* a torn record: half the frame reaches the disk, then the
       process (or just this write) dies *)
    let half = max 1 (Bytes.length b / 2) in
    write_all fd b 0 half;
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    t.seg_size <- t.seg_size + half;
    if action = "torn-kill" then Inject.kill_self ()
    else raise (Inject.Injected ("journal.append/" ^ action))
  | Some _ | None -> ());
  write_all fd b 0 (Bytes.length b);
  fsync fd;
  t.seg_size <- t.seg_size + Bytes.length b;
  t.appended <- t.appended + 1;
  (* [kill] simulates kill -9 *between* appends: the record above is
     durable, everything after it is lost *)
  if injected = Some "kill" then Inject.kill_self ()

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    seal t fd

let dir t = t.dir
let entries_appended t = t.appended
