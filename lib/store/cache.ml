open Satg_inject

type key = string

let magic = "satg-object v1\n"

let key_of_parts parts =
  Digest.to_hex
    (Digest.string
       (String.concat "" (List.map (fun (k, v) -> k ^ "=" ^ v ^ "\n") parts)))

let ( // ) = Filename.concat

let object_path ~dir key =
  dir // "objects" // String.sub key 0 2 // key

let lookup ~dir key =
  let path = object_path ~dir key in
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  with
  | exception Sys_error _ -> None
  | raw ->
    (* magic line, crc line, payload *)
    let mlen = String.length magic in
    if String.length raw < mlen || String.sub raw 0 mlen <> magic then None
    else
      match String.index_from_opt raw mlen '\n' with
      | None -> None
      | Some nl ->
        let crc_hex = String.sub raw mlen (nl - mlen) in
        let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
        if int_of_string_opt ("0x" ^ crc_hex) = Some (Crc32.string payload)
        then Some payload
        else None

let publish ~dir key payload =
  let path = object_path ~dir key in
  Journal.mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_string oc (Printf.sprintf "%08x\n" (Crc32.string payload));
     output_string oc payload;
     flush oc;
     Inject.fail "store.fsync";
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Inject.fail "store.rename";
  Sys.rename tmp path
