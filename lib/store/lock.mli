(** Stale-aware lockfiles for concurrent sessions.

    One session directory must have at most one writer: two concurrent
    [satg atpg --cache-dir] runs on the same (netlist, config) key
    would interleave journal appends.  The lock is a file created with
    [O_CREAT|O_EXCL] holding the owner's pid, hostname and start time.

    Staleness: a crashed owner cannot release, so {!acquire} steals the
    lock when the recorded owner is provably gone — same host and the
    pid no longer exists — or when the lockfile is older than
    [stale_after] seconds (the cross-host fallback, since a foreign pid
    cannot be probed).  [kill -9] therefore never wedges a session
    directory; a live concurrent owner is reported as a clean error. *)

val acquire : ?stale_after:float -> string -> (unit, string) result
(** Take the lock at this path.  [stale_after] defaults to one hour.
    [Error] names the live holder. *)

val release : string -> unit
(** Remove the lockfile.  Missing file is fine (idempotent). *)

val holder : string -> (int * string) option
(** [(pid, host)] recorded in the lockfile, if parseable. *)
