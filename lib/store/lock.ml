let write_owner path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
  in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let body =
    Printf.sprintf "pid %d\nhost %s\ntime %f\n" (Unix.getpid ())
      (Unix.gethostname ()) (Unix.gettimeofday ())
  in
  let b = Bytes.of_string body in
  let n = Unix.write fd b 0 (Bytes.length b) in
  assert (n = Bytes.length b);
  try Unix.fsync fd with Unix.Unix_error _ -> ()

let holder path =
  match
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    really_input_string ic (in_channel_length ic)
  with
  | exception Sys_error _ -> None
  | body -> (
    let field key =
      String.split_on_char '\n' body
      |> List.find_map (fun l ->
             let pre = key ^ " " in
             if String.length l > String.length pre
                && String.sub l 0 (String.length pre) = pre
             then
               Some
                 (String.sub l (String.length pre)
                    (String.length l - String.length pre))
             else None)
    in
    match (field "pid", field "host") with
    | Some pid, Some host -> Option.map (fun p -> (p, host)) (int_of_string_opt pid)
    | _ -> None)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
  | exception Unix.Unix_error _ -> true

let stale ~stale_after path =
  let aged () =
    match Unix.stat path with
    | st -> Unix.gettimeofday () -. st.Unix.st_mtime > stale_after
    | exception Unix.Unix_error _ -> false
  in
  match holder path with
  | Some (pid, host) when host = Unix.gethostname () -> not (pid_alive pid)
  | Some _ -> aged ()  (* foreign host: age is the only signal *)
  | None -> aged ()  (* unparseable: treat like a foreign owner *)

let rec acquire ?(stale_after = 3600.0) ?(retried = false) path =
  match write_owner path with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
    if (not retried) && stale ~stale_after path then begin
      (* the recorded owner is gone: steal by unlink + one retry (two
         concurrent stealers race benignly — exactly one O_EXCL create
         wins, the loser reports the winner) *)
      (try Sys.remove path with Sys_error _ -> ());
      acquire ~stale_after ~retried:true path
    end
    else
      Error
        (match holder path with
        | Some (pid, host) ->
          Printf.sprintf "locked by pid %d on %s (%s)" pid host path
        | None -> Printf.sprintf "locked (%s)" path)

let acquire ?stale_after path = acquire ?stale_after path

let release path = try Sys.remove path with Sys_error _ -> ()
