(* Reflected CRC-32, polynomial 0xEDB88320 (IEEE).  One 256-entry
   table, built once at load. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask = 0xFFFFFFFF

let bytes ?(crc = 0) b pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes";
  let t = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  (!c lxor mask) land mask

let string s = bytes (Bytes.unsafe_of_string s) 0 (String.length s)
