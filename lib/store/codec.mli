(** Textual wire format for faults and per-fault outcomes.

    One journal record (and one line of a cache object) is
    [<fault>|<status>]:

    - fault: [i:<gate>:<pin>:<0|1>] (input stuck-at) or
      [o:<gate>:<0|1>] (output stuck-at).  Node ids, not names — the
      session key pins the netlist hash, so ids are stable.
    - status: [U] (undetected), [A:<reason>] (aborted), or
      [D:<r|t|s>:<vectors>] (detected in the random / three-phase /
      fault-simulation phase) with the test's input vectors as
      ['.']-joined bitstrings (["10.11.01"]; empty for the empty
      sequence).

    Everything round-trips exactly; [*_of_string] return [None] on any
    malformed input (a corrupt-but-CRC-valid record must fail closed,
    not crash resume). *)

open Satg_guard
open Satg_fault
open Satg_core

val fault_to_string : Fault.t -> string
val fault_of_string : string -> Fault.t option
val status_to_string : Testset.status -> string
val status_of_string : string -> Testset.status option

val entry : Fault.t -> Testset.status -> string
val entry_of_string : string -> (Fault.t * Testset.status) option

(** A complete, settled run — what the content-addressed cache stores:
    enough to reproduce the CLI's output (outcome lines, CSSG stats
    line, summary) without rebuilding anything.  The type {e is} the
    session layer's {!Satg_core.Session.summary}: the cache object,
    the daemon's wire response and the renderer all share one value. *)
type result_payload = Satg_core.Session.summary = {
  faults_searched : int;
  truncated : Guard.reason option;
  cpu_seconds : float;  (** of the run that produced the object *)
  stats_line : string;  (** rendered [Cssg.pp_stats] (single line) *)
  outcomes : (Fault.t * Testset.status) list;
      (** per {e given} fault, in universe order (collapse expanded) *)
}

val result_to_string : result_payload -> string
val result_of_string : string -> (result_payload, string) result
