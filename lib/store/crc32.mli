(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.

    Every durable byte this store writes travels under one of these
    checksums: journal records, cache objects.  The value is kept in a
    native [int] masked to 32 bits, so it compares and prints without
    [Int32] boxing. *)

val bytes : ?crc:int -> Bytes.t -> int -> int -> int
(** [bytes ?crc b pos len] extends [crc] (default: the empty-message
    CRC) over [len] bytes of [b] starting at [pos].  Passing a previous
    result as [crc] streams a multi-part message. *)

val string : string -> int
(** CRC of a whole string.  [string "123456789" = 0xCBF43926]. *)
