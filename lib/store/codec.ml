open Satg_guard
open Satg_fault
open Satg_core

let fault_to_string = function
  | Fault.Input_sa { gate; pin; stuck } ->
    Printf.sprintf "i:%d:%d:%d" gate pin (Bool.to_int stuck)
  | Fault.Output_sa { gate; stuck } ->
    Printf.sprintf "o:%d:%d" gate (Bool.to_int stuck)

let bool_of_bit = function "0" -> Some false | "1" -> Some true | _ -> None

let fault_of_string s =
  match String.split_on_char ':' s with
  | [ "i"; g; p; b ] -> (
    match (int_of_string_opt g, int_of_string_opt p, bool_of_bit b) with
    | Some gate, Some pin, Some stuck when gate >= 0 && pin >= 0 ->
      Some (Fault.Input_sa { gate; pin; stuck })
    | _ -> None)
  | [ "o"; g; b ] -> (
    match (int_of_string_opt g, bool_of_bit b) with
    | Some gate, Some stuck when gate >= 0 ->
      Some (Fault.Output_sa { gate; stuck })
    | _ -> None)
  | _ -> None

let phase_code = function
  | Testset.Random -> "r"
  | Testset.Three_phase -> "t"
  | Testset.Fault_simulation -> "s"

let phase_of_code = function
  | "r" -> Some Testset.Random
  | "t" -> Some Testset.Three_phase
  | "s" -> Some Testset.Fault_simulation
  | _ -> None

let vector_to_bits v =
  String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let vector_of_bits s =
  let ok = ref true in
  let v =
    Array.init (String.length s) (fun i ->
        match s.[i] with
        | '1' -> true
        | '0' -> false
        | _ ->
          ok := false;
          false)
  in
  if !ok then Some v else None

let sequence_to_string seq = String.concat "." (List.map vector_to_bits seq)

let sequence_of_string s =
  if s = "" then Some []
  else
    let parts = String.split_on_char '.' s in
    let vs = List.map vector_of_bits parts in
    if List.for_all Option.is_some vs then Some (List.map Option.get vs)
    else None

let status_to_string = function
  | Testset.Undetected -> "U"
  | Testset.Aborted r -> "A:" ^ Guard.reason_to_string r
  | Testset.Detected { sequence; phase } ->
    Printf.sprintf "D:%s:%s" (phase_code phase) (sequence_to_string sequence)

let status_of_string s =
  if s = "U" then Some Testset.Undetected
  else if String.length s >= 2 && s.[0] = 'A' && s.[1] = ':' then
    Option.map
      (fun r -> Testset.Aborted r)
      (Guard.reason_of_string (String.sub s 2 (String.length s - 2)))
  else if String.length s >= 4 && s.[0] = 'D' && s.[1] = ':' && s.[3] = ':'
  then
    match
      ( phase_of_code (String.sub s 2 1),
        sequence_of_string (String.sub s 4 (String.length s - 4)) )
    with
    | Some phase, Some sequence ->
      Some (Testset.Detected { sequence; phase })
    | _ -> None
  else None

let entry f st = fault_to_string f ^ "|" ^ status_to_string st

let entry_of_string s =
  match String.index_opt s '|' with
  | None -> None
  | Some i -> (
    match
      ( fault_of_string (String.sub s 0 i),
        status_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some f, Some st -> Some (f, st)
    | _ -> None)

type result_payload = Satg_core.Session.summary = {
  faults_searched : int;
  truncated : Guard.reason option;
  cpu_seconds : float;
  stats_line : string;
  outcomes : (Fault.t * Testset.status) list;
}

let result_to_string r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "searched %d\n" r.faults_searched);
  Buffer.add_string buf
    (Printf.sprintf "truncated %s\n"
       (match r.truncated with
       | Some reason -> Guard.reason_to_string reason
       | None -> "-"));
  Buffer.add_string buf (Printf.sprintf "cpu %.17g\n" r.cpu_seconds);
  Buffer.add_string buf ("stats " ^ r.stats_line ^ "\n");
  Buffer.add_string buf (Printf.sprintf "outcomes %d\n" (List.length r.outcomes));
  List.iter
    (fun (f, st) ->
      Buffer.add_string buf (entry f st);
      Buffer.add_char buf '\n')
    r.outcomes;
  Buffer.contents buf

let result_of_string s =
  let err m = Error ("result payload: " ^ m) in
  let field prefix line =
    let pre = prefix ^ " " in
    if String.length line >= String.length pre
       && String.sub line 0 (String.length pre) = pre
    then Some (String.sub line (String.length pre)
                 (String.length line - String.length pre))
    else None
  in
  match String.split_on_char '\n' s with
  | searched :: truncated :: cpu :: stats :: count :: rest -> (
    match
      ( Option.bind (field "searched" searched) int_of_string_opt,
        field "truncated" truncated,
        Option.bind (field "cpu" cpu) float_of_string_opt,
        field "stats" stats,
        Option.bind (field "outcomes" count) int_of_string_opt )
    with
    | Some faults_searched, Some trunc, Some cpu_seconds, Some stats_line,
      Some n -> (
      let truncated =
        if trunc = "-" then Ok None
        else
          match Guard.reason_of_string trunc with
          | Some r -> Ok (Some r)
          | None -> Error ()
      in
      match truncated with
      | Error () -> err "bad truncation reason"
      | Ok truncated ->
        let lines = List.filteri (fun i _ -> i < n) rest in
        if List.length lines <> n then err "outcome count mismatch"
        else
          let parsed = List.map entry_of_string lines in
          if List.exists Option.is_none parsed then err "bad outcome entry"
          else
            Ok
              {
                faults_searched;
                truncated;
                cpu_seconds;
                stats_line;
                outcomes = List.map Option.get parsed;
              })
    | _ -> err "bad header")
  | _ -> err "truncated header"
