(** On-disk content-addressed result store.

    Objects live at [<dir>/objects/<k₀k₁>/<key>], where [key] is the
    MD5 of a canonical description of everything the result depends on
    — netlist hash, test-cycle budget, fault universe, engine, resource
    caps, collapse flag, random-phase config ({!Session.key}).  Jobs
    ([-j]) is deliberately {e not} part of the key: outcomes are
    j-invariant by the pool's determinism contract.

    Publication is atomic (write a unique tmp in the same directory,
    fsync, rename), so readers never observe a half-written object and
    concurrent publishers of the same key are idempotent.  Each object
    carries a CRC-32 of its payload; {!lookup} verifies it and treats a
    corrupt object as a miss (content addressing makes that safe: a key
    can only ever map to one value, so re-deriving and re-publishing
    heals the store). *)

type key = string
(** 32 hex characters. *)

val key_of_parts : (string * string) list -> key
(** Digest of the canonical ["k=v\n"] rendering; order matters, so
    callers must render fields in one fixed order. *)

val lookup : dir:string -> key -> string option
(** The payload, if present with a valid checksum. *)

val publish : dir:string -> key -> string -> unit
(** Atomically store the payload under the key (directories created as
    needed, existing object overwritten — same key, same content).
    @raise Sys_error / Unix.Unix_error on I/O failure. *)

val object_path : dir:string -> key -> string
(** Where the object lives (exists or would live). *)
