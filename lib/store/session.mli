(** Durable ATPG sessions: the glue between {!Satg_core.Engine} and the
    on-disk store.

    A session owns one [--cache-dir] root:

    {v
    <dir>/objects/<xx>/<key>     content-addressed, settled results
    <dir>/sessions/<key>/lock    stale-aware writer lock
    <dir>/sessions/<key>/wal/    outcome journal of an in-flight run
    v}

    The {e key} fingerprints everything that determines the outcome
    partition: the netlist bytes, fault universe, test-cycle budget,
    phase toggles, engine, collapse flag, resource caps and the random
    seed.  [-j] is deliberately {e not} part of the key — the engine's
    input-order wave merge makes outcomes identical for every job
    count, so a run at [-j4] may serve, or resume, a run at [-j1].
    (Under [--engine sat] a witness {e sequence} may differ across
    [-j]; the detected/undetected partition still cannot.)

    Lifecycle: {!start} takes the lock and either creates a fresh
    journal or replays one ([resume]); {!settled} feeds the engine the
    replayed outcomes and {!record} journals each fresh one in commit
    order; {!finish} releases (keeping the journal for a later
    [--resume] or discarding the whole session directory when the run
    is settled).  {!publish} caches a {!cacheable} result so the next
    identical invocation does zero fault searches. *)

open Satg_fault
open Satg_core

val key_of :
  netlist:string ->
  universe:Satg_core.Session.universe ->
  config:Engine.config ->
  string
(** Content-addressed key of a (netlist, configuration) pair.
    [netlist] is the raw file bytes; [universe] is the fault model.
    The fields hashed are exactly
    {!Satg_core.Session.config_fields} — the one exhaustive list of
    outcome-relevant configuration — so the key and the daemon's wire
    format can never disagree about what matters. *)

val cached : dir:string -> key:string -> Codec.result_payload option
(** Serve a settled run from the object store.  Any corruption
    (CRC, wire format) is a miss, never an error. *)

val cacheable : Engine.result -> bool
(** A result may enter the object store iff it is {e reproducible}:
    CSSG truncation and per-fault aborts from deterministic budget
    caps ([State_limit], [Transition_limit]) qualify; wall-clock
    ([Timeout]) or operator ([Interrupt]) aborts do not — a rerun
    could legitimately do better. *)

val payload_of_result : Engine.result -> Codec.result_payload

val publish : dir:string -> key:string -> Codec.result_payload -> unit
(** Atomically install the payload in the object store
    (write-tmp→fsync→rename; concurrent publishers of the same key
    write identical bytes, so the last rename wins harmlessly). *)

type t

val start :
  ?resume:bool -> dir:string -> key:string -> unit -> (t, string) result
(** Lock the session directory for this key and open its journal —
    fresh by default; with [resume], replay the existing journal
    (salvaging a torn tail) and position to append after it.  [Error]
    when a live concurrent run holds the lock, when [resume] finds no
    usable journal, or when the journal's pinned key disagrees. *)

val settled : t -> Fault.t -> Testset.status option
(** Journal-replayed outcome for a fault class representative, if its
    search is settled.  [Aborted Timeout] and [Aborted Interrupt]
    entries are {e not} settled: the fault is searched again, which is
    exactly what an uninterrupted run would have done with the time. *)

val settled_count : t -> int
(** Settled entries replayed at {!start} (0 for a fresh session). *)

val record : t -> Fault.t -> Testset.status -> unit
(** Durably journal one outcome ({!Satg_core.Engine.run}'s
    [on_outcome]).  Raises on store I/O failure — the run dies rather
    than silently losing durability. *)

val finish : t -> keep:bool -> unit
(** Close the journal and release the lock.  [keep:true] leaves the
    journal for a later [--resume] (an interrupted or failed run);
    [keep:false] deletes the session directory (the run is settled —
    and, if cacheable, published).  Idempotent; safe in error paths. *)
