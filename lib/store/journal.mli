(** Crash-safe, append-only outcome journal.

    A journal is a directory of {e segments}.  Appends go to the single
    active segment ([wal-NNNNNN.open]); when it outgrows
    [segment_bytes] it is fsynced and atomically renamed to
    [wal-NNNNNN.seg] ({e sealed}) and the next [.open] segment starts —
    the write-tmp→fsync→rename discipline, applied to whole segments.
    A [meta] file (also written tmp→fsync→rename) pins the journal to
    its session key, so a resume under a different configuration is
    rejected instead of silently replayed.

    Record wire format: [u32le length ++ u32le crc32(payload) ++
    payload].  Each {!append} is durable ([fsync]) before it returns,
    so the journal's replay is always an exact prefix of the commit
    sequence — the property resume correctness stands on.

    Recovery rules (the {e salvage} contract, property-tested):
    - a {e sealed} segment must parse completely and cleanly; any
      corruption is a clean [Error] (the journal is rejected, never
      half-trusted);
    - the {e active} tail segment may be torn (the process died
      mid-write): the valid prefix of records is salvaged and the torn
      suffix is discarded — {!open_resume} truncates it away before
      appending again;
    - replay therefore yields either a valid prefix of what was
      appended, or a clean rejection.  Never a crash, never an invented
      record (each record is CRC-checked).

    Fault-injection sites ([SATG_FAULT_INJECT]): [journal.append]
    interprets [enospc] (fail before writing), [short] (write a torn
    half-record, then fail), [kill] (SIGKILL after the durable append)
    and [torn-kill] (SIGKILL mid-record); [store.rename] and
    [store.fsync] fail the segment-seal and meta-commit steps. *)

type t

val create : ?segment_bytes:int -> ?meta:string -> string -> t
(** Start a fresh journal in the directory (created if missing; any
    previous segments are removed).  [meta] (default [""]) is the
    session-key payload pinned by the meta file.  [segment_bytes]
    (default 64 KiB) bounds a segment before rotation.
    @raise Sys_error / Unix.Unix_error on I/O failure. *)

type recovery = {
  entries : string list;  (** the salvaged valid prefix, in order *)
  salvaged_bytes : int;  (** torn tail bytes discarded, 0 if clean *)
  meta : string;
}

val replay : string -> (recovery, string) result
(** Read-only recovery of a journal directory: parse every sealed
    segment strictly and salvage the tail.  [Error] on a missing or
    corrupt meta file, corruption in a sealed segment, or a [.open]
    segment that is not the last — the journal must then be discarded,
    not resumed. *)

val open_resume :
  ?segment_bytes:int -> string -> (t * recovery, string) result
(** {!replay}, then position for appending: the torn tail (if any) is
    truncated off the active segment and subsequent {!append}s continue
    after the last salvaged record. *)

val append : t -> string -> unit
(** Durably append one record (write + fsync before returning).
    Records may be any bytes, including newlines; the empty string is
    valid.  Rotates segments as needed.
    @raise Invalid_argument beyond {!max_record_bytes}. *)

val close : t -> unit
(** Seal the active segment and close.  Idempotent. *)

val dir : t -> string
val entries_appended : t -> int

val max_record_bytes : int
(** Sanity ceiling on one record (also the recovery-time bound that
    rejects corrupt length headers fast). *)

val mkdir_p : string -> unit
(** [mkdir -p], shared with the other store modules. *)
