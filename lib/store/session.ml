open Satg_guard
open Satg_fault
open Satg_core

let ( // ) = Filename.concat

let key_of ~netlist ~universe ~config =
  (* Everything outcome-determining goes in, via the session layer's
     one exhaustive field list ([jobs] stays out: the wave merge is
     j-invariant).  The typed [universe] kills a whole bug class — a
     caller passing "Input" vs "input" used to mint two keys for one
     request.  [format] guards against wire-format or semantics
     changes across versions of this code. *)
  Cache.key_of_parts
    (("format", "1")
    :: ("netlist", Digest.to_hex (Digest.string netlist))
    :: Satg_core.Session.config_fields ~universe config)

let cached ~dir ~key =
  match Cache.lookup ~dir key with
  | None -> None
  | Some payload -> (
    match Codec.result_of_string payload with
    | Ok p -> Some p
    | Error _ -> None)

let deterministic_reason = function
  | Guard.State_limit | Guard.Transition_limit -> true
  | Guard.Timeout | Guard.Interrupt -> false

let cacheable (r : Engine.result) =
  (match Engine.truncated r with
  | Some reason -> deterministic_reason reason
  | None -> true)
  && List.for_all
       (fun o ->
         match o.Testset.status with
         | Testset.Aborted reason -> deterministic_reason reason
         | Testset.Detected _ | Testset.Undetected -> true)
       r.Engine.outcomes

let payload_of_result = Satg_core.Session.summary_of_result

let publish ~dir ~key payload =
  Cache.publish ~dir key (Codec.result_to_string payload)

type t = {
  sdir : string;
  lock_path : string;
  journal : Journal.t;
  settled_tbl : (Fault.t, Testset.status) Hashtbl.t;
  mutable released : bool;
}

let session_dir ~dir key = dir // "sessions" // key

(* A Timeout/Interrupt abort is what the run happened to get done
   before the clock (or the operator) intervened — an uninterrupted run
   would have kept searching, so resume must too. *)
let settled_on_resume = function
  | Testset.Aborted (Guard.Timeout | Guard.Interrupt) -> false
  | Testset.Detected _ | Testset.Undetected | Testset.Aborted _ -> true

let start ?(resume = false) ~dir ~key () =
  let sdir = session_dir ~dir key in
  Journal.mkdir_p sdir;
  let lock_path = sdir // "lock" in
  match Lock.acquire lock_path with
  | Error m -> Error m
  | Ok () -> (
    let fail m =
      Lock.release lock_path;
      Error m
    in
    let wal = sdir // "wal" in
    let settled_tbl = Hashtbl.create 256 in
    if not resume then (
      match Journal.create ~meta:key wal with
      | j -> Ok { sdir; lock_path; journal = j; settled_tbl; released = false }
      | exception Sys_error m -> fail m
      | exception Unix.Unix_error (e, op, _) ->
        fail (Printf.sprintf "%s: %s" op (Unix.error_message e)))
    else
      match Journal.open_resume wal with
      | Error m -> fail m
      | Ok (j, recovery) ->
        if recovery.Journal.meta <> key then begin
          Journal.close j;
          fail
            (Printf.sprintf
               "journal %s was written by a different configuration \
                (key %s, expected %s)"
               wal recovery.Journal.meta key)
        end
        else
          let rec load = function
            | [] -> None
            | e :: rest -> (
              match Codec.entry_of_string e with
              | None -> Some e
              | Some (f, st) ->
                if settled_on_resume st then Hashtbl.replace settled_tbl f st
                else Hashtbl.remove settled_tbl f;
                load rest)
          in
          (* CRC-valid but undecodable: written by an incompatible
             version — fail closed rather than resume a half-read run *)
          (match load recovery.Journal.entries with
          | Some e ->
            Journal.close j;
            fail
              (Printf.sprintf "journal %s: undecodable record %S" wal e)
          | None ->
            Ok { sdir; lock_path; journal = j; settled_tbl; released = false }))

let settled t f = Hashtbl.find_opt t.settled_tbl f
let settled_count t = Hashtbl.length t.settled_tbl
let record t f st = Journal.append t.journal (Codec.entry f st)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (path // f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let finish t ~keep =
  if not t.released then begin
    t.released <- true;
    (try Journal.close t.journal with Sys_error _ | Unix.Unix_error _ -> ());
    Lock.release t.lock_path;
    if not keep then try rm_rf t.sdir with Sys_error _ | Unix.Unix_error _ -> ()
  end
