(** The benchmark suite: 23 asynchronous-controller STGs named after
    the paper's Table 1 / Table 2 benchmarks.

    The original 1997 benchmark files (and the Petrify / SIS tools that
    synthesized them) are not available in this environment, so these
    are {e reconstructions}: hand-written STGs with comparable
    interface widths and classic controller behaviours (handshake
    expanders, C-element joins, pipeline stages, D-latch samplers,
    sequencers).  Three of them — [dff], [vbe6a], [vbe10b],
    [trimos-send] — are engineered with D-latch-shaped next-state
    functions ([set + hold·state] with opposing literals), so that the
    hazard-free (redundant) synthesis backend adds consensus terms and
    reproduces the paper's finding that redundancy wrecks coverage in
    Table 2.  See DESIGN.md for the substitution rationale. *)

open Satg_circuit
open Satg_stg

type entry = {
  name : string;
  stg : Stg.t;
}

val all : unit -> entry list
(** All 23 benchmarks, in the paper's table order. *)

val names : string list
val find : string -> entry option

val speed_independent : entry -> (Circuit.t, string) result
(** Complex-gate synthesis — the Table 1 family (Petrify-like). *)

val bounded_delay : entry -> (Circuit.t, string) result
(** Decomposed 2-input synthesis with redundant (hazard-free) covers —
    the Table 2 family (SIS-like). *)

(** {1 Generated families}

    Scalable benchmark families built from the {!Satg_concepts}
    combinator DSL.  They are registered separately from {!all}: the
    fixed 23-benchmark list keeps its global invariants (the generated
    arbiter, like real arbiters, is not output-persistent). *)

val family_names : string list
(** ["pipeline"; "arbiter"; "ring"; "fifo"; "latch"]. *)

val family_defaults : unit -> entry list
(** One instance of each family at its default size
    (e.g. ["pipeline3"]). *)

val generate : string -> n:int -> (entry, string) result
(** Compile family [fname] at size [n] ([Error] on unknown family or
    out-of-range size). *)
