open Satg_stg

type entry = {
  name : string;
  stg : Stg.t;
}

(* Hand-written STG reconstructions of the paper's benchmark set; see
   the interface and DESIGN.md for the substitution rationale.  Shapes
   used: monotone handshake expansions, C-element joins, a Muller
   pipeline stage (ebergen), sequential channel service (mmu), pulse
   converters with an internal state signal (converta), and D-latch
   samplers whose covers contain opposing literals (dff, vbe6a,
   vbe10b, trimos-send). *)
let sources =
  [
    ( "alloc-outbound",
      {|.model alloc-outbound
.inputs req done
.outputs alloc ack
.graph
req+ alloc+
alloc+ done+
done+ alloc-
alloc- ack+
ack+ req-
req- ack-
ack- done-
done- req+
.marking { <done-,req+> }
.init req=0 done=0 alloc=0 ack=0
.end|} );
    ( "atod",
      {|.model atod
.inputs go cmp
.outputs sample ready
.graph
go+ sample+
sample+ cmp+
cmp+ sample-
sample- ready+
ready+ go-
go- ready-
ready- cmp-
cmp- go+
.marking { <cmp-,go+> }
.init go=0 cmp=0 sample=0 ready=0
.end|} );
    ( "chu150",
      {|.model chu150
.inputs a b
.outputs c d
.graph
a+ c+
c+ b+
b+ d+
d+ a-
a- c-
c- b-
b- d-
d- a+
.marking { <d-,a+> }
.init a=0 b=0 c=0 d=0
.end|} );
    ( "converta",
      {|.model converta
.inputs r
.outputs a y
.graph
r+ a+
a+ y+
y+ a-
a- r-
r- a+/2
a+/2 y-
y- a-/2
a-/2 r+
.marking { <a-/2,r+> }
.init r=0 a=0 y=0
.end|} );
    ( "dff",
      {|.model dff
.inputs d c
.outputs q
.graph
d+ c+
c+ q+
q+ c-
c- d-
d- c+/2
c+/2 q-
q- c-/2
c-/2 d+
.marking { <c-/2,d+> }
.init d=0 c=0 q=0
.end|} );
    ( "ebergen",
      {|.model ebergen
.inputs ri ao
.outputs x ai ro
.graph
ri+ x+
ao- x+
x+ ai+
x+ ro+
ai+ ri-
ro+ ao+
ri- x-
ao+ x-
x- ai-
x- ro-
ai- ri+
ro- ao-
.marking { <ai-,ri+> <ao-,x+> }
.init ri=0 ao=0 x=0 ai=0 ro=0
.end|} );
    ( "hazard",
      {|.model hazard
.inputs a b
.outputs x
.graph
a+ x+
x+ b+
b+ x-
x- a-
a- b-
b- a+
.marking { <b-,a+> }
.init a=0 b=0 x=0
.end|} );
    ( "master-read",
      {|.model master-read
.inputs req gnt rdy
.outputs mreq oe mack
.graph
req+ mreq+
mreq+ gnt+
gnt+ oe+
oe+ rdy+
rdy+ mack+
mack+ req-
req- mreq-
mreq- gnt-
gnt- oe-
oe- rdy-
rdy- mack-
mack- req+
.marking { <mack-,req+> }
.init req=0 gnt=0 rdy=0 mreq=0 oe=0 mack=0
.end|} );
    ( "mmu",
      {|.model mmu
.inputs r1 r2
.outputs a1 a2 m
.graph
r1+ m+
m+ a1+
a1+ r1-
r1- a1-
a1- m-
m- r2+
r2+ m+/2
m+/2 a2+
a2+ r2-
r2- a2-
a2- m-/2
m-/2 r1+
.marking { <m-/2,r1+> }
.init r1=0 r2=0 a1=0 a2=0 m=0
.end|} );
    ( "mp-forward-pkt",
      {|.model mp-forward-pkt
.inputs req rdy
.outputs fwd ack
.graph
req+ fwd+
fwd+ rdy+
rdy+ ack+
ack+ req-
req- fwd-
fwd- rdy-
rdy- ack-
ack- req+
.marking { <ack-,req+> }
.init req=0 rdy=0 fwd=0 ack=0
.end|} );
    ( "nak-pa",
      {|.model nak-pa
.inputs req nak
.outputs ack rel
.graph
req+ ack+
ack+ nak+
nak+ ack-
ack- rel+
rel+ req-
req- rel-
rel- nak-
nak- req+
.marking { <nak-,req+> }
.init req=0 nak=0 ack=0 rel=0
.end|} );
    ( "nowick",
      {|.model nowick
.inputs a b
.outputs z
.graph
a+ z+
b+ z+
z+ a-
a- b-
b- z-
z- a+
z- b+
.marking { <z-,a+> <z-,b+> }
.init a=0 b=0 z=0
.end|} );
    ( "ram-read-sbuf",
      {|.model ram-read-sbuf
.inputs req prec
.outputs ra sbuf ack
.graph
req+ ra+
ra+ prec+
prec+ sbuf+
sbuf+ ack+
ack+ req-
req- ra-
ra- prec-
prec- sbuf-
sbuf- ack-
ack- req+
.marking { <ack-,req+> }
.init req=0 prec=0 ra=0 sbuf=0 ack=0
.end|} );
    ( "rcv-setup",
      {|.model rcv-setup
.inputs go
.outputs rcv set
.graph
go+ rcv+
rcv+ set+
set+ go-
go- rcv-
rcv- set-
set- go+
.marking { <set-,go+> }
.init go=0 rcv=0 set=0
.end|} );
    ( "rpdft",
      {|.model rpdft
.inputs r
.outputs p d f
.graph
r+ p+
p+ d+
d+ f+
f+ r-
r- p-
p- d-
d- f-
f- r+
.marking { <f-,r+> }
.init r=0 p=0 d=0 f=0
.end|} );
    ( "sbuf-ram-write",
      {|.model sbuf-ram-write
.inputs req wen done
.outputs wsel wr ack
.graph
req+ wsel+
wsel+ wen+
wen+ wr+
wr+ done+
done+ ack+
ack+ req-
req- wsel-
wsel- wen-
wen- wr-
wr- done-
done- ack-
ack- req+
.marking { <ack-,req+> }
.init req=0 wen=0 done=0 wsel=0 wr=0 ack=0
.end|} );
    ( "sbuf-send-ctl",
      {|.model sbuf-send-ctl
.inputs send tack
.outputs treq latch
.graph
send+ latch+
latch+ treq+
treq+ tack+
tack+ send-
send- treq-
treq- tack-
tack- latch-
latch- send+
.marking { <latch-,send+> }
.init send=0 tack=0 treq=0 latch=0
.end|} );
    ( "sbuf-send-pkt2",
      {|.model sbuf-send-pkt2
.inputs req tack
.outputs treq pkt ack
.graph
req+ pkt+
pkt+ treq+
treq+ tack+
tack+ ack+
ack+ req-
req- pkt-
pkt- treq-
treq- tack-
tack- ack-
ack- req+
.marking { <ack-,req+> }
.init req=0 tack=0 treq=0 pkt=0 ack=0
.end|} );
    ( "seq4",
      {|.model seq4
.inputs go
.outputs s1 s2 s3 s4
.graph
go+ s1+
s1+ s2+
s2+ s3+
s3+ s4+
s4+ go-
go- s1-
s1- s2-
s2- s3-
s3- s4-
s4- go+
.marking { <s4-,go+> }
.init go=0 s1=0 s2=0 s3=0 s4=0
.end|} );
    ( "trimos-send",
      {|.model trimos-send
.inputs r s
.outputs x y z
.graph
s+ r+
r+ s-
s- x+
x+ y+
y+ z+
z+ s+/2
s+/2 r-
r- s-/2
s-/2 x-
x- y-
y- z-
z- s+
.marking { <z-,s+> }
.init r=0 s=0 x=0 y=0 z=0
.end|} );
    ( "vbe5b",
      {|.model vbe5b
.inputs a b
.outputs x y
.graph
a+ x+
x+ y+
y+ b+
b+ x-
x- y-
y- a-
a- b-
b- a+
.marking { <b-,a+> }
.init a=0 b=0 x=0 y=0
.end|} );
    ( "vbe6a",
      {|.model vbe6a
.inputs a b
.outputs x
.graph
b+ a+
a+ b-
b- x+
x+ b+/2
b+/2 a-
a- b-/2
b-/2 x-
x- b+
.marking { <x-,b+> }
.init a=0 b=0 x=0
.end|} );
    ( "vbe10b",
      {|.model vbe10b
.inputs a b
.outputs x y
.graph
b+ a+
a+ b-
b- x+
x+ y+
y+ b+/2
b+/2 a-
a- b-/2
b-/2 x-
x- y-
y- b+
.marking { <y-,b+> }
.init a=0 b=0 x=0 y=0
.end|} );
  ]

let entries =
  lazy
    (List.map
       (fun (name, text) ->
         match Stg.parse_string text with
         | Ok stg -> { name; stg }
         | Error m ->
           invalid_arg (Printf.sprintf "Suite: benchmark %s: %s" name m))
       sources)

let all () = Lazy.force entries
let names = List.map fst sources
let find name = List.find_opt (fun e -> e.name = name) (all ())
let speed_independent e = Synth.complex_gate e.stg
let bounded_delay e = Synth.decomposed ~redundant:true e.stg

(* Generated families live in a separate registry: [all] is exactly the
   paper's 23 fixed benchmarks (some global checks, e.g. output
   persistency, quantify over it and the arbiter family intentionally
   fails them). *)

let family_names = Satg_concepts.Families.names

let family_defaults () =
  List.map
    (fun (f : Satg_concepts.Families.family) ->
      match Satg_concepts.Families.generate f.fname ~n:f.default_n with
      | Ok stg ->
        { name = Satg_concepts.Families.instance_name f.fname f.default_n; stg }
      | Error m ->
        invalid_arg (Printf.sprintf "Suite: family %s: %s" f.fname m))
    Satg_concepts.Families.all

let generate fname ~n =
  match Satg_concepts.Families.generate fname ~n with
  | Ok stg -> Ok { name = Satg_concepts.Families.instance_name fname n; stg }
  | Error _ as e -> e
