(** Deterministic fault injection for robustness testing.

    The durability and fail-soft invariants of this codebase — torn
    journal tails salvage, a poisoned worker never wedges the pool, a
    tripped guard degrades one fault, a killed process resumes — are
    only worth anything if something actually exercises the failure
    paths.  This module is that something: a seeded, spec-driven
    harness that makes selected {e probe sites} fail on demand, so
    tests and CI can prove the invariants instead of asserting them.

    Probe sites are cheap named checkpoints compiled into production
    code ({!probe} is one boolean load when the harness is idle).  A
    spec — usually from the [SATG_FAULT_INJECT] environment variable —
    arms sites with actions and triggers:

    {v
    SATG_FAULT_INJECT="seed=7,journal.append=enospc@3,guard.tick=trip@p0.001"
    v}

    Spec grammar (comma-separated clauses):
    - [seed=N] — seed for every probabilistic trigger (default 1).
    - [SITE=ACTION@N] — fire [ACTION] on exactly the [N]-th probe of
      [SITE] (1-based), once.
    - [SITE=ACTION@pF] — fire [ACTION] on each probe of [SITE] with
      probability [F], from a per-rule PRNG stream derived
      deterministically from [(seed, site, action)] — the same spec
      replays the same firing pattern.

    A site may carry several rules; the first that fires wins.  Known
    sites and the actions their probing code interprets:

    - [guard.tick] — every {!Satg_guard.Guard} probe on a limited
      guard.  [trip] raises the guard's [Exhausted Transition_limit]
      mid-phase; [trip-timeout] raises [Exhausted Timeout] (the
      no-retry, cancel-the-family path).
    - [pool.worker] — each item a {!Satg_pool.Pool.map} worker runs.
      [poison] raises {!Injected} inside the worker.
    - [journal.append] — each journal record append.  [short] writes a
      torn half-record then raises; [enospc] raises before writing;
      [kill] SIGKILLs the process {e after} the append is durable;
      [torn-kill] SIGKILLs it mid-record.
    - [store.rename] / [store.fsync] — the atomic-publish steps of the
      store.  [fail] raises {!Injected}.

    Counting is per-site across all domains (atomic), so an [@N]
    trigger on a caller-domain-only site (the journal) is exactly
    deterministic; on multi-domain sites ([guard.tick]) the count
    interleaves and [@pF] is the reproducible choice. *)

exception Injected of string
(** Raised by probing code when an armed site fires; the payload is
    ["site/action"].  Deliberately {e not} a [Guard.Exhausted]: it
    models an environment failure (I/O, a crashed worker), not a
    resource budget. *)

val enabled : unit -> bool
(** One load; [false] unless a spec with at least one rule is armed. *)

val configure : string -> (unit, string) result
(** Arm the harness from a spec string (replacing any previous spec).
    [Error] describes the first malformed clause; the previous spec is
    cleared either way.  The empty string disarms. *)

val configure_from_env : unit -> (unit, string) result
(** [configure] from [SATG_FAULT_INJECT]; unset or empty disarms. *)

val clear : unit -> unit
(** Disarm every site and reset all hit counters. *)

val probe : string -> string option
(** [probe site] counts one hit of [site] and returns the action of
    the first armed rule that fires, [None] otherwise (always [None]
    when disarmed). *)

val fires : string -> string -> bool
(** [fires site action] — did [probe site] pick this action?  Sugar
    for probing code with a single interpreted action. *)

val fail : string -> unit
(** Probe [site]; raise {!Injected} on any firing rule.  For sites
    whose only failure mode is "this operation errors". *)

val kill_self : unit -> 'a
(** [SIGKILL] the current process — indistinguishable from an external
    [kill -9], which is the point: crash-resume tests use it to die at
    a deterministic probe site. *)

val hits : string -> int
(** Total probes of [site] since the last {!clear}/{!configure}. *)
