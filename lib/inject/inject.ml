exception Injected of string

type trigger =
  | Nth of int  (* fire once, on exactly the Nth hit of the site *)
  | Prob of float  (* fire each hit with this probability, seeded *)

type rule = {
  action : string;
  trigger : trigger;
  (* PRNG state for [Prob]; mutated under [lock].  Derived from
     (seed, site, action) so a rule's firing pattern depends only on
     the spec, never on other rules' traffic. *)
  mutable rng : int64;
}

type site = {
  rules : rule list;
  hits : int Atomic.t;
}

(* Armed only in tests/CI; production probes see [armed = false] and
   return after one load.  All slow-path state sits behind [lock]
   because probes can arrive from any domain. *)
let armed = ref false
let lock = Mutex.create ()
let sites : (string, site) Hashtbl.t = Hashtbl.create 8

(* splitmix64: tiny, seedable, good enough to decorrelate rules. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let step r =
  r.rng <- Int64.add r.rng 0x9e3779b97f4a7c15L;
  mix r.rng

let uniform r =
  (* 53 mantissa bits of the mixed state, in [0,1) *)
  let bits = Int64.to_float (Int64.shift_right_logical (step r) 11) in
  bits /. 9007199254740992.0

let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let clear () =
  Mutex.lock lock;
  Hashtbl.reset sites;
  armed := false;
  Mutex.unlock lock

let parse_trigger s =
  if String.length s > 1 && s.[0] = 'p' then
    match float_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
    | _ -> Error (Printf.sprintf "bad probability %S" s)
  else
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (Nth n)
    | _ -> Error (Printf.sprintf "bad trigger %S (want N or pF)" s)

let configure spec =
  clear ();
  let clauses =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec build seed acc = function
    | [] -> Ok (seed, List.rev acc)
    | clause :: rest -> (
      match String.index_opt clause '=' with
      | None -> Error (Printf.sprintf "bad clause %S (want SITE=ACTION@TRIG)" clause)
      | Some i -> (
        let key = String.sub clause 0 i in
        let v = String.sub clause (i + 1) (String.length clause - i - 1) in
        if key = "seed" then
          match int_of_string_opt v with
          | Some s -> build s acc rest
          | None -> Error (Printf.sprintf "bad seed %S" v)
        else
          match String.index_opt v '@' with
          | None ->
            Error (Printf.sprintf "clause %S: missing '@TRIGGER'" clause)
          | Some j -> (
            let action = String.sub v 0 j in
            let trig = String.sub v (j + 1) (String.length v - j - 1) in
            if action = "" then Error (Printf.sprintf "clause %S: empty action" clause)
            else
              match parse_trigger trig with
              | Error e -> Error (Printf.sprintf "clause %S: %s" clause e)
              | Ok t -> build seed ((key, action, t) :: acc) rest)))
  in
  match build 1 [] clauses with
  | Error _ as e -> e
  | Ok (_, []) -> Ok ()  (* empty spec: stay disarmed *)
  | Ok (seed, rules) ->
    Mutex.lock lock;
    List.iter
      (fun (site_name, action, trigger) ->
        let rng =
          mix
            (Int64.add (Int64.of_int seed)
               (hash_string (site_name ^ "\x00" ^ action)))
        in
        let rule = { action; trigger; rng } in
        match Hashtbl.find_opt sites site_name with
        | Some s ->
          Hashtbl.replace sites site_name
            { s with rules = s.rules @ [ rule ] }
        | None ->
          Hashtbl.replace sites site_name
            { rules = [ rule ]; hits = Atomic.make 0 })
      rules;
    armed := true;
    Mutex.unlock lock;
    Ok ()

let configure_from_env () =
  match Sys.getenv_opt "SATG_FAULT_INJECT" with
  | None | Some "" ->
    clear ();
    Ok ()
  | Some spec -> configure spec

let enabled () = !armed

let probe site_name =
  if not !armed then None
  else begin
    Mutex.lock lock;
    let r =
      match Hashtbl.find_opt sites site_name with
      | None -> None
      | Some site ->
        let n = 1 + Atomic.fetch_and_add site.hits 1 in
        List.find_map
          (fun rule ->
            let fired =
              match rule.trigger with
              | Nth k -> n = k
              | Prob p -> uniform rule < p
            in
            if fired then Some rule.action else None)
          site.rules
    in
    Mutex.unlock lock;
    r
  end

let fires site action =
  match probe site with Some a -> a = action | None -> false

let fail site =
  match probe site with
  | Some action -> raise (Injected (site ^ "/" ^ action))
  | None -> ()

let kill_self () =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* unreachable: SIGKILL cannot be blocked *)
  assert false

let hits site_name =
  Mutex.lock lock;
  let n =
    match Hashtbl.find_opt sites site_name with
    | Some s -> Atomic.get s.hits
    | None -> 0
  in
  Mutex.unlock lock;
  n
