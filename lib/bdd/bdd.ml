(* Hash-consed ROBDDs, struct-of-arrays node store.  Node ids:
   0 = terminal false, 1 = terminal true, >= 2 internal.  The variable
   of a terminal is [terminal_var], larger than any real variable.

   The hot paths (mk / apply / ite / not) are allocation-free:

   - The unique table is open addressing with linear probing over one
     int array.  A bucket holds [node id + 1] (0 = empty, -1 =
     tombstone); the key (var, low, high) is never materialised — it
     is hashed inline and compared against the struct-of-arrays store.
     The table grows at 3/4 occupancy.  Tombstones exist only because
     dynamic reordering rewrites nodes in place (the key of a
     rewritten node changes, so its old bucket must die); a manager
     that never reorders never produces one.
   - All operation results share one fixed-size direct-mapped cache
     (CUDD-style): a flat int array of 4-int entries
     [key1; key2; key3; result], where key1 packs the first operand
     and the op tag ((a lsl 3) lor op).  Collisions simply overwrite
     (lossy); correctness never depends on the cache, only speed.
     Below [cache_threshold] store nodes the cache is not even probed:
     tiny workloads lose more to the probe than they gain from hits.
   - [Guard.tick] is probed on every cache miss and node allocation,
     so a deadline (or an already-tripped guard) aborts a runaway
     symbolic computation from *inside* the recursion instead of
     waiting for the caller's next loop boundary.

   Dynamic variable ordering: the variable order is a permutation held
   in [var_at] (level -> var) / [level_of] (var -> level), identity at
   creation.  Every ordering comparison in the operations goes through
   [level_of], so adjacent levels can be swapped in place (Rudell
   sifting): a swap rewrites only the upper level's nodes whose
   children live at the lower level, preserving what every node id
   *denotes* — external handles and op-cache entries stay valid across
   a reorder. *)

open Satg_guard

type t = int

let terminal_var = max_int

(* op tags, also the index into the per-op hit/miss counters *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_not = 3
let op_ite = 4
let op_flip = 5
let n_ops = 6

type reorder_mode = Reorder_none | Reorder_sift

type man = {
  mutable var_of : int array;
  mutable low_of : int array;
  mutable high_of : int array;
  mutable n_nodes : int;
  (* unique table: open addressing, bucket = node id + 1, 0 = empty,
     -1 = tombstone (left behind by in-place reordering) *)
  mutable table : int array;
  mutable umask : int;  (* Array.length table - 1 (power of two) *)
  mutable ulimit : int;  (* rehash threshold: 3/4 of the buckets *)
  mutable u_entries : int;  (* live keys in the table *)
  mutable u_used : int;  (* live keys + tombstones *)
  (* shared direct-mapped op cache: 4 ints per entry *)
  cache : int array;
  cmask : int;  (* entry count - 1 (power of two) *)
  cache_threshold : int;  (* skip cache probing while n_nodes < this *)
  hits : int array;  (* per op tag *)
  misses : int array;
  mutable n_vars : int;
  mutable guard : Guard.t;
  (* dynamic ordering *)
  mutable var_at : int array;  (* level -> variable *)
  mutable level_of : int array;  (* variable -> level *)
  mutable reorder : reorder_mode;
  mutable reorder_trigger : int;  (* auto-sift when n_nodes crosses this *)
  mutable reorder_bound : int;  (* remaining automatic passes *)
  mutable in_reorder : bool;
  mutable reorders : int;
  mutable swaps : int;
  mutable reorder_time : float;
  unique_init : int;  (* chosen initial bucket count, for stats *)
}

let rec pow2_ge n acc = if acc >= n then acc else pow2_ge n (acc * 2)

(* Inline hash of an int triple; multiplications wrap mod 2^63 and the
   caller masks to a power of two, so only mixing quality matters. *)
let mix a b c =
  let h =
    (a * 0x2545F4914F6CDD1)
    lxor (b * 0x9E3779B97F4A7C1)
    lxor (c * 0x85EBCA77C2B2AE6)
  in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27D4EB2F165667C in
  h lxor (h lsr 32)

(* Table sizes scale with the variable count unless the caller pins
   them: a 10-var manager used to pay for (and zero) the same 256 KiB
   op cache as a 100-var one, which is exactly why the packed manager
   lost to a plain Hashtbl on small circuits.  The cache-probe skip
   applies only to auto-sized managers — explicit sizes mean the
   caller knows the workload. *)
let create ?unique_size ?cache_size ?cache_threshold ?(guard = Guard.none)
    ~nvars () =
  let auto = cache_size = None in
  let usize =
    let wanted =
      match unique_size with
      | Some s -> max 16 s
      | None -> max 64 (min 1024 (8 * nvars))
    in
    pow2_ge wanted 16
  in
  let csize =
    let wanted =
      match cache_size with
      | Some s -> max 256 s
      | None -> max 256 (min 8192 (nvars * nvars))
    in
    pow2_ge wanted 256
  in
  let threshold =
    match cache_threshold with
    | Some t -> t
    | None -> if auto then 64 else 0
  in
  let cap = max 64 (min 1024 (4 * nvars)) in
  {
    var_of = Array.make cap terminal_var;
    low_of = Array.make cap (-1);
    high_of = Array.make cap (-1);
    n_nodes = 2;
    table = Array.make usize 0;
    umask = usize - 1;
    ulimit = usize * 3 / 4;
    u_entries = 0;
    u_used = 0;
    cache = Array.make (csize * 4) (-1);
    cmask = csize - 1;
    cache_threshold = threshold;
    hits = Array.make n_ops 0;
    misses = Array.make n_ops 0;
    n_vars = nvars;
    guard;
    var_at = Array.init (max 1 nvars) Fun.id;
    level_of = Array.init (max 1 nvars) Fun.id;
    reorder = Reorder_none;
    reorder_trigger = 4096;
    reorder_bound = max_int;
    in_reorder = false;
    reorders = 0;
    swaps = 0;
    reorder_time = 0.0;
    unique_init = usize;
  }

let set_guard m g = m.guard <- g
let guard m = m.guard
let nvars m = m.n_vars

let add_var m =
  let v = m.n_vars in
  m.n_vars <- v + 1;
  if v >= Array.length m.var_at then begin
    let extend a =
      let a' = Array.make (2 * Array.length a) 0 in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    m.var_at <- extend m.var_at;
    m.level_of <- extend m.level_of
  end;
  (* a fresh variable enters at the bottom of the order *)
  m.var_at.(v) <- v;
  m.level_of.(v) <- v;
  v

let zero (_ : man) = 0
let one (_ : man) = 1
let is_zero t = t = 0
let is_one t = t = 1
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = t
let var_id m id = m.var_of.(id)
let level_of_var m v = m.level_of.(v)
let var_at_level m l = m.var_at.(l)
let order m = Array.sub m.var_at 0 m.n_vars

(* level of a node: its variable's position in the current order *)
let lvl m t = if t < 2 then max_int else m.level_of.(m.var_of.(t))

let grow m =
  let cap = Array.length m.var_of in
  if m.n_nodes >= cap then begin
    let cap' = cap * 2 in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    m.var_of <- extend m.var_of terminal_var;
    m.low_of <- extend m.low_of (-1);
    m.high_of <- extend m.high_of (-1)
  end

(* Rebuild from the old table (never from the store: nodes orphaned by
   reordering stay out).  Doubles only when live keys justify it —
   otherwise same size, purging tombstones. *)
let rehash m =
  let old = m.table in
  let osize = m.umask + 1 in
  let size = if m.u_entries * 8 >= osize * 3 then osize * 2 else osize in
  let table = Array.make size 0 in
  let mask = size - 1 in
  for s = 0 to osize - 1 do
    let e = old.(s) in
    if e > 0 then begin
      let id = e - 1 in
      let j = ref (mix m.var_of.(id) m.low_of.(id) m.high_of.(id) land mask) in
      while table.(!j) <> 0 do
        j := (!j + 1) land mask
      done;
      table.(!j) <- e
    end
  done;
  m.table <- table;
  m.umask <- mask;
  m.ulimit <- size * 3 / 4;
  m.u_used <- m.u_entries

let mk m v l h =
  if l = h then l
  else begin
    let rec probe i tomb =
      let e = m.table.(i) in
      if e = 0 then begin
        (* miss: allocate in place *)
        Guard.tick m.guard;
        grow m;
        let id = m.n_nodes in
        m.n_nodes <- id + 1;
        m.var_of.(id) <- v;
        m.low_of.(id) <- l;
        m.high_of.(id) <- h;
        let slot = if tomb >= 0 then tomb else i in
        m.table.(slot) <- id + 1;
        m.u_entries <- m.u_entries + 1;
        if slot = i then begin
          m.u_used <- m.u_used + 1;
          if m.u_used >= m.ulimit then rehash m
        end;
        id
      end
      else if e = -1 then
        probe ((i + 1) land m.umask) (if tomb >= 0 then tomb else i)
      else
        let n = e - 1 in
        if m.var_of.(n) = v && m.low_of.(n) = l && m.high_of.(n) = h then n
        else probe ((i + 1) land m.umask) tomb
    in
    probe (mix v l h land m.umask) (-1)
  end

(* Insert an existing (rewritten) node under its current key. *)
let insert_key m id =
  let rec probe i tomb =
    let e = m.table.(i) in
    if e = 0 then begin
      let slot = if tomb >= 0 then tomb else i in
      m.table.(slot) <- id + 1;
      m.u_entries <- m.u_entries + 1;
      if slot = i then begin
        m.u_used <- m.u_used + 1;
        if m.u_used >= m.ulimit then rehash m
      end
    end
    else if e = -1 then
      probe ((i + 1) land m.umask) (if tomb >= 0 then tomb else i)
    else probe ((i + 1) land m.umask) tomb
  in
  probe (mix m.var_of.(id) m.low_of.(id) m.high_of.(id) land m.umask) (-1)

(* Tombstone the bucket holding [id] (keyed by its *current* triple). *)
let delete_key m id =
  let rec probe i =
    let e = m.table.(i) in
    if e = id + 1 then begin
      m.table.(i) <- -1;
      m.u_entries <- m.u_entries - 1
    end
    else if e <> 0 then probe ((i + 1) land m.umask)
  in
  probe (mix m.var_of.(id) m.low_of.(id) m.high_of.(id) land m.umask)

let var m v =
  if v < 0 || v >= m.n_vars then invalid_arg "Bdd.var: out of range";
  mk m v 0 1

let nvar m v =
  if v < 0 || v >= m.n_vars then invalid_arg "Bdd.nvar: out of range";
  mk m v 1 0

let top_var m t =
  if t < 2 then invalid_arg "Bdd.top_var: terminal";
  m.var_of.(t)

let low m t =
  if t < 2 then invalid_arg "Bdd.low: terminal";
  m.low_of.(t)

let high m t =
  if t < 2 then invalid_arg "Bdd.high: terminal";
  m.high_of.(t)

(* NOT, binary APPLY (and/or/xor) and ITE share the op cache; each is
   written so the cached path touches only int arrays.  The [_rec]
   variants are the internal recursions: they never trigger a reorder,
   so traversals that destructure nodes across calls (quantify,
   compose, permute, ...) stay coherent.  Public wrappers below probe
   the reorder trigger once at entry. *)

let rec not_rec m t =
  if t < 2 then t lxor 1
  else if m.n_nodes < m.cache_threshold then begin
    m.misses.(op_not) <- m.misses.(op_not) + 1;
    Guard.tick m.guard;
    mk m m.var_of.(t) (not_rec m m.low_of.(t)) (not_rec m m.high_of.(t))
  end
  else begin
    let idx = (mix op_not t 0 land m.cmask) * 4 in
    let c = m.cache in
    let k1 = (t lsl 3) lor op_not in
    if c.(idx) = k1 then begin
      m.hits.(op_not) <- m.hits.(op_not) + 1;
      c.(idx + 3)
    end
    else begin
      m.misses.(op_not) <- m.misses.(op_not) + 1;
      Guard.tick m.guard;
      let r =
        mk m m.var_of.(t) (not_rec m m.low_of.(t)) (not_rec m m.high_of.(t))
      in
      c.(idx) <- k1;
      c.(idx + 3) <- r;
      r
    end
  end

(* [a] and [b] are internal and a < b (callers normalise). *)
let rec apply_slow m op a b =
  if m.n_nodes < m.cache_threshold then begin
    m.misses.(op) <- m.misses.(op) + 1;
    Guard.tick m.guard;
    apply_node m op a b
  end
  else begin
    let idx = (mix op a b land m.cmask) * 4 in
    let c = m.cache in
    let k1 = (a lsl 3) lor op in
    if c.(idx) = k1 && c.(idx + 1) = b then begin
      m.hits.(op) <- m.hits.(op) + 1;
      c.(idx + 3)
    end
    else begin
      m.misses.(op) <- m.misses.(op) + 1;
      Guard.tick m.guard;
      let r = apply_node m op a b in
      (* recompute the slot: a rehash-free op, but [apply_node] may
         have evicted this entry — rewriting is harmless either way *)
      c.(idx) <- k1;
      c.(idx + 1) <- b;
      c.(idx + 3) <- r;
      r
    end
  end

and apply_node m op a b =
  let la = m.level_of.(m.var_of.(a)) and lb = m.level_of.(m.var_of.(b)) in
  let v = if la <= lb then m.var_of.(a) else m.var_of.(b) in
  let a0 = if la <= lb then m.low_of.(a) else a in
  let a1 = if la <= lb then m.high_of.(a) else a in
  let b0 = if lb <= la then m.low_of.(b) else b in
  let b1 = if lb <= la then m.high_of.(b) else b in
  let r0 = apply_rec m op a0 b0 in
  let r1 = apply_rec m op a1 b1 in
  mk m v r0 r1

and apply_rec m op a b =
  if op = op_and then
    if a = 0 || b = 0 then 0
    else if a = 1 then b
    else if b = 1 then a
    else if a = b then a
    else if a < b then apply_slow m op_and a b
    else apply_slow m op_and b a
  else if op = op_or then
    if a = 1 || b = 1 then 1
    else if a = 0 then b
    else if b = 0 then a
    else if a = b then a
    else if a < b then apply_slow m op_or a b
    else apply_slow m op_or b a
  else if a = b then 0
  else if a = 0 then b
  else if b = 0 then a
  else if a = 1 then not_rec m b
  else if b = 1 then not_rec m a
  else if a < b then apply_slow m op_xor a b
  else apply_slow m op_xor b a

let rec ite_rec m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else if g = 0 && h = 1 then not_rec m f
  else if m.n_nodes < m.cache_threshold then begin
    m.misses.(op_ite) <- m.misses.(op_ite) + 1;
    Guard.tick m.guard;
    ite_node m f g h
  end
  else begin
    let idx = (mix f g h land m.cmask) * 4 in
    let c = m.cache in
    let k1 = (f lsl 3) lor op_ite in
    if c.(idx) = k1 && c.(idx + 1) = g && c.(idx + 2) = h then begin
      m.hits.(op_ite) <- m.hits.(op_ite) + 1;
      c.(idx + 3)
    end
    else begin
      m.misses.(op_ite) <- m.misses.(op_ite) + 1;
      Guard.tick m.guard;
      let r = ite_node m f g h in
      c.(idx) <- k1;
      c.(idx + 1) <- g;
      c.(idx + 2) <- h;
      c.(idx + 3) <- r;
      r
    end
  end

and ite_node m f g h =
  (* f is internal here; g and h may be terminals *)
  let lf = m.level_of.(m.var_of.(f)) in
  let lg = lvl m g and lh = lvl m h in
  let l = if lf < lg then if lf < lh then lf else lh
          else if lg < lh then lg else lh in
  let v = m.var_at.(l) in
  let f0 = if lf = l then m.low_of.(f) else f in
  let f1 = if lf = l then m.high_of.(f) else f in
  let g0 = if lg = l then m.low_of.(g) else g in
  let g1 = if lg = l then m.high_of.(g) else g in
  let h0 = if lh = l then m.low_of.(h) else h in
  let h1 = if lh = l then m.high_of.(h) else h in
  let r0 = ite_rec m f0 g0 h0 in
  let r1 = ite_rec m f1 g1 h1 in
  mk m v r0 r1

(* --- dynamic reordering --------------------------------------------------- *)

(* Swap the variables at adjacent levels [l] (upper, var u) and [l+1]
   (lower, var v), in place.  Only u-nodes with a v-child change: node
   (u, f0, f1) becomes (v, mk(u, f0|v=0, f1|v=0), mk(u, f0|v=1, f1|v=1))
   — same id, same denoted function.  Nobody else moves: u-nodes
   without a v-child just find themselves one level lower, v-nodes'
   parents (all at levels < l) and children (all at levels > l+1) are
   untouched.  Key collisions cannot happen: a rewritten key always has
   a u-labeled child (both [mk]s collapsing would mean f0 = f1), which
   no pre-existing v-node key can mention, and two rewritten nodes
   denote distinct functions.

   [u_ids] is a conservative superset of the ids labeled [u] (stale
   entries are filtered by a [var_of] check).  Returns
   (kept_u_ids, fresh_u_ids, moved_to_v_ids) for bucket maintenance.
   The whole swap runs with whatever guard is installed; sifting
   installs [Guard.none] and probes the real guard between swaps, so a
   swap is atomic and a trip always lands on a consistent order. *)
let swap_core m u_ids l =
  let u = m.var_at.(l) and v = m.var_at.(l + 1) in
  let n0 = m.n_nodes in
  let kept = ref [] and moved = ref [] in
  List.iter
    (fun id ->
      if m.var_of.(id) = u then begin
        let f0 = m.low_of.(id) and f1 = m.high_of.(id) in
        let v0 = f0 >= 2 && m.var_of.(f0) = v in
        let v1 = f1 >= 2 && m.var_of.(f1) = v in
        if v0 || v1 then begin
          delete_key m id;
          let f00 = if v0 then m.low_of.(f0) else f0 in
          let f01 = if v0 then m.high_of.(f0) else f0 in
          let f10 = if v1 then m.low_of.(f1) else f1 in
          let f11 = if v1 then m.high_of.(f1) else f1 in
          let c0 = mk m u f00 f10 in
          let c1 = mk m u f01 f11 in
          m.var_of.(id) <- v;
          m.low_of.(id) <- c0;
          m.high_of.(id) <- c1;
          insert_key m id;
          moved := id :: !moved
        end
        else kept := id :: !kept
      end)
    u_ids;
  let fresh = List.init (m.n_nodes - n0) (fun i -> n0 + i) in
  m.var_at.(l) <- v;
  m.var_at.(l + 1) <- u;
  m.level_of.(u) <- l + 1;
  m.level_of.(v) <- l;
  m.swaps <- m.swaps + 1;
  (!kept, fresh, !moved)

let all_ids_of_var m u =
  let acc = ref [] in
  for id = m.n_nodes - 1 downto 2 do
    if m.var_of.(id) = u then acc := id :: !acc
  done;
  !acc

let swap_adjacent m l =
  if l < 0 || l >= m.n_vars - 1 then invalid_arg "Bdd.swap_adjacent: level";
  let saved = m.guard in
  m.guard <- Guard.none;
  Fun.protect
    ~finally:(fun () -> m.guard <- saved)
    (fun () ->
      let u = m.var_at.(l) in
      ignore (swap_core m (all_ids_of_var m u) l))

(* One Rudell pass: visit variables in decreasing live-node-count
   order; walk each to the bottom then the top by adjacent swaps,
   tracking the live-key count, and park it at the smallest position
   seen.  A walk direction aborts once the table grows past 1.2× the
   best size seen for this variable (the standard max-growth cutoff).
   No GC means orphaned nodes linger in the store (peak ≠ live), but
   the table's live-key count is exact, so the minimisation target is
   honest.  The caller's guard is probed between swaps, and the nodes
   a swap allocates are charged to its transition budget (the same
   allocation-proportional rule the symbolic build uses), so a
   states/transitions-only guard bounds reordering work too — without
   the charge, sifting a large store under a small budget could stall
   indefinitely, since [Guard.tick] alone only watches the deadline.
   A trip re-raises with the order consistent, which is what lets a
   sift inside a guarded symbolic build degrade to a
   truncated-but-sound graph instead of corrupting the manager. *)
exception Abort_direction

let sift m =
  if m.in_reorder || m.n_vars < 2 then ()
  else begin
    m.in_reorder <- true;
    let saved = m.guard in
    m.guard <- Guard.none;
    let t0 = Sys.time () in
    Fun.protect
      ~finally:(fun () ->
        m.guard <- saved;
        m.in_reorder <- false;
        m.reorder_time <- m.reorder_time +. (Sys.time () -. t0))
      (fun () ->
        (* conservative var -> ids buckets, maintained across swaps *)
        let buckets = Array.make m.n_vars [] in
        for id = m.n_nodes - 1 downto 2 do
          let v = m.var_of.(id) in
          buckets.(v) <- id :: buckets.(v)
        done;
        let live_count v =
          List.fold_left
            (fun acc id -> if m.var_of.(id) = v then acc + 1 else acc)
            0 buckets.(v)
        in
        let do_swap l =
          let u = m.var_at.(l) and v = m.var_at.(l + 1) in
          let kept, fresh, moved = swap_core m buckets.(u) l in
          buckets.(u) <- List.rev_append fresh kept;
          buckets.(v) <- List.rev_append moved buckets.(v)
        in
        let charged = ref m.n_nodes in
        let probe () =
          if m.n_nodes > !charged then begin
            let d = m.n_nodes - !charged in
            charged := m.n_nodes;
            Guard.spend_transitions saved d
          end;
          Guard.tick saved
        in
        let vars =
          List.sort
            (fun a b ->
              let ca = live_count a and cb = live_count b in
              if ca <> cb then Stdlib.compare cb ca else Stdlib.compare a b)
            (List.init m.n_vars Fun.id)
        in
        List.iter
          (fun v ->
            probe ();
            let best = ref m.u_entries in
            let best_l = ref m.level_of.(v) in
            let walk step stop =
              try
                while m.level_of.(v) <> stop do
                  probe ();
                  let l = m.level_of.(v) in
                  do_swap (if step > 0 then l else l - 1);
                  let s = m.u_entries in
                  if s < !best || (s = !best && m.level_of.(v) < !best_l)
                  then begin
                    best := s;
                    best_l := m.level_of.(v)
                  end
                  else if s * 5 > !best * 6 then raise Abort_direction
                done
              with Abort_direction -> ()
            in
            walk 1 (m.n_vars - 1);
            walk (-1) 0;
            (* park at the best level seen *)
            while m.level_of.(v) < !best_l do
              do_swap m.level_of.(v)
            done;
            while m.level_of.(v) > !best_l do
              do_swap (m.level_of.(v) - 1)
            done)
          vars;
        m.reorders <- m.reorders + 1;
        m.reorder_trigger <- max m.reorder_trigger (2 * m.n_nodes))
  end

let set_reorder m mode = m.reorder <- mode
let reorder_mode m = m.reorder
let set_reorder_bound m n = m.reorder_bound <- n
let disable_reorder m = m.reorder <- Reorder_none

let maybe_reorder m =
  if
    m.reorder == Reorder_sift && (not m.in_reorder)
    && m.reorders < m.reorder_bound
    && m.n_nodes >= m.reorder_trigger
  then sift m

(* public operation entry points *)

let not_ m t =
  maybe_reorder m;
  not_rec m t

let apply m op a b =
  maybe_reorder m;
  apply_rec m op a b

let and_ m a b = apply m op_and a b
let or_ m a b = apply m op_or a b
let xor_ m a b = apply m op_xor a b
let imp m a b = or_ m (not_rec m a) b
let iff m a b = not_rec m (xor_ m a b)
let diff m a b = and_ m a (not_rec m b)

let ite m f g h =
  maybe_reorder m;
  ite_rec m f g h

let and_list m ts = List.fold_left (and_ m) 1 ts
let or_list m ts = List.fold_left (or_ m) 0 ts

(* [f(¬v)]: exchange the cofactors by [v] everywhere.  An involution,
   linear in the operand — the image of a one-variable toggle, so the
   partitioned transition relation never needs a frame conjunct or a
   relational product for the firing gate itself. *)
let rec flip_rec m v t =
  if t < 2 then t
  else
    let tv = m.var_of.(t) in
    if m.level_of.(tv) > m.level_of.(v) then t
    else if m.n_nodes < m.cache_threshold then begin
      m.misses.(op_flip) <- m.misses.(op_flip) + 1;
      Guard.tick m.guard;
      if tv = v then mk m v m.high_of.(t) m.low_of.(t)
      else mk m tv (flip_rec m v m.low_of.(t)) (flip_rec m v m.high_of.(t))
    end
    else begin
      let idx = (mix op_flip t v land m.cmask) * 4 in
      let c = m.cache in
      let k1 = (t lsl 3) lor op_flip in
      if c.(idx) = k1 && c.(idx + 1) = v then begin
        m.hits.(op_flip) <- m.hits.(op_flip) + 1;
        c.(idx + 3)
      end
      else begin
        m.misses.(op_flip) <- m.misses.(op_flip) + 1;
        Guard.tick m.guard;
        let r =
          if tv = v then mk m v m.high_of.(t) m.low_of.(t)
          else mk m tv (flip_rec m v m.low_of.(t)) (flip_rec m v m.high_of.(t))
        in
        c.(idx) <- k1;
        c.(idx + 1) <- v;
        c.(idx + 3) <- r;
        r
      end
    end

let flip_var m ~var t =
  if var < 0 || var >= m.n_vars then invalid_arg "Bdd.flip_var: bad variable";
  maybe_reorder m;
  flip_rec m var t

let cofactor m t ~var ~value =
  maybe_reorder m;
  let vl = m.level_of.(var) in
  let cache = Hashtbl.create 64 in
  let rec go t =
    if t < 2 then t
    else if m.level_of.(m.var_of.(t)) > vl then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let r =
          if m.var_of.(t) = var then
            if value then m.high_of.(t) else m.low_of.(t)
          else mk m m.var_of.(t) (go m.low_of.(t)) (go m.high_of.(t))
        in
        Hashtbl.replace cache t r;
        r
  in
  go t

let compose m f ~var g =
  maybe_reorder m;
  let vl = m.level_of.(var) in
  let cache = Hashtbl.create 64 in
  let rec go f =
    if f < 2 then f
    else if m.level_of.(m.var_of.(f)) > vl then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let r =
          if m.var_of.(f) = var then ite_rec m g m.high_of.(f) m.low_of.(f)
          else
            (* Rebuild through ITE: children may now start above this
               variable after substitution deeper down. *)
            ite_rec m
              (mk m m.var_of.(f) 0 1)
              (go m.high_of.(f))
              (go m.low_of.(f))
        in
        Hashtbl.replace cache f r;
        r
  in
  go f

let quantify m ~vars ~disjunct t =
  if vars = [] then t
  else begin
    maybe_reorder m;
    let in_set = Array.make m.n_vars false in
    let max_lvl = ref 0 in
    List.iter
      (fun v ->
        if v < 0 || v >= m.n_vars then invalid_arg "Bdd.quantify: bad var";
        in_set.(v) <- true;
        if m.level_of.(v) > !max_lvl then max_lvl := m.level_of.(v))
      vars;
    let max_lvl = !max_lvl in
    let cache = Hashtbl.create 256 in
    let rec go t =
      if t < 2 then t
      else if m.level_of.(m.var_of.(t)) > max_lvl then t
      else
        match Hashtbl.find_opt cache t with
        | Some r -> r
        | None ->
          let v = m.var_of.(t) in
          let l = go m.low_of.(t) and h = go m.high_of.(t) in
          let r =
            if in_set.(v) then
              if disjunct then apply_rec m op_or l h
              else apply_rec m op_and l h
            else mk m v l h
          in
          Hashtbl.replace cache t r;
          r
    in
    go t
  end

let exists m ~vars t = quantify m ~vars ~disjunct:true t
let forall m ~vars t = quantify m ~vars ~disjunct:false t

let and_exists m ~vars a b =
  if vars = [] then and_ m a b
  else begin
    maybe_reorder m;
    let in_set = Array.make m.n_vars false in
    let max_lvl = ref 0 in
    List.iter
      (fun v ->
        if v < 0 || v >= m.n_vars then invalid_arg "Bdd.and_exists: bad var";
        in_set.(v) <- true;
        if m.level_of.(v) > !max_lvl then max_lvl := m.level_of.(v))
      vars;
    let max_lvl = !max_lvl in
    (* per-call memo keyed by the packed pair — node ids stay far below
       2^31, so the pack is injective *)
    let cache = Hashtbl.create 1024 in
    let rec go a b =
      if a = 0 || b = 0 then 0
      else if a = 1 && b = 1 then 1
      else
        let a, b = if a <= b then (a, b) else (b, a) in
        let key = (a lsl 31) lor b in
        match Hashtbl.find_opt cache key with
        | Some r -> r
        | None ->
          let la = lvl m a and lb = lvl m b in
          let l = min la lb in
          let r =
            if l > max_lvl then
              (* No quantified variable below: plain conjunction. *)
              apply_rec m op_and a b
            else begin
              let v = m.var_at.(l) in
              let a0, a1 =
                if la = l then (m.low_of.(a), m.high_of.(a)) else (a, a)
              and b0, b1 =
                if lb = l then (m.low_of.(b), m.high_of.(b)) else (b, b)
              in
              if in_set.(v) then begin
                let r0 = go a0 b0 in
                if r0 = 1 then 1 else apply_rec m op_or r0 (go a1 b1)
              end
              else mk m v (go a0 b0) (go a1 b1)
            end
          in
          Hashtbl.replace cache key r;
          r
    in
    go a b
  end

let permute m p t =
  maybe_reorder m;
  let cache = Hashtbl.create 256 in
  let rec go t =
    if t < 2 then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let v' = p m.var_of.(t) in
        if v' < 0 || v' >= m.n_vars then invalid_arg "Bdd.permute: bad image";
        let r = ite_rec m (mk m v' 0 1) (go m.high_of.(t)) (go m.low_of.(t)) in
        Hashtbl.replace cache t r;
        r
  in
  go t

let support m t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go t =
    if t >= 2 && not (Hashtbl.mem seen t) then begin
      Hashtbl.replace seen t ();
      Hashtbl.replace vars m.var_of.(t) ();
      go m.low_of.(t);
      go m.high_of.(t)
    end
  in
  go t;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Stdlib.compare

let eval m t assign =
  let rec go t =
    if t = 0 then false
    else if t = 1 then true
    else if assign m.var_of.(t) then go m.high_of.(t)
    else go m.low_of.(t)
  in
  go t

(* --- exact satisfying-assignment counting -------------------------------- *)

(* Minimal unsigned bignum (little-endian base-2^30 limb arrays, [||]
   is zero): sat counting only ever adds and multiplies by powers of
   two, so this stays tiny and dependency-free while being exact far
   beyond the 2^53 float-mantissa cliff. *)
module Big = struct
  let limb_bits = 30
  let limb_mask = (1 lsl limb_bits) - 1

  let zero = [||]

  let trim r =
    let len = ref (Array.length r) in
    while !len > 0 && r.(!len - 1) = 0 do
      decr len
    done;
    if !len = Array.length r then r else Array.sub r 0 !len

  let of_pow2 k =
    let a = Array.make ((k / limb_bits) + 1) 0 in
    a.(k / limb_bits) <- 1 lsl (k mod limb_bits);
    a

  let add a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let l = max la lb in
      let r = Array.make (l + 1) 0 in
      let carry = ref 0 in
      for i = 0 to l - 1 do
        let s =
          (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
        in
        r.(i) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      r.(l) <- !carry;
      trim r
    end

  let shl a k =
    if Array.length a = 0 then a
    else if k = 0 then a
    else begin
      let q = k / limb_bits and s = k mod limb_bits in
      let la = Array.length a in
      let r = Array.make (la + q + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl s) lor !carry in
        r.(i + q) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      r.(la + q) <- !carry;
      trim r
    end

  let to_float a =
    let r = ref 0.0 in
    for i = Array.length a - 1 downto 0 do
      r := (!r *. 1073741824.0) +. float_of_int a.(i)
    done;
    !r

  let bits a =
    let l = Array.length a in
    if l = 0 then 0
    else begin
      let top = a.(l - 1) in
      let b = ref 0 in
      while top lsr !b > 0 do
        incr b
      done;
      ((l - 1) * limb_bits) + !b
    end

  let to_int_opt a =
    if bits a > 62 then None
    else begin
      let v = ref 0 in
      for i = Array.length a - 1 downto 0 do
        v := (!v lsl limb_bits) lor a.(i)
      done;
      Some !v
    end
end

(* Exact count over variables [0..nvars-1]: every internal variable of
   [t] must be < nvars (same contract as before).  Positions come from
   the current order, so the count is order-independent. *)
let sat_count_big m ~nvars t =
  let level u = if u < 2 then nvars else m.level_of.(m.var_of.(u)) in
  let cache = Hashtbl.create 256 in
  (* f u = exact count over order positions [level u .. nvars-1] *)
  let rec f u =
    if u = 0 then Big.zero
    else if u = 1 then Big.of_pow2 0
    else
      match Hashtbl.find_opt cache u with
      | Some r -> r
      | None ->
        let lu = level u in
        let l = m.low_of.(u) and h = m.high_of.(u) in
        let r =
          Big.add
            (Big.shl (f l) (level l - lu - 1))
            (Big.shl (f h) (level h - lu - 1))
        in
        Hashtbl.replace cache u r;
        r
  in
  Big.shl (f t) (level t)

let sat_count m ~nvars t = Big.to_float (sat_count_big m ~nvars t)
let sat_count_int m ~nvars t = Big.to_int_opt (sat_count_big m ~nvars t)

let any_sat m t =
  if t = 0 then raise Not_found;
  let rec go t acc =
    if t = 1 then List.rev acc
    else
      let v = m.var_of.(t) in
      if m.low_of.(t) <> 0 then go m.low_of.(t) ((v, false) :: acc)
      else go m.high_of.(t) ((v, true) :: acc)
  in
  go t []

let fold_sat m t ~init ~f =
  let rec go t acc path =
    if t = 0 then acc
    else if t = 1 then f acc (List.rev path)
    else
      let v = m.var_of.(t) in
      let acc = go m.low_of.(t) acc ((v, false) :: path) in
      go m.high_of.(t) acc ((v, true) :: path)
  in
  go t init []

let all_sat m t =
  List.rev (fold_sat m t ~init:[] ~f:(fun acc cube -> cube :: acc))

let size m t =
  let seen = Hashtbl.create 64 in
  let rec go t acc =
    if t < 2 || Hashtbl.mem seen t then acc
    else begin
      Hashtbl.replace seen t ();
      go m.low_of.(t) (go m.high_of.(t) (acc + 1))
    end
  in
  go t 0

let node_count m = m.n_nodes

let clear_caches m = Array.fill m.cache 0 (Array.length m.cache) (-1)

type stats = {
  live_nodes : int;
  peak_nodes : int;
  n_vars : int;
  unique_buckets : int;
  unique_buckets_init : int;
  unique_load : float;
  cache_slots : int;
  cache_threshold : int;
  reorders : int;
  swaps : int;
  reorder_seconds : float;
  and_hits : int;
  and_misses : int;
  or_hits : int;
  or_misses : int;
  xor_hits : int;
  xor_misses : int;
  not_hits : int;
  not_misses : int;
  ite_hits : int;
  ite_misses : int;
  flip_hits : int;
  flip_misses : int;
}

let stats (m : man) =
  {
    (* no garbage collection: the store only grows, so the peak is the
       store size.  Reordering orphans nodes without reclaiming them,
       which is the only way live can fall below peak. *)
    live_nodes = m.u_entries + 2;
    peak_nodes = m.n_nodes;
    n_vars = m.n_vars;
    unique_buckets = m.umask + 1;
    unique_buckets_init = m.unique_init;
    unique_load = float_of_int m.u_entries /. float_of_int (m.umask + 1);
    cache_slots = m.cmask + 1;
    cache_threshold = m.cache_threshold;
    reorders = m.reorders;
    swaps = m.swaps;
    reorder_seconds = m.reorder_time;
    and_hits = m.hits.(op_and);
    and_misses = m.misses.(op_and);
    or_hits = m.hits.(op_or);
    or_misses = m.misses.(op_or);
    xor_hits = m.hits.(op_xor);
    xor_misses = m.misses.(op_xor);
    not_hits = m.hits.(op_not);
    not_misses = m.misses.(op_not);
    ite_hits = m.hits.(op_ite);
    ite_misses = m.misses.(op_ite);
    flip_hits = m.hits.(op_flip);
    flip_misses = m.misses.(op_flip);
  }

let apply_ops s =
  s.and_hits + s.and_misses + s.or_hits + s.or_misses + s.xor_hits
  + s.xor_misses + s.not_hits + s.not_misses + s.ite_hits + s.ite_misses
  + s.flip_hits + s.flip_misses

let cache_hit_rate s =
  let hits =
    s.and_hits + s.or_hits + s.xor_hits + s.not_hits + s.ite_hits
    + s.flip_hits
  in
  let total = apply_ops s in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>bdd: %d nodes (peak %d), %d vars@,\
     unique table: %d buckets (init %d), load %.3f@,\
     op cache: %d slots (threshold %d), hit rate %.3f@,\
     reorder: %d passes, %d swaps, %.3f s@,\
     and %d/%d  or %d/%d  xor %d/%d  not %d/%d  ite %d/%d  flip %d/%d \
     (hits/misses)@]"
    s.live_nodes s.peak_nodes s.n_vars s.unique_buckets s.unique_buckets_init
    s.unique_load s.cache_slots s.cache_threshold (cache_hit_rate s)
    s.reorders s.swaps s.reorder_seconds s.and_hits s.and_misses s.or_hits
    s.or_misses s.xor_hits s.xor_misses s.not_hits s.not_misses s.ite_hits
    s.ite_misses s.flip_hits s.flip_misses

let pp m fmt t =
  let rec go fmt t =
    if t = 0 then Format.pp_print_string fmt "F"
    else if t = 1 then Format.pp_print_string fmt "T"
    else
      Format.fprintf fmt "@[<hv 1>(x%d?%a:%a)@]" (var_id m t) go
        m.high_of.(t) go m.low_of.(t)
  in
  go fmt t

let transfer ~(src : man) ~(dst : man) map t =
  maybe_reorder dst;
  let cache = Hashtbl.create 256 in
  let rec go t =
    if t < 2 then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let v = map src.var_of.(t) in
        if v < 0 || v >= dst.n_vars then
          invalid_arg "Bdd.transfer: mapped variable out of range";
        let r =
          ite_rec dst (mk dst v 0 1) (go src.high_of.(t)) (go src.low_of.(t))
        in
        Hashtbl.replace cache t r;
        r
  in
  go t
