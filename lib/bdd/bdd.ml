(* Hash-consed ROBDDs, struct-of-arrays node store.  Node ids:
   0 = terminal false, 1 = terminal true, >= 2 internal.  The variable
   of a terminal is [terminal_var], larger than any real variable.

   The hot paths (mk / apply / ite / not) are allocation-free:

   - The unique table is open addressing with linear probing over one
     int array.  A bucket holds [node id + 1] (0 = empty); the key
     (var, low, high) is never materialised — it is hashed inline and
     compared against the struct-of-arrays store.  The table grows at
     3/4 occupancy; nodes are never deleted, so probing needs no
     tombstones.
   - All operation results share one fixed-size direct-mapped cache
     (CUDD-style): a flat int array of 4-int entries
     [key1; key2; key3; result], where key1 packs the first operand
     and the op tag ((a lsl 3) lor op).  Collisions simply overwrite
     (lossy); correctness never depends on the cache, only speed.
   - [Guard.tick] is probed on every cache miss and node allocation,
     so a deadline (or an already-tripped guard) aborts a runaway
     symbolic computation from *inside* the recursion instead of
     waiting for the caller's next loop boundary. *)

open Satg_guard

type t = int

let terminal_var = max_int

(* op tags, also the index into the per-op hit/miss counters *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_not = 3
let op_ite = 4
let n_ops = 5

type man = {
  mutable var_of : int array;
  mutable low_of : int array;
  mutable high_of : int array;
  mutable n_nodes : int;
  (* unique table: open addressing, bucket = node id + 1, 0 = empty *)
  mutable table : int array;
  mutable umask : int;  (* Array.length table - 1 (power of two) *)
  mutable ulimit : int;  (* rehash threshold: 3/4 of the buckets *)
  (* shared direct-mapped op cache: 4 ints per entry *)
  cache : int array;
  cmask : int;  (* entry count - 1 (power of two) *)
  hits : int array;  (* per op tag *)
  misses : int array;
  mutable n_vars : int;
  mutable guard : Guard.t;
}

let rec pow2_ge n acc = if acc >= n then acc else pow2_ge n (acc * 2)

(* Inline hash of an int triple; multiplications wrap mod 2^63 and the
   caller masks to a power of two, so only mixing quality matters. *)
let mix a b c =
  let h =
    (a * 0x2545F4914F6CDD1)
    lxor (b * 0x9E3779B97F4A7C1)
    lxor (c * 0x85EBCA77C2B2AE6)
  in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27D4EB2F165667C in
  h lxor (h lsr 32)

let create ?(unique_size = 1024) ?(cache_size = 8192) ?(guard = Guard.none)
    ~nvars () =
  let cap = 1024 in
  let usize = pow2_ge (max 16 unique_size) 16 in
  let csize = pow2_ge (max 256 cache_size) 256 in
  {
    var_of = Array.make cap terminal_var;
    low_of = Array.make cap (-1);
    high_of = Array.make cap (-1);
    n_nodes = 2;
    table = Array.make usize 0;
    umask = usize - 1;
    ulimit = usize * 3 / 4;
    cache = Array.make (csize * 4) (-1);
    cmask = csize - 1;
    hits = Array.make n_ops 0;
    misses = Array.make n_ops 0;
    n_vars = nvars;
    guard;
  }

let set_guard m g = m.guard <- g
let guard m = m.guard
let nvars m = m.n_vars

let add_var m =
  let v = m.n_vars in
  m.n_vars <- v + 1;
  v

let zero (_ : man) = 0
let one (_ : man) = 1
let is_zero t = t = 0
let is_one t = t = 1
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = t
let var_id m id = m.var_of.(id)

let grow m =
  let cap = Array.length m.var_of in
  if m.n_nodes >= cap then begin
    let cap' = cap * 2 in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    m.var_of <- extend m.var_of terminal_var;
    m.low_of <- extend m.low_of (-1);
    m.high_of <- extend m.high_of (-1)
  end

let rehash m =
  let size = (m.umask + 1) * 2 in
  let table = Array.make size 0 in
  let mask = size - 1 in
  for id = 2 to m.n_nodes - 1 do
    let j = ref (mix m.var_of.(id) m.low_of.(id) m.high_of.(id) land mask) in
    while table.(!j) <> 0 do
      j := (!j + 1) land mask
    done;
    table.(!j) <- id + 1
  done;
  m.table <- table;
  m.umask <- mask;
  m.ulimit <- size * 3 / 4

let mk m v l h =
  if l = h then l
  else begin
    let rec probe i =
      let e = m.table.(i) in
      if e = 0 then begin
        (* miss: allocate in place *)
        Guard.tick m.guard;
        grow m;
        let id = m.n_nodes in
        m.n_nodes <- id + 1;
        m.var_of.(id) <- v;
        m.low_of.(id) <- l;
        m.high_of.(id) <- h;
        m.table.(i) <- id + 1;
        (* n_nodes - 2 entries occupy the table (terminals are not in it) *)
        if m.n_nodes - 2 >= m.ulimit then rehash m;
        id
      end
      else
        let n = e - 1 in
        if m.var_of.(n) = v && m.low_of.(n) = l && m.high_of.(n) = h then n
        else probe ((i + 1) land m.umask)
    in
    probe (mix v l h land m.umask)
  end

let var m v =
  if v < 0 || v >= m.n_vars then invalid_arg "Bdd.var: out of range";
  mk m v 0 1

let nvar m v =
  if v < 0 || v >= m.n_vars then invalid_arg "Bdd.nvar: out of range";
  mk m v 1 0

let top_var m t =
  if t < 2 then invalid_arg "Bdd.top_var: terminal";
  m.var_of.(t)

let low m t =
  if t < 2 then invalid_arg "Bdd.low: terminal";
  m.low_of.(t)

let high m t =
  if t < 2 then invalid_arg "Bdd.high: terminal";
  m.high_of.(t)

(* NOT, binary APPLY (and/or/xor) and ITE share the op cache; each is
   written so the cached path touches only int arrays. *)

let rec not_ m t =
  if t < 2 then t lxor 1
  else begin
    let idx = (mix op_not t 0 land m.cmask) * 4 in
    let c = m.cache in
    let k1 = (t lsl 3) lor op_not in
    if c.(idx) = k1 then begin
      m.hits.(op_not) <- m.hits.(op_not) + 1;
      c.(idx + 3)
    end
    else begin
      m.misses.(op_not) <- m.misses.(op_not) + 1;
      Guard.tick m.guard;
      let r = mk m m.var_of.(t) (not_ m m.low_of.(t)) (not_ m m.high_of.(t)) in
      c.(idx) <- k1;
      c.(idx + 3) <- r;
      r
    end
  end

(* [a] and [b] are internal and a < b (callers normalise). *)
let rec apply_slow m op a b =
  let idx = (mix op a b land m.cmask) * 4 in
  let c = m.cache in
  let k1 = (a lsl 3) lor op in
  if c.(idx) = k1 && c.(idx + 1) = b then begin
    m.hits.(op) <- m.hits.(op) + 1;
    c.(idx + 3)
  end
  else begin
    m.misses.(op) <- m.misses.(op) + 1;
    Guard.tick m.guard;
    let va = m.var_of.(a) and vb = m.var_of.(b) in
    let v = if va < vb then va else vb in
    let a0 = if va = v then m.low_of.(a) else a in
    let a1 = if va = v then m.high_of.(a) else a in
    let b0 = if vb = v then m.low_of.(b) else b in
    let b1 = if vb = v then m.high_of.(b) else b in
    let r0 = apply m op a0 b0 in
    let r1 = apply m op a1 b1 in
    let r = mk m v r0 r1 in
    c.(idx) <- k1;
    c.(idx + 1) <- b;
    c.(idx + 3) <- r;
    r
  end

and apply m op a b =
  if op = op_and then
    if a = 0 || b = 0 then 0
    else if a = 1 then b
    else if b = 1 then a
    else if a = b then a
    else if a < b then apply_slow m op_and a b
    else apply_slow m op_and b a
  else if op = op_or then
    if a = 1 || b = 1 then 1
    else if a = 0 then b
    else if b = 0 then a
    else if a = b then a
    else if a < b then apply_slow m op_or a b
    else apply_slow m op_or b a
  else if a = b then 0
  else if a = 0 then b
  else if b = 0 then a
  else if a = 1 then not_ m b
  else if b = 1 then not_ m a
  else if a < b then apply_slow m op_xor a b
  else apply_slow m op_xor b a

let and_ m a b = apply m op_and a b
let or_ m a b = apply m op_or a b
let xor_ m a b = apply m op_xor a b
let imp m a b = or_ m (not_ m a) b
let iff m a b = not_ m (xor_ m a b)
let diff m a b = and_ m a (not_ m b)

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else if g = 0 && h = 1 then not_ m f
  else begin
    let idx = (mix f g h land m.cmask) * 4 in
    let c = m.cache in
    let k1 = (f lsl 3) lor op_ite in
    if c.(idx) = k1 && c.(idx + 1) = g && c.(idx + 2) = h then begin
      m.hits.(op_ite) <- m.hits.(op_ite) + 1;
      c.(idx + 3)
    end
    else begin
      m.misses.(op_ite) <- m.misses.(op_ite) + 1;
      Guard.tick m.guard;
      (* f is internal here; g and h may be terminals *)
      let vf = m.var_of.(f) in
      let vg = if g < 2 then terminal_var else m.var_of.(g) in
      let vh = if h < 2 then terminal_var else m.var_of.(h) in
      let v = if vf < vg then if vf < vh then vf else vh
              else if vg < vh then vg else vh in
      let f0 = if vf = v then m.low_of.(f) else f in
      let f1 = if vf = v then m.high_of.(f) else f in
      let g0 = if vg = v then m.low_of.(g) else g in
      let g1 = if vg = v then m.high_of.(g) else g in
      let h0 = if vh = v then m.low_of.(h) else h in
      let h1 = if vh = v then m.high_of.(h) else h in
      let r0 = ite m f0 g0 h0 in
      let r1 = ite m f1 g1 h1 in
      let r = mk m v r0 r1 in
      c.(idx) <- k1;
      c.(idx + 1) <- g;
      c.(idx + 2) <- h;
      c.(idx + 3) <- r;
      r
    end
  end

let and_list m ts = List.fold_left (and_ m) 1 ts
let or_list m ts = List.fold_left (or_ m) 0 ts

let cofactor m t ~var ~value =
  let cache = Hashtbl.create 64 in
  let rec go t =
    if t < 2 then t
    else if m.var_of.(t) > var then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let r =
          if m.var_of.(t) = var then
            if value then m.high_of.(t) else m.low_of.(t)
          else mk m m.var_of.(t) (go m.low_of.(t)) (go m.high_of.(t))
        in
        Hashtbl.replace cache t r;
        r
  in
  go t

let compose m f ~var g =
  let cache = Hashtbl.create 64 in
  let rec go f =
    if f < 2 then f
    else if m.var_of.(f) > var then f
    else
      match Hashtbl.find_opt cache f with
      | Some r -> r
      | None ->
        let r =
          if m.var_of.(f) = var then ite m g m.high_of.(f) m.low_of.(f)
          else
            (* Rebuild through ITE: children may now start above this
               variable after substitution deeper down. *)
            ite m
              (mk m m.var_of.(f) 0 1)
              (go m.high_of.(f))
              (go m.low_of.(f))
        in
        Hashtbl.replace cache f r;
        r
  in
  go f

let quantify m ~vars ~disjunct t =
  if vars = [] then t
  else begin
    let max_v = List.fold_left max 0 vars in
    let in_set = Array.make (max_v + 1) false in
    List.iter
      (fun v ->
        if v < 0 || v >= m.n_vars then invalid_arg "Bdd.quantify: bad var";
        in_set.(v) <- true)
      vars;
    let cache = Hashtbl.create 256 in
    let rec go t =
      if t < 2 then t
      else if m.var_of.(t) > max_v then t
      else
        match Hashtbl.find_opt cache t with
        | Some r -> r
        | None ->
          let v = m.var_of.(t) in
          let l = go m.low_of.(t) and h = go m.high_of.(t) in
          let r =
            if in_set.(v) then
              if disjunct then or_ m l h else and_ m l h
            else mk m v l h
          in
          Hashtbl.replace cache t r;
          r
    in
    go t
  end

let exists m ~vars t = quantify m ~vars ~disjunct:true t
let forall m ~vars t = quantify m ~vars ~disjunct:false t

let and_exists m ~vars a b =
  if vars = [] then and_ m a b
  else begin
    let max_v = List.fold_left max 0 vars in
    let in_set = Array.make (max_v + 1) false in
    List.iter
      (fun v ->
        if v < 0 || v >= m.n_vars then invalid_arg "Bdd.and_exists: bad var";
        in_set.(v) <- true)
      vars;
    (* per-call memo keyed by the packed pair — node ids stay far below
       2^31, so the pack is injective *)
    let cache = Hashtbl.create 1024 in
    let rec go a b =
      if a = 0 || b = 0 then 0
      else if a = 1 && b = 1 then 1
      else
        let a, b = if a <= b then (a, b) else (b, a) in
        let key = (a lsl 31) lor b in
        match Hashtbl.find_opt cache key with
        | Some r -> r
        | None ->
          let var_or t = if t < 2 then terminal_var else m.var_of.(t) in
          let va = var_or a and vb = var_or b in
          let v = min va vb in
          let r =
            if v > max_v then
              (* No quantified variable below: plain conjunction. *)
              and_ m a b
            else begin
              let a0, a1 =
                if va = v then (m.low_of.(a), m.high_of.(a)) else (a, a)
              and b0, b1 =
                if vb = v then (m.low_of.(b), m.high_of.(b)) else (b, b)
              in
              if in_set.(v) then begin
                let r0 = go a0 b0 in
                if r0 = 1 then 1 else or_ m r0 (go a1 b1)
              end
              else mk m v (go a0 b0) (go a1 b1)
            end
          in
          Hashtbl.replace cache key r;
          r
    in
    go a b
  end

let permute m p t =
  let cache = Hashtbl.create 256 in
  let rec go t =
    if t < 2 then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let v' = p m.var_of.(t) in
        if v' < 0 || v' >= m.n_vars then invalid_arg "Bdd.permute: bad image";
        let r = ite m (mk m v' 0 1) (go m.high_of.(t)) (go m.low_of.(t)) in
        Hashtbl.replace cache t r;
        r
  in
  go t

let support m t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go t =
    if t >= 2 && not (Hashtbl.mem seen t) then begin
      Hashtbl.replace seen t ();
      Hashtbl.replace vars m.var_of.(t) ();
      go m.low_of.(t);
      go m.high_of.(t)
    end
  in
  go t;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Stdlib.compare

let eval m t assign =
  let rec go t =
    if t = 0 then false
    else if t = 1 then true
    else if assign m.var_of.(t) then go m.high_of.(t)
    else go m.low_of.(t)
  in
  go t

(* --- exact satisfying-assignment counting -------------------------------- *)

(* Minimal unsigned bignum (little-endian base-2^30 limb arrays, [||]
   is zero): sat counting only ever adds and multiplies by powers of
   two, so this stays tiny and dependency-free while being exact far
   beyond the 2^53 float-mantissa cliff. *)
module Big = struct
  let limb_bits = 30
  let limb_mask = (1 lsl limb_bits) - 1

  let zero = [||]

  let trim r =
    let len = ref (Array.length r) in
    while !len > 0 && r.(!len - 1) = 0 do
      decr len
    done;
    if !len = Array.length r then r else Array.sub r 0 !len

  let of_pow2 k =
    let a = Array.make ((k / limb_bits) + 1) 0 in
    a.(k / limb_bits) <- 1 lsl (k mod limb_bits);
    a

  let add a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let l = max la lb in
      let r = Array.make (l + 1) 0 in
      let carry = ref 0 in
      for i = 0 to l - 1 do
        let s =
          (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
        in
        r.(i) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      r.(l) <- !carry;
      trim r
    end

  let shl a k =
    if Array.length a = 0 then a
    else if k = 0 then a
    else begin
      let q = k / limb_bits and s = k mod limb_bits in
      let la = Array.length a in
      let r = Array.make (la + q + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl s) lor !carry in
        r.(i + q) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      r.(la + q) <- !carry;
      trim r
    end

  let to_float a =
    let r = ref 0.0 in
    for i = Array.length a - 1 downto 0 do
      r := (!r *. 1073741824.0) +. float_of_int a.(i)
    done;
    !r

  let bits a =
    let l = Array.length a in
    if l = 0 then 0
    else begin
      let top = a.(l - 1) in
      let b = ref 0 in
      while top lsr !b > 0 do
        incr b
      done;
      ((l - 1) * limb_bits) + !b
    end

  let to_int_opt a =
    if bits a > 62 then None
    else begin
      let v = ref 0 in
      for i = Array.length a - 1 downto 0 do
        v := (!v lsl limb_bits) lor a.(i)
      done;
      Some !v
    end
end

(* Exact count over variables [0..nvars-1]: every internal variable of
   [t] must be < nvars (same contract as before). *)
let sat_count_big m ~nvars t =
  let level u = if u < 2 then nvars else m.var_of.(u) in
  let cache = Hashtbl.create 256 in
  (* f u = exact count over variables [level u .. nvars-1] *)
  let rec f u =
    if u = 0 then Big.zero
    else if u = 1 then Big.of_pow2 0
    else
      match Hashtbl.find_opt cache u with
      | Some r -> r
      | None ->
        let v = m.var_of.(u) in
        let l = m.low_of.(u) and h = m.high_of.(u) in
        let r =
          Big.add
            (Big.shl (f l) (level l - v - 1))
            (Big.shl (f h) (level h - v - 1))
        in
        Hashtbl.replace cache u r;
        r
  in
  Big.shl (f t) (level t)

let sat_count m ~nvars t = Big.to_float (sat_count_big m ~nvars t)
let sat_count_int m ~nvars t = Big.to_int_opt (sat_count_big m ~nvars t)

let any_sat m t =
  if t = 0 then raise Not_found;
  let rec go t acc =
    if t = 1 then List.rev acc
    else
      let v = m.var_of.(t) in
      if m.low_of.(t) <> 0 then go m.low_of.(t) ((v, false) :: acc)
      else go m.high_of.(t) ((v, true) :: acc)
  in
  go t []

let fold_sat m t ~init ~f =
  let rec go t acc path =
    if t = 0 then acc
    else if t = 1 then f acc (List.rev path)
    else
      let v = m.var_of.(t) in
      let acc = go m.low_of.(t) acc ((v, false) :: path) in
      go m.high_of.(t) acc ((v, true) :: path)
  in
  go t init []

let all_sat m t =
  List.rev (fold_sat m t ~init:[] ~f:(fun acc cube -> cube :: acc))

let size m t =
  let seen = Hashtbl.create 64 in
  let rec go t acc =
    if t < 2 || Hashtbl.mem seen t then acc
    else begin
      Hashtbl.replace seen t ();
      go m.low_of.(t) (go m.high_of.(t) (acc + 1))
    end
  in
  go t 0

let node_count m = m.n_nodes

let clear_caches m = Array.fill m.cache 0 (Array.length m.cache) (-1)

type stats = {
  live_nodes : int;
  peak_nodes : int;
  n_vars : int;
  unique_buckets : int;
  unique_load : float;
  cache_slots : int;
  and_hits : int;
  and_misses : int;
  or_hits : int;
  or_misses : int;
  xor_hits : int;
  xor_misses : int;
  not_hits : int;
  not_misses : int;
  ite_hits : int;
  ite_misses : int;
}

let stats (m : man) =
  {
    (* no garbage collection yet, so everything ever allocated is live
       and the peak is the current count *)
    live_nodes = m.n_nodes;
    peak_nodes = m.n_nodes;
    n_vars = m.n_vars;
    unique_buckets = m.umask + 1;
    unique_load = float_of_int (m.n_nodes - 2) /. float_of_int (m.umask + 1);
    cache_slots = m.cmask + 1;
    and_hits = m.hits.(op_and);
    and_misses = m.misses.(op_and);
    or_hits = m.hits.(op_or);
    or_misses = m.misses.(op_or);
    xor_hits = m.hits.(op_xor);
    xor_misses = m.misses.(op_xor);
    not_hits = m.hits.(op_not);
    not_misses = m.misses.(op_not);
    ite_hits = m.hits.(op_ite);
    ite_misses = m.misses.(op_ite);
  }

let apply_ops s =
  s.and_hits + s.and_misses + s.or_hits + s.or_misses + s.xor_hits
  + s.xor_misses + s.not_hits + s.not_misses + s.ite_hits + s.ite_misses

let cache_hit_rate s =
  let hits =
    s.and_hits + s.or_hits + s.xor_hits + s.not_hits + s.ite_hits
  in
  let total = apply_ops s in
  if total = 0 then 0.0 else float_of_int hits /. float_of_int total

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>bdd: %d nodes (peak %d), %d vars@,\
     unique table: %d buckets, load %.3f@,\
     op cache: %d slots, hit rate %.3f@,\
     and %d/%d  or %d/%d  xor %d/%d  not %d/%d  ite %d/%d (hits/misses)@]"
    s.live_nodes s.peak_nodes s.n_vars s.unique_buckets s.unique_load
    s.cache_slots (cache_hit_rate s) s.and_hits s.and_misses s.or_hits
    s.or_misses s.xor_hits s.xor_misses s.not_hits s.not_misses s.ite_hits
    s.ite_misses

let pp m fmt t =
  let rec go fmt t =
    if t = 0 then Format.pp_print_string fmt "F"
    else if t = 1 then Format.pp_print_string fmt "T"
    else
      Format.fprintf fmt "@[<hv 1>(x%d?%a:%a)@]" (var_id m t) go
        m.high_of.(t) go m.low_of.(t)
  in
  go fmt t

let transfer ~(src : man) ~(dst : man) map t =
  let cache = Hashtbl.create 256 in
  let rec go t =
    if t < 2 then t
    else
      match Hashtbl.find_opt cache t with
      | Some r -> r
      | None ->
        let v = map src.var_of.(t) in
        if v < 0 || v >= dst.n_vars then
          invalid_arg "Bdd.transfer: mapped variable out of range";
        let r = ite dst (mk dst v 0 1) (go src.high_of.(t)) (go src.low_of.(t)) in
        Hashtbl.replace cache t r;
        r
  in
  go t
