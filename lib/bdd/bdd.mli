(** Reduced Ordered Binary Decision Diagrams with hash-consing.

    A {!man} (manager) owns the node store, the unique table and the
    operation cache.  BDD values of different managers must never be
    mixed; this is checked with assertions in debug builds only.

    Variables are dense integers [0 .. nvars-1].  The variable {e
    order} is a mutable permutation of them (identity at creation):
    every structural comparison goes through the level maps, so the
    order can change over the manager's life ({!sift},
    {!swap_adjacent}) without invalidating existing handles — a
    reorder rewrites nodes in place, preserving the function each node
    id denotes.  Terminals and all operations are the textbook Bryant
    constructions (APPLY / ITE with memoization).

    The hot paths are allocation-free: the unique table is an
    open-addressing int array keyed by the packed (var, low, high)
    triple with inline hashing, and all operations share one
    fixed-size direct-mapped cache (lossy on collision).  A
    {!Satg_guard.Guard.t} attached to the manager is probed from
    inside [mk]/[apply], so resource limits can interrupt a runaway
    symbolic computation mid-recursion. *)

open Satg_guard

type man
type t
(** A BDD node handle.  Handles are canonical: two handles of the same
    manager represent the same function iff they are [equal].  Handles
    survive reordering. *)

val create :
  ?unique_size:int ->
  ?cache_size:int ->
  ?cache_threshold:int ->
  ?guard:Guard.t ->
  nvars:int ->
  unit ->
  man
(** [create ~nvars ()] makes a manager with variables [0..nvars-1].
    [unique_size] seeds the unique-table bucket count and [cache_size]
    fixes the operation-cache entry count (both rounded up to powers
    of two; the op cache never grows).  When omitted, both are derived
    from [nvars], so a 10-variable manager no longer pays for the
    tables of a 100-variable workload.  [cache_threshold] is the store
    size below which operations skip cache probing entirely (default:
    64 for auto-sized managers, 0 when [cache_size] is given).  Every
    [mk]/[apply] cache miss probes [guard] (default {!Guard.none}), so
    a deadline or an already-tripped guard raises {!Guard.Exhausted}
    from inside the recursion. *)

val set_guard : man -> Guard.t -> unit
(** Swap the guard probed by the hot paths — e.g. to run per-fault
    queries under a per-fault budget, or {!Guard.none} to finish
    salvage work after a trip. *)

val guard : man -> Guard.t

val nvars : man -> int

val add_var : man -> int
(** Append a fresh variable at the bottom of the order; returns its
    index. *)

val zero : man -> t
val one : man -> t
val var : man -> int -> t
val nvar : man -> int -> t

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val top_var : man -> t -> int
(** Variable at the root. @raise Invalid_argument on terminals. *)

val low : man -> t -> t
val high : man -> t -> t

val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val imp : man -> t -> t -> t
val iff : man -> t -> t -> t
val diff : man -> t -> t -> t
(** [diff m a b] is [a ∧ ¬b]. *)

val ite : man -> t -> t -> t -> t

val and_list : man -> t list -> t
val or_list : man -> t list -> t

val cofactor : man -> t -> var:int -> value:bool -> t

val flip_var : man -> var:int -> t -> t
(** [flip_var m ~var f] is [f] with the polarity of [var] inverted
    (the cofactors by [var] exchanged everywhere) — the image of a
    single-variable toggle, linear in [f].  An involution. *)

val compose : man -> t -> var:int -> t -> t
(** [compose m f ~var g] substitutes [g] for [var] in [f]. *)

val exists : man -> vars:int list -> t -> t
val forall : man -> vars:int list -> t -> t

val and_exists : man -> vars:int list -> t -> t -> t
(** Relational product: [∃ vars. a ∧ b], computed without building the
    full conjunction. *)

val permute : man -> (int -> int) -> t -> t
(** [permute m p f] renames every variable [v] of [f] to [p v].  The
    mapping need not be order-preserving. *)

val support : man -> t -> int list
(** Variables on which the function depends, ascending by index. *)

val eval : man -> t -> (int -> bool) -> bool

val sat_count : man -> nvars:int -> t -> float
(** Number of satisfying assignments over the given variable count.
    Computed exactly (arbitrary precision) and rounded once at the
    end, so the result is the nearest float to the true count even
    beyond 2{^53}.  Order-independent. *)

val sat_count_int : man -> nvars:int -> t -> int option
(** Exact satisfying-assignment count as a native int, or [None] when
    the true count exceeds [2{^62} - 1] (overflow is detected, never
    wrapped). *)

val any_sat : man -> t -> (int * bool) list
(** One satisfying path as (variable, value) pairs in order-position
    (root-to-leaf) sequence; variables absent from the list are
    unconstrained.  @raise Not_found on the zero BDD. *)

val all_sat : man -> t -> (int * bool) list list
(** All satisfying paths (cubes).  Exponential in the worst case. *)

val fold_sat : man -> t -> init:'a -> f:('a -> (int * bool) list -> 'a) -> 'a
(** Fold {!all_sat} without materialising the list. *)

val size : man -> t -> int
(** Number of internal DAG nodes reachable from the handle. *)

val node_count : man -> int
(** Total nodes ever allocated in the manager (monotone). *)

val clear_caches : man -> unit
(** Invalidate the operation cache (unique table is kept). *)

(** {2 Dynamic variable reordering} *)

type reorder_mode = Reorder_none | Reorder_sift

val set_reorder : man -> reorder_mode -> unit
(** Under [Reorder_sift], a sifting pass fires automatically at public
    operation entry points once the store crosses a growth trigger
    (2× the post-reorder size; initial trigger 4096 nodes).  Triggers
    depend only on the operation sequence, so runs are deterministic;
    the BDD phase of the engine is sequential, so they are also
    [-j]-independent. *)

val reorder_mode : man -> reorder_mode

val set_reorder_bound : man -> int -> unit
(** Cap the number of {e automatic} sifting passes (default:
    unlimited).  Explicit {!sift} calls are not counted against it. *)

val disable_reorder : man -> unit
(** Shorthand for [set_reorder m Reorder_none] — e.g. to freeze the
    order around code that must not see it move. *)

val sift : man -> unit
(** One Rudell sifting pass: each variable (largest first) walks the
    order by in-place adjacent-level swaps and parks at the position
    minimising the live node count, with the standard 1.2× max-growth
    cutoff per direction.  Handles remain valid.  The manager's guard
    is probed {e between} swaps (each swap is atomic) and charged one
    transition per node the swaps allocate, so both a deadline and a
    transition budget bound reordering work; a trip raises
    {!Guard.Exhausted} with the manager consistent. *)

val swap_adjacent : man -> int -> unit
(** Swap the variables at levels [l] and [l+1] in place.  Exposed for
    tests; {!sift} is the intended consumer.
    @raise Invalid_argument unless [0 <= l < nvars - 1]. *)

val level_of_var : man -> int -> int
(** Current order position of a variable. *)

val var_at_level : man -> int -> int
(** Variable at an order position. *)

val order : man -> int array
(** The current order as a level-indexed variable array (a copy). *)

(** Manager health counters, for [--stats] and the BDD benchmark. *)
type stats = {
  live_nodes : int;
      (** unique-table entries + terminals.  Equals [peak_nodes] until
          a reorder orphans nodes (there is no GC). *)
  peak_nodes : int;  (** store size: everything ever allocated *)
  n_vars : int;
  unique_buckets : int;  (** open-addressing bucket count *)
  unique_buckets_init : int;  (** bucket count chosen at {!create} *)
  unique_load : float;  (** live keys / buckets, < 0.75 by construction *)
  cache_slots : int;  (** op-cache entry count (fixed at {!create}) *)
  cache_threshold : int;  (** store size below which the cache is skipped *)
  reorders : int;  (** completed sifting passes *)
  swaps : int;  (** adjacent-level swaps performed *)
  reorder_seconds : float;  (** CPU time spent reordering *)
  and_hits : int;
  and_misses : int;
  or_hits : int;
  or_misses : int;
  xor_hits : int;
  xor_misses : int;
  not_hits : int;
  not_misses : int;
  ite_hits : int;
  ite_misses : int;
  flip_hits : int;
  flip_misses : int;
}

val stats : man -> stats

val apply_ops : stats -> int
(** Total op-cache lookups (hits + misses over every op) — the
    "apply operations" counted by the throughput benchmark. *)

val cache_hit_rate : stats -> float

val pp_stats : Format.formatter -> stats -> unit

val pp : man -> Format.formatter -> t -> unit
(** Render as nested ITE text; debugging aid for small BDDs. *)

val transfer : src:man -> dst:man -> (int -> int) -> t -> t
(** Rebuild a function of [src] inside [dst], renaming every variable
    [v] to [map v].  The target order may be arbitrary (the rebuild
    goes through ITE).
    @raise Invalid_argument if a mapped variable is outside [dst]. *)
