(** Resource governance for every potentially divergent exploration.

    The paper's whole premise is that asynchronous exploration can
    diverge — non-confluence and oscillation under the unbounded
    gate-delay model — so no builder or search in this codebase may
    assume it terminates cheaply.  A {!t} carries a wall-clock
    deadline, a state-count ceiling and a transition-budget ceiling;
    exploration loops thread one through and call the [spend_*] /
    [tick] probes, which raise {!Exhausted} the moment a ceiling is
    crossed.

    Exhaustion is {e not} an error: callers at subsystem boundaries
    (CSSG builders, the ATPG engine) catch {!Exhausted} and degrade —
    a truncated graph, an [Aborted] fault outcome — so a hostile or
    merely large netlist damages one run, never the whole pipeline.

    A guard is cheap (a few mutable counters); the wall clock is only
    consulted every {!tick_period} probes. *)

type reason =
  | Timeout  (** the wall-clock deadline passed *)
  | State_limit  (** more distinct states than [max_states] *)
  | Transition_limit  (** more explored transitions than [max_transitions] *)
  | Interrupt
      (** the run was cancelled from outside (SIGINT/SIGTERM); like
          [Timeout] it is global — no per-fault retry, the whole family
          drains.  Unlike budget trips it never settles a fault: a
          durable session drops [Aborted Interrupt] journal entries on
          resume and searches those faults again. *)

exception Exhausted of reason
(** Raised by the [spend_*] / [check_time] / [tick] probes below.  Once
    a guard has tripped, every subsequent probe re-raises the same
    reason — a tripped guard stays tripped. *)

type t

val none : t
(** The unlimited guard: probes never raise.  Default everywhere a
    [?guard] parameter is omitted, so callers that do not care keep the
    historical behaviour.  Every probe on {e this singleton} is a
    complete no-op (no counter mutation), so sharing [none] across
    domains is race-free.  A guard {!create}d with no limits is {e not}
    inert: its probes still observe the family's cancel token (and the
    fault-injection harness), which is what lets a signal handler stop
    an otherwise unlimited run. *)

val create :
  ?timeout:float -> ?max_states:int -> ?max_transitions:int -> unit -> t
(** [timeout] is in wall-clock seconds {e from now}; the deadline is
    fixed at creation time.  Omitted limits are unlimited. *)

val sub : ?max_states:int -> ?max_transitions:int -> t -> t
(** A child guard with fresh counters but the parent's (absolute)
    deadline: per-fault isolation shares the run's clock while each
    fault gets its own state/transition allowance.  The child also
    shares the parent's {!cancel} token, so cancelling the parent trips
    the whole family — the cross-domain kill switch for worker pools. *)

val cancel : t -> reason -> unit
(** Cross-domain cancellation: mark this guard family (the guard, its
    parent if it is a [sub], and every sibling sharing the token) so
    that each member's next probe raises {!Exhausted} with the given
    reason.  First cancellation wins; cancelling the {!none} singleton
    is a no-op.  Safe to call from any domain — including from an OCaml
    signal handler, which is how SIGINT drains a run. *)

val cancelled : t -> reason option
(** The family's cancel token, without raising: lets a driver loop ask
    "has someone pulled the plug?" between waves. *)

val is_none : t -> bool
(** No deadline and no ceilings — every probe is a no-op. *)

val tick_period : int
(** How many [tick]s between wall-clock consultations (a power of 2). *)

val check_time : t -> unit
(** Consult the wall clock immediately.
    @raise Exhausted if the deadline has passed or the guard tripped. *)

val tick : t -> unit
(** Cheap probe for hot loops: consults the wall clock only every
    {!tick_period} calls.
    @raise Exhausted on deadline (throttled) or if already tripped. *)

val spend_states : t -> int -> unit
(** Account for [n] freshly discovered states.
    @raise Exhausted when the total crosses [max_states]. *)

val spend_state : t -> unit

val spend_transitions : t -> int -> unit
(** Account for [n] explored transitions (fired gates, frontier
    expansions, relational products).
    @raise Exhausted when the total crosses [max_transitions]. *)

val spend_transition : t -> unit

val states_used : t -> int
val transitions_used : t -> int
(** Counters are maintained on every guard except the {!none}
    singleton, where both report 0. *)

val remaining_states : t -> int option
val remaining_transitions : t -> int option
(** Budget left before the corresponding ceiling trips ([None] =
    unlimited) — what a parallel builder may hand a worker as that
    worker's private allowance. *)

val tripped : t -> reason option
(** The reason this guard first raised, if it ever did. *)

val guarded : t -> (unit -> 'a) -> ('a, reason) result
(** [guarded g f] runs [f], turning an {!Exhausted} raised by {e any}
    guard into [Error reason] — the boundary combinator for fail-soft
    callers.  [g] is checked for time once before [f] runs, so an
    already-expired deadline aborts without doing any work. *)

val reason_to_string : reason -> string
(** ["timeout"], ["state-limit"], ["transition-limit"], ["interrupt"]. *)

val reason_of_string : string -> reason option
(** Inverse of {!reason_to_string} (journal/codec round-trips). *)

val pp_reason : Format.formatter -> reason -> unit
