open Satg_inject

type reason =
  | Timeout
  | State_limit
  | Transition_limit
  | Interrupt

exception Exhausted of reason

type limits = {
  deadline : float option;  (* absolute, Unix.gettimeofday basis *)
  max_states : int option;
  max_transitions : int option;
}

(* [cancel] is the only cross-domain channel: a guard family (one
   [create] plus its [sub]s) shares a single atomic cell, so a worker
   that hits the shared wall-clock deadline — or a signal handler
   delivering SIGINT — can trip its siblings promptly even while they
   sit in pure-CPU loops between ticks.  All other fields are mutated
   exclusively by the domain that owns the guard. *)
type t = {
  limits : limits;
  cancel : reason option Atomic.t;
  mutable states : int;
  mutable transitions : int;
  mutable ticks : int;
  mutable tripped : reason option;
}

let tick_period = 256

let make ?cancel limits =
  {
    limits;
    cancel = (match cancel with Some c -> c | None -> Atomic.make None);
    states = 0;
    transitions = 0;
    ticks = 0;
    tripped = None;
  }

let is_none t =
  t.limits.deadline = None
  && t.limits.max_states = None
  && t.limits.max_transitions = None

(* Shared value, safe under domains: every probe takes the [inert]
   fast path and returns without mutating anything, so the singleton
   carries no cross-domain data race. *)
let none = make { deadline = None; max_states = None; max_transitions = None }

(* Only the [none] singleton is exempt from probing.  A guard the
   caller *created* stays probe-active even with every limit unset,
   because its cancel token must still be observable — that is what
   lets a SIGINT handler stop an otherwise unlimited run. *)
let inert t = t == none

let create ?timeout ?max_states ?max_transitions () =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  make { deadline; max_states; max_transitions }

let sub ?max_states ?max_transitions t =
  (* a sub of the inert singleton must not adopt — and pollute — the
     singleton's global cancel token *)
  let cancel = if inert t then None else Some t.cancel in
  make ?cancel { deadline = t.limits.deadline; max_states; max_transitions }

let trip t r =
  t.tripped <- Some r;
  raise (Exhausted r)

let cancel t r =
  if not (inert t) then
    ignore (Atomic.compare_and_set t.cancel None (Some r))

let cancelled t = Atomic.get t.cancel

let retrip t =
  match t.tripped with
  | Some r -> raise (Exhausted r)
  | None -> (
    match Atomic.get t.cancel with
    | Some r -> trip t r
    | None -> ())

(* The [guard.tick] injection site: a mid-phase budget trip on demand,
   so tests can prove the fail-soft paths without crafting a netlist
   that happens to blow the budget at the right moment. *)
let inject_probe t =
  if Inject.enabled () then
    match Inject.probe "guard.tick" with
    | Some "trip" -> trip t Transition_limit
    | Some "trip-timeout" -> trip t Timeout
    | Some _ | None -> ()

let check_time t =
  if not (inert t) then begin
    retrip t;
    inject_probe t;
    match t.limits.deadline with
    | Some d when Unix.gettimeofday () > d -> trip t Timeout
    | _ -> ()
  end

let tick t =
  if not (inert t) then begin
    retrip t;
    inject_probe t;
    if t.limits.deadline <> None then begin
      t.ticks <- t.ticks + 1;
      if t.ticks land (tick_period - 1) = 0 then check_time t
    end
  end

let spend_states t n =
  if not (inert t) then begin
    t.states <- t.states + n;
    (match t.limits.max_states with
    | Some m when t.states > m -> trip t State_limit
    | _ -> ());
    tick t
  end

let spend_state t = spend_states t 1

let spend_transitions t n =
  if not (inert t) then begin
    t.transitions <- t.transitions + n;
    (match t.limits.max_transitions with
    | Some m when t.transitions > m -> trip t Transition_limit
    | _ -> ());
    tick t
  end

let spend_transition t = spend_transitions t 1

let states_used t = t.states
let transitions_used t = t.transitions
let tripped t = t.tripped

let remaining_transitions t =
  Option.map
    (fun m -> max 0 (m - t.transitions))
    t.limits.max_transitions

let remaining_states t =
  Option.map (fun m -> max 0 (m - t.states)) t.limits.max_states

let guarded t f =
  match
    check_time t;
    f ()
  with
  | v -> Ok v
  | exception Exhausted r -> Error r

let reason_to_string = function
  | Timeout -> "timeout"
  | State_limit -> "state-limit"
  | Transition_limit -> "transition-limit"
  | Interrupt -> "interrupt"

let reason_of_string = function
  | "timeout" -> Some Timeout
  | "state-limit" -> Some State_limit
  | "transition-limit" -> Some Transition_limit
  | "interrupt" -> Some Interrupt
  | _ -> None

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)
