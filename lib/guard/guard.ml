type reason =
  | Timeout
  | State_limit
  | Transition_limit

exception Exhausted of reason

type limits = {
  deadline : float option;  (* absolute, Unix.gettimeofday basis *)
  max_states : int option;
  max_transitions : int option;
}

type t = {
  limits : limits;
  mutable states : int;
  mutable transitions : int;
  mutable ticks : int;
  mutable tripped : reason option;
}

let tick_period = 256

let make limits =
  { limits; states = 0; transitions = 0; ticks = 0; tripped = None }

(* Shared mutable value, but with every limit unlimited nothing ever
   trips, so the shared counters are harmless noise. *)
let none = make { deadline = None; max_states = None; max_transitions = None }

let is_none t =
  t.limits.deadline = None
  && t.limits.max_states = None
  && t.limits.max_transitions = None

let create ?timeout ?max_states ?max_transitions () =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  make { deadline; max_states; max_transitions }

let sub ?max_states ?max_transitions t =
  make { deadline = t.limits.deadline; max_states; max_transitions }

let trip t r =
  t.tripped <- Some r;
  raise (Exhausted r)

let retrip t = match t.tripped with Some r -> raise (Exhausted r) | None -> ()

let check_time t =
  retrip t;
  match t.limits.deadline with
  | Some d when Unix.gettimeofday () > d -> trip t Timeout
  | _ -> ()

let tick t =
  retrip t;
  if t.limits.deadline <> None then begin
    t.ticks <- t.ticks + 1;
    if t.ticks land (tick_period - 1) = 0 then check_time t
  end

let spend_states t n =
  t.states <- t.states + n;
  (match t.limits.max_states with
  | Some m when t.states > m -> trip t State_limit
  | _ -> ());
  tick t

let spend_state t = spend_states t 1

let spend_transitions t n =
  t.transitions <- t.transitions + n;
  (match t.limits.max_transitions with
  | Some m when t.transitions > m -> trip t Transition_limit
  | _ -> ());
  tick t

let spend_transition t = spend_transitions t 1

let states_used t = t.states
let transitions_used t = t.transitions
let tripped t = t.tripped

let guarded t f =
  match
    check_time t;
    f ()
  with
  | v -> Ok v
  | exception Exhausted r -> Error r

let reason_to_string = function
  | Timeout -> "timeout"
  | State_limit -> "state-limit"
  | Transition_limit -> "transition-limit"

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)
