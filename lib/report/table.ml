type row =
  | Cells of string list
  | Separator

type t = {
  header : string list;
  width : int;
  mutable rows : row list;  (* reversed *)
}

let create ~header = { header; width = List.length header; rows = [] }

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells, expected %d"
         (List.length cells) t.width);
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let to_ascii t =
  let rows = List.rev t.rows in
  let all_cells =
    t.header :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let widths = Array.make t.width 0 in
  List.iter
    (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)))
    all_cells;
  let buf = Buffer.create 1024 in
  let pad i c =
    let extra = widths.(i) - String.length c in
    (* left-align the first column, right-align the rest *)
    if i = 0 then c ^ String.make extra ' ' else String.make extra ' ' ^ c
  in
  let line cells =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad cells));
    Buffer.add_char buf '\n'
  in
  let rule () =
    Buffer.add_string buf
      (String.concat "--"
         (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
    Buffer.add_char buf '\n'
  in
  line t.header;
  rule ();
  List.iter
    (function Cells c -> line c | Separator -> rule ())
    rows;
  Buffer.contents buf

let quote_csv c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map quote_csv cells));
    Buffer.add_char buf '\n'
  in
  line t.header;
  List.iter
    (function Cells c -> line c | Separator -> ())
    (List.rev t.rows);
  Buffer.contents buf

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_pct f = Printf.sprintf "%.2f%%" f
let cell_ratio num den = Printf.sprintf "%d/%d" num den

(* Aborted counts render as "-" when zero so complete runs stay clean. *)
let cell_aborted n = if n = 0 then "-" else string_of_int n
