(** Minimal ASCII / CSV table rendering for the experiment drivers. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on width mismatch. *)

val add_separator : t -> unit
val to_ascii : t -> string
val to_csv : t -> string

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : float -> string

val cell_ratio : int -> int -> string
(** ["num/den"]. *)

val cell_aborted : int -> string
(** An aborted-fault count: ["-"] when zero (a complete run), the count
    otherwise. *)
