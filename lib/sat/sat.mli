(** A self-contained CDCL SAT solver, the second justification /
    differentiation backend next to {!Satg_bdd.Bdd}.

    Same engineering idiom as the BDD manager: int-packed literals in
    flat arrays, no allocation on the hot paths.  Variables are dense
    ints from {!new_var}; a literal packs a variable and a sign as
    [2*var + (0|1)].  Clauses (problem and learned alike) live in one
    growable int arena indexed by clause refs.

    The solver is {e incremental}: clauses persist across {!solve}
    calls and each call may pass a list of {e assumption} literals that
    hold for that call only — the mechanism behind time-frame queries
    ("is state [s] reachable at frame [t]?") in {!Satg_cnf.Cnf}.

    Search is CDCL: two-watched-literal unit propagation, first-UIP
    conflict learning with VSIDS activity bumping, phase saving, and
    Luby-sequence restarts.

    Resource governance: the installed {!Satg_guard.Guard} is probed
    ({!Satg_guard.Guard.tick}) on every propagated literal and every
    conflict-analysis resolution step, so a deadline or transition
    ceiling trips {e inside} a runaway solve.  On exhaustion the solver
    unwinds to decision level 0 (watch lists and saved phases intact —
    the instance stays usable) and re-raises; callers at subsystem
    boundaries degrade exactly like they do for the BDD engine. *)

open Satg_guard

type t

type lit = int
(** [2*var + 0] = the variable itself, [2*var + 1] = its negation. *)

val pos : int -> lit
val neg_of : int -> lit
val neg : lit -> lit
val var_of : lit -> int
val sign_of : lit -> bool
(** [true] iff the literal is the positive occurrence. *)

val create : ?guard:Guard.t -> unit -> t

val set_guard : t -> Guard.t -> unit
(** Swap the hot-path guard (per-fault budgets in the ATPG engine). *)

val new_var : t -> int
val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Add a problem clause (root level).  Satisfied clauses are dropped,
    root-false literals removed; deriving the empty clause makes the
    instance permanently unsatisfiable.
    @raise Invalid_argument on an undeclared variable. *)

val solve : ?assumptions:lit list -> t -> bool
(** [true] = satisfiable under the assumptions (a model is available
    through {!value}); [false] = unsatisfiable under the assumptions.
    @raise Satg_guard.Guard.Exhausted when the installed guard trips;
    the solver remains usable afterwards. *)

val value : t -> int -> bool
(** Model value of a variable after a satisfiable {!solve}.  Variables
    untouched by the search default to their saved phase. *)

val lit_true : t -> lit -> bool

(** {1 Statistics} *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;  (** learned clauses retained *)
  learned_lits : int;  (** total literals across learned clauses *)
  restarts : int;
  n_vars : int;
  n_clauses : int;  (** problem clauses *)
}

val stats : t -> stats

val zero_stats : stats
val add_stats : stats -> stats -> stats
(** Pointwise sum, except [n_vars]/[n_clauses] which take the max —
    used to aggregate counters across the per-fault solvers of one
    ATPG run. *)

val pp_stats : Format.formatter -> stats -> unit
