(** A self-contained CDCL SAT solver, the second justification /
    differentiation backend next to {!Satg_bdd.Bdd}.

    Same engineering idiom as the BDD manager: int-packed literals in
    flat arrays, no allocation on the hot paths.  Variables are dense
    ints from {!new_var}; a literal packs a variable and a sign as
    [2*var + (0|1)].  Clauses (problem and learned alike) live in one
    growable int arena indexed by clause refs.

    The solver is {e incremental}: clauses persist across {!solve}
    calls and each call may pass a list of {e assumption} literals that
    hold for that call only — the mechanism behind time-frame queries
    ("is state [s] reachable at frame [t]?") in {!Satg_cnf.Cnf}.

    On top of plain assumptions the solver supports {e activation
    literals} ({!new_act}): a clause added with [~act] is guarded by
    the activation's negation, so it constrains a solve only when the
    activation literal is passed as an assumption.  {!retire}
    permanently disables an activation and {e deletes} its clause group
    — the registered problem clauses plus every learned clause that
    mentions the activation — detaching them from the watch lists and
    compacting the arena once dead clauses dominate.  This is the
    mechanism behind the one-solver-per-worker ATPG engine: each
    fault's product clauses live and die under one activation while the
    shared time-frame clauses and act-free learned clauses persist.

    Search is CDCL: two-watched-literal unit propagation, first-UIP
    conflict learning with VSIDS activity bumping, phase saving, and
    Luby-sequence restarts.

    Resource governance: the installed {!Satg_guard.Guard} is probed
    ({!Satg_guard.Guard.tick}) on every propagated literal and every
    conflict-analysis resolution step, so a deadline or transition
    ceiling trips {e inside} a runaway solve.  On exhaustion the solver
    unwinds to decision level 0 (watch lists and saved phases intact —
    the instance stays usable) and re-raises; callers at subsystem
    boundaries degrade exactly like they do for the BDD engine. *)

open Satg_guard

type t

type lit = int
(** [2*var + 0] = the variable itself, [2*var + 1] = its negation. *)

val pos : int -> lit
val neg_of : int -> lit
val neg : lit -> lit
val var_of : lit -> int
val sign_of : lit -> bool
(** [true] iff the literal is the positive occurrence. *)

val create : ?guard:Guard.t -> unit -> t

val set_guard : t -> Guard.t -> unit
(** Swap the hot-path guard (per-fault budgets in the ATPG engine). *)

val new_var : t -> int
val nvars : t -> int

val set_decidable : t -> int -> bool -> unit
(** Exclude a variable from (or re-admit it to) branching.  Only sound
    for a variable that occurs in {e no live clause} — e.g. the product
    variables of a retired fault, whose whole clause group {!retire}
    just deleted: such a variable can never be forced, so leaving it
    unassigned cannot mask an unsatisfied clause.  {!value} falls back
    to the saved phase for it. *)

(** {1 Activation literals} *)

type act
(** A clause-group handle.  The activation's positive literal
    ({!act_lit}) is passed as an assumption to enable the group for one
    solve; {!retire} disables and deletes the group permanently. *)

val new_act : t -> act
(** Allocate an activation (backed by a fresh variable). *)

val act_lit : t -> act -> lit
(** The assumption literal that activates the group's clauses. *)

val retire : t -> act -> unit
(** Permanently disable the activation: assert its negation at root
    level, delete every clause registered to it ({!add_clause} [~act]
    plus learned clauses mentioning the activation variable), and
    compact the clause arena when dead clauses hold more than half of
    it.  Idempotent.  After retirement the group's other variables
    occur in no live clause, so the caller may {!set_decidable} them
    off. *)

val add_clause : ?act:act -> t -> lit list -> unit
(** Add a problem clause (root level).  Satisfied clauses are dropped,
    root-false literals removed; deriving the empty clause makes the
    instance permanently unsatisfiable.  With [~act] the clause is
    guarded by the activation literal's negation (active only under the
    {!act_lit} assumption) and registered for deletion at {!retire}.
    @raise Invalid_argument on an undeclared variable or a retired
    activation. *)

val solve : ?assumptions:lit list -> t -> bool
(** [true] = satisfiable under the assumptions (a model is available
    through {!value}); [false] = unsatisfiable under the assumptions.
    @raise Satg_guard.Guard.Exhausted when the installed guard trips;
    the solver remains usable afterwards. *)

val value : t -> int -> bool
(** Model value of a variable after a satisfiable {!solve}.  Variables
    untouched by the search default to their saved phase. *)

val lit_true : t -> lit -> bool

(** {1 Statistics} *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;  (** learned clauses retained *)
  learned_lits : int;  (** total literals across learned clauses *)
  restarts : int;
  n_vars : int;
  n_clauses : int;  (** problem clauses *)
  instances : int;
      (** solver instances behind these counters: [1] for a live
          solver's own {!stats}, summed by {!add_stats} — the ATPG
          engine's "one instance per worker, not per fault" witness *)
  solves : int;  (** {!solve} calls *)
  reused_shared : int;
      (** times a clause predating the latest activation — the shared
          good-machine unrolling, or anything learned while an earlier
          fault was live — served as a reason or conflict: the
          cross-fault payoff of the long-lived instance *)
  reused_learned : int;
      (** times a clause learned in an {e earlier} solve served as a
          reason or conflict in a later one — clause retention at work.
          Zero on encodings whose queries never conflict (the
          time-frame unrolling is propagation-complete on most
          benchmark families); see [reused_shared] for the retention
          signal that does not depend on conflicts *)
  deleted_clauses : int;  (** clauses deleted by {!retire} *)
}

val stats : t -> stats
(** This solver's counters ([instances = 1]). *)

val zero_stats : stats
val add_stats : stats -> stats -> stats
(** Pointwise sum, except [n_vars]/[n_clauses] which take the max —
    used to aggregate counters across the per-worker solvers of one
    ATPG run. *)

val pp_stats : Format.formatter -> stats -> unit
