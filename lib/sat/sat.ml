open Satg_guard

type lit = int

let pos v = 2 * v
let neg_of v = (2 * v) + 1
let neg l = l lxor 1
let var_of l = l lsr 1
let sign_of l = l land 1 = 0

(* Variable assignment: 0 = unassigned, 1 = true, 2 = false. *)
let v_undef = 0
let v_true = 1
let v_false = 2

(* Arena headers pack the clause length with two flag bits: learned
   clauses are tagged so cross-query reuse can be counted, dead clauses
   (deleted by {!retire}) are tagged so compaction can skip them. *)
let len_mask = (1 lsl 30) - 1
let learned_flag = 1 lsl 30
let dead_flag = 1 lsl 31

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned : int;
  learned_lits : int;
  restarts : int;
  n_vars : int;
  n_clauses : int;
  instances : int;
  solves : int;
  reused_shared : int;
  reused_learned : int;
  deleted_clauses : int;
}

let zero_stats =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    learned = 0;
    learned_lits = 0;
    restarts = 0;
    n_vars = 0;
    n_clauses = 0;
    instances = 0;
    solves = 0;
    reused_shared = 0;
    reused_learned = 0;
    deleted_clauses = 0;
  }

let add_stats a b =
  {
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    conflicts = a.conflicts + b.conflicts;
    learned = a.learned + b.learned;
    learned_lits = a.learned_lits + b.learned_lits;
    restarts = a.restarts + b.restarts;
    n_vars = max a.n_vars b.n_vars;
    n_clauses = max a.n_clauses b.n_clauses;
    instances = a.instances + b.instances;
    solves = a.solves + b.solves;
    reused_shared = a.reused_shared + b.reused_shared;
    reused_learned = a.reused_learned + b.reused_learned;
    deleted_clauses = a.deleted_clauses + b.deleted_clauses;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "sat: %d instances, %d solves; %d vars, %d clauses; %d decisions, %d \
     propagations, %d conflicts, %d learned (%.1f lits avg), %d reused \
     shared, %d reused learned, %d deleted, %d restarts"
    s.instances s.solves s.n_vars s.n_clauses s.decisions s.propagations
    s.conflicts s.learned
    (if s.learned = 0 then 0.0
     else float_of_int s.learned_lits /. float_of_int s.learned)
    s.reused_shared s.reused_learned s.deleted_clauses s.restarts

type t = {
  mutable guard : Guard.t;
  (* Clause arena: [header; lit0; lit1; ...] blocks, refs are header
     indices; the header packs the length with the learned/dead flags.
     The two watched literals are always at ref+1 / ref+2. *)
  mutable arena : int array;
  mutable arena_top : int;
  (* Per-variable state, indexed by var. *)
  mutable nvars : int;
  mutable assign : int array;
  mutable level : int array;
  mutable reason : int array;  (* clause ref, or -1 *)
  mutable activity : float array;
  mutable saved_phase : bool array;
  mutable seen : bool array;  (* conflict-analysis scratch *)
  mutable decidable : bool array;
  mutable act_of_var : int array;  (* var -> activation id, or -1 *)
  (* Watch lists, indexed by literal. *)
  mutable watch : int array array;
  mutable watch_n : int array;
  (* Assignment trail. *)
  mutable trail : int array;
  mutable trail_n : int;
  mutable qhead : int;
  mutable lim : int array;  (* trail boundary of each decision level *)
  mutable lim_n : int;  (* current decision level *)
  (* Branching heap: binary max-heap over activity. *)
  mutable heap : int array;  (* heap slots -> var *)
  mutable heap_pos : int array;  (* var -> heap slot, or -1 *)
  mutable heap_n : int;
  mutable var_inc : float;
  (* Activation literals: per-activation registered clause refs, so one
     [retire] call deletes a whole fault's clause group. *)
  mutable act_lits : int array;  (* activation id -> positive literal *)
  mutable act_clauses : int list array;
  mutable act_retired : bool array;
  mutable n_acts : int;
  mutable dead_space : int;  (* arena ints held by dead clauses *)
  (* Status / counters. *)
  mutable ok : bool;
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable learned : int;
  mutable learned_lits : int;
  mutable restarts : int;
  mutable n_clauses : int;
  mutable solves : int;
  mutable solve_top : int;  (* arena_top when the current solve began *)
  mutable epoch_top : int;  (* arena_top when the latest act was created *)
  mutable reused_shared : int;
  mutable reused_learned : int;
  mutable deleted_clauses : int;
}

let create ?(guard = Guard.none) () =
  {
    guard;
    arena = Array.make 1024 0;
    arena_top = 0;
    nvars = 0;
    assign = [||];
    level = [||];
    reason = [||];
    activity = [||];
    saved_phase = [||];
    seen = [||];
    decidable = [||];
    act_of_var = [||];
    watch = [||];
    watch_n = [||];
    trail = [||];
    trail_n = 0;
    qhead = 0;
    lim = Array.make 16 0;
    lim_n = 0;
    heap = [||];
    heap_pos = [||];
    heap_n = 0;
    var_inc = 1.0;
    act_lits = Array.make 8 0;
    act_clauses = Array.make 8 [];
    act_retired = Array.make 8 false;
    n_acts = 0;
    dead_space = 0;
    ok = true;
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    learned = 0;
    learned_lits = 0;
    restarts = 0;
    n_clauses = 0;
    solves = 0;
    solve_top = 0;
    epoch_top = 0;
    reused_shared = 0;
    reused_learned = 0;
    deleted_clauses = 0;
  }

let set_guard s g = s.guard <- g

let stats s =
  {
    decisions = s.decisions;
    propagations = s.propagations;
    conflicts = s.conflicts;
    learned = s.learned;
    learned_lits = s.learned_lits;
    restarts = s.restarts;
    n_vars = s.nvars;
    n_clauses = s.n_clauses;
    instances = 1;
    solves = s.solves;
    reused_shared = s.reused_shared;
    reused_learned = s.reused_learned;
    deleted_clauses = s.deleted_clauses;
  }

(* --- growable flat storage ------------------------------------------------- *)

let grow_int a n def =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max 16 (2 * n)) def in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_bool a n def =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max 16 (2 * n)) def in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max 16 (2 * n)) 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_list a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max 16 (2 * n)) [] in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* --- branching heap --------------------------------------------------------- *)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vi) <- j;
  s.heap_pos.(vj) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(p)) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_n && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best)) then
    best := l;
  if r < s.heap_n && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best)) then
    best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    let i = s.heap_n in
    s.heap_n <- i + 1;
    s.heap.(i) <- v;
    s.heap_pos.(v) <- i;
    heap_up s i
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_n <- s.heap_n - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_n > 0 then begin
    let w = s.heap.(s.heap_n) in
    s.heap.(0) <- w;
    s.heap_pos.(w) <- 0;
    heap_down s 0
  end;
  v

(* --- variables -------------------------------------------------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assign <- grow_int s.assign s.nvars v_undef;
  s.level <- grow_int s.level s.nvars 0;
  s.reason <- grow_int s.reason s.nvars (-1);
  s.activity <- grow_float s.activity s.nvars;
  s.saved_phase <- grow_bool s.saved_phase s.nvars false;
  s.seen <- grow_bool s.seen s.nvars false;
  s.decidable <- grow_bool s.decidable s.nvars true;
  s.act_of_var <- grow_int s.act_of_var s.nvars (-1);
  s.trail <- grow_int s.trail s.nvars 0;
  s.heap <- grow_int s.heap s.nvars 0;
  s.heap_pos <- grow_int s.heap_pos s.nvars (-1);
  (if Array.length s.watch < 2 * s.nvars then begin
     let w = Array.make (max 32 (4 * s.nvars)) [||] in
     let wn = Array.make (max 32 (4 * s.nvars)) 0 in
     Array.blit s.watch 0 w 0 (Array.length s.watch);
     Array.blit s.watch_n 0 wn 0 (Array.length s.watch_n);
     s.watch <- w;
     s.watch_n <- wn
   end);
  s.assign.(v) <- v_undef;
  s.reason.(v) <- -1;
  s.heap_pos.(v) <- -1;
  s.saved_phase.(v) <- false;
  s.seen.(v) <- false;
  s.decidable.(v) <- true;
  s.act_of_var.(v) <- -1;
  s.activity.(v) <- 0.0;
  heap_insert s v;
  v

let nvars s = s.nvars

let set_decidable s v b =
  if v < 0 || v >= s.nvars then
    invalid_arg "Sat.set_decidable: undeclared variable";
  s.decidable.(v) <- b

let check_var s l =
  let v = var_of l in
  if v < 0 || v >= s.nvars then invalid_arg "Sat: undeclared variable"

(* Literal value: v_undef / v_true / v_false. *)
let val_lit s l =
  let a = s.assign.(l lsr 1) in
  if a = v_undef then v_undef
  else if (a = v_true) = (l land 1 = 0) then v_true
  else v_false

(* --- VSIDS ------------------------------------------------------------------- *)

let var_decay = 1.0 /. 0.95

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* --- watches / arena ---------------------------------------------------------- *)

let watch_add s l cr =
  let n = s.watch_n.(l) in
  let a = s.watch.(l) in
  let a =
    if n >= Array.length a then begin
      let b = Array.make (max 4 (2 * n)) 0 in
      Array.blit a 0 b 0 n;
      s.watch.(l) <- b;
      b
    end
    else a
  in
  a.(n) <- cr;
  s.watch_n.(l) <- n + 1

(* Stable removal, so the propagation visit order of the surviving
   clauses — and with it the whole search trace — stays deterministic. *)
let watch_remove s l cr =
  let a = s.watch.(l) in
  let n = s.watch_n.(l) in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if a.(i) <> cr then begin
      a.(!j) <- a.(i);
      incr j
    end
  done;
  s.watch_n.(l) <- !j

let arena_alloc s len ~learned =
  let need = s.arena_top + len + 1 in
  if need > Array.length s.arena then begin
    let b = Array.make (max need (2 * Array.length s.arena)) 0 in
    Array.blit s.arena 0 b 0 s.arena_top;
    s.arena <- b
  end;
  let cr = s.arena_top in
  s.arena.(cr) <- (if learned then len lor learned_flag else len);
  s.arena_top <- need;
  cr

let clause_len s cr = s.arena.(cr) land len_mask
let clause_learned s cr = s.arena.(cr) land learned_flag <> 0
let clause_dead s cr = s.arena.(cr) land dead_flag <> 0

let attach s cr =
  watch_add s s.arena.(cr + 1) cr;
  watch_add s s.arena.(cr + 2) cr

(* A clause allocated before the latest activation was created (the
   shared good-machine unrolling, or anything learned while an earlier
   fault was live) just steered this query: the cross-fault payoff of
   the long-lived incremental instance.  Learned-clause reuse across
   solves is tallied separately. *)
let note_clause_used s cr =
  if cr < s.epoch_top then s.reused_shared <- s.reused_shared + 1;
  if clause_learned s cr && cr < s.solve_top then
    s.reused_learned <- s.reused_learned + 1

(* --- trail --------------------------------------------------------------------- *)

let enqueue s l reason =
  let v = l lsr 1 in
  s.assign.(v) <- (if l land 1 = 0 then v_true else v_false);
  s.level.(v) <- s.lim_n;
  s.reason.(v) <- reason;
  s.trail.(s.trail_n) <- l;
  s.trail_n <- s.trail_n + 1

let new_decision_level s =
  if s.lim_n >= Array.length s.lim then begin
    let b = Array.make (2 * Array.length s.lim) 0 in
    Array.blit s.lim 0 b 0 s.lim_n;
    s.lim <- b
  end;
  s.lim.(s.lim_n) <- s.trail_n;
  s.lim_n <- s.lim_n + 1

let cancel_until s lvl =
  if s.lim_n > lvl then begin
    let bound = s.lim.(lvl) in
    for c = s.trail_n - 1 downto bound do
      let l = s.trail.(c) in
      let v = l lsr 1 in
      s.saved_phase.(v) <- l land 1 = 0;
      s.assign.(v) <- v_undef;
      s.reason.(v) <- -1;
      heap_insert s v
    done;
    s.trail_n <- bound;
    s.qhead <- bound;
    s.lim_n <- lvl
  end

(* --- unit propagation ----------------------------------------------------------- *)

(* Returns the conflicting clause ref, or -1.  The guard probe sits at
   the top of each propagated literal, before its watch list is
   touched, so an abort leaves the two-watched invariant intact. *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < s.trail_n do
    Guard.tick s.guard;
    s.propagations <- s.propagations + 1;
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    (* fp just became false: every clause watching it needs a look *)
    let fp = p lxor 1 in
    let ws = s.watch.(fp) in
    let n = s.watch_n.(fp) in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let cr = ws.(!i) in
      incr i;
      if !confl >= 0 then begin
        (* conflict already found: keep the remaining watches as-is *)
        ws.(!j) <- cr;
        incr j
      end
      else begin
        (* ensure the falsified literal sits at slot 2 *)
        if s.arena.(cr + 1) = fp then begin
          s.arena.(cr + 1) <- s.arena.(cr + 2);
          s.arena.(cr + 2) <- fp
        end;
        let first = s.arena.(cr + 1) in
        if val_lit s first = v_true then begin
          ws.(!j) <- cr;
          incr j
        end
        else begin
          let len = clause_len s cr in
          let k = ref 3 in
          let moved = ref false in
          while (not !moved) && !k <= len do
            let l = s.arena.(cr + !k) in
            if val_lit s l <> v_false then begin
              s.arena.(cr + 2) <- l;
              s.arena.(cr + !k) <- fp;
              watch_add s l cr;
              moved := true
            end;
            incr k
          done;
          if not !moved then begin
            (* unit or conflicting under the first literal *)
            ws.(!j) <- cr;
            incr j;
            note_clause_used s cr;
            if val_lit s first = v_false then confl := cr
            else enqueue s first cr
          end
        end
      end
    done;
    s.watch_n.(fp) <- !j
  done;
  !confl

(* --- conflict analysis ------------------------------------------------------------ *)

(* First-UIP resolution (MiniSat's analyze).  Fills [learnt] with the
   asserting literal first and returns the backtrack level.  Relies on
   the invariant that an active reason clause holds its propagated
   literal at slot 1.  The [seen] scratch flags are cleared on every
   exit, guard aborts included. *)
let analyze s confl0 learnt =
  let to_clear = ref [] in
  Fun.protect
    ~finally:(fun () -> List.iter (fun v -> s.seen.(v) <- false) !to_clear)
    (fun () ->
      let tail = ref [] in
      let counter = ref 0 in
      let p = ref (-1) in
      let confl = ref confl0 in
      let index = ref (s.trail_n - 1) in
      let uip = ref (-1) in
      while !uip < 0 do
        Guard.tick s.guard;
        let cr = !confl in
        let len = clause_len s cr in
        (* slot 1 of a reason clause is the resolved literal: skip it *)
        let start = if !p < 0 then 1 else 2 in
        for k = start to len do
          let q = s.arena.(cr + k) in
          let v = q lsr 1 in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            to_clear := v :: !to_clear;
            bump_var s v;
            if s.level.(v) >= s.lim_n then incr counter
            else tail := q :: !tail
          end
        done;
        while not s.seen.(s.trail.(!index) lsr 1) do
          decr index
        done;
        let pl = s.trail.(!index) in
        decr index;
        s.seen.(pl lsr 1) <- false;
        decr counter;
        if !counter = 0 then uip := pl
        else begin
          p := pl;
          confl := s.reason.(pl lsr 1)
        end
      done;
      learnt := (!uip lxor 1) :: !tail;
      List.fold_left (fun acc q -> max acc (s.level.(q lsr 1))) 0 !tail)

(* --- activation literals ----------------------------------------------------------- *)

type act = int

let new_act s =
  let v = new_var s in
  (* clauses below this point predate the activation's owner: their use
     from now on is cross-fault reuse *)
  s.epoch_top <- s.arena_top;
  let i = s.n_acts in
  s.act_lits <- grow_int s.act_lits (i + 1) 0;
  s.act_clauses <- grow_list s.act_clauses (i + 1);
  s.act_retired <- grow_bool s.act_retired (i + 1) false;
  s.act_lits.(i) <- pos v;
  s.act_clauses.(i) <- [];
  s.act_retired.(i) <- false;
  s.act_of_var.(v) <- i;
  s.n_acts <- i + 1;
  i

let act_lit s a =
  if a < 0 || a >= s.n_acts then invalid_arg "Sat.act_lit: unknown activation";
  s.act_lits.(a)

let register_act_clause s a cr =
  if not s.act_retired.(a) then s.act_clauses.(a) <- cr :: s.act_clauses.(a)

(* --- clause addition --------------------------------------------------------------- *)

let add_clause ?act s lits =
  List.iter (check_var s) lits;
  let lits =
    match act with
    | None -> lits
    | Some a ->
      if a < 0 || a >= s.n_acts then
        invalid_arg "Sat.add_clause: unknown activation"
      else if s.act_retired.(a) then
        invalid_arg "Sat.add_clause: retired activation"
      else neg s.act_lits.(a) :: lits
  in
  cancel_until s 0;
  if s.ok then begin
    let sorted = List.sort_uniq compare lits in
    let taut =
      let rec chk = function
        | a :: (b :: _ as rest) -> a lxor 1 = b || chk rest
        | _ -> false
      in
      chk sorted
    in
    let satisfied = List.exists (fun l -> val_lit s l = v_true) sorted in
    if not (taut || satisfied) then begin
      let live = List.filter (fun l -> val_lit s l <> v_false) sorted in
      s.n_clauses <- s.n_clauses + 1;
      match live with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l (-1);
        if propagate s >= 0 then s.ok <- false
      | live ->
        let len = List.length live in
        let cr = arena_alloc s len ~learned:false in
        List.iteri (fun k l -> s.arena.(cr + 1 + k) <- l) live;
        attach s cr;
        Option.iter (fun a -> register_act_clause s a cr) act
    end
  end

(* --- clause deletion / arena compaction -------------------------------------------- *)

(* Precondition: decision level 0.  Reason refs of root-level literals
   are never dereferenced by [analyze] (it only resolves vars above
   level 0), so they can be cleared wholesale before clause refs move. *)
let compact s =
  for i = 0 to s.trail_n - 1 do
    s.reason.(s.trail.(i) lsr 1) <- -1
  done;
  let map = Hashtbl.create 256 in
  let cr = ref 0 and top = ref 0 in
  let new_epoch = ref 0 and new_solve = ref 0 in
  while !cr < s.arena_top do
    let len = clause_len s !cr in
    if not (clause_dead s !cr) then begin
      Array.blit s.arena !cr s.arena !top (len + 1);
      Hashtbl.replace map !cr !top;
      top := !top + len + 1;
      (* keep the reuse watermarks pointing at the same boundary *)
      if !cr < s.epoch_top then new_epoch := !top;
      if !cr < s.solve_top then new_solve := !top
    end;
    cr := !cr + len + 1
  done;
  s.arena_top <- !top;
  s.epoch_top <- !new_epoch;
  s.solve_top <- !new_solve;
  s.dead_space <- 0;
  (* every live clause is watched exactly on its slot-1/2 literals, so
     the watch lists can simply be rebuilt from the compacted arena *)
  Array.fill s.watch_n 0 (Array.length s.watch_n) 0;
  let cr = ref 0 in
  while !cr < s.arena_top do
    attach s !cr;
    cr := !cr + clause_len s !cr + 1
  done;
  for a = 0 to s.n_acts - 1 do
    if not s.act_retired.(a) then
      s.act_clauses.(a) <-
        List.filter_map (fun old -> Hashtbl.find_opt map old) s.act_clauses.(a)
  done

let delete_clause s cr =
  if not (clause_dead s cr) then begin
    watch_remove s s.arena.(cr + 1) cr;
    watch_remove s s.arena.(cr + 2) cr;
    s.arena.(cr) <- s.arena.(cr) lor dead_flag;
    s.dead_space <- s.dead_space + clause_len s cr + 1;
    s.deleted_clauses <- s.deleted_clauses + 1
  end

let retire s a =
  if a < 0 || a >= s.n_acts then invalid_arg "Sat.retire: unknown activation";
  if not s.act_retired.(a) then begin
    cancel_until s 0;
    (* the unit below may propagate; never let a tripped per-fault
       guard abort the retirement bookkeeping itself *)
    let saved_guard = s.guard in
    s.guard <- Guard.none;
    s.act_retired.(a) <- true;
    List.iter (delete_clause s) s.act_clauses.(a);
    s.act_clauses.(a) <- [];
    (* permanently disable: any clause still mentioning the activation
       (none, after deletion) is satisfied forever *)
    add_clause s [ neg s.act_lits.(a) ];
    if 2 * s.dead_space > s.arena_top then compact s;
    s.guard <- saved_guard
  end

(* --- search -------------------------------------------------------------------------- *)

(* The i-th term (0-based) of the Luby restart sequence 1 1 2 1 1 2 4 ... *)
let luby i =
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let restart_base = 100

exception Sat_found
exception Unsat_found

let learn s learnt =
  s.learned <- s.learned + 1;
  s.learned_lits <- s.learned_lits + List.length learnt;
  match learnt with
  | [] -> s.ok <- false
  | [ l ] ->
    cancel_until s 0;
    if val_lit s l = v_false then s.ok <- false
    else if val_lit s l = v_undef then enqueue s l (-1)
  | l0 :: rest ->
    (* the caller has backtracked already; watch the asserting literal
       and a literal of the backtrack level *)
    let len = 1 + List.length rest in
    let cr = arena_alloc s len ~learned:true in
    s.arena.(cr + 1) <- l0;
    List.iteri (fun k l -> s.arena.(cr + 2 + k) <- l) rest;
    let best = ref 2 in
    for k = 3 to len do
      if s.level.(s.arena.(cr + k) lsr 1) > s.level.(s.arena.(cr + !best) lsr 1)
      then best := k
    done;
    if !best <> 2 then begin
      let tmp = s.arena.(cr + 2) in
      s.arena.(cr + 2) <- s.arena.(cr + !best);
      s.arena.(cr + !best) <- tmp
    end;
    attach s cr;
    (* a learned clause mentioning an activation literal belongs to that
       fault's clause group: register it so retirement deletes it too,
       leaving the fault's variables in no live clause *)
    List.iter
      (fun l ->
        let a = s.act_of_var.(l lsr 1) in
        if a >= 0 then register_act_clause s a cr)
      learnt;
    enqueue s l0 cr

let solve ?(assumptions = []) s =
  List.iter (check_var s) assumptions;
  s.solves <- s.solves + 1;
  if not s.ok then false
  else begin
    cancel_until s 0;
    s.solve_top <- s.arena_top;
    let n_assumps = List.length assumptions in
    let assumps = Array.of_list assumptions in
    let learnt = ref [] in
    let result = ref false in
    let epoch = ref 0 in
    (try
       if propagate s >= 0 then begin
         s.ok <- false;
         raise Unsat_found
       end;
       while true do
         (* one restart epoch *)
         let conflicts_left = ref (restart_base * luby !epoch) in
         incr epoch;
         if !epoch > 1 then begin
           s.restarts <- s.restarts + 1;
           cancel_until s 0
         end;
         let epoch_live = ref true in
         while !epoch_live do
           let confl = propagate s in
           if confl >= 0 then begin
             s.conflicts <- s.conflicts + 1;
             (* a conflict is the solver's coarse search-space expansion:
                charge the transition budget like a relational product *)
             Guard.spend_transition s.guard;
             if s.lim_n = 0 then begin
               s.ok <- false;
               raise Unsat_found
             end;
             let bt = analyze s confl learnt in
             cancel_until s bt;
             learn s !learnt;
             if not s.ok then raise Unsat_found;
             s.var_inc <- s.var_inc *. var_decay;
             decr conflicts_left;
             if !conflicts_left <= 0 then epoch_live := false
           end
           else if s.lim_n < n_assumps then begin
             (* install the next assumption as its own decision level *)
             let p = assumps.(s.lim_n) in
             let v = val_lit s p in
             if v = v_true then new_decision_level s
             else if v = v_false then raise Unsat_found
             else begin
               new_decision_level s;
               enqueue s p (-1)
             end
           end
           else begin
             let rec pick () =
               if s.heap_n = 0 then None
               else
                 let v = heap_pop s in
                 if s.assign.(v) = v_undef && s.decidable.(v) then Some v
                 else pick ()
             in
             match pick () with
             | None -> raise Sat_found
             | Some v ->
               s.decisions <- s.decisions + 1;
               new_decision_level s;
               enqueue s (if s.saved_phase.(v) then pos v else neg_of v) (-1)
           end
         done
       done
     with
    | Sat_found -> result := true
    | Unsat_found -> result := false
    | Guard.Exhausted _ as e ->
      cancel_until s 0;
      raise e);
    if not !result then cancel_until s 0;
    !result
  end

let value s v =
  if v < 0 || v >= s.nvars then invalid_arg "Sat.value: undeclared variable";
  let a = s.assign.(v) in
  if a = v_true then true else if a = v_false then false else s.saved_phase.(v)

let lit_true s l =
  let b = value s (l lsr 1) in
  if l land 1 = 0 then b else not b
