(** A fixed pool of worker domains with deterministic parallel map.

    One pool owns [jobs - 1] spawned domains (the caller participates
    as worker 0, so [jobs] workers run concurrently) that park between
    parallel regions.  {!map} fans an array of independent items out to
    the workers — items are claimed in chunks off a shared atomic
    cursor, so an expensive item never serialises the cheap ones behind
    it — and returns the results {e in input order}, which is what
    makes pool-based algorithms reproducible: callers merge results by
    index, never by completion time.

    Exceptions raised by items are funnelled: every item still runs,
    and after the region joins, the exception of the {e
    lowest-indexed} failing item is re-raised in the caller — the same
    exception a sequential left-to-right loop would have surfaced
    first.

    A pool with [jobs = 1] spawns no domains and runs every region
    inline in the caller, byte-for-byte the sequential semantics; this
    is the [-j 1] anchor that the [-j N] determinism contract is
    checked against.

    Item functions must confine their mutations to worker-local state
    (anything reached from their arguments is shared).  The
    {!Satg_guard.Guard} discipline fits: give each worker its own
    [Guard.sub] and cross-domain control travels only through the
    family's atomic cancel token. *)

type t

val create : jobs:int -> t
(** [jobs] is clamped to [1 .. 128].  [jobs - 1] domains are spawned
    immediately and live until {!shutdown}. *)

val jobs : t -> int

val map : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] computes [f worker_id arr.(i)] for every [i] and
    returns the results in input order.  [worker_id] is in
    [0 .. jobs - 1] and identifies the executing worker — the hook for
    worker-local backends (a per-domain SAT solver, a scratch buffer).
    [chunk] (default 1) items are claimed per cursor fetch. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'b) -> 'b
(** [create], run, and {!shutdown} even on exceptions. *)
