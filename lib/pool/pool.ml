type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  (* The current region's body: workers run [body wid] to completion.
     Guarded by [mutex]; a new region bumps [generation] so parked
     workers can tell fresh work from the region they just finished. *)
  mutable body : (int -> unit) option;
  mutable generation : int;
  mutable running : int;  (* spawned workers still inside the region *)
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
}

let jobs t = t.jobs

let worker_loop t wid =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stopped) && t.generation = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let body = Option.get t.body in
      Mutex.unlock t.mutex;
      (* [map] catches per-item exceptions itself; this is only a
         backstop so a buggy region can never wedge the pool. *)
      (try body wid with _ -> ());
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 (min 128 jobs) in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      body = None;
      generation = 0;
      running = 0;
      stopped = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

(* Run [body wid] on every worker (the caller is worker 0) and return
   once all workers have finished.  Regions never overlap: the previous
   region's join completes before the next broadcast. *)
let run_region t body =
  if t.jobs = 1 then body 0
  else begin
    Mutex.lock t.mutex;
    t.body <- Some body;
    t.generation <- t.generation + 1;
    t.running <- t.jobs - 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    (try body 0 with _ -> ());
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.body <- None;
    Mutex.unlock t.mutex
  end

let map ?(chunk = 1) t f arr =
  let chunk = max 1 chunk in
  let n = Array.length arr in
  (* [pool.worker] injection site: every item execution may be poisoned
     by the fault-injection harness.  The exception rides the normal
     funnel (min-index wins), which is exactly the invariant under
     test: a poisoned worker surfaces deterministically and never
     wedges the pool. *)
  let f wid x =
    Satg_inject.Inject.fail "pool.worker";
    f wid x
  in
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then Array.map (fun x -> f 0 x) arr
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* Lowest failing index wins, mirroring a sequential loop. *)
    let failure = Atomic.make None in
    let record_failure i e =
      let rec go () =
        let cur = Atomic.get failure in
        match cur with
        | Some (j, _) when j <= i -> ()
        | _ -> if not (Atomic.compare_and_set failure cur (Some (i, e))) then go ()
      in
      go ()
    in
    let body wid =
      let rec grab () =
        let start = Atomic.fetch_and_add cursor chunk in
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            match f wid arr.(i) with
            | r -> results.(i) <- Some r
            | exception e -> record_failure i e
          done;
          grab ()
        end
      in
      grab ()
    in
    run_region t body;
    (match Atomic.get failure with Some (_, e) -> raise e | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
