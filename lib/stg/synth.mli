(** Logic synthesis from STGs.

    Two backends mirroring the paper's two benchmark families:

    - {!complex_gate}: one atomic complex gate (sum-of-products with
      self-feedback) per output signal, computing its next-state
      function.  Under the unbounded-delay model with atomic gates this
      reproduces the behaviour of the speed-independent circuits
      Petrify emits (Table 1).

    - {!decomposed}: the same covers decomposed into 2-input
      AND / OR / NOT gates — the bounded-delay style netlists SIS emits
      (Table 2).  With [~redundant:true], every function whose minimal
      cover could glitch (it contains opposing literals) is replaced by
      its fully-redundant {e all-primes} cover before decomposition —
      redundancy inserted exactly where hazards force SIS's hand,
      reproducing the paper's finding that the redundant logic makes
      trimos-send / vbe10b / vbe6a poorly testable while the other
      circuits stay close to their Table 1 coverage.

    Both backends attach the STG's initial state as the circuit reset
    state and fail if that state is not stable (the initial marking
    must not excite an output). *)

open Satg_circuit

val next_state_covers : Stg.sg -> (string * Satg_logic.Cover.t) list
(** Minimized next-state cover per output signal, over the full signal
    code (variable order = STG signal order). *)

val prime_covers : Stg.sg -> (string * Satg_logic.Cover.t) list
(** All-primes (maximally redundant, hazard-free) covers; dc-only
    primes are dropped. *)

val hazard_free_covers : Stg.sg -> (string * Satg_logic.Cover.t) list
(** Per-function choice: all-primes where the minimal cover has
    opposing literals (hazard potential), minimal otherwise.  This is
    what {!decomposed} [~redundant:true] synthesizes. *)

val has_opposing_pair : Satg_logic.Cover.t -> bool
(** Whether two cubes of the cover oppose in some literal — the
    single-input-change hazard precondition that makes
    {!hazard_free_covers} fall back to the all-primes cover. *)

val complex_gate : Stg.t -> (Circuit.t, string) result

val decomposed : ?redundant:bool -> Stg.t -> (Circuit.t, string) result

val add_consensus : Satg_logic.Cover.t -> Satg_logic.Cover.t
(** Close the cover under pairwise consensus terms that are not already
    contained in a single existing cube (one round).  The added cubes
    are logically redundant — any test for a fault inside them may not
    exist. *)
