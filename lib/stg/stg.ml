type dir =
  | Rise
  | Fall

type transition = {
  signal : int;
  dir : dir;
  label : string;
}

type place = {
  pname : string;
  pre : int list;
  post : int list;
}

type t = {
  name : string;
  signals : string array;
  n_inputs : int;
  transitions : transition array;
  places : place array;
  marking : int array;
  init_values : bool array;
}

let input_signals t =
  Array.to_list (Array.sub t.signals 0 t.n_inputs)

let output_signals t =
  Array.to_list
    (Array.sub t.signals t.n_inputs (Array.length t.signals - t.n_inputs))

let is_input t s = s < t.n_inputs

let signal_index t nm =
  let rec find i =
    if i >= Array.length t.signals then None
    else if t.signals.(i) = nm then Some i
    else find (i + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let is_transition_token tok =
  String.contains tok '+' || String.contains tok '-'

(* "a+", "b-/2" -> (signal name, dir, full label) *)
let split_transition tok =
  let plus = String.index_opt tok '+' and minus = String.index_opt tok '-' in
  match plus, minus with
  | Some i, None -> (String.sub tok 0 i, Rise, tok)
  | None, Some i -> (String.sub tok 0 i, Fall, tok)
  | Some i, Some j when i < j -> (String.sub tok 0 i, Rise, tok)
  | Some _, Some j -> (String.sub tok 0 j, Fall, tok)
  | None, None -> fail "not a transition: %S" tok

let tokenize line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_string text =
  try
    let lines = String.split_on_char '\n' text |> List.map tokenize in
    let name = ref "stg" in
    let inputs = ref [] and outputs = ref [] in
    let graph_arcs = ref [] in
    (* (source token, target tokens) *)
    let marking_tokens = ref [] in
    let init_assigns = ref [] in
    let in_graph = ref false in
    List.iter
      (fun toks ->
        match toks with
        | [] -> ()
        | ".model" :: [ nm ] ->
          name := nm;
          in_graph := false
        | ".inputs" :: nms ->
          inputs := !inputs @ nms;
          in_graph := false
        | ".outputs" :: nms ->
          outputs := !outputs @ nms;
          in_graph := false
        | [ ".graph" ] -> in_graph := true
        | ".marking" :: rest ->
          in_graph := false;
          let joined = String.concat " " rest in
          let joined =
            String.map (fun c -> if c = '{' || c = '}' then ' ' else c) joined
          in
          marking_tokens := !marking_tokens @ tokenize joined
        | ".init" :: assigns ->
          in_graph := false;
          List.iter
            (fun a ->
              match String.split_on_char '=' a with
              | [ nm; "0" ] -> init_assigns := (nm, false) :: !init_assigns
              | [ nm; "1" ] -> init_assigns := (nm, true) :: !init_assigns
              | _ -> fail "bad .init assignment %S" a)
            assigns
        | [ ".end" ] -> in_graph := false
        | src :: dsts when !in_graph ->
          if dsts = [] then fail "arc line with no targets: %S" src;
          graph_arcs := (src, dsts) :: !graph_arcs
        | tok :: _ -> fail "unexpected token %S" tok)
      lines;
    let signals = Array.of_list (!inputs @ !outputs) in
    let n_inputs = List.length !inputs in
    let sig_index = Hashtbl.create 16 in
    Array.iteri
      (fun i nm ->
        if Hashtbl.mem sig_index nm then fail "duplicate signal %S" nm;
        Hashtbl.replace sig_index nm i)
      signals;
    (* Collect transitions (unique by label) in order of appearance. *)
    let trans_index = Hashtbl.create 32 in
    let rev_trans = ref [] in
    let n_trans = ref 0 in
    let intern_transition tok =
      match Hashtbl.find_opt trans_index tok with
      | Some i -> i
      | None ->
        let signal_name, dir, label = split_transition tok in
        let signal =
          match Hashtbl.find_opt sig_index signal_name with
          | Some s -> s
          | None -> fail "transition %S: unknown signal %S" tok signal_name
        in
        let i = !n_trans in
        incr n_trans;
        Hashtbl.replace trans_index tok i;
        rev_trans := { signal; dir; label } :: !rev_trans;
        i
    in
    (* First pass: intern all transition tokens (sources and targets). *)
    List.iter
      (fun (src, dsts) ->
        if is_transition_token src then ignore (intern_transition src);
        List.iter
          (fun d -> if is_transition_token d then ignore (intern_transition d))
          dsts)
      (List.rev !graph_arcs);
    (* Places: explicit ones by name, implicit ones per transition->
       transition arc. *)
    let places = Hashtbl.create 32 in
    (* name -> (pre ref, post ref) *)
    let place_order = ref [] in
    let place nm =
      match Hashtbl.find_opt places nm with
      | Some p -> p
      | None ->
        let p = (ref [], ref []) in
        Hashtbl.replace places nm p;
        place_order := nm :: !place_order;
        p
    in
    (* Repeating an arc line does not change the net: an implicit place
       is identified by its transition pair, and a transition is in a
       place's pre/post set or it is not.  Deduplicate here so the
       printer's one-transition-per-implicit-place invariant holds for
       every parsed net (to_string/parse_string round-trip). *)
    let add_uniq r x = if not (List.mem x !r) then r := x :: !r in
    List.iter
      (fun (src, dsts) ->
        List.iter
          (fun dst ->
            match (is_transition_token src, is_transition_token dst) with
            | true, true ->
              let ti = intern_transition src and tj = intern_transition dst in
              let pre, post = place (Printf.sprintf "<%s,%s>" src dst) in
              add_uniq pre ti;
              add_uniq post tj
            | true, false ->
              let ti = intern_transition src in
              let pre, _ = place dst in
              add_uniq pre ti
            | false, true ->
              let tj = intern_transition dst in
              let _, post = place src in
              add_uniq post tj
            | false, false -> fail "place-to-place arc %S -> %S" src dst)
          dsts)
      (List.rev !graph_arcs);
    let place_names = List.rev !place_order in
    let place_arr =
      Array.of_list
        (List.map
           (fun nm ->
             let pre, post = Hashtbl.find places nm in
             { pname = nm; pre = List.rev !pre; post = List.rev !post })
           place_names)
    in
    let place_idx = Hashtbl.create 32 in
    Array.iteri (fun i p -> Hashtbl.replace place_idx p.pname i) place_arr;
    let marking = Array.make (Array.length place_arr) 0 in
    (* Marking tokens: "<a+,b+>" or explicit place names. *)
    let rec mark_tokens = function
      | [] -> ()
      | tok :: rest ->
        (match Hashtbl.find_opt place_idx tok with
        | Some i -> marking.(i) <- marking.(i) + 1
        | None -> fail "marking refers to unknown place %S" tok);
        mark_tokens rest
    in
    mark_tokens !marking_tokens;
    let init_values = Array.make (Array.length signals) false in
    let assigned = Array.make (Array.length signals) false in
    List.iter
      (fun (nm, v) ->
        match Hashtbl.find_opt sig_index nm with
        | Some i ->
          init_values.(i) <- v;
          assigned.(i) <- true
        | None -> fail ".init: unknown signal %S" nm)
      !init_assigns;
    Array.iteri
      (fun i a -> if not a then fail ".init: signal %S not assigned" signals.(i))
      assigned;
    let transitions = Array.of_list (List.rev !rev_trans) in
    if Array.length transitions = 0 then fail "no transitions";
    Ok
      {
        name = !name;
        signals;
        n_inputs;
        transitions;
        places = place_arr;
        marking;
        init_values;
      }
  with Parse_error m -> Error m

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string t =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr ".model %s\n" t.name;
  pr ".inputs %s\n" (String.concat " " (input_signals t));
  pr ".outputs %s\n" (String.concat " " (output_signals t));
  pr ".graph\n";
  Array.iter
    (fun p ->
      let is_implicit = String.length p.pname > 0 && p.pname.[0] = '<' in
      if is_implicit then begin
        match (p.pre, p.post) with
        | [ ti ], [ tj ] ->
          pr "%s %s\n" t.transitions.(ti).label t.transitions.(tj).label
        | _ -> assert false
      end
      else begin
        List.iter
          (fun ti -> pr "%s %s\n" t.transitions.(ti).label p.pname)
          p.pre;
        List.iter
          (fun tj -> pr "%s %s\n" p.pname t.transitions.(tj).label)
          p.post
      end)
    t.places;
  let marks = ref [] in
  Array.iteri
    (fun i p ->
      for _ = 1 to t.marking.(i) do
        marks := p.pname :: !marks
      done)
    t.places;
  pr ".marking { %s }\n" (String.concat " " (List.rev !marks));
  pr ".init %s\n"
    (String.concat " "
       (Array.to_list
          (Array.mapi
             (fun i nm -> Printf.sprintf "%s=%d" nm (if t.init_values.(i) then 1 else 0))
             t.signals)));
  pr ".end\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Token game                                                          *)
(* ------------------------------------------------------------------ *)

let enabled t marking =
  let n_t = Array.length t.transitions in
  let ok = Array.make n_t true in
  Array.iteri
    (fun pi p ->
      List.iter
        (fun ti ->
          (* Transitions consuming more tokens than present are disabled;
             multiple arcs from the same place are counted. *)
          let needed =
            List.length (List.filter (fun x -> x = ti) p.post)
          in
          if marking.(pi) < needed then ok.(ti) <- false)
        p.post)
    t.places;
  List.filter (fun ti -> ok.(ti)) (List.init n_t Fun.id)

let fire t marking ti =
  let m = Array.copy marking in
  Array.iteri
    (fun pi p ->
      List.iter (fun tj -> if tj = ti then m.(pi) <- m.(pi) - 1) p.post;
      List.iter (fun tj -> if tj = ti then m.(pi) <- m.(pi) + 1) p.pre)
    t.places;
  m

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

type sg_state = {
  mark : int array;
  values : bool array;
}

type sg = {
  stg : t;
  states : sg_state array;
  excited : bool array array;
  initial_state : int;
}

let state_key st =
  String.concat ","
    (List.map string_of_int (Array.to_list st.mark))
  ^ "|"
  ^ String.init (Array.length st.values) (fun i -> if st.values.(i) then '1' else '0')

let explore ?(bound = 2) t =
  let index = Hashtbl.create 64 in
  let rev_states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let error = ref None in
  let set_error fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let intern st =
    let key = state_key st in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
      let i = !count in
      incr count;
      Hashtbl.replace index key i;
      rev_states := st :: !rev_states;
      Queue.add st queue;
      i
  in
  let initial = { mark = t.marking; values = t.init_values } in
  let (_ : int) = intern initial in
  while not (Queue.is_empty queue) && !error = None do
    let st = Queue.take queue in
    List.iter
      (fun ti ->
        let tr = t.transitions.(ti) in
        let cur = st.values.(tr.signal) in
        (match tr.dir with
        | Rise ->
          if cur then
            set_error "inconsistent: %s enabled while %s = 1" tr.label
              t.signals.(tr.signal)
        | Fall ->
          if not cur then
            set_error "inconsistent: %s enabled while %s = 0" tr.label
              t.signals.(tr.signal));
        if !error = None then begin
          let mark = fire t st.mark ti in
          if Array.exists (fun m -> m > bound || m < 0) mark then
            set_error "unbounded place after firing %s" tr.label
          else begin
            let values = Array.copy st.values in
            values.(tr.signal) <- tr.dir = Rise;
            ignore (intern { mark; values })
          end
        end)
      (enabled t st.mark)
  done;
  match !error with
  | Some m -> Error m
  | None ->
    let states = Array.of_list (List.rev !rev_states) in
    let excited =
      Array.map
        (fun st ->
          let ex = Array.make (Array.length t.signals) false in
          List.iter
            (fun ti -> ex.(t.transitions.(ti).signal) <- true)
            (enabled t st.mark);
          ex)
        states
    in
    Ok { stg = t; states; excited; initial_state = 0 }

let code_of_values values =
  Array.fold_left (fun acc v -> (acc lsl 1) lor (if v then 1 else 0)) 0 values

let check_csc sg =
  let t = sg.stg in
  let n_sig = Array.length t.signals in
  let by_code = Hashtbl.create 64 in
  let violation = ref None in
  Array.iteri
    (fun i st ->
      let code = code_of_values st.values in
      match Hashtbl.find_opt by_code code with
      | None -> Hashtbl.replace by_code code i
      | Some j ->
        (* Same code: output excitation must agree. *)
        for s = t.n_inputs to n_sig - 1 do
          if sg.excited.(i).(s) <> sg.excited.(j).(s) && !violation = None then
            violation :=
              Some
                (Printf.sprintf "CSC conflict on %s at code %s" t.signals.(s)
                   (String.init n_sig (fun b -> if st.values.(b) then '1' else '0')))
        done)
    sg.states;
  match !violation with Some m -> Error m | None -> Ok ()

let next_state_tables sg =
  let t = sg.stg in
  let n_sig = Array.length t.signals in
  if n_sig > 20 then invalid_arg "Stg.next_state_tables: too many signals";
  let reached = Hashtbl.create 64 in
  let on = Array.make n_sig [] in
  Array.iteri
    (fun i st ->
      let code = code_of_values st.values in
      if not (Hashtbl.mem reached code) then begin
        Hashtbl.replace reached code ();
        for s = 0 to n_sig - 1 do
          (* Next value: current XOR excited. *)
          let next = st.values.(s) <> sg.excited.(i).(s) in
          if next then on.(s) <- code :: on.(s)
        done
      end)
    sg.states;
  let dc =
    List.filter
      (fun code -> not (Hashtbl.mem reached code))
      (List.init (1 lsl n_sig) Fun.id)
  in
  (Array.map List.rev on, dc)

let to_dot t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph \"%s\" {\n" t.name;
  Array.iteri
    (fun i tr ->
      pr "  t%d [label=\"%s\", shape=box%s];\n" i tr.label
        (if is_input t tr.signal then ", style=filled, fillcolor=lightgrey"
         else ""))
    t.transitions;
  Array.iteri
    (fun pi p ->
      let implicit =
        String.length p.pname > 0 && p.pname.[0] = '<'
        && List.length p.pre = 1 && List.length p.post = 1
        && t.marking.(pi) = 0
      in
      if implicit then
        pr "  t%d -> t%d;\n" (List.hd p.pre) (List.hd p.post)
      else begin
        let label =
          if t.marking.(pi) = 0 then ""
          else String.concat "" (List.init t.marking.(pi) (fun _ -> "&bull;"))
        in
        pr "  p%d [label=\"%s\", shape=circle];\n" pi label;
        List.iter (fun ti -> pr "  t%d -> p%d;\n" ti pi) p.pre;
        List.iter (fun ti -> pr "  p%d -> t%d;\n" pi ti) p.post
      end)
    t.places;
  pr "}\n";
  Buffer.contents buf

let check_output_persistency sg =
  let t = sg.stg in
  let violation = ref None in
  Array.iter
    (fun st ->
      if !violation = None then begin
        let enabled_now = enabled t st.mark in
        List.iter
          (fun ti ->
            let tri = t.transitions.(ti) in
            if not (is_input t tri.signal) then
              List.iter
                (fun tj ->
                  if
                    tj <> ti
                    && t.transitions.(tj).signal <> tri.signal
                    && !violation = None
                  then begin
                    let mark' = fire t st.mark tj in
                    if not (List.mem ti (enabled t mark')) then
                      violation :=
                        Some
                          (Printf.sprintf "%s disables enabled output %s"
                             t.transitions.(tj).label tri.label)
                  end)
                enabled_now)
          enabled_now
      end)
    sg.states;
  match !violation with Some m -> Error m | None -> Ok ()
