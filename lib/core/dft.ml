open Satg_circuit
open Satg_fault
open Satg_sg

let observe = Circuit.with_extra_outputs

(* The gate whose behaviour a fault corrupts: the reading gate for an
   input fault, the stuck gate for an output fault.  Observing exactly
   that node makes the corruption locally visible. *)
let fault_gate = function
  | Fault.Input_sa { gate; _ } | Fault.Output_sa { gate; _ } -> gate

let candidate_scores g ~undetected =
  let c = Cssg.circuit g in
  let is_output i = Array.exists (fun o -> o = i) (Circuit.outputs c) in
  Array.to_list (Circuit.gates c)
  |> List.filter (fun gid -> not (is_output gid))
  |> List.map (fun gid ->
         let score =
           List.length
             (List.filter (fun f -> fault_gate f = gid) undetected)
         in
         (gid, score))
  |> List.filter (fun (_, s) -> s > 0)
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let recommend ?(budget = 2) g ~undetected =
  let rec pick chosen remaining budget =
    if budget = 0 || remaining = [] then List.rev chosen
    else
      match candidate_scores g ~undetected:remaining with
      | [] -> List.rev chosen
      | (best, _) :: _ ->
        let remaining =
          List.filter (fun f -> fault_gate f <> best) remaining
        in
        pick (best :: chosen) remaining (budget - 1)
  in
  pick [] undetected budget

type improvement = {
  before_detected : int;
  after_detected : int;
  total : int;
  points : int list;
  partial : bool;
}

let evaluate ?budget ?(config = Engine.default_config) circuit ~faults =
  let before = Engine.run ~config circuit ~faults in
  let undetected = Engine.undetected_faults before in
  let points = recommend ?budget before.Engine.cssg ~undetected in
  let after_detected, after_partial =
    if points = [] then (Engine.detected before, false)
    else begin
      let instrumented = observe circuit points in
      let after = Engine.run ~config instrumented ~faults in
      (Engine.detected after, Engine.partial after)
    end
  in
  {
    before_detected = Engine.detected before;
    after_detected;
    total = Engine.total before;
    points;
    partial = Engine.partial before || after_partial;
  }

let insert_control_points c points =
  let points = List.sort_uniq Stdlib.compare points in
  List.iter
    (fun p ->
      if p < 0 || p >= Circuit.n_nodes c then
        invalid_arg "Dft.insert_control_points: bad id";
      if Circuit.is_env c p then
        invalid_arg "Dft.insert_control_points: environment node")
    points;
  let b = Circuit.Builder.create (Circuit.name c ^ "_cp") in
  let n = Circuit.n_nodes c in
  let map = Array.make n (-1) in
  (* original inputs *)
  Array.iteri
    (fun k env ->
      let buf = Circuit.Builder.add_input b (Circuit.input_names c).(k) in
      map.(env) <- buf - 1;
      map.(Circuit.buffer_of_input c k) <- buf)
    (Circuit.inputs c);
  (* test-mode inputs *)
  let tm = Circuit.Builder.add_input b "tm" in
  let tv =
    List.map
      (fun p ->
        (p, Circuit.Builder.add_input b ("tv_" ^ Circuit.node_name c p)))
      points
  in
  (* declare original gates, then one mux per control point *)
  Array.iter
    (fun gid ->
      if map.(gid) < 0 then
        map.(gid) <-
          Circuit.Builder.declare_gate b ~name:(Circuit.node_name c gid))
    (Circuit.gates c);
  let mux_of =
    List.map
      (fun (p, tv_node) ->
        ( p,
          Circuit.Builder.add_gate b
            ~name:("cp_" ^ Circuit.node_name c p)
            Gatefunc.Mux
            [ tm; tv_node; map.(p) ] ))
      tv
  in
  let routed src =
    match List.assoc_opt src mux_of with
    | Some mux -> mux
    | None -> map.(src)
  in
  (* define original gates, reading controlled nodes through their mux *)
  Array.iter
    (fun gid ->
      let is_free_buffer =
        let rec scan k =
          k < Circuit.n_inputs c
          && (Circuit.buffer_of_input c k = gid || scan (k + 1))
        in
        scan 0
      in
      if not is_free_buffer then
        Circuit.Builder.define_gate b map.(gid) (Circuit.func c gid)
          (Circuit.fanins c gid |> Array.to_list |> List.map routed))
    (Circuit.gates c);
  Array.iter
    (fun o -> Circuit.Builder.mark_output b (routed o))
    (Circuit.outputs c);
  match Circuit.Builder.finalize b with
  | exception Invalid_argument m -> invalid_arg m
  | cp -> (
    match Circuit.initial c with
    | None -> cp
    | Some reset ->
      let st = Array.make (Circuit.n_nodes cp) false in
      Array.iteri (fun old nw -> if nw >= 0 then st.(nw) <- reset.(old)) map;
      (* tm = 0 everywhere; each tv and its mux mirror the controlled
         node so the reset state is stable *)
      List.iter
        (fun (p, tv_node) ->
          st.(tv_node) <- reset.(p);
          (match Circuit.find_node cp ("tv_" ^ Circuit.node_name c p ^ "$env") with
          | Some env -> st.(env) <- reset.(p)
          | None -> ());
          match List.assoc_opt p mux_of with
          | Some mux -> st.(mux) <- reset.(p)
          | None -> ())
        tv;
      (match Circuit.with_initial cp st with
      | cp -> cp
      | exception Invalid_argument m -> invalid_arg m))
