(** The SAT time-frame backend for three-phase ATPG — the second
    deterministic engine next to the BDD one ([--engine sat]).

    One engine owns {e one} long-lived incremental {!Satg_sat.Sat}
    instance (created lazily; in a parallel run each pool worker gets
    its own engine, so the per-run instance count is O(workers), not
    O(faults)).  The instance holds the good-machine time-frame
    unrolling ({!Satg_cnf.Cnf.Unroller}), emitted once and shared by
    every query, plus a {!Satg_cnf.Cnf.Defs} hash-consing table.

    Justification is exact-length bounded model checking over the
    explicit CSSG: "reach state [s] from reset" is asked frame by frame
    under a single assumption literal.  The first satisfiable frame is
    the BFS shortest distance, so prefixes match the explicit engine's
    lengths exactly; frames are extended lazily on UNSAT and persist
    across faults, as do learned clauses.

    Differentiation unrolls the {e product} of the good CSSG with the
    exact faulty-state set ({!Detect.exact_apply} — a deterministic
    automaton) ring by ring, emitting each step's clauses only after
    its ring of product states is complete; differentiating states are
    detected during expansion ({!Detect.exact_differs}) and queried at
    their discovery frame through a disjunction indicator under
    assumptions.  The ring discipline makes the bounded search traverse
    exactly the explicit product BFS's state space, so the
    detected/undetected partition provably coincides.

    In the default incremental mode each fault's product clauses are
    guarded by a per-fault activation literal on the shared solver:
    product frame [f] is linked to good frame [dist(start) + f] (every
    product path is a good path shifted by the activation state's BFS
    distance), so learned clauses over the shared good frames carry
    over between faults; when the fault retires, its activation is
    {!Satg_sat.Sat.retire}d — clauses deleted, variables taken out of
    the branching heap.  [create ~incremental:false] restores the
    throwaway-solver-per-fault behaviour (the bench baseline and the
    differential-testing oracle).

    Product-graph truncation at [max_product_states] is fail-soft: if
    the cap was hit and no differentiating sequence was found, the call
    raises {!Satg_guard.Guard.Exhausted}[ State_limit] instead of
    reporting "undetectable" from a graph it never finished — the
    caller degrades per fault exactly like any other guard trip.

    The per-fault {!Satg_guard.Guard} is threaded into the solver
    (probed inside unit propagation, charged one transition per
    conflict) and into product expansion (one transition per edge,
    mirroring the explicit BFS). *)

open Satg_sg

type t

val create : ?incremental:bool -> Cssg.t -> t
(** Lazy: no clauses are generated until the first query.
    [incremental] (default [true]) selects the shared-solver
    activation-literal mode; [false] builds a fresh solver per
    differentiation call. *)

val backend : t -> Three_phase.backend
(** Plug into {!Three_phase.find_test}. *)

val stats : t -> Satg_sat.Sat.stats
(** Counters accumulated over every solver this engine spawned: in
    incremental mode the one shared instance ([instances = 1]); in
    fresh mode the shared justification instance plus one per
    differentiation call — the [--stats] payload for [--engine sat]. *)

val defs_stats : t -> int * int
(** [(defined, interned)] from the hash-consing table: fresh Tseitin
    definitions emitted vs definitions served structurally. *)
