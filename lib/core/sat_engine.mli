(** The SAT time-frame backend for three-phase ATPG — the second
    deterministic engine next to the BDD one ([--engine sat]).

    Justification is exact-length bounded model checking over the
    explicit CSSG: one shared incremental {!Satg_sat.Sat} instance
    holds the time-frame unrolling ({!Satg_cnf.Cnf.Unroller}) of the
    whole graph, and "reach state [s] from reset" is asked frame by
    frame under a single assumption literal.  The first satisfiable
    frame is the BFS shortest distance, so prefixes match the explicit
    engine's lengths exactly; frames and learned clauses persist
    across faults.

    Differentiation unrolls the {e product} of the good CSSG with the
    exact faulty-state set ({!Detect.exact_apply} — a deterministic
    automaton) ring by ring, emitting each step's clauses only after
    its ring of product states is complete; differentiating states are
    detected during expansion ({!Detect.exact_differs}) and queried at
    their discovery frame through a fresh disjunction indicator under
    assumptions.  The ring discipline makes the bounded search
    traverse exactly the explicit product BFS's state space, so the
    detected/undetected partition provably coincides.

    The per-fault {!Satg_guard.Guard} is threaded into every solver
    (probed inside unit propagation, charged one transition per
    conflict) and into product expansion (one transition per edge,
    mirroring the explicit BFS); {!Satg_guard.Guard.Exhausted}
    propagates to the caller, which degrades per fault exactly like
    the other engines. *)

open Satg_sg

type t

val create : Cssg.t -> t
(** Lazy: no clauses are generated until the first query. *)

val backend : t -> Three_phase.backend
(** Plug into {!Three_phase.find_test}. *)

val stats : t -> Satg_sat.Sat.stats
(** Counters accumulated over every solver this engine spawned (the
    shared justification instance plus one per differentiation call) —
    the [--stats] payload for [--engine sat]. *)
