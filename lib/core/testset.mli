(** Test sequences and per-fault outcomes shared by all ATPG phases. *)

open Satg_guard
open Satg_circuit
open Satg_fault

type sequence = bool array list
(** Input vectors applied in order, starting from the reset state.
    Every vector must label a valid CSSG edge when applied. *)

type phase =
  | Random  (** found by random TPG *)
  | Three_phase  (** found by activation / justification / differentiation *)
  | Fault_simulation  (** covered by simulating another fault's test *)

type status =
  | Detected of {
      sequence : sequence;
      phase : phase;
    }
  | Undetected
      (** deterministic ATPG completed and found no test — under a
          truncated CSSG this means "not detectable in the explored
          region" *)
  | Aborted of Guard.reason
      (** the fault's own search blew its resource budget (even after
          one retry at reduced effort); neither detected nor proven
          undetectable *)

type outcome = {
  fault : Fault.t;
  status : status;
}

val phase_name : phase -> string
val is_detected : status -> bool
val is_aborted : status -> bool

val sequence_to_string : sequence -> string
(** Vectors separated by spaces, e.g. ["10 11 01"]. *)

val pp_outcome : Circuit.t -> Format.formatter -> outcome -> unit
