open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_pool

type justification_engine = Explicit | Bdd | Sat

type config = {
  k : int option;
  enable_random : bool;
  enable_fault_sim : bool;
  engine : justification_engine;
  collapse : bool;
  jobs : int option;
  timeout : float option;
  max_states : int option;
  max_transitions : int option;
  reorder : Satg_bdd.Bdd.reorder_mode;
  cluster_cap : int;
  random : Random_tpg.config;
  three_phase : Three_phase.config;
}

let default_config =
  {
    k = None;
    enable_random = true;
    enable_fault_sim = true;
    engine = Explicit;
    collapse = true;
    jobs = None;
    timeout = None;
    max_states = None;
    max_transitions = None;
    reorder = Satg_bdd.Bdd.Reorder_none;
    cluster_cap = Symbolic.default_cluster_cap;
    random = Random_tpg.default_config;
    three_phase = Three_phase.default_config;
  }

(* The retry config for a fault that exhausted its budget: same phases,
   roughly half the search envelope, floors keeping it meaningful. *)
let reduced_effort c =
  {
    Three_phase.max_depth = max 4 (c.Three_phase.max_depth / 2);
    max_product_states = max 64 (c.Three_phase.max_product_states / 2);
    max_activation_tries = max 2 (c.Three_phase.max_activation_tries / 2);
  }

type result = {
  circuit : Circuit.t;
  cssg : Cssg.t;
  outcomes : Testset.outcome list;
  cpu_seconds : float;
  faults_searched : int;
  bdd_stats : Satg_bdd.Bdd.stats option;
  sat_stats : Satg_sat.Sat.stats option;
  cnf_defs : (int * int) option;
}

let run ?(config = default_config) ?cssg ?guard ?pool ?settled ?on_outcome
    circuit ~faults =
  let t0 = Sys.time () in
  (* Structural fault collapsing: every phase searches one
     representative per equivalence class; afterwards each given fault
     inherits its representative's outcome.  Equivalent faults yield
     the same network function, so a test detecting the representative
     detects the whole class — the expansion is sound and the reported
     universe stays the caller's. *)
  let targets =
    if config.collapse then Fault.collapse circuit faults else faults
  in
  let run_guard =
    match guard with
    | Some g -> g
    | None ->
      Guard.create ?timeout:config.timeout ?max_states:config.max_states
        ?max_transitions:config.max_transitions ()
  in
  (* Every phase below gets a sub-guard: fresh state/transition counters
     (so one runaway fault cannot starve the others) under the shared
     absolute deadline (so --timeout bounds the whole run).  Sub-guards
     also share the run guard's cancel token, the cross-domain channel
     that lets one worker's deadline trip stop its siblings. *)
  let sub_guard () =
    Guard.sub ?max_states:config.max_states
      ?max_transitions:config.max_transitions run_guard
  in
  (* A caller-owned pool (the daemon's) is reused across runs and never
     shut down here; otherwise the config's [jobs] owns a fresh one. *)
  let owned_pool =
    match pool with
    | Some _ -> None
    | None -> Option.map (fun jobs -> Pool.create ~jobs) config.jobs
  in
  let pool = match pool with Some _ -> pool | None -> owned_pool in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown owned_pool)
  @@ fun () ->
  let g =
    match cssg with
    | Some g -> g
    | None -> (
      match pool with
      | Some pool ->
        Explicit.build_par ?k:config.k ~guard:run_guard ~pool circuit
      | None -> Explicit.build ?k:config.k ~guard:run_guard circuit)
  in
  let symbolic =
    match config.engine with
    | Bdd ->
      Some
        (Symbolic.build ~k:(Cssg.k g) ~reorder:config.reorder
           ~cluster_cap:config.cluster_cap ~guard:(sub_guard ()) circuit)
    | Explicit | Sat -> None
  in
  (* Per-worker deterministic-phase backends.  The SAT engine is a
     mutable single-domain structure, so each worker lazily builds its
     own instance over the shared (immutable) CSSG; detectability is a
     semantic property of the graph, so the detected/undetected
     partition does not depend on which instance answered.  The BDD
     manager is also single-domain, but duplicating it per worker
     means re-running the symbolic build — engine=Bdd therefore keeps
     the deterministic phase sequential under -j (see docs/PERF.md). *)
  let n_workers = match pool with Some p -> Pool.jobs p | None -> 1 in
  let worker_sats = Array.make n_workers None in
  let backend_for wid =
    match config.engine with
    | Explicit -> None
    | Bdd -> Option.map (Three_phase.symbolic_backend g) symbolic
    | Sat ->
      let se =
        match worker_sats.(wid) with
        | Some se -> se
        | None ->
          let se = Sat_engine.create g in
          worker_sats.(wid) <- Some se;
          se
      in
      Some (Sat_engine.backend se)
  in
  let status = Hashtbl.create (List.length targets) in
  (* Durable sessions: [settled] pre-loads journal-replayed outcomes
     (no [on_outcome] echo — they are already on disk); [record] is the
     single choke point through which every freshly computed outcome
     lands, so the journal receives outcomes exactly in commit order —
     the invariant that makes a journal prefix equal a prefix of the
     sequential run. *)
  (match settled with
  | None -> ()
  | Some settled ->
    List.iter
      (fun f ->
        match settled f with
        | Some st -> Hashtbl.replace status f st
        | None -> ())
      targets);
  let record f st =
    Hashtbl.replace status f st;
    match on_outcome with Some k -> k f st | None -> ()
  in
  let open_targets =
    List.filter (fun f -> not (Hashtbl.mem status f)) targets
  in
  (* Phase 1: random TPG.  Each walk fault-simulates the whole
     remaining list in one multi-word bit-parallel pack, dropping
     machines as they are detected.  Runs even over a truncated graph
     (its edges are all genuine); skipped only if the deadline is
     already gone.  A fault's detection by walk [w] is a property of
     (graph, walk) alone — lane dropping never changes which walks
     catch a surviving fault — so running over [open_targets] instead
     of the full list yields the same per-fault statuses a fresh run
     would: resume stays bit-identical. *)
  let remaining =
    if config.enable_random then
      match
        Guard.guarded (sub_guard ()) (fun () ->
            Random_tpg.run ~config:config.random g ~faults:open_targets)
      with
      | Ok (detected, remaining) ->
        List.iter
          (fun (f, seq) ->
            record f
              (Testset.Detected { sequence = seq; phase = Testset.Random }))
          detected;
        remaining
      | Error _ -> open_targets
    else open_targets
  in
  (* Phase 2: three-phase ATPG per fault, with fault simulation of each
     found test over the faults still pending (one pack per test, all
     pending faults at once).  Each fault searches
     under its own sub-guard; exhaustion aborts that fault only, after
     one retry at reduced effort (explicit justification, smaller
     search envelope).  A blown deadline is global, so it skips the
     retry. *)
  let attempt tp_config backend f =
    match
      Three_phase.find_test ~config:tp_config ~guard:(sub_guard ()) ?backend g
        f
    with
    | Some seq -> `Found seq
    | None -> `Not_found
    | exception Guard.Exhausted r -> `Exhausted r
  in
  let find backend f =
    match attempt config.three_phase backend f with
    | `Exhausted ((Guard.Timeout | Guard.Interrupt) as r) -> `Aborted r
    | `Exhausted _ -> (
      (* the retry always runs the explicit algorithms: smaller search
         envelope, no chance of a second backend blowup *)
      match attempt (reduced_effort config.three_phase) None f with
      | `Exhausted r -> `Aborted r
      | (`Found _ | `Not_found) as x -> x)
    | (`Found _ | `Not_found) as x -> x
  in
  (* Commit one fault's search result, replaying the sequential
     semantics: a found test fault-simulates the faults still pending
     and the caught ones leave the list.  Returns the pruned tail. *)
  let commit f rest result =
    match result with
    | `Aborted r ->
      record f (Testset.Aborted r);
      rest
    | `Not_found ->
      record f Testset.Undetected;
      rest
    | `Found seq ->
      record f
        (Testset.Detected { sequence = seq; phase = Testset.Three_phase });
      if config.enable_fault_sim then begin
        let caught, pending = Detect.sweep g seq rest in
        List.iter
          (fun f' ->
            record f'
              (Testset.Detected
                 { sequence = seq; phase = Testset.Fault_simulation }))
          caught;
        pending
      end
      else rest
  in
  let rec deterministic_seq backend = function
    | [] -> ()
    | f :: rest ->
      if Hashtbl.mem status f then deterministic_seq backend rest
      else deterministic_seq backend (commit f rest (find backend f))
  in
  (* Speculative wave parallelism: search a fixed-size prefix of the
     pending list concurrently, then merge the results in list order
     through [commit] — exactly the sequential loop, so when fault
     simulation sweeps a wave member away its speculative result is
     simply discarded.  Outcomes are therefore identical for every
     [-j], and (for the explicit and BDD engines) to the sequential
     path; a SAT worker's witness sequence may depend on its private
     solver history, so there the detected/undetected partition is the
     j-invariant, not the sequences.  A worker that hits the global
     deadline cancels the guard family so its siblings stop promptly. *)
  let search wid f =
    let r = find (backend_for wid) f in
    (match r with
    | `Aborted ((Guard.Timeout | Guard.Interrupt) as reason) ->
      Guard.cancel run_guard reason
    | `Aborted _ | `Not_found | `Found _ -> ());
    r
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let deterministic_par pool pending =
    let wave_size = 2 * Pool.jobs pool in
    let rec waves pending =
      match pending with
      | [] -> ()
      | _ ->
        let wave = Array.of_list (take wave_size pending) in
        let results = Pool.map pool search wave in
        let tbl = Hashtbl.create (Array.length wave) in
        Array.iteri (fun i f -> Hashtbl.replace tbl f results.(i)) wave;
        let rec merge = function
          | [] -> []
          | f :: rest as l -> (
            match Hashtbl.find_opt tbl f with
            | None -> l (* first fault past this wave: start the next *)
            | Some r ->
              if Hashtbl.mem status f then merge rest
              else merge (commit f rest r))
        in
        waves (merge pending)
    in
    waves pending
  in
  (match pool with
  | Some p when config.engine <> Bdd -> deterministic_par p remaining
  | Some _ | None -> deterministic_seq (backend_for 0) remaining);
  let by_class = Hashtbl.create (List.length targets) in
  if config.collapse then
    List.iter
      (fun t ->
        match Hashtbl.find_opt status t with
        | Some s -> Hashtbl.replace by_class (Fault.representative circuit t) s
        | None -> ())
      targets;
  let outcomes =
    List.map
      (fun f ->
        let s =
          match Hashtbl.find_opt status f with
          | Some s -> Some s
          | None when config.collapse ->
            Hashtbl.find_opt by_class (Fault.representative circuit f)
          | None -> None
        in
        { Testset.fault = f; status = Option.value s ~default:Testset.Undetected })
      faults
  in
  {
    circuit;
    cssg = g;
    outcomes;
    cpu_seconds = Sys.time () -. t0;
    faults_searched = List.length targets;
    (* sampled after all phases, so justification traffic is included *)
    bdd_stats = Option.map Symbolic.bdd_stats symbolic;
    sat_stats =
      (match config.engine with
      | Sat ->
        (* summed over the per-worker engines (one engine total when
           sequential), so -j reports the run's whole SAT traffic *)
        Some
          (Array.fold_left
             (fun acc se ->
               match se with
               | Some se -> Satg_sat.Sat.add_stats acc (Sat_engine.stats se)
               | None -> acc)
             Satg_sat.Sat.zero_stats worker_sats)
      | Explicit | Bdd -> None);
    cnf_defs =
      (match config.engine with
      | Sat ->
        Some
          (Array.fold_left
             (fun (d, i) se ->
               match se with
               | Some se ->
                 let d', i' = Sat_engine.defs_stats se in
                 (d + d', i + i')
               | None -> (d, i))
             (0, 0) worker_sats)
      | Explicit | Bdd -> None);
  }

(* The counting helpers work over raw outcome lists so that the
   durable-session layer can render the very same summary from a cache
   object, without an [Engine.result] in hand. *)
let count_detected outcomes =
  List.length
    (List.filter (fun o -> Testset.is_detected o.Testset.status) outcomes)

let count_aborted outcomes =
  List.length
    (List.filter (fun o -> Testset.is_aborted o.Testset.status) outcomes)

let count_detected_by outcomes phase =
  List.length
    (List.filter
       (fun o ->
         match o.Testset.status with
         | Testset.Detected { phase = p; _ } -> p = phase
         | Testset.Undetected | Testset.Aborted _ -> false)
       outcomes)

let aborted_of outcomes =
  List.filter_map
    (fun o ->
      match o.Testset.status with
      | Testset.Aborted reason -> Some (o.Testset.fault, reason)
      | Testset.Detected _ | Testset.Undetected -> None)
    outcomes

let total r = List.length r.outcomes
let detected r = count_detected r.outcomes
let aborted r = count_aborted r.outcomes
let detected_by r phase = count_detected_by r.outcomes phase

let coverage_pct r =
  if total r = 0 then 100.0
  else 100.0 *. float_of_int (detected r) /. float_of_int (total r)

let undetected_faults r =
  List.filter_map
    (fun o ->
      match o.Testset.status with
      | Testset.Undetected -> Some o.Testset.fault
      | Testset.Detected _ | Testset.Aborted _ -> None)
    r.outcomes

let aborted_faults r = aborted_of r.outcomes
let truncated r = Cssg.truncated r.cssg
let partial r = truncated r <> None || aborted r > 0

let pp_summary_of ~circuit ~outcomes ~faults_searched ~truncated ~cpu_seconds
    fmt =
  let total = List.length outcomes in
  let detected = count_detected outcomes in
  let coverage =
    if total = 0 then 100.0
    else 100.0 *. float_of_int detected /. float_of_int total
  in
  Format.fprintf fmt
    "%s: %d/%d faults detected (%.2f%%) [rnd %d, 3-ph %d, sim %d] in %.2fs"
    (Circuit.name circuit) detected total coverage
    (count_detected_by outcomes Testset.Random)
    (count_detected_by outcomes Testset.Three_phase)
    (count_detected_by outcomes Testset.Fault_simulation)
    cpu_seconds;
  if faults_searched <> total then
    Format.fprintf fmt
      "@\n  fault universe: %d, searched as %d after structural collapsing"
      total faults_searched;
  (match truncated with
  | Some reason ->
    Format.fprintf fmt "@\n  CSSG truncated (%s): coverage is a lower bound"
      (Guard.reason_to_string reason)
  | None -> ());
  match aborted_of outcomes with
  | [] -> ()
  | fs ->
    Format.fprintf fmt "@\n  aborted (%d): %s" (List.length fs)
      (String.concat ", "
         (List.map
            (fun (f, reason) ->
              Printf.sprintf "%s [%s]"
                (Fault.to_string circuit f)
                (Guard.reason_to_string reason))
            fs))

let pp_summary fmt r =
  pp_summary_of ~circuit:r.circuit ~outcomes:r.outcomes
    ~faults_searched:r.faults_searched ~truncated:(truncated r)
    ~cpu_seconds:r.cpu_seconds fmt
