open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg

type justification_engine = Explicit | Bdd | Sat

type config = {
  k : int option;
  enable_random : bool;
  enable_fault_sim : bool;
  engine : justification_engine;
  collapse : bool;
  timeout : float option;
  max_states : int option;
  max_transitions : int option;
  random : Random_tpg.config;
  three_phase : Three_phase.config;
}

let default_config =
  {
    k = None;
    enable_random = true;
    enable_fault_sim = true;
    engine = Explicit;
    collapse = true;
    timeout = None;
    max_states = None;
    max_transitions = None;
    random = Random_tpg.default_config;
    three_phase = Three_phase.default_config;
  }

(* The retry config for a fault that exhausted its budget: same phases,
   roughly half the search envelope, floors keeping it meaningful. *)
let reduced_effort c =
  {
    Three_phase.max_depth = max 4 (c.Three_phase.max_depth / 2);
    max_product_states = max 64 (c.Three_phase.max_product_states / 2);
    max_activation_tries = max 2 (c.Three_phase.max_activation_tries / 2);
  }

type result = {
  circuit : Circuit.t;
  cssg : Cssg.t;
  outcomes : Testset.outcome list;
  cpu_seconds : float;
  faults_searched : int;
  bdd_stats : Satg_bdd.Bdd.stats option;
  sat_stats : Satg_sat.Sat.stats option;
}

let run ?(config = default_config) ?cssg circuit ~faults =
  let t0 = Sys.time () in
  (* Structural fault collapsing: every phase searches one
     representative per equivalence class; afterwards each given fault
     inherits its representative's outcome.  Equivalent faults yield
     the same network function, so a test detecting the representative
     detects the whole class — the expansion is sound and the reported
     universe stays the caller's. *)
  let targets =
    if config.collapse then Fault.collapse circuit faults else faults
  in
  let run_guard =
    Guard.create ?timeout:config.timeout ?max_states:config.max_states
      ?max_transitions:config.max_transitions ()
  in
  (* Every phase below gets a sub-guard: fresh state/transition counters
     (so one runaway fault cannot starve the others) under the shared
     absolute deadline (so --timeout bounds the whole run). *)
  let sub_guard () =
    Guard.sub ?max_states:config.max_states
      ?max_transitions:config.max_transitions run_guard
  in
  let g =
    match cssg with
    | Some g -> g
    | None -> Explicit.build ?k:config.k ~guard:run_guard circuit
  in
  let symbolic =
    match config.engine with
    | Bdd -> Some (Symbolic.build ~k:(Cssg.k g) ~guard:(sub_guard ()) circuit)
    | Explicit | Sat -> None
  in
  let sat_engine =
    match config.engine with
    | Sat -> Some (Sat_engine.create g)
    | Explicit | Bdd -> None
  in
  let backend =
    match (symbolic, sat_engine) with
    | Some sym, _ -> Some (Three_phase.symbolic_backend g sym)
    | None, Some se -> Some (Sat_engine.backend se)
    | None, None -> None
  in
  let status = Hashtbl.create (List.length targets) in
  (* Phase 1: random TPG.  Each walk fault-simulates the whole
     remaining list in one multi-word bit-parallel pack, dropping
     machines as they are detected.  Runs even over a truncated graph
     (its edges are all genuine); skipped only if the deadline is
     already gone. *)
  let remaining =
    if config.enable_random then
      match
        Guard.guarded (sub_guard ()) (fun () ->
            Random_tpg.run ~config:config.random g ~faults:targets)
      with
      | Ok (detected, remaining) ->
        List.iter
          (fun (f, seq) ->
            Hashtbl.replace status f
              (Testset.Detected { sequence = seq; phase = Testset.Random }))
          detected;
        remaining
      | Error _ -> targets
    else targets
  in
  (* Phase 2: three-phase ATPG per fault, with fault simulation of each
     found test over the faults still pending (one pack per test, all
     pending faults at once).  Each fault searches
     under its own sub-guard; exhaustion aborts that fault only, after
     one retry at reduced effort (explicit justification, smaller
     search envelope).  A blown deadline is global, so it skips the
     retry. *)
  let attempt tp_config backend f =
    match
      Three_phase.find_test ~config:tp_config ~guard:(sub_guard ()) ?backend g
        f
    with
    | Some seq -> `Found seq
    | None -> `Not_found
    | exception Guard.Exhausted r -> `Exhausted r
  in
  let find f =
    match attempt config.three_phase backend f with
    | `Exhausted Guard.Timeout -> `Aborted Guard.Timeout
    | `Exhausted _ -> (
      (* the retry always runs the explicit algorithms: smaller search
         envelope, no chance of a second backend blowup *)
      match attempt (reduced_effort config.three_phase) None f with
      | `Exhausted r -> `Aborted r
      | (`Found _ | `Not_found) as x -> x)
    | (`Found _ | `Not_found) as x -> x
  in
  let rec deterministic = function
    | [] -> ()
    | f :: rest ->
      if Hashtbl.mem status f then deterministic rest
      else begin
        match find f with
        | `Aborted r ->
          Hashtbl.replace status f (Testset.Aborted r);
          deterministic rest
        | `Not_found ->
          Hashtbl.replace status f Testset.Undetected;
          deterministic rest
        | `Found seq ->
          Hashtbl.replace status f
            (Testset.Detected { sequence = seq; phase = Testset.Three_phase });
          let rest =
            if config.enable_fault_sim then begin
              let caught, pending = Detect.sweep g seq rest in
              List.iter
                (fun f' ->
                  Hashtbl.replace status f'
                    (Testset.Detected
                       { sequence = seq; phase = Testset.Fault_simulation }))
                caught;
              pending
            end
            else rest
          in
          deterministic rest
      end
  in
  deterministic remaining;
  let by_class = Hashtbl.create (List.length targets) in
  if config.collapse then
    List.iter
      (fun t ->
        match Hashtbl.find_opt status t with
        | Some s -> Hashtbl.replace by_class (Fault.representative circuit t) s
        | None -> ())
      targets;
  let outcomes =
    List.map
      (fun f ->
        let s =
          match Hashtbl.find_opt status f with
          | Some s -> Some s
          | None when config.collapse ->
            Hashtbl.find_opt by_class (Fault.representative circuit f)
          | None -> None
        in
        { Testset.fault = f; status = Option.value s ~default:Testset.Undetected })
      faults
  in
  {
    circuit;
    cssg = g;
    outcomes;
    cpu_seconds = Sys.time () -. t0;
    faults_searched = List.length targets;
    (* sampled after all phases, so justification traffic is included *)
    bdd_stats = Option.map Symbolic.bdd_stats symbolic;
    sat_stats = Option.map Sat_engine.stats sat_engine;
  }

let total r = List.length r.outcomes

let detected r =
  List.length
    (List.filter (fun o -> Testset.is_detected o.Testset.status) r.outcomes)

let aborted r =
  List.length
    (List.filter (fun o -> Testset.is_aborted o.Testset.status) r.outcomes)

let detected_by r phase =
  List.length
    (List.filter
       (fun o ->
         match o.Testset.status with
         | Testset.Detected { phase = p; _ } -> p = phase
         | Testset.Undetected | Testset.Aborted _ -> false)
       r.outcomes)

let coverage_pct r =
  if total r = 0 then 100.0
  else 100.0 *. float_of_int (detected r) /. float_of_int (total r)

let undetected_faults r =
  List.filter_map
    (fun o ->
      match o.Testset.status with
      | Testset.Undetected -> Some o.Testset.fault
      | Testset.Detected _ | Testset.Aborted _ -> None)
    r.outcomes

let aborted_faults r =
  List.filter_map
    (fun o ->
      match o.Testset.status with
      | Testset.Aborted reason -> Some (o.Testset.fault, reason)
      | Testset.Detected _ | Testset.Undetected -> None)
    r.outcomes

let truncated r = Cssg.truncated r.cssg
let partial r = truncated r <> None || aborted r > 0

let pp_summary fmt r =
  Format.fprintf fmt
    "%s: %d/%d faults detected (%.2f%%) [rnd %d, 3-ph %d, sim %d] in %.2fs"
    (Circuit.name r.circuit) (detected r) (total r) (coverage_pct r)
    (detected_by r Testset.Random)
    (detected_by r Testset.Three_phase)
    (detected_by r Testset.Fault_simulation)
    r.cpu_seconds;
  if r.faults_searched <> total r then
    Format.fprintf fmt
      "@\n  fault universe: %d, searched as %d after structural collapsing"
      (total r) r.faults_searched;
  (match truncated r with
  | Some reason ->
    Format.fprintf fmt "@\n  CSSG truncated (%s): coverage is a lower bound"
      (Guard.reason_to_string reason)
  | None -> ());
  match aborted_faults r with
  | [] -> ()
  | fs ->
    Format.fprintf fmt "@\n  aborted (%d): %s" (List.length fs)
      (String.concat ", "
         (List.map
            (fun (f, reason) ->
              Printf.sprintf "%s [%s]"
                (Fault.to_string r.circuit f)
                (Guard.reason_to_string reason))
            fs))
