(** Gross gate-delay faults — the fault-model extension the paper lists
    as future work (§7: "covering a wider spectrum of fault models
    (e.g. delay faults)").

    A gross delay fault makes one transition direction of one gate
    slower than the test cycle: whenever the gate is excited towards
    the slow value, it simply fails to fire within the cycle (the
    standard gross-delay abstraction; the gate may still switch the
    other way).  The faulty machine is explored exactly, like the
    stuck-at machinery: the set of possible faulty states is tracked,
    and a test is conclusive only when every member disagrees with the
    good machine on the observed outputs.

    Because the CSSG already guarantees that every applied vector
    settles in the {e good} machine within [k] firings, a detected
    delay fault is observable by the same synchronous tester at the
    same cycle time. *)

open Satg_guard
open Satg_circuit
open Satg_sg

type t = {
  gate : int;  (** gate node id *)
  slow_to : bool;  (** [true] = slow-to-rise, [false] = slow-to-fall *)
}

val universe : Circuit.t -> t list
(** Both directions for every gate (buffers included: slow input
    wires). *)

val to_string : Circuit.t -> t -> string
(** e.g. ["y/slow-rise"]. *)

val find_test :
  ?max_depth:int ->
  ?max_states:int ->
  ?max_set:int ->
  ?guard:Guard.t ->
  Cssg.t ->
  t ->
  Testset.sequence option
(** Breadth-first search over the product of the good CSSG and the
    exact set of delayed-machine states; the same bounds as
    {!Three_phase.config}.  [guard] is charged one transition per edge
    expansion and raises {!Guard.Exhausted} when spent. *)

val check : Cssg.t -> t -> Testset.sequence -> bool
(** Replay a sequence against the delayed machine (exact sets). *)

type status =
  | Found of Testset.sequence
  | Not_found
  | Aborted of Guard.reason
      (** the run-wide budget ran out at or before this fault *)

type result = {
  circuit : Circuit.t;
  outcomes : (t * status) list;
  cpu_seconds : float;
}

val run : ?max_depth:int -> ?max_states:int -> ?guard:Guard.t -> Cssg.t -> result
(** [guard] is a budget for the whole sweep; faults reached after it
    trips are recorded as {!Aborted} rather than raising. *)

val detected : result -> int

val aborted : result -> int
(** Outcomes cut short by the resource budget. *)

val total : result -> int
val pp_summary : Format.formatter -> result -> unit
