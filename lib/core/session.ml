open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg

type universe = Input | Output | Both

let universe_name = function
  | Input -> "input"
  | Output -> "output"
  | Both -> "both"

let universe_of_name = function
  | "input" -> Some Input
  | "output" -> Some Output
  | "both" -> Some Both
  | _ -> None

let faults_of c = function
  | Input -> Fault.universe_input_sa c
  | Output -> Fault.universe_output_sa c
  | Both -> Fault.universe_input_sa c @ Fault.universe_output_sa c

type summary = {
  faults_searched : int;
  truncated : Guard.reason option;
  cpu_seconds : float;
  stats_line : string;
  outcomes : (Fault.t * Testset.status) list;
}

let summary_of_result (r : Engine.result) =
  {
    faults_searched = r.Engine.faults_searched;
    truncated = Engine.truncated r;
    cpu_seconds = r.Engine.cpu_seconds;
    stats_line = Format.asprintf "%a" Cssg.pp_stats r.Engine.cssg;
    outcomes =
      List.map
        (fun o -> (o.Testset.fault, o.Testset.status))
        r.Engine.outcomes;
  }

let degraded s =
  s.truncated <> None
  || List.exists (fun (_, st) -> Testset.is_aborted st) s.outcomes

let run ?guard ?pool ?cssg ?settled ?on_outcome ~config circuit universe =
  Engine.run ~config ?cssg ?guard ?pool ?settled ?on_outcome circuit
    ~faults:(faults_of circuit universe)

(* The one rendering path: a live run is first condensed to a summary,
   so cached hits and daemon responses replay the very same bytes. *)
let render ?(verbose = false) fmt c s =
  let outcomes =
    List.map (fun (fault, status) -> { Testset.fault; status }) s.outcomes
  in
  if verbose then
    List.iter
      (fun o -> Format.fprintf fmt "%a@." (Testset.pp_outcome c) o)
      outcomes;
  Format.fprintf fmt "%s@." s.stats_line;
  Format.fprintf fmt "%t@."
    (Engine.pp_summary_of ~circuit:c ~outcomes
       ~faults_searched:s.faults_searched ~truncated:s.truncated
       ~cpu_seconds:s.cpu_seconds)

let check_report c =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "%a@." Circuit.pp_stats c;
  let cyclic = Satg_circuit.Structure.cyclic_gates c in
  Format.fprintf fmt
    "feedback gates: %d; longest acyclic path: %d; default k: %d@."
    (List.length cyclic)
    (Satg_circuit.Structure.longest_path c)
    (Satg_circuit.Structure.default_k c);
  (match Circuit.initial c with
  | Some s ->
    Format.fprintf fmt "reset state: %s (stable)@." (Circuit.state_to_string c s)
  | None -> Format.fprintf fmt "no reset state@.");
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* --- canonical configuration fields --------------------------------------- *)

let engine_name = function
  | Engine.Explicit -> "explicit"
  | Engine.Bdd -> "bdd"
  | Engine.Sat -> "sat"

let engine_of_name = function
  | "explicit" -> Some Engine.Explicit
  | "bdd" -> Some Engine.Bdd
  | "sat" -> Some Engine.Sat
  | _ -> None

let reorder_name = function
  | Satg_bdd.Bdd.Reorder_none -> "none"
  | Satg_bdd.Bdd.Reorder_sift -> "sift"

let reorder_of_name = function
  | "none" -> Some Satg_bdd.Bdd.Reorder_none
  | "sift" -> Some Satg_bdd.Bdd.Reorder_sift
  | _ -> None

(* The field list is the one exhaustive enumeration of what determines
   an outcome partition: the store's cache key and the daemon's wire
   format both render it, so the two can never drift apart.  [jobs] is
   excluded by the determinism contract; field order is fixed (the
   cache key hashes the rendering). *)
let opt_int = function None -> "-" | Some n -> string_of_int n
let opt_float = function None -> "-" | Some f -> Printf.sprintf "%.17g" f

let config_fields ~universe (c : Engine.config) =
  [
    ("universe", universe_name universe);
    ("k", opt_int c.Engine.k);
    ("random", string_of_bool c.Engine.enable_random);
    ("fault-sim", string_of_bool c.Engine.enable_fault_sim);
    ("engine", engine_name c.Engine.engine);
    ("collapse", string_of_bool c.Engine.collapse);
    ("timeout", opt_float c.Engine.timeout);
    ("max-states", opt_int c.Engine.max_states);
    ("max-transitions", opt_int c.Engine.max_transitions);
    ("reorder", reorder_name c.Engine.reorder);
    ("cluster-cap", string_of_int c.Engine.cluster_cap);
    ("walks", string_of_int c.Engine.random.Random_tpg.walks);
    ("walk-length", string_of_int c.Engine.random.Random_tpg.walk_length);
    ("seed", string_of_int c.Engine.random.Random_tpg.seed);
    ("max-depth", string_of_int c.Engine.three_phase.Three_phase.max_depth);
    ( "max-product-states",
      string_of_int c.Engine.three_phase.Three_phase.max_product_states );
    ( "max-activation-tries",
      string_of_int c.Engine.three_phase.Three_phase.max_activation_tries );
  ]

let config_of_fields fields =
  let tbl = Hashtbl.create 16 in
  let dup = ref false in
  List.iter
    (fun (k, v) ->
      if Hashtbl.mem tbl k then dup := true else Hashtbl.add tbl k v)
    fields;
  let ( let* ) = Option.bind in
  let field k = Hashtbl.find_opt tbl k in
  let int_field k = Option.bind (field k) int_of_string_opt in
  let bool_field k = Option.bind (field k) bool_of_string_opt in
  let opt_int_field k =
    match field k with
    | Some "-" -> Some None
    | Some s -> Option.map Option.some (int_of_string_opt s)
    | None -> None
  in
  let opt_float_field k =
    match field k with
    | Some "-" -> Some None
    | Some s -> Option.map Option.some (float_of_string_opt s)
    | None -> None
  in
  if !dup then None
  else
    let* universe = Option.bind (field "universe") universe_of_name in
    let* k = opt_int_field "k" in
    let* enable_random = bool_field "random" in
    let* enable_fault_sim = bool_field "fault-sim" in
    let* engine = Option.bind (field "engine") engine_of_name in
    let* collapse = bool_field "collapse" in
    let* timeout = opt_float_field "timeout" in
    let* max_states = opt_int_field "max-states" in
    let* max_transitions = opt_int_field "max-transitions" in
    let* reorder = Option.bind (field "reorder") reorder_of_name in
    let* cluster_cap = int_field "cluster-cap" in
    let* walks = int_field "walks" in
    let* walk_length = int_field "walk-length" in
    let* seed = int_field "seed" in
    let* max_depth = int_field "max-depth" in
    let* max_product_states = int_field "max-product-states" in
    let* max_activation_tries = int_field "max-activation-tries" in
    Some
      ( universe,
        {
          Engine.k;
          enable_random;
          enable_fault_sim;
          engine;
          collapse;
          jobs = None;
          timeout;
          max_states;
          max_transitions;
          reorder;
          cluster_cap;
          random = { Random_tpg.walks; walk_length; seed };
          three_phase =
            { Three_phase.max_depth; max_product_states; max_activation_tries };
        } )
