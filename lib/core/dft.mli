(** Design-for-test assistance: observation-point insertion.

    The paper notes (§6) that the low-coverage redundant circuits can
    be helped by partial scan or similar DFT measures, and lists
    automatic selection of such signals as future work (§7).  This
    module implements the observation-point flavour: an internal gate
    output is routed to an extra primary output (a cheap test pin), so
    faults that were activated but never propagated become visible.

    Observation points do not change the circuit's behaviour, so the
    CSSG states and edges are unchanged — only the observed output
    vector widens.  That makes insertion safe: every previously valid
    test remains valid. *)

open Satg_circuit
open Satg_fault
open Satg_sg

val observe : Circuit.t -> int list -> Circuit.t
(** Add the given gate nodes as outputs (alias of
    {!Satg_circuit.Circuit.with_extra_outputs}). *)

val candidate_scores :
  Cssg.t -> undetected:Fault.t list -> (int * int) list
(** For every internal (non-output) gate, how many undetected faults
    corrupt that gate's output (its own output stuck-at faults and the
    stuck-at faults on its input pins); sorted by descending score,
    zero-score candidates dropped. *)

val recommend :
  ?budget:int -> Cssg.t -> undetected:Fault.t list -> int list
(** Greedy selection of up to [budget] (default 2) observation points:
    repeatedly pick the highest-scoring candidate, then drop the faults
    it makes locally visible. *)

type improvement = {
  before_detected : int;
  after_detected : int;
  total : int;
  points : int list;  (** chosen observation nodes *)
  partial : bool;
      (** either ATPG run hit a resource ceiling (truncated CSSG or
          aborted faults), so the coverages are lower bounds *)
}

val evaluate :
  ?budget:int ->
  ?config:Engine.config ->
  Circuit.t ->
  faults:Fault.t list ->
  improvement
(** Run ATPG, pick observation points for what is left, re-run on the
    instrumented circuit, and report both coverages.  The [config]
    (including [k] and the resource limits) applies to both runs. *)

val insert_control_points : Circuit.t -> int list -> Circuit.t
(** Controllability DFT: for every listed gate node, insert a test
    multiplexer [MUX(tm, tv_node, node)] and reroute all readers (and
    the primary-output observation) of the node through it.  One shared
    test-mode input [tm] plus one value input [tv_<name>] per point are
    added; with [tm = 0] the circuit behaves exactly as before (the
    reset state sets [tm = 0]).  Unlike observation points this changes
    the state space — the CSSG must be rebuilt.
    @raise Invalid_argument on environment nodes or bad ids. *)
