open Satg_guard
open Satg_circuit
open Satg_sim
open Satg_sg

type t = {
  gate : int;
  slow_to : bool;
}

let universe c =
  Array.fold_right
    (fun gid acc ->
      { gate = gid; slow_to = false } :: { gate = gid; slow_to = true } :: acc)
    (Circuit.gates c) []

let to_string c f =
  Printf.sprintf "%s/slow-%s"
    (Circuit.node_name c f.gate)
    (if f.slow_to then "rise" else "fall")

(* The delayed machine: the faulty gate never completes a transition to
   [slow_to] within a cycle. *)
let can_fire c f s g =
  not (g = f.gate && Circuit.eval_gate c s g = f.slow_to && s.(g) <> f.slow_to)

let dedup c states =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let key = Circuit.state_to_string c s in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    states

let step ~max_set g f states v =
  let c = Cssg.circuit g in
  let k = Cssg.k g in
  let out = ref [] in
  try
    List.iter
      (fun s ->
        let s1 = Circuit.apply_input_vector c s v in
        let finals =
          Async_sim.states_after ~max_frontier:max_set ~can_fire:(can_fire c f)
            c ~k s1
        in
        out := finals @ !out;
        if List.length !out > 8 * max_set then raise Async_sim.Frontier_limit)
      states;
    let deduped = dedup c !out in
    if List.length deduped > max_set then None else Some deduped
  with Async_sim.Frontier_limit -> None

let differs g i states =
  let c = Cssg.circuit g in
  let expected = Circuit.output_values c (Cssg.state g i) in
  states <> []
  && List.for_all (fun s -> Circuit.output_values c s <> expected) states

(* The delayed gate holds its (correct) reset value, so the faulty
   machine starts exactly in the reset state. *)
let start g =
  let c = Cssg.circuit g in
  match Circuit.initial c with
  | Some s -> [ s ]
  | None -> invalid_arg "Delay_fault: circuit has no reset state"


let set_key c states =
  List.map (Circuit.state_to_string c) states
  |> List.sort Stdlib.compare |> String.concat "|"

let find_test ?(max_depth = 24) ?(max_states = 4_000) ?(max_set = 128)
    ?(guard = Guard.none) g f =
  Guard.check_time guard;
  let c = Cssg.circuit g in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let result = ref None in
  (match Cssg.initial g with
  | i :: _ ->
    let f0 = start g in
    Hashtbl.replace seen (i, set_key c f0) ();
    Queue.add (i, f0, [], 0) queue
  | [] -> ());
  while !result = None && not (Queue.is_empty queue) do
    let i, fsts, path, depth = Queue.take queue in
    if depth < max_depth then
      List.iter
        (fun e ->
          if !result = None && Hashtbl.length seen < max_states then begin
            Guard.spend_transition guard;
            let j = e.Cssg.target in
            match step ~max_set g f fsts e.Cssg.vector with
            | None -> ()
            | Some fsts' ->
              if differs g j fsts' then
                result := Some (List.rev (e.Cssg.vector :: path))
              else begin
                let key = (j, set_key c fsts') in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  Queue.add (j, fsts', e.Cssg.vector :: path, depth + 1) queue
                end
              end
          end)
        (Cssg.successors g i)
  done;
  !result

let check g f seq =
  match Detect.good_trace g seq with
  | None -> false
  | Some trace ->
    let rec go trace fsts vectors =
      match trace with
      | [] -> false
      | i :: trace' ->
        differs g i fsts
        ||
        (match vectors with
        | [] -> false
        | v :: vs -> (
          match step ~max_set:128 g f fsts v with
          | None -> false
          | Some fsts' -> go trace' fsts' vs))
    in
    go trace (start g) seq

type status =
  | Found of Testset.sequence
  | Not_found
  | Aborted of Guard.reason

type result = {
  circuit : Circuit.t;
  outcomes : (t * status) list;
  cpu_seconds : float;
}

let run ?max_depth ?max_states ?(guard = Guard.none) g =
  let t0 = Sys.time () in
  let c = Cssg.circuit g in
  let outcomes =
    List.map
      (fun f ->
        match
          Guard.guarded guard (fun () ->
              find_test ?max_depth ?max_states ~guard g f)
        with
        | Ok (Some seq) -> (f, Found seq)
        | Ok None -> (f, Not_found)
        | Error reason -> (f, Aborted reason))
      (universe c)
  in
  { circuit = c; outcomes; cpu_seconds = Sys.time () -. t0 }

let detected r =
  List.length
    (List.filter (fun (_, s) -> match s with Found _ -> true | _ -> false)
       r.outcomes)

let aborted r =
  List.length
    (List.filter (fun (_, s) -> match s with Aborted _ -> true | _ -> false)
       r.outcomes)

let total r = List.length r.outcomes

let pp_summary fmt r =
  Format.fprintf fmt "%s: %d/%d gross delay faults detected (%.2fs)"
    (Circuit.name r.circuit) (detected r) (total r) r.cpu_seconds;
  if aborted r > 0 then Format.fprintf fmt " [%d aborted]" (aborted r)
