(** Detection checking: replaying test sequences on faulty machines.

    The good machine follows CSSG edges (binary states by
    construction); faulty machines are simulated conservatively with
    ternary simulation, scalar ({!check}) or bit-parallel over a
    multi-word pack of any size ({!sweep}).  A fault counts as detected only when some primary
    output is binary in the good machine and takes the {e opposite
    binary} value in the faulty machine — a [Phi] is never conclusive
    (paper §5.4). *)

open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_sg

val good_trace : Cssg.t -> Testset.sequence -> int list option
(** State ids visited after each vector (reset first, length
    [1 + length sequence]); [None] if some vector is not a valid CSSG
    edge where it is applied. *)

val faulty_start : Circuit.t -> Fault.t -> Circuit.t * Ternary_sim.state
(** Injected circuit and its conservative settled state from the good
    reset values.
    @raise Invalid_argument if the good circuit has no reset state. *)

val check : Cssg.t -> Fault.t -> Testset.sequence -> bool
(** Scalar: does the sequence (a valid CSSG path) definitely detect the
    fault?  Outputs are compared at reset and after every vector. *)

val sweep :
  Cssg.t -> Testset.sequence -> Fault.t list -> Fault.t list * Fault.t list
(** Bit-parallel: [(detected, remaining)] after replaying the sequence
    against every fault at once — one multi-word
    {!Satg_sim.Parallel_sim} pack, however many faults there are.
    Detected machines are dropped mid-replay and the pack is repacked
    as it thins; the replay stops early once every fault is caught. *)

(** {1 Exact faulty-machine simulation}

    The three-phase ATPG follows the paper (§5.2–5.3, figures 3 and 4)
    in tracking the exact {e set} of states the faulty circuit may be
    in at each test cycle, rather than one conservative ternary state.
    A fault is detected when {e every} possible faulty state disagrees
    with the good machine on the observed outputs ("corruption has to
    be noticed in all terminal stable states"). *)

type machine
(** A faulty machine with a memoized exact-step function. *)

val exact_start : ?max_set:int -> Cssg.t -> Fault.t -> machine * bool array list
(** Machine and the exact set of states it may be in after power-up in
    the good reset values (frontier after [k] firings).  [max_set]
    (default 128) bounds both the per-state frontier and the tracked
    set size; overruns surface as [None] from {!exact_apply}. *)

val exact_apply :
  machine -> bool array list -> bool array -> bool array list option
(** Apply one vector to every member and take the exact [k]-step
    frontier union; [None] when the set or a frontier exceeds the
    machine's bound — the caller must treat the branch as
    inconclusive.  Per-(state, vector) results are memoized. *)

val exact_differs : Cssg.t -> int -> machine -> bool array list -> bool
(** Every member's outputs differ from the good state's outputs. *)

val check_exact : Cssg.t -> Fault.t -> Testset.sequence -> bool
(** Like {!check} but with exact faulty-state sets: strictly more
    complete than the ternary check, still sound. *)

(** Relationship between the two checkers: neither dominates in
    general.  The ternary checker certifies the outcome of every
    {e fair} execution of the faulty machine, so it may declare a
    detection even though the k-bounded frontier still contains an
    unfair straggler state agreeing with the good outputs; conversely
    the exact checker resolves races the ternary abstraction blurs.
    When the exact frontier is fully stable at every observation,
    [check] implies [check_exact] (a property-tested fact).  The engine
    uses each checker where the paper does: ternary for random TPG and
    fault simulation, exact sets for three-phase ATPG. *)
