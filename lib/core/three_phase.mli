(** Deterministic ATPG in three phases (paper §5.1–5.3), the analogue
    of Cho/Hachtel/Somenzi three-phase ATPG adapted to the CSSG:

    + {e fault activation}: stable states where the fault site carries
      the value opposite to the stuck value;
    + {e state justification}: a shortest valid-vector path from reset
      to an activation state.  The prefix is replayed on the faulty
      machine (ternary): a definite output difference along the way is
      the "corruption always" case of figure 3 and yields a shorter
      test; an uncertain difference is "corruption sometimes" and the
      search continues with the full prefix;
    + {e state differentiation}: breadth-first search over the product
      of the good CSSG and the {e exact set} of possible faulty states
      until every member of the set disagrees with the good outputs
      (figure 4: a partially-agreeing set is not conclusive).

    Faults whose site never takes the opposite value in a stable state
    skip activation and run differentiation from reset (§5.1). *)

open Satg_guard
open Satg_fault
open Satg_sg

type config = {
  max_depth : int;  (** differentiation BFS depth bound *)
  max_product_states : int;  (** visited-set size bound *)
  max_activation_tries : int;  (** activation states attempted, nearest first *)
}

val default_config : config

(** {1 Pluggable backends}

    Justification and differentiation are search problems over the
    CSSG / product machine; the explicit BFS algorithms of this module
    are the reference implementations, and a [backend] substitutes an
    alternative engine for either.  Contract: a backend must preserve
    {e detectability} — [find_test] returns [Some] for exactly the
    same faults — while the witness sequences may differ (all engines
    return shortest justification prefixes and shortest
    differentiation suffixes, so even the lengths agree). *)

type backend = {
  backend_name : string;  (** for diagnostics / stats labels *)
  backend_justify : Guard.t -> int -> bool array list option;
      (** shortest valid-vector path from reset to the given state id,
          or [None] if unreachable / out of budget *)
  backend_differentiate :
    (Guard.t ->
    config ->
    Detect.machine ->
    start:int ->
    fstates:bool array list ->
    bool array list option)
    option;
      (** shortest differentiating suffix from the (good state,
          faulty-state set) product point; [None] here falls back to
          the explicit product BFS *)
}

val symbolic_backend : Cssg.t -> Symbolic.t -> backend
(** BDD justification (onion-ring image computation) + explicit
    differentiation — the engine behind [--engine bdd]. *)

val find_test :
  ?config:config ->
  ?guard:Guard.t ->
  ?symbolic:Symbolic.t ->
  ?backend:backend ->
  Cssg.t ->
  Fault.t ->
  Testset.sequence option
(** A valid test sequence detecting the fault, or [None] if the bounded
    search fails (undetectable or out of budget).

    [guard] is consulted on entry and charged one transition per product
    edge expanded during differentiation; exhaustion raises
    {!Guard.Exhausted} (callers such as {!Engine.run} turn this into a
    per-fault {!Testset.Aborted} outcome).

    With [?symbolic], state justification runs on the BDD engine
    (onion-ring image computation, as the paper does in §5) instead of
    the explicit BFS tree; both produce shortest prefixes, so coverage
    is identical — the option exists for fidelity and for the larger
    circuits where the symbolic representation is smaller.

    [?backend] generalises [?symbolic] (and wins when both are given):
    any {!backend} value substitutes for the explicit phases — the SAT
    time-frame engine ({!Sat_engine.backend}) plugs in here. *)
