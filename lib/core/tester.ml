open Satg_circuit
open Satg_fault
open Satg_sg

type step = {
  inputs : bool array;
  expected : bool array;
}

type burst = {
  targets : Fault.t list;
  steps : step list;
}

type t = {
  circuit : Circuit.t;
  reset_outputs : bool array;
  bursts : burst list;
}

let of_result (r : Engine.result) =
  let g = r.Engine.cssg in
  let circuit = r.Engine.circuit in
  let by_sequence = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun o ->
      match o.Testset.status with
      | Testset.Undetected | Testset.Aborted _ -> ()
      | Testset.Detected { sequence; _ } ->
        let key = Testset.sequence_to_string sequence in
        (match Hashtbl.find_opt by_sequence key with
        | Some (seq, targets) ->
          Hashtbl.replace by_sequence key (seq, o.Testset.fault :: targets)
        | None ->
          order := key :: !order;
          Hashtbl.replace by_sequence key (sequence, [ o.Testset.fault ])))
    r.Engine.outcomes;
  let burst_of key =
    let sequence, targets = Hashtbl.find by_sequence key in
    let trace =
      match Detect.good_trace g sequence with
      | Some t -> t
      | None -> invalid_arg "Tester.of_result: sequence is not a CSSG path"
    in
    let steps =
      List.map2
        (fun v i ->
          { inputs = v; expected = Circuit.output_values circuit (Cssg.state g i) })
        sequence (List.tl trace)
    in
    { targets = List.rev targets; steps }
  in
  let reset_outputs =
    match Cssg.initial g with
    | i :: _ -> Circuit.output_values circuit (Cssg.state g i)
    | [] -> [||]
  in
  { circuit; reset_outputs; bursts = List.rev_map burst_of !order }

let n_bursts t = List.length t.bursts

let n_vectors t =
  List.fold_left (fun acc b -> acc + List.length b.steps) 0 t.bursts

let bits v = String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')

let to_string t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# tester program for %s: %d bursts, %d vectors\n" (Circuit.name t.circuit)
    (n_bursts t) (n_vectors t);
  pr "# inputs: %s; outputs: %s\n"
    (String.concat " " (Array.to_list (Circuit.input_names t.circuit)))
    (String.concat " "
       (Array.to_list
          (Array.map (Circuit.node_name t.circuit) (Circuit.outputs t.circuit))));
  List.iteri
    (fun i b ->
      pr "# burst %d: detects %s\n" (i + 1)
        (String.concat ", " (List.map (Fault.to_string t.circuit) b.targets));
      pr "reset%s -> %s\n"
        (String.make (max 0 (Array.length (Circuit.inputs t.circuit) + 1)) ' ')
        (bits t.reset_outputs);
      List.iter
        (fun s -> pr "apply %s -> %s\n" (bits s.inputs) (bits s.expected))
        b.steps)
    t.bursts;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
