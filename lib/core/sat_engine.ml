open Satg_guard
open Satg_circuit
open Satg_sg
module Sat = Satg_sat.Sat
module Cnf = Satg_cnf.Cnf

(* The long-lived core: one solver holding the good-machine time-frame
   unrolling (shared by justification and, incrementally, by every
   differentiation call), its edge vectors, BFS distances for the
   product-to-good frame offset, and the hash-consing table. *)
type core = {
  sat : Sat.t;
  good : Cnf.Unroller.t;
  gvec : bool array array;  (* good unroller edge id -> input vector *)
  gdist : int array;  (* state -> BFS distance from reset (-1 = unreachable) *)
  defs : Cnf.Defs.t;
}

type t = {
  g : Cssg.t;
  incremental : bool;
  mutable core : core option;
  mutable retired : Sat.stats;  (* from discarded fresh-mode solvers *)
}

let create ?(incremental = true) g =
  { g; incremental; core = None; retired = Sat.zero_stats }

let build_core g =
  let sat = Sat.create () in
  let unr = Cnf.Unroller.create sat in
  let n = Cssg.n_states g in
  let init_mask = Array.make (max 1 n) false in
  List.iter (fun i -> init_mask.(i) <- true) (Cssg.initial g);
  for i = 0 to n - 1 do
    ignore (Cnf.Unroller.add_state unr ~initial:init_mask.(i))
  done;
  let vecs = ref [] in
  for i = 0 to n - 1 do
    List.iter
      (fun e ->
        ignore (Cnf.Unroller.add_edge unr ~src:i ~dst:e.Cssg.target);
        vecs := e.Cssg.vector :: !vecs)
      (Cssg.successors g i)
  done;
  let gdist = Array.make (max 1 n) (-1) in
  let q = Queue.create () in
  List.iter
    (fun i ->
      if gdist.(i) < 0 then begin
        gdist.(i) <- 0;
        Queue.add i q
      end)
    (Cssg.initial g);
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    List.iter
      (fun e ->
        let j = e.Cssg.target in
        if gdist.(j) < 0 then begin
          gdist.(j) <- gdist.(i) + 1;
          Queue.add j q
        end)
      (Cssg.successors g i)
  done;
  {
    sat;
    good = unr;
    gvec = Array.of_list (List.rev !vecs);
    gdist;
    defs = Cnf.Defs.create sat;
  }

let core t =
  match t.core with
  | Some c -> c
  | None ->
    let c = build_core t.g in
    t.core <- Some c;
    c

(* Exact-length BMC: the first satisfiable frame is the BFS distance.
   The frame bound is the trivial diameter bound; justification targets
   are BFS-reachable, so the loop never actually runs dry on them. *)
let justify t guard target =
  let c = core t in
  Sat.set_guard c.sat guard;
  let bound = Cssg.n_states t.g - 1 in
  let rec try_frame f =
    if f > bound then None
    else begin
      Cnf.Unroller.ensure_frames c.good ~upto:f;
      match Cnf.Unroller.state_lit c.good ~frame:f target with
      | None -> try_frame (f + 1)
      | Some l ->
        if Sat.solve ~assumptions:[ l ] c.sat then
          Some
            (List.map
               (fun e -> c.gvec.(e))
               (Cnf.Unroller.decode_path c.good ~frame:f ~state:target))
        else try_frame (f + 1)
    end
  in
  try_frame 0

let set_key c fstates =
  List.map (Circuit.state_to_string c) fstates
  |> List.sort Stdlib.compare |> String.concat "|"

(* Ring-synchronized product unrolling.  Invariant: when the step-t
   clauses are emitted, every product state of distance <= t+1 and
   every edge leaving distance <= t already exists — and a path
   position t only ever sits on a state of distance <= t, so the
   encoding is complete for exact-length queries despite the dynamic
   graph.

   Incremental mode shares the core solver across faults: the product
   clauses (and the per-depth disjunction indicators) are guarded by a
   per-fault activation literal, product frame [f] is linked to good
   frame [dist(start) + f] so the shared good-machine clauses and any
   learned clauses over them constrain every fault's search, and the
   whole group is retired (clauses deleted, variables undecidable)
   before the next fault arrives.  Fresh mode (the bench baseline and
   the differential-testing oracle) builds a throwaway solver per call,
   exactly the pre-incremental behaviour. *)
let differentiate t guard config fm ~start ~fstates =
  let g = t.g in
  let c = Cssg.circuit g in
  let cr = core t in
  let sat, act, defs, l0 =
    if t.incremental then begin
      Sat.set_guard cr.sat guard;
      let a = Sat.new_act cr.sat in
      (cr.sat, Some a, cr.defs, max 0 cr.gdist.(start))
    end
    else
      let s = Sat.create ~guard () in
      (s, None, Cnf.Defs.create s, 0)
  in
  let unr = Cnf.Unroller.create ?act sat in
  let key2pid = Hashtbl.create 256 in
  let info = Hashtbl.create 256 in (* pid -> (good state, faulty set) *)
  let evec = Hashtbl.create 256 in (* unroller edge id -> vector *)
  let capped = ref false in
  let register i fsts =
    let k = (i, set_key c fsts) in
    match Hashtbl.find_opt key2pid k with
    | Some pid -> Some (pid, false)
    | None ->
      if Hashtbl.length key2pid >= config.Three_phase.max_product_states
      then begin
        (* fail-soft: remember the truncation instead of silently
           pretending the frontier ended here *)
        capped := true;
        None
      end
      else begin
        let pid =
          Cnf.Unroller.add_state unr ~initial:(Hashtbl.length key2pid = 0)
        in
        Hashtbl.replace key2pid k pid;
        Hashtbl.replace info pid (i, fsts);
        Some (pid, true)
      end
  in
  let pid0 =
    match register start fstates with
    | Some (pid, _) -> pid
    | None -> assert false (* cap is >= 1 *)
  in
  let frontier = ref [ pid0 ] in
  let result = ref None in
  let linked_upto = ref 0 in
  (* Product frame f implies good frame l0 + f for the good component:
     every product path is a good path shifted by the start's BFS
     distance.  This is what lets learned clauses over the shared good
     frames transfer between faults. *)
  let link_frames upto =
    match act with
    | None -> ()
    | Some a ->
      Cnf.Unroller.ensure_frames cr.good ~upto:(l0 + upto);
      for f = !linked_upto to upto do
        for pid = 0 to Cnf.Unroller.n_states unr - 1 do
          match Cnf.Unroller.state_lit unr ~frame:f pid with
          | None -> ()
          | Some p ->
            let i, _ = Hashtbl.find info pid in
            (match Cnf.Unroller.state_lit cr.good ~frame:(l0 + f) i with
            | Some sg -> Sat.add_clause ~act:a sat [ Sat.neg p; sg ]
            | None -> ())
        done
      done;
      linked_upto := upto + 1
  in
  let assumptions ind =
    match act with None -> [ ind ] | Some a -> [ Sat.act_lit sat a; ind ]
  in
  let cleanup () =
    match act with
    | None -> t.retired <- Sat.add_stats t.retired (Sat.stats sat)
    | Some a ->
      Cnf.Defs.release defs a;
      Cnf.Unroller.retire unr
  in
  (try
     let depth = ref 0 in
     while
       !result = None && !frontier <> []
       && !depth < config.Three_phase.max_depth
     do
       incr depth;
       let d = !depth in
       let fresh = ref [] and fresh_diff = ref [] in
       List.iter
         (fun pid ->
           let i, fsts = Hashtbl.find info pid in
           List.iter
             (fun e ->
               Guard.spend_transition guard;
               match Detect.exact_apply fm fsts e.Cssg.vector with
               | None -> ()
               | Some fsts' -> (
                 let j = e.Cssg.target in
                 match register j fsts' with
                 | None -> () (* over the cap; recorded in [capped] *)
                 | Some (pid', is_new) ->
                   let eid = Cnf.Unroller.add_edge unr ~src:pid ~dst:pid' in
                   Hashtbl.replace evec eid e.Cssg.vector;
                   if is_new then
                     if Detect.exact_differs g j fm fsts' then
                       fresh_diff := pid' :: !fresh_diff
                     else fresh := pid' :: !fresh))
             (Cssg.successors g i))
         !frontier;
       (* differentiating states are terminal: never expanded further *)
       frontier := !fresh;
       if !fresh_diff <> [] then begin
         Cnf.Unroller.ensure_frames unr ~upto:d;
         link_frames d;
         let ind =
           Cnf.Defs.or_ ?act defs
             (List.filter_map
                (fun pid -> Cnf.Unroller.state_lit unr ~frame:d pid)
                !fresh_diff)
         in
         if Sat.solve ~assumptions:(assumptions ind) sat then begin
           let final =
             List.find
               (fun pid ->
                 match Cnf.Unroller.state_lit unr ~frame:d pid with
                 | Some l -> Sat.lit_true sat l
                 | None -> false)
               !fresh_diff
           in
           result :=
             Some
               (List.map
                  (fun e -> Hashtbl.find evec e)
                  (Cnf.Unroller.decode_path unr ~frame:d ~state:final))
         end
       end
     done
   with Guard.Exhausted _ as ex ->
     cleanup ();
     raise ex);
  cleanup ();
  if !result = None && !capped then
    (* the product graph was truncated: "no differentiating sequence
       found" would be a lie, so degrade exactly like a guard trip *)
    raise (Guard.Exhausted Guard.State_limit);
  !result

let backend t =
  {
    Three_phase.backend_name = "sat";
    backend_justify = (fun guard act -> justify t guard act);
    backend_differentiate =
      Some
        (fun guard config fm ~start ~fstates ->
          differentiate t guard config fm ~start ~fstates);
  }

let stats t =
  match t.core with
  | None -> t.retired
  | Some c -> Sat.add_stats t.retired (Sat.stats c.sat)

let defs_stats t =
  match t.core with
  | None -> (0, 0)
  | Some c -> (Cnf.Defs.defined c.defs, Cnf.Defs.interned c.defs)
