open Satg_guard
open Satg_circuit
open Satg_sg
module Sat = Satg_sat.Sat
module Cnf = Satg_cnf.Cnf

(* The shared justification instance: the static CSSG unrolled over as
   many frames as queries have needed so far. *)
type just = {
  jsat : Sat.t;
  junr : Cnf.Unroller.t;
  jvec : bool array array;  (* unroller edge id -> input vector *)
}

type t = {
  g : Cssg.t;
  mutable just : just option;
  mutable retired : Sat.stats;  (* from differentiation solvers *)
}

let create g = { g; just = None; retired = Sat.zero_stats }

let build_just g =
  let sat = Sat.create () in
  let unr = Cnf.Unroller.create sat in
  let n = Cssg.n_states g in
  let initials = Cssg.initial g in
  for i = 0 to n - 1 do
    ignore (Cnf.Unroller.add_state unr ~initial:(List.mem i initials))
  done;
  let vecs = ref [] in
  for i = 0 to n - 1 do
    List.iter
      (fun e ->
        ignore (Cnf.Unroller.add_edge unr ~src:i ~dst:e.Cssg.target);
        vecs := e.Cssg.vector :: !vecs)
      (Cssg.successors g i)
  done;
  { jsat = sat; junr = unr; jvec = Array.of_list (List.rev !vecs) }

(* Exact-length BMC: the first satisfiable frame is the BFS distance.
   The frame bound is the trivial diameter bound; justification targets
   are BFS-reachable, so the loop never actually runs dry on them. *)
let justify t guard target =
  let j =
    match t.just with
    | Some j -> j
    | None ->
      let j = build_just t.g in
      t.just <- Some j;
      j
  in
  Sat.set_guard j.jsat guard;
  let bound = Cssg.n_states t.g - 1 in
  let rec try_frame f =
    if f > bound then None
    else begin
      Cnf.Unroller.ensure_frames j.junr ~upto:f;
      match Cnf.Unroller.state_lit j.junr ~frame:f target with
      | None -> try_frame (f + 1)
      | Some l ->
        if Sat.solve ~assumptions:[ l ] j.jsat then
          Some
            (List.map
               (fun e -> j.jvec.(e))
               (Cnf.Unroller.decode_path j.junr ~frame:f ~state:target))
        else try_frame (f + 1)
    end
  in
  try_frame 0

let set_key c fstates =
  List.map (Circuit.state_to_string c) fstates
  |> List.sort Stdlib.compare |> String.concat "|"

(* Ring-synchronized product unrolling.  Invariant: when the step-t
   clauses are emitted, every product state of distance <= t+1 and
   every edge leaving distance <= t already exists — and a path
   position t only ever sits on a state of distance <= t, so the
   encoding is complete for exact-length queries despite the dynamic
   graph. *)
let differentiate t guard config fm ~start ~fstates =
  let g = t.g in
  let c = Cssg.circuit g in
  let sat = Sat.create ~guard () in
  let unr = Cnf.Unroller.create sat in
  let key2pid = Hashtbl.create 256 in
  let info = Hashtbl.create 256 in (* pid -> (good state, faulty set) *)
  let evec = Hashtbl.create 256 in (* unroller edge id -> vector *)
  let register i fsts =
    let k = (i, set_key c fsts) in
    match Hashtbl.find_opt key2pid k with
    | Some pid -> (pid, false)
    | None ->
      let pid =
        Cnf.Unroller.add_state unr ~initial:(Hashtbl.length key2pid = 0)
      in
      Hashtbl.replace key2pid k pid;
      Hashtbl.replace info pid (i, fsts);
      (pid, true)
  in
  let pid0, _ = register start fstates in
  let frontier = ref [ pid0 ] in
  let result = ref None in
  let finish sat_stats = t.retired <- Sat.add_stats t.retired sat_stats in
  (try
     let depth = ref 0 in
     while
       !result = None && !frontier <> []
       && !depth < config.Three_phase.max_depth
     do
       incr depth;
       let d = !depth in
       let fresh = ref [] and fresh_diff = ref [] in
       List.iter
         (fun pid ->
           let i, fsts = Hashtbl.find info pid in
           List.iter
             (fun e ->
               if
                 Hashtbl.length key2pid
                 < config.Three_phase.max_product_states
               then begin
                 Guard.spend_transition guard;
                 match Detect.exact_apply fm fsts e.Cssg.vector with
                 | None -> ()
                 | Some fsts' ->
                   let j = e.Cssg.target in
                   let pid', is_new = register j fsts' in
                   let eid = Cnf.Unroller.add_edge unr ~src:pid ~dst:pid' in
                   Hashtbl.replace evec eid e.Cssg.vector;
                   if is_new then
                     if Detect.exact_differs g j fm fsts' then
                       fresh_diff := pid' :: !fresh_diff
                     else fresh := pid' :: !fresh
               end)
             (Cssg.successors g i))
         !frontier;
       (* differentiating states are terminal: never expanded further *)
       frontier := !fresh;
       if !fresh_diff <> [] then begin
         Cnf.Unroller.ensure_frames unr ~upto:d;
         let ind = Sat.pos (Sat.new_var sat) in
         Cnf.define_or sat ind
           (List.filter_map
              (fun pid -> Cnf.Unroller.state_lit unr ~frame:d pid)
              !fresh_diff);
         if Sat.solve ~assumptions:[ ind ] sat then begin
           let final =
             List.find
               (fun pid ->
                 match Cnf.Unroller.state_lit unr ~frame:d pid with
                 | Some l -> Sat.lit_true sat l
                 | None -> false)
               !fresh_diff
           in
           result :=
             Some
               (List.map
                  (fun e -> Hashtbl.find evec e)
                  (Cnf.Unroller.decode_path unr ~frame:d ~state:final))
         end
       end
     done
   with Guard.Exhausted _ as ex ->
     finish (Sat.stats sat);
     raise ex);
  finish (Sat.stats sat);
  !result

let backend t =
  {
    Three_phase.backend_name = "sat";
    backend_justify = (fun guard act -> justify t guard act);
    backend_differentiate =
      Some
        (fun guard config fm ~start ~fstates ->
          differentiate t guard config fm ~start ~fstates);
  }

let stats t =
  match t.just with
  | None -> t.retired
  | Some j -> Sat.add_stats t.retired (Sat.stats j.jsat)
