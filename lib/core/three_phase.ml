open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg

type config = {
  max_depth : int;
  max_product_states : int;
  max_activation_tries : int;
}

let default_config =
  { max_depth = 24; max_product_states = 4_000; max_activation_tries = 8 }

(* BFS distances and parents over valid CSSG edges from reset. *)
let bfs_tree g =
  let n = Cssg.n_states g in
  let dist = Array.make n (-1) in
  let parent = Array.make n None in
  let queue = Queue.create () in
  List.iter
    (fun i ->
      dist.(i) <- 0;
      Queue.add i queue)
    (Cssg.initial g);
  while not (Queue.is_empty queue) do
    let i = Queue.take queue in
    List.iter
      (fun e ->
        if dist.(e.Cssg.target) < 0 then begin
          dist.(e.Cssg.target) <- dist.(i) + 1;
          parent.(e.Cssg.target) <- Some (i, e.Cssg.vector);
          Queue.add e.Cssg.target queue
        end)
      (Cssg.successors g i)
  done;
  (dist, parent)

let path_to parent i =
  let rec unwind i acc =
    match parent.(i) with
    | None -> acc
    | Some (p, v) -> unwind p (v :: acc)
  in
  unwind i []

(* Replay a justification prefix, tracking the exact faulty-state set.
   A definite full-set output difference along the way is the
   "corruption always" case of figure 3(a) and shortens the test. *)
let replay_prefix guard g fm f0 prefix =
  let rec go i fstates applied = function
    | [] ->
      if Detect.exact_differs g i fm fstates then `Detected (List.rev applied)
      else `At fstates
    | v :: rest -> (
      Guard.tick guard;
      if Detect.exact_differs g i fm fstates then `Detected (List.rev applied)
      else
        match Cssg.apply g i v with
        | None -> `Abort
        | Some j -> (
          match Detect.exact_apply fm fstates v with
          | None -> `Abort
          | Some fstates' -> go j fstates' (v :: applied) rest))
  in
  match Cssg.initial g with
  | i :: _ -> go i f0 [] prefix
  | [] -> `Abort

let set_key c fstates =
  List.map (Circuit.state_to_string c) fstates
  |> List.sort Stdlib.compare |> String.concat "|"

(* Differentiation: BFS over (good state, exact faulty-state set).
   Hitting [max_product_states] is fail-soft: edges to known states and
   difference checks still run, but once the frontier was truncated a
   "no result" answer is no longer trustworthy, so it degrades like any
   other guard trip instead of reporting undetectable. *)
let differentiate config guard g fm start_good fstates prefix =
  let c = Cssg.circuit g in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  Hashtbl.replace seen (start_good, set_key c fstates) ();
  Queue.add (start_good, fstates, [], 0) queue;
  let result = ref None in
  let capped = ref false in
  while !result = None && not (Queue.is_empty queue) do
    let i, fsts, path, depth = Queue.take queue in
    if depth < config.max_depth then
      List.iter
        (fun e ->
          if !result = None then begin
            Guard.spend_transition guard;
            let j = e.Cssg.target in
            match Detect.exact_apply fm fsts e.Cssg.vector with
            | None -> ()
            | Some fsts' ->
              if Detect.exact_differs g j fm fsts' then
                result := Some (List.rev (e.Cssg.vector :: path))
              else begin
                let k = (j, set_key c fsts') in
                if not (Hashtbl.mem seen k) then
                  if Hashtbl.length seen >= config.max_product_states then
                    capped := true
                  else begin
                    Hashtbl.replace seen k ();
                    Queue.add (j, fsts', e.Cssg.vector :: path, depth + 1)
                      queue
                  end
              end
          end)
        (Cssg.successors g i)
  done;
  if !result = None && !capped then
    raise (Guard.Exhausted Guard.State_limit);
  Option.map (fun suffix -> prefix @ suffix) !result

(* A pluggable justification/differentiation engine.  [None] fields
   fall back to the explicit algorithms above; every backend must agree
   with them on *detectability* (identical detected/undetected
   partitions), only the witness sequences may differ. *)
type backend = {
  backend_name : string;
  backend_justify : Guard.t -> int -> bool array list option;
  backend_differentiate :
    (Guard.t ->
    config ->
    Detect.machine ->
    start:int ->
    fstates:bool array list ->
    bool array list option)
    option;
}

let symbolic_backend g sym =
  {
    backend_name = "bdd";
    backend_justify =
      (fun guard act ->
        (* The symbolic engine's manager still carries its build-time
           guard; swap in this fault's budget so a BDD blowup during
           justification charges (and aborts) only this fault. *)
        match
          Symbolic.with_guard sym guard (fun () ->
              Symbolic.justify sym
                ~target:(Symbolic.state_to_bdd sym (Cssg.state g act)))
        with
        | Some (vectors, _) -> Some vectors
        | None -> None);
    backend_differentiate = None;
  }

let find_test ?(config = default_config) ?(guard = Guard.none) ?symbolic
    ?backend g f =
  (* An already-expired deadline must abort even on graphs too small for
     the per-edge ticks below to ever fire (e.g. an edgeless truncated
     CSSG). *)
  Guard.check_time guard;
  let good = Cssg.circuit g in
  let site = Fault.site_signal good f in
  let stuck = Fault.stuck_value f in
  let fm, f0 = Detect.exact_start g f in
  let dist, parent = bfs_tree g in
  let backend =
    match backend with
    | Some _ -> backend
    | None -> Option.map (symbolic_backend g) symbolic
  in
  let justification_prefix act =
    match backend with
    | None -> Some (path_to parent act)
    | Some b -> b.backend_justify guard act
  in
  (* Activation states: fault site opposite to the stuck value,
     deterministically reachable, nearest first.  The reset state is
     always appended as a last resort, which also covers the "never
     excited in a stable state" faults of §5.1. *)
  let activation =
    List.init (Cssg.n_states g) Fun.id
    |> List.filter (fun i ->
           dist.(i) >= 0 && (Cssg.state g i).(site) <> stuck)
    |> List.sort (fun a b -> compare dist.(a) dist.(b))
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let reset_candidates = List.filter (fun i -> dist.(i) = 0) (Cssg.initial g) in
  let candidates =
    take config.max_activation_tries activation
    @ List.filter (fun i -> not (List.mem i activation)) reset_candidates
  in
  let try_candidate act =
    match justification_prefix act with
    | None -> None
    | Some prefix -> (
      match replay_prefix guard g fm f0 prefix with
      | `Detected seq -> Some seq
      | `Abort -> None
      | `At fstates -> (
        match backend with
        | Some { backend_differentiate = Some diff; _ } ->
          Option.map
            (fun suffix -> prefix @ suffix)
            (diff guard config fm ~start:act ~fstates)
        | _ -> differentiate config guard g fm act fstates prefix))
  in
  List.find_map try_candidate candidates
