(** The reusable one-shot ATPG session layer.

    One "session" is everything [satg atpg] does between parsing its
    arguments and printing its report: pick the fault universe, run the
    {!Engine} pipeline, condense the result into a {!summary}, and
    render that summary.  Extracting it here lets three front ends
    share one code path bit-for-bit:

    - the one-shot CLI ([bin/satg.ml]),
    - the durable store ({!Satg_store}), whose cache objects are
      exactly a serialized {!summary}, and
    - the ATPG daemon ([lib/server]), whose wire responses carry a
      {!summary} and whose client renders it with {!render} — which is
      what makes "daemon response = one-shot CLI output" a structural
      property instead of a test-only aspiration.

    {!config_fields} is the single exhaustive enumeration of the
    outcome-relevant configuration: the store's cache key, the wire
    protocol's config block and the daemon's batch grouping all derive
    from it, so a field added to {!Engine.config} shows up (or is
    deliberately excluded) in one place. *)

open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_pool

(** The fault model of a request: which stuck-at universe to target. *)
type universe = Input | Output | Both

val universe_name : universe -> string
(** ["input"] / ["output"] / ["both"] — the canonical lower-case names
    used by the CLI, the cache key and the wire protocol. *)

val universe_of_name : string -> universe option
(** Inverse of {!universe_name}; anything else is [None]. *)

val reorder_name : Satg_bdd.Bdd.reorder_mode -> string
(** ["none"] / ["sift"] — the canonical names used by the CLI, the
    cache key and the wire protocol. *)

val reorder_of_name : string -> Satg_bdd.Bdd.reorder_mode option
(** Inverse of {!reorder_name}; anything else is [None]. *)

val faults_of : Circuit.t -> universe -> Fault.t list
(** The given universe, in the deterministic order every front end
    agrees on (inputs first under [Both]). *)

(** A settled run, condensed: what the cache stores, the wire carries
    and {!render} prints.  [outcomes] is per {e given} fault in
    universe order (collapse already expanded). *)
type summary = {
  faults_searched : int;
  truncated : Guard.reason option;
  cpu_seconds : float;  (** of the run that produced the summary *)
  stats_line : string;  (** rendered [Cssg.pp_stats] (single line) *)
  outcomes : (Fault.t * Testset.status) list;
}

val summary_of_result : Engine.result -> summary

val degraded : summary -> bool
(** True iff the CSSG was truncated or any fault aborted — the
    summary understates achievable coverage (CLI exit code 2,
    degraded wire responses). *)

val run :
  ?guard:Guard.t ->
  ?pool:Pool.t ->
  ?cssg:Cssg.t ->
  ?settled:(Fault.t -> Testset.status option) ->
  ?on_outcome:(Fault.t -> Testset.status -> unit) ->
  config:Engine.config ->
  Circuit.t ->
  universe ->
  Engine.result
(** {!Engine.run} over {!faults_of}.  [pool] lets a long-lived caller
    (the daemon) amortize domain spin-up across runs; [cssg] lets a
    batch reuse one graph across same-netlist requests. *)

val render : ?verbose:bool -> Format.formatter -> Circuit.t -> summary -> unit
(** The CLI report: per-fault outcome lines (with [verbose]), the CSSG
    stats line, the coverage summary.  Byte-identical whether the
    summary came from a live run, a cache hit or a daemon response. *)

val check_report : Circuit.t -> string
(** The [satg check] success report (circuit stats, structure line,
    reset state), shared by the CLI and the daemon's [check] kind. *)

val config_fields :
  universe:universe -> Engine.config -> (string * string) list
(** Every outcome-relevant configuration field as canonical
    [(name, value)] pairs, in one fixed order.  [jobs] is deliberately
    excluded: the engine's input-order wave merge makes the outcome
    partition identical for every job count, so requests differing
    only in [-j] must share cache keys and batch groups. *)

val config_of_fields :
  (string * string) list -> (universe * Engine.config) option
(** Rebuild [(universe, config)] from {!config_fields} output (the
    wire-protocol decoder).  [jobs] comes back [None] — the receiving
    side owns its own parallelism.  [None] on any missing, duplicated
    or malformed field. *)
