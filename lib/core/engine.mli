(** The full ATPG pipeline (paper §2): CSSG abstraction, random TPG,
    three-phase deterministic ATPG, and fault simulation of every found
    test against the remaining faults.

    The pipeline is {e fail-soft} under resource governance: CSSG
    construction that exhausts its budget yields a truncated (but
    sound) graph and the later phases still run over it; a fault whose
    deterministic search exhausts its budget is retried once at reduced
    effort and otherwise recorded as {!Testset.Aborted} while the rest
    of the fault list proceeds.  No {!Satg_guard.Guard.Exhausted}
    escapes {!run}. *)

open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg

type justification_engine =
  | Explicit  (** BFS tree / product BFS — the reference algorithms *)
  | Bdd  (** symbolic justification (onion-ring image computation) *)
  | Sat  (** CDCL time-frame engine ({!Sat_engine}) for both phases *)

type config = {
  k : int option;  (** test-cycle budget; [None] = default heuristic *)
  enable_random : bool;
  enable_fault_sim : bool;
  engine : justification_engine;
      (** deterministic-phase backend; all three produce identical
          detected/undetected partitions *)
  collapse : bool;
      (** structurally collapse the fault universe before any phase
          (default [true]); the result keeps both sizes *)
  jobs : int option;
      (** [Some j]: run CSSG construction and the deterministic phase
          on a [j]-worker domain pool ({!Satg_pool.Pool}) — speculative
          fault waves merged in input order, so the outcome partition
          is identical for every [j] (and, for the explicit engine, to
          the sequential path).  [None] (default): the legacy
          sequential pipeline.  The BDD engine's deterministic phase
          stays sequential under [jobs] (single-domain manager); see
          docs/PERF.md. *)
  timeout : float option;
      (** wall-clock budget in seconds for the whole run *)
  max_states : int option;
      (** CSSG state ceiling, also the per-fault product-state ceiling *)
  max_transitions : int option;
      (** transition-expansion ceiling, per phase / per fault.  The
          BDD engine charges it one transition per allocated node, so
          the same cap bounds symbolic and explicit work alike *)
  reorder : Satg_bdd.Bdd.reorder_mode;
      (** dynamic variable reordering for the [Bdd] engine's manager
          (default {!Satg_bdd.Bdd.Reorder_none}); ignored by the other
          engines *)
  cluster_cap : int;
      (** node cap per frame-equality cluster in the [Bdd] engine's
          partitioned early-quantification schedule (default
          {!Satg_sg.Symbolic.default_cluster_cap}); ignored by the
          other engines *)
  random : Random_tpg.config;
  three_phase : Three_phase.config;
}

val default_config : config

type result = {
  circuit : Circuit.t;
  cssg : Cssg.t;
  outcomes : Testset.outcome list;
      (** in input fault order, one per given fault; under collapsing,
          a fault folded into an equivalence class carries its
          representative's outcome (equivalent faults are detected by
          exactly the same tests, so the expansion is sound) *)
  cpu_seconds : float;
  faults_searched : int;
      (** class representatives the phases actually targeted; equals
          [total] when [config.collapse] was off or found nothing to
          merge *)
  bdd_stats : Satg_bdd.Bdd.stats option;
      (** BDD-manager counters when the [Bdd] engine ran *)
  sat_stats : Satg_sat.Sat.stats option;
      (** solver counters, aggregated across every per-fault SAT
          query, when the [Sat] engine ran *)
  cnf_defs : (int * int) option;
      (** [(defined, interned)] hash-consing counters summed over the
          per-worker SAT engines: Tseitin definitions emitted vs
          served structurally from the table *)
}

val run :
  ?config:config ->
  ?cssg:Cssg.t ->
  ?guard:Guard.t ->
  ?pool:Satg_pool.Pool.t ->
  ?settled:(Fault.t -> Testset.status option) ->
  ?on_outcome:(Fault.t -> Testset.status -> unit) ->
  Circuit.t ->
  faults:Fault.t list ->
  result
(** [cssg] lets callers reuse a prebuilt graph (e.g. across the two
    fault universes of one benchmark).

    [pool] substitutes a caller-owned worker pool for the one
    [config.jobs] would create (and shut down) per run — the hook that
    lets a long-lived service amortize domain spin-up across requests.
    The run behaves as [jobs = Pool.jobs pool]; the pool is {e not}
    shut down on return.

    Resource limits come from the config: the wall-clock deadline is
    global to the run, while state/transition counters are reset per
    phase and per fault ({!Guard.sub}), so one pathological fault
    cannot starve the others.

    The remaining hooks exist for durable sessions ({!Satg_store}):

    - [guard] substitutes the caller's run guard for the one the config
      would create (the config's limits still shape the per-fault
      sub-guards).  A CLI signal handler can then
      {!Guard.cancel} it with {!Guard.Interrupt} to drain the run.
    - [settled f] pre-loads a journal-replayed outcome for target [f]
      (a collapse representative): the fault skips every phase and
      [on_outcome] is {e not} echoed for it — it is already on disk.
    - [on_outcome] observes each freshly computed outcome the moment it
      is committed, in commit order (the wave merge replays sequential
      order, so this order is identical for every [jobs] value and a
      journal written from it is an exact prefix of the sequential
      commit sequence).  It runs on the coordinating domain only.

    Determinism contract for resume: a fault's random-phase detection
    depends only on (graph, walk) — per-walk seeding makes it
    independent of which other faults share the simulation pack — so
    running the phases over the not-yet-settled targets reproduces the
    statuses an uninterrupted run would have assigned. *)

val total : result -> int
val detected : result -> int

val aborted : result -> int
(** Faults whose search blew its resource budget (after the retry). *)

val detected_by : result -> Testset.phase -> int
(** Faults whose first detection came from the given phase. *)

val coverage_pct : result -> float
val undetected_faults : result -> Fault.t list

val aborted_faults : result -> (Fault.t * Guard.reason) list
(** The aborted faults, in input order, with why each gave up. *)

val truncated : result -> Guard.reason option
(** Why CSSG construction stopped early, if it did. *)

val partial : result -> bool
(** True iff the CSSG is truncated or any fault aborted — the result
    understates achievable coverage (CLI exit code 2). *)

val pp_summary : Format.formatter -> result -> unit
(** One-line coverage summary; appends a truncation note and the list
    of aborted faults (with reasons) when the run was partial. *)

val pp_summary_of :
  circuit:Circuit.t ->
  outcomes:Testset.outcome list ->
  faults_searched:int ->
  truncated:Guard.reason option ->
  cpu_seconds:float ->
  Format.formatter ->
  unit
(** {!pp_summary} from raw parts, for rendering a cached result
    ({!Satg_store}) bit-identically to the run that produced it. *)
