open Satg_sg

type config = {
  walks : int;
  walk_length : int;
  seed : int;
}

let default_config = { walks = 1; walk_length = 3; seed = 0x5eed }

(* Successor lists are pre-converted to arrays once per run: picking a
   random successor is then O(1) instead of the two O(n) list walks
   (length + nth) the naive version pays on every step. *)
let random_walk rng succ start len =
  let rec go i acc n =
    if n = 0 then List.rev acc
    else
      let s = succ.(i) in
      if Array.length s = 0 then List.rev acc
      else
        let e = s.(Random.State.int rng (Array.length s)) in
        go e.Cssg.target (e.Cssg.vector :: acc) (n - 1)
  in
  go start [] len

(* Budgeted batched loop: each walk fault-simulates the whole remaining
   list in one multi-word sweep (Detect.sweep drops machines as they
   are detected), the survivors carry to the next walk, and the loop
   exits as soon as the list runs dry or the walk budget is spent. *)
let run ?(config = default_config) g ~faults =
  match Cssg.initial g with
  | [] -> ([], faults)
  | start :: _ ->
    let succ =
      Array.init (Cssg.n_states g) (fun i ->
          Array.of_list (Cssg.successors g i))
    in
    let rec walks w detected remaining =
      if w >= config.walks || remaining = [] then (List.rev detected, remaining)
      else begin
        (* Each walk owns a generator seeded from (seed, walk index):
           the vectors of walk [w] do not depend on walk_length or on
           how much randomness earlier walks consumed, so multi-walk
           runs stay decorrelated. *)
        let rng = Random.State.make [| config.seed; w |] in
        let seq = random_walk rng succ start config.walk_length in
        if seq = [] then (List.rev detected, remaining)
        else
          let caught, rest = Detect.sweep g seq remaining in
          let detected =
            List.fold_left (fun acc f -> (f, seq) :: acc) detected caught
          in
          walks (w + 1) detected rest
      end
    in
    walks 0 [] faults
