(** Baseline: synchronous test generation for asynchronous circuits in
    the style of Banerjee, Chakradhar and Roy (paper §6.1).

    Feedback loops are cut by virtual flip-flops (state-holding gates
    contribute their own output as a flip-flop), turning the netlist
    into a synchronous FSM: one test cycle = one combinational
    evaluation.  Test generation runs on that model; the generated
    vectors are then {e validated} by unit-delay simulation — which
    detects oscillation but, seeing only one interleaving, cannot
    detect non-confluence.  Finally we score each claimed test against
    the exact unbounded-delay model (our CSSG + ternary machinery) to
    quantify the optimism the paper describes. *)

open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg

type claim = {
  fault : Fault.t;
  sequence : Testset.sequence option;  (** claimed test, if one was found *)
  survives_validation : bool;
      (** unit-delay replay settles everywhere and shows the fault *)
  truly_detects : bool;
      (** valid CSSG path and conservative ternary detection *)
  aborted : Guard.reason option;
      (** the resource budget ran out while handling this fault *)
}

type result = {
  circuit : Circuit.t;
  claims : claim list;
  cpu_seconds : float;
}

val run :
  ?max_depth:int ->
  ?max_states:int ->
  ?guard:Guard.t ->
  Circuit.t ->
  cssg:Cssg.t ->
  faults:Fault.t list ->
  result
(** [cssg] is the exact graph used only for the final truth scoring.

    [guard] is a budget for the whole baseline run (one transition per
    product-BFS expansion); once it trips, the current and all
    remaining faults are recorded with [aborted = Some _] rather than
    raising. *)

val claimed : result -> int
val validated : result -> int
val truly_detected : result -> int

val aborted : result -> int
(** Claims cut short by the resource budget. *)

val pp_summary : Format.formatter -> result -> unit
