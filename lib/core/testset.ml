open Satg_guard
open Satg_fault

type sequence = bool array list

type phase =
  | Random
  | Three_phase
  | Fault_simulation

type status =
  | Detected of {
      sequence : sequence;
      phase : phase;
    }
  | Undetected
  | Aborted of Guard.reason

type outcome = {
  fault : Fault.t;
  status : status;
}

let phase_name = function
  | Random -> "random"
  | Three_phase -> "3-phase"
  | Fault_simulation -> "fault-sim"

let is_detected = function Detected _ -> true | Undetected | Aborted _ -> false
let is_aborted = function Aborted _ -> true | Detected _ | Undetected -> false

let sequence_to_string seq =
  String.concat " "
    (List.map
       (fun v ->
         String.init (Array.length v) (fun i -> if v.(i) then '1' else '0'))
       seq)

let pp_outcome c fmt o =
  match o.status with
  | Detected { sequence; phase } ->
    Format.fprintf fmt "%s: detected (%s) by [%s]" (Fault.to_string c o.fault)
      (phase_name phase)
      (sequence_to_string sequence)
  | Undetected ->
    Format.fprintf fmt "%s: UNDETECTED" (Fault.to_string c o.fault)
  | Aborted reason ->
    Format.fprintf fmt "%s: ABORTED (%s)" (Fault.to_string c o.fault)
      (Guard.reason_to_string reason)
