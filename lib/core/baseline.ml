open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sim

type claim = {
  fault : Fault.t;
  sequence : Testset.sequence option;
  survives_validation : bool;
  truly_detects : bool;
  aborted : Guard.reason option;
}

type result = {
  circuit : Circuit.t;
  claims : claim list;
  cpu_seconds : float;
}

(* --- the synchronous (virtual flip-flop) model ---------------------------- *)

(* One test cycle: starting from the previous node values, evaluate the
   whole netlist combinationally in topological order; pins on cut
   feedback edges and the self-inputs of state-holding gates read the
   previous-cycle value (a virtual flip-flop). *)
type sync_model = {
  sc : Circuit.t;
  order : int list;  (* gates in topological order w.r.t. uncut edges *)
  cut : (int * int, unit) Hashtbl.t;  (* (gate, pin) of virtual FFs *)
}

let make_sync_model c =
  let break = Structure.feedback_edges c in
  let cut = Hashtbl.create 16 in
  List.iter
    (fun e -> Hashtbl.replace cut (e.Structure.gate, e.Structure.pin) ())
    break;
  let lv = Structure.levels c ~break in
  let order =
    Array.to_list (Circuit.gates c)
    |> List.sort (fun a b -> compare lv.(a) lv.(b))
  in
  { sc = c; order; cut }

let sync_step model prev vector =
  let c = model.sc in
  let cur = Circuit.apply_input_vector c prev vector in
  List.iter
    (fun gid ->
      let fanin = Circuit.fanins c gid in
      let ins =
        Array.mapi
          (fun pin src ->
            if Hashtbl.mem model.cut (gid, pin) then prev.(src) else cur.(src))
          fanin
      in
      (* State-holding self-input reads the previous cycle. *)
      cur.(gid) <- Gatefunc.eval_bool (Circuit.func c gid) ~self:prev.(gid) ins)
    model.order;
  cur

(* --- test generation on the product of good and faulty sync models -------- *)

let all_vectors n =
  List.init (1 lsl n) (fun mask ->
      Array.init n (fun i -> mask land (1 lsl i) <> 0))

let find_test_sync ~max_depth ~max_states guard good_model fault_model f0 good0
    =
  let c = good_model.sc in
  let vectors = all_vectors (Circuit.n_inputs c) in
  let key g fs =
    Circuit.state_to_string c g ^ "|" ^ Circuit.state_to_string fault_model.sc fs
  in
  let differs g fs =
    Circuit.output_values c g <> Circuit.output_values fault_model.sc fs
  in
  if differs good0 f0 then Some []
  else begin
    let seen = Hashtbl.create 256 in
    let queue = Queue.create () in
    Hashtbl.replace seen (key good0 f0) ();
    Queue.add (good0, f0, [], 0) queue;
    let result = ref None in
    while !result = None && not (Queue.is_empty queue) do
      let g, fs, path, depth = Queue.take queue in
      if depth < max_depth then
        List.iter
          (fun v ->
            if !result = None && Hashtbl.length seen < max_states then begin
              Guard.spend_transition guard;
              let g' = sync_step good_model g v in
              let fs' = sync_step fault_model fs v in
              if differs g' fs' then result := Some (List.rev (v :: path))
              else begin
                let k = key g' fs' in
                if not (Hashtbl.mem seen k) then begin
                  Hashtbl.replace seen k ();
                  Queue.add (g', fs', v :: path, depth + 1) queue
                end
              end
            end)
          vectors
    done;
    !result
  end

(* --- unit-delay validation (what Banerjee et al. can check) --------------- *)

let unit_delay_validates good fc reset freset seq =
  let max_steps = 4 * (Circuit.n_nodes good + 2) in
  let rec go gs fs vectors saw_detection =
    match vectors with
    | [] -> saw_detection
    | v :: rest -> (
      match
        ( Unit_delay.apply_vector good ~max_steps gs v,
          Unit_delay.apply_vector fc ~max_steps fs v )
      with
      | Unit_delay.Settled (gs', _), Unit_delay.Settled (fs', _) ->
        let detect =
          Circuit.output_values good gs'
          <> Array.map (fun o -> fs'.(o)) (Circuit.outputs fc)
        in
        go gs' fs' rest (saw_detection || detect)
      | Unit_delay.Oscillates _, _ | _, Unit_delay.Oscillates _ ->
        (* Validation catches the oscillation: the vector sequence is
           rejected. *)
        false)
  in
  go reset freset seq false

let run ?(max_depth = 24) ?(max_states = 20_000) ?(guard = Guard.none) circuit
    ~cssg ~faults =
  let t0 = Sys.time () in
  let reset =
    match Circuit.initial circuit with
    | Some s -> s
    | None -> invalid_arg "Baseline.run: no reset state"
  in
  let good_model = make_sync_model circuit in
  let claims =
    List.map
      (fun f ->
        let work () =
          let fc = Fault.inject circuit f in
          let freset = Fault.initial_faulty_state circuit f reset in
          (* Settle the faulty machine once synchronously (the virtual-FF
             model needs a starting state). *)
          let fault_model = make_sync_model fc in
          let sequence =
            find_test_sync ~max_depth ~max_states guard good_model fault_model
              freset reset
          in
          let survives_validation =
            match sequence with
            | None -> false
            | Some seq -> unit_delay_validates circuit fc reset freset seq
          in
          { fault = f; sequence; survives_validation; truly_detects = false;
            aborted = None }
        in
        match Guard.guarded guard work with
        | Ok claim -> claim
        | Error reason ->
          { fault = f; sequence = None; survives_validation = false;
            truly_detects = false; aborted = Some reason })
      faults
  in
  (* The CSSG-truth check runs batched: claims sharing a candidate
     sequence (BFS often finds the same short test for many faults) are
     fault-simulated together in one multi-word bit-parallel sweep
     instead of one scalar ternary replay per fault. *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun c ->
      match c.sequence with
      | None -> ()
      | Some seq ->
        let key = Testset.sequence_to_string seq in
        let fs =
          match Hashtbl.find_opt groups key with
          | Some (_, fs) -> fs
          | None -> []
        in
        Hashtbl.replace groups key (seq, c.fault :: fs))
    claims;
  let truly = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (seq, fs) ->
      let det, _ = Detect.sweep cssg seq fs in
      List.iter (fun f -> Hashtbl.replace truly f ()) det)
    groups;
  let claims =
    List.map
      (fun c -> { c with truly_detects = Hashtbl.mem truly c.fault })
      claims
  in
  { circuit; claims; cpu_seconds = Sys.time () -. t0 }

let claimed r =
  List.length (List.filter (fun c -> c.sequence <> None) r.claims)

let validated r =
  List.length (List.filter (fun c -> c.survives_validation) r.claims)

let truly_detected r =
  List.length (List.filter (fun c -> c.truly_detects) r.claims)

let aborted r =
  List.length (List.filter (fun c -> c.aborted <> None) r.claims)

let pp_summary fmt r =
  Format.fprintf fmt
    "baseline %s: %d/%d claimed, %d survive unit-delay validation, %d truly valid (%.2fs)"
    (Circuit.name r.circuit) (claimed r) (List.length r.claims) (validated r)
    (truly_detected r) r.cpu_seconds;
  if aborted r > 0 then Format.fprintf fmt " [%d aborted]" (aborted r)
