(** Random test pattern generation (paper §5.4, following Breuer).

    Random walks over the CSSG (so every generated vector is valid by
    construction) are fault-simulated bit-parallel against the whole
    remaining fault list — one multi-word pack per walk, machines
    dropped as they are detected, the loop exiting as soon as the list
    runs dry.  Each walk is seeded independently from [(seed, walk
    index)], so the vectors of walk [w] do not depend on [walk_length]
    or on earlier walks.  Cheap, and typically covers 40–80% of the
    faults before the expensive three-phase ATPG runs. *)

open Satg_fault
open Satg_sg

type config = {
  walks : int;  (** number of independent walks from reset *)
  walk_length : int;  (** vectors per walk *)
  seed : int;
}

val default_config : config

val run :
  ?config:config ->
  Cssg.t ->
  faults:Fault.t list ->
  (Fault.t * Testset.sequence) list * Fault.t list
(** [(detected, remaining)].  Each detected fault is paired with the
    walk (full sequence) that caught it. *)
