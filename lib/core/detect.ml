open Satg_logic
open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_sg

let good_trace g seq =
  let rec follow i acc = function
    | [] -> Some (List.rev acc)
    | v :: rest -> (
      match Cssg.apply g i v with
      | Some j -> follow j (j :: acc) rest
      | None -> None)
  in
  match Cssg.initial g with
  | [ i ] -> follow i [ i ] seq
  | i :: _ -> follow i [ i ] seq
  | [] -> None

let reset_of g =
  match Circuit.initial (Cssg.circuit g) with
  | Some s -> s
  | None -> invalid_arg "Detect: circuit has no reset state"

let faulty_start good f =
  let reset =
    match Circuit.initial good with
    | Some s -> s
    | None -> invalid_arg "Detect.faulty_start: no reset state"
  in
  let fc = Fault.inject good f in
  let init =
    Ternary_sim.of_bool_state (Fault.initial_faulty_state good f reset)
  in
  (* Settle conservatively: re-apply the unchanged input vector. *)
  let v0 = Circuit.input_vector_of_state good reset in
  (fc, Ternary_sim.apply_vector fc init v0)

let definite_difference good_out faulty_out =
  let n = Array.length good_out in
  let rec scan i =
    i < n
    &&
    match (Ternary.of_bool good_out.(i), faulty_out.(i)) with
    | Ternary.One, Ternary.Zero | Ternary.Zero, Ternary.One -> true
    | _ -> scan (i + 1)
  in
  scan 0

let check g f seq =
  let good = Cssg.circuit g in
  match good_trace g seq with
  | None -> false
  | Some trace ->
    let fc, fstate = faulty_start good f in
    let good_outputs i = Circuit.output_values good (Cssg.state g i) in
    let fault_outputs st = Ternary_sim.outputs fc st in
    let rec step trace fstate vectors =
      match trace with
      | [] -> false
      | i :: trace' ->
        definite_difference (good_outputs i) (fault_outputs fstate)
        ||
        (match vectors with
        | [] -> false
        | v :: vs ->
          step trace' (Ternary_sim.apply_vector fc fstate v) vs)
    in
    step trace fstate seq

(* Repack once the survivors fit in half the words the pack currently
   sweeps: the copy is O(nodes * survivors), amortized against every
   subsequent per-word fixpoint (see docs/PERF.md). *)
let maybe_repack pack =
  if
    Parallel_sim.n_words pack > 1
    && Parallel_sim.n_live pack
       <= Parallel_sim.n_words pack / 2 * Parallel_sim.word_size
  then Parallel_sim.repack pack
  else pack

let sweep g seq faults =
  if faults = [] then ([], [])
  else
    let good = Cssg.circuit g in
    let reset = reset_of g in
    match good_trace g seq with
    | None -> ([], faults)
    | Some trace ->
      let trace = Array.of_list trace in
      let detected = Hashtbl.create 16 in
      (* One pack for the whole fault list; detected machines are
         dropped on the spot, and the pack is recompacted as it
         thins. *)
      let pack = ref (Parallel_sim.create good (Array.of_list faults) ~reset) in
      let observe i =
        let good_out =
          Array.map Ternary.of_bool (Circuit.output_values good (Cssg.state g i))
        in
        List.iter
          (fun m -> Hashtbl.replace detected (Parallel_sim.fault !pack m) ())
          (Parallel_sim.detected !pack ~good_outputs:good_out)
      in
      if Array.length trace > 0 then observe trace.(0);
      (try
         List.iteri
           (fun step v ->
             if Parallel_sim.n_live !pack = 0 then raise Exit;
             pack := maybe_repack !pack;
             Parallel_sim.apply_vector !pack v;
             if step + 1 < Array.length trace then observe trace.(step + 1))
           seq
       with Exit -> ());
      List.partition (fun f -> Hashtbl.mem detected f) faults

(* --- exact faulty-state sets ---------------------------------------------- *)

type machine = {
  fc : Circuit.t;
  k : int;
  max_set : int;
  memo : (string, bool array list option) Hashtbl.t;
      (* "<state>|<vector>" -> k-step frontier (None = blow-up) *)
}

let dedup_states c states =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      let k = Circuit.state_to_string c s in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    states

let exact_start ?(max_set = 128) g f =
  let good = Cssg.circuit g in
  let reset = reset_of g in
  let fc = Fault.inject good f in
  let init = Fault.initial_faulty_state good f reset in
  let m = { fc; k = Cssg.k g; max_set; memo = Hashtbl.create 256 } in
  let start =
    try Async_sim.states_after ~max_frontier:max_set fc ~k:m.k init
    with Async_sim.Frontier_limit -> []
    (* An empty start set means "unknown"; exact_differs treats it as
       inconclusive and exact_apply keeps it empty. *)
  in
  (m, start)

let step_one m s v =
  let key =
    Circuit.state_to_string m.fc s ^ "|"
    ^ String.init (Array.length v) (fun i -> if v.(i) then '1' else '0')
  in
  match Hashtbl.find_opt m.memo key with
  | Some r -> r
  | None ->
    let r =
      try
        let s1 = Circuit.apply_input_vector m.fc s v in
        Some (Async_sim.states_after ~max_frontier:m.max_set m.fc ~k:m.k s1)
      with Async_sim.Frontier_limit -> None
    in
    Hashtbl.replace m.memo key r;
    r

let exact_apply m states v =
  let rec go acc count = function
    | [] ->
      let deduped = dedup_states m.fc acc in
      if List.length deduped > m.max_set then None else Some deduped
    | s :: rest -> (
      match step_one m s v with
      | None -> None
      | Some finals ->
        let count = count + List.length finals in
        if count > 8 * m.max_set then None
        else go (finals @ acc) count rest)
  in
  if states = [] then Some [] else go [] 0 states

let exact_differs g i m states =
  let good = Cssg.circuit g in
  let expected = Circuit.output_values good (Cssg.state g i) in
  states <> []
  && List.for_all
       (fun s -> Array.map (fun o -> s.(o)) (Circuit.outputs m.fc) <> expected)
       states

let check_exact g f seq =
  match good_trace g seq with
  | None -> false
  | Some trace ->
    let m, f0 = exact_start g f in
    let rec step trace fstates vectors =
      match trace with
      | [] -> false
      | i :: trace' ->
        exact_differs g i m fstates
        ||
        (match vectors with
        | [] -> false
        | v :: vs -> (
          match exact_apply m fstates v with
          | None -> false
          | Some fstates' -> step trace' fstates' vs))
    in
    step trace f0 seq
