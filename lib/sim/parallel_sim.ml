open Satg_logic
open Satg_circuit
open Satg_fault

let word_size = 62

type rails = {
  one : int;
  zero : int;
}

(* A pack holds any number of machines, laid out as lanes of 62-bit
   words: machine [m] is lane [m mod word_size] of word [m / word_size].
   Rails are flat arrays indexed [node * n_words + word] so one word of
   one node is a single cache line away from the next word.  [live.(w)]
   masks the lanes of word [w] still being simulated: detected machines
   are dropped (their rail bits zeroed everywhere) and excluded from
   the fixpoints, and whole words whose lanes are all dead are skipped
   outright. *)
type pack = {
  circuit : Circuit.t;
  faults : Fault.t array;
  n_words : int;
  live : int array;  (* per word: lanes still simulated *)
  can1 : int array;  (* node * n_words + word *)
  can0 : int array;
  (* Per (gate, word): value overrides of individual pins, and output
     pinning, as lane masks. *)
  pin_overrides : (int * int * bool) list array;  (* gate*n_words+w -> (pin, lanes, stuck) *)
  out_force1 : int array;  (* gate*n_words+w -> lanes pinned to 1 *)
  out_force0 : int array;
}

let n_machines p = Array.length p.faults
let n_words p = p.n_words
let fault p i = p.faults.(i)

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let n_live p = Array.fold_left (fun acc w -> acc + popcount w) 0 p.live

let word_of m = m / word_size
let lane_of m = 1 lsl (m mod word_size)

let is_live p m =
  m >= 0 && m < n_machines p && p.live.(word_of m) land lane_of m <> 0

let live_faults p =
  let acc = ref [] in
  for m = n_machines p - 1 downto 0 do
    if p.live.(word_of m) land lane_of m <> 0 then acc := p.faults.(m) :: !acc
  done;
  !acc

(* --- dual-rail word algebra ------------------------------------------- *)

let r_const mask b =
  if b then { one = mask; zero = 0 } else { one = 0; zero = mask }

let r_not a = { one = a.zero; zero = a.one }
let r_and a b = { one = a.one land b.one; zero = a.zero lor b.zero }
let r_or a b = { one = a.one lor b.one; zero = a.zero land b.zero }

let r_xor a b =
  {
    one = (a.one land b.zero) lor (a.zero land b.one);
    zero = (a.zero land b.zero) lor (a.one land b.one);
  }

let r_mux s a b =
  (* out = s ? a : b, computed as (s&a) | (!s&b) | (a&b).  The
     consensus term makes this lane-equal to the precise ternary mux
     (Gatefunc.eval_ternary): with s = Phi but a = b binary the output
     is that binary value, not Phi — without it the pack would be
     strictly blurrier than scalar Ternary_sim on Mux gates (e.g. the
     test-mode muxes Dft.insert_control_points adds). *)
  r_or (r_or (r_and s a) (r_and (r_not s) b)) (r_and a b)

let r_fold_and mask = Array.fold_left r_and (r_const mask true)
let r_fold_or mask = Array.fold_left r_or (r_const mask false)
let r_fold_xor mask = Array.fold_left r_xor (r_const mask false)

let r_celem mask ~self ins =
  r_or (r_fold_and mask ins) (r_and self (r_fold_or mask ins))

let eval_cover mask cover ins =
  List.fold_left
    (fun acc cube ->
      let lits = Cube.lits cube in
      let term = ref (r_const mask true) in
      Array.iteri
        (fun i l ->
          match l with
          | Cube.D -> ()
          | Cube.T -> term := r_and !term ins.(i)
          | Cube.F -> term := r_and !term (r_not ins.(i)))
        lits;
      r_or acc !term)
    (r_const mask false) (Cover.cubes cover)

let eval_func mask func ~self ins =
  match func with
  | Gatefunc.Buf -> ins.(0)
  | Gatefunc.Not -> r_not ins.(0)
  | Gatefunc.And -> r_fold_and mask ins
  | Gatefunc.Or -> r_fold_or mask ins
  | Gatefunc.Nand -> r_not (r_fold_and mask ins)
  | Gatefunc.Nor -> r_not (r_fold_or mask ins)
  | Gatefunc.Xor -> r_fold_xor mask ins
  | Gatefunc.Xnor -> r_not (r_fold_xor mask ins)
  | Gatefunc.Mux -> r_mux ins.(0) ins.(1) ins.(2)
  | Gatefunc.Celem -> r_celem mask ~self ins
  | Gatefunc.Const b -> r_const mask b
  | Gatefunc.Sop cover -> eval_cover mask cover ins

let ternary_of_rails r lane =
  let bit = 1 lsl lane in
  match (r.one land bit <> 0, r.zero land bit <> 0) with
  | true, false -> Ternary.One
  | false, true -> Ternary.Zero
  | true, true -> Ternary.Phi
  | false, false ->
    invalid_arg "Parallel_sim.ternary_of_rails: empty lane (dropped machine?)"

let rails_of_ternaries ts =
  let one = ref 0 and zero = ref 0 in
  Array.iteri
    (fun lane t ->
      let bit = 1 lsl lane in
      match t with
      | Ternary.One -> one := !one lor bit
      | Ternary.Zero -> zero := !zero lor bit
      | Ternary.Phi ->
        one := !one lor bit;
        zero := !zero lor bit)
    ts;
  { one = !one; zero = !zero }

(* --- pack construction ------------------------------------------------- *)

(* Skeleton: lanes allocated, overrides installed, all rails empty. *)
let skeleton c faults =
  let n = Array.length faults in
  let n_words = (n + word_size - 1) / word_size in
  let nodes = Circuit.n_nodes c in
  let live = Array.make n_words 0 in
  Array.iteri (fun m _ -> live.(word_of m) <- live.(word_of m) lor lane_of m)
    faults;
  let can1 = Array.make (nodes * n_words) 0 in
  let can0 = Array.make (nodes * n_words) 0 in
  let pin_overrides = Array.make (nodes * n_words) [] in
  let out_force1 = Array.make (nodes * n_words) 0 in
  let out_force0 = Array.make (nodes * n_words) 0 in
  Array.iteri
    (fun m f ->
      let w = word_of m and bit = lane_of m in
      match f with
      | Fault.Input_sa { gate; pin; stuck } ->
        let i = (gate * n_words) + w in
        pin_overrides.(i) <- (pin, bit, stuck) :: pin_overrides.(i)
      | Fault.Output_sa { gate; stuck } ->
        let i = (gate * n_words) + w in
        if stuck then out_force1.(i) <- out_force1.(i) lor bit
        else out_force0.(i) <- out_force0.(i) lor bit)
    faults;
  { circuit = c; faults; n_words; live; can1; can0; pin_overrides;
    out_force1; out_force0 }

let read_rails p w i =
  let k = (i * p.n_words) + w in
  { one = p.can1.(k); zero = p.can0.(k) }

let write_rails p w i r =
  let k = (i * p.n_words) + w in
  p.can1.(k) <- r.one;
  p.can0.(k) <- r.zero

let force_output p w gid r =
  let k = (gid * p.n_words) + w in
  let f1 = p.out_force1.(k) and f0 = p.out_force0.(k) in
  {
    one = (r.one land lnot f0) lor f1;
    zero = (r.zero land lnot f1) lor f0;
  }

(* Clip to live lanes: dead lanes carry no information and never
   trigger further fixpoint rounds. *)
let clip mask r = { one = r.one land mask; zero = r.zero land mask }

let eval_gate p w gid =
  let mask = p.live.(w) in
  let fanin = Circuit.fanins p.circuit gid in
  let ins = Array.map (read_rails p w) fanin in
  List.iter
    (fun (pin, lanes, stuck) ->
      let lanes = lanes land mask in
      if lanes <> 0 then begin
        let r = ins.(pin) in
        let forced = r_const lanes stuck in
        ins.(pin) <-
          {
            one = (r.one land lnot lanes) lor forced.one;
            zero = (r.zero land lnot lanes) lor forced.zero;
          }
      end)
    p.pin_overrides.((gid * p.n_words) + w);
  let self = read_rails p w gid in
  clip mask
    (force_output p w gid (eval_func mask (Circuit.func p.circuit gid) ~self ins))

(* Monotone closure: the dual-rail analogue of Ternary_sim.lub_closure.
   Rails only gain bits (forced rails are already pinned and never lose
   their pin), so the sweep terminates in at most [2 * word_size *
   n_gates] rail-bit flips; at the fixpoint every still-oscillating
   machine/signal pair carries both rails, i.e. Phi. *)
let lub_closure p w =
  let gates = Circuit.gates p.circuit in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun gid ->
        let cur = read_rails p w gid in
        let e = eval_gate p w gid in
        let next =
          clip p.live.(w)
            (force_output p w gid
               { one = cur.one lor e.one; zero = cur.zero lor e.zero })
        in
        if next.one <> cur.one || next.zero <> cur.zero then begin
          write_rails p w gid next;
          progress := true
        end)
      gates
  done

(* Chaotic iteration of [update] over the gates of one word until no
   rail changes.  Like Ternary_sim.fixpoint, exhausting the round
   budget is a legal oscillation verdict, not a program bug: the
   iteration saturates via the monotone closure instead of dying. *)
let fixpoint_word ?budget p w update =
  let gates = Circuit.gates p.circuit in
  let budget =
    match budget with
    | Some b -> b
    | None -> (2 * Circuit.n_nodes p.circuit * word_size) + 2
  in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < budget do
    changed := false;
    incr rounds;
    Array.iter
      (fun gid ->
        let cur = read_rails p w gid in
        let next = update gid cur in
        if next.one <> cur.one || next.zero <> cur.zero then begin
          write_rails p w gid next;
          changed := true
        end)
      gates
  done;
  if !changed then lub_closure p w

let algorithm_a ?budget p w =
  fixpoint_word ?budget p w (fun gid cur ->
      let e = eval_gate p w gid in
      (* lub: union of rails, but forced outputs stay pinned *)
      clip p.live.(w)
        (force_output p w gid
           { one = cur.one lor e.one; zero = cur.zero lor e.zero }))

let algorithm_b ?budget p w =
  fixpoint_word ?budget p w (fun gid _cur -> eval_gate p w gid)

let set_inputs p w rails_of_input =
  Array.iteri
    (fun k env -> write_rails p w env (rails_of_input k))
    (Circuit.inputs p.circuit)

let settle ?budget p =
  for w = 0 to p.n_words - 1 do
    if p.live.(w) <> 0 then begin
      algorithm_a ?budget p w;
      algorithm_b ?budget p w
    end
  done

let apply_vector ?budget p v =
  if Array.length v <> Circuit.n_inputs p.circuit then
    invalid_arg "Parallel_sim.apply_vector: wrong vector length";
  for w = 0 to p.n_words - 1 do
    let mask = p.live.(w) in
    if mask <> 0 then begin
      let old =
        Array.map (fun env -> read_rails p w env) (Circuit.inputs p.circuit)
      in
      (* Blur the changing inputs: lub of old and new. *)
      set_inputs p w (fun k ->
          let nw = r_const mask v.(k) in
          { one = old.(k).one lor nw.one; zero = old.(k).zero lor nw.zero });
      algorithm_a ?budget p w;
      set_inputs p w (fun k -> r_const mask v.(k));
      algorithm_b ?budget p w
    end
  done

let machine_outputs p m =
  let w = word_of m and lane = m mod word_size in
  Array.map
    (fun o -> ternary_of_rails (read_rails p w o) lane)
    (Circuit.outputs p.circuit)

let machine_state p m =
  let w = word_of m and lane = m mod word_size in
  Array.init (Circuit.n_nodes p.circuit) (fun i ->
      ternary_of_rails (read_rails p w i) lane)

(* --- fault dropping ----------------------------------------------------- *)

(* Kill the given lanes of word [w]: clear them from the live mask and
   erase every trace of them (rails, output pinning) so dead lanes can
   never re-trigger a fixpoint round.  Pin overrides are masked lazily
   at eval time against [live]. *)
let drop_lanes p w lanes =
  let lanes = lanes land p.live.(w) in
  if lanes <> 0 then begin
    p.live.(w) <- p.live.(w) land lnot lanes;
    let keep = lnot lanes in
    let nodes = Circuit.n_nodes p.circuit in
    for i = 0 to nodes - 1 do
      let k = (i * p.n_words) + w in
      p.can1.(k) <- p.can1.(k) land keep;
      p.can0.(k) <- p.can0.(k) land keep;
      p.out_force1.(k) <- p.out_force1.(k) land keep;
      p.out_force0.(k) <- p.out_force0.(k) land keep
    done
  end

let detected_word p w ~good_outputs =
  let acc = ref 0 in
  Array.iteri
    (fun k o ->
      let r = read_rails p w o in
      match good_outputs.(k) with
      | Ternary.One -> acc := !acc lor (r.zero land lnot r.one)
      | Ternary.Zero -> acc := !acc lor (r.one land lnot r.zero)
      | Ternary.Phi -> ())
    (Circuit.outputs p.circuit);
  !acc land p.live.(w)

let detected ?(drop = true) p ~good_outputs =
  let hits = ref [] in
  for w = p.n_words - 1 downto 0 do
    if p.live.(w) <> 0 then begin
      let det = detected_word p w ~good_outputs in
      if det <> 0 then begin
        for lane = word_size - 1 downto 0 do
          if det land (1 lsl lane) <> 0 then
            hits := ((w * word_size) + lane) :: !hits
        done;
        if drop then drop_lanes p w det
      end
    end
  done;
  !hits

(* --- repacking ----------------------------------------------------------- *)

(* Compact the survivors into the fewest words, carrying their settled
   ternary state over.  Worth doing between vectors once a pack is
   mostly dead: the per-word fixpoints then run over fewer words. *)
let repack p =
  let n = n_machines p in
  let survivors = ref [] in
  for m = n - 1 downto 0 do
    if p.live.(word_of m) land lane_of m <> 0 then survivors := m :: !survivors
  done;
  let survivors = Array.of_list !survivors in
  if Array.length survivors = n then p
  else begin
    let q = skeleton p.circuit (Array.map (fun m -> p.faults.(m)) survivors) in
    let nodes = Circuit.n_nodes p.circuit in
    Array.iteri
      (fun m' m ->
        let w = word_of m and lane = m mod word_size in
        let w' = word_of m' and bit' = lane_of m' in
        for i = 0 to nodes - 1 do
          let r = read_rails p w i in
          let k' = (i * q.n_words) + w' in
          (match ternary_of_rails r lane with
          | Ternary.One -> q.can1.(k') <- q.can1.(k') lor bit'
          | Ternary.Zero -> q.can0.(k') <- q.can0.(k') lor bit'
          | Ternary.Phi ->
            q.can1.(k') <- q.can1.(k') lor bit';
            q.can0.(k') <- q.can0.(k') lor bit')
        done)
      survivors;
    q
  end

(* --- creation ------------------------------------------------------------- *)

let create c faults ~reset =
  if Array.length reset <> Circuit.n_nodes c then
    invalid_arg "Parallel_sim.create: bad reset state";
  let p = skeleton c faults in
  Array.iteri
    (fun i v ->
      for w = 0 to p.n_words - 1 do
        let k = (i * p.n_words) + w in
        if v then p.can1.(k) <- p.live.(w) else p.can0.(k) <- p.live.(w)
      done)
    reset;
  (* Settle the freshly created pack: faults may make the reset state
     unstable; conservatively flood-and-resolve before the first
     vector. *)
  settle p;
  p
