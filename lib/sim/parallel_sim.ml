open Satg_logic
open Satg_circuit
open Satg_fault

let word_size = 62

type rails = {
  one : int;
  zero : int;
}

type pack = {
  circuit : Circuit.t;
  faults : Fault.t array;
  mask : int;  (* low n_machines bits *)
  can1 : int array;  (* per node *)
  can0 : int array;
  (* Per gate: value overrides of individual pins, and output pinning. *)
  pin_overrides : (int * int * bool) list array;  (* gate -> (pin, machines, stuck) *)
  out_force1 : int array;  (* gate -> machines whose output is pinned to 1 *)
  out_force0 : int array;
}

let n_machines p = Array.length p.faults
let fault p i = p.faults.(i)

(* --- dual-rail word algebra ------------------------------------------- *)

let r_const mask b =
  if b then { one = mask; zero = 0 } else { one = 0; zero = mask }

let r_not a = { one = a.zero; zero = a.one }
let r_and a b = { one = a.one land b.one; zero = a.zero lor b.zero }
let r_or a b = { one = a.one lor b.one; zero = a.zero land b.zero }

let r_xor a b =
  {
    one = (a.one land b.zero) lor (a.zero land b.one);
    zero = (a.zero land b.zero) lor (a.one land b.one);
  }

let r_mux s a b =
  (* out = s ? a : b, computed as (s&a) | (!s&b); on the rails this is
     exactly the monotone ternary mux. *)
  r_or (r_and s a) (r_and (r_not s) b)

let r_fold_and mask = Array.fold_left r_and (r_const mask true)
let r_fold_or mask = Array.fold_left r_or (r_const mask false)
let r_fold_xor mask = Array.fold_left r_xor (r_const mask false)

let eval_cover mask cover ins =
  List.fold_left
    (fun acc cube ->
      let lits = Cube.lits cube in
      let term = ref (r_const mask true) in
      Array.iteri
        (fun i l ->
          match l with
          | Cube.D -> ()
          | Cube.T -> term := r_and !term ins.(i)
          | Cube.F -> term := r_and !term (r_not ins.(i)))
        lits;
      r_or acc !term)
    (r_const mask false) (Cover.cubes cover)

let eval_func mask func ~self ins =
  match func with
  | Gatefunc.Buf -> ins.(0)
  | Gatefunc.Not -> r_not ins.(0)
  | Gatefunc.And -> r_fold_and mask ins
  | Gatefunc.Or -> r_fold_or mask ins
  | Gatefunc.Nand -> r_not (r_fold_and mask ins)
  | Gatefunc.Nor -> r_not (r_fold_or mask ins)
  | Gatefunc.Xor -> r_fold_xor mask ins
  | Gatefunc.Xnor -> r_not (r_fold_xor mask ins)
  | Gatefunc.Mux -> r_mux ins.(0) ins.(1) ins.(2)
  | Gatefunc.Celem ->
    r_or (r_fold_and mask ins) (r_and self (r_fold_or mask ins))
  | Gatefunc.Const b -> r_const mask b
  | Gatefunc.Sop cover -> eval_cover mask cover ins

(* --- pack construction ------------------------------------------------- *)

let create c faults ~reset =
  let n = Array.length faults in
  if n > word_size then invalid_arg "Parallel_sim.create: too many faults";
  if Array.length reset <> Circuit.n_nodes c then
    invalid_arg "Parallel_sim.create: bad reset state";
  let mask = (1 lsl n) - 1 in
  let nodes = Circuit.n_nodes c in
  let can1 = Array.make nodes 0 and can0 = Array.make nodes 0 in
  Array.iteri
    (fun i v -> if v then can1.(i) <- mask else can0.(i) <- mask)
    reset;
  let pin_overrides = Array.make nodes [] in
  let out_force1 = Array.make nodes 0 and out_force0 = Array.make nodes 0 in
  Array.iteri
    (fun machine f ->
      let bit = 1 lsl machine in
      match f with
      | Fault.Input_sa { gate; pin; stuck } ->
        pin_overrides.(gate) <- (pin, bit, stuck) :: pin_overrides.(gate)
      | Fault.Output_sa { gate; stuck } ->
        if stuck then out_force1.(gate) <- out_force1.(gate) lor bit
        else out_force0.(gate) <- out_force0.(gate) lor bit)
    faults;
  (* Merge overrides hitting the same pin into single-pass masks. *)
  let p = { circuit = c; faults; mask; can1; can0; pin_overrides; out_force1; out_force0 } in
  p

let read_rails p i = { one = p.can1.(i); zero = p.can0.(i) }

let write_rails p i r =
  p.can1.(i) <- r.one;
  p.can0.(i) <- r.zero

let force_output p gid r =
  let f1 = p.out_force1.(gid) and f0 = p.out_force0.(gid) in
  {
    one = (r.one land lnot f0) lor f1;
    zero = (r.zero land lnot f1) lor f0;
  }

let eval_gate p gid =
  let fanin = Circuit.fanins p.circuit gid in
  let ins = Array.map (read_rails p) fanin in
  List.iter
    (fun (pin, machines, stuck) ->
      let r = ins.(pin) in
      let forced = r_const machines stuck in
      ins.(pin) <-
        {
          one = (r.one land lnot machines) lor forced.one;
          zero = (r.zero land lnot machines) lor forced.zero;
        })
    p.pin_overrides.(gid);
  let self = read_rails p gid in
  force_output p gid
    (eval_func p.mask (Circuit.func p.circuit gid) ~self ins)

(* Monotone closure: the dual-rail analogue of Ternary_sim.lub_closure.
   Rails only gain bits (forced rails are already pinned and never lose
   their pin), so the sweep terminates in at most [2 * word_size *
   n_gates] rail-bit flips; at the fixpoint every still-oscillating
   machine/signal pair carries both rails, i.e. Phi. *)
let lub_closure p =
  let gates = Circuit.gates p.circuit in
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun gid ->
        let cur = read_rails p gid in
        let e = eval_gate p gid in
        let next =
          force_output p gid
            { one = cur.one lor e.one; zero = cur.zero lor e.zero }
        in
        if next.one <> cur.one || next.zero <> cur.zero then begin
          write_rails p gid next;
          progress := true
        end)
      gates
  done

(* Chaotic iteration of [update] over gates until no rail changes.
   Like Ternary_sim.fixpoint, exhausting the round budget is a legal
   oscillation verdict, not a program bug: the iteration saturates via
   the monotone closure instead of dying. *)
let fixpoint ?budget p update =
  let gates = Circuit.gates p.circuit in
  let budget =
    match budget with
    | Some b -> b
    | None -> (2 * Circuit.n_nodes p.circuit * word_size) + 2
  in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < budget do
    changed := false;
    incr rounds;
    Array.iter
      (fun gid ->
        let cur = read_rails p gid in
        let next = update gid cur in
        if next.one <> cur.one || next.zero <> cur.zero then begin
          write_rails p gid next;
          changed := true
        end)
      gates
  done;
  if !changed then lub_closure p

let algorithm_a ?budget p =
  fixpoint ?budget p (fun gid cur ->
      let e = eval_gate p gid in
      (* lub: union of rails, but forced outputs stay pinned *)
      force_output p gid { one = cur.one lor e.one; zero = cur.zero lor e.zero })

let algorithm_b ?budget p = fixpoint ?budget p (fun gid _cur -> eval_gate p gid)

let set_inputs p rails_of_input =
  Array.iteri
    (fun k env -> write_rails p env (rails_of_input k))
    (Circuit.inputs p.circuit)

let settle ?budget p =
  algorithm_a ?budget p;
  algorithm_b ?budget p

let apply_vector ?budget p v =
  if Array.length v <> Circuit.n_inputs p.circuit then
    invalid_arg "Parallel_sim.apply_vector: wrong vector length";
  let old = Array.map (fun env -> read_rails p env) (Circuit.inputs p.circuit) in
  (* Blur the changing inputs: lub of old and new. *)
  set_inputs p (fun k ->
      let nw = r_const p.mask v.(k) in
      { one = old.(k).one lor nw.one; zero = old.(k).zero lor nw.zero });
  algorithm_a ?budget p;
  set_inputs p (fun k -> r_const p.mask v.(k));
  algorithm_b ?budget p

let ternary_of_rails r machine =
  let bit = 1 lsl machine in
  match (r.one land bit <> 0, r.zero land bit <> 0) with
  | true, false -> Ternary.One
  | false, true -> Ternary.Zero
  | true, true -> Ternary.Phi
  | false, false -> assert false

let machine_outputs p machine =
  Array.map
    (fun o -> ternary_of_rails (read_rails p o) machine)
    (Circuit.outputs p.circuit)

let machine_state p machine =
  Array.init (Circuit.n_nodes p.circuit) (fun i ->
      ternary_of_rails (read_rails p i) machine)

let detected p ~good_outputs =
  let acc = ref 0 in
  Array.iteri
    (fun k o ->
      let r = read_rails p o in
      match good_outputs.(k) with
      | Ternary.One -> acc := !acc lor (r.zero land lnot r.one)
      | Ternary.Zero -> acc := !acc lor (r.one land lnot r.zero)
      | Ternary.Phi -> ())
    (Circuit.outputs p.circuit);
  !acc land p.mask

(* Settle the freshly created pack: faults may make the reset state
   unstable; conservatively flood-and-resolve before the first vector. *)
let create c faults ~reset =
  let p = create c faults ~reset in
  settle p;
  p
