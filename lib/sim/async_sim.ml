open Satg_guard
open Satg_circuit

type outcome =
  | Settles of bool array
  | Non_confluent of bool array list
  | Exceeds_budget

let key = Circuit.state_to_string

module StringSet = Set.Make (String)

let state_of_key k =
  Array.init (String.length k) (fun i -> k.[i] = '1')

let fireable c can_fire s =
  List.filter (fun g -> can_fire s g) (Circuit.excited_gates c s)

(* One layer of the R_delta frontier: every excited (and fireable) gate
   of every state may fire; states with nothing fireable persist
   (self-loop). *)
let step_frontier c can_fire frontier =
  StringSet.fold
    (fun sk acc ->
      let s = state_of_key sk in
      match fireable c can_fire s with
      | [] -> StringSet.add sk acc
      | excited ->
        List.fold_left
          (fun acc g -> StringSet.add (key c (Circuit.fire c s g)) acc)
          acc excited)
    frontier StringSet.empty

let all_stable c can_fire frontier =
  StringSet.for_all (fun sk -> fireable c can_fire (state_of_key sk) = []) frontier

let fire_all _ _ = true

exception Frontier_limit

let states_after ?(max_frontier = max_int) ?(can_fire = fire_all)
    ?(guard = Guard.none) c ~k s =
  let rec go i frontier =
    let width = StringSet.cardinal frontier in
    if width > max_frontier then raise Frontier_limit;
    if i >= k then frontier
    else if all_stable c can_fire frontier then frontier
    else begin
      Guard.spend_transitions guard width;
      go (i + 1) (step_frontier c can_fire frontier)
    end
  in
  let final = go 0 (StringSet.singleton (key c s)) in
  StringSet.elements final |> List.map state_of_key

let apply_vector c ~k s v =
  if not (Circuit.is_stable c s) then
    invalid_arg "Async_sim.apply_vector: state not stable";
  let s1 = Circuit.apply_input_vector c s v in
  let finals = states_after c ~k s1 in
  if List.exists (fun s' -> not (Circuit.is_stable c s')) finals then
    Exceeds_budget
  else
    match finals with
    | [ s' ] -> Settles s'
    | [] -> assert false
    | multiple -> Non_confluent multiple

let settle c ~max_steps s =
  let rec go i s =
    match Circuit.excited_gates c s with
    | [] -> Some s
    | g :: _ -> if i >= max_steps then None else go (i + 1) (Circuit.fire c s g)
  in
  go 0 (Array.copy s)

let reachable_stable_states c ~k ~from =
  let n_in = Circuit.n_inputs c in
  let vectors =
    List.init (1 lsl n_in) (fun mask ->
        Array.init n_in (fun i -> mask land (1 lsl i) <> 0))
  in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push s =
    let sk = key c s in
    if not (Hashtbl.mem seen sk) then begin
      Hashtbl.replace seen sk ();
      Queue.add s queue
    end
  in
  List.iter
    (fun s ->
      if Circuit.is_stable c s then push s
      else
        match settle c ~max_steps:k s with
        | Some s' -> push s'
        | None -> ())
    from;
  while not (Queue.is_empty queue) do
    let s = Queue.take queue in
    List.iter
      (fun v ->
        if v <> Circuit.input_vector_of_state c s then
          match apply_vector c ~k s v with
          | Settles s' -> push s'
          | Non_confluent finals -> List.iter push finals
          | Exceeds_budget -> ())
      vectors
  done;
  Hashtbl.fold (fun sk () acc -> state_of_key sk :: acc) seen []
  |> List.sort Stdlib.compare

type classification =
  | C_settles of bool array
  | C_invalid of bool array list
  | C_capped

let classify_vector ?(max_frontier = max_int) ?(guard = Guard.none) c ~k s v =
  if not (Circuit.is_stable c s) then
    invalid_arg "Async_sim.classify_vector: state not stable";
  let s1 = Circuit.apply_input_vector c s v in
  let stables = Hashtbl.create 4 in
  let harvest frontier =
    StringSet.iter
      (fun sk ->
        if (not (Hashtbl.mem stables sk)) && Circuit.is_stable c (state_of_key sk)
        then Hashtbl.replace stables sk ())
      frontier
  in
  let stable_list () =
    Hashtbl.fold (fun sk () acc -> state_of_key sk :: acc) stables []
    |> List.sort Stdlib.compare
  in
  let seen_frontiers = Hashtbl.create 16 in
  let rec go i frontier =
    Guard.spend_transitions guard (StringSet.cardinal frontier);
    harvest frontier;
    if Hashtbl.length stables >= 2 then
      (* Two distinct final stable states are already reachable. *)
      C_invalid (stable_list ())
    else if StringSet.cardinal frontier > max_frontier then C_capped
    else if all_stable c fire_all frontier then
      (* Single stable state (cardinality 1 since stables < 2). *)
      C_settles (state_of_key (StringSet.choose frontier))
    else if i >= k then C_invalid (stable_list ())
    else if StringSet.cardinal frontier <= 4096 then begin
      (* Cycle detection (cheap only while the frontier is small): a
         repeated frontier that is not all-stable never settles. *)
      let key = String.concat ";" (StringSet.elements frontier) in
      if Hashtbl.mem seen_frontiers key then C_invalid (stable_list ())
      else begin
        Hashtbl.replace seen_frontiers key ();
        go (i + 1) (step_frontier c fire_all frontier)
      end
    end
    else go (i + 1) (step_frontier c fire_all frontier)
  in
  go 0 (StringSet.singleton (key c s1))
