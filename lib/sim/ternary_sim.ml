open Satg_logic
open Satg_circuit

type state = Ternary.t array

let of_bool_state s = Array.map Ternary.of_bool s

let to_bool_state_opt s =
  if Ternary.vector_is_binary s then
    Some (Array.map (fun v -> v = Ternary.One) s)
  else None

(* Monotone lub closure: [v <- lub v (eval v)] only climbs the
   information order, so it reaches a fixpoint in at most [n_gates + 1]
   sweeps.  At the fixpoint every gate either agrees with its function
   or is Phi, which keeps the state a sound over-approximation of every
   delayed execution — this is exactly algorithm A's invariant. *)
let lub_closure c s =
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun gid ->
        let v = Ternary.lub s.(gid) (Circuit.eval_gate_ternary c s gid) in
        if not (Ternary.equal v s.(gid)) then begin
          s.(gid) <- v;
          progress := true
        end)
      (Circuit.gates c)
  done;
  s

(* Chaotic iteration to a fixpoint.  [update] computes the new value of
   a gate from the current state; when the algorithms are well-behaved
   this quiesces within [2 * n_gates + 2] rounds.  A circuit that
   exhausts the round budget (possible for pathological gate functions,
   or when a caller forces a tiny [budget]) is not a program bug:
   oscillation under ternary simulation is a legal outcome per
   Eichelberger, so instead of dying the iteration *saturates* — it
   switches to the monotone lub closure, which always terminates and
   degrades every still-oscillating signal to Phi. *)
let fixpoint ?budget c update s =
  let s = Array.copy s in
  let changed = ref true in
  let rounds = ref 0 in
  let budget =
    match budget with Some b -> b | None -> (2 * Circuit.n_gates c) + 2
  in
  while !changed && !rounds < budget do
    changed := false;
    incr rounds;
    Array.iter
      (fun gid ->
        let v = update s gid in
        if not (Ternary.equal v s.(gid)) then begin
          s.(gid) <- v;
          changed := true
        end)
      (Circuit.gates c)
  done;
  if !changed then lub_closure c s else s

let algorithm_a ?budget c s =
  fixpoint ?budget c
    (fun s gid -> Ternary.lub s.(gid) (Circuit.eval_gate_ternary c s gid))
    s

let algorithm_b ?budget c s =
  fixpoint ?budget c (fun s gid -> Circuit.eval_gate_ternary c s gid) s

let set_inputs c s v =
  let s = Array.copy s in
  Array.iteri (fun k env -> s.(env) <- v.(k)) (Circuit.inputs c);
  s

let apply_vector_ternary ?budget c s v =
  if Array.length v <> Circuit.n_inputs c then
    invalid_arg "Ternary_sim.apply_vector: wrong vector length";
  let old = Array.map (fun env -> s.(env)) (Circuit.inputs c) in
  let blurred = Ternary.vector_lub old v in
  let s = algorithm_a ?budget c (set_inputs c s blurred) in
  algorithm_b ?budget c (set_inputs c s v)

let apply_vector ?budget c s v =
  apply_vector_ternary ?budget c s (Array.map Ternary.of_bool v)

let outputs c s = Array.map (fun o -> s.(o)) (Circuit.outputs c)
