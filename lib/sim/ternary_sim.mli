(** Eichelberger ternary simulation (algorithms A and B).

    Conservative hazard/race analysis in O(gates²): when an input
    vector is applied to a (possibly already ternary) state, algorithm
    A floods every signal that {e could} change with {!Satg_logic.Ternary.Phi},
    then algorithm B resolves every signal whose final value is
    delay-independent.  If the result is fully binary, the circuit
    settles confluently to exactly that state; any remaining [Phi]
    means a potential race, oscillation, or genuinely uncertain
    memory.

    Settling is {e fail-soft}: if an iteration exhausts its round
    budget (a legal outcome — oscillation under ternary simulation is
    not a program bug), it saturates by switching to a monotone lub
    closure that floods every still-oscillating signal with [Phi] and
    always terminates.  The [?budget] parameters below override the
    default round budget of [2 * n_gates + 2]; they exist so tests and
    resource-constrained callers can force early saturation. *)

open Satg_logic
open Satg_circuit

type state = Ternary.t array
(** Indexed by node id, like boolean circuit states. *)

val of_bool_state : bool array -> state
val to_bool_state_opt : state -> bool array option

val algorithm_a : ?budget:int -> Circuit.t -> state -> state
(** Least fixpoint of [v <- lub v (eval v)] over gate nodes; inputs
    are left untouched. *)

val algorithm_b : ?budget:int -> Circuit.t -> state -> state
(** Greatest fixpoint of [v <- eval v] below the given state. *)

val apply_vector : ?budget:int -> Circuit.t -> state -> bool array -> state
(** Full test-cycle analysis: inputs go to [lub old new], algorithm A
    runs, inputs go to [new], algorithm B runs. *)

val apply_vector_ternary :
  ?budget:int -> Circuit.t -> state -> Ternary.t array -> state
(** Like {!apply_vector} with a possibly uncertain input vector. *)

val outputs : Circuit.t -> state -> Ternary.t array
