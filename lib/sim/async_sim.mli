(** Exact exploration of a circuit under the unbounded gate-delay model.

    From a stable state and a new input vector, the circuit evolves by
    firing one excited gate at a time ([R_delta] in the paper); all
    interleavings are explored.  This is the reference semantics the
    CSSG is built from, and also the oracle the ternary simulator is
    tested against. *)

open Satg_guard
open Satg_circuit

type outcome =
  | Settles of bool array
      (** every interleaving reaches this unique stable state within
          the budget *)
  | Non_confluent of bool array list
      (** at least two distinct stable results are reachable at the end
          of the test cycle (sorted, for determinism) *)
  | Exceeds_budget
      (** some interleaving is still unstable after [k] transitions
          (oscillation, or a settling chain longer than the test
          cycle) *)

exception Frontier_limit
(** Raised by {!states_after} when a layer exceeds [max_frontier]. *)

val states_after :
  ?max_frontier:int ->
  ?can_fire:(bool array -> int -> bool) ->
  ?guard:Guard.t ->
  Circuit.t ->
  k:int ->
  bool array ->
  bool array list
(** [states_after c ~k s] is the set of states reachable from [s] in
    {e exactly} [k] firings, where stable states self-loop (paper's
    [TCR_k] frontier).  Sorted lexicographically.

    [can_fire s g] may veto individual transitions (used to model
    delay faults: a slow gate's transition is suppressed); a state
    whose every excited gate is vetoed behaves as stable.

    [guard] is charged one transition per frontier state per layer.
    @raise Frontier_limit when some layer grows beyond [max_frontier]
    (default: unlimited).
    @raise Satg_guard.Guard.Exhausted when [guard] trips. *)

val apply_vector : Circuit.t -> k:int -> bool array -> bool array -> outcome
(** [apply_vector c ~k s v] applies input vector [v] to the stable
    state [s] and classifies the outcome after at most [k] firings.
    @raise Invalid_argument if [s] is not stable. *)

val settle : Circuit.t -> max_steps:int -> bool array -> bool array option
(** Fire excited gates in a fixed (lowest-id-first) order until stable;
    [None] if the budget runs out.  One arbitrary interleaving — used
    to compute reset states, not for validity analysis. *)

val reachable_stable_states :
  Circuit.t -> k:int -> from:bool array list -> bool array list
(** All stable states reachable in test mode when {e every} input
    vector (valid or not) may be applied; the union of all settling
    results.  Used by fault activation to know where signals can rest.
    Bounded exploration: states are accumulated to a fixed point. *)

type classification =
  | C_settles of bool array  (** unique stable outcome within budget *)
  | C_invalid of bool array list
      (** non-confluent, oscillating or over budget; carries the stable
          states observed along the way (TCSG node harvest) *)
  | C_capped  (** frontier limit hit before a verdict *)

val classify_vector :
  ?max_frontier:int ->
  ?guard:Guard.t ->
  Circuit.t ->
  k:int ->
  bool array ->
  bool array ->
  classification
(** [classify_vector c ~k s v] decides the CSSG validity of applying
    [v] to the stable state [s], with early exits: a second distinct
    stable state or a repeated non-stable frontier ends the analysis
    immediately.  Agrees with {!apply_vector} wherever both give a
    verdict.  [guard] is charged like in {!states_after}.
    @raise Invalid_argument if [s] is not stable.
    @raise Satg_guard.Guard.Exhausted when [guard] trips. *)
