(** Bit-parallel ternary fault simulation, multi-word with fault
    dropping.

    Simulates any number of faulty machines at once (Seshu-style
    parallel simulation crossed with Eichelberger's ternary algorithm,
    as in the paper §5.4).  Machines are laid out as lanes of
    {!word_size}-bit words: machine [m] is lane [m mod word_size] of
    word [m / word_size]; each node carries per word two machine-indexed
    bit words — a "can be 1" rail and a "can be 0" rail; both bits set
    encode {!Satg_logic.Ternary.Phi}.

    Faults are {e forced}, not structurally injected: input stuck-at
    faults override the read value of one pin for one machine, output
    stuck-at faults pin a gate's rails for one machine.  All machines
    therefore share the good netlist and evaluate in lock-step.

    {b Fault dropping}: each word keeps a live-lane mask.  {!detected}
    (by default) drops the machines it reports — their rail bits are
    erased everywhere, they stop contributing to the fixpoints, and a
    word whose lanes are all dead is skipped outright.  {!repack}
    compacts the survivors of a mostly-dead pack into fewer words,
    carrying their settled state over.

    Settling is fail-soft like {!Ternary_sim}: a machine that exhausts
    the round budget saturates to Phi on every still-oscillating rail
    pair via a monotone closure instead of crashing.  [?budget] forces
    a smaller round budget (tests, resource-constrained callers). *)

open Satg_logic
open Satg_circuit
open Satg_fault

val word_size : int
(** Machines per word (62). *)

(** {1 Dual-rail word algebra}

    Exposed for property testing: each lane encodes a ternary value as
    a ("can be 1", "can be 0") rail pair; [one land zero] lanes are
    Phi, and a lane with neither rail carries no information (only
    dropped machines).  All operators are monotone in the information
    order (rails only gain bits). *)

type rails = {
  one : int;
  zero : int;
}

val r_const : int -> bool -> rails
(** [r_const mask b]: the constant [b] on every lane of [mask]. *)

val r_not : rails -> rails
val r_and : rails -> rails -> rails
val r_or : rails -> rails -> rails
val r_xor : rails -> rails -> rails

val r_mux : rails -> rails -> rails -> rails
(** [r_mux s a b] = [s ? a : b], the monotone ternary mux. *)

val r_celem : int -> self:rails -> rails array -> rails
(** Muller C-element: all-1 sets, all-0 resets, otherwise [self]. *)

val eval_func : int -> Gatefunc.t -> self:rails -> rails array -> rails
(** One gate function over rail words ([mask] = lanes in use). *)

val ternary_of_rails : rails -> int -> Ternary.t
(** Decode one lane.
    @raise Invalid_argument on an empty (dropped) lane. *)

val rails_of_ternaries : Ternary.t array -> rails
(** Encode lane [i] from element [i] (inverse of {!ternary_of_rails}
    over the first [Array.length] lanes). *)

(** {1 Packs} *)

type pack

val create : Circuit.t -> Fault.t array -> reset:bool array -> pack
(** Build a pack of [Array.length faults] machines — any number; the
    pack spans as many words as needed — all starting from the good
    circuit's [reset] state with their fault forced, then
    conservatively settled (ternary).
    @raise Invalid_argument on a reset state of the wrong size. *)

val n_machines : pack -> int
(** Machines the pack was created with (live or dropped). *)

val n_words : pack -> int
val fault : pack -> int -> Fault.t

val n_live : pack -> int
(** Machines not yet dropped. *)

val is_live : pack -> int -> bool
val live_faults : pack -> Fault.t list
(** Faults of the live machines, in machine order. *)

val apply_vector : ?budget:int -> pack -> bool array -> unit
(** Run one test cycle (algorithm A with blurred inputs, then algorithm
    B with the new inputs) on every live machine.  Mutates the pack;
    fully-dead words are skipped. *)

val machine_outputs : pack -> int -> Ternary.t array
(** Primary-output values of one live machine. *)

val detected : ?drop:bool -> pack -> good_outputs:Ternary.t array -> int list
(** Machines (ascending) whose outputs {e definitely} differ from the
    good machine right now: some output where the good value is binary
    and the machine's value is the opposite binary value.  With [drop]
    (the default) the reported machines are dropped from the pack. *)

val repack : pack -> pack
(** Compact the live machines into the fewest words, carrying their
    current state; machine indices are renumbered (use {!fault} on the
    {e new} pack).  Returns the pack unchanged if nothing was
    dropped. *)

val machine_state : pack -> int -> Ternary.t array
(** Full node state of one live machine (diagnostics, tests). *)
