(** Bit-parallel ternary fault simulation.

    Simulates up to {!word_size} faulty machines at once (Seshu-style
    parallel simulation crossed with Eichelberger's ternary algorithm,
    as in the paper §5.4).  Each node carries two machine-indexed bit
    words — a "can be 1" rail and a "can be 0" rail; both bits set
    encode {!Satg_logic.Ternary.Phi}.

    Faults are {e forced}, not structurally injected: input stuck-at
    faults override the read value of one pin for one machine, output
    stuck-at faults pin a gate's rails for one machine.  All machines
    therefore share the good netlist and evaluate in lock-step.

    Settling is fail-soft like {!Ternary_sim}: a machine that exhausts
    the round budget saturates to Phi on every still-oscillating rail
    pair via a monotone closure instead of crashing.  [?budget] forces
    a smaller round budget (tests, resource-constrained callers). *)

open Satg_logic
open Satg_circuit
open Satg_fault

val word_size : int
(** Maximum machines per pack (62). *)

type pack

val create : Circuit.t -> Fault.t array -> reset:bool array -> pack
(** Build a pack of [Array.length faults] machines (≤ {!word_size}),
    all starting from the good circuit's [reset] state with their fault
    forced, then conservatively settled (ternary).
    @raise Invalid_argument on too many faults. *)

val n_machines : pack -> int
val fault : pack -> int -> Fault.t

val apply_vector : ?budget:int -> pack -> bool array -> unit
(** Run one test cycle (algorithm A with blurred inputs, then algorithm
    B with the new inputs) on every machine.  Mutates the pack. *)

val machine_outputs : pack -> int -> Ternary.t array
(** Primary-output values of one machine. *)

val detected : pack -> good_outputs:Ternary.t array -> int
(** Bitmask of machines whose outputs {e definitely} differ from the
    good machine right now: some output where the good value is binary
    and the machine's value is the opposite binary value. *)

val machine_state : pack -> int -> Ternary.t array
(** Full node state of one machine (diagnostics, tests). *)
