open Satg_sat

(* ------------------------------------------------------------------ *)
(* Tseitin gate definitions                                            *)
(* ------------------------------------------------------------------ *)

let define_and ?act s y xs =
  List.iter (fun x -> Sat.add_clause ?act s [ Sat.neg y; x ]) xs;
  Sat.add_clause ?act s (y :: List.map Sat.neg xs)

let define_or ?act s y xs =
  List.iter (fun x -> Sat.add_clause ?act s [ Sat.neg x; y ]) xs;
  Sat.add_clause ?act s (Sat.neg y :: xs)

let define_xor ?act s y a b =
  Sat.add_clause ?act s [ Sat.neg y; a; b ];
  Sat.add_clause ?act s [ Sat.neg y; Sat.neg a; Sat.neg b ];
  Sat.add_clause ?act s [ y; Sat.neg a; b ];
  Sat.add_clause ?act s [ y; a; Sat.neg b ]

let define_ite ?act s y c a b =
  Sat.add_clause ?act s [ Sat.neg y; Sat.neg c; a ];
  Sat.add_clause ?act s [ Sat.neg y; c; b ];
  Sat.add_clause ?act s [ y; Sat.neg c; Sat.neg a ];
  Sat.add_clause ?act s [ y; c; Sat.neg b ]

let define_eq ?act s a b =
  Sat.add_clause ?act s [ Sat.neg a; b ];
  Sat.add_clause ?act s [ a; Sat.neg b ]

(* Ladder AMO: commander c_i = "some of x_0..x_i is true";
   x_{i+1} forbidden once c_i holds.  The last element needs only the
   exclusion clause — no commander covers a suffix that is empty. *)
let at_most_one s = function
  | [] | [ _ ] -> ()
  | x0 :: rest ->
    let rec go c = function
      | [] -> ()
      | [ x ] -> Sat.add_clause s [ Sat.neg c; Sat.neg x ]
      | x :: tl ->
        Sat.add_clause s [ Sat.neg c; Sat.neg x ];
        let c' = Sat.pos (Sat.new_var s) in
        Sat.add_clause s [ Sat.neg c; c' ];
        Sat.add_clause s [ Sat.neg x; c' ];
        go c' tl
    in
    go x0 rest

(* ------------------------------------------------------------------ *)
(* Hash-consed definitions                                             *)
(* ------------------------------------------------------------------ *)

module Defs = struct
  type key =
    | K_and of Sat.lit list  (* sorted, deduped *)
    | K_or of Sat.lit list
    | K_xor of Sat.lit * Sat.lit
    | K_ite of Sat.lit * Sat.lit * Sat.lit

  type t = {
    sat : Sat.t;
    tbl : (Sat.act option * key, Sat.lit) Hashtbl.t;
    mutable true_var : int option;
    mutable defined : int;
    mutable interned : int;
  }

  let create sat =
    { sat; tbl = Hashtbl.create 256; true_var = None; defined = 0; interned = 0 }

  let true_ d =
    match d.true_var with
    | Some v -> Sat.pos v
    | None ->
      let v = Sat.new_var d.sat in
      Sat.add_clause d.sat [ Sat.pos v ];
      d.true_var <- Some v;
      Sat.pos v

  let false_ d = Sat.neg (true_ d)

  (* Sort + dedup; detect a complementary pair (returns None). *)
  let canon lits =
    let lits = List.sort_uniq compare lits in
    let rec clash = function
      | a :: (b :: _ as tl) -> a lxor 1 = b || clash tl
      | _ -> false
    in
    if clash lits then None else Some lits

  let hit d ?act key define =
    let k = (act, key) in
    match Hashtbl.find_opt d.tbl k with
    | Some y ->
      d.interned <- d.interned + 1;
      y
    | None ->
      let y = Sat.pos (Sat.new_var d.sat) in
      define y;
      Hashtbl.replace d.tbl k y;
      d.defined <- d.defined + 1;
      y

  let or_ ?act d lits =
    match canon lits with
    | None -> true_ d
    | Some [] -> false_ d
    | Some [ l ] -> l
    | Some lits -> hit d ?act (K_or lits) (fun y -> define_or ?act d.sat y lits)

  let and_ ?act d lits =
    match canon lits with
    | None -> false_ d
    | Some [] -> true_ d
    | Some [ l ] -> l
    | Some lits ->
      hit d ?act (K_and lits) (fun y -> define_and ?act d.sat y lits)

  let xor_ ?act d a b =
    if a = b then false_ d
    else if a = Sat.neg b then true_ d
    else
      let a, b = if a <= b then (a, b) else (b, a) in
      hit d ?act (K_xor (a, b)) (fun y -> define_xor ?act d.sat y a b)

  let ite_ ?act d c a b =
    if a = b then a
    else if c = a then or_ ?act d [ a; b ] (* c?c:b  =  c or b *)
    else
      hit d ?act (K_ite (c, a, b)) (fun y -> define_ite ?act d.sat y c a b)

  let release d act =
    let dead = Some act in
    Hashtbl.iter
      (fun ((a, _) as k) _ -> if a = dead then Hashtbl.remove d.tbl k)
      (Hashtbl.copy d.tbl)

  let defined d = d.defined
  let interned d = d.interned
end

(* ------------------------------------------------------------------ *)
(* Time-frame unroller                                                 *)
(* ------------------------------------------------------------------ *)

module Unroller = struct
  type t = {
    sat : Sat.t;
    act : Sat.act option;
    mutable n_states : int;
    mutable initial : bool array;
    mutable in_edges : int list array;  (* per state, edge ids into it *)
    mutable e_src : int array;
    mutable e_dst : int array;
    mutable n_edges : int;
    mutable svars : int array array;  (* frame -> state -> var *)
    mutable evars : int array array;  (* step  -> edge  -> var *)
    mutable n_frames : int;
  }

  let create ?act sat =
    {
      sat;
      act;
      n_states = 0;
      initial = Array.make 16 false;
      in_edges = Array.make 16 [];
      e_src = Array.make 16 0;
      e_dst = Array.make 16 0;
      n_edges = 0;
      svars = Array.make 8 [||];
      evars = Array.make 8 [||];
      n_frames = 0;
    }

  let clause u lits = Sat.add_clause ?act:u.act u.sat lits

  let grow a n fill =
    if n <= Array.length a then a
    else begin
      let a' = Array.make (max n (2 * Array.length a)) fill in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    end

  let add_state u ~initial =
    let i = u.n_states in
    u.initial <- grow u.initial (i + 1) false;
    u.in_edges <- grow u.in_edges (i + 1) [];
    u.initial.(i) <- initial;
    u.in_edges.(i) <- [];
    u.n_states <- i + 1;
    i

  let add_edge u ~src ~dst =
    if src < 0 || src >= u.n_states || dst < 0 || dst >= u.n_states then
      invalid_arg "Cnf.Unroller.add_edge: unknown state";
    let e = u.n_edges in
    u.e_src <- grow u.e_src (e + 1) 0;
    u.e_dst <- grow u.e_dst (e + 1) 0;
    u.e_src.(e) <- src;
    u.e_dst.(e) <- dst;
    u.in_edges.(dst) <- e :: u.in_edges.(dst);
    u.n_edges <- e + 1;
    e

  let n_states u = u.n_states
  let n_edges u = u.n_edges
  let n_frames u = u.n_frames

  (* Fresh state variables for one frame, over the states known now. *)
  let fresh_state_frame u =
    Array.init u.n_states (fun _ -> Sat.new_var u.sat)

  let encode_next_frame u =
    let f = u.n_frames in
    u.svars <- grow u.svars (f + 1) [||];
    if f = 0 then begin
      let vars = fresh_state_frame u in
      for j = 0 to u.n_states - 1 do
        if not u.initial.(j) then clause u [ Sat.neg_of vars.(j) ]
      done;
      u.svars.(0) <- vars
    end
    else begin
      (* step t = f - 1 between the existing frame t and the new f *)
      let t = f - 1 in
      let prev = u.svars.(t) in
      let next = fresh_state_frame u in
      u.svars.(f) <- next;
      u.evars <- grow u.evars (t + 1) [||];
      let ev = Array.make u.n_edges (-1) in
      u.evars.(t) <- ev;
      for e = 0 to u.n_edges - 1 do
        let v = Sat.new_var u.sat in
        ev.(e) <- v;
        (* e_t -> s_{t,src}: an edge whose source does not yet exist at
           frame t can simply never be taken there. *)
        (if u.e_src.(e) < Array.length prev then
           clause u [ Sat.neg_of v; Sat.pos prev.(u.e_src.(e)) ]
         else clause u [ Sat.neg_of v ]);
        clause u [ Sat.neg_of v; Sat.pos next.(u.e_dst.(e)) ]
      done;
      (* support: s_{t+1,j} -> OR of in-edges at step t *)
      for j = 0 to u.n_states - 1 do
        clause u
          (Sat.neg_of next.(j)
          :: List.rev_map (fun e -> Sat.pos ev.(e)) u.in_edges.(j))
      done
    end;
    u.n_frames <- f + 1

  let ensure_frames u ~upto =
    while u.n_frames <= upto do
      encode_next_frame u
    done

  let state_lit u ~frame i =
    if frame < 0 || frame >= u.n_frames then
      invalid_arg "Cnf.Unroller.state_lit: frame not encoded";
    let vars = u.svars.(frame) in
    if i < 0 || i >= u.n_states then
      invalid_arg "Cnf.Unroller.state_lit: unknown state"
    else if i < Array.length vars then Some (Sat.pos vars.(i))
    else None

  let decode_path u ~frame ~state =
    let sat = u.sat in
    let rec go t j acc =
      if t = 0 then acc
      else
        let step = t - 1 in
        let ev = u.evars.(step) in
        match
          List.find_opt
            (fun e ->
              e < Array.length ev
              && Sat.lit_true sat (Sat.pos ev.(e)))
            u.in_edges.(j)
        with
        | None -> invalid_arg "Cnf.Unroller.decode_path: no supporting edge"
        | Some e -> go (t - 1) u.e_src.(e) (e :: acc)
    in
    (match state_lit u ~frame state with
    | Some l when Sat.lit_true u.sat l -> ()
    | _ -> invalid_arg "Cnf.Unroller.decode_path: state not true in model");
    go frame state []

  let retire u =
    match u.act with
    | None -> invalid_arg "Cnf.Unroller.retire: unroller has no activation"
    | Some a ->
      Sat.retire u.sat a;
      (* The act's clauses are gone, so no live clause mentions these
         variables: take them out of the branching heap for good. *)
      Array.iter
        (fun vars ->
          Array.iter (fun v -> Sat.set_decidable u.sat v false) vars)
        u.svars;
      Array.iter
        (fun ev ->
          Array.iter (fun v -> if v >= 0 then Sat.set_decidable u.sat v false) ev)
        u.evars
end
