(** CNF encodings on top of {!Satg_sat.Sat}: Tseitin gate definitions
    and the time-frame unroller behind the SAT ATPG backend.

    A CSSG step is not combinational — it hides up to [k]
    micro-firings plus a confluence check — so the unroller encodes the
    {e graph} rather than the gates: per frame [t] a variable
    [s_{t,i}] per state ("the machine is in state [i] after [t] test
    cycles") and per step a variable [e_t] per edge ("step [t] takes
    edge [e]").  Clauses per step:

    - edge implications: [e_t -> s_{t,src e}] and [e_t -> s_{t+1,dst e}]
    - support: [s_{t+1,j} -> OR of the in-edges of j at step t]
      (a unit [¬s_{t+1,j}] when [j] has none)

    plus unit clauses [¬s_{0,j}] for every non-initial [j] at frame 0.
    No at-most-one constraints are needed: any model chains a true
    frame-[T] state variable back to frame 0 along true edge variables, so backward
    decoding always recovers a {e real} path of exactly [T] edges.
    Querying [state_lit ~frame:t] under assumptions for [t = 0, 1, ...]
    therefore finds the BFS shortest distance — the exact-length
    bounded-model-checking view of justification.

    The graph may grow {e between} [ensure_frames] calls (the
    ring-synchronized product unrolling of differentiation): states and
    edges added later simply do not exist in already-encoded frames,
    which is sound because a state first discovered at ring [d] can
    only sit at positions [>= d] of any path.

    Everything here threads {!Satg_sat.Sat}'s activation literals: a
    [define_*] or an {!Unroller} created with [~act] emits only
    act-guarded clauses, so a whole per-fault encoding can be switched
    on per solve and deleted wholesale when the fault retires, while
    act-free (shared, e.g. good-machine) clauses persist. *)

open Satg_sat

(** {1 Tseitin gate definitions}

    Each [define_*] constrains a fresh literal [y] to equal a boolean
    function of its inputs, in the standard Tseitin clause set.  With
    [~act] the defining clauses are guarded by the activation literal
    and the equivalence holds only under the {!Sat.act_lit}
    assumption. *)

val define_and : ?act:Sat.act -> Sat.t -> Sat.lit -> Sat.lit list -> unit
(** [define_and s y xs]: [y <-> AND xs].  [y <-> true] for [[]]. *)

val define_or : ?act:Sat.act -> Sat.t -> Sat.lit -> Sat.lit list -> unit
(** [define_or s y xs]: [y <-> OR xs].  [y <-> false] for [[]]. *)

val define_xor : ?act:Sat.act -> Sat.t -> Sat.lit -> Sat.lit -> Sat.lit -> unit
(** [define_xor s y a b]: [y <-> a XOR b]. *)

val define_ite :
  ?act:Sat.act -> Sat.t -> Sat.lit -> Sat.lit -> Sat.lit -> Sat.lit -> unit
(** [define_ite s y c a b]: [y <-> if c then a else b]. *)

val define_eq : ?act:Sat.act -> Sat.t -> Sat.lit -> Sat.lit -> unit
(** [define_eq s a b]: [a <-> b]. *)

val at_most_one : Sat.t -> Sat.lit list -> unit
(** Ladder (sequential) encoding with fresh commander variables: at
    most one of the literals is true.  For [n >= 2] literals this emits
    exactly [n - 2] commander variables and [3n - 5] clauses — the last
    element gets only its exclusion clause, since no suffix remains for
    a final commander to guard. *)

(** {1 Hash-consed definitions}

    A structural-hashing layer over the [define_*] primitives: asking
    for the same gate over the same (canonicalised) operands returns
    the {e same} literal instead of re-Tseitin-ing a fresh one.
    Operands of [and_]/[or_] are sorted and deduplicated, and trivial
    cones ([x AND ¬x], singletons, …) fold to constants without
    touching the table.  Definitions made under [~act] are interned per
    activation and must be {!Defs.release}d when the activation
    retires — their clauses are gone, so a later hit would be
    unsound. *)

module Defs : sig
  type t

  val create : Sat.t -> t

  val true_ : t -> Sat.lit
  (** A literal constrained true (allocated once, lazily). *)

  val false_ : t -> Sat.lit

  val or_ : ?act:Sat.act -> t -> Sat.lit list -> Sat.lit
  val and_ : ?act:Sat.act -> t -> Sat.lit list -> Sat.lit
  val xor_ : ?act:Sat.act -> t -> Sat.lit -> Sat.lit -> Sat.lit
  val ite_ : ?act:Sat.act -> t -> Sat.lit -> Sat.lit -> Sat.lit -> Sat.lit

  val release : t -> Sat.act -> unit
  (** Forget every definition interned under the activation.  Call
      after (or with) {!Sat.retire} — the defining clauses die with the
      act. *)

  val defined : t -> int
  (** Fresh Tseitin definitions emitted. *)

  val interned : t -> int
  (** Structural-hashing hits (a definition served from the table). *)
end

(** {1 Time-frame unroller} *)

module Unroller : sig
  type t

  val create : ?act:Sat.act -> Sat.t -> t
  (** With [~act], every clause the unroller emits is guarded by the
      activation literal: the whole unrolling holds only under the
      {!Sat.act_lit} assumption and can be deleted with {!retire}. *)

  val add_state : t -> initial:bool -> int
  (** New state; returns its dense id.  Adding a state after frames
      were encoded is allowed: the state has no variable (is
      unreachable) in those frames. *)

  val add_edge : t -> src:int -> dst:int -> int
  (** New edge; returns its dense id.  Later-added edges likewise do
      not exist in already-encoded steps. *)

  val n_states : t -> int
  val n_edges : t -> int

  val n_frames : t -> int
  (** Number of encoded frames ([0] before the first
      {!ensure_frames}). *)

  val ensure_frames : t -> upto:int -> unit
  (** Encode frames up to and including index [upto] (so steps
      [0 .. upto-1]).  Already-encoded frames are never revisited. *)

  val state_lit : t -> frame:int -> int -> Sat.lit option
  (** The literal "state [i] holds at frame [t]", or [None] when the
      state was added after that frame was encoded (it cannot hold
      there).
      @raise Invalid_argument if the frame is not encoded yet. *)

  val decode_path : t -> frame:int -> state:int -> int list
  (** After a satisfiable solve that assumed [state_lit ~frame state]:
      walk the model backward and return the edge ids of a real length-
      [frame] path from an initial state to [state], in forward order.
      @raise Invalid_argument if the model does not support the walk
      (i.e. the assumed literal was not true). *)

  val retire : t -> unit
  (** For an unroller created with [~act]: {!Sat.retire} the activation
      (deleting every clause of the unrolling) and mark all its state
      and edge variables undecidable.  The unroller must not be used
      afterwards.
      @raise Invalid_argument on an act-free unroller. *)
end
