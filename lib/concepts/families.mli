(** Parameterized benchmark families, assembled from {!Concepts}
    combinators and compiled through the stock STG flows.

    Each family is a generator [n -> spec] with a size knob, mirroring
    the paper's own benchmark construction (Petrify-synthesized
    speed-independent circuits, Table 1; SIS-decomposed bounded-delay
    netlists, Table 2) but scalable:

    - [pipeline]: N-stage Muller handshake pipeline (collapsed ebergen
      cells; C-element next-state functions, concurrent waves).
    - [arbiter]: N clients handshaking for one shared grant under
      mutual exclusion ([me] over the grants; input-concurrent, the
      grant functions depend on every other grant).
    - [ring]: an N-station token ring / sequencer (master-read scaled;
      one token, depth grows linearly with N).
    - [fifo]: an N-stage FIFO controller (vbe5b scaled; request wave
      fills the stages, the acknowledge wave drains them).
    - [latch]: an N-deep D-latch sampler chain (dff scaled,
      instance-suffixed clock transitions); its next-state covers
      contain opposing literals, so the hazard-free synthesis backend
      inserts redundant cubes, reproducing the Table 2 pathology.

    Size caps keep the compiled STGs inside
    [Stg.next_state_tables]'s 20-signal synthesis ceiling. *)

open Satg_stg

type family = {
  fname : string;
  doc : string;
  size_doc : string;  (** what the size knob [n] counts *)
  min_n : int;
  max_n : int;
  default_n : int;
  build : int -> Concepts.t;
      (** the raw concept composition (unvalidated size) *)
}

val all : family list
val names : string list
val find : string -> family option

val instance_name : string -> int -> string
(** ["pipeline3"] etc. — the [.model] name of an instance. *)

val generate : string -> n:int -> (Stg.t, string) result
(** Validate the size against the family's bounds and compile.
    [Error] on unknown family or out-of-range [n]. *)
