open Satg_stg

(* ------------------------------------------------------------------ *)
(* Transitions                                                         *)
(* ------------------------------------------------------------------ *)

type transition = {
  s : string;
  d : Stg.dir;
  i : int;  (* instance, >= 1; 1 is the unsuffixed default *)
}

let rise s = { s; d = Stg.Rise; i = 1 }
let fall s = { s; d = Stg.Fall; i = 1 }

let toggle t =
  { t with d = (match t.d with Stg.Rise -> Stg.Fall | Stg.Fall -> Stg.Rise) }

let inst k t =
  if k < 1 then invalid_arg "Concepts.inst: instance must be >= 1";
  { t with i = k }

let label t =
  let sign = match t.d with Stg.Rise -> "+" | Stg.Fall -> "-" in
  if t.i = 1 then t.s ^ sign else Printf.sprintf "%s%s/%d" t.s sign t.i

(* ------------------------------------------------------------------ *)
(* Concepts                                                            *)
(* ------------------------------------------------------------------ *)

type item =
  | Arc of transition * transition
  | Or_place of transition list * transition
  | Me_place of string list
  | Decl_in of string list
  | Decl_out of string list
  | Init of string * bool
  | Silent of string list
  | Mark of transition * transition * bool

type t = item list

let empty = []
let ( <+> ) a b = a @ b
let concat = List.concat

let inputs nms = [ Decl_in nms ]
let outputs nms = [ Decl_out nms ]
let initialise nm v = [ Init (nm, v) ]
let initialise0 nms = List.map (fun nm -> Init (nm, false)) nms
let initialise1 nms = List.map (fun nm -> Init (nm, true)) nms
let causality c e = [ Arc (c, e) ]
let ( --> ) = causality
let and_causality cs e = List.map (fun c -> Arc (c, e)) cs
let ( &--> ) = and_causality
let or_causality cs e = [ Or_place (cs, e) ]
let ( |--> ) = or_causality
let silent nms = [ Silent nms ]
let me a b = [ Me_place [ a; b ] ]
let me_n nms = [ Me_place nms ]
let buffer a b = concat [ rise a --> rise b; fall a --> fall b ]
let inverter a b = concat [ rise a --> fall b; fall a --> rise b ]

let c_element a b c =
  concat
    [ [ rise a; rise b ] &--> rise c; [ fall a; fall b ] &--> fall c ]

let handshake_cycle req ack =
  concat
    [
      rise req --> rise ack; rise ack --> fall req; fall req --> fall ack;
      fall ack --> rise req;
    ]

let handshake_with ~req_init ~ack_init req ack =
  handshake_cycle req ack
  <+> initialise req req_init
  <+> initialise ack ack_init

let handshake00 req ack = handshake_with ~req_init:false ~ack_init:false req ack
let handshake11 req ack = handshake_with ~req_init:true ~ack_init:true req ack
let handshake10 req ack = handshake_with ~req_init:true ~ack_init:false req ack
let handshake01 req ack = handshake_with ~req_init:false ~ack_init:true req ack
let handshake = handshake00
let token c e = [ Mark (c, e, true) ]
let no_token c e = [ Mark (c, e, false) ]

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

exception Compile_error of string

let failc fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

(* Order-preserving dedup. *)
let uniq xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    xs

let to_g ~name spec =
  try
    let ins = ref [] and outs = ref [] in
    let inits = ref [] in
    let silents = ref [] in
    let arcs = ref [] in
    let ors = ref [] in
    let mes = ref [] in
    let marks = ref [] in
    List.iter
      (function
        | Decl_in nms -> ins := !ins @ nms
        | Decl_out nms -> outs := !outs @ nms
        | Init (nm, v) -> inits := (nm, v) :: !inits
        | Silent nms -> silents := !silents @ nms
        | Arc (c, e) -> arcs := (c, e) :: !arcs
        | Or_place (cs, e) ->
          if cs = [] then failc "OR-causality of %s with no causes" (label e);
          ors := (cs, e) :: !ors
        | Me_place nms ->
          if List.length nms < 2 then
            failc "mutual exclusion needs at least two signals";
          mes := nms :: !mes
        | Mark (c, e, v) -> marks := ((c, e), v) :: !marks)
      spec;
    let ins = uniq !ins and outs = uniq !outs in
    let arcs = uniq (List.rev !arcs) in
    let ors = List.rev !ors and mes = List.rev !mes in
    (* Declarations: disjoint, initialised exactly one way. *)
    List.iter
      (fun nm ->
        if List.mem nm outs then
          failc "signal %s declared both input and output" nm)
      ins;
    let declared = ins @ outs in
    let init_tbl = Hashtbl.create 16 in
    List.iter
      (fun (nm, v) ->
        if not (List.mem nm declared) then
          failc "initialise %s: signal not declared" nm;
        match Hashtbl.find_opt init_tbl nm with
        | Some v' when v' <> v -> failc "conflicting initialisation of %s" nm
        | Some _ -> ()
        | None -> Hashtbl.replace init_tbl nm v)
      (List.rev !inits);
    List.iter
      (fun nm ->
        if not (Hashtbl.mem init_tbl nm) then
          failc "signal %s declared but never initialised" nm)
      declared;
    let init nm = Hashtbl.find init_tbl nm in
    let silents = uniq !silents in
    List.iter
      (fun nm ->
        if not (List.mem nm declared) then
          failc "silent signal %s not declared" nm)
      silents;
    let check_transition t =
      if not (List.mem t.s declared) then
        failc "transition %s: signal %s not declared" (label t) t.s;
      if List.mem t.s silents then
        failc "transition %s of silent signal %s" (label t) t.s
    in
    List.iter
      (fun (c, e) ->
        check_transition c;
        check_transition e)
      arcs;
    List.iter
      (fun (cs, e) ->
        List.iter check_transition cs;
        check_transition e)
      ors;
    List.iter (List.iter (fun nm -> check_transition (rise nm))) mes;
    if arcs = [] && ors = [] && mes = [] then
      failc "empty specification: no causality, OR-causality or me concepts";
    (* Initial-marking rule over the declared initial values. *)
    let before t = init t.s = (t.d = Stg.Fall) in
    let after t = init t.s = (t.d = Stg.Rise) in
    let default_mark (c, e) = c.i = 1 && e.i = 1 && after c && before e in
    List.iter
      (fun ((c, e), _) ->
        if not (List.mem (c, e) arcs) then
          failc "marking override %s -> %s: no such causal arc" (label c)
            (label e))
      !marks;
    let marked (c, e) =
      match List.assoc_opt (c, e) (List.rev !marks) with
      | Some v -> v
      | None -> default_mark (c, e)
    in
    let or_marked (cs, e) =
      e.i = 1 && before e && List.exists (fun c -> c.i = 1 && after c) cs
    in
    let me_marked nms =
      match List.filter init nms with
      | [] -> true
      | [ _ ] -> false
      | up ->
        failc "me %s: %d signals initially high"
          (String.concat " " nms)
          (List.length up)
    in
    (* Emission. *)
    let buf = Buffer.create 512 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pr ".model %s\n" name;
    pr ".inputs %s\n" (String.concat " " ins);
    pr ".outputs %s\n" (String.concat " " outs);
    pr ".graph\n";
    List.iter (fun (c, e) -> pr "%s %s\n" (label c) (label e)) arcs;
    List.iteri
      (fun k (cs, e) ->
        let pname = Printf.sprintf "or%d" k in
        List.iter (fun c -> pr "%s %s\n" (label c) pname) cs;
        pr "%s %s\n" pname (label e))
      ors;
    List.iter
      (fun nms ->
        let pname = "me_" ^ String.concat "_" nms in
        List.iter (fun nm -> pr "%s %s\n" (label (fall nm)) pname) nms;
        List.iter (fun nm -> pr "%s %s\n" pname (label (rise nm))) nms)
      mes;
    let marking = ref [] in
    List.iter
      (fun (c, e) ->
        if marked (c, e) then
          marking := Printf.sprintf "<%s,%s>" (label c) (label e) :: !marking)
      arcs;
    List.iteri
      (fun k oc ->
        if or_marked oc then marking := Printf.sprintf "or%d" k :: !marking)
      ors;
    List.iter
      (fun nms ->
        if me_marked nms then
          marking := ("me_" ^ String.concat "_" nms) :: !marking)
      mes;
    pr ".marking { %s }\n" (String.concat " " (List.rev !marking));
    pr ".init %s\n"
      (String.concat " "
         (List.map
            (fun nm -> Printf.sprintf "%s=%d" nm (if init nm then 1 else 0))
            (ins @ outs)));
    pr ".end\n";
    Ok (Buffer.contents buf)
  with Compile_error m -> Error m

let compile ~name spec =
  match to_g ~name spec with
  | Error _ as e -> e
  | Ok text -> (
    match Stg.parse_string text with
    | Ok stg -> Ok stg
    | Error m ->
      (* Should be unreachable: to_g emits the dialect the parser
         accepts.  Surface it loudly if an emission bug sneaks in. *)
      Error (Printf.sprintf "compile %s: emitted .g rejected: %s" name m))
