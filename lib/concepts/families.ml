open Concepts

let sf = Printf.sprintf

(* N-stage Muller pipeline: stage i is a C-element x_i joining the
   previous stage's request (x_{i-1}, or the environment request r) and
   the inverted next-stage occupancy (x_{i+1}, or the environment ack
   a).  The left environment lowers r once stage 1 latches; the right
   environment mirrors stage N. *)
let pipeline n =
  let x i = sf "x%d" i in
  let stage_sig i = if i = 0 then "r" else if i = n + 1 then "a" else x i in
  let xs = List.init n (fun i -> x (i + 1)) in
  concat
    [
      inputs [ "r"; "a" ];
      outputs xs;
      initialise0 ("r" :: "a" :: xs);
      concat
        (List.init n (fun i ->
             let i = i + 1 in
             let left = stage_sig (i - 1) and right = stage_sig (i + 1) in
             concat
               [
                 [ rise left; fall right ] &--> rise (x i);
                 [ fall left; rise right ] &--> fall (x i);
               ]));
      rise (x 1) --> fall "r";
      fall (x 1) --> rise "r";
      buffer (x n) "a";
    ]

(* N clients, each a four-phase handshake request/grant pair, all
   grants mutually exclusive through one shared token. *)
let arbiter n =
  let r i = sf "r%d" i and g i = sf "g%d" i in
  let idx = List.init n (fun i -> i + 1) in
  concat
    [
      inputs (List.map r idx);
      outputs (List.map g idx);
      concat (List.map (fun i -> handshake (r i) (g i)) idx);
      me_n (List.map g idx);
    ]

(* N-station token ring: one request token circulates through every
   station's rise, then every station's fall (master-read scaled). *)
let ring n =
  let t i = sf "t%d" i in
  let ts = List.init n (fun i -> t (i + 1)) in
  let chain edge =
    concat
      (List.init (n - 1) (fun i -> edge (t (i + 1)) --> edge (t (i + 2))))
  in
  concat
    [
      inputs [ "go" ];
      outputs ts;
      initialise0 ("go" :: ts);
      rise "go" --> rise (t 1);
      chain rise;
      rise (t n) --> fall "go";
      fall "go" --> fall (t 1);
      chain fall;
      fall (t n) --> rise "go";
    ]

(* N-stage FIFO controller (vbe5b scaled): the put request a fills the
   stages left to right; the consumer's acknowledge b drains them in
   the same order before the next item is offered. *)
let fifo n =
  let x i = sf "x%d" i in
  let xs = List.init n (fun i -> x (i + 1)) in
  let chain edge =
    concat
      (List.init (n - 1) (fun i -> edge (x (i + 1)) --> edge (x (i + 2))))
  in
  concat
    [
      inputs [ "a"; "b" ];
      outputs xs;
      initialise0 ("a" :: "b" :: xs);
      rise "a" --> rise (x 1);
      chain rise;
      rise (x n) --> rise "b";
      rise "b" --> fall (x 1);
      chain fall;
      fall (x n) --> fall "a";
      fall "a" --> fall "b";
      fall "b" --> rise "a";
    ]

(* N-deep D-latch sampler chain (dff scaled): the clock c pulses twice
   per data cycle — the first pulse ripples a rise through the q chain,
   the second (instance-suffixed) pulse ripples the fall — so every
   q_i's next-state function keeps the latch shape set + hold*state
   with opposing literals. *)
let latch n =
  let q i = sf "q%d" i in
  let qs = List.init n (fun i -> q (i + 1)) in
  let chain edge =
    concat
      (List.init (n - 1) (fun i -> edge (q (i + 1)) --> edge (q (i + 2))))
  in
  concat
    [
      inputs [ "d"; "c" ];
      outputs qs;
      initialise0 ("d" :: "c" :: qs);
      rise "d" --> rise "c";
      rise "c" --> rise (q 1);
      chain rise;
      rise (q n) --> fall "c";
      fall "c" --> fall "d";
      fall "d" --> inst 2 (rise "c");
      inst 2 (rise "c") --> fall (q 1);
      chain fall;
      fall (q n) --> inst 2 (fall "c");
      inst 2 (fall "c") --> rise "d";
      token (inst 2 (fall "c")) (rise "d");
    ]

type family = {
  fname : string;
  doc : string;
  size_doc : string;
  min_n : int;
  max_n : int;
  default_n : int;
  build : int -> Concepts.t;
}

(* max_n keeps instances inside the 20-signal synthesis ceiling of
   Stg.next_state_tables, with headroom for the QM minimizer. *)
let all =
  [
    {
      fname = "pipeline";
      doc = "N-stage Muller handshake pipeline (C-element stages)";
      size_doc = "stages";
      min_n = 1;
      max_n = 14;
      default_n = 3;
      build = pipeline;
    };
    {
      fname = "arbiter";
      doc = "N-client mutual-exclusion arbiter (me over the grants)";
      size_doc = "clients";
      min_n = 2;
      max_n = 8;
      default_n = 4;
      build = arbiter;
    };
    {
      fname = "ring";
      doc = "N-station token ring / sequencer (master-read scaled)";
      size_doc = "stations";
      min_n = 1;
      max_n = 15;
      default_n = 8;
      build = ring;
    };
    {
      fname = "fifo";
      doc = "N-stage FIFO controller (vbe5b scaled)";
      size_doc = "stages";
      min_n = 1;
      max_n = 14;
      default_n = 4;
      build = fifo;
    };
    {
      fname = "latch";
      doc = "N-deep D-latch sampler chain (dff scaled, redundant covers)";
      size_doc = "latches";
      min_n = 1;
      max_n = 14;
      default_n = 2;
      build = latch;
    };
  ]

let names = List.map (fun f -> f.fname) all
let find nm = List.find_opt (fun f -> f.fname = nm) all
let instance_name fname n = sf "%s%d" fname n

let generate fname ~n =
  match find fname with
  | None ->
    Error
      (sf "unknown family %s (known: %s)" fname (String.concat " " names))
  | Some f ->
    if n < f.min_n || n > f.max_n then
      Error
        (sf "family %s: size %d out of range [%d, %d]" fname n f.min_n
           f.max_n)
    else compile ~name:(instance_name fname n) (f.build n)
