(** Concept-combinator specification DSL.

    Composes STG specifications from reusable behavioral {e concepts}
    in the style of the Tuura/snowleopard [concepts] tool: a
    specification is a monoid of small declarative fragments —
    causality arcs, AND/OR-causality joins, mutual exclusion, gate
    protocols, handshakes — that {!compile} translates into a
    well-formed {!Satg_stg.Stg.t} accepted by the existing
    [Stg.parse_string] / [Synth.complex_gate] / [Synth.decomposed]
    flows.

    Translation rules:

    - every causality arc [cause ~> effect] becomes one implicit place
      [<cause,effect>] (AND-causality is several such places converging
      on the effect transition, exactly the Petri-net firing rule);
    - OR-causality becomes one {e explicit} place fed by every cause;
    - mutual exclusion becomes one explicit place acting as the shared
      token ([me]);
    - the initial marking is derived from the declared initial signal
      values: a causal arc holds a token iff, initially, its cause has
      already happened ([after cause]) and its effect is the next
      transition of its signal ([before effect]).  The rule applies to
      first-instance transitions; arcs involving {!inst}-suffixed
      transitions default to unmarked and are set explicitly with
      {!token}.

    Every referenced signal must be declared ({!inputs} / {!outputs})
    and initialised ({!initialise} and friends) — [compile] rejects
    anything else, so the emitted [.init] is always consistent and
    complete. *)

open Satg_stg

(** {1 Transitions} *)

type transition
(** A signal edge, e.g. [a+], [b-], or an instance-suffixed occurrence
    [a+/2]. *)

val rise : string -> transition
val fall : string -> transition

val toggle : transition -> transition
(** [a+ <-> a-], preserving the instance. *)

val inst : int -> transition -> transition
(** [inst k t]: the [k]-th occurrence of the edge in a multi-instance
    specification ([k >= 1]; [k = 1] is the unsuffixed default, [k = 2]
    prints as [a+/2], matching the [.g] dialect).
    @raise Invalid_argument if [k < 1]. *)

val label : transition -> string
(** The [.g] label ("a+", "b-/2", ...). *)

(** {1 Concepts} *)

type t
(** A composable specification fragment. *)

val empty : t

val ( <+> ) : t -> t -> t
(** Composition (associative, commutative up to emission order, unit
    {!empty}).  Duplicate causal arcs are merged by {!compile}. *)

val concat : t list -> t

(** {2 Declarations} *)

val inputs : string list -> t
(** Declare environment-driven signals (STG inputs). *)

val outputs : string list -> t
(** Declare circuit-driven signals (STG outputs; internal signals of a
    decomposition are outputs too). *)

val initialise : string -> bool -> t

val initialise0 : string list -> t
(** All named signals initially 0. *)

val initialise1 : string list -> t

(** {2 Causality} *)

val causality : transition -> transition -> t

val ( --> ) : transition -> transition -> t
(** [cause --> effect]: the effect may fire only after the cause.  One
    implicit place per arc. *)

val and_causality : transition list -> transition -> t

val ( &--> ) : transition list -> transition -> t
(** AND-causality: the effect needs {e every} cause (one implicit place
    per cause, all converging on the effect). *)

val or_causality : transition list -> transition -> t

val ( |--> ) : transition list -> transition -> t
(** OR-causality: the effect needs {e some} cause (one explicit place
    fed by every cause).  The place starts marked iff every cause is
    initially [after] and the effect initially [before]. *)

val silent : string list -> t
(** Declare that these signals never switch: {!compile} fails if any
    arc mentions them.  They still need declaration + initialisation
    and appear (constant) in the STG interface. *)

(** {2 Protocol / gate concepts} *)

val buffer : string -> string -> t
(** [buffer a b]: [b] follows [a] ([a+ ~> b+ <+> a- ~> b-]). *)

val inverter : string -> string -> t
(** [inverter a b]: [b] follows [not a]. *)

val c_element : string -> string -> string -> t
(** [c_element a b c]: [c] rises after both inputs rise, falls after
    both fall. *)

val me : string -> string -> t
(** [me a b]: at most one of [a], [b] is high at any time (a shared
    token place between their rises and falls).  Initially the token is
    free iff neither signal starts high; {!compile} rejects both
    starting high. *)

val me_n : string list -> t
(** Mutual exclusion over any number of signals (one shared token). *)

val handshake : string -> string -> t
(** [handshake req ack]: the four-phase protocol
    [req+ ~> ack+ ~> req- ~> ack- ~> req+ ...], phasing (0,0).
    Alias of {!handshake00}. *)

val handshake00 : string -> string -> t
(** Both signals initially 0; the request rises first. *)

val handshake11 : string -> string -> t
(** Both initially 1; the request falls first. *)

val handshake10 : string -> string -> t
(** Request initially 1, ack 0: the ack's rise is the next event. *)

val handshake01 : string -> string -> t
(** Request 0, ack 1: the ack's fall is the next event. *)

(** {2 Initial-marking overrides} *)

val token : transition -> transition -> t
(** Force a token on the implicit place of the [cause -> effect] arc
    (needed for arcs between {!inst}-suffixed transitions, which the
    default rule leaves unmarked). *)

val no_token : transition -> transition -> t
(** Remove the default-rule token from an arc. *)

(** {1 Compilation} *)

val to_g : name:string -> t -> (string, string) result
(** Emit the [.g] text of the composed specification.  Fails (with a
    human-readable reason) on: undeclared or uninitialised signals,
    conflicting initialisations, input/output double declaration,
    silent signals with arcs, an empty specification, or a marking
    override naming a nonexistent arc. *)

val compile : name:string -> t -> (Stg.t, string) result
(** {!to_g} followed by [Stg.parse_string] — the result is by
    construction accepted by the stock parser, and
    [Stg.to_string (compile spec)] round-trips. *)
