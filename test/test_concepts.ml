(* The concept-combinator DSL: compilation to well-formed STGs, the
   derived initial marking, compile-time validation, the qcheck .g
   printer/parser round-trip, and the hazard-free cover selection the
   generated latch family exists to exercise. *)

open Satg_logic
open Satg_stg
open Satg_concepts
open Concepts

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected compile error: %s" m

let err = function
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error m -> m

let explore stg =
  match Stg.explore stg with
  | Ok sg -> sg
  | Error m -> Alcotest.failf "explore: %s" m

let n_states stg = Array.length (explore stg).Stg.states

(* Canonical structural view of an STG: everything the .g text is
   supposed to carry, in an order-insensitive shape. *)
let canonical (t : Stg.t) =
  let tlabel i = t.Stg.transitions.(i).Stg.label in
  let places =
    Array.to_list t.Stg.places
    |> List.mapi (fun i (p : Stg.place) ->
           ( List.sort compare (List.map tlabel p.Stg.pre),
             List.sort compare (List.map tlabel p.Stg.post),
             t.Stg.marking.(i) ))
    |> List.sort compare
  in
  ( Array.to_list t.Stg.signals,
    t.Stg.n_inputs,
    List.sort compare
      (Array.to_list (Array.map (fun (tr : Stg.transition) -> tr.Stg.label)
                        t.Stg.transitions)),
    places,
    Array.to_list t.Stg.init_values )

(* --- compilation basics --------------------------------------------------- *)

let test_handshake_phasings () =
  (* All four phasings compile with a consistent marking: the cycle has
     exactly one token, placed before the phase's next event. *)
  List.iter
    (fun (nm, spec, expected_first) ->
      let stg =
        ok (compile ~name:nm (inputs [ "r" ] <+> outputs [ "a" ] <+> spec))
      in
      let sg = explore stg in
      Alcotest.(check int) (nm ^ ": cycle states") 4 (Array.length sg.Stg.states);
      Alcotest.(check int) (nm ^ ": one token")
        1
        (Array.fold_left ( + ) 0 stg.Stg.marking);
      (* the unique initially enabled transition is the phase's next event *)
      let enabled =
        List.filter
          (fun ti ->
            Array.to_list stg.Stg.places
            |> List.mapi (fun pi p -> (pi, p))
            |> List.for_all (fun (pi, (p : Stg.place)) ->
                   (not (List.mem ti p.Stg.post)) || stg.Stg.marking.(pi) > 0))
          (List.init (Array.length stg.Stg.transitions) Fun.id)
        |> List.map (fun ti -> stg.Stg.transitions.(ti).Stg.label)
      in
      Alcotest.(check (list string)) (nm ^ ": initially enabled")
        [ expected_first ] enabled)
    [
      ("hs00", handshake00 "r" "a", "r+");
      ("hs11", handshake11 "r" "a", "r-");
      ("hs10", handshake10 "r" "a", "a+");
      ("hs01", handshake01 "r" "a", "a-");
    ]

let test_c_element_concept () =
  let stg =
    ok
      (compile ~name:"celem_dsl"
         (concat
            [
              inputs [ "a"; "b" ]; outputs [ "c" ];
              initialise0 [ "a"; "b"; "c" ];
              c_element "a" "b" "c";
              (* environment: inputs toggle back once c answers *)
              rise "c" --> fall "a"; rise "c" --> fall "b";
              fall "c" --> rise "a"; fall "c" --> rise "b";
            ]))
  in
  let sg = explore stg in
  Alcotest.(check int) "celem state count" 8 (Array.length sg.Stg.states);
  Alcotest.(check bool) "csc" true (Stg.check_csc sg = Ok ());
  (match Synth.complex_gate stg with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "synthesis: %s" m);
  (* the DSL celem is the celem benchmark: same canonical state graph
     shape (8 states, one output function = Celem) *)
  match Synth.next_state_covers sg with
  | [ ("c", cover) ] ->
    Alcotest.(check bool) "c cover nonempty" false (Cover.is_empty cover)
  | other ->
    Alcotest.failf "expected exactly one output cover, got %d"
      (List.length other)

let test_or_causality () =
  (* Structure: a two-cause or place is one explicit place with both
     causes in its preset (unlike AND-causality's two implicit
     places). *)
  let merge =
    ok
      (compile ~name:"or_dsl"
         (concat
            [
              inputs [ "a"; "b" ]; outputs [ "c" ];
              initialise0 [ "a"; "b"; "c" ];
              me "a" "b";
              [ rise "a"; rise "b" ] |--> rise "c";
              rise "a" --> fall "a"; rise "b" --> fall "b";
              rise "c" --> fall "c";
              [ fall "a"; fall "b" ] |--> fall "c";
            ]))
  in
  let or_places =
    Array.to_list merge.Stg.places
    |> List.filter (fun (p : Stg.place) ->
           String.length p.Stg.pname >= 2 && String.sub p.Stg.pname 0 2 = "or")
  in
  Alcotest.(check int) "two explicit or places" 2 (List.length or_places);
  List.iter
    (fun (p : Stg.place) ->
      Alcotest.(check int) (p.Stg.pname ^ ": both causes in preset") 2
        (List.length p.Stg.pre))
    or_places;
  (* Behavior: a single-cause or place is an explicit spelling of plain
     causality — the cycle must explore to the same 4 handshake states,
     and the phasing-aware marking rule must seed the or place when the
     cause has already happened. *)
  let cycle ~a_init =
    concat
      [
        inputs [ "a" ]; outputs [ "b" ];
        initialise "a" a_init; initialise "b" false;
        [ rise "a" ] |--> rise "b";
        rise "b" --> fall "a";
        [ fall "a" ] |--> fall "b";
        fall "b" --> rise "a";
      ]
  in
  let hs00 = ok (compile ~name:"or00" (cycle ~a_init:false)) in
  Alcotest.(check int) "single-cause or cycle: 4 states" 4
    (Array.length (explore hs00).Stg.states);
  Alcotest.(check int) "phasing 00: or places unmarked" 1
    (Array.fold_left ( + ) 0 hs00.Stg.marking);
  let hs10 = ok (compile ~name:"or10" (cycle ~a_init:true)) in
  let marked_names =
    Array.to_list hs10.Stg.places
    |> List.mapi (fun i (p : Stg.place) -> (p.Stg.pname, hs10.Stg.marking.(i)))
    |> List.filter (fun (_, m) -> m > 0)
    |> List.map fst
  in
  Alcotest.(check (list string)) "phasing 10: or place holds the token"
    [ "or0" ] marked_names;
  Alcotest.(check int) "phasing 10 explores" 4
    (Array.length (explore hs10).Stg.states)

let test_me_token () =
  (* me over two initially-low grants: the shared place starts marked;
     with one grant initially high the token is taken. *)
  let base g1v =
    concat
      [
        inputs [ "r1"; "r2" ]; outputs [ "g1"; "g2" ];
        initialise "r1" g1v; initialise0 [ "r2"; "g2" ];
        initialise "g1" g1v;
        (if g1v then handshake11 else handshake00) "r1" "g1";
        handshake "r2" "g2";
        me "g1" "g2";
      ]
  in
  let token_count stg =
    Array.to_list stg.Stg.places
    |> List.mapi (fun i (p : Stg.place) -> (p.Stg.pname, stg.Stg.marking.(i)))
    |> List.assoc "me_g1_g2"
  in
  Alcotest.(check int) "both low: token free" 1 (token_count (ok (compile ~name:"me0" (base false))));
  Alcotest.(check int) "g1 high: token held" 0 (token_count (ok (compile ~name:"me1" (base true))));
  (* both high is rejected, not silently mis-marked *)
  let both =
    concat
      [
        inputs [ "r1"; "r2" ]; outputs [ "g1"; "g2" ];
        initialise1 [ "r1"; "r2"; "g1"; "g2" ];
        handshake11 "r1" "g1"; handshake11 "r2" "g2"; me "g1" "g2";
      ]
  in
  Alcotest.(check bool) "both high rejected" true
    (String.length (err (to_g ~name:"me2" both)) > 0)

let test_validation_errors () =
  let cases =
    [
      ("undeclared signal", rise "a" --> rise "b");
      ( "uninitialised signal",
        inputs [ "a" ] <+> outputs [ "b" ] <+> (rise "a" --> rise "b") );
      ( "conflicting init",
        inputs [ "a" ] <+> outputs [ "b" ]
        <+> initialise0 [ "a"; "b" ]
        <+> initialise1 [ "a" ]
        <+> (rise "a" --> rise "b") );
      ( "input and output",
        inputs [ "a" ] <+> outputs [ "a"; "b" ]
        <+> initialise0 [ "a"; "b" ]
        <+> (rise "a" --> rise "b") );
      ( "silent signal switches",
        inputs [ "a" ] <+> outputs [ "b" ]
        <+> initialise0 [ "a"; "b" ]
        <+> silent [ "b" ]
        <+> (rise "a" --> rise "b") );
      ("empty spec", inputs [ "a" ] <+> initialise0 [ "a" ]);
      ( "override without arc",
        inputs [ "a" ] <+> outputs [ "b" ]
        <+> initialise0 [ "a"; "b" ]
        <+> (rise "a" --> rise "b")
        <+> token (rise "b") (rise "a") );
    ]
  in
  List.iter
    (fun (nm, spec) -> ignore (err (to_g ~name:"bad" spec) : string) |> fun () ->
      Alcotest.(check pass) nm () ())
    cases

let test_marking_overrides () =
  (* no_token strips the default token; token forces one on a
     multi-instance arc the default rule leaves unmarked. *)
  let spec =
    concat
      [
        inputs [ "a" ]; outputs [ "b" ];
        initialise0 [ "a"; "b" ];
        rise "a" --> rise "b"; rise "b" --> fall "a";
        fall "a" --> fall "b"; fall "b" --> inst 2 (rise "a");
        inst 2 (rise "a") --> inst 2 (rise "b");
        inst 2 (rise "b") --> fall "a";
        (* both arcs touch a second-instance transition, so the default
           rule leaves them unmarked; place the cycle's tokens by hand *)
        token (fall "b") (inst 2 (rise "a"));
        token (inst 2 (rise "b")) (fall "a");
      ]
  in
  let stg = ok (compile ~name:"ovr" spec) in
  let marked =
    Array.to_list stg.Stg.places
    |> List.mapi (fun i (p : Stg.place) -> (p.Stg.pname, stg.Stg.marking.(i)))
    |> List.filter (fun (_, m) -> m > 0)
    |> List.map fst |> List.sort compare
  in
  Alcotest.(check (list string)) "default + forced tokens"
    [ "<b+/2,a->"; "<b-,a+/2>" ]
    marked

(* --- families ------------------------------------------------------------- *)

let test_families_compile_and_verify () =
  List.iter
    (fun (f : Families.family) ->
      let n = min f.default_n f.max_n in
      let stg =
        match Families.generate f.fname ~n with
        | Ok stg -> stg
        | Error m -> Alcotest.failf "%s n=%d: %s" f.fname n m
      in
      let sg = explore stg in
      Alcotest.(check bool) (f.fname ^ ": nonempty") true
        (Array.length sg.Stg.states > 0);
      Alcotest.(check bool) (f.fname ^ ": csc") true (Stg.check_csc sg = Ok ());
      (match Synth.complex_gate stg with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: complex_gate: %s" f.fname m);
      match Synth.decomposed ~redundant:true stg with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: decomposed: %s" f.fname m)
    Families.all

let test_family_matches_seed_benchmarks () =
  (* The scaling recipes collapse to the fixed benchmarks at the small
     end: fifo 2 is vbe5b, latch 1 is dff (same reachable state count —
     the families are renamed copies, not lookalikes). *)
  let bench nm =
    match Satg_bench.Suite.find nm with
    | Some e -> e.Satg_bench.Suite.stg
    | None -> Alcotest.failf "missing benchmark %s" nm
  in
  let fam f n =
    match Families.generate f ~n with
    | Ok stg -> stg
    | Error m -> Alcotest.failf "%s: %s" f m
  in
  Alcotest.(check int) "fifo2 = vbe5b states" (n_states (bench "vbe5b"))
    (n_states (fam "fifo" 2));
  Alcotest.(check int) "latch1 = dff states" (n_states (bench "dff"))
    (n_states (fam "latch" 1));
  Alcotest.(check int) "pipeline states double per stage" (2 * n_states (fam "pipeline" 2))
    (n_states (fam "pipeline" 3))

let test_family_bounds () =
  (match Families.generate "pipeline" ~n:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "n=0 must be rejected");
  (match Families.generate "nosuch" ~n:3 with
  | Error m ->
    Alcotest.(check bool) "lists known families" true
      (List.for_all
         (fun nm ->
           String.length m >= String.length nm)
         Families.names)
  | Ok _ -> Alcotest.fail "unknown family must be rejected");
  (* suite registry exposes the same families *)
  Alcotest.(check (list string)) "suite registry" Families.names
    Satg_bench.Suite.family_names;
  Alcotest.(check int) "suite defaults build" (List.length Families.names)
    (List.length (Satg_bench.Suite.family_defaults ()))

(* --- .g round-trip -------------------------------------------------------- *)

(* Random consistent concept composition: a sequencer ring whose rises
   fire in a random order sigma and whose falls fire in the same order
   (same-order falls keep CSC; the marking rule puts the single token
   before sigma_0's rise), optionally composed with extra handshake
   pairs.  This generates specs with implicit places, explicit or- and
   me-places, and multi-signal interfaces. *)
type rt_spec = {
  ring_size : int;
  perm_picks : int list;
  n_inputs_pick : int;
  extra_handshakes : int;
}

let rt_gen =
  QCheck.Gen.(
    let* ring_size = int_range 2 6 in
    let* perm_picks = list_size (return ring_size) (int_bound 1000) in
    let* n_inputs_pick = int_bound (ring_size - 1) in
    let* extra_handshakes = int_bound 2 in
    return { ring_size; perm_picks; n_inputs_pick; extra_handshakes })

let rt_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "ring=%d perm=[%s] inputs=%d hs=%d" s.ring_size
        (String.concat ";" (List.map string_of_int s.perm_picks))
        s.n_inputs_pick s.extra_handshakes)
    rt_gen

let rt_build s =
  let n = s.ring_size in
  let sigs = List.init n (fun i -> Printf.sprintf "s%d" i) in
  (* Fisher-Yates driven by the raw picks: a permutation of sigs. *)
  let arr = Array.of_list sigs in
  List.iteri
    (fun i pick ->
      let j = i + (pick mod (n - i)) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp)
    s.perm_picks;
  let order = Array.to_list arr in
  let rec chain edge = function
    | a :: (b :: _ as rest) -> (edge a --> edge b) <+> chain edge rest
    | _ -> empty
  in
  let first = List.hd order and last = List.nth order (n - 1) in
  (* The ring head must be an input (it is the initially enabled
     transition, and synthesis requires a stable reset state), and at
     least one signal must remain an output.  Split along the firing
     order. *)
  let cut = 1 + min s.n_inputs_pick (n - 2) in
  let ins = List.filteri (fun i _ -> i < cut) order in
  let outs = List.filteri (fun i _ -> i >= cut) order in
  let hs =
    List.init s.extra_handshakes (fun i ->
        let r = Printf.sprintf "hr%d" i and a = Printf.sprintf "ha%d" i in
        inputs [ r ] <+> outputs [ a ] <+> handshake r a)
  in
  concat
    ([
       inputs ins; outputs outs; initialise0 sigs;
       chain rise order;
       rise last --> fall first;
       chain fall order;
       fall last --> rise first;
     ]
    @ hs)

let prop_g_round_trip =
  QCheck.Test.make ~name:"concepts: .g text round-trips" ~count:200 rt_arb
    (fun s ->
      let spec = rt_build s in
      match compile ~name:"rt" spec with
      | Error m -> QCheck.Test.fail_reportf "compile: %s" m
      | Ok stg -> (
        let text = Stg.to_string stg in
        match Stg.parse_string text with
        | Error m -> QCheck.Test.fail_reportf "reparse: %s" m
        | Ok stg' ->
          canonical stg = canonical stg'
          && Stg.to_string stg' = text))

let test_round_trip_families () =
  List.iter
    (fun (f : Families.family) ->
      let stg =
        match Families.generate f.fname ~n:f.default_n with
        | Ok stg -> stg
        | Error m -> Alcotest.failf "%s: %s" f.fname m
      in
      let stg' =
        match Stg.parse_string (Stg.to_string stg) with
        | Ok s -> s
        | Error m -> Alcotest.failf "%s: reparse: %s" f.fname m
      in
      Alcotest.(check bool) (f.fname ^ ": canonical round-trip") true
        (canonical stg = canonical stg'))
    Families.all

let test_duplicate_arc_lines () =
  (* A spec that repeats an arc line parses to the same net as the spec
     that states it once — and can be printed again (the printer's
     one-transition-per-implicit-place invariant must survive). *)
  let dup =
    ".model d\n.inputs a\n.outputs b\n.graph\na+ b+\na+ b+\nb+ a-\na- b-\n\
     b- a+\n.marking { <b-,a+> }\n.init a=0 b=0\n.end\n"
  in
  let once =
    ".model d\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\n\
     b- a+\n.marking { <b-,a+> }\n.init a=0 b=0\n.end\n"
  in
  let p text =
    match Stg.parse_string text with
    | Ok s -> s
    | Error m -> Alcotest.failf "parse: %s" m
  in
  let s_dup = p dup and s_once = p once in
  Alcotest.(check bool) "same net" true (canonical s_dup = canonical s_once);
  Alcotest.(check string) "printable and identical"
    (Stg.to_string s_once) (Stg.to_string s_dup)

(* --- hazard-free cover selection ------------------------------------------ *)

let covers_of stg = Synth.hazard_free_covers (explore stg)
let minimal_of stg = Synth.next_state_covers (explore stg)
let primes_of stg = Synth.prime_covers (explore stg)

let test_has_opposing_pair_direct () =
  (* xy' + x'y oppose in both variables; xy + y- don't. *)
  let mk strs = Cover.make ~n:2 (List.map Cube.of_string strs) in
  Alcotest.(check bool) "xor-ish opposes" true
    (Synth.has_opposing_pair (mk [ "10"; "01" ]));
  Alcotest.(check bool) "unate cover does not" false
    (Synth.has_opposing_pair (mk [ "11"; "-1" ]));
  Alcotest.(check bool) "single cube does not" false
    (Synth.has_opposing_pair (mk [ "1-" ]));
  Alcotest.(check bool) "empty does not" false
    (Synth.has_opposing_pair (Cover.empty 2))

let test_hazard_covers_on_latch () =
  (* The generated latch family is the opposing-literal pathology by
     construction: every q_i minimal cover is set + hold*state (d*c +
     hold-term with c negated).  hazard_free_covers must switch those
     functions to their full prime cover, and only those. *)
  let stg =
    match Families.generate "latch" ~n:2 with
    | Ok s -> s
    | Error m -> Alcotest.failf "latch: %s" m
  in
  let minimal = minimal_of stg and hf = covers_of stg and primes = primes_of stg in
  let some_redundant = ref false in
  List.iter
    (fun (nm, mc) ->
      let hc = List.assoc nm hf and pc = List.assoc nm primes in
      (* hf may differ from the minimal cover only inside don't-care
         space; on the minimal cover's own minterms they must agree *)
      Alcotest.(check bool) (nm ^ ": hf covers the on-set") true
        (List.for_all (Cover.eval_minterm hc) (Cover.minterms mc));
      if Synth.has_opposing_pair mc then begin
        some_redundant := true;
        Alcotest.(check (list string)) (nm ^ ": all primes kept")
          (List.sort compare (List.map Cube.to_string (Cover.cubes pc)))
          (List.sort compare (List.map Cube.to_string (Cover.cubes hc)));
        Alcotest.(check bool) (nm ^ ": strictly redundant") true
          (Cover.cube_count hc > Cover.cube_count mc
           || Cover.cube_count mc = Cover.cube_count pc)
      end
      else
        Alcotest.(check int) (nm ^ ": minimal kept")
          (Cover.cube_count mc) (Cover.cube_count hc))
    minimal;
  Alcotest.(check bool) "latch family has an opposing-literal function" true
    !some_redundant

let test_hazard_covers_stay_minimal () =
  (* The token ring is a pure sequencer: every next-state function is
     unate, so hazard-free synthesis must not inflate anything. *)
  let stg =
    match Families.generate "ring" ~n:4 with
    | Ok s -> s
    | Error m -> Alcotest.failf "ring: %s" m
  in
  let minimal = minimal_of stg and hf = covers_of stg in
  List.iter
    (fun (nm, mc) ->
      Alcotest.(check bool) (nm ^ ": no opposing pair") false
        (Synth.has_opposing_pair mc);
      Alcotest.(check int) (nm ^ ": untouched") (Cover.cube_count mc)
        (Cover.cube_count (List.assoc nm hf)))
    minimal

let test_hazard_covers_handcrafted () =
  (* dff is the seed's own latch: its q cover has opposing literals and
     redundant synthesis grows it; vbe5b's chain functions do not. *)
  let bench nm =
    match Satg_bench.Suite.find nm with
    | Some e -> e.Satg_bench.Suite.stg
    | None -> Alcotest.failf "missing %s" nm
  in
  let dff_min = minimal_of (bench "dff") in
  Alcotest.(check bool) "dff q opposes" true
    (List.exists (fun (_, c) -> Synth.has_opposing_pair c) dff_min);
  let hf = covers_of (bench "dff") in
  List.iter
    (fun (nm, mc) ->
      if Synth.has_opposing_pair mc then
        Alcotest.(check bool) (nm ^ ": grew or already prime") true
          (Cover.cube_count (List.assoc nm hf) >= Cover.cube_count mc))
    dff_min

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_g_round_trip ]

let suites =
  [
    ( "concepts",
      [
        Alcotest.test_case "handshake phasings" `Quick test_handshake_phasings;
        Alcotest.test_case "c-element concept" `Quick test_c_element_concept;
        Alcotest.test_case "or-causality" `Quick test_or_causality;
        Alcotest.test_case "me token derivation" `Quick test_me_token;
        Alcotest.test_case "validation errors" `Quick test_validation_errors;
        Alcotest.test_case "marking overrides" `Quick test_marking_overrides;
        Alcotest.test_case "families compile + verify" `Quick
          test_families_compile_and_verify;
        Alcotest.test_case "families match seed benchmarks" `Quick
          test_family_matches_seed_benchmarks;
        Alcotest.test_case "family bounds + registry" `Quick test_family_bounds;
        Alcotest.test_case "families round-trip" `Quick test_round_trip_families;
        Alcotest.test_case "duplicate arc lines" `Quick test_duplicate_arc_lines;
        Alcotest.test_case "has_opposing_pair" `Quick
          test_has_opposing_pair_direct;
        Alcotest.test_case "hazard covers: latch family" `Quick
          test_hazard_covers_on_latch;
        Alcotest.test_case "hazard covers: ring stays minimal" `Quick
          test_hazard_covers_stay_minimal;
        Alcotest.test_case "hazard covers: seed benchmarks" `Quick
          test_hazard_covers_handcrafted;
      ]
      @ qcheck_cases );
  ]
