let () =
  Alcotest.run "satg"
    (List.concat
       [
         Test_logic.suites;
         Test_bdd.suites;
         Test_circuit.suites;
         Test_sim.suites;
         Test_rails.suites;
         Test_sg.suites;
         Test_stg.suites;
         Test_atpg.suites;
         Test_random_circuits.suites;
         Test_suite_benchmarks.suites;
         Test_report.suites;
         Test_extensions.suites;
         Test_timed.suites;
         Test_robustness.suites;
         Test_sat.suites;
         Test_pool.suites;
         Test_domains.suites;
         Test_store.suites;
         Test_concepts.suites;
         Test_families.suites;
         Test_server.suites;
       ])
