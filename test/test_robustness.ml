(* Degradation-path tests: oscillating, non-confluent and
   state-limited runs must end in Aborted outcomes, truncated graphs or
   Phi saturation — never in an escaped exception — and everything a
   truncated artefact does contain must agree with the full build. *)

open Satg_logic
open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_sg
open Satg_core
open Satg_bench

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- the guard itself ----------------------------------------------------- *)

let test_none_unlimited () =
  let g = Guard.none in
  for _ = 1 to 10_000 do
    Guard.spend_state g;
    Guard.spend_transition g;
    Guard.tick g
  done;
  Guard.check_time g;
  Alcotest.(check bool) "never tripped" true (Guard.tripped g = None)

let test_state_ceiling () =
  let g = Guard.create ~max_states:3 () in
  Guard.spend_states g 3;
  Alcotest.(check bool) "within budget" true (Guard.tripped g = None);
  (match Guard.spend_state g with
  | () -> Alcotest.fail "fourth state should trip"
  | exception Guard.Exhausted Guard.State_limit -> ());
  (* tripped guards stay tripped *)
  (match Guard.tick g with
  | () -> Alcotest.fail "tripped guard must re-raise"
  | exception Guard.Exhausted Guard.State_limit -> ());
  Alcotest.(check bool) "reason recorded" true
    (Guard.tripped g = Some Guard.State_limit)

let test_transition_ceiling () =
  let g = Guard.create ~max_transitions:2 () in
  Guard.spend_transition g;
  Guard.spend_transition g;
  match Guard.spend_transition g with
  | () -> Alcotest.fail "third transition should trip"
  | exception Guard.Exhausted Guard.Transition_limit ->
    Alcotest.(check int) "spend counted" 3 (Guard.transitions_used g)

let test_expired_deadline () =
  let g = Guard.create ~timeout:(-1.0) () in
  match Guard.check_time g with
  | () -> Alcotest.fail "past deadline should trip"
  | exception Guard.Exhausted Guard.Timeout -> ()

let test_sub_isolation () =
  let parent = Guard.create ~max_states:2 () in
  (match Guard.spend_states parent 3 with
  | () -> Alcotest.fail "parent should trip"
  | exception Guard.Exhausted _ -> ());
  (* fresh counters: a sub-guard of a counter-tripped parent is usable *)
  let child = Guard.sub ~max_states:2 parent in
  Guard.spend_states child 2;
  Alcotest.(check bool) "child not tripped" true (Guard.tripped child = None);
  (* shared deadline: a sub-guard of an expired parent trips on time *)
  let timed = Guard.create ~timeout:(-1.0) () in
  let child = Guard.sub timed in
  match Guard.check_time child with
  | () -> Alcotest.fail "inherited deadline should trip"
  | exception Guard.Exhausted Guard.Timeout -> ()

let test_guarded_capture () =
  let g = Guard.create ~max_transitions:1 () in
  (match
     Guard.guarded g (fun () ->
         Guard.spend_transitions g 5;
         42)
   with
  | Ok _ -> Alcotest.fail "should exhaust"
  | Error r ->
    Alcotest.(check string) "reason" "transition-limit"
      (Guard.reason_to_string r));
  match Guard.guarded Guard.none (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "passthrough" 42 v
  | Error _ -> Alcotest.fail "none never errors"

(* --- simulator saturation -------------------------------------------------- *)

(* fig1b oscillates under input 1: a starved round budget must saturate
   the oscillating signals to Phi instead of raising. *)
let test_ternary_oscillator_saturates () =
  let c = Figures.fig1b () in
  let reset = Option.get (Circuit.initial c) in
  let r =
    Ternary_sim.apply_vector ~budget:1 c
      (Ternary_sim.of_bool_state reset)
      [| true |]
  in
  Alcotest.(check bool) "some signal saturated to Phi" true
    (Array.exists (fun v -> v = Ternary.Phi) r)

(* Saturation is conservative: wherever the starved run still reports a
   binary value, the full-budget run agrees (Phi only ever replaces
   information, never invents it). *)
let test_ternary_saturation_conservative () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let v =
    match Cssg.successors g (List.hd (Cssg.initial g)) with
    | e :: _ -> e.Cssg.vector
    | [] -> Alcotest.fail "celem CSSG should have edges"
  in
  let s0 = Ternary_sim.of_bool_state (Option.get (Circuit.initial c)) in
  let full = Ternary_sim.apply_vector c s0 v in
  let starved = Ternary_sim.apply_vector ~budget:0 c s0 v in
  Array.iteri
    (fun i x ->
      if x <> Ternary.Phi then
        Alcotest.(check bool)
          (Printf.sprintf "node %d binary value agrees" i)
          true
          (Ternary.equal x full.(i)))
    starved

let test_parallel_saturation_conservative () =
  let c = Figures.celem_handshake () in
  let reset = Option.get (Circuit.initial c) in
  let faults =
    Array.of_list
      (List.filteri (fun i _ -> i < 4) (Fault.universe_input_sa c))
  in
  let v =
    let g = Explicit.build c in
    match Cssg.successors g (List.hd (Cssg.initial g)) with
    | e :: _ -> e.Cssg.vector
    | [] -> Alcotest.fail "celem CSSG should have edges"
  in
  let full = Parallel_sim.create c faults ~reset in
  let starved = Parallel_sim.create c faults ~reset in
  Parallel_sim.apply_vector full v;
  Parallel_sim.apply_vector ~budget:0 starved v;
  for mch = 0 to Parallel_sim.n_machines full - 1 do
    let f = Parallel_sim.machine_outputs full mch in
    let s = Parallel_sim.machine_outputs starved mch in
    Array.iteri
      (fun o x ->
        if x <> Ternary.Phi then
          Alcotest.(check bool)
            (Printf.sprintf "machine %d output %d agrees" mch o)
            true (Ternary.equal x f.(o)))
      s
  done

(* --- truncated graphs ------------------------------------------------------ *)

(* Every state of the truncated graph exists in the full graph, and
   every truncated edge is a genuine full-graph edge with the same
   destination state. *)
let is_subgraph small big =
  List.for_all
    (fun i ->
      let s = Cssg.state small i in
      match Cssg.id_of_state big s with
      | None -> false
      | Some j ->
        List.for_all
          (fun e ->
            match Cssg.apply big j e.Cssg.vector with
            | None -> false
            | Some t -> Cssg.state big t = Cssg.state small e.Cssg.target)
          (Cssg.successors small i))
    (List.init (Cssg.n_states small) Fun.id)

let test_explicit_truncation_subgraph () =
  let c = Figures.celem_handshake () in
  let full = Explicit.build c in
  let tg = Explicit.build ~guard:(Guard.create ~max_states:2 ()) c in
  Alcotest.(check bool) "tagged truncated" true
    (Cssg.truncated tg = Some Guard.State_limit);
  Alcotest.(check bool) "full graph untagged" true (Cssg.truncated full = None);
  Alcotest.(check bool) "strictly smaller" true
    (Cssg.n_states tg < Cssg.n_states full);
  Alcotest.(check bool) "at most reset + budget states" true
    (Cssg.n_states tg <= 3);
  Alcotest.(check bool) "is a subgraph of the full CSSG" true
    (is_subgraph tg full)

let test_explicit_zero_budget_keeps_reset () =
  let c = Figures.celem_handshake () in
  let tg = Explicit.build ~guard:(Guard.create ~max_states:0 ()) c in
  Alcotest.(check int) "reset state survives" 1 (Cssg.n_states tg);
  Alcotest.(check (list int)) "and is initial" [ 0 ] (Cssg.initial tg);
  Alcotest.(check bool) "tagged truncated" true
    (Cssg.truncated tg = Some Guard.State_limit)

let test_explicit_timeout_on_oscillator () =
  let c = Figures.fig1b () in
  let tg = Explicit.build ~guard:(Guard.create ~timeout:(-1.0) ()) c in
  Alcotest.(check bool) "tagged timeout" true
    (Cssg.truncated tg = Some Guard.Timeout);
  Alcotest.(check int) "reset only" 1 (Cssg.n_states tg)

let test_symbolic_truncation_subgraph () =
  let c = Figures.celem_handshake () in
  let full = Explicit.build c in
  let sym = Symbolic.build ~guard:(Guard.create ~max_transitions:1 ()) c in
  Alcotest.(check bool) "symbolic tagged" true (Symbolic.truncated sym <> None);
  let tg = Symbolic.to_cssg sym in
  Alcotest.(check bool) "tag carries to CSSG" true (Cssg.truncated tg <> None);
  Alcotest.(check bool) "no larger than the full graph" true
    (Cssg.n_states tg <= Cssg.n_states full);
  Alcotest.(check bool) "is a subgraph of the full CSSG" true
    (is_subgraph tg full);
  (* and an untruncated symbolic build of the same circuit agrees with
     the explicit one even when a generous guard is attached *)
  let sym = Symbolic.build ~guard:(Guard.create ~max_states:10_000 ()) c in
  Alcotest.(check bool) "generous guard does not truncate" true
    (Symbolic.truncated sym = None);
  let g2 = Symbolic.to_cssg sym in
  Alcotest.(check int) "same state count" (Cssg.n_states full)
    (Cssg.n_states g2);
  Alcotest.(check bool) "mutual subgraphs" true
    (is_subgraph g2 full && is_subgraph full g2)

(* With the guard woven into the BDD manager itself, a budget can trip
   in the middle of building the transition relation — before the
   reachability loop ever starts.  The build must degrade to the sound
   one-state stub (reset only, no edges), never escape. *)
let test_symbolic_guard_mid_apply () =
  let c = Figures.celem_handshake () in
  let sym = Symbolic.build ~guard:(Guard.create ~timeout:(-1.0) ()) c in
  Alcotest.(check bool) "tagged timeout" true
    (Symbolic.truncated sym = Some Guard.Timeout);
  let tg = Symbolic.to_cssg sym in
  Alcotest.(check int) "reset state survives" 1 (Cssg.n_states tg);
  Alcotest.(check (list int)) "and is initial" [ 0 ] (Cssg.initial tg);
  Alcotest.(check bool) "stub is a subgraph of the full CSSG" true
    (is_subgraph tg (Explicit.build c))

(* A deliberately exploding build (2^12 reachable states from 12 free
   buffers) under a tight state ceiling must stop promptly with a
   truncated graph instead of enumerating the whole cube. *)
let test_symbolic_state_ceiling_explosion () =
  let n = 12 in
  let b = Circuit.Builder.create "buffer_cube" in
  let xs =
    List.init n (fun i -> Circuit.Builder.add_input b (Printf.sprintf "A%d" i))
  in
  let ys =
    List.mapi
      (fun i x ->
        Circuit.Builder.add_gate b ~name:(Printf.sprintf "Y%d" i) Gatefunc.Buf
          [ x ])
      xs
  in
  List.iter (Circuit.Builder.mark_output b) ys;
  let c = Circuit.Builder.finalize b in
  let c = Circuit.with_initial c (Array.make (Circuit.n_nodes c) false) in
  let sym = Symbolic.build ~guard:(Guard.create ~max_states:8 ()) c in
  Alcotest.(check bool) "tagged state-limit" true
    (Symbolic.truncated sym = Some Guard.State_limit);
  let tg = Symbolic.to_cssg sym in
  Alcotest.(check bool) "tag carries to CSSG" true (Cssg.truncated tg <> None);
  Alcotest.(check bool) "far fewer states than 2^12" true
    (Cssg.n_states tg < 1 lsl n)

(* with_guard must attach only for the call's duration, even when the
   budget trips inside it — the per-fault isolation contract of
   symbolic justification. *)
let test_symbolic_with_guard_isolation () =
  let c = Figures.celem_handshake () in
  let sym = Symbolic.build c in
  let tripped =
    let g = Guard.create ~max_states:1 () in
    (try Guard.spend_states g 2 with Guard.Exhausted _ -> ());
    g
  in
  let g = Symbolic.to_cssg sym in
  Alcotest.(check bool) "needs >1 state" true (Cssg.n_states g > 1);
  (* a non-initial target forces at least one image step, and cold op
     caches force that step to actually probe (and so to tick) *)
  let target =
    Symbolic.state_to_bdd sym
      (Cssg.state g (List.find (fun i -> not (List.mem i (Cssg.initial g)))
                       (List.init (Cssg.n_states g) Fun.id)))
  in
  Satg_bdd.Bdd.clear_caches (Symbolic.man sym);
  (match Symbolic.with_guard sym tripped (fun () -> Symbolic.justify sym ~target)
   with
  | _ -> Alcotest.fail "tripped guard should raise inside justify"
  | exception Guard.Exhausted Guard.State_limit -> ());
  (* the manager's own guard is restored: the same query now succeeds *)
  match Symbolic.justify sym ~target with
  | Some _ -> ()
  | None -> Alcotest.fail "reset state must be justifiable"

(* --- fail-soft engine ------------------------------------------------------ *)

let statuses r =
  List.fold_left
    (fun (d, u, a) o ->
      match o.Testset.status with
      | Testset.Detected _ -> (d + 1, u, a)
      | Testset.Undetected -> (d, u + 1, a)
      | Testset.Aborted _ -> (d, u, a + 1))
    (0, 0, 0) r.Engine.outcomes

let test_engine_oscillator_timeout () =
  let c = Figures.fig1b () in
  let d = Option.get (Circuit.find_node c "d") in
  let faults =
    [
      Fault.Output_sa { gate = d; stuck = false };
      Fault.Output_sa { gate = d; stuck = true };
    ]
  in
  let config = { Engine.default_config with timeout = Some 0.0 } in
  let r = Engine.run ~config c ~faults in
  Alcotest.(check bool) "CSSG truncated by the deadline" true
    (Engine.truncated r = Some Guard.Timeout);
  Alcotest.(check int) "every fault aborted" 2 (Engine.aborted r);
  Alcotest.(check int) "nothing detected" 0 (Engine.detected r);
  Alcotest.(check bool) "partial" true (Engine.partial r);
  let summary = Format.asprintf "%a" Engine.pp_summary r in
  Alcotest.(check bool) "summary names the aborted faults" true
    (contains ~sub:"aborted (2)" summary && contains ~sub:"d/" summary);
  Alcotest.(check bool) "summary names the truncation" true
    (contains ~sub:"truncated (timeout)" summary)

let test_engine_per_fault_abort_and_isolation () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let faults = Fault.universe_input_sa c in
  let config =
    {
      Engine.default_config with
      enable_random = false;
      enable_fault_sim = false;
      max_transitions = Some 1;
    }
  in
  let r = Engine.run ~config ~cssg:g c ~faults in
  let d, u, a = statuses r in
  Alcotest.(check int) "outcomes partition the universe"
    (List.length faults) (d + u + a);
  Alcotest.(check bool) "some fault aborted" true (a > 0);
  Alcotest.(check bool) "partial" true (Engine.partial r);
  Alcotest.(check bool) "reasons are the transition ceiling" true
    (List.for_all
       (fun (_, reason) -> reason = Guard.Transition_limit)
       (Engine.aborted_faults r));
  (* per-fault isolation: the same universe with a workable per-fault
     budget detects everything the unguarded engine detects *)
  let generous =
    { config with max_transitions = Some 1_000_000 }
  in
  let r2 = Engine.run ~config:generous ~cssg:g c ~faults in
  Alcotest.(check int) "generous budget aborts nothing" 0 (Engine.aborted r2);
  let unguarded =
    Engine.run
      ~config:{ config with max_transitions = None }
      ~cssg:g c ~faults
  in
  Alcotest.(check int) "and matches the unguarded run"
    (Engine.detected unguarded) (Engine.detected r2)

let test_engine_nonconfluent_state_ceiling () =
  let c = Figures.fig1a () in
  let faults = Fault.universe_input_sa c in
  let config = { Engine.default_config with max_states = Some 1 } in
  let r = Engine.run ~config c ~faults in
  Alcotest.(check bool) "CSSG truncated" true
    (Engine.truncated r = Some Guard.State_limit);
  Alcotest.(check bool) "partial" true (Engine.partial r);
  let d, u, a = statuses r in
  Alcotest.(check int) "outcomes partition the universe"
    (List.length faults) (d + u + a);
  (* the truncated run must never claim more than the full run *)
  let full = Engine.run c ~faults in
  Alcotest.(check bool) "coverage is a lower bound" true
    (Engine.detected r <= Engine.detected full)

let test_delay_and_baseline_abort () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let r = Delay_fault.run ~guard:(Guard.create ~max_transitions:1 ()) g in
  Alcotest.(check bool) "delay sweep aborts, never raises" true
    (Delay_fault.aborted r > 0);
  Alcotest.(check int) "every fault accounted for"
    (Delay_fault.total r)
    (List.length r.Delay_fault.outcomes);
  let b =
    Baseline.run c
      ~guard:(Guard.create ~max_transitions:1 ())
      ~cssg:g
      ~faults:(Fault.universe_output_sa c)
  in
  Alcotest.(check bool) "baseline aborts, never raises" true
    (Baseline.aborted b > 0)

let suites =
  [
    ( "robust.guard",
      [
        Alcotest.test_case "none is unlimited" `Quick test_none_unlimited;
        Alcotest.test_case "state ceiling" `Quick test_state_ceiling;
        Alcotest.test_case "transition ceiling" `Quick test_transition_ceiling;
        Alcotest.test_case "expired deadline" `Quick test_expired_deadline;
        Alcotest.test_case "sub-guard isolation" `Quick test_sub_isolation;
        Alcotest.test_case "guarded capture" `Quick test_guarded_capture;
      ] );
    ( "robust.saturation",
      [
        Alcotest.test_case "oscillator saturates to Phi" `Quick
          test_ternary_oscillator_saturates;
        Alcotest.test_case "ternary saturation conservative" `Quick
          test_ternary_saturation_conservative;
        Alcotest.test_case "parallel saturation conservative" `Quick
          test_parallel_saturation_conservative;
      ] );
    ( "robust.truncation",
      [
        Alcotest.test_case "explicit subgraph" `Quick
          test_explicit_truncation_subgraph;
        Alcotest.test_case "zero budget keeps reset" `Quick
          test_explicit_zero_budget_keeps_reset;
        Alcotest.test_case "oscillator timeout" `Quick
          test_explicit_timeout_on_oscillator;
        Alcotest.test_case "symbolic subgraph" `Quick
          test_symbolic_truncation_subgraph;
        Alcotest.test_case "symbolic guard mid-apply" `Quick
          test_symbolic_guard_mid_apply;
        Alcotest.test_case "symbolic state-ceiling explosion" `Quick
          test_symbolic_state_ceiling_explosion;
        Alcotest.test_case "symbolic with_guard isolation" `Quick
          test_symbolic_with_guard_isolation;
      ] );
    ( "robust.engine",
      [
        Alcotest.test_case "oscillator timeout aborts all" `Quick
          test_engine_oscillator_timeout;
        Alcotest.test_case "per-fault abort + isolation" `Quick
          test_engine_per_fault_abort_and_isolation;
        Alcotest.test_case "non-confluent state ceiling" `Quick
          test_engine_nonconfluent_state_ceiling;
        Alcotest.test_case "delay + baseline abort" `Quick
          test_delay_and_baseline_abort;
      ] );
  ]
