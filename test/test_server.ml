(* ATPG daemon contract tests.

   The headline property is conformance: for every request kind, the
   daemon's response renders bit-for-bit like the one-shot CLI path —
   including deterministically degraded runs under tiny budgets, and at
   every worker-pool width.  Around it: the warm store serves repeats
   with zero searches, a batch builds one CSSG per group and isolates a
   budget-tripped member, the framing layer survives truncated and
   corrupted frames, and a spawned daemon serves over a real socket,
   shrugs off garbage connections and drains cleanly on SIGTERM. *)

open Satg_guard
open Satg_circuit
open Satg_core
open Satg_bench
module Proto = Satg_server.Proto
module Service = Satg_server.Service
module Server = Satg_server.Server
module Client = Satg_server.Client
module Cssg = Satg_sg.Cssg
module Explicit = Satg_sg.Explicit
module Pool = Satg_pool.Pool

let ( // ) = Filename.concat
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.get_temp_dir_name ()
    // Printf.sprintf "satg-server-test-%d-%d" (Unix.getpid ()) !dir_counter
  in
  Satg_store.Journal.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (path // f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf d with _ -> ()) (fun () -> f d)

let with_service ?cache_dir ?jobs f =
  let service = Service.create ?cache_dir ?jobs () in
  Fun.protect ~finally:(fun () -> Service.shutdown service) (fun () ->
      f service)

let parse_exn netlist =
  match Parser.parse_string netlist with
  | Ok c -> c
  | Error m -> Alcotest.fail ("parse: " ^ m)

(* The render is the conformance currency: two summaries are "the same
   result" iff the CLI would print the same bytes for both. *)
let rendered c p =
  Format.asprintf "%a"
    (fun fmt (c, p) -> Session.render ~verbose:true fmt c p)
    (c, p)

(* The verbose render embeds elapsed wall-clock ("in 0.04s") — the one
   legitimately nondeterministic byte between a daemon answer and a
   fresh one-shot of the same request. Replace each "in D.DDs" token
   with a fixed marker before comparing. *)
let strip_seconds s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let is_digit ch = ch >= '0' && ch <= '9' in
  let i = ref 0 in
  while !i < n do
    let matched =
      !i + 3 <= n
      && String.sub s !i 3 = "in "
      && (!i = 0 || s.[!i - 1] = ' ')
      &&
      let j = ref (!i + 3) in
      let d0 = !j in
      while !j < n && is_digit s.[!j] do incr j done;
      if !j > d0 && !j + 1 < n && s.[!j] = '.' then begin
        let d1 = !j + 1 in
        j := d1;
        while !j < n && is_digit s.[!j] do incr j done;
        if !j > d1 && !j < n && s.[!j] = 's' then begin
          Buffer.add_string buf "in <t>s";
          i := !j + 1;
          true
        end
        else false
      end
      else false
    in
    if not matched then begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let rendered_no_time c p = strip_seconds (rendered c p)

(* The one-shot CLI path, distilled: same guard construction, same
   session entry point as [bin/satg.ml]. *)
let oneshot ~jobs ~config c universe =
  let config = { config with Engine.jobs } in
  let guard =
    Guard.create ?timeout:config.Engine.timeout
      ?max_states:config.Engine.max_states
      ?max_transitions:config.Engine.max_transitions ()
  in
  Session.summary_of_result (Session.run ~guard ~config c universe)

let stat fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> Alcotest.fail ("missing stats field " ^ k)

let get_stats service =
  match Service.handle service Proto.Stats with
  | Proto.Stats_r fields -> fields
  | _ -> Alcotest.fail "stats request must answer Stats_r"

(* --- protocol round trips -------------------------------------------------- *)

let sample_config =
  {
    Engine.default_config with
    Engine.k = Some 3;
    max_states = Some 100;
    timeout = Some 1.5;
    engine = Engine.Sat;
    collapse = false;
  }

let sample_requests =
  [
    Proto.Atpg
      {
        Proto.netlist = "module m\nendmodule\n";
        universe = Session.Both;
        config = sample_config;
      };
    Proto.Cssg
      {
        Proto.c_netlist = "bytes with\nnewlines\n";
        c_k = None;
        c_dump = true;
        c_timeout = None;
        c_max_states = Some 5;
        c_max_transitions = None;
      };
    Proto.Check "whatever bytes\n";
  ]

let test_request_roundtrip () =
  let all =
    sample_requests @ [ Proto.Stats; Proto.Batch sample_requests ]
  in
  List.iter
    (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Error m -> Alcotest.fail ("round trip: " ^ m)
      | Ok r' ->
        (* compare via re-encoding: structural equality without needing
           an [eq] over configs *)
        Alcotest.(check string) "request round-trips"
          (Proto.encode_request r) (Proto.encode_request r'))
    all;
  (* jobs never travels: a config with jobs decodes with jobs = None *)
  (match
     Proto.decode_request
       (Proto.encode_request
          (Proto.Atpg
             {
               Proto.netlist = "n";
               universe = Session.Input;
               config = { sample_config with Engine.jobs = Some 8 };
             }))
   with
  | Ok (Proto.Atpg a) ->
    Alcotest.(check bool) "jobs stripped" true (a.Proto.config.Engine.jobs = None)
  | _ -> Alcotest.fail "atpg must decode as atpg");
  (* one nesting level only *)
  (match
     Proto.decode_request
       (Proto.encode_request (Proto.Batch [ Proto.Batch [ Proto.Check "x" ] ]))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested batch must be rejected");
  (match
     Proto.decode_request (Proto.encode_request (Proto.Batch [ Proto.Stats ]))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stats inside a batch must be rejected");
  match Proto.decode_request "no such kind\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must be rejected"

let test_response_roundtrip () =
  let c = Figures.fig1a () in
  let summary =
    oneshot ~jobs:None
      ~config:{ Engine.default_config with Engine.max_states = Some 4 }
      c Session.Input
  in
  let samples =
    [
      Proto.Result { hit = true; payload = summary };
      Proto.Text { degraded = true; text = "several\nlines\n" };
      Proto.Diags
        [ { Parser.line = 0; msg = "global" }; { Parser.line = 7; msg = "x y" } ];
      Proto.Failure { code = "parse"; msg = "line 3: nope" };
      Proto.Stats_r [ ("hits", "3"); ("misses", "1") ];
    ]
  in
  List.iter
    (fun r ->
      match Proto.decode_response (Proto.encode_response r) with
      | Error m -> Alcotest.fail ("round trip: " ^ m)
      | Ok r' ->
        Alcotest.(check string) "response round-trips"
          (Proto.encode_response r) (Proto.encode_response r'))
    (samples @ [ Proto.Batch_r samples ])

(* --- framing --------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let frame_roundtrip_prop =
  QCheck.Test.make ~count:60 ~name:"frame: round-trip; any bit flip rejected"
    (QCheck.make
       QCheck.Gen.(
         pair
           (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 512))
           (int_range 0 1_000_000)))
    (fun (payload, flip_seed) ->
      (* clean round trip *)
      with_socketpair (fun a b ->
          Proto.write_frame a payload;
          match Proto.read_frame b with
          | Ok p -> assert (p = payload)
          | Error _ -> assert false);
      (* the same frame with one bit flipped never comes back [Ok] *)
      let n = String.length payload in
      let frame = Bytes.create (8 + n) in
      Bytes.set_int32_le frame 0 (Int32.of_int n);
      Bytes.set_int32_le frame 4
        (Int32.of_int (Satg_store.Crc32.string payload));
      Bytes.blit_string payload 0 frame 8 n;
      let pos = flip_seed mod (8 + n) in
      let bit = 1 lsl (flip_seed / (8 + n) mod 8) in
      Bytes.set frame pos
        (Char.chr (Char.code (Bytes.get frame pos) lxor bit));
      with_socketpair (fun a b ->
          ignore (Unix.write a frame 0 (8 + n));
          Unix.shutdown a Unix.SHUTDOWN_SEND;
          match Proto.read_frame b with
          | Ok _ -> false
          | Error (Proto.Malformed _) -> true
          | Error _ -> false))

let test_truncated_frames () =
  (* every possible truncation point of a valid frame is a clean error *)
  let payload = "a small payload" in
  let n = String.length payload in
  let frame = Bytes.create (8 + n) in
  Bytes.set_int32_le frame 0 (Int32.of_int n);
  Bytes.set_int32_le frame 4 (Int32.of_int (Satg_store.Crc32.string payload));
  Bytes.blit_string payload 0 frame 8 n;
  for keep = 0 to 8 + n - 1 do
    with_socketpair (fun a b ->
        if keep > 0 then ignore (Unix.write a frame 0 keep);
        Unix.shutdown a Unix.SHUTDOWN_SEND;
        match Proto.read_frame b with
        | Error Proto.Eof when keep = 0 -> ()
        | Error (Proto.Malformed _) when keep > 0 -> ()
        | Ok _ -> Alcotest.fail "truncated frame must not parse"
        | Error _ ->
          Alcotest.failf "truncation at %d: wrong error class" keep)
  done;
  (* an oversized length header is rejected before any allocation *)
  with_socketpair (fun a b ->
      let h = Bytes.create 8 in
      Bytes.set_int32_le h 0 0x7FFFFFFFl;
      Bytes.set_int32_le h 4 0l;
      ignore (Unix.write a h 0 8);
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match Proto.read_frame b with
      | Error (Proto.Malformed _) -> ()
      | _ -> Alcotest.fail "oversized frame must be malformed")

(* --- conformance: daemon result = one-shot result -------------------------- *)

let universes = [ Session.Input; Session.Output; Session.Both ]

let conformance_configs =
  [
    ("default", Engine.default_config);
    ("sat", { Engine.default_config with Engine.engine = Engine.Sat });
    (* tiny deterministic budget: the degraded path must conform too *)
    ("capped", { Engine.default_config with Engine.max_states = Some 2 });
    ( "capped-transitions",
      { Engine.default_config with Engine.max_transitions = Some 40 } );
    (* symbolic engine with reordering and a non-default quantification
       schedule: representation knobs must render identically up to the
       elapsed wall-clock, which the comparison normalizes away. *)
    ( "bdd-sift",
      {
        Engine.default_config with
        Engine.engine = Engine.Bdd;
        reorder = Satg_bdd.Bdd.Reorder_sift;
        cluster_cap = 64;
      } );
  ]

let test_atpg_conformance () =
  let netlist = Parser.to_string (Figures.celem_handshake ()) in
  let c = parse_exn netlist in
  List.iter
    (fun jobs ->
      with_service ?jobs @@ fun service ->
      List.iter
        (fun (label, config) ->
          List.iter
            (fun universe ->
              let expected = oneshot ~jobs ~config c universe in
              match
                Service.handle service
                  (Proto.Atpg { Proto.netlist; universe; config })
              with
              | Proto.Result { hit = false; payload } ->
                Alcotest.(check string)
                  (Printf.sprintf "%s/%s/-j%s" label
                     (Session.universe_name universe)
                     (match jobs with Some j -> string_of_int j | None -> "0"))
                  (rendered_no_time c expected) (rendered_no_time c payload)
              | Proto.Result { hit = true; _ } ->
                Alcotest.fail "fresh request must not be a warm hit"
              | _ -> Alcotest.fail "atpg must answer Result")
            universes)
        conformance_configs)
    [ None; Some 4 ]

let test_cssg_conformance () =
  let netlist = Parser.to_string (Figures.fig1a ()) in
  let c = parse_exn netlist in
  List.iter
    (fun (max_states, dump) ->
      (* the one-shot [satg cssg] path *)
      let guard = Guard.create ?max_states () in
      let g = Explicit.build ~guard c in
      let expected =
        if dump then Format.asprintf "%a@." Cssg.pp g
        else Format.asprintf "%a@." Cssg.pp_stats g
      in
      with_service @@ fun service ->
      match
        Service.handle service
          (Proto.Cssg
             {
               Proto.c_netlist = netlist;
               c_k = None;
               c_dump = dump;
               c_timeout = None;
               c_max_states = max_states;
               c_max_transitions = None;
             })
      with
      | Proto.Text { degraded; text } ->
        Alcotest.(check string) "cssg text conforms" expected text;
        Alcotest.(check bool) "degraded iff truncated"
          (Cssg.truncated g <> None)
          degraded
      | _ -> Alcotest.fail "cssg must answer Text")
    [ (None, false); (None, true); (Some 2, false) ]

let test_check_conformance () =
  let netlist = Parser.to_string (Figures.mutex_latch ()) in
  let c = parse_exn netlist in
  with_service @@ fun service ->
  (match Service.handle service (Proto.Check netlist) with
  | Proto.Text { degraded = false; text } ->
    Alcotest.(check string) "check report conforms"
      (Session.check_report c) text
  | _ -> Alcotest.fail "valid netlist must answer Text");
  (* lint findings come back structured, identical to the local linter *)
  let bad = "input a\ngate q = nand(a, zz)\n" in
  match (Service.handle service (Proto.Check bad), Parser.lint_string bad) with
  | Proto.Diags got, expected ->
    Alcotest.(check bool) "lint diags non-empty" true (expected <> []);
    Alcotest.(check (list (pair int string)))
      "diags conform"
      (List.map (fun d -> (d.Parser.line, d.Parser.msg)) expected)
      (List.map (fun d -> (d.Parser.line, d.Parser.msg)) got)
  | _ -> Alcotest.fail "broken netlist must answer Diags"

(* --- warm store ------------------------------------------------------------ *)

let test_warm_hit () =
  let netlist = Parser.to_string (Figures.celem_handshake ()) in
  let c = parse_exn netlist in
  (* a deterministically capped (degraded!) run is still reproducible,
     so even it is served warm *)
  let config = { Engine.default_config with Engine.max_states = Some 3 } in
  let req = Proto.Atpg { Proto.netlist; universe = Session.Input; config } in
  with_service @@ fun service ->
  let first =
    match Service.handle service req with
    | Proto.Result { hit = false; payload } -> payload
    | _ -> Alcotest.fail "first request must be a cold miss"
  in
  (match Service.handle service req with
  | Proto.Result { hit = true; payload } ->
    Alcotest.(check string) "hit replays the same bytes" (rendered c first)
      (rendered c payload)
  | Proto.Result { hit = false; _ } ->
    Alcotest.fail "identical request must be a warm hit"
  | _ -> Alcotest.fail "atpg must answer Result");
  let fields = get_stats service in
  Alcotest.(check string) "one miss" "1" (stat fields "misses");
  Alcotest.(check string) "one hit" "1" (stat fields "hits");
  (* the hit did zero graph work: still exactly one build *)
  Alcotest.(check string) "one cssg build" "1" (stat fields "cssg-builds")

let test_warm_store_is_keyed () =
  let netlist = Parser.to_string (Figures.celem_handshake ()) in
  with_service @@ fun service ->
  let ask config =
    match
      Service.handle service
        (Proto.Atpg { Proto.netlist; universe = Session.Input; config })
    with
    | Proto.Result { hit; _ } -> hit
    | _ -> Alcotest.fail "atpg must answer Result"
  in
  Alcotest.(check bool) "cold" false (ask Engine.default_config);
  (* a different cap is a different result — must not be served warm *)
  Alcotest.(check bool) "different caps miss" false
    (ask { Engine.default_config with Engine.max_states = Some 3 });
  (* jobs is not part of the identity: same key, warm *)
  Alcotest.(check bool) "jobs-only difference hits" true
    (ask { Engine.default_config with Engine.jobs = Some 4 });
  (* reorder and cluster-cap are outcome-relevant config: both must be
     part of the cache key even though they never change the graph *)
  Alcotest.(check bool) "reorder-only difference misses" false
    (ask
       { Engine.default_config with Engine.reorder = Satg_bdd.Bdd.Reorder_sift });
  Alcotest.(check bool) "cluster-cap-only difference misses" false
    (ask { Engine.default_config with Engine.cluster_cap = 7 });
  Alcotest.(check bool) "reorder repeat hits" true
    (ask
       { Engine.default_config with Engine.reorder = Satg_bdd.Bdd.Reorder_sift })

(* config_fields is the single enumeration behind cache keys, batch
   groups and the wire protocol: every new outcome-relevant field must
   appear there and round-trip through the decoder. *)
let test_config_fields_cover_reorder () =
  let config =
    {
      Engine.default_config with
      Engine.engine = Engine.Bdd;
      reorder = Satg_bdd.Bdd.Reorder_sift;
      cluster_cap = 17;
      max_states = Some 9;
    }
  in
  let fields = Session.config_fields ~universe:Session.Input config in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> Alcotest.fail ("config_fields misses " ^ k)
  in
  Alcotest.(check string) "reorder row" "sift" (get "reorder");
  Alcotest.(check string) "cluster-cap row" "17" (get "cluster-cap");
  Alcotest.(check string) "default reorder name" "none"
    (Session.reorder_name Engine.default_config.Engine.reorder);
  (match Session.config_of_fields fields with
  | Some (universe, c) ->
    Alcotest.(check bool) "universe back" true (universe = Session.Input);
    Alcotest.(check string) "reorder back" "sift"
      (Session.reorder_name c.Engine.reorder);
    Alcotest.(check int) "cluster-cap back" 17 c.Engine.cluster_cap
  | None -> Alcotest.fail "fields must parse back");
  (* a malformed reorder value is rejected, not defaulted *)
  let broken =
    List.map
      (fun (k, v) -> if k = "reorder" then (k, "bogus") else (k, v))
      fields
  in
  Alcotest.(check bool) "bogus reorder rejected" true
    (Session.config_of_fields broken = None)

let test_disk_store_shared () =
  (* daemon publishes to --cache-dir; a second daemon (fresh memory)
     serves it warm from disk *)
  with_dir @@ fun d ->
  let netlist = Parser.to_string (Figures.fig1a ()) in
  let req =
    Proto.Atpg
      {
        Proto.netlist;
        universe = Session.Input;
        config = Engine.default_config;
      }
  in
  (with_service ~cache_dir:d @@ fun service ->
   match Service.handle service req with
   | Proto.Result { hit = false; _ } -> ()
   | _ -> Alcotest.fail "first daemon: cold miss expected");
  with_service ~cache_dir:d @@ fun service ->
  match Service.handle service req with
  | Proto.Result { hit = true; _ } -> ()
  | _ -> Alcotest.fail "second daemon must hit the disk store"

(* --- batches ---------------------------------------------------------------- *)

let test_batch_shares_cssg () =
  let netlist = Parser.to_string (Figures.celem_handshake ()) in
  let c = parse_exn netlist in
  let config = Engine.default_config in
  let member universe = Proto.Atpg { Proto.netlist; universe; config } in
  with_service @@ fun service ->
  (match Service.handle service (Proto.Batch (List.map member universes)) with
  | Proto.Batch_r responses ->
    Alcotest.(check int) "one response per member" (List.length universes)
      (List.length responses);
    List.iter2
      (fun universe response ->
        match response with
        | Proto.Result { payload; _ } ->
          Alcotest.(check string)
            ("batch member conforms: " ^ Session.universe_name universe)
            (rendered c (oneshot ~jobs:None ~config c universe))
            (rendered c payload)
        | _ -> Alcotest.fail "batch member must answer Result")
      universes responses
  | _ -> Alcotest.fail "batch must answer Batch_r");
  let fields = get_stats service in
  Alcotest.(check string) "three members, one graph build" "1"
    (stat fields "cssg-builds");
  Alcotest.(check string) "three members" "3" (stat fields "batch-members")

let test_batch_isolation () =
  (* the middle member blows a deterministic budget: it degrades alone,
     its neighbours (and their conformance) are untouched *)
  let netlist = Parser.to_string (Figures.celem_handshake ()) in
  let c = parse_exn netlist in
  let ok_config = Engine.default_config in
  let tripped_config =
    { Engine.default_config with Engine.max_states = Some 2 }
  in
  let member config universe =
    Proto.Atpg { Proto.netlist; universe; config }
  in
  with_service @@ fun service ->
  match
    Service.handle service
      (Proto.Batch
         [
           member ok_config Session.Input;
           member tripped_config Session.Input;
           member ok_config Session.Output;
         ])
  with
  | Proto.Batch_r
      [
        Proto.Result { payload = p1; _ };
        Proto.Result { payload = p2; _ };
        Proto.Result { payload = p3; _ };
      ] ->
    Alcotest.(check bool) "member 1 complete" false (Session.degraded p1);
    Alcotest.(check bool) "member 2 degraded" true (Session.degraded p2);
    Alcotest.(check bool) "member 3 complete" false (Session.degraded p3);
    Alcotest.(check string) "member 2 conforms to its own one-shot"
      (rendered c (oneshot ~jobs:None ~config:tripped_config c Session.Input))
      (rendered c p2);
    Alcotest.(check string) "member 3 conforms after the trip"
      (rendered c (oneshot ~jobs:None ~config:ok_config c Session.Output))
      (rendered c p3)
  | _ -> Alcotest.fail "batch must answer three Results"

let test_batch_bad_member_isolated () =
  (* an unparsable member is a structured failure, not a batch killer *)
  let netlist = Parser.to_string (Figures.fig1a ()) in
  with_service @@ fun service ->
  match
    Service.handle service
      (Proto.Batch
         [
           Proto.Atpg
             {
               Proto.netlist = "not a netlist";
               universe = Session.Input;
               config = Engine.default_config;
             };
           Proto.Atpg
             {
               Proto.netlist;
               universe = Session.Input;
               config = Engine.default_config;
             };
         ])
  with
  | Proto.Batch_r [ Proto.Failure { code; _ }; Proto.Result _ ] ->
    Alcotest.(check string) "parse failure" "parse" code
  | _ -> Alcotest.fail "bad member must fail alone"

(* --- the daemon over a real socket ----------------------------------------- *)

(* The daemon under test is the real [satg serve] binary, spawned with
   [Unix.create_process]: [Unix.fork] is forbidden once any domain has
   ever been created in the process (earlier suites spin up pools), and
   a separate image is the stronger end-to-end test anyway. *)
let satg_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "satg.exe")

let spawn_daemon socket =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () ->
      Unix.create_process satg_exe
        [| satg_exe; "serve"; "--socket"; socket |]
        Unix.stdin devnull devnull)

let expect_exit pid expected what =
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED n when n = expected -> ()
  | Unix.WEXITED n -> Alcotest.failf "%s: exit %d (wanted %d)" what n expected
  | Unix.WSIGNALED s -> Alcotest.failf "%s: killed by signal %d" what s
  | Unix.WSTOPPED _ -> Alcotest.failf "%s: stopped" what

let send_raw socket bytes =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      ignore (Unix.write fd bytes 0 (Bytes.length bytes));
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      (* wait for the daemon to drop the connection, so the counters
         below are deterministic *)
      ignore (Unix.read fd (Bytes.create 1) 0 1))

let test_daemon_end_to_end () =
  with_dir @@ fun d ->
  let socket = d // "satg.sock" in
  let pid = spawn_daemon socket in
  let netlist = Parser.to_string (Figures.celem_handshake ()) in
  let c = parse_exn netlist in
  Fun.protect ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
      with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ask req =
    match Client.one_shot ~retry_for:10. ~socket req with
    | Ok r -> r
    | Error m -> Alcotest.fail ("client: " ^ m)
  in
  (* check over the wire *)
  (match ask (Proto.Check netlist) with
  | Proto.Text { degraded = false; text } ->
    Alcotest.(check string) "check over the wire"
      (Session.check_report c) text
  | _ -> Alcotest.fail "check must answer Text");
  (* a deliberately corrupted frame (bad CRC) and a torn frame: both
     cost their connection, never the daemon *)
  send_raw socket
    (let b = Bytes.create 12 in
     Bytes.set_int32_le b 0 4l;
     Bytes.set_int32_le b 4 0l;
     Bytes.blit_string "abcd" 0 b 8 4;
     b);
  send_raw socket
    (let b = Bytes.create 10 in
     Bytes.set_int32_le b 0 100l;
     Bytes.set_int32_le b 4 0l;
     b);
  (* still serving: a real run, then its warm repeat *)
  let config = { Engine.default_config with Engine.max_states = Some 3 } in
  let req = Proto.Atpg { Proto.netlist; universe = Session.Input; config } in
  let first =
    match ask req with
    | Proto.Result { hit = false; payload } -> payload
    | _ -> Alcotest.fail "cold miss expected"
  in
  Alcotest.(check bool) "tiny budget degrades" true (Session.degraded first);
  (match ask req with
  | Proto.Result { hit = true; payload } ->
    Alcotest.(check string) "warm replay over the wire" (rendered c first)
      (rendered c payload)
  | _ -> Alcotest.fail "warm hit expected");
  (* counters saw all of it *)
  (match ask Proto.Stats with
  | Proto.Stats_r fields ->
    Alcotest.(check string) "malformed frames" "2"
      (stat fields "malformed-frames");
    Alcotest.(check string) "hits" "1" (stat fields "hits");
    Alcotest.(check string) "misses" "1" (stat fields "misses")
  | _ -> Alcotest.fail "stats must answer Stats_r");
  (* graceful drain: SIGTERM => exit 0, socket unlinked *)
  Unix.kill pid Sys.sigterm;
  expect_exit pid 0 "drained daemon";
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

let test_daemon_reclaims_stale_socket () =
  with_dir @@ fun d ->
  let socket = d // "satg.sock" in
  let first = spawn_daemon socket in
  (* make sure it is up, then kill it hard: the socket file survives *)
  (match Client.one_shot ~retry_for:10. ~socket Proto.Stats with
  | Ok (Proto.Stats_r _) -> ()
  | _ -> Alcotest.fail "first daemon must serve");
  Unix.kill first Sys.sigkill;
  ignore (Unix.waitpid [] first);
  Alcotest.(check bool) "socket file left behind" true (Sys.file_exists socket);
  (* a fresh daemon reclaims the corpse and serves *)
  let second = spawn_daemon socket in
  Fun.protect ~finally:(fun () ->
      try Unix.kill second Sys.sigkill with Unix.Unix_error _ -> ())
  @@ fun () ->
  (match Client.one_shot ~retry_for:10. ~socket Proto.Stats with
  | Ok (Proto.Stats_r _) -> ()
  | _ -> Alcotest.fail "second daemon must reclaim and serve");
  Unix.kill second Sys.sigterm;
  expect_exit second 0 "second daemon"

(* A guard trip while sifting is enabled must stay fail-soft all the
   way out of the real binary: the partial graph renders and the exit
   code is 2, never a hang or a crash. *)
let test_cli_sift_trip_exits_partial () =
  with_dir @@ fun d ->
  let netlist_file = d // "celem.cct" in
  let oc = open_out netlist_file in
  output_string oc (Parser.to_string (Figures.celem_handshake ()));
  close_out oc;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close devnull)
      (fun () ->
        Unix.create_process satg_exe
          [|
            satg_exe; "cssg"; netlist_file; "--engine"; "symbolic";
            "--reorder"; "sift"; "--max-transitions"; "2";
          |]
          Unix.stdin devnull devnull)
  in
  expect_exit pid 2 "tripped symbolic cssg with sift"

let suites =
  [
    ( "server_proto",
      [
        Alcotest.test_case "request round trips" `Quick test_request_roundtrip;
        Alcotest.test_case "response round trips" `Quick
          test_response_roundtrip;
        QCheck_alcotest.to_alcotest frame_roundtrip_prop;
        Alcotest.test_case "truncated/oversized frames" `Quick
          test_truncated_frames;
      ] );
    ( "server_service",
      [
        Alcotest.test_case "atpg conforms to one-shot (all engines, \
                            budgets, -j)" `Slow test_atpg_conformance;
        Alcotest.test_case "cssg conforms to one-shot" `Quick
          test_cssg_conformance;
        Alcotest.test_case "check conforms; lint is structured" `Quick
          test_check_conformance;
        Alcotest.test_case "warm hit replays bytes, zero builds" `Quick
          test_warm_hit;
        Alcotest.test_case "warm store keyed by config" `Quick
          test_warm_store_is_keyed;
        Alcotest.test_case "config fields cover reorder knobs" `Quick
          test_config_fields_cover_reorder;
        Alcotest.test_case "disk store shared across daemons" `Quick
          test_disk_store_shared;
        Alcotest.test_case "batch: one CSSG build per group" `Quick
          test_batch_shares_cssg;
        Alcotest.test_case "batch: tripped member degrades alone" `Quick
          test_batch_isolation;
        Alcotest.test_case "batch: unparsable member fails alone" `Quick
          test_batch_bad_member_isolated;
      ] );
    ( "server_daemon",
      [
        Alcotest.test_case "end to end over a socket" `Quick
          test_daemon_end_to_end;
        Alcotest.test_case "stale socket reclaimed" `Quick
          test_daemon_reclaims_stale_socket;
        Alcotest.test_case "sift trip exits 2" `Quick
          test_cli_sift_trip_exits_partial;
      ] );
  ]
