(* Property tests for the dual-rail word algebra underlying
   Parallel_sim: each lane of a (one, zero) rail pair encodes a ternary
   value; the operators must be the lane-wise monotone ternary
   functions.  Checked here:

   - lane-wise agreement with the scalar ternary algebra, for every
     gate function (the algebra's defining property),
   - commutativity and De Morgan duality of the word operators,
   - monotonicity w.r.t. the information (Phi) order: blurring an
     operand can only blur the result,
   - rails <-> ternary-vector round-trips. *)

open Satg_logic
open Satg_circuit
open Satg_sim

let lanes = 16
let mask = (1 lsl lanes) - 1

(* --- generators ----------------------------------------------------------- *)

let gen_ternary =
  QCheck.Gen.oneofl [ Ternary.Zero; Ternary.One; Ternary.Phi ]

let gen_tvec = QCheck.Gen.(array_size (return lanes) gen_ternary)

let gen_rails = QCheck.Gen.map Parallel_sim.rails_of_ternaries gen_tvec

let print_rails r =
  Printf.sprintf "{one=%x; zero=%x}" r.Parallel_sim.one r.Parallel_sim.zero

let rails_arb = QCheck.make gen_rails ~print:print_rails

let rails_pair = QCheck.pair rails_arb rails_arb
let rails_triple = QCheck.triple rails_arb rails_arb rails_arb

let decode r = Array.init lanes (Parallel_sim.ternary_of_rails r)

let rails_equal a b =
  a.Parallel_sim.one = b.Parallel_sim.one
  && a.Parallel_sim.zero = b.Parallel_sim.zero

(* Information order, lane-wise: [a] below [b] iff every rail bit of
   [a] is a rail bit of [b] (rails only gain bits; Phi is top). *)
let rails_leq a b =
  a.Parallel_sim.one land lnot b.Parallel_sim.one = 0
  && a.Parallel_sim.zero land lnot b.Parallel_sim.zero = 0

(* Blur: lub with Phi on a lane subset — strictly climbs the order. *)
let blur extra r =
  let extra = extra land mask in
  Parallel_sim.
    { one = r.one lor extra; zero = r.zero lor extra }

(* --- P1: lane-wise agreement with the scalar ternary algebra -------------- *)

(* One property per shape; Sop is exercised through Parallel_sim's
   eval_cover path in the circuit-level differential oracle. *)
let funcs_2in =
  Gatefunc.[ And; Or; Nand; Nor; Xor; Xnor ]

let prop_func_lanes =
  QCheck.Test.make ~name:"rails: eval_func = lane-wise eval_ternary" ~count:500
    rails_triple (fun (a, b, self) ->
      let ta = decode a and tb = decode b and tself = decode self in
      List.for_all
        (fun f ->
          let word = Parallel_sim.eval_func mask f ~self [| a; b |] in
          let ok = ref true in
          for l = 0 to lanes - 1 do
            let want = Gatefunc.eval_ternary f ~self:tself.(l) [| ta.(l); tb.(l) |] in
            if
              not
                (Ternary.equal (Parallel_sim.ternary_of_rails word l) want)
            then ok := false
          done;
          !ok)
        (Gatefunc.Celem :: funcs_2in))

let prop_mux_lanes =
  QCheck.Test.make ~name:"rails: mux = lane-wise ternary mux" ~count:500
    rails_triple (fun (s, a, b) ->
      let ts = decode s and ta = decode a and tb = decode b in
      let word = Parallel_sim.r_mux s a b in
      let ok = ref true in
      for l = 0 to lanes - 1 do
        let want =
          Gatefunc.eval_ternary Gatefunc.Mux ~self:Ternary.Phi
            [| ts.(l); ta.(l); tb.(l) |]
        in
        if not (Ternary.equal (Parallel_sim.ternary_of_rails word l) want) then
          ok := false
      done;
      !ok)

(* --- P2: commutativity ----------------------------------------------------- *)

let prop_commutative =
  QCheck.Test.make ~name:"rails: and/or/xor commute" ~count:500 rails_pair
    (fun (a, b) ->
      rails_equal (Parallel_sim.r_and a b) (Parallel_sim.r_and b a)
      && rails_equal (Parallel_sim.r_or a b) (Parallel_sim.r_or b a)
      && rails_equal (Parallel_sim.r_xor a b) (Parallel_sim.r_xor b a))

(* --- P3: De Morgan ---------------------------------------------------------- *)

let prop_de_morgan =
  QCheck.Test.make ~name:"rails: De Morgan" ~count:500 rails_pair
    (fun (a, b) ->
      let open Parallel_sim in
      rails_equal (r_not (r_and a b)) (r_or (r_not a) (r_not b))
      && rails_equal (r_not (r_or a b)) (r_and (r_not a) (r_not b))
      && rails_equal (r_not (r_not a)) a)

(* --- P4: monotonicity in the Phi order -------------------------------------- *)

let prop_monotone =
  QCheck.Test.make ~name:"rails: operators monotone w.r.t. Phi order"
    ~count:500
    QCheck.(pair rails_triple small_int)
    (fun ((a, b, c), extra) ->
      let a' = blur extra a in
      rails_leq a a'
      && rails_leq (Parallel_sim.r_and a b) (Parallel_sim.r_and a' b)
      && rails_leq (Parallel_sim.r_or a b) (Parallel_sim.r_or a' b)
      && rails_leq (Parallel_sim.r_xor a b) (Parallel_sim.r_xor a' b)
      && rails_leq (Parallel_sim.r_not a) (Parallel_sim.r_not a')
      && rails_leq (Parallel_sim.r_mux a b c) (Parallel_sim.r_mux a' b c)
      && rails_leq (Parallel_sim.r_mux b a c) (Parallel_sim.r_mux b a' c)
      && rails_leq
           (Parallel_sim.r_celem mask ~self:b [| a; c |])
           (Parallel_sim.r_celem mask ~self:b [| a'; c |])
      && rails_leq
           (Parallel_sim.r_celem mask ~self:a [| b; c |])
           (Parallel_sim.r_celem mask ~self:a' [| b; c |]))

(* --- P5: round-trips --------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"rails: ternary round-trip" ~count:500
    (QCheck.make gen_tvec
       ~print:(fun ts -> Ternary.vector_to_string ts))
    (fun ts ->
      let r = Parallel_sim.rails_of_ternaries ts in
      let back = decode r in
      Array.for_all2 Ternary.equal ts back
      && rails_equal r (Parallel_sim.rails_of_ternaries back))

let prop_const_lanes =
  QCheck.Test.make ~name:"rails: const decodes to its value" ~count:100
    QCheck.bool (fun v ->
      let r = Parallel_sim.r_const mask v in
      Array.for_all
        (fun t -> Ternary.equal t (Ternary.of_bool v))
        (decode r))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_func_lanes;
      prop_mux_lanes;
      prop_commutative;
      prop_de_morgan;
      prop_monotone;
      prop_roundtrip;
      prop_const_lanes;
    ]

let suites = [ ("rails", qcheck_cases) ]
