(* Durable-store contract tests: CRC known answers, journal
   roundtrip/rotation/torn-tail salvage, the qcheck corruption property
   (any truncation or bit flip yields a salvaged valid prefix or a
   clean reject, never a crash or an invented record), lockfile
   staleness, the fault-injection harness, and the headline resume
   property: a session resumed from any journal prefix reproduces the
   uninterrupted run fault-for-fault. *)

open Satg_guard
open Satg_fault
open Satg_core
open Satg_bench
open Satg_pool
open Satg_inject
open Satg_store

let ( // ) = Filename.concat
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d =
    Filename.get_temp_dir_name ()
    // Printf.sprintf "satg-store-test-%d-%d" (Unix.getpid ()) !dir_counter
  in
  Journal.mkdir_p d;
  d

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (path // f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf d with _ -> ()) (fun () -> f d)

let with_inject spec f =
  (match Inject.configure spec with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("bad inject spec: " ^ m));
  Fun.protect ~finally:Inject.clear f

let is_prefix ~of_:full prefix =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | p :: ps, f :: fs -> p = f && go (ps, fs)
  in
  go (prefix, full)

(* --- crc32 ---------------------------------------------------------------- *)

let test_crc_known () =
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check bool) "sensitive to one bit" true
    (Crc32.string "satg" <> Crc32.string "sati")

(* --- journal -------------------------------------------------------------- *)

let records =
  [ "alpha"; ""; "with\nnewline"; String.make 100 '\xAB'; "z" ]

let test_journal_roundtrip () =
  with_dir @@ fun d ->
  let j = Journal.create ~meta:"key1" (d // "wal") in
  List.iter (Journal.append j) records;
  Alcotest.(check int) "appended" (List.length records)
    (Journal.entries_appended j);
  Journal.close j;
  match Journal.replay (d // "wal") with
  | Error m -> Alcotest.fail m
  | Ok r ->
    Alcotest.(check (list string)) "entries" records r.Journal.entries;
    Alcotest.(check int) "clean" 0 r.Journal.salvaged_bytes;
    Alcotest.(check string) "meta pinned" "key1" r.Journal.meta

let test_journal_rotation () =
  with_dir @@ fun d ->
  let j = Journal.create ~segment_bytes:32 ~meta:"" (d // "wal") in
  let recs = List.init 40 (fun i -> Printf.sprintf "record-%03d" i) in
  List.iter (Journal.append j) recs;
  Journal.close j;
  let sealed =
    Sys.readdir (d // "wal") |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".seg")
  in
  Alcotest.(check bool) "rotated into several segments" true
    (List.length sealed > 2);
  match Journal.replay (d // "wal") with
  | Error m -> Alcotest.fail m
  | Ok r -> Alcotest.(check (list string)) "order kept" recs r.Journal.entries

let test_journal_torn_tail () =
  with_dir @@ fun d ->
  let j = Journal.create ~meta:"" (d // "wal") in
  List.iter (Journal.append j) records;
  (* simulate a crash mid-append: garbage lands after the last durable
     record, and the process never seals the segment *)
  let open_seg = d // "wal" // "wal-000001.open" in
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 open_seg
  in
  output_string oc "\x05\x00\x00\x00torngarbage";
  close_out oc;
  (match Journal.replay (d // "wal") with
  | Error m -> Alcotest.fail m
  | Ok r ->
    Alcotest.(check (list string)) "prefix salvaged" records r.Journal.entries;
    Alcotest.(check bool) "tail discarded" true (r.Journal.salvaged_bytes > 0));
  (* resume truncates the torn tail and appends continue cleanly *)
  match Journal.open_resume (d // "wal") with
  | Error m -> Alcotest.fail m
  | Ok (j, recovery) ->
    Alcotest.(check int) "resume sees the prefix" (List.length records)
      (List.length recovery.Journal.entries);
    Journal.append j "after-crash";
    Journal.close j;
    (match Journal.replay (d // "wal") with
    | Error m -> Alcotest.fail m
    | Ok r ->
      Alcotest.(check (list string))
        "append after salvage"
        (records @ [ "after-crash" ])
        r.Journal.entries)

let test_journal_sealed_corruption_rejected () =
  with_dir @@ fun d ->
  let j = Journal.create ~segment_bytes:16 ~meta:"" (d // "wal") in
  List.iter (Journal.append j) records;
  Journal.close j;
  let seg = d // "wal" // "wal-000001.seg" in
  let ic = open_in_bin seg in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let body = Bytes.of_string body in
  let pos = Bytes.length body - 2 in
  Bytes.set body pos (Char.chr (Char.code (Bytes.get body pos) lxor 0x40));
  let oc = open_out_bin seg in
  output_bytes oc body;
  close_out oc;
  match Journal.replay (d // "wal") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt sealed segment must be rejected"

let test_journal_missing_meta () =
  with_dir @@ fun d ->
  let j = Journal.create ~meta:"" (d // "wal") in
  Journal.close j;
  Sys.remove (d // "wal" // "meta");
  match Journal.replay (d // "wal") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing meta must be rejected"

(* The salvage contract, property-tested: start from any journal (mixed
   sealed/open segments), truncate it anywhere or flip any byte, and
   replay must produce a valid prefix of what was appended or a clean
   [Error] — never an exception, never a record that was not written. *)
let journal_corruption_prop =
  let gen =
    QCheck.Gen.(
      triple
        (list_size (int_range 1 30)
           (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 24)))
        (int_range 0 5000) bool)
  in
  QCheck.Test.make ~count:150
    ~name:"journal: truncate/flip => salvaged prefix or clean reject"
    (QCheck.make gen) (fun (recs, pos_seed, flip) ->
      with_dir @@ fun d ->
      let j = Journal.create ~segment_bytes:64 ~meta:"m" (d // "wal") in
      List.iter (Journal.append j) recs;
      (* leave the journal unsealed: the last segment stays .open, like
         a crash.  (close would seal it; both shapes are exercised
         because some generated cases rotate.) *)
      ignore j;
      let files =
        Sys.readdir (d // "wal") |> Array.to_list
        |> List.filter (fun f ->
               Filename.check_suffix f ".seg"
               || Filename.check_suffix f ".open")
        |> List.sort compare
      in
      let sizes =
        List.map (fun f -> (f, (Unix.stat (d // "wal" // f)).Unix.st_size))
          files
      in
      let total = List.fold_left (fun a (_, s) -> a + s) 0 sizes in
      if total > 0 then begin
        let pos = pos_seed mod total in
        (* locate (file, offset) for the global byte position *)
        let rec locate pos = function
          | [] -> assert false
          | (f, s) :: rest -> if pos < s then (f, pos) else locate (pos - s) rest
        in
        let f, off = locate pos sizes in
        let path = d // "wal" // f in
        if flip then begin
          let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
          let b = Bytes.create 1 in
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1);
          Unix.close fd
        end
        else begin
          (* truncate the journal-as-a-byte-stream: shorten this
             segment and drop every later one *)
          Unix.truncate path off;
          List.iter
            (fun (g, _) -> if g > f then Sys.remove (d // "wal" // g))
            sizes
        end
      end;
      match Journal.replay (d // "wal") with
      | Error _ -> true
      | Ok r -> is_prefix ~of_:recs r.Journal.entries)

(* --- lock ----------------------------------------------------------------- *)

let test_lock_exclusive () =
  with_dir @@ fun d ->
  let p = d // "lock" in
  (match Lock.acquire p with Ok () -> () | Error m -> Alcotest.fail m);
  (match Lock.acquire p with
  | Ok () -> Alcotest.fail "second acquire must fail (same live pid)"
  | Error _ -> ());
  Lock.release p;
  match Lock.acquire p with Ok () -> () | Error m -> Alcotest.fail m

let test_lock_steals_dead_owner () =
  with_dir @@ fun d ->
  let p = d // "lock" in
  (* forge a lockfile owned by a same-host pid that no longer exists *)
  let oc = open_out p in
  Printf.fprintf oc "pid %d\nhost %s\ntime 0.0\n" 999999983
    (Unix.gethostname ());
  close_out oc;
  match Lock.acquire p with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("should steal stale lock: " ^ m)

let test_lock_respects_foreign_fresh () =
  with_dir @@ fun d ->
  let p = d // "lock" in
  let oc = open_out p in
  Printf.fprintf oc "pid 1\nhost not-this-host.example\ntime 0.0\n";
  close_out oc;
  (* fresh mtime, foreign host: cannot probe the pid, must not steal *)
  match Lock.acquire ~stale_after:3600.0 p with
  | Ok () -> Alcotest.fail "must not steal a fresh foreign lock"
  | Error _ -> (
    (* but an aged foreign lock is fair game (negative threshold so the
       fresh mtime counts as aged without sleeping) *)
    match Lock.acquire ~stale_after:(-1.0) p with
    | Ok () -> ()
    | Error m -> Alcotest.fail ("aged foreign lock should be stolen: " ^ m))

(* --- inject --------------------------------------------------------------- *)

let test_inject_nth_once () =
  with_inject "a.site=boom@3" @@ fun () ->
  let fired =
    List.init 6 (fun _ -> Inject.probe "a.site" <> None)
  in
  Alcotest.(check (list bool)) "3rd probe only"
    [ false; false; true; false; false; false ]
    fired;
  Alcotest.(check int) "hits counted" 6 (Inject.hits "a.site")

let test_inject_probability_deterministic () =
  let sample () =
    with_inject "seed=42,p.site=x@p0.5" @@ fun () ->
    List.init 64 (fun _ -> Inject.probe "p.site" <> None)
  in
  let a = sample () and b = sample () in
  Alcotest.(check (list bool)) "same seed, same firing pattern" a b;
  Alcotest.(check bool) "fires sometimes" true (List.mem true a);
  Alcotest.(check bool) "not always" true (List.mem false a);
  let c =
    with_inject "seed=43,p.site=x@p0.5" @@ fun () ->
    List.init 64 (fun _ -> Inject.probe "p.site" <> None)
  in
  Alcotest.(check bool) "different seed, different pattern" true (a <> c)

let test_inject_bad_spec () =
  (match Inject.configure "nonsense" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "clause without '=' must be rejected");
  (match Inject.configure "s=a@pnope" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad probability must be rejected");
  Inject.clear ();
  Alcotest.(check bool) "disarmed after clear" false (Inject.enabled ())

let test_inject_pool_poison () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  (with_inject "pool.worker=poison@1" @@ fun () ->
   match Pool.map p (fun _ x -> x) (Array.init 32 (fun i -> i)) with
   | _ -> Alcotest.fail "poisoned worker must surface"
   | exception Inject.Injected m ->
     Alcotest.(check string) "payload names the site" "pool.worker/poison" m);
  (* the pool survives a poisoned region *)
  let out = Pool.map p (fun _ x -> x + 1) (Array.init 8 (fun i -> i)) in
  Alcotest.(check (array int)) "pool not wedged"
    (Array.init 8 (fun i -> i + 1))
    out

let test_inject_guard_trip () =
  with_inject "guard.tick=trip@2" @@ fun () ->
  let g = Guard.create () in
  Guard.tick g;
  (match Guard.tick g with
  | () -> Alcotest.fail "second tick must trip"
  | exception Guard.Exhausted Guard.Transition_limit -> ()
  | exception Guard.Exhausted _ -> Alcotest.fail "wrong trip reason");
  (* sticky: the guard stays tripped *)
  match Guard.tick g with
  | () -> Alcotest.fail "trip must be sticky"
  | exception Guard.Exhausted _ -> ()

let test_inject_engine_fail_soft () =
  (* random mid-phase guard trips degrade the run, never crash it *)
  with_inject "seed=7,guard.tick=trip@p0.02" @@ fun () ->
  let c = Figures.celem_handshake () in
  let faults = Fault.universe_input_sa c in
  let r = Engine.run c ~faults in
  Alcotest.(check int) "every fault has an outcome" (List.length faults)
    (List.length r.Engine.outcomes)

let test_inject_journal_enospc_and_short () =
  with_dir @@ fun d ->
  (with_inject "journal.append=enospc@2" @@ fun () ->
   let j = Journal.create ~meta:"" (d // "wal") in
   Journal.append j "one";
   (match Journal.append j "two" with
   | () -> Alcotest.fail "enospc must raise"
   | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
   Journal.close j);
  (* a short write leaves a torn frame; resume salvages around it *)
  (with_inject "journal.append=short@2" @@ fun () ->
   match Journal.open_resume (d // "wal") with
   | Error m -> Alcotest.fail m
   | Ok (j, _) -> (
     Journal.append j "three";
     match Journal.append j "four" with
     | () -> Alcotest.fail "short write must raise"
     | exception Inject.Injected _ -> ()));
  Inject.clear ();
  match Journal.open_resume (d // "wal") with
  | Error m -> Alcotest.fail m
  | Ok (j, recovery) ->
    Alcotest.(check (list string)) "torn record discarded, prefix kept"
      [ "one"; "three" ] recovery.Journal.entries;
    Journal.append j "five";
    Journal.close j;
    (match Journal.replay (d // "wal") with
    | Error m -> Alcotest.fail m
    | Ok r ->
      Alcotest.(check (list string)) "clean after salvage"
        [ "one"; "three"; "five" ] r.Journal.entries)

(* --- codec ---------------------------------------------------------------- *)

let roundtrip_status st =
  match Codec.status_of_string (Codec.status_to_string st) with
  | Some st' -> st' = st
  | None -> false

let test_codec_roundtrips () =
  let faults =
    [
      Fault.Input_sa { gate = 3; pin = 1; stuck = true };
      Fault.Input_sa { gate = 0; pin = 0; stuck = false };
      Fault.Output_sa { gate = 12; stuck = false };
    ]
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        ("fault " ^ Codec.fault_to_string f)
        true
        (Codec.fault_of_string (Codec.fault_to_string f) = Some f))
    faults;
  let seq = [ [| true; false |]; [| false; false |] ] in
  let statuses =
    [
      Testset.Undetected;
      Testset.Aborted Guard.Timeout;
      Testset.Aborted Guard.Interrupt;
      Testset.Aborted Guard.State_limit;
      Testset.Detected { sequence = seq; phase = Testset.Random };
      Testset.Detected { sequence = []; phase = Testset.Three_phase };
      Testset.Detected { sequence = seq; phase = Testset.Fault_simulation };
    ]
  in
  List.iter
    (fun st ->
      Alcotest.(check bool)
        ("status " ^ Codec.status_to_string st)
        true (roundtrip_status st))
    statuses;
  Alcotest.(check bool) "garbage rejected" true
    (Codec.status_of_string "D:q:10" = None
    && Codec.fault_of_string "i:x:0:1" = None
    && Codec.entry_of_string "nopipe" = None);
  let payload =
    {
      Codec.faults_searched = 7;
      truncated = Some Guard.State_limit;
      cpu_seconds = 1.25;
      stats_line = "CSSG(x, k=4): 3 stable states";
      outcomes = List.map (fun f -> (f, List.hd statuses)) faults;
    }
  in
  match Codec.result_of_string (Codec.result_to_string payload) with
  | Ok p -> Alcotest.(check bool) "payload roundtrip" true (p = payload)
  | Error m -> Alcotest.fail m

(* --- cache ---------------------------------------------------------------- *)

let test_cache_roundtrip_and_corruption () =
  with_dir @@ fun d ->
  let key = Cache.key_of_parts [ ("a", "1"); ("b", "2") ] in
  Alcotest.(check bool) "key is hex md5" true (String.length key = 32);
  Alcotest.(check bool) "miss before publish" true
    (Cache.lookup ~dir:d key = None);
  Cache.publish ~dir:d key "payload-bytes";
  Alcotest.(check (option string)) "hit" (Some "payload-bytes")
    (Cache.lookup ~dir:d key);
  (* flip one payload byte on disk: CRC turns the hit into a miss *)
  let path = d // "objects" // String.sub key 0 2 // key in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  Alcotest.(check (option string)) "corruption is a miss" None
    (Cache.lookup ~dir:d key)

let test_session_key_sensitivity () =
  let base = Engine.default_config in
  let k ?(netlist = "net") ?(universe = Satg_core.Session.Input) config =
    Session.key_of ~netlist ~universe ~config
  in
  Alcotest.(check string) "deterministic" (k base) (k base);
  Alcotest.(check bool) "netlist matters" true
    (k base <> k ~netlist:"other" base);
  Alcotest.(check bool) "universe matters" true
    (k base <> k ~universe:Satg_core.Session.Both base);
  Alcotest.(check bool) "k matters" true
    (k base <> k { base with Engine.k = Some 9 });
  Alcotest.(check bool) "seed matters" true
    (k base
    <> k
         {
           base with
           Engine.random = { base.Engine.random with Random_tpg.seed = 99 };
         });
  (* every outcome-shaping budget and toggle must split the key: a
     budget-capped (deterministically degraded) result is cacheable,
     so serving it to an uncapped request would be a lie *)
  Alcotest.(check bool) "max-states matters" true
    (k base <> k { base with Engine.max_states = Some 7 });
  Alcotest.(check bool) "max-transitions matters" true
    (k base <> k { base with Engine.max_transitions = Some 7 });
  Alcotest.(check bool) "timeout matters" true
    (k base <> k { base with Engine.timeout = Some 0.5 });
  Alcotest.(check bool) "engine matters" true
    (k base <> k { base with Engine.engine = Engine.Sat });
  Alcotest.(check bool) "collapse matters" true
    (k base <> k { base with Engine.collapse = false });
  Alcotest.(check bool) "random phase toggle matters" true
    (k base <> k { base with Engine.enable_random = false });
  Alcotest.(check string) "jobs does not matter (j-invariant outcomes)"
    (k base)
    (k { base with Engine.jobs = Some 4 });
  Alcotest.(check string) "jobs does not matter under caps either"
    (k { base with Engine.jobs = Some 2; Engine.max_states = Some 7 })
    (k { base with Engine.jobs = Some 8; Engine.max_states = Some 7 })

(* --- session resume ------------------------------------------------------- *)

let outcomes_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         x.Testset.fault = y.Testset.fault && x.Testset.status = y.Testset.status)
       a b

(* The headline property: journal any prefix of a run's commits, then
   resume from it — the rerun must reproduce the uninterrupted result
   fault-for-fault (and the cache must then serve it verbatim). *)
let test_session_resume_equals_uninterrupted () =
  let c = Figures.mutex_latch () in
  let faults = Fault.universe_input_sa c in
  let reference = Engine.run c ~faults in
  let commits = ref [] in
  let r2 =
    Engine.run ~on_outcome:(fun f st -> commits := (f, st) :: !commits) c
      ~faults
  in
  Alcotest.(check bool) "on_outcome does not perturb the run" true
    (outcomes_equal reference.Engine.outcomes r2.Engine.outcomes);
  let commits = List.rev !commits in
  let n = List.length commits in
  Alcotest.(check bool) "commits cover the searched classes" true
    (n = reference.Engine.faults_searched);
  List.iter
    (fun cut ->
      with_dir @@ fun d ->
      let key = Session.key_of ~netlist:"n" ~universe:Satg_core.Session.Input ~config:Engine.default_config in
      (* run 1: journal the first [cut] commits, then "crash" *)
      (let t =
         match Session.start ~dir:d ~key () with
         | Ok t -> t
         | Error m -> Alcotest.fail m
       in
       List.iteri
         (fun i (f, st) -> if i < cut then Session.record t f st)
         commits;
       Session.finish t ~keep:true);
      (* run 2: resume and finish the search *)
      let t =
        match Session.start ~resume:true ~dir:d ~key () with
        | Ok t -> t
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check int)
        (Printf.sprintf "settled after %d commits" cut)
        cut (Session.settled_count t);
      let r =
        Engine.run ~settled:(Session.settled t)
          ~on_outcome:(Session.record t) c ~faults
      in
      Session.finish t ~keep:false;
      Alcotest.(check bool)
        (Printf.sprintf "resume@%d equals uninterrupted" cut)
        true
        (outcomes_equal reference.Engine.outcomes r.Engine.outcomes))
    [ 0; 1; n / 2; max 0 (n - 1); n ]

let test_session_lock_blocks_concurrent () =
  with_dir @@ fun d ->
  let key = String.make 32 'a' in
  let t =
    match Session.start ~dir:d ~key () with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  (match Session.start ~dir:d ~key () with
  | Ok _ -> Alcotest.fail "second live session must be refused"
  | Error _ -> ());
  Session.finish t ~keep:false;
  match Session.start ~dir:d ~key () with
  | Ok t -> Session.finish t ~keep:false
  | Error m -> Alcotest.fail ("after finish: " ^ m)

let test_session_timeout_aborts_not_settled () =
  with_dir @@ fun d ->
  let key = String.make 32 'b' in
  let f0 = Fault.Output_sa { gate = 0; stuck = false } in
  let f1 = Fault.Output_sa { gate = 1; stuck = false } in
  (let t =
     match Session.start ~dir:d ~key () with
     | Ok t -> t
     | Error m -> Alcotest.fail m
   in
   Session.record t f0 (Testset.Aborted Guard.Timeout);
   Session.record t f1 (Testset.Aborted Guard.State_limit);
   Session.finish t ~keep:true);
  let t =
    match Session.start ~resume:true ~dir:d ~key () with
    | Ok t -> t
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check (option bool)) "timeout abort re-searched" None
    (Option.map (fun _ -> true) (Session.settled t f0));
  Alcotest.(check bool) "budget abort stays settled" true
    (Session.settled t f1 = Some (Testset.Aborted Guard.State_limit));
  Session.finish t ~keep:false

let test_session_cacheable () =
  let c = Figures.celem_handshake () in
  let r = Engine.run c ~faults:(Fault.universe_input_sa c) in
  Alcotest.(check bool) "complete run is cacheable" true (Session.cacheable r);
  let doctor status =
    {
      r with
      Engine.outcomes =
        [ { Testset.fault = Fault.Output_sa { gate = 0; stuck = false };
            status } ];
    }
  in
  Alcotest.(check bool) "timeout abort is not" false
    (Session.cacheable (doctor (Testset.Aborted Guard.Timeout)));
  Alcotest.(check bool) "interrupt abort is not" false
    (Session.cacheable (doctor (Testset.Aborted Guard.Interrupt)));
  Alcotest.(check bool) "budget abort is" true
    (Session.cacheable (doctor (Testset.Aborted Guard.Transition_limit)));
  with_dir @@ fun d ->
  let key = Session.key_of ~netlist:"x" ~universe:Satg_core.Session.Input ~config:Engine.default_config in
  Session.publish ~dir:d ~key (Session.payload_of_result r);
  match Session.cached ~dir:d ~key with
  | None -> Alcotest.fail "published result must be served"
  | Some p ->
    Alcotest.(check int) "faults_searched survives" r.Engine.faults_searched
      p.Codec.faults_searched;
    Alcotest.(check int) "all outcomes survive"
      (List.length r.Engine.outcomes)
      (List.length p.Codec.outcomes)

let suites =
  [
    ( "store.crc32",
      [ Alcotest.test_case "known answers" `Quick test_crc_known ] );
    ( "store.journal",
      [
        Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
        Alcotest.test_case "rotation keeps order" `Quick test_journal_rotation;
        Alcotest.test_case "torn tail salvage + resume" `Quick
          test_journal_torn_tail;
        Alcotest.test_case "sealed corruption rejected" `Quick
          test_journal_sealed_corruption_rejected;
        Alcotest.test_case "missing meta rejected" `Quick
          test_journal_missing_meta;
        QCheck_alcotest.to_alcotest journal_corruption_prop;
      ] );
    ( "store.lock",
      [
        Alcotest.test_case "mutual exclusion" `Quick test_lock_exclusive;
        Alcotest.test_case "steals dead same-host owner" `Quick
          test_lock_steals_dead_owner;
        Alcotest.test_case "foreign lock: age decides" `Quick
          test_lock_respects_foreign_fresh;
      ] );
    ( "store.inject",
      [
        Alcotest.test_case "nth-hit fires once" `Quick test_inject_nth_once;
        Alcotest.test_case "probability is seeded" `Quick
          test_inject_probability_deterministic;
        Alcotest.test_case "bad specs rejected" `Quick test_inject_bad_spec;
        Alcotest.test_case "pool worker poison" `Quick test_inject_pool_poison;
        Alcotest.test_case "guard trip mid-phase" `Quick test_inject_guard_trip;
        Alcotest.test_case "engine fail-soft under trips" `Quick
          test_inject_engine_fail_soft;
        Alcotest.test_case "journal enospc + short write" `Quick
          test_inject_journal_enospc_and_short;
      ] );
    ( "store.codec",
      [ Alcotest.test_case "wire roundtrips" `Quick test_codec_roundtrips ] );
    ( "store.cache",
      [
        Alcotest.test_case "publish/lookup/corrupt" `Quick
          test_cache_roundtrip_and_corruption;
        Alcotest.test_case "key sensitivity" `Quick test_session_key_sensitivity;
      ] );
    ( "store.session",
      [
        Alcotest.test_case "resume equals uninterrupted" `Quick
          test_session_resume_equals_uninterrupted;
        Alcotest.test_case "writer lock" `Quick test_session_lock_blocks_concurrent;
        Alcotest.test_case "timeout aborts re-searched" `Quick
          test_session_timeout_aborts_not_settled;
        Alcotest.test_case "cacheable + publish/serve" `Quick
          test_session_cacheable;
      ] );
  ]
