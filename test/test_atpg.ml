(* Tests for the ATPG engine: random TPG, three-phase ATPG, fault
   simulation, the full pipeline, and the synchronous baseline. *)

open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_core
open Satg_bench

let all_faults c = Fault.universe_input_sa c @ Fault.universe_output_sa c

(* Every claimed detection must replay: the sequence is a valid CSSG
   path, and the checker matching the phase confirms the detection
   (random / fault-sim detections come from ternary packs, so the
   scalar ternary check must agree; three-phase detections come from
   the exact-set search, so the exact checker must agree). *)
let check_result_sound r =
  let g = r.Engine.cssg in
  List.iter
    (fun o ->
      match o.Testset.status with
      | Testset.Undetected | Testset.Aborted _ -> ()
      | Testset.Detected { sequence; phase } ->
        Alcotest.(check bool)
          ("valid path for " ^ Fault.to_string r.Engine.circuit o.Testset.fault)
          true
          (Detect.good_trace g sequence <> None);
        let confirmed =
          match phase with
          | Testset.Three_phase -> Detect.check_exact g o.Testset.fault sequence
          | Testset.Random | Testset.Fault_simulation ->
            Detect.check g o.Testset.fault sequence
        in
        Alcotest.(check bool)
          ("replays for " ^ Fault.to_string r.Engine.circuit o.Testset.fault)
          true confirmed)
    r.Engine.outcomes

let test_engine_celem_full_coverage () =
  let c = Figures.celem_handshake () in
  let r = Engine.run c ~faults:(all_faults c) in
  Alcotest.(check int) "all faults detected" (Engine.total r) (Engine.detected r);
  check_result_sound r

let test_engine_fig1a () =
  let c = Figures.fig1a () in
  let r = Engine.run c ~faults:(all_faults c) in
  Alcotest.(check bool) "high coverage" true (Engine.coverage_pct r >= 90.0);
  check_result_sound r

let test_engine_mutex () =
  let c = Figures.mutex_latch () in
  let r = Engine.run c ~faults:(all_faults c) in
  Alcotest.(check bool) "decent coverage" true (Engine.coverage_pct r >= 75.0);
  check_result_sound r

let test_engine_oscillator_untestable () =
  (* fig1b's CSSG has no valid vectors at all: nothing can be detected
     synchronously except faults visible in the reset state itself. *)
  let c = Figures.fig1b () in
  let d = Option.get (Circuit.find_node c "d") in
  let faults =
    [
      Fault.Output_sa { gate = d; stuck = false };  (* visible at reset: d=1 *)
      Fault.Output_sa { gate = d; stuck = true };  (* invisible: d already 1 *)
    ]
  in
  let r = Engine.run c ~faults in
  Alcotest.(check int) "exactly one detected" 1 (Engine.detected r);
  check_result_sound r;
  match (List.hd r.Engine.outcomes).Testset.status with
  | Testset.Detected { sequence; _ } ->
    Alcotest.(check int) "empty sequence (reset observation)" 0
      (List.length sequence)
  | Testset.Undetected | Testset.Aborted _ ->
    Alcotest.fail "d/sa0 should be caught at reset"

let test_random_tpg_alone () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let detected, remaining = Random_tpg.run g ~faults:(all_faults c) in
  Alcotest.(check int) "partition"
    (List.length (all_faults c))
    (List.length detected + List.length remaining);
  Alcotest.(check bool) "random finds a lot" true
    (List.length detected >= List.length (all_faults c) / 2);
  (* Each random detection must replay. *)
  List.iter
    (fun (f, seq) ->
      Alcotest.(check bool) "random replays" true (Detect.check g f seq))
    detected

let test_random_deterministic_seed () =
  let c = Figures.mutex_latch () in
  let g = Explicit.build c in
  let run () =
    let detected, _ = Random_tpg.run g ~faults:(all_faults c) in
    List.map (fun (f, _) -> Fault.to_string c f) detected
  in
  Alcotest.(check (list string)) "same seed, same result" (run ()) (run ())

let test_three_phase_needs_justification () =
  (* C-element output stuck-at-0: the fault is excited only in states
     with c = 1, which need a (1,1) vector to reach — justification must
     produce at least one vector. *)
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let cel = Option.get (Circuit.find_node c "c") in
  let f = Fault.Output_sa { gate = cel; stuck = false } in
  match Three_phase.find_test g f with
  | Some seq ->
    Alcotest.(check bool) "nonempty" true (List.length seq >= 1);
    Alcotest.(check bool) "replays" true (Detect.check g f seq)
  | None -> Alcotest.fail "c/sa0 must be testable"

let test_three_phase_undetectable () =
  (* fig1b d/sa1: the only output already rests at 1 and no vector is
     valid, so no synchronous test exists. *)
  let c = Figures.fig1b () in
  let g = Explicit.build c in
  let d = Option.get (Circuit.find_node c "d") in
  Alcotest.(check bool) "no test" true
    (Three_phase.find_test g (Fault.Output_sa { gate = d; stuck = true }) = None)

let test_fault_sim_sweep () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let cel = Option.get (Circuit.find_node c "c") in
  let f = Fault.Output_sa { gate = cel; stuck = false } in
  let seq = Option.get (Three_phase.find_test g f) in
  (* The same sequence covers several other faults. *)
  let detected, remaining = Detect.sweep g seq (all_faults c) in
  Alcotest.(check bool) "covers more than one" true (List.length detected > 1);
  Alcotest.(check int) "partition"
    (List.length (all_faults c))
    (List.length detected + List.length remaining);
  (* Scalar and parallel detection agree fault by fault. *)
  List.iter
    (fun f ->
      Alcotest.(check bool)
        ("agree " ^ Fault.to_string c f)
        (List.mem f detected) (Detect.check g f seq))
    (all_faults c)

(* A fault list far beyond one 62-bit word sweeps in a single pass:
   one multi-word pack, no batching, no cap — and the partition still
   agrees with the scalar checker fault by fault. *)
let test_big_pack_sweep () =
  let b = Circuit.Builder.create "wide" in
  let a = Circuit.Builder.add_input b "a" in
  let bb = Circuit.Builder.add_input b "b" in
  let n_chain = 60 in
  let last = ref [ a; bb ] in
  let gates =
    List.init n_chain (fun i ->
        let src = List.nth !last (i mod List.length !last) in
        let func = if i mod 2 = 0 then Gatefunc.Buf else Gatefunc.Not in
        let g =
          Circuit.Builder.add_gate b ~name:(Printf.sprintf "g%d" i) func [ src ]
        in
        last := [ g ];
        g)
  in
  List.iteri
    (fun i g -> if i >= n_chain - 2 then Circuit.Builder.mark_output b g)
    gates;
  let c = Circuit.Builder.finalize b in
  let n = Circuit.n_nodes c in
  let zero = Array.make n false in
  let reset =
    match Satg_sim.Async_sim.settle c ~max_steps:(4 * n) zero with
    | Some s -> s
    | None -> Alcotest.fail "chain circuit must settle"
  in
  let c = Circuit.with_initial c reset in
  let faults = all_faults c in
  Alcotest.(check bool) "universe is big" true (List.length faults >= 200);
  (* direct pack creation: no 62-fault ceiling *)
  let pack =
    Satg_sim.Parallel_sim.create c (Array.of_list faults) ~reset
  in
  Alcotest.(check bool) "several words" true
    (Satg_sim.Parallel_sim.n_words pack >= 4);
  Alcotest.(check int) "all machines live" (List.length faults)
    (Satg_sim.Parallel_sim.n_live pack);
  let g = Explicit.build c in
  let seq = [ [| true; true |]; [| false; false |]; [| true; false |] ] in
  Alcotest.(check bool) "valid path" true (Detect.good_trace g seq <> None);
  let detected, remaining = Detect.sweep g seq faults in
  Alcotest.(check int) "partition" (List.length faults)
    (List.length detected + List.length remaining);
  Alcotest.(check bool) "detects plenty" true (List.length detected > 62);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        ("agree " ^ Fault.to_string c f)
        (Detect.check g f seq) (List.mem f detected))
    faults

let test_engine_phases_accounted () =
  let c = Figures.celem_handshake () in
  let r = Engine.run c ~faults:(all_faults c) in
  let rnd = Engine.detected_by r Testset.Random in
  let tph = Engine.detected_by r Testset.Three_phase in
  let sim = Engine.detected_by r Testset.Fault_simulation in
  Alcotest.(check int) "phases partition detections" (Engine.detected r)
    (rnd + tph + sim);
  (* With random enabled and the default walk budget, random should do
     the bulk of the work on this easy circuit. *)
  Alcotest.(check bool) "random carries weight" true (rnd > 0)

let test_engine_no_random () =
  let c = Figures.celem_handshake () in
  let config = { Engine.default_config with enable_random = false } in
  let r = Engine.run ~config c ~faults:(all_faults c) in
  Alcotest.(check int) "random credited nothing" 0
    (Engine.detected_by r Testset.Random);
  Alcotest.(check int) "still full coverage" (Engine.total r) (Engine.detected r);
  check_result_sound r

let test_engine_reuses_cssg () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let r = Engine.run ~cssg:g c ~faults:(Fault.universe_output_sa c) in
  Alcotest.(check bool) "same graph" true (r.Engine.cssg == g)

(* --- baseline -------------------------------------------------------------- *)

let test_baseline_celem () =
  (* On a well-behaved circuit the baseline works fine: claims are
     mostly true. *)
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let r = Baseline.run c ~cssg:g ~faults:(Fault.universe_output_sa c) in
  Alcotest.(check bool) "claims something" true (Baseline.claimed r > 0);
  Alcotest.(check bool) "monotone: claimed >= validated" true
    (Baseline.claimed r >= Baseline.validated r);
  Alcotest.(check bool) "monotone: validated >= 0" true (Baseline.validated r >= 0)

let test_baseline_optimism_fig1a () =
  (* fig1a is the non-confluence showcase: the synchronous model never
     sees the pulse race, so the baseline claims tests that the exact
     model rejects, and unit-delay validation cannot catch them all
     (it sees one interleaving only). *)
  let c = Figures.fig1a () in
  let g = Explicit.build c in
  let r = Baseline.run c ~cssg:g ~faults:(all_faults c) in
  Alcotest.(check bool) "claimed > truly valid (optimism)" true
    (Baseline.claimed r > Baseline.truly_detected r);
  Alcotest.(check bool) "claimed >= validated" true
    (Baseline.claimed r >= Baseline.validated r)

let suites =
  [
    ( "atpg.engine",
      [
        Alcotest.test_case "celem full coverage" `Quick test_engine_celem_full_coverage;
        Alcotest.test_case "fig1a" `Quick test_engine_fig1a;
        Alcotest.test_case "mutex" `Quick test_engine_mutex;
        Alcotest.test_case "oscillator" `Quick test_engine_oscillator_untestable;
        Alcotest.test_case "phase accounting" `Quick test_engine_phases_accounted;
        Alcotest.test_case "no random" `Quick test_engine_no_random;
        Alcotest.test_case "cssg reuse" `Quick test_engine_reuses_cssg;
      ] );
    ( "atpg.random",
      [
        Alcotest.test_case "random alone" `Quick test_random_tpg_alone;
        Alcotest.test_case "deterministic seed" `Quick test_random_deterministic_seed;
      ] );
    ( "atpg.three_phase",
      [
        Alcotest.test_case "needs justification" `Quick test_three_phase_needs_justification;
        Alcotest.test_case "undetectable" `Quick test_three_phase_undetectable;
      ] );
    ( "atpg.fault_sim",
      [
        Alcotest.test_case "sweep" `Quick test_fault_sim_sweep;
        Alcotest.test_case "big pack one-pass sweep" `Quick test_big_pack_sweep;
      ] );
    ( "atpg.baseline",
      [
        Alcotest.test_case "celem" `Quick test_baseline_celem;
        Alcotest.test_case "optimism on fig1a" `Quick test_baseline_optimism_fig1a;
      ] );
  ]
