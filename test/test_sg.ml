(* Tests for the state-graph library: explicit CSSG construction, the
   symbolic (BDD) engine, and their exact agreement. *)

open Satg_circuit
open Satg_sg
open Satg_bench

let fixtures =
  [ Figures.fig1a; Figures.fig1b; Figures.celem_handshake; Figures.mutex_latch ]

(* Canonical, comparable representation of a CSSG: sorted states and
   sorted (src-state, vector, dst-state) triples, all as strings. *)
let canonical g =
  let c = Cssg.circuit g in
  let states =
    List.init (Cssg.n_states g) (fun i ->
        Circuit.state_to_string c (Cssg.state g i))
    |> List.sort Stdlib.compare
  in
  let edges =
    List.concat
      (List.init (Cssg.n_states g) (fun i ->
           List.map
             (fun e ->
               ( Circuit.state_to_string c (Cssg.state g i),
                 String.init
                   (Array.length e.Cssg.vector)
                   (fun j -> if e.Cssg.vector.(j) then '1' else '0'),
                 Circuit.state_to_string c (Cssg.state g e.Cssg.target) ))
             (Cssg.successors g i)))
    |> List.sort Stdlib.compare
  in
  (states, edges)

let test_explicit_celem () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  (* Stable states of (a, b, c): c = 1 forces... every (a,b,c) with the
     C-element stable: (0,0,0) (0,1,0) (1,0,0) (1,1,1) (0,1,1) (1,0,1)
     with env = buffer: 6 states, all reachable. *)
  Alcotest.(check int) "6 states" 6 (Cssg.n_states g);
  (* 3 valid vectors from the extreme states (0,0,c=0) and (1,1,c=1);
     only 2 from the four hold states: toggling both inputs at once
     races the C-element against the second buffer. *)
  Alcotest.(check int) "14 edges" 14 (Cssg.n_edges g);
  List.iter
    (fun i ->
      Alcotest.(check bool) "deterministic" true
        (Cssg.deterministically_reachable g i))
    (List.init (Cssg.n_states g) Fun.id)

let test_explicit_fig1a () =
  let c = Figures.fig1a () in
  let g = Explicit.build c in
  let reset = List.hd (Cssg.initial g) in
  (* (1,0) races: no valid edge with that vector. *)
  Alcotest.(check bool) "no racing edge" true
    (Cssg.apply g reset [| true; false |] = None);
  (* (1,1) settles: a valid edge. *)
  (match Cssg.apply g reset [| true; true |] with
  | Some j ->
    let y = Option.get (Circuit.find_node c "y") in
    Alcotest.(check bool) "y set after 11" true (Cssg.state g j).(y)
  | None -> Alcotest.fail "11 should be a valid vector");
  (* The non-confluent outcomes are still nodes of the graph (paper
     figure 2 keeps s1), but not deterministically reachable unless some
     valid path leads there. *)
  Alcotest.(check bool) "has extra nodes" true (Cssg.n_states g > 2)

let test_explicit_fig1b_no_edges () =
  let c = Figures.fig1b () in
  let g = Explicit.build c in
  Alcotest.(check int) "single state" 1 (Cssg.n_states g);
  Alcotest.(check int) "no valid vectors at all" 0 (Cssg.n_edges g)

let test_explicit_mutex () =
  let c = Figures.mutex_latch () in
  let g = Explicit.build c in
  let reset = List.hd (Cssg.initial g) in
  (* (1,1) is valid from reset (QB is held at 0 by S). *)
  (match Cssg.apply g reset [| true; true |] with
  | Some both ->
    (* ... but releasing both requests at once races the latch. *)
    Alcotest.(check bool) "11 -> 00 invalid" true
      (Cssg.apply g both [| false; false |] = None)
  | None -> Alcotest.fail "11 should be valid from reset");
  (match Cssg.apply g reset [| true; false |] with
  | Some j ->
    let q = Option.get (Circuit.find_node c "Q") in
    Alcotest.(check bool) "request flips Q" false (Cssg.state g j).(q)
  | None -> Alcotest.fail "10 should be valid from reset")

let test_smaller_k_fewer_edges () =
  (* k only matters under pure exploration: the hybrid ternary shortcut
     certifies eventual settling regardless of the budget. *)
  let c = Figures.celem_handshake () in
  let big = Explicit.build ~exploration:`Pure ~k:(Structure.default_k c) c in
  let small = Explicit.build ~exploration:`Pure ~k:1 c in
  Alcotest.(check bool) "k=1 loses edges" true
    (Cssg.n_edges small < Cssg.n_edges big);
  (* k=1 keeps single-buffer-flip transitions that settle in one step. *)
  Alcotest.(check bool) "k=1 keeps something" true (Cssg.n_edges small > 0)

let test_justify_explicit () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let cel = Option.get (Circuit.find_node c "c") in
  (match Cssg.justify g ~target:(fun i -> (Cssg.state g i).(cel)) () with
  | Some (vectors, goal) ->
    Alcotest.(check int) "one vector suffices" 1 (List.length vectors);
    Alcotest.(check bool) "goal has c=1" true (Cssg.state g goal).(cel);
    Alcotest.(check (array bool)) "the vector is 11" [| true; true |]
      (List.hd vectors)
  | None -> Alcotest.fail "c=1 should be justifiable");
  (* Unreachable target *)
  Alcotest.(check bool) "impossible target" true
    (Cssg.justify g ~target:(fun _ -> false) () = None)

let test_justify_already_satisfied () =
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  match Cssg.justify g ~target:(fun i -> List.mem i (Cssg.initial g)) () with
  | Some ([], _) -> ()
  | Some (_ :: _, _) -> Alcotest.fail "expected empty justification"
  | None -> Alcotest.fail "expected hit"

let test_symbolic_matches_explicit () =
  List.iter
    (fun make ->
      let c = make () in
      let k = Structure.default_k c in
      (* Both exploration strategies must agree with the symbolic engine. *)
      let exp = Explicit.build ~exploration:`Pure ~k c in
      let hyb = Explicit.build ~exploration:`Hybrid ~k c in
      let sym = Symbolic.build ~k c in
      let se, ee = canonical exp and sh, eh = canonical hyb in
      Alcotest.(check (list string)) (Circuit.name c ^ ": hybrid states") se sh;
      Alcotest.(check int) (Circuit.name c ^ ": hybrid edges")
        (List.length ee) (List.length eh);
      Alcotest.(check int)
        (Circuit.name c ^ ": reachable count")
        (Cssg.n_states exp) (Symbolic.n_reachable sym);
      let gs = Symbolic.to_cssg sym in
      let s1, e1 = canonical exp and s2, e2 = canonical gs in
      Alcotest.(check (list string)) (Circuit.name c ^ ": states") s1 s2;
      List.iter2
        (fun (a, v, b) (a', v', b') ->
          Alcotest.(check (triple string string string))
            (Circuit.name c ^ ": edge")
            (a, v, b) (a', v', b'))
        e1 e2;
      Alcotest.(check int)
        (Circuit.name c ^ ": edge count")
        (List.length e1) (List.length e2))
    fixtures

let test_symbolic_justify () =
  let c = Figures.celem_handshake () in
  let sym = Symbolic.build c in
  let m = Symbolic.man sym in
  let cel = Option.get (Circuit.find_node c "c") in
  (* Target: states with the C-element output high. *)
  let target =
    Satg_bdd.Bdd.and_ m (Symbolic.reachable sym)
      (Satg_bdd.Bdd.var m (3 * cel))
  in
  (match Symbolic.justify sym ~target with
  | Some (vectors, goal) ->
    Alcotest.(check int) "one vector" 1 (List.length vectors);
    Alcotest.(check bool) "goal ok" true goal.(cel)
  | None -> Alcotest.fail "should justify");
  (* Unreachable target: c high with both inputs low is not stable. *)
  let bad =
    Satg_bdd.Bdd.and_list m
      [
        Symbolic.reachable sym;
        Satg_bdd.Bdd.var m (3 * cel);
        Satg_bdd.Bdd.nvar m (3 * (Circuit.inputs c).(0));
        Satg_bdd.Bdd.nvar m (3 * (Circuit.inputs c).(1));
      ]
  in
  Alcotest.(check bool) "unstable target unreachable" true
    (Symbolic.justify sym ~target:bad = None)

let test_symbolic_justify_multi_step () =
  (* mutex: reach the state (R,S)=(1,1), Q=QB=0 — needs at least one
     intermediate hop?  From reset, 11 is direct; instead target
     Q=0,QB=1 with R=0: requires 10 then 00?  From (1,0,Q=0,QB=1),
     applying (0,0) keeps the latch: Q=NOR(0,1)=0, QB=NOR(0,0)=1
     stable, so a 2-step justification exists. *)
  let c = Figures.mutex_latch () in
  let sym = Symbolic.build c in
  let m = Symbolic.man sym in
  let q = Option.get (Circuit.find_node c "Q") in
  let qb = Option.get (Circuit.find_node c "QB") in
  let r_env = (Circuit.inputs c).(0) and s_env = (Circuit.inputs c).(1) in
  let target =
    Satg_bdd.Bdd.and_list m
      [
        Symbolic.reachable sym;
        Satg_bdd.Bdd.nvar m (3 * q);
        Satg_bdd.Bdd.var m (3 * qb);
        Satg_bdd.Bdd.nvar m (3 * r_env);
        Satg_bdd.Bdd.nvar m (3 * s_env);
      ]
  in
  match Symbolic.justify sym ~target with
  | Some (vectors, goal) ->
    Alcotest.(check int) "two hops" 2 (List.length vectors);
    Alcotest.(check bool) "Q low" false goal.(q);
    Alcotest.(check bool) "QB high" true goal.(qb);
    (* Replay the sequence on the explicit graph to double-check. *)
    let g = Explicit.build c in
    let final =
      List.fold_left
        (fun i v ->
          match Cssg.apply g i v with
          | Some j -> j
          | None -> Alcotest.fail "symbolic sequence invalid on explicit graph")
        (List.hd (Cssg.initial g))
        vectors
    in
    Alcotest.(check string) "same final state"
      (Circuit.state_to_string c goal)
      (Circuit.state_to_string c (Cssg.state g final))
  | None -> Alcotest.fail "should justify in two steps"

let test_sift_order () =
  (* Sifting must never make the retained artefacts bigger, and the
     sifted order must reproduce the same CSSG. *)
  let c = Figures.mutex_latch () in
  let base = Symbolic.build c in
  let order = Symbolic.sift_order base in
  let sifted = Symbolic.build ~node_order:order c in
  Alcotest.(check bool) "no growth" true
    (Symbolic.live_nodes sifted <= Symbolic.live_nodes base);
  let a = canonical (Symbolic.to_cssg base) in
  let b = canonical (Symbolic.to_cssg sifted) in
  Alcotest.(check bool) "same graph" true (a = b)

(* Reordering, the monolithic reference style and extreme cluster caps
   are all representation knobs: none may change the computed graph. *)
let test_symbolic_variants_agree () =
  List.iter
    (fun make ->
      let c = make () in
      let base = Symbolic.build c in
      let reference = canonical (Symbolic.to_cssg base) in
      let check name sym =
        Alcotest.(check int)
          (Circuit.name c ^ ": " ^ name ^ " reachable")
          (Symbolic.n_reachable base) (Symbolic.n_reachable sym);
        Alcotest.(check bool)
          (Circuit.name c ^ ": " ^ name ^ " graph")
          true
          (canonical (Symbolic.to_cssg sym) = reference)
      in
      check "sift" (Symbolic.build ~reorder:Satg_bdd.Bdd.Reorder_sift c);
      check "monolithic" (Symbolic.build ~style:`Monolithic c);
      check "cluster cap 1" (Symbolic.build ~cluster_cap:1 c);
      (* forcing a sifting pass on the live manager must not disturb
         the already-built artefacts: handles survive reordering *)
      Satg_bdd.Bdd.sift (Symbolic.man base);
      Alcotest.(check bool)
        (Circuit.name c ^ ": post-sift enumeration")
        true
        (canonical (Symbolic.to_cssg base) = reference))
    fixtures

(* A guard trip with reordering enabled must fail soft: the build
   returns a truncated-but-sound graph (a subgraph of the full one)
   and every query still works — the salvage path detaches the guard
   AND freezes the order, so no unguarded sifting pass can run. *)
let test_symbolic_sift_fail_soft () =
  let c = Figures.celem_handshake () in
  let guard = Satg_guard.Guard.create ~max_transitions:2 () in
  let sym =
    Symbolic.build ~reorder:Satg_bdd.Bdd.Reorder_sift ~guard c
  in
  Alcotest.(check bool) "truncated" true (Symbolic.truncated sym <> None);
  let partial = Symbolic.to_cssg sym in
  Alcotest.(check bool) "tag carries over" true
    (Cssg.truncated partial <> None);
  Alcotest.(check bool) "at least the reset state" true
    (Cssg.n_states partial >= 1);
  let full = Explicit.build c in
  let states g =
    List.init (Cssg.n_states g) (fun i ->
        Circuit.state_to_string (Cssg.circuit g) (Cssg.state g i))
  in
  let full_states = states full in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("sound state " ^ s) true
        (List.mem s full_states))
    (states partial)

let test_bdd_transfer_roundtrip () =
  (* Transfer to a manager with a reversed order and back preserves the
     function. *)
  let open Satg_bdd in
  let src = Bdd.create ~nvars:6 () in
  let f =
    Bdd.or_ src
      (Bdd.and_ src (Bdd.var src 0) (Bdd.var src 3))
      (Bdd.xor_ src (Bdd.var src 1) (Bdd.var src 5))
  in
  let dst = Bdd.create ~nvars:6 () in
  let rev v = 5 - v in
  let g = Bdd.transfer ~src ~dst rev f in
  let back = Bdd.create ~nvars:6 () in
  let h = Bdd.transfer ~src:dst ~dst:back rev g in
  (* compare by exhaustive evaluation *)
  for mask = 0 to 63 do
    let assign v = mask land (1 lsl v) <> 0 in
    let assign_rev v = assign (rev v) in
    Alcotest.(check bool) "same semantics (roundtrip)"
      (Bdd.eval src f assign) (Bdd.eval back h assign);
    Alcotest.(check bool) "renamed semantics"
      (Bdd.eval src f assign) (Bdd.eval dst g assign_rev)
  done

let suites =
  [
    ( "sg.explicit",
      [
        Alcotest.test_case "celem graph" `Quick test_explicit_celem;
        Alcotest.test_case "fig1a pruning" `Quick test_explicit_fig1a;
        Alcotest.test_case "fig1b no edges" `Quick test_explicit_fig1b_no_edges;
        Alcotest.test_case "mutex release race" `Quick test_explicit_mutex;
        Alcotest.test_case "k sensitivity" `Quick test_smaller_k_fewer_edges;
        Alcotest.test_case "justify" `Quick test_justify_explicit;
        Alcotest.test_case "justify trivial" `Quick test_justify_already_satisfied;
      ] );
    ( "sg.symbolic",
      [
        Alcotest.test_case "matches explicit" `Slow test_symbolic_matches_explicit;
        Alcotest.test_case "justify" `Quick test_symbolic_justify;
        Alcotest.test_case "justify multi-step" `Quick test_symbolic_justify_multi_step;
        Alcotest.test_case "sift order" `Slow test_sift_order;
        Alcotest.test_case "variants agree" `Slow test_symbolic_variants_agree;
        Alcotest.test_case "sift fail-soft" `Quick test_symbolic_sift_fail_soft;
        Alcotest.test_case "bdd transfer" `Quick test_bdd_transfer_roundtrip;
      ] );
  ]
