(* Domain-pool contract tests: deterministic in-order [map] results,
   min-index exception funneling, the jobs=1 inline anchor, pool reuse
   across regions, and the guard family's cross-domain cancel token. *)

open Satg_guard
open Satg_pool

let test_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let input = Array.init 100 (fun i -> i) in
      let out = Pool.map ~chunk:3 p (fun _wid x -> x * x) input in
      Alcotest.(check (array int))
        "squares in input order"
        (Array.map (fun x -> x * x) input)
        out)

let test_map_worker_ids () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check int) "clamped width" 4 (Pool.jobs p);
      let wids = Pool.map p (fun wid _ -> wid) (Array.make 64 ()) in
      Array.iter
        (fun wid ->
          Alcotest.(check bool) "worker id in range" true (wid >= 0 && wid < 4))
        wids)

let test_exception_min_index () =
  Pool.with_pool ~jobs:4 (fun p ->
      let input = Array.init 50 (fun i -> i) in
      match
        Pool.map p
          (fun _ x -> if x mod 7 = 3 then failwith (string_of_int x) else x)
          input
      with
      | _ -> Alcotest.fail "map should re-raise"
      | exception Failure m ->
        (* items 3, 10, 17, ... all fail; the lowest index wins,
           mirroring where a sequential loop would have stopped *)
        Alcotest.(check string) "lowest failing index" "3" m)

let test_jobs_one_inline () =
  Pool.with_pool ~jobs:1 (fun p ->
      let self = Domain.self () in
      let out =
        Pool.map p
          (fun wid x ->
            Alcotest.(check bool) "runs on the caller" true
              (Domain.self () = self);
            Alcotest.(check int) "as worker 0" 0 wid;
            x + 1)
          (Array.init 10 (fun i -> i))
      in
      Alcotest.(check (array int))
        "results" (Array.init 10 (fun i -> i + 1)) out)

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun p ->
      for round = 1 to 5 do
        let out = Pool.map p (fun _ x -> x * round) (Array.init 20 (fun i -> i)) in
        Alcotest.(check (array int))
          "round results"
          (Array.init 20 (fun i -> i * round))
          out
      done)

let test_map_after_failure () =
  (* a region that raised must not wedge the pool *)
  Pool.with_pool ~jobs:4 (fun p ->
      (try ignore (Pool.map p (fun _ _ -> failwith "boom") (Array.make 8 ()))
       with Failure _ -> ());
      let out = Pool.map p (fun _ x -> x + 1) (Array.init 8 (fun i -> i)) in
      Alcotest.(check (array int))
        "pool still serves" (Array.init 8 (fun i -> i + 1)) out)

let test_with_pool_returns () =
  Alcotest.(check int) "with_pool value" 42 (Pool.with_pool ~jobs:2 (fun _ -> 42))

(* --- the guard family's cross-domain cancel token -------------------------- *)

let test_cancel_poisons_subs () =
  (* a limit-free guard never probes (and so never cancels): the
     family needs a live deadline for the token to matter *)
  let g = Guard.create ~timeout:3600.0 () in
  Guard.cancel g Guard.Timeout;
  let s = Guard.sub g in
  (match Guard.check_time s with
  | () -> Alcotest.fail "sub of a cancelled family must trip"
  | exception Guard.Exhausted Guard.Timeout -> ());
  Alcotest.(check bool) "reason recorded" true
    (Guard.tripped s = Some Guard.Timeout)

let test_cancel_across_domains () =
  (* worker 1 cancels the family; the caller's own sub-guard observes
     the trip after the barrier *)
  let g = Guard.create ~timeout:3600.0 () in
  Pool.with_pool ~jobs:4 (fun p ->
      let _ =
        Pool.map p
          (fun _ i -> if i = 0 then Guard.cancel g Guard.Timeout)
          (Array.init 16 (fun i -> i))
      in
      let s = Guard.sub g in
      match Guard.tick s with
      | () -> Alcotest.fail "cancel must cross the domain boundary"
      | exception Guard.Exhausted Guard.Timeout -> ())

let test_sub_trip_stays_local () =
  (* a budget trip on one branch never cancels its siblings *)
  let g = Guard.create () in
  let a = Guard.sub ~max_transitions:1 g in
  (try
     Guard.spend_transition a;
     Guard.spend_transition a
   with Guard.Exhausted Guard.Transition_limit -> ());
  Alcotest.(check bool) "branch tripped" true
    (Guard.tripped a = Some Guard.Transition_limit);
  let b = Guard.sub ~max_transitions:1 g in
  Guard.spend_transition b;
  Alcotest.(check bool) "sibling unaffected" true (Guard.tripped b = None);
  Guard.check_time g

let suites =
  [
    ( "pool.map",
      [
        Alcotest.test_case "in-order results" `Quick test_map_order;
        Alcotest.test_case "worker ids in range" `Quick test_map_worker_ids;
        Alcotest.test_case "min-index exception" `Quick test_exception_min_index;
        Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_inline;
        Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
        Alcotest.test_case "map after failure" `Quick test_map_after_failure;
        Alcotest.test_case "with_pool value" `Quick test_with_pool_returns;
      ] );
    ( "pool.guard-cancel",
      [
        Alcotest.test_case "cancel poisons subs" `Quick test_cancel_poisons_subs;
        Alcotest.test_case "cancel crosses domains" `Quick
          test_cancel_across_domains;
        Alcotest.test_case "sub trip stays local" `Quick
          test_sub_trip_stays_local;
      ] );
  ]
