(* Cross-engine conformance over the generated benchmark families: the
   explicit BFS, BDD and SAT deterministic engines must report the same
   detected/undetected fault partition on every family instance, the
   domain-pool pipeline must be invariant in -j, the incremental
   (one-solver, activation-literal) SAT mode must partition exactly
   like the throwaway-solver-per-fault mode while keeping the instance
   count at one per worker, and bit-parallel fault simulation must
   agree lane-for-lane with scalar ternary simulation. *)

open Satg_logic
open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_core
open Satg_stg
open Satg_concepts
module Sat = Satg_sat.Sat

(* The conformance ladder: every family at a CI-tractable size, both
   synthesis styles where they differ. *)
let instances =
  [
    ("pipeline", 2, `Complex);
    ("pipeline", 3, `Complex);
    ("arbiter", 2, `Complex);
    ("ring", 4, `Complex);
    ("fifo", 3, `Complex);
    ("fifo", 2, `Redundant);
    ("latch", 2, `Redundant);
  ]

let build (fname, n, style) =
  let stg =
    match Families.generate fname ~n with
    | Ok stg -> stg
    | Error m -> Alcotest.failf "%s n=%d: %s" fname n m
  in
  let circuit =
    match
      match style with
      | `Complex -> Synth.complex_gate stg
      | `Redundant -> Synth.decomposed ~redundant:true stg
    with
    | Ok c -> c
    | Error m -> Alcotest.failf "%s n=%d: synth: %s" fname n m
  in
  (Printf.sprintf "%s%d/%s" fname n
     (match style with `Complex -> "cg" | `Redundant -> "hf"),
   circuit)

let deterministic_config engine =
  { Engine.default_config with engine; enable_random = false }

(* The conformance view of a run: who was detected.  Sequences may
   legitimately differ between engines; the partition may not. *)
let partition (r : Engine.result) =
  List.map
    (fun o ->
      ( Fault.to_string r.Engine.circuit o.Testset.fault,
        match o.Testset.status with
        | Testset.Detected _ -> "detected"
        | Testset.Undetected -> "undetected"
        | Testset.Aborted _ -> "aborted" ))
    r.Engine.outcomes

let test_engines_agree () =
  List.iter
    (fun inst ->
      let nm, c = build inst in
      let faults = Fault.universe_input_sa c in
      let run engine =
        Engine.run ~config:(deterministic_config engine) c ~faults
      in
      let exp = run Engine.Explicit in
      let bdd = run Engine.Bdd in
      let sat = run Engine.Sat in
      let bdd_sift =
        Engine.run
          ~config:
            {
              (deterministic_config Engine.Bdd) with
              Engine.reorder = Satg_bdd.Bdd.Reorder_sift;
            }
          c ~faults
      in
      let bdd_cap1 =
        Engine.run
          ~config:
            { (deterministic_config Engine.Bdd) with Engine.cluster_cap = 1 }
          c ~faults
      in
      Alcotest.(check (list (pair string string)))
        (nm ^ ": explicit = bdd") (partition exp) (partition bdd);
      Alcotest.(check (list (pair string string)))
        (nm ^ ": explicit = bdd+sift") (partition exp) (partition bdd_sift);
      Alcotest.(check (list (pair string string)))
        (nm ^ ": explicit = bdd cluster-cap 1") (partition exp)
        (partition bdd_cap1);
      Alcotest.(check (list (pair string string)))
        (nm ^ ": explicit = sat") (partition exp) (partition sat);
      Alcotest.(check bool) (nm ^ ": complete run") false (Engine.partial exp))
    instances

let test_jobs_determinism () =
  (* The full production pipeline (random phase on) at -j1 and -j4:
     identical outcome lists, sequences included, fault by fault. *)
  List.iter
    (fun inst ->
      let nm, c = build inst in
      let faults = Fault.universe_input_sa c in
      let run jobs =
        Engine.run ~config:{ Engine.default_config with jobs } c ~faults
      in
      let r1 = run (Some 1) and r4 = run (Some 4) in
      Alcotest.(check bool)
        (nm ^ ": -j1 = -j4 outcomes") true
        (r1.Engine.outcomes = r4.Engine.outcomes);
      let rs = run None in
      Alcotest.(check bool)
        (nm ^ ": sequential = pooled") true
        (rs.Engine.outcomes = r1.Engine.outcomes))
    instances

let test_sat_searches_for_real () =
  (* Acceptance gate: at least one CI-tractable generated instance
     forces the CDCL engine into genuine search (nonzero decisions)
     and exercises cross-fault clause retention (nonzero reused-shared
     hits on the long-lived instance) — while still agreeing with the
     explicit engine.  Conflicts are NOT required: the time-frame
     encoding is propagation-complete on these families, so the shared
     instance resolves every query by unit propagation alone (see
     docs/PERF.md). *)
  let hits =
    List.filter_map
      (fun inst ->
        let nm, c = build inst in
        let faults = Fault.universe_input_sa c in
        let sat = Engine.run ~config:(deterministic_config Engine.Sat) c ~faults in
        match sat.Engine.sat_stats with
        | None -> Alcotest.failf "%s: sat engine reported no stats" nm
        | Some s ->
          let exp =
            Engine.run ~config:(deterministic_config Engine.Explicit) c ~faults
          in
          Alcotest.(check (list (pair string string)))
            (nm ^ ": partition agrees under search") (partition exp)
            (partition sat);
          Alcotest.(check int)
            (nm ^ ": one solver instance per sequential run")
            1 s.Sat.instances;
          if s.Sat.decisions > 0 && s.Sat.reused_shared > 0 then Some (nm, s)
          else None)
      instances
  in
  Alcotest.(check bool)
    "some family instance yields nonzero SAT decisions and shared-clause reuse"
    true (hits <> [])

let test_incremental_matches_fresh () =
  (* The tentpole's conformance obligation: the one-solver
     activation-literal mode and the throwaway-solver-per-fault mode
     must report the same per-fault status over the full fault
     universe of every ladder instance — and the incremental engine
     must have spawned exactly one solver while the fresh engine
     spawns one per differentiation call. *)
  let strict = ref false in
  List.iter
    (fun inst ->
      let nm, c = build inst in
      let g = Satg_sg.Explicit.build c in
      let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
      let run incremental =
        let se = Sat_engine.create ~incremental g in
        let statuses =
          List.map
            (fun f ->
              ( Fault.to_string c f,
                match
                  Three_phase.find_test ~backend:(Sat_engine.backend se) g f
                with
                | Some _ -> "detected"
                | None -> "undetected"
                | exception Satg_guard.Guard.Exhausted _ -> "aborted" ))
            faults
        in
        (statuses, Sat_engine.stats se)
      in
      let fresh, fresh_stats = run false in
      let incr, incr_stats = run true in
      Alcotest.(check (list (pair string string)))
        (nm ^ ": incremental = fresh statuses") fresh incr;
      Alcotest.(check int)
        (nm ^ ": incremental spawns one instance") 1 incr_stats.Sat.instances;
      (* fresh mode matches only when no fault ever reached
         differentiation (every fault detected during prefix replay) *)
      Alcotest.(check bool)
        (nm ^ ": fresh never spawns fewer instances") true
        (fresh_stats.Sat.instances >= incr_stats.Sat.instances);
      if fresh_stats.Sat.instances > incr_stats.Sat.instances then
        strict := true)
    instances;
  Alcotest.(check bool)
    "some ladder instance shows O(faults) fresh instances vs 1 incremental"
    true !strict

let test_sat_instances_o_workers () =
  (* Through the full pool: the per-run solver-instance count follows
     the worker count, never the fault count. *)
  let _, c = build ("pipeline", 3, `Complex) in
  let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  let run jobs =
    Engine.run
      ~config:{ (deterministic_config Engine.Sat) with jobs }
      c ~faults
  in
  let instances r =
    match r.Engine.sat_stats with
    | Some s -> s.Sat.instances
    | None -> Alcotest.fail "sat engine reported no stats"
  in
  let r1 = run (Some 1) and r4 = run (Some 4) in
  Alcotest.(check int) "-j1: one instance" 1 (instances r1);
  Alcotest.(check bool) "-j4: at most one instance per worker" true
    (instances r4 <= 4);
  Alcotest.(check bool) "-j4: far fewer instances than faults" true
    (instances r4 < List.length faults);
  Alcotest.(check (list (pair string string)))
    "-j1 = -j4 partition" (partition r1) (partition r4)

let test_parallel_sim_lane_equality () =
  (* Bit-parallel fault packs vs standalone scalar ternary simulation,
     every lane, every node, after reset and after each vector — on a
     generated instance whose universe spans several machine words. *)
  let _, c = build ("pipeline", 3, `Complex) in
  let reset = Option.get (Circuit.initial c) in
  let base = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  let rec grow fs =
    if List.length fs > Parallel_sim.word_size then fs else grow (fs @ base)
  in
  let faults = Array.of_list (grow base) in
  let pack = Parallel_sim.create c faults ~reset in
  Alcotest.(check bool) "universe spans multiple words" true
    (Parallel_sim.n_words pack >= 2);
  let scalar =
    Array.map
      (fun f ->
        let fc = Fault.inject c f in
        let init =
          Ternary_sim.of_bool_state (Fault.initial_faulty_state c f reset)
        in
        let v0 = Circuit.input_vector_of_state c reset in
        (fc, ref (Ternary_sim.apply_vector fc init v0)))
      faults
  in
  let compare_all tag =
    Array.iteri
      (fun m (_, st) ->
        let got = Parallel_sim.machine_state pack m in
        for node = 0 to Circuit.n_nodes c - 1 do
          if not (Ternary.equal !st.(node) got.(node)) then
            Alcotest.failf "%s: lane %d disagrees at node %s" tag m
              (Circuit.node_name c node)
        done)
      scalar
  in
  compare_all "reset";
  (* walk the good machine's handshake: raise r, let the wave pass,
     answer with a, and back — plus a couple of adversarial vectors *)
  let vec bits = Array.init (Circuit.n_inputs c) (fun i -> List.nth bits i) in
  List.iteri
    (fun k v ->
      Parallel_sim.apply_vector pack v;
      Array.iter (fun (fc, st) -> st := Ternary_sim.apply_vector fc !st v) scalar;
      compare_all (Printf.sprintf "vector %d" k))
    [
      vec [ true; false ]; vec [ true; true ]; vec [ false; true ];
      vec [ false; false ]; vec [ true; true ]; vec [ false; false ];
    ]

(* Random concept compositions, cross-checked the same way: compile a
   random consistent composition (Test_concepts' generator), synthesize
   it, and demand the three-way partition agreement. *)
let prop_random_compositions_conform =
  QCheck.Test.make ~name:"families: random compositions, engines agree"
    ~count:15 Test_concepts.rt_arb (fun s ->
      let spec = Test_concepts.rt_build s in
      match Concepts.compile ~name:"rand" spec with
      | Error m -> QCheck.Test.fail_reportf "compile: %s" m
      | Ok stg -> (
        match Synth.complex_gate stg with
        | Error m -> QCheck.Test.fail_reportf "synth: %s" m
        | Ok c ->
          let faults = Fault.universe_input_sa c in
          let run engine =
            Engine.run ~config:(deterministic_config engine) c ~faults
          in
          let exp = partition (run Engine.Explicit) in
          exp = partition (run Engine.Bdd)
          && exp = partition (run Engine.Sat)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_random_compositions_conform ]

let suites =
  [
    ( "families_conformance",
      [
        Alcotest.test_case "explicit = bdd = sat partitions" `Quick
          test_engines_agree;
        Alcotest.test_case "-j1 = -j4 = sequential" `Quick test_jobs_determinism;
        Alcotest.test_case "SAT records real search" `Quick
          test_sat_searches_for_real;
        Alcotest.test_case "SAT incremental = fresh partitions" `Quick
          test_incremental_matches_fresh;
        Alcotest.test_case "SAT instances follow workers" `Quick
          test_sat_instances_o_workers;
        Alcotest.test_case "parallel-sim lane equality" `Quick
          test_parallel_sim_lane_equality;
      ]
      @ qcheck_cases );
  ]
