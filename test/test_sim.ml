(* Tests for the simulation engines: exact unbounded-delay exploration,
   ternary (Eichelberger) simulation, unit-delay simulation, and the
   bit-parallel fault simulator, including cross-checks between them. *)

open Satg_logic
open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_bench

let reset c = Option.get (Circuit.initial c)
let v2 a b = [| a; b |]

(* --- exact exploration -------------------------------------------------- *)

let test_fig1a_nonconfluent () =
  let c = Figures.fig1a () in
  let k = Structure.default_k c in
  (match Async_sim.apply_vector c ~k (reset c) (v2 true false) with
  | Async_sim.Non_confluent finals ->
    Alcotest.(check int) "two outcomes" 2 (List.length finals);
    let y = Option.get (Circuit.find_node c "y") in
    let ys = List.map (fun s -> s.(y)) finals |> List.sort_uniq Stdlib.compare in
    Alcotest.(check (list bool)) "y differs" [ false; true ] ys
  | Async_sim.Settles _ -> Alcotest.fail "expected non-confluence, got settle"
  | Async_sim.Exceeds_budget -> Alcotest.fail "expected non-confluence, got budget");
  (* (1,1) is a valid vector: settles uniquely with y = 1. *)
  match Async_sim.apply_vector c ~k (reset c) (v2 true true) with
  | Async_sim.Settles s ->
    let y = Option.get (Circuit.find_node c "y") in
    Alcotest.(check bool) "y set" true s.(y);
    Alcotest.(check bool) "stable" true (Circuit.is_stable c s)
  | Async_sim.Non_confluent _ | Async_sim.Exceeds_budget ->
    Alcotest.fail "expected unique settle"

let test_fig1b_oscillates () =
  let c = Figures.fig1b () in
  let k = Structure.default_k c in
  match Async_sim.apply_vector c ~k (reset c) [| true |] with
  | Async_sim.Exceeds_budget -> ()
  | Async_sim.Settles _ | Async_sim.Non_confluent _ ->
    Alcotest.fail "expected oscillation (budget exhaustion)"

let test_celem_all_vectors_settle () =
  let c = Figures.celem_handshake () in
  let k = Structure.default_k c in
  let s0 = reset c in
  List.iter
    (fun v ->
      match Async_sim.apply_vector c ~k s0 v with
      | Async_sim.Settles _ -> ()
      | Async_sim.Non_confluent _ | Async_sim.Exceeds_budget ->
        Alcotest.failf "vector (%b,%b) should settle" v.(0) v.(1))
    [ v2 false false; v2 false true; v2 true false; v2 true true ]

let test_states_after_self_loop () =
  (* From a stable state, states_after is that singleton for any k. *)
  let c = Figures.celem_handshake () in
  let s0 = reset c in
  Alcotest.(check int) "singleton" 1 (List.length (Async_sim.states_after c ~k:10 s0))

let test_settle () =
  let c = Figures.celem_handshake () in
  let s = Circuit.apply_input_vector c (reset c) (v2 true true) in
  (match Async_sim.settle c ~max_steps:10 s with
  | Some s' -> Alcotest.(check bool) "stable" true (Circuit.is_stable c s')
  | None -> Alcotest.fail "should settle");
  let c2 = Figures.fig1b () in
  let s2 = Circuit.apply_input_vector c2 (reset c2) [| true |] in
  Alcotest.(check bool) "oscillator never settles" true
    (Async_sim.settle c2 ~max_steps:100 s2 = None)

let test_reachable_stable_states () =
  let c = Figures.celem_handshake () in
  let k = Structure.default_k c in
  let states = Async_sim.reachable_stable_states c ~k ~from:[ reset c ] in
  (* C-element: stable states are exactly (a, b, c) with c following the
     C-element rule; from 000 all 2^2 input combinations are reachable
     and both polarities of c occur: 8 env+buffer combinations settle to
     6 distinct stable states (a=b forces c). *)
  Alcotest.(check bool) "several states" true (List.length states >= 4);
  List.iter
    (fun s -> Alcotest.(check bool) "each stable" true (Circuit.is_stable c s))
    states

(* --- ternary simulation -------------------------------------------------- *)

let test_ternary_valid_vector_binary () =
  let c = Figures.fig1a () in
  let s0 = Ternary_sim.of_bool_state (reset c) in
  let s = Ternary_sim.apply_vector c s0 (v2 true true) in
  match Ternary_sim.to_bool_state_opt s with
  | Some b ->
    (* Must agree with the exact engine. *)
    (match Async_sim.apply_vector c ~k:64 (reset c) (v2 true true) with
    | Async_sim.Settles s' ->
      Alcotest.(check string) "same state"
        (Circuit.state_to_string c s') (Circuit.state_to_string c b)
    | _ -> Alcotest.fail "exact engine disagrees")
  | None -> Alcotest.fail "valid vector should resolve to binary"

let test_ternary_race_detected () =
  let c = Figures.fig1a () in
  let s0 = Ternary_sim.of_bool_state (reset c) in
  let s = Ternary_sim.apply_vector c s0 (v2 true false) in
  Alcotest.(check bool) "phi somewhere" true
    (Ternary_sim.to_bool_state_opt s = None);
  let y = Option.get (Circuit.find_node c "y") in
  Alcotest.(check bool) "y uncertain" true (Ternary.equal s.(y) Ternary.Phi)

let test_ternary_oscillation_detected () =
  let c = Figures.fig1b () in
  let s0 = Ternary_sim.of_bool_state (reset c) in
  let s = Ternary_sim.apply_vector c s0 [| true |] in
  let cg = Option.get (Circuit.find_node c "c") in
  let d = Option.get (Circuit.find_node c "d") in
  Alcotest.(check bool) "loop uncertain" true
    (Ternary.equal s.(cg) Ternary.Phi && Ternary.equal s.(d) Ternary.Phi)

(* Soundness: whenever ternary simulation resolves to a fully binary
   state, the exact engine settles confluently to exactly that state.
   Exercised over every fixture circuit, every stable state reachable
   from reset, every input vector. *)
let test_ternary_soundness_sweep () =
  List.iter
    (fun make ->
      let c = make () in
      let k = max 64 (Structure.default_k c) in
      let stables = Async_sim.reachable_stable_states c ~k ~from:[ reset c ] in
      let n_in = Circuit.n_inputs c in
      let vectors =
        List.init (1 lsl n_in) (fun mask ->
            Array.init n_in (fun i -> mask land (1 lsl i) <> 0))
      in
      List.iter
        (fun s ->
          List.iter
            (fun v ->
              let t =
                Ternary_sim.apply_vector c (Ternary_sim.of_bool_state s) v
              in
              match Ternary_sim.to_bool_state_opt t with
              | None -> ()
              | Some b -> (
                match Async_sim.apply_vector c ~k s v with
                | Async_sim.Settles s' ->
                  Alcotest.(check string)
                    (Printf.sprintf "%s: ternary = exact" (Circuit.name c))
                    (Circuit.state_to_string c s')
                    (Circuit.state_to_string c b)
                | Async_sim.Non_confluent _ | Async_sim.Exceeds_budget ->
                  Alcotest.failf "%s: ternary claimed binary on invalid vector"
                    (Circuit.name c)))
            vectors)
        stables)
    [ Figures.fig1a; Figures.fig1b; Figures.celem_handshake; Figures.mutex_latch ]

(* --- unit-delay simulation ----------------------------------------------- *)

let test_unit_delay_settles () =
  let c = Figures.celem_handshake () in
  match Unit_delay.apply_vector c ~max_steps:100 (reset c) (v2 true true) with
  | Unit_delay.Settled (s, steps) ->
    Alcotest.(check bool) "stable" true (Circuit.is_stable c s);
    Alcotest.(check bool) "few steps" true (steps <= 3)
  | Unit_delay.Oscillates _ -> Alcotest.fail "should settle"

let test_unit_delay_oscillation () =
  let c = Figures.fig1b () in
  match Unit_delay.apply_vector c ~max_steps:100 (reset c) [| true |] with
  | Unit_delay.Oscillates cycle ->
    Alcotest.(check bool) "nonempty cycle" true (cycle <> [])
  | Unit_delay.Settled _ -> Alcotest.fail "should oscillate"

let test_unit_delay_optimism () =
  (* The documented blind spot: unit-delay sees (1,0) on fig1a settle
     (both buffers switch in the same step, the pulse never forms), while
     the exact engine reports non-confluence.  This is exactly why the
     Banerjee-style baseline is optimistic. *)
  let c = Figures.fig1a () in
  (match Unit_delay.apply_vector c ~max_steps:100 (reset c) (v2 true false) with
  | Unit_delay.Settled (s, _) ->
    let y = Option.get (Circuit.find_node c "y") in
    Alcotest.(check bool) "unit-delay picks y=0" false s.(y)
  | Unit_delay.Oscillates _ -> Alcotest.fail "unit delay should settle");
  match Async_sim.apply_vector c ~k:64 (reset c) (v2 true false) with
  | Async_sim.Non_confluent _ -> ()
  | _ -> Alcotest.fail "exact engine should see the race"

(* --- parallel fault simulation ------------------------------------------- *)

(* Cross-check: every machine of a pack must equal scalar ternary
   simulation of the structurally injected faulty circuit, state by
   state, after every vector of a sequence. *)
let check_pack_vs_scalar c faults vectors =
  let r = reset c in
  let pack = Parallel_sim.create c (Array.of_list faults) ~reset:r in
  let scalar_states =
    List.map
      (fun f ->
        let fc = Fault.inject c f in
        let init =
          Ternary_sim.of_bool_state (Fault.initial_faulty_state c f r)
        in
        (* settle: apply the unchanged input vector *)
        let v0 = Circuit.input_vector_of_state c r in
        (fc, ref (Ternary_sim.apply_vector fc init v0)))
      faults
  in
  let compare_all tag =
    List.iteri
      (fun i (fc, st) ->
        let expect = !st in
        let got = Parallel_sim.machine_state pack i in
        let n = Circuit.n_nodes c in
        for node = 0 to n - 1 do
          if not (Ternary.equal expect.(node) got.(node)) then
            Alcotest.failf "%s machine %d (%s) node %s: scalar %c, pack %c" tag
              i
              (Fault.to_string c (List.nth faults i))
              (Circuit.node_name fc node)
              (Ternary.to_char expect.(node))
              (Ternary.to_char got.(node))
        done)
      scalar_states
  in
  compare_all "after reset";
  List.iteri
    (fun step v ->
      Parallel_sim.apply_vector pack v;
      List.iter
        (fun (fc, st) -> st := Ternary_sim.apply_vector fc !st v)
        scalar_states;
      compare_all (Printf.sprintf "after vector %d" step))
    vectors

let test_parallel_matches_scalar_celem () =
  let c = Figures.celem_handshake () in
  let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  check_pack_vs_scalar c faults
    [ v2 true true; v2 true false; v2 false false; v2 false true; v2 true true ]

let test_parallel_matches_scalar_fig1a () =
  let c = Figures.fig1a () in
  let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  check_pack_vs_scalar c faults [ v2 true true; v2 false false; v2 true true ]

let test_parallel_matches_scalar_mutex () =
  let c = Figures.mutex_latch () in
  let faults = Fault.universe_output_sa c in
  check_pack_vs_scalar c faults
    [ v2 true false; v2 false false; v2 false true; v2 false false ]

let test_parallel_detection () =
  let c = Figures.celem_handshake () in
  let cel = Option.get (Circuit.find_node c "c") in
  let f = Fault.Output_sa { gate = cel; stuck = false } in
  let pack = Parallel_sim.create c [| f |] ~reset:(reset c) in
  (* Drive (1,1): good machine raises c, the stuck-at-0 machine cannot. *)
  let good = Ternary_sim.of_bool_state (reset c) in
  let good = Ternary_sim.apply_vector c good (v2 true true) in
  Parallel_sim.apply_vector pack (v2 true true);
  let hits =
    Parallel_sim.detected pack ~good_outputs:(Ternary_sim.outputs c good)
  in
  Alcotest.(check (list int)) "machine 0 detected" [ 0 ] hits;
  Alcotest.(check int) "one machine" 1 (Parallel_sim.n_machines pack);
  (* default drop: the machine is dead now and cannot re-detect *)
  Alcotest.(check int) "dropped" 0 (Parallel_sim.n_live pack);
  Alcotest.(check (list int)) "no re-detection" []
    (Parallel_sim.detected pack ~good_outputs:(Ternary_sim.outputs c good))

(* A pack larger than one word spreads over several words and every
   machine still matches the scalar reference. *)
let test_parallel_multiword () =
  let c = Figures.celem_handshake () in
  let base = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  (* replicate the universe until it overflows two words *)
  let rec grow fs = if List.length fs > 2 * Parallel_sim.word_size then fs
    else grow (fs @ base)
  in
  let faults = grow base in
  let pack =
    Parallel_sim.create c (Array.of_list faults) ~reset:(reset c)
  in
  Alcotest.(check bool) "several words" true (Parallel_sim.n_words pack > 2);
  check_pack_vs_scalar c faults
    [ v2 true true; v2 true false; v2 false false; v2 true true ]

(* Dropping + repack: detected machines disappear, survivors compact
   into fewer words and keep simulating correctly. *)
let test_parallel_drop_and_repack () =
  let c = Figures.celem_handshake () in
  let base = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  let rec grow fs = if List.length fs > 2 * Parallel_sim.word_size then fs
    else grow (fs @ base)
  in
  let faults = Array.of_list (grow base) in
  let pack = Parallel_sim.create c faults ~reset:(reset c) in
  let good = ref (Ternary_sim.of_bool_state (reset c)) in
  let vectors = [ v2 true true; v2 false false; v2 true false ] in
  let survivors = ref (Array.length faults) in
  let pack = ref pack in
  List.iter
    (fun v ->
      Parallel_sim.apply_vector !pack v;
      good := Ternary_sim.apply_vector c !good v;
      let hits =
        Parallel_sim.detected !pack ~good_outputs:(Ternary_sim.outputs c !good)
      in
      survivors := !survivors - List.length hits;
      Alcotest.(check int) "live count tracks drops" !survivors
        (Parallel_sim.n_live !pack);
      let before = Parallel_sim.live_faults !pack in
      pack := Parallel_sim.repack !pack;
      Alcotest.(check int) "repack preserves live count" !survivors
        (Parallel_sim.n_live !pack);
      Alcotest.(check bool) "repack preserves faults" true
        (before = Parallel_sim.live_faults !pack);
      Alcotest.(check bool) "repack compacts" true
        (Parallel_sim.n_words !pack
        = (!survivors + Parallel_sim.word_size - 1) / Parallel_sim.word_size))
    vectors;
  Alcotest.(check bool) "something was dropped" true
    (!survivors < Array.length faults);
  (* survivors still match a fresh scalar replay of the whole prefix
     (after the final repack every machine of the pack is live) *)
  for m = 0 to Parallel_sim.n_machines !pack - 1 do
    let fault = Parallel_sim.fault !pack m in
    let fc = Fault.inject c fault in
    let st =
      ref
        (Ternary_sim.of_bool_state (Fault.initial_faulty_state c fault (reset c)))
    in
    let v0 = Circuit.input_vector_of_state c (reset c) in
    st := Ternary_sim.apply_vector fc !st v0;
    List.iter (fun v -> st := Ternary_sim.apply_vector fc !st v) vectors;
    let got = Parallel_sim.machine_state !pack m in
    for node = 0 to Circuit.n_nodes c - 1 do
      if not (Ternary.equal !st.(node) got.(node)) then
        Alcotest.failf "survivor %d node %d: scalar %c, pack %c" m node
          (Ternary.to_char !st.(node))
          (Ternary.to_char got.(node))
    done
  done

let suites =
  [
    ( "sim.async",
      [
        Alcotest.test_case "fig1a non-confluence" `Quick test_fig1a_nonconfluent;
        Alcotest.test_case "fig1b oscillation" `Quick test_fig1b_oscillates;
        Alcotest.test_case "celem settles" `Quick test_celem_all_vectors_settle;
        Alcotest.test_case "stable self-loop" `Quick test_states_after_self_loop;
        Alcotest.test_case "settle" `Quick test_settle;
        Alcotest.test_case "reachable stable states" `Quick test_reachable_stable_states;
      ] );
    ( "sim.ternary",
      [
        Alcotest.test_case "valid vector binary" `Quick test_ternary_valid_vector_binary;
        Alcotest.test_case "race detected" `Quick test_ternary_race_detected;
        Alcotest.test_case "oscillation detected" `Quick test_ternary_oscillation_detected;
        Alcotest.test_case "soundness sweep" `Slow test_ternary_soundness_sweep;
      ] );
    ( "sim.unit_delay",
      [
        Alcotest.test_case "settles" `Quick test_unit_delay_settles;
        Alcotest.test_case "oscillation" `Quick test_unit_delay_oscillation;
        Alcotest.test_case "optimism vs exact" `Quick test_unit_delay_optimism;
      ] );
    ( "sim.parallel",
      [
        Alcotest.test_case "matches scalar (celem)" `Quick test_parallel_matches_scalar_celem;
        Alcotest.test_case "matches scalar (fig1a)" `Quick test_parallel_matches_scalar_fig1a;
        Alcotest.test_case "matches scalar (mutex)" `Quick test_parallel_matches_scalar_mutex;
        Alcotest.test_case "detection + drop" `Quick test_parallel_detection;
        Alcotest.test_case "multi-word pack" `Quick test_parallel_multiword;
        Alcotest.test_case "drop + repack" `Quick test_parallel_drop_and_repack;
      ] );
  ]
