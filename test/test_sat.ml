(* The SAT subsystem: Tseitin gate clauses, CDCL solver basics, the
   time-frame unroller, guard-governed degradation, and the qcheck
   differential oracle pitting SAT justification against explicit BFS
   on random circuits. *)

open Satg_guard
open Satg_fault
open Satg_sg
open Satg_core
module Sat = Satg_sat.Sat
module Cnf = Satg_cnf.Cnf

let fresh s = Sat.pos (Sat.new_var s)

(* Force a literal's value for the duration of one solve. *)
let assume_bit l b = if b then l else Sat.neg l

let all_bools n =
  List.init (1 lsl n) (fun mask ->
      List.init n (fun i -> mask land (1 lsl i) <> 0))

(* --- Tseitin gate definitions: exhaustive truth-table checks ------------- *)

let check_gate name define semantics arity =
  let s = Sat.create () in
  let y = fresh s in
  let xs = List.init arity (fun _ -> fresh s) in
  define s y xs;
  List.iter
    (fun bits ->
      let assumptions = List.map2 assume_bit xs bits in
      Alcotest.(check bool)
        (Printf.sprintf "%s satisfiable under any input" name)
        true
        (Sat.solve ~assumptions s);
      Alcotest.(check bool)
        (Printf.sprintf "%s output forced" name)
        (semantics bits)
        (Sat.lit_true s y);
      (* the opposite output value must be contradictory *)
      Alcotest.(check bool)
        (Printf.sprintf "%s output functional" name)
        false
        (Sat.solve
           ~assumptions:(assume_bit y (not (semantics bits)) :: assumptions)
           s))
    (all_bools arity)

let test_tseitin_and () =
  check_gate "and2" Cnf.define_and (List.for_all Fun.id) 2;
  check_gate "and3" Cnf.define_and (List.for_all Fun.id) 3

let test_tseitin_or () =
  check_gate "or2" Cnf.define_or (List.exists Fun.id) 2;
  check_gate "or3" Cnf.define_or (List.exists Fun.id) 3

let test_tseitin_xor () =
  check_gate "xor"
    (fun s y xs ->
      match xs with
      | [ a; b ] -> Cnf.define_xor s y a b
      | _ -> assert false)
    (fun bits -> List.fold_left (fun acc b -> acc <> b) false bits)
    2

let test_tseitin_ite () =
  check_gate "ite"
    (fun s y xs ->
      match xs with
      | [ c; a; b ] -> Cnf.define_ite s y c a b
      | _ -> assert false)
    (fun bits ->
      match bits with [ c; a; b ] -> (if c then a else b) | _ -> assert false)
    3

let test_tseitin_eq () =
  check_gate "eq"
    (fun s y xs ->
      match xs with
      | [ a ] ->
        Cnf.define_eq s y a
      | _ -> assert false)
    (fun bits -> List.hd bits)
    1

let test_at_most_one () =
  let n = 5 in
  let s = Sat.create () in
  let xs = List.init n (fun _ -> fresh s) in
  Cnf.at_most_one s xs;
  List.iter
    (fun bits ->
      let expected = List.filter Fun.id bits |> List.length <= 1 in
      Alcotest.(check bool) "ladder AMO" expected
        (Sat.solve ~assumptions:(List.map2 assume_bit xs bits) s))
    (all_bools n)

let test_at_most_one_counts () =
  (* The commander-chain encoding must cost exactly (n-2) auxiliary
     variables and (3n-5) clauses for n >= 2: the last element closes
     the chain instead of getting a commander of its own.  Pins the
     fix for the dead-variable variant (one unused commander plus two
     vacuous clauses per call). *)
  let count n =
    let s = Sat.create () in
    let xs = List.init n (fun _ -> fresh s) in
    Cnf.at_most_one s xs;
    (Sat.nvars s - n, (Sat.stats s).Sat.n_clauses)
  in
  Alcotest.(check (pair int int)) "n=0: free" (0, 0) (count 0);
  Alcotest.(check (pair int int)) "n=1: free" (0, 0) (count 1);
  Alcotest.(check (pair int int)) "n=2: one binary clause" (0, 1) (count 2);
  Alcotest.(check (pair int int)) "n=3: 1 var, 4 clauses" (1, 4) (count 3);
  Alcotest.(check (pair int int)) "n=5: 3 vars, 10 clauses" (3, 10) (count 5)

(* --- CDCL basics ---------------------------------------------------------- *)

let test_unit_propagation_chain () =
  let s = Sat.create () in
  let a = fresh s and b = fresh s and c = fresh s in
  Sat.add_clause s [ Sat.neg a; b ];
  Sat.add_clause s [ Sat.neg b; c ];
  Alcotest.(check bool) "sat" true (Sat.solve ~assumptions:[ a ] s);
  Alcotest.(check bool) "chain propagates" true (Sat.lit_true s c);
  Alcotest.(check bool) "propagations counted" true
    ((Sat.stats s).Sat.propagations > 0);
  Alcotest.(check bool) "contradiction detected" false
    (Sat.solve ~assumptions:[ a; Sat.neg c ] s)

let test_root_conflict_permanent () =
  let s = Sat.create () in
  let a = fresh s in
  Sat.add_clause s [ a ];
  Sat.add_clause s [ Sat.neg a ];
  Alcotest.(check bool) "permanently unsat" false (Sat.solve s);
  Alcotest.(check bool) "stays unsat" false (Sat.solve s)

(* Pigeonhole: php(n, n) is satisfiable, php(n+1, n) classically
   unsatisfiable and conflict-heavy — learning and restarts engage. *)
let php s ~pigeons ~holes =
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> fresh s)) in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.to_list v.(p));
    Cnf.at_most_one s (Array.to_list v.(p))
  done;
  for h = 0 to holes - 1 do
    Cnf.at_most_one s (List.init pigeons (fun p -> v.(p).(h)))
  done;
  v

let test_pigeonhole () =
  let s = Sat.create () in
  let v = php s ~pigeons:4 ~holes:4 in
  Alcotest.(check bool) "php(4,4) sat" true (Sat.solve s);
  (* the model must be a real assignment: every pigeon in one hole *)
  Array.iter
    (fun row ->
      Alcotest.(check int) "one hole per pigeon" 1
        (Array.to_list row
        |> List.filter (fun l -> Sat.lit_true s l)
        |> List.length))
    v;
  let s = Sat.create () in
  ignore (php s ~pigeons:5 ~holes:4);
  Alcotest.(check bool) "php(5,4) unsat" false (Sat.solve s);
  Alcotest.(check bool) "conflicts counted" true
    ((Sat.stats s).Sat.conflicts > 0);
  Alcotest.(check bool) "clauses learned" true ((Sat.stats s).Sat.learned > 0)

let test_incremental_assumptions () =
  let s = Sat.create () in
  let a = fresh s and b = fresh s in
  Sat.add_clause s [ a; b ];
  Alcotest.(check bool) "unsat under both negated" false
    (Sat.solve ~assumptions:[ Sat.neg a; Sat.neg b ] s);
  Alcotest.(check bool) "sat again without assumptions" true (Sat.solve s);
  Alcotest.(check bool) "assumption propagates" true
    (Sat.solve ~assumptions:[ Sat.neg a ] s && Sat.lit_true s b)

(* Differential: random 3-SAT vs brute-force enumeration, fixed seed. *)
let test_random_3sat_vs_bruteforce () =
  let rng = Random.State.make [| 0x5a7e |] in
  for _ = 1 to 40 do
    let n_vars = 4 + Random.State.int rng 5 in
    let n_clauses = 6 + Random.State.int rng 20 in
    let clauses =
      List.init n_clauses (fun _ ->
          List.init 3 (fun _ ->
              let v = Random.State.int rng n_vars in
              if Random.State.bool rng then 2 * v else (2 * v) + 1))
    in
    let brute =
      List.exists
        (fun mask ->
          List.for_all
            (List.exists (fun l ->
                 let v = l / 2 and negated = l land 1 = 1 in
                 mask land (1 lsl v) <> 0 <> negated))
            clauses)
        (List.init (1 lsl n_vars) Fun.id)
    in
    let s = Sat.create () in
    for _ = 1 to n_vars do
      ignore (Sat.new_var s)
    done;
    List.iter (Sat.add_clause s) clauses;
    let sat = Sat.solve s in
    Alcotest.(check bool) "matches brute force" brute sat;
    if sat then
      (* the model must actually satisfy every clause *)
      Alcotest.(check bool) "model satisfies" true
        (List.for_all (List.exists (Sat.lit_true s)) clauses)
  done

(* --- activation literals -------------------------------------------------- *)

let test_activation_gating () =
  let s = Sat.create () in
  let a = fresh s in
  let act = Sat.new_act s in
  Sat.add_clause ~act s [ Sat.neg a ];
  Sat.add_clause s [ a ];
  Alcotest.(check bool) "inactive group does not constrain" true (Sat.solve s);
  Alcotest.(check bool) "active group constrains" false
    (Sat.solve ~assumptions:[ Sat.act_lit s act ] s);
  Sat.retire s act;
  Alcotest.(check bool) "retired group gone" true (Sat.solve s);
  Alcotest.(check bool) "deletion counted" true
    ((Sat.stats s).Sat.deleted_clauses > 0);
  Sat.retire s act;
  (* idempotent *)
  match Sat.add_clause ~act s [ a ] with
  | () -> Alcotest.fail "adding to a retired activation must raise"
  | exception Invalid_argument _ -> ()

let test_retire_deletes_learned () =
  (* A conflict-heavy group: php(5,4) pigeon clauses under one
     activation, hole constraints act-free.  The clauses learned while
     the group was active mention the activation literal (resolution
     preserves the guard), so retirement must delete them too — the
     residual act-free instance is satisfiable. *)
  let s = Sat.create () in
  let act = Sat.new_act s in
  let v = Array.init 5 (fun _ -> Array.init 4 (fun _ -> fresh s)) in
  for p = 0 to 4 do
    Sat.add_clause ~act s (Array.to_list v.(p))
  done;
  for h = 0 to 3 do
    Cnf.at_most_one s (List.init 5 (fun p -> v.(p).(h)))
  done;
  Alcotest.(check bool) "php(5,4) unsat when active" false
    (Sat.solve ~assumptions:[ Sat.act_lit s act ] s);
  Alcotest.(check bool) "real search happened" true
    ((Sat.stats s).Sat.conflicts > 0);
  Sat.retire s act;
  Alcotest.(check bool) "satisfiable after retirement" true (Sat.solve s);
  Alcotest.(check bool) "group clauses deleted" true
    ((Sat.stats s).Sat.deleted_clauses >= 5)

let test_activation_churn_compacts () =
  (* Many short-lived groups on one instance: retirement-driven arena
     compaction must keep the solver correct throughout (watch lists
     rebuilt over moved clauses, shared clauses intact). *)
  let s = Sat.create () in
  let x = fresh s and y = fresh s in
  Sat.add_clause s [ Sat.neg x; y ];
  (* shared, must survive all churn *)
  for round = 1 to 60 do
    let act = Sat.new_act s in
    let zs = List.init 8 (fun _ -> fresh s) in
    List.iter (fun z -> Sat.add_clause ~act s [ Sat.neg x; z ]) zs;
    Sat.add_clause ~act s (List.map Sat.neg zs);
    Alcotest.(check bool)
      (Printf.sprintf "round %d: satisfiable without x" round)
      true
      (Sat.solve ~assumptions:[ Sat.act_lit s act; Sat.neg x ] s);
    Alcotest.(check bool)
      (Printf.sprintf "round %d: group forces a conflict with x" round)
      false
      (Sat.solve ~assumptions:[ Sat.act_lit s act; x ] s);
    Sat.retire s act;
    List.iter (fun z -> Sat.set_decidable s (Sat.var_of z) false) zs
  done;
  Alcotest.(check bool) "deletions accumulated" true
    ((Sat.stats s).Sat.deleted_clauses >= 60 * 9);
  Alcotest.(check bool) "shared clause still propagates" true
    (Sat.solve ~assumptions:[ x ] s && Sat.lit_true s y)

let test_reused_shared_counter () =
  (* Clauses predating the newest activation that serve as propagation
     reasons under it are the cross-fault payoff; the counter must see
     them and must not fire while no activation exists. *)
  let s = Sat.create () in
  let a = fresh s and b = fresh s and c = fresh s in
  Sat.add_clause s [ Sat.neg a; b ];
  Sat.add_clause s [ Sat.neg b; c ];
  Alcotest.(check bool) "warm-up solve" true (Sat.solve ~assumptions:[ a ] s);
  Alcotest.(check int) "no activation, no shared reuse" 0
    (Sat.stats s).Sat.reused_shared;
  let act = Sat.new_act s in
  Sat.add_clause ~act s [ a ];
  Alcotest.(check bool) "sat under activation" true
    (Sat.solve ~assumptions:[ Sat.act_lit s act ] s);
  Alcotest.(check bool) "chain propagated" true (Sat.lit_true s c);
  Alcotest.(check bool) "pre-activation clauses counted as reused" true
    ((Sat.stats s).Sat.reused_shared >= 2)

let test_reused_learned_counter () =
  (* A relaxed pigeonhole — unsat only under the ~r assumptions, so
     the instance never becomes root-unsat and the clauses learned by
     the first solve drive propagation in the second. *)
  let s = Sat.create () in
  let r1 = fresh s and r2 = fresh s in
  let v = Array.init 5 (fun _ -> Array.init 4 (fun _ -> fresh s)) in
  for p = 0 to 4 do
    Sat.add_clause s ((if p mod 2 = 0 then r1 else r2) :: Array.to_list v.(p))
  done;
  for h = 0 to 3 do
    Cnf.at_most_one s (List.init 5 (fun p -> v.(p).(h)))
  done;
  let asm = [ Sat.neg r1; Sat.neg r2 ] in
  Alcotest.(check bool) "unsat under relaxation off" false
    (Sat.solve ~assumptions:asm s);
  let st1 = Sat.stats s in
  Alcotest.(check bool) "first solve learned" true (st1.Sat.learned > 0);
  Alcotest.(check int) "nothing learned earlier to reuse" 0
    st1.Sat.reused_learned;
  Alcotest.(check bool) "still unsat on the second ask" false
    (Sat.solve ~assumptions:asm s);
  Alcotest.(check bool) "second solve reused learned clauses" true
    ((Sat.stats s).Sat.reused_learned > 0);
  Alcotest.(check bool) "satisfiable with relaxation free" true (Sat.solve s)

(* --- resource governance -------------------------------------------------- *)

let test_guard_trip_inside_propagation () =
  (* An already-expired deadline trips through Guard.tick on the
     propagation hot path — inside the search, not at its boundary. *)
  let s = Sat.create () in
  ignore (php s ~pigeons:6 ~holes:5);
  let expired = Guard.create ~timeout:(-1.0) () in
  Sat.set_guard s expired;
  (match Sat.solve s with
  | (_ : bool) -> Alcotest.fail "expected Guard.Exhausted"
  | exception Guard.Exhausted Guard.Timeout -> ()
  | exception Guard.Exhausted r ->
    Alcotest.failf "wrong reason %s" (Guard.reason_to_string r));
  (* the instance survives the trip: swap the guard, solve to the end *)
  Sat.set_guard s Guard.none;
  Alcotest.(check bool) "usable after trip" false (Sat.solve s)

let test_guard_transition_ceiling () =
  let s = Sat.create () in
  ignore (php s ~pigeons:6 ~holes:5);
  Sat.set_guard s (Guard.create ~max_transitions:20 ());
  (match Sat.solve s with
  | (_ : bool) -> Alcotest.fail "expected Guard.Exhausted"
  | exception Guard.Exhausted Guard.Transition_limit -> ()
  | exception Guard.Exhausted r ->
    Alcotest.failf "wrong reason %s" (Guard.reason_to_string r));
  Sat.set_guard s Guard.none;
  Alcotest.(check bool) "usable after trip" false (Sat.solve s)

let test_engine_sat_degradation () =
  (* A per-fault budget tripping inside SAT search must degrade to
     Aborted outcomes (sound partial result), never escape or claim a
     detection it did not replay. *)
  let c = Satg_bench.Figures.celem_handshake () in
  let faults = Fault.universe_input_sa c in
  let g = Explicit.build c in
  let config =
    {
      Engine.default_config with
      engine = Engine.Sat;
      enable_random = false;
      max_transitions = Some 1;
    }
  in
  let r = Engine.run ~config ~cssg:g c ~faults in
  let statuses st =
    List.length
      (List.filter (fun o -> st o.Satg_core.Testset.status) r.Engine.outcomes)
  in
  let d = statuses Testset.is_detected in
  let a = statuses Testset.is_aborted in
  let u = statuses (fun s -> s = Testset.Undetected) in
  Alcotest.(check int) "outcomes partition the universe"
    (List.length faults) (d + u + a);
  Alcotest.(check bool) "some fault aborted" true (a > 0);
  Alcotest.(check bool) "partial" true (Engine.partial r);
  (* every detection claim still replays exactly *)
  List.iter
    (fun o ->
      match o.Testset.status with
      | Testset.Detected { sequence; _ } ->
        Alcotest.(check bool) "replays" true
          (Detect.check_exact g o.Testset.fault sequence)
      | _ -> ())
    r.Engine.outcomes

let test_engine_sat_stats_threaded () =
  let c = Satg_bench.Figures.mutex_latch () in
  let faults = Fault.universe_input_sa c in
  let run engine =
    Engine.run
      ~config:{ Engine.default_config with engine; enable_random = false }
      c ~faults
  in
  (match (run Engine.Sat).Engine.sat_stats with
  | None -> Alcotest.fail "sat engine must report stats"
  | Some s ->
    Alcotest.(check bool) "vars allocated" true (s.Sat.n_vars > 0);
    Alcotest.(check bool) "clauses added" true (s.Sat.n_clauses > 0));
  Alcotest.(check bool) "explicit engine has no sat stats" true
    ((run Engine.Explicit).Engine.sat_stats = None)

(* --- time-frame unroller -------------------------------------------------- *)

let test_unroller_diamond () =
  (* 0 -> {1, 2} -> 3: state 3 first reachable at frame 2, through
     either middle state; decoding returns a real length-2 path. *)
  let s = Sat.create () in
  let u = Cnf.Unroller.create s in
  let s0 = Cnf.Unroller.add_state u ~initial:true in
  let s1 = Cnf.Unroller.add_state u ~initial:false in
  let s2 = Cnf.Unroller.add_state u ~initial:false in
  let s3 = Cnf.Unroller.add_state u ~initial:false in
  let e01 = Cnf.Unroller.add_edge u ~src:s0 ~dst:s1 in
  let e02 = Cnf.Unroller.add_edge u ~src:s0 ~dst:s2 in
  let e13 = Cnf.Unroller.add_edge u ~src:s1 ~dst:s3 in
  let e23 = Cnf.Unroller.add_edge u ~src:s2 ~dst:s3 in
  Cnf.Unroller.ensure_frames u ~upto:2;
  let at frame st = Option.get (Cnf.Unroller.state_lit u ~frame st) in
  Alcotest.(check bool) "initial at frame 0" true
    (Sat.solve ~assumptions:[ at 0 s0 ] s);
  Alcotest.(check bool) "non-initial not at frame 0" false
    (Sat.solve ~assumptions:[ at 0 s3 ] s);
  Alcotest.(check bool) "too early" false
    (Sat.solve ~assumptions:[ at 1 s3 ] s);
  Alcotest.(check bool) "middle ring" true
    (Sat.solve ~assumptions:[ at 1 s1 ] s);
  Alcotest.(check bool) "sink at frame 2" true
    (Sat.solve ~assumptions:[ at 2 s3 ] s);
  let path = Cnf.Unroller.decode_path u ~frame:2 ~state:s3 in
  Alcotest.(check bool) "real length-2 path" true
    (path = [ e01; e13 ] || path = [ e02; e23 ])

let test_unroller_late_states () =
  (* A state added after a frame is encoded does not exist there: the
     ring-synchronized product protocol relies on exactly this. *)
  let s = Sat.create () in
  let u = Cnf.Unroller.create s in
  let s0 = Cnf.Unroller.add_state u ~initial:true in
  let s1 = Cnf.Unroller.add_state u ~initial:false in
  ignore (Cnf.Unroller.add_edge u ~src:s0 ~dst:s1);
  Cnf.Unroller.ensure_frames u ~upto:1;
  let s2 = Cnf.Unroller.add_state u ~initial:false in
  ignore (Cnf.Unroller.add_edge u ~src:s1 ~dst:s2);
  Alcotest.(check bool) "late state absent from old frame" true
    (Cnf.Unroller.state_lit u ~frame:1 s2 = None);
  Cnf.Unroller.ensure_frames u ~upto:2;
  Alcotest.(check bool) "late state reachable at its ring" true
    (Sat.solve
       ~assumptions:[ Option.get (Cnf.Unroller.state_lit u ~frame:2 s2) ]
       s)

(* --- product-state cap: fail-soft, never silently undetectable ---------- *)

let test_tiny_product_cap_fail_soft () =
  (* Regression for the silent-stop bug: under a product-state cap the
     search cannot honour, a fault that the uncapped run detects must
     either still be detected (activation caught it before
     differentiation) or raise Guard.Exhausted — NEVER come back as
     "undetectable" from a product graph the search never finished.
     Checked on both the SAT and the explicit differentiators. *)
  let stg = Result.get_ok (Satg_concepts.Families.generate "latch" ~n:2) in
  let c = Result.get_ok (Satg_stg.Synth.decomposed ~redundant:true stg) in
  let g = Explicit.build c in
  let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  let tiny = { Three_phase.default_config with max_product_states = 1 } in
  let run name config backend =
    let capped = ref 0 in
    List.iter
      (fun f ->
        let full = Three_phase.find_test ?backend g f in
        let small =
          match Three_phase.find_test ~config ?backend g f with
          | r -> `Result r
          | exception Guard.Exhausted reason -> `Exhausted reason
        in
        match (full, small) with
        | Some _, `Result None ->
          Alcotest.failf "%s: %s detectable but silently undetected under cap"
            name (Fault.to_string c f)
        | _, `Exhausted Guard.State_limit -> incr capped
        | _, `Exhausted reason ->
          Alcotest.failf "%s: wrong exhaustion reason %s" name
            (Guard.reason_to_string reason)
        | _ -> ())
      faults;
    Alcotest.(check bool) (name ^ ": the cap actually tripped") true (!capped > 0)
  in
  run "explicit" tiny None;
  let se = Sat_engine.create g in
  run "sat" tiny (Some (Sat_engine.backend se))

(* --- differential oracle: SAT justification vs explicit BFS -------------- *)

(* On random small circuits, for every CSSG state: SAT justification
   finds a path iff breadth-first search does, with the same (shortest)
   length, and the SAT path is a real valid-edge path from reset. *)
let prop_sat_justification_matches_bfs =
  QCheck.Test.make
    ~name:"random circuits: SAT justification = explicit BFS" ~count:40
    Test_random_circuits.spec_arb (fun spec ->
      match Test_random_circuits.build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let g = Explicit.build c in
        let se = Sat_engine.create g in
        let backend = Sat_engine.backend se in
        List.for_all
          (fun i ->
            let bfs = Cssg.justify g ~target:(( = ) i) () in
            let sat = backend.Three_phase.backend_justify Guard.none i in
            match (bfs, sat) with
            | None, None -> true
            | Some _, None | None, Some _ -> false
            | Some (bv, _), Some sv ->
              List.length bv = List.length sv
              && (* the SAT path must replay to the target *)
              List.fold_left
                (fun state v ->
                  match state with
                  | None -> None
                  | Some j -> Cssg.apply g j v)
                (Some (List.hd (Cssg.initial g)))
                sv
              = Some i)
          (List.init (Cssg.n_states g) Fun.id))

(* The tentpole's oracle: on random circuits the shared-solver
   activation-literal mode and the fresh-solver-per-fault mode must
   agree fault by fault — same status, and for detections the same
   sequence length (prefixes are BFS-shortest, suffixes ring-exact, in
   both modes). *)
let prop_sat_incremental_matches_fresh =
  QCheck.Test.make
    ~name:"random circuits: incremental SAT = fresh-per-fault SAT" ~count:25
    Test_random_circuits.spec_arb (fun spec ->
      match Test_random_circuits.build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let g = Explicit.build c in
        let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
        let statuses incremental =
          let se = Sat_engine.create ~incremental g in
          List.map
            (fun f ->
              match
                Three_phase.find_test ~backend:(Sat_engine.backend se) g f
              with
              | Some seq -> `Detected (List.length seq)
              | None -> `Undetected
              | exception Guard.Exhausted _ -> `Aborted)
            faults
        in
        statuses true = statuses false)

let suites =
  [
    ( "sat.tseitin",
      [
        Alcotest.test_case "and" `Quick test_tseitin_and;
        Alcotest.test_case "or" `Quick test_tseitin_or;
        Alcotest.test_case "xor" `Quick test_tseitin_xor;
        Alcotest.test_case "ite" `Quick test_tseitin_ite;
        Alcotest.test_case "eq" `Quick test_tseitin_eq;
        Alcotest.test_case "at-most-one ladder" `Quick test_at_most_one;
        Alcotest.test_case "at-most-one exact cost" `Quick
          test_at_most_one_counts;
      ] );
    ( "sat.activation",
      [
        Alcotest.test_case "gating and retirement" `Quick test_activation_gating;
        Alcotest.test_case "retire deletes learned clauses" `Quick
          test_retire_deletes_learned;
        Alcotest.test_case "churn survives compaction" `Quick
          test_activation_churn_compacts;
        Alcotest.test_case "reused-shared counter" `Quick
          test_reused_shared_counter;
        Alcotest.test_case "reused-learned counter" `Quick
          test_reused_learned_counter;
      ] );
    ( "sat.cdcl",
      [
        Alcotest.test_case "unit propagation chain" `Quick
          test_unit_propagation_chain;
        Alcotest.test_case "root conflict permanent" `Quick
          test_root_conflict_permanent;
        Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
        Alcotest.test_case "incremental assumptions" `Quick
          test_incremental_assumptions;
        Alcotest.test_case "random 3-SAT vs brute force" `Quick
          test_random_3sat_vs_bruteforce;
      ] );
    ( "sat.guard",
      [
        Alcotest.test_case "trip inside propagation" `Quick
          test_guard_trip_inside_propagation;
        Alcotest.test_case "transition ceiling" `Quick
          test_guard_transition_ceiling;
        Alcotest.test_case "engine degradation" `Quick
          test_engine_sat_degradation;
        Alcotest.test_case "stats threaded" `Quick
          test_engine_sat_stats_threaded;
      ] );
    ( "sat.unroller",
      [
        Alcotest.test_case "diamond" `Quick test_unroller_diamond;
        Alcotest.test_case "late states" `Quick test_unroller_late_states;
      ] );
    ( "sat.product_cap",
      [
        Alcotest.test_case "tiny cap fails soft" `Quick
          test_tiny_product_cap_fail_soft;
      ] );
    ( "sat.differential",
      [
        QCheck_alcotest.to_alcotest prop_sat_justification_matches_bfs;
        QCheck_alcotest.to_alcotest prop_sat_incremental_matches_fresh;
      ] );
  ]
