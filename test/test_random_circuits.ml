(* Randomized cross-checks over generated netlists: the strongest
   correctness evidence in the suite.  For random small circuits with
   feedback we assert that

   - ternary simulation is sound w.r.t. exhaustive exploration,
   - the explicit (pure and hybrid) and symbolic CSSG engines agree,
   - bit-parallel fault simulation equals scalar ternary simulation,
   - the netlist text format round-trips behaviour exactly. *)

open Satg_logic
open Satg_circuit
open Satg_fault
open Satg_sim
open Satg_sg

(* --- random circuit generator -------------------------------------------- *)

type spec = {
  n_inputs : int;
  gate_funcs : Gatefunc.t list;  (* in creation order *)
  fanin_picks : int list list;  (* raw generator choices, resolved mod nodes *)
}

let func_pool =
  Gatefunc.[ And; Or; Nand; Nor; Not; Buf; Xor; Celem; Mux ]

let gen_spec =
  let open QCheck.Gen in
  let* n_inputs = int_range 1 2 in
  let* n_gates = int_range 2 5 in
  let* gate_funcs =
    list_size (return n_gates) (oneofl func_pool)
  in
  let* fanin_picks =
    list_size (return n_gates)
      (list_size (int_range 1 3) (int_range 0 1000))
  in
  return { n_inputs; gate_funcs; fanin_picks }

let arity_for func picks =
  match func with
  | Gatefunc.Not | Gatefunc.Buf -> [ List.hd picks ]
  | Gatefunc.Celem -> (
    match picks with
    | a :: b :: _ -> [ a; b ]
    | [ a ] -> [ a; a ]
    | [] -> assert false)
  | Gatefunc.Mux -> (
    match picks with
    | a :: b :: c :: _ -> [ a; b; c ]
    | [ a; b ] -> [ a; b; b ]
    | [ a ] -> [ a; a; a ]
    | [] -> assert false)
  | _ -> picks

(* Build the circuit; returns [None] when no stable reset state is
   found (the generator's precondition). *)
let build_spec spec =
  let b = Circuit.Builder.create "random" in
  let inputs =
    List.init spec.n_inputs (fun i ->
        Circuit.Builder.add_input b (Printf.sprintf "i%d" i))
  in
  let gate_ids =
    List.mapi
      (fun i _ -> Circuit.Builder.declare_gate b ~name:(Printf.sprintf "g%d" i))
      spec.gate_funcs
  in
  let nodes = Array.of_list (inputs @ gate_ids) in
  List.iteri
    (fun i func ->
      let picks = arity_for func (List.nth spec.fanin_picks i) in
      let fanin =
        List.map (fun p -> nodes.(p mod Array.length nodes)) picks
      in
      Circuit.Builder.define_gate b (List.nth gate_ids i) func fanin)
    spec.gate_funcs;
  (* observe the last two gates *)
  List.iteri
    (fun i gid ->
      if i >= List.length gate_ids - 2 then Circuit.Builder.mark_output b gid)
    gate_ids;
  let c = Circuit.Builder.finalize b in
  (* Hunt for a stable reset state: settle from each all-inputs vector. *)
  let n = Circuit.n_nodes c in
  let rec try_vec mask =
    if mask >= 1 lsl spec.n_inputs then None
    else
      let v = Array.init spec.n_inputs (fun i -> mask land (1 lsl i) <> 0) in
      let s = Circuit.apply_input_vector c (Array.make n false) v in
      match Async_sim.settle c ~max_steps:64 s with
      | Some stable -> Some (Circuit.with_initial c stable)
      | None -> try_vec (mask + 1)
  in
  try_vec 0

let spec_arb =
  QCheck.make gen_spec ~print:(fun spec ->
      Printf.sprintf "inputs=%d funcs=[%s] picks=[%s]" spec.n_inputs
        (String.concat ";" (List.map Gatefunc.name spec.gate_funcs))
        (String.concat ";"
           (List.map
              (fun l -> String.concat "," (List.map string_of_int l))
              spec.fanin_picks)))

let all_vectors n =
  List.init (1 lsl n) (fun mask ->
      Array.init n (fun i -> mask land (1 lsl i) <> 0))

(* --- P1: ternary soundness ------------------------------------------------ *)

(* A fully binary ternary result certifies that every *fair* execution
   settles to that state.  The k-bounded frontier additionally contains
   unfair interleavings (a transient oscillation may consume the whole
   budget while another excited gate waits), so the exact verdict may
   be Exceeds_budget — but never a different settling state and never
   non-confluence: any stable state in the frontier is fairly
   reachable, so it must equal the ternary fixpoint. *)
let prop_ternary_sound =
  QCheck.Test.make ~name:"random circuits: ternary sound vs exact" ~count:150
    spec_arb (fun spec ->
      match build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let reset = Option.get (Circuit.initial c) in
        let k = max 32 (Structure.default_k c) in
        List.for_all
          (fun v ->
            let t =
              Ternary_sim.apply_vector c (Ternary_sim.of_bool_state reset) v
            in
            match Ternary_sim.to_bool_state_opt t with
            | None -> true
            | Some b -> (
              match Async_sim.apply_vector c ~k reset v with
              | Async_sim.Settles s -> s = b
              | Async_sim.Non_confluent _ -> false
              | Async_sim.Exceeds_budget ->
                (* every stable state at the k-frontier must be b *)
                let s1 = Circuit.apply_input_vector c reset v in
                Async_sim.states_after c ~k s1
                |> List.filter (Circuit.is_stable c)
                |> List.for_all (fun s -> s = b)))
          (all_vectors (Circuit.n_inputs c)))

(* --- P2: explicit engines and symbolic engine agree ------------------------ *)

let canonical g =
  let c = Cssg.circuit g in
  let states =
    List.init (Cssg.n_states g) (fun i ->
        Circuit.state_to_string c (Cssg.state g i))
    |> List.sort Stdlib.compare
  in
  let edges =
    List.concat
      (List.init (Cssg.n_states g) (fun i ->
           List.map
             (fun e ->
               ( Circuit.state_to_string c (Cssg.state g i),
                 Circuit.state_to_string c (Cssg.state g e.Cssg.target) ))
             (Cssg.successors g i)))
    |> List.sort Stdlib.compare
  in
  (states, edges)

let prop_engines_agree =
  QCheck.Test.make ~name:"random circuits: explicit = symbolic CSSG" ~count:60
    spec_arb (fun spec ->
      match build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let k = Structure.default_k c in
        let pure = Explicit.build ~exploration:`Pure ~k c in
        let hybrid = Explicit.build ~exploration:`Hybrid ~k c in
        let sym = Symbolic.to_cssg (Symbolic.build ~k c) in
        canonical pure = canonical sym && canonical pure = canonical hybrid)

(* Reordering is invisible semantically: the sifted build must produce
   the identical CSSG partition (states, edges) and reachable count.
   The monolithic reference style rides along under the same oracle. *)
let prop_reorder_agrees =
  QCheck.Test.make
    ~name:"random circuits: sift reorder and style preserve symbolic CSSG"
    ~count:40 spec_arb (fun spec ->
      match build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let k = Structure.default_k c in
        let plain = Symbolic.build ~k c in
        let sifted =
          Symbolic.build ~k ~reorder:Satg_bdd.Bdd.Reorder_sift c
        in
        let mono = Symbolic.build ~k ~style:`Monolithic c in
        let reference = canonical (Symbolic.to_cssg plain) in
        Symbolic.n_reachable plain = Symbolic.n_reachable sifted
        && Symbolic.n_reachable plain = Symbolic.n_reachable mono
        && canonical (Symbolic.to_cssg sifted) = reference
        && canonical (Symbolic.to_cssg mono) = reference)

(* --- P3: multi-word pack differential oracle ------------------------------- *)

(* The strongest pack property: replicate the whole fault universe past
   one word (so the pack spans several words), and after creation and
   after every vector assert that {e every} machine lane equals a
   standalone scalar Ternary_sim run of the same structurally injected
   fault — full node state, primary outputs, and the [detected] bits
   against the good machine's ternary outputs. *)
let prop_differential_oracle =
  QCheck.Test.make ~name:"random circuits: multi-word differential oracle"
    ~count:120
    QCheck.(pair spec_arb (small_list (int_bound 3)))
    (fun (spec, vec_picks) ->
      match build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let reset = Option.get (Circuit.initial c) in
        let base = Fault.universe_input_sa c @ Fault.universe_output_sa c in
        let rec grow fs =
          if List.length fs > Parallel_sim.word_size then fs
          else grow (fs @ base)
        in
        let faults = Array.of_list (grow base) in
        let pack = Parallel_sim.create c faults ~reset in
        if Parallel_sim.n_words pack < 2 then false
        else begin
          let scalar =
            Array.map
              (fun f ->
                let fc = Fault.inject c f in
                let init =
                  Ternary_sim.of_bool_state
                    (Fault.initial_faulty_state c f reset)
                in
                let v0 = Circuit.input_vector_of_state c reset in
                (fc, ref (Ternary_sim.apply_vector fc init v0)))
              faults
          in
          let good = ref (Ternary_sim.of_bool_state reset) in
          let ok = ref true in
          let compare_all () =
            Array.iteri
              (fun m (fc, st) ->
                ignore fc;
                let got = Parallel_sim.machine_state pack m in
                for node = 0 to Circuit.n_nodes c - 1 do
                  if not (Ternary.equal !st.(node) got.(node)) then ok := false
                done;
                let gout = Parallel_sim.machine_outputs pack m in
                Array.iteri
                  (fun k o ->
                    if not (Ternary.equal gout.(k) !st.(o)) then ok := false)
                  (Circuit.outputs c))
              scalar;
            let good_out = Ternary_sim.outputs c !good in
            let expected =
              Array.to_list (Array.mapi (fun m s -> (m, s)) scalar)
              |> List.filter_map (fun (m, (_, st)) ->
                     let hit = ref false in
                     Array.iteri
                       (fun k o ->
                         match (good_out.(k), !st.(o)) with
                         | Ternary.One, Ternary.Zero
                         | Ternary.Zero, Ternary.One -> hit := true
                         | _ -> ())
                       (Circuit.outputs c);
                     if !hit then Some m else None)
            in
            let got =
              Parallel_sim.detected ~drop:false pack ~good_outputs:good_out
            in
            if got <> expected then ok := false
          in
          let vectors =
            List.map
              (fun p ->
                Array.init (Circuit.n_inputs c) (fun i -> (p lsr i) land 1 = 1))
              vec_picks
          in
          compare_all ();
          List.iter
            (fun v ->
              Parallel_sim.apply_vector pack v;
              good := Ternary_sim.apply_vector c !good v;
              Array.iter
                (fun (fc, st) -> st := Ternary_sim.apply_vector fc !st v)
                scalar;
              compare_all ())
            vectors;
          !ok
        end)

(* --- P4: text format round-trips behaviour --------------------------------- *)

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"random circuits: parser round-trip" ~count:100
    spec_arb (fun spec ->
      match build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c -> (
        match Parser.parse_string (Parser.to_string c) with
        | Error _ -> false
        | Ok c' ->
          Circuit.n_nodes c = Circuit.n_nodes c'
          && Circuit.initial c = Circuit.initial c'
          && canonical (Explicit.build c) = canonical (Explicit.build c')))

(* --- P5: checker relationship ----------------------------------------------- *)

(* Neither detection checker dominates the other in general: the
   ternary checker certifies *fair* faulty outcomes (and so may detect
   even when the k-bounded frontier still contains an unfair straggler
   whose outputs agree with the good machine), while the exact checker
   resolves races ternary simulation blurs to Phi.  Domination does
   hold in the clean case: when the exact faulty frontier is fully
   stable at every observation point, every fair outcome is in the set,
   so a ternary detection forces an exact detection. *)
let prop_exact_dominates_when_settled =
  QCheck.Test.make
    ~name:"random circuits: check_exact >= check on settled frontiers"
    ~count:40
    QCheck.(pair spec_arb (small_list (int_bound 3)))
    (fun (spec, vec_picks) ->
      match build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let g = Satg_sg.Explicit.build c in
        let seq =
          (* keep only the prefix that is a valid CSSG path *)
          let rec valid i acc = function
            | [] -> List.rev acc
            | p :: rest -> (
              let v =
                Array.init (Circuit.n_inputs c) (fun b -> (p lsr b) land 1 = 1)
              in
              match Satg_sg.Cssg.apply g i v with
              | Some j -> valid j (v :: acc) rest
              | None -> List.rev acc)
          in
          valid (List.hd (Satg_sg.Cssg.initial g)) [] vec_picks
        in
        List.for_all
          (fun f ->
            (* replay the exact machine; note whether all frontiers are
               fully stable *)
            let m, f0 = Satg_core.Detect.exact_start g f in
            let all_stable states fc =
              List.for_all (fun s -> Circuit.is_stable fc s) states
            in
            let fc = Fault.inject c f in
            let rec settled states = function
              | [] -> all_stable states fc
              | v :: vs -> (
                all_stable states fc
                &&
                match Satg_core.Detect.exact_apply m states v with
                | None -> false
                | Some states' -> settled states' vs)
            in
            if not (settled f0 seq) then true
            else
              let ternary = Satg_core.Detect.check g f seq in
              let exact = Satg_core.Detect.check_exact g f seq in
              (not ternary) || exact)
          (Fault.universe_output_sa c))

(* --- P6: timed simulation agrees with the exact engine on valid edges ------- *)

let prop_timed_matches_exact_on_valid_edges =
  QCheck.Test.make
    ~name:"random circuits: timed sim lands in the predicted state"
    ~count:60
    QCheck.(pair spec_arb (int_bound 1000))
    (fun (spec, seed) ->
      match build_spec spec with
      | None -> QCheck.assume_fail ()
      | Some c ->
        let g = Satg_sg.Explicit.build c in
        let reset_id = List.hd (Satg_sg.Cssg.initial g) in
        let delays = Satg_sim.Timed_sim.random_delays c ~seed in
        List.for_all
          (fun e ->
            let sim =
              Satg_sim.Timed_sim.create c ~delays (Satg_sg.Cssg.state g reset_id)
            in
            let timed = Satg_sim.Timed_sim.apply_vector sim e.Satg_sg.Cssg.vector in
            timed = Satg_sg.Cssg.state g e.Satg_sg.Cssg.target)
          (Satg_sg.Cssg.successors g reset_id))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ternary_sound;
      prop_engines_agree;
      prop_reorder_agrees;
      prop_differential_oracle;
      prop_parser_roundtrip;
      prop_exact_dominates_when_settled;
      prop_timed_matches_exact_on_valid_edges;
    ]

let suites = [ ("random_circuits", qcheck_cases) ]
