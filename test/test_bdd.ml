(* Tests for the ROBDD package: canonicity, boolean algebra laws,
   quantification, relational product, permutation, sat enumeration,
   exact model counting, manager statistics, and guard weaving. *)

open Satg_guard
open Satg_bdd

let test_terminals () =
  let m = Bdd.create ~nvars:3 () in
  Alcotest.(check bool) "zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool)
    "not zero = one" true
    (Bdd.equal (Bdd.not_ m (Bdd.zero m)) (Bdd.one m))

let test_canonicity () =
  let m = Bdd.create ~nvars:4 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  (* a AND b built two different ways must be physically equal. *)
  let f1 = Bdd.and_ m a b in
  let f2 = Bdd.not_ m (Bdd.or_ m (Bdd.not_ m a) (Bdd.not_ m b)) in
  Alcotest.(check bool) "de morgan" true (Bdd.equal f1 f2);
  let g1 = Bdd.xor_ m a b in
  let g2 = Bdd.or_ m (Bdd.diff m a b) (Bdd.diff m b a) in
  Alcotest.(check bool) "xor via diff" true (Bdd.equal g1 g2);
  Alcotest.(check bool)
    "ite(a,b,0) = and" true
    (Bdd.equal (Bdd.ite m a b (Bdd.zero m)) f1)

let test_eval () =
  let m = Bdd.create ~nvars:3 () in
  let f =
    Bdd.or_ m
      (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
      (Bdd.and_ m (Bdd.nvar m 0) (Bdd.var m 2))
  in
  let ev a b c = Bdd.eval m f (function 0 -> a | 1 -> b | _ -> c) in
  Alcotest.(check bool) "110" true (ev true true false);
  Alcotest.(check bool) "100" false (ev true false false);
  Alcotest.(check bool) "001" true (ev false false true);
  Alcotest.(check bool) "000" false (ev false false false)

let test_cofactor_compose () =
  let m = Bdd.create ~nvars:3 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let f = Bdd.ite m a b c in
  Alcotest.(check bool)
    "f|a=1 is b" true
    (Bdd.equal (Bdd.cofactor m f ~var:0 ~value:true) b);
  Alcotest.(check bool)
    "f|a=0 is c" true
    (Bdd.equal (Bdd.cofactor m f ~var:0 ~value:false) c);
  (* compose a := b xor c in f = a and b *)
  let g = Bdd.compose m (Bdd.and_ m a b) ~var:0 (Bdd.xor_ m b c) in
  let expect = Bdd.and_ m (Bdd.xor_ m b c) b in
  Alcotest.(check bool) "compose" true (Bdd.equal g expect)

let test_quantify () =
  let m = Bdd.create ~nvars:3 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f = Bdd.and_ m a b in
  Alcotest.(check bool)
    "exists a. a&b = b" true
    (Bdd.equal (Bdd.exists m ~vars:[ 0 ] f) b);
  Alcotest.(check bool)
    "forall a. a&b = 0" true
    (Bdd.is_zero (Bdd.forall m ~vars:[ 0 ] f));
  Alcotest.(check bool)
    "forall a. a|!a = 1" true
    (Bdd.is_one (Bdd.forall m ~vars:[ 0 ] (Bdd.or_ m a (Bdd.not_ m a))))

let test_and_exists () =
  let m = Bdd.create ~nvars:4 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let r = Bdd.and_ m (Bdd.iff m a b) (Bdd.iff m b c) in
  (* ∃b. (a<->b)(b<->c) = (a<->c) *)
  let img = Bdd.and_exists m ~vars:[ 1 ] r (Bdd.one m) in
  Alcotest.(check bool) "chain" true (Bdd.equal img (Bdd.iff m a c));
  (* agreement with the naive formulation on random pieces *)
  let f = Bdd.or_ m (Bdd.and_ m a b) (Bdd.and_ m b c) in
  let g = Bdd.or_ m (Bdd.xor_ m a c) b in
  let lhs = Bdd.and_exists m ~vars:[ 1; 2 ] f g in
  let rhs = Bdd.exists m ~vars:[ 1; 2 ] (Bdd.and_ m f g) in
  Alcotest.(check bool) "vs naive" true (Bdd.equal lhs rhs)

let test_permute () =
  let m = Bdd.create ~nvars:4 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f = Bdd.diff m a b in
  (* swap 0 <-> 1 *)
  let p = function 0 -> 1 | 1 -> 0 | v -> v in
  let g = Bdd.permute m p f in
  Alcotest.(check bool) "swap" true (Bdd.equal g (Bdd.diff m b a));
  Alcotest.(check bool)
    "involution" true
    (Bdd.equal (Bdd.permute m p g) f)

let test_sat () =
  let m = Bdd.create ~nvars:3 () in
  let f = Bdd.xor_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check (float 0.001)) "satcount" 4.0 (Bdd.sat_count m ~nvars:3 f);
  let assign = Bdd.any_sat m f in
  let lookup v = List.assoc_opt v assign |> Option.value ~default:false in
  Alcotest.(check bool) "any_sat satisfies" true (Bdd.eval m f lookup);
  let cubes = Bdd.all_sat m f in
  Alcotest.(check int) "two paths" 2 (List.length cubes);
  Alcotest.check_raises "any_sat zero" Not_found (fun () ->
      ignore (Bdd.any_sat m (Bdd.zero m)))

let test_support_size () =
  let m = Bdd.create ~nvars:5 () in
  let f = Bdd.and_ m (Bdd.var m 1) (Bdd.or_ m (Bdd.var m 3) (Bdd.var m 4)) in
  Alcotest.(check (list int)) "support" [ 1; 3; 4 ] (Bdd.support m f);
  Alcotest.(check bool) "size nonzero" true (Bdd.size m f > 0);
  Alcotest.(check int) "terminal size" 0 (Bdd.size m (Bdd.one m))

(* sat_count is exact past the 2^53 float-mantissa cliff: x0 or
   (x1 & ... & x53) over 54 vars has exactly 2^53 + 1 models, a count
   no float can represent. *)
let test_sat_count_exact () =
  let nvars = 54 in
  let m = Bdd.create ~nvars () in
  let rest = ref (Bdd.one m) in
  for v = 1 to nvars - 1 do
    rest := Bdd.and_ m !rest (Bdd.var m v)
  done;
  let f = Bdd.or_ m (Bdd.var m 0) !rest in
  (match Bdd.sat_count_int m ~nvars f with
  | Some n -> Alcotest.(check int) "2^53 + 1" ((1 lsl 53) + 1) n
  | None -> Alcotest.fail "count fits an int but came back None");
  (* the float path necessarily rounds the +1 away... *)
  Alcotest.(check (float 0.0))
    "float rounds" (Float.ldexp 1.0 53) (Bdd.sat_count m ~nvars f);
  (* ...and a count past 62 bits overflows the int path gracefully *)
  let m70 = Bdd.create ~nvars:70 () in
  (match Bdd.sat_count_int m70 ~nvars:70 (Bdd.one m70) with
  | None -> ()
  | Some n -> Alcotest.failf "2^70 cannot be an int, got %d" n);
  Alcotest.(check (float 1e6))
    "float still usable past 62 bits" (Float.ldexp 1.0 70)
    (Bdd.sat_count m70 ~nvars:70 (Bdd.one m70));
  Alcotest.(check (option int)) "zero" (Some 0)
    (Bdd.sat_count_int m ~nvars:10 (Bdd.zero m));
  Alcotest.(check (option int)) "one over 10 vars" (Some 1024)
    (Bdd.sat_count_int m ~nvars:10 (Bdd.one m))

let test_stats () =
  (* Explicit sizes pin the original large-cache semantics: with
     [cache_size] given the probe-skip threshold defaults to 0, so the
     replay below really is pure cache hits. *)
  let m = Bdd.create ~cache_size:8192 ~nvars:8 () in
  let f = ref (Bdd.zero m) in
  for v = 0 to 7 do
    f := Bdd.xor_ m !f (Bdd.var m v)
  done;
  let s1 = Bdd.stats m in
  Alcotest.(check bool) "nodes made" true (s1.Bdd.live_nodes > 2);
  Alcotest.(check int) "peak = live (no GC)" s1.Bdd.live_nodes s1.Bdd.peak_nodes;
  Alcotest.(check int) "n_vars" 8 s1.Bdd.n_vars;
  Alcotest.(check bool)
    "load in (0, 0.75]" true
    (s1.Bdd.unique_load > 0.0 && s1.Bdd.unique_load <= 0.75);
  Alcotest.(check bool) "xor misses counted" true (s1.Bdd.xor_misses > 0);
  (* replaying the same chain must be pure cache hits, no new nodes *)
  let g = ref (Bdd.zero m) in
  for v = 0 to 7 do
    g := Bdd.xor_ m !g (Bdd.var m v)
  done;
  let s2 = Bdd.stats m in
  Alcotest.(check int) "replay allocates nothing" s1.Bdd.live_nodes
    s2.Bdd.live_nodes;
  Alcotest.(check bool) "replay hits cache" true
    (s2.Bdd.xor_hits > s1.Bdd.xor_hits);
  Alcotest.(check int) "misses unchanged" s1.Bdd.xor_misses s2.Bdd.xor_misses;
  Alcotest.(check bool) "apply_ops totals" true
    (Bdd.apply_ops s2 >= s2.Bdd.xor_hits + s2.Bdd.xor_misses);
  let rate = Bdd.cache_hit_rate s2 in
  Alcotest.(check bool) "hit rate in [0,1]" true (rate >= 0.0 && rate <= 1.0)

(* A tripped guard must surface from {e inside} an apply/mk hot path:
   that is what lets --timeout/--max-states interrupt a symbolic image
   computation mid-flight rather than between frontier steps. *)
let test_guard_in_hot_path () =
  let tripped =
    let g = Guard.create ~max_states:1 () in
    (try Guard.spend_states g 2 with Guard.Exhausted _ -> ());
    g
  in
  let m = Bdd.create ~nvars:6 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  Bdd.set_guard m tripped;
  Alcotest.check_raises "apply raises mid-op"
    (Guard.Exhausted Guard.State_limit) (fun () -> ignore (Bdd.and_ m a b));
  Alcotest.check_raises "mk raises on allocation"
    (Guard.Exhausted Guard.State_limit) (fun () -> ignore (Bdd.var m 5));
  (* detaching the guard makes the manager usable again (salvage) *)
  Bdd.set_guard m Guard.none;
  Alcotest.(check bool) "recovers after detach" true
    (Bdd.equal (Bdd.and_ m a b) (Bdd.and_ m b a));
  (* a guard given at creation is held by the manager *)
  let m2 = Bdd.create ~nvars:4 ~guard:tripped () in
  Alcotest.check_raises "creation guard active"
    (Guard.Exhausted Guard.State_limit) (fun () -> ignore (Bdd.var m2 0))

let test_add_var () =
  let m = Bdd.create ~nvars:1 () in
  let v = Bdd.add_var m in
  Alcotest.(check int) "new index" 1 v;
  let f = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check (list int)) "usable" [ 0; 1 ] (Bdd.support m f)

(* --- properties --------------------------------------------------------- *)

(* Random boolean expression over [n] vars, evaluated both through the
   BDD and directly; results must agree on every assignment. *)
type expr =
  | EVar of int
  | ENot of expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | EXor of expr * expr

let rec gen_expr n depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun v -> EVar v) (int_bound (n - 1))
  else
    frequency
      [
        (1, map (fun v -> EVar v) (int_bound (n - 1)));
        (2, map (fun e -> ENot e) (gen_expr n (depth - 1)));
        ( 2,
          map2 (fun a b -> EAnd (a, b)) (gen_expr n (depth - 1))
            (gen_expr n (depth - 1)) );
        ( 2,
          map2 (fun a b -> EOr (a, b)) (gen_expr n (depth - 1))
            (gen_expr n (depth - 1)) );
        ( 1,
          map2 (fun a b -> EXor (a, b)) (gen_expr n (depth - 1))
            (gen_expr n (depth - 1)) );
      ]

let rec expr_to_string = function
  | EVar v -> Printf.sprintf "x%d" v
  | ENot e -> Printf.sprintf "!(%s)" (expr_to_string e)
  | EAnd (a, b) -> Printf.sprintf "(%s & %s)" (expr_to_string a) (expr_to_string b)
  | EOr (a, b) -> Printf.sprintf "(%s | %s)" (expr_to_string a) (expr_to_string b)
  | EXor (a, b) -> Printf.sprintf "(%s ^ %s)" (expr_to_string a) (expr_to_string b)

let rec eval_expr assign = function
  | EVar v -> assign v
  | ENot e -> not (eval_expr assign e)
  | EAnd (a, b) -> eval_expr assign a && eval_expr assign b
  | EOr (a, b) -> eval_expr assign a || eval_expr assign b
  | EXor (a, b) -> eval_expr assign a <> eval_expr assign b

let rec build m = function
  | EVar v -> Bdd.var m v
  | ENot e -> Bdd.not_ m (build m e)
  | EAnd (a, b) -> Bdd.and_ m (build m a) (build m b)
  | EOr (a, b) -> Bdd.or_ m (build m a) (build m b)
  | EXor (a, b) -> Bdd.xor_ m (build m a) (build m b)

let n_prop_vars = 4

let expr_arb =
  QCheck.make (gen_expr n_prop_vars 4) ~print:expr_to_string

let prop_bdd_matches_semantics =
  QCheck.Test.make ~name:"bdd eval = direct eval" ~count:200 expr_arb
    (fun e ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f = build m e in
      let ok = ref true in
      for mask = 0 to (1 lsl n_prop_vars) - 1 do
        let assign v = mask land (1 lsl v) <> 0 in
        if Bdd.eval m f assign <> eval_expr assign e then ok := false
      done;
      !ok)

let prop_satcount_matches =
  QCheck.Test.make ~name:"sat_count = truth-table count" ~count:200 expr_arb
    (fun e ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f = build m e in
      let count = ref 0 in
      for mask = 0 to (1 lsl n_prop_vars) - 1 do
        let assign v = mask land (1 lsl v) <> 0 in
        if eval_expr assign e then incr count
      done;
      Float.abs (Bdd.sat_count m ~nvars:n_prop_vars f -. Float.of_int !count)
      < 0.5)

let prop_exists_matches =
  QCheck.Test.make ~name:"exists = or of cofactors" ~count:200
    QCheck.(pair expr_arb (int_bound (n_prop_vars - 1)))
    (fun (e, v) ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f = build m e in
      let lhs = Bdd.exists m ~vars:[ v ] f in
      let rhs =
        Bdd.or_ m
          (Bdd.cofactor m f ~var:v ~value:false)
          (Bdd.cofactor m f ~var:v ~value:true)
      in
      Bdd.equal lhs rhs)

let prop_canonical_equal =
  QCheck.Test.make ~name:"semantic equality = physical equality" ~count:200
    QCheck.(pair expr_arb expr_arb)
    (fun (e1, e2) ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f1 = build m e1 and f2 = build m e2 in
      let same_semantics = ref true in
      for mask = 0 to (1 lsl n_prop_vars) - 1 do
        let assign v = mask land (1 lsl v) <> 0 in
        if eval_expr assign e1 <> eval_expr assign e2 then
          same_semantics := false
      done;
      Bdd.equal f1 f2 = !same_semantics)

let test_accessors () =
  let m = Bdd.create ~nvars:3 () in
  let f = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 2) in
  Alcotest.(check int) "top var" 0 (Bdd.top_var m f);
  Alcotest.(check bool) "low is zero" true (Bdd.is_zero (Bdd.low m f));
  Alcotest.(check bool) "high is x2" true
    (Bdd.equal (Bdd.high m f) (Bdd.var m 2));
  Alcotest.check_raises "terminal top_var"
    (Invalid_argument "Bdd.top_var: terminal") (fun () ->
      ignore (Bdd.top_var m (Bdd.one m)))

let test_clear_caches_preserves () =
  let m = Bdd.create ~nvars:4 () in
  let f = Bdd.xor_ m (Bdd.var m 0) (Bdd.var m 1) in
  Bdd.clear_caches m;
  let g = Bdd.xor_ m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "canonicity survives cache clear" true (Bdd.equal f g)

let prop_transfer_preserves_semantics =
  QCheck.Test.make ~name:"transfer preserves semantics under any renaming"
    ~count:100 expr_arb (fun e ->
      let src = Bdd.create ~nvars:n_prop_vars () in
      let f = build src e in
      (* an arbitrary-but-fixed permutation *)
      let perm = [| 2; 0; 3; 1 |] in
      let dst = Bdd.create ~nvars:n_prop_vars () in
      let g = Bdd.transfer ~src ~dst (fun v -> perm.(v)) f in
      let ok = ref true in
      for mask = 0 to (1 lsl n_prop_vars) - 1 do
        let assign v = mask land (1 lsl v) <> 0 in
        let assign_dst v =
          (* variable perm.(v) in dst plays the role of v in src *)
          let rec inv i = if perm.(i) = v then i else inv (i + 1) in
          assign (inv 0)
        in
        if Bdd.eval src f assign <> Bdd.eval dst g assign_dst then ok := false
      done;
      !ok)

let prop_de_morgan =
  QCheck.Test.make ~name:"de morgan on arbitrary formulas" ~count:200
    QCheck.(pair expr_arb expr_arb)
    (fun (e1, e2) ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f = build m e1 and g = build m e2 in
      Bdd.equal
        (Bdd.not_ m (Bdd.and_ m f g))
        (Bdd.or_ m (Bdd.not_ m f) (Bdd.not_ m g))
      && Bdd.equal
           (Bdd.not_ m (Bdd.or_ m f g))
           (Bdd.and_ m (Bdd.not_ m f) (Bdd.not_ m g)))

let prop_ite_decomposition =
  QCheck.Test.make ~name:"ite f g h = (f&g) | (!f&h)" ~count:200
    QCheck.(triple expr_arb expr_arb expr_arb)
    (fun (e1, e2, e3) ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f = build m e1 and g = build m e2 and h = build m e3 in
      Bdd.equal (Bdd.ite m f g h)
        (Bdd.or_ m (Bdd.and_ m f g) (Bdd.and_ m (Bdd.not_ m f) h)))

let prop_forall_matches =
  QCheck.Test.make ~name:"forall = and of cofactors" ~count:200
    QCheck.(pair expr_arb (int_bound (n_prop_vars - 1)))
    (fun (e, v) ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f = build m e in
      Bdd.equal
        (Bdd.forall m ~vars:[ v ] f)
        (Bdd.and_ m
           (Bdd.cofactor m f ~var:v ~value:false)
           (Bdd.cofactor m f ~var:v ~value:true)))

(* The same differential oracle, but deep and wide enough (8 vars,
   depth 6) that unique-table rehashing and op-cache evictions happen
   along the way — the regimes the packed engine optimises. *)
let n_deep_vars = 8

let deep_expr_arb = QCheck.make (gen_expr n_deep_vars 6) ~print:expr_to_string

let prop_deep_bdd_matches_semantics =
  QCheck.Test.make ~name:"deep bdd eval = direct eval" ~count:100 deep_expr_arb
    (fun e ->
      let m = Bdd.create ~unique_size:64 ~cache_size:64 ~nvars:n_deep_vars () in
      let f = build m e in
      let ok = ref true in
      for mask = 0 to (1 lsl n_deep_vars) - 1 do
        let assign v = mask land (1 lsl v) <> 0 in
        if Bdd.eval m f assign <> eval_expr assign e then ok := false
      done;
      !ok)

(* --- cofactor exchange (flip_var) ---------------------------------------- *)

let test_flip_var () =
  let m = Bdd.create ~nvars:3 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let f = Bdd.or_ m (Bdd.and_ m a b) (Bdd.and_ m (Bdd.not_ m a) c) in
  let g = Bdd.flip_var m ~var:0 f in
  (* flipping var 0 exchanges the roles of the two AND terms *)
  for mask = 0 to 7 do
    let assign v = mask land (1 lsl v) <> 0 in
    let flipped v = if v = 0 then not (assign v) else assign v in
    Alcotest.(check bool) "flip semantics" (Bdd.eval m f flipped)
      (Bdd.eval m g assign)
  done;
  Alcotest.(check bool) "involution" true
    (Bdd.equal (Bdd.flip_var m ~var:0 g) f);
  (* variables absent from the support are no-ops, terminals too *)
  Alcotest.(check bool) "absent var" true
    (Bdd.equal (Bdd.flip_var m ~var:1 c) c);
  Alcotest.(check bool) "terminal" true
    (Bdd.is_one (Bdd.flip_var m ~var:0 (Bdd.one m)));
  let s = Bdd.stats m in
  Alcotest.(check bool) "flip misses counted" true (s.Bdd.flip_misses > 0)

let prop_flip_var_matches =
  QCheck.Test.make ~name:"flip_var = polarity exchange" ~count:200
    QCheck.(pair expr_arb (int_bound (n_prop_vars - 1)))
    (fun (e, v) ->
      let m = Bdd.create ~nvars:n_prop_vars () in
      let f = build m e in
      let g = Bdd.flip_var m ~var:v f in
      let ok = ref (Bdd.equal (Bdd.flip_var m ~var:v g) f) in
      for mask = 0 to (1 lsl n_prop_vars) - 1 do
        let assign u = mask land (1 lsl u) <> 0 in
        let flipped u = if u = v then not (assign u) else assign u in
        if Bdd.eval m g assign <> Bdd.eval m f flipped then ok := false
      done;
      !ok)

(* --- dynamic variable reordering ------------------------------------------ *)

(* Hand-built DAG: one adjacent swap must leave every function intact,
   update the level maps, and tick the swap counter. *)
let test_swap_adjacent () =
  let m = Bdd.create ~nvars:4 () in
  let f =
    Bdd.or_ m
      (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
      (Bdd.and_ m (Bdd.var m 2) (Bdd.var m 3))
  in
  let g = Bdd.xor_ m (Bdd.var m 1) (Bdd.var m 2) in
  let s0 = Bdd.stats m in
  Bdd.swap_adjacent m 1;
  Alcotest.(check int) "var 2 moved up" 1 (Bdd.level_of_var m 2);
  Alcotest.(check int) "var 1 moved down" 2 (Bdd.level_of_var m 1);
  Alcotest.(check int) "level 1 holds var 2" 2 (Bdd.var_at_level m 1);
  let s1 = Bdd.stats m in
  Alcotest.(check int) "one swap counted" (s0.Bdd.swaps + 1) s1.Bdd.swaps;
  for mask = 0 to 15 do
    let assign v = mask land (1 lsl v) <> 0 in
    let direct_f =
      (assign 0 && assign 1) || (assign 2 && assign 3)
    in
    Alcotest.(check bool) "f intact" direct_f (Bdd.eval m f assign);
    Alcotest.(check bool) "g intact" (assign 1 <> assign 2)
      (Bdd.eval m g assign)
  done;
  (* handles stay canonical across the swap: rebuilding finds them *)
  let f' =
    Bdd.or_ m
      (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
      (Bdd.and_ m (Bdd.var m 2) (Bdd.var m 3))
  in
  Alcotest.(check bool) "rebuild is physically equal" true (Bdd.equal f f');
  (* swapping back restores the identity order *)
  Bdd.swap_adjacent m 1;
  Alcotest.(check (list int)) "identity order restored" [ 0; 1; 2; 3 ]
    (Array.to_list (Bdd.order m));
  let bad l = try Bdd.swap_adjacent m l; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "level -1 rejected" true (bad (-1));
  Alcotest.(check bool) "last level rejected" true (bad 3)

(* The canonical sifting showcase: a1·b1 + ... + an·bn with all the
   a's ordered before all the b's is exponential; sifting must find an
   interleaving and collapse it to the linear form. *)
let interleaved_pairs m n =
  let f = ref (Bdd.zero m) in
  for i = 0 to n - 1 do
    f := Bdd.or_ m !f (Bdd.and_ m (Bdd.var m i) (Bdd.var m (n + i)))
  done;
  !f

let eval_pairs n assign =
  let rec go i = i < n && ((assign i && assign (n + i)) || go (i + 1)) in
  go 0

let test_sift_explicit () =
  let n = 6 in
  let m = Bdd.create ~nvars:(2 * n) () in
  let f = interleaved_pairs m n in
  let before = Bdd.size m f in
  let s0 = Bdd.stats m in
  Bdd.sift m;
  let s1 = Bdd.stats m in
  let after = Bdd.size m f in
  Alcotest.(check bool)
    (Printf.sprintf "size shrank (%d -> %d)" before after)
    true (after < before);
  Alcotest.(check int) "one pass counted" (s0.Bdd.reorders + 1) s1.Bdd.reorders;
  Alcotest.(check bool) "swaps counted" true (s1.Bdd.swaps > s0.Bdd.swaps);
  Alcotest.(check bool) "reorder time counted" true
    (s1.Bdd.reorder_seconds >= 0.0);
  for mask = 0 to (1 lsl (2 * n)) - 1 do
    let assign v = mask land (1 lsl v) <> 0 in
    if Bdd.eval m f assign <> eval_pairs n assign then
      Alcotest.failf "semantics changed at mask %d" mask
  done;
  (* canonicity survives the reorder *)
  Alcotest.(check bool) "rebuild physically equal" true
    (Bdd.equal (interleaved_pairs m n) f)

(* Automatic reordering: build the pair function big enough to cross
   the 4096-node growth trigger under [Reorder_sift]; a pass must have
   fired, and the function must still be right.  With the pass budget
   pinned to zero the same build must not reorder at all. *)
let test_auto_reorder_trigger () =
  let n = 13 in
  let build_with setup =
    let m = Bdd.create ~nvars:(2 * n) () in
    setup m;
    let f = interleaved_pairs m n in
    (m, f)
  in
  let m, f = build_with (fun m -> Bdd.set_reorder m Bdd.Reorder_sift) in
  Alcotest.(check bool) "mode readable" true
    (Bdd.reorder_mode m = Bdd.Reorder_sift);
  let s = Bdd.stats m in
  Alcotest.(check bool) "a pass fired" true (s.Bdd.reorders >= 1);
  (* spot-check semantics on a deterministic sample of assignments *)
  let lcg = ref 12345 in
  for _ = 1 to 500 do
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    let mask = !lcg in
    let assign v = mask land (1 lsl v) <> 0 in
    if Bdd.eval m f assign <> eval_pairs n assign then
      Alcotest.failf "auto-reorder changed semantics at mask %d" mask
  done;
  let m0, _ =
    build_with (fun m ->
        Bdd.set_reorder m Bdd.Reorder_sift;
        Bdd.set_reorder_bound m 0)
  in
  Alcotest.(check int) "bound 0 means no passes" 0 (Bdd.stats m0).Bdd.reorders;
  let mn, _ = build_with (fun m -> Bdd.disable_reorder m) in
  Alcotest.(check int) "disabled means no passes" 0 (Bdd.stats mn).Bdd.reorders

(* A transition budget must bound sifting itself: swaps allocate nodes
   and the saved guard is charged per allocation, so a tiny budget
   trips mid-pass with the manager left consistent. *)
let test_sift_guard_budget () =
  let n = 6 in
  let m = Bdd.create ~nvars:(2 * n) () in
  let f = interleaved_pairs m n in
  let g = Guard.create ~max_transitions:5 () in
  Bdd.set_guard m g;
  (match Bdd.sift m with
  | () -> Alcotest.fail "a 5-transition budget cannot fund a sift pass"
  | exception Guard.Exhausted Guard.Transition_limit -> ());
  (* fail-soft: detach the guard and the manager is fully usable *)
  Bdd.set_guard m Guard.none;
  for mask = 0 to (1 lsl (2 * n)) - 1 do
    let assign v = mask land (1 lsl v) <> 0 in
    if Bdd.eval m f assign <> eval_pairs n assign then
      Alcotest.failf "aborted sift corrupted the manager at mask %d" mask
  done;
  Alcotest.(check bool) "canonicity intact" true
    (Bdd.equal (interleaved_pairs m n) f)

(* Adaptive sizing: small managers get small tables and a cache-skip
   threshold; explicit sizes opt out of the threshold entirely. *)
let test_adaptive_sizes () =
  let small = Bdd.stats (Bdd.create ~nvars:8 ()) in
  let large = Bdd.stats (Bdd.create ~nvars:400 ()) in
  Alcotest.(check bool) "small tables for small managers" true
    (small.Bdd.unique_buckets_init < large.Bdd.unique_buckets_init);
  Alcotest.(check bool) "small cache too" true
    (small.Bdd.cache_slots < large.Bdd.cache_slots);
  Alcotest.(check int) "auto threshold" 64 small.Bdd.cache_threshold;
  let explicit = Bdd.stats (Bdd.create ~cache_size:4096 ~nvars:8 ()) in
  Alcotest.(check int) "explicit cache size honoured" 4096
    explicit.Bdd.cache_slots;
  Alcotest.(check int) "explicit size disables threshold" 0
    explicit.Bdd.cache_threshold

let prop_sift_preserves_semantics =
  QCheck.Test.make ~name:"sift preserves semantics and canonicity" ~count:100
    deep_expr_arb (fun e ->
      let m = Bdd.create ~nvars:n_deep_vars () in
      let f = build m e in
      Bdd.sift m;
      let ok = ref (Bdd.equal (build m e) f) in
      for mask = 0 to (1 lsl n_deep_vars) - 1 do
        let assign v = mask land (1 lsl v) <> 0 in
        if Bdd.eval m f assign <> eval_expr assign e then ok := false
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bdd_matches_semantics;
      prop_satcount_matches;
      prop_exists_matches;
      prop_canonical_equal;
      prop_transfer_preserves_semantics;
      prop_de_morgan;
      prop_ite_decomposition;
      prop_forall_matches;
      prop_deep_bdd_matches_semantics;
      prop_flip_var_matches;
      prop_sift_preserves_semantics;
    ]

let suites =
  [
    ( "bdd",
      [
        Alcotest.test_case "terminals" `Quick test_terminals;
        Alcotest.test_case "canonicity" `Quick test_canonicity;
        Alcotest.test_case "eval" `Quick test_eval;
        Alcotest.test_case "cofactor/compose" `Quick test_cofactor_compose;
        Alcotest.test_case "quantify" `Quick test_quantify;
        Alcotest.test_case "and_exists" `Quick test_and_exists;
        Alcotest.test_case "permute" `Quick test_permute;
        Alcotest.test_case "sat" `Quick test_sat;
        Alcotest.test_case "support/size" `Quick test_support_size;
        Alcotest.test_case "sat_count exact" `Quick test_sat_count_exact;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "guard in hot path" `Quick test_guard_in_hot_path;
        Alcotest.test_case "add_var" `Quick test_add_var;
        Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "clear caches" `Quick test_clear_caches_preserves;
        Alcotest.test_case "flip_var" `Quick test_flip_var;
        Alcotest.test_case "swap adjacent" `Quick test_swap_adjacent;
        Alcotest.test_case "sift explicit" `Quick test_sift_explicit;
        Alcotest.test_case "auto reorder trigger" `Slow test_auto_reorder_trigger;
        Alcotest.test_case "sift under budget" `Quick test_sift_guard_budget;
        Alcotest.test_case "adaptive sizes" `Quick test_adaptive_sizes;
      ]
      @ qcheck_cases );
  ]
