(* The -j determinism contract, measured: parallel CSSG construction
   and parallel fault search must produce bit-identical artefacts for
   every pool width, equal to the sequential pipeline for the explicit
   engine, and must degrade fail-soft (never raise) when a resource
   guard trips inside a worker. *)

open Satg_guard
open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_core
open Satg_bench
open Satg_pool

(* The pathological example netlists, embedded so the tests do not
   depend on the source tree's layout at test-run time. *)
let ring_storm_text =
  {|circuit ring_storm
input EN X0 X1 X2 X3 X4 X5 X6 X7 X8 X9
gate a NAND EN c
gate b NOT a
gate c NOT b
gate Y0 BUF X0
gate Y1 BUF X1
gate Y2 BUF X2
gate Y3 BUF X3
gate Y4 BUF X4
gate Y5 BUF X5
gate Y6 BUF X6
gate Y7 BUF X7
gate Y8 BUF X8
gate Y9 BUF X9
output c Y0 Y1 Y2 Y3 Y4 Y5 Y6 Y7 Y8 Y9
initial EN=0 X0=0 X1=0 X2=0 X3=0 X4=0 X5=0 X6=0 X7=0 X8=0 X9=0 a=1 b=0 c=1 Y0=0 Y1=0 Y2=0 Y3=0 Y4=0 Y5=0 Y6=0 Y7=0 Y8=0 Y9=0
end
|}

let toggle_farm_text =
  {|circuit toggle_farm
input X0 X1 X2 X3 X4 X5 X6 X7 X8 X9 X10 X11 X12 X13
gate Y0 BUF X0
gate Y1 BUF X1
gate Y2 BUF X2
gate Y3 BUF X3
gate Y4 BUF X4
gate Y5 BUF X5
gate Y6 BUF X6
gate Y7 BUF X7
gate Y8 BUF X8
gate Y9 BUF X9
gate Y10 BUF X10
gate Y11 BUF X11
gate Y12 BUF X12
gate Y13 BUF X13
output Y0 Y1 Y2 Y3 Y4 Y5 Y6 Y7 Y8 Y9 Y10 Y11 Y12 Y13
initial X0=0 X1=0 X2=0 X3=0 X4=0 X5=0 X6=0 X7=0 X8=0 X9=0 X10=0 X11=0 X12=0 X13=0 Y0=0 Y1=0 Y2=0 Y3=0 Y4=0 Y5=0 Y6=0 Y7=0 Y8=0 Y9=0 Y10=0 Y11=0 Y12=0 Y13=0
end
|}

let parse text =
  match Parser.parse_string text with
  | Ok c -> c
  | Error m -> failwith m

(* Caps small enough to keep the pathological pair fast but large
   enough that the truncated graphs are non-trivial. *)
let cap_states = 60
let cap_transitions = 20_000

let capped_guard () =
  Guard.create ~max_states:cap_states ~max_transitions:cap_transitions ()

let cssg_dump g = Format.asprintf "%a" Cssg.pp g

(* --- parallel CSSG construction -------------------------------------------- *)

let test_build_par_equals_build () =
  List.iter
    (fun c ->
      let seq = cssg_dump (Explicit.build c) in
      List.iter
        (fun jobs ->
          let par =
            Pool.with_pool ~jobs (fun pool ->
                cssg_dump (Explicit.build_par ~pool c))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s -j%d" (Circuit.name c) jobs)
            seq par)
        [ 1; 4 ])
    [ Figures.celem_handshake (); Figures.mutex_latch (); Figures.fig1a () ]

let test_build_par_truncated_deterministic () =
  List.iter
    (fun text ->
      let c = parse text in
      let dump jobs =
        Pool.with_pool ~jobs (fun pool ->
            let g = Explicit.build_par ~guard:(capped_guard ()) ~pool c in
            Alcotest.(check bool)
              (Circuit.name c ^ " truncated")
              true
              (Cssg.truncated g <> None);
            cssg_dump g)
      in
      Alcotest.(check string)
        (Circuit.name c ^ " -j1 = -j4")
        (dump 1) (dump 4))
    [ ring_storm_text; toggle_farm_text ]

let test_build_par_state_cap_only () =
  (* A state cap with no transition budget: the worker-side target-count
     cutoff must keep classification bounded (without it, each worker
     classifies the full 2^inputs vector space of a frontier state before
     the merge can trip the cap), and the truncated graph must still be
     identical to the sequential build at every width. *)
  let c = parse toggle_farm_text in
  let build guard = Explicit.build ~guard c in
  let build_par jobs guard =
    Pool.with_pool ~jobs (fun pool -> Explicit.build_par ~guard ~pool c)
  in
  let seq = build (Guard.create ~max_states:cap_states ()) in
  Alcotest.(check bool) "sequential truncated" true (Cssg.truncated seq <> None);
  List.iter
    (fun jobs ->
      let par = build_par jobs (Guard.create ~max_states:cap_states ()) in
      Alcotest.(check string)
        (Printf.sprintf "state-cap-only -j%d = sequential" jobs)
        (cssg_dump seq) (cssg_dump par))
    [ 1; 4 ]

(* --- parallel fault search -------------------------------------------------- *)

let status_string c o =
  Fault.to_string c o.Testset.fault
  ^ ": "
  ^
  match o.Testset.status with
  | Testset.Detected { phase; sequence } ->
    Printf.sprintf "detected(%s, %s)"
      (match phase with
      | Testset.Random -> "random"
      | Testset.Three_phase -> "3ph"
      | Testset.Fault_simulation -> "sim")
      (Testset.sequence_to_string sequence)
  | Testset.Undetected -> "undetected"
  | Testset.Aborted r -> "aborted(" ^ Guard.reason_to_string r ^ ")"

let run_atpg ?jobs ?(engine = Engine.Explicit) ?caps c =
  let max_states, max_transitions =
    match caps with
    | Some (s, t) -> (Some s, Some t)
    | None -> (None, None)
  in
  let config =
    { Engine.default_config with engine; jobs; max_states; max_transitions }
  in
  Engine.run ~config c ~faults:(Fault.universe_input_sa c)

let check_outcomes_equal name c a b =
  List.iter2
    (fun oa ob ->
      Alcotest.(check string) name (status_string c oa) (status_string c ob))
    a.Engine.outcomes b.Engine.outcomes

let test_engine_jobs_deterministic () =
  let tractable =
    [ (Figures.celem_handshake (), None); (Figures.mutex_latch (), None) ]
  in
  let pathological =
    [
      (parse ring_storm_text, Some (cap_states, cap_transitions));
      (parse toggle_farm_text, Some (cap_states, cap_transitions));
    ]
  in
  List.iter
    (fun (c, caps) ->
      let seq = run_atpg ?caps c in
      let j1 = run_atpg ~jobs:1 ?caps c in
      let j4 = run_atpg ~jobs:4 ?caps c in
      check_outcomes_equal (Circuit.name c ^ " seq = -j1") c seq j1;
      check_outcomes_equal (Circuit.name c ^ " -j1 = -j4") c j1 j4)
    (tractable @ pathological)

let test_engine_sat_partition_deterministic () =
  (* the SAT engine's witness sequences may depend on each worker's
     private solver history, so the j-invariant is the
     detected/undetected partition, not the sequences *)
  let c = Figures.celem_handshake () in
  let partition r =
    List.map
      (fun o -> Testset.is_detected o.Testset.status)
      r.Engine.outcomes
  in
  let j1 = run_atpg ~jobs:1 ~engine:Engine.Sat c in
  let j4 = run_atpg ~jobs:4 ~engine:Engine.Sat c in
  Alcotest.(check (list bool)) "sat partition -j1 = -j4" (partition j1)
    (partition j4);
  Alcotest.(check (list bool))
    "sat partition = explicit partition" (partition (run_atpg c))
    (partition j1)

(* --- fail-soft degradation inside workers ----------------------------------- *)

let test_worker_trip_fail_soft () =
  (* a transition budget small enough to trip inside the parallel CSSG
     build and the per-fault searches: the run must complete, flag
     itself partial, and never leak Guard.Exhausted *)
  let c = parse toggle_farm_text in
  let r = run_atpg ~jobs:4 ~caps:(40, 500) c in
  Alcotest.(check bool) "partial" true (Engine.partial r);
  Alcotest.(check bool) "truncated CSSG" true (Engine.truncated r <> None);
  Alcotest.(check int) "every fault has an outcome"
    (List.length (Fault.universe_input_sa c))
    (List.length r.Engine.outcomes);
  (* and the degraded run is still deterministic *)
  let r' = run_atpg ~jobs:1 ~caps:(40, 500) c in
  check_outcomes_equal "degraded -j4 = -j1" c r r'

let test_worker_timeout_fail_soft () =
  (* an already-expired deadline: everything aborts, nothing raises *)
  let c = parse ring_storm_text in
  let config =
    {
      Engine.default_config with
      jobs = Some 4;
      timeout = Some (-1.0);
      max_states = Some cap_states;
      max_transitions = Some cap_transitions;
    }
  in
  let r = Engine.run ~config c ~faults:(Fault.universe_input_sa c) in
  Alcotest.(check bool) "partial" true (Engine.partial r);
  Alcotest.(check bool) "nothing detected" true (Engine.detected r = 0)

let suites =
  [
    ( "domains.cssg",
      [
        Alcotest.test_case "build_par = build (tractable)" `Quick
          test_build_par_equals_build;
        Alcotest.test_case "capped build_par j-deterministic" `Quick
          test_build_par_truncated_deterministic;
        Alcotest.test_case "state-cap-only build_par = build" `Quick
          test_build_par_state_cap_only;
      ] );
    ( "domains.engine",
      [
        Alcotest.test_case "outcomes j-deterministic" `Slow
          test_engine_jobs_deterministic;
        Alcotest.test_case "sat partition j-deterministic" `Quick
          test_engine_sat_partition_deterministic;
      ] );
    ( "domains.fail-soft",
      [
        Alcotest.test_case "worker budget trip" `Quick
          test_worker_trip_fail_soft;
        Alcotest.test_case "expired deadline" `Quick
          test_worker_timeout_fail_soft;
      ] );
  ]
