(* Tests for the extension modules: tester-program export, graphviz
   exports, observation-point DFT, gross delay faults, and hierarchical
   composition. *)

open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_core
open Satg_bench

let contains s sub =
  let n = String.length sub in
  let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
  at 0

let get_si name =
  match Suite.speed_independent (Option.get (Suite.find name)) with
  | Ok c -> c
  | Error m -> Alcotest.fail m

let get_bd name =
  match Suite.bounded_delay (Option.get (Suite.find name)) with
  | Ok c -> c
  | Error m -> Alcotest.fail m

(* --- tester program -------------------------------------------------------- *)

let test_tester_program () =
  let c = Figures.celem_handshake () in
  let r = Engine.run c ~faults:(Fault.universe_input_sa c) in
  let p = Tester.of_result r in
  Alcotest.(check bool) "has bursts" true (Tester.n_bursts p > 0);
  Alcotest.(check bool) "has vectors" true (Tester.n_vectors p > 0);
  (* Every detected fault appears in exactly one burst. *)
  let listed =
    List.concat_map (fun b -> b.Tester.targets) p.Tester.bursts
  in
  Alcotest.(check int) "all detections listed"
    (Engine.detected r) (List.length listed);
  (* Expected outputs must match replaying the sequence on the CSSG. *)
  List.iter
    (fun b ->
      let rec follow i steps =
        match steps with
        | [] -> ()
        | s :: rest -> (
          match Cssg.apply r.Engine.cssg i s.Tester.inputs with
          | Some j ->
            Alcotest.(check (array bool))
              "expected outputs"
              (Circuit.output_values c (Cssg.state r.Engine.cssg j))
              s.Tester.expected;
            follow j rest
          | None -> Alcotest.fail "burst step is not a valid edge")
      in
      follow (List.hd (Cssg.initial r.Engine.cssg)) b.Tester.steps)
    p.Tester.bursts;
  let text = Tester.to_string p in
  Alcotest.(check bool) "mentions reset" true (contains text "reset");
  Alcotest.(check bool) "mentions apply" true (contains text "apply")

(* --- dot exports ------------------------------------------------------------ *)

let test_dot_circuit () =
  let c = Figures.fig1b () in
  let dot = Dot.circuit c in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "gate label" true (contains dot "NAND");
  (* the feedback loop must show a dashed edge *)
  Alcotest.(check bool) "dashed feedback" true (contains dot "style=dashed")

let test_dot_cssg () =
  let g = Explicit.build (Figures.celem_handshake ()) in
  let dot = Cssg.to_dot g in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "labelled edge" true (contains dot "label=\"11\"")

let test_dot_stg () =
  let e = Option.get (Suite.find "ebergen") in
  let dot = Satg_stg.Stg.to_dot e.Suite.stg in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "transition box" true (contains dot "ri+");
  Alcotest.(check bool) "marked place" true (contains dot "&bull;")

(* --- DFT -------------------------------------------------------------------- *)

let test_dft_observation_points () =
  (* On the redundant vbe6a, observing internal nodes must recover some
     of the coverage that redundancy destroyed. *)
  let c = get_bd "vbe6a" in
  let imp = Dft.evaluate c ~faults:(Fault.universe_input_sa c) in
  Alcotest.(check bool) "was imperfect" true (imp.Dft.before_detected < imp.Dft.total);
  Alcotest.(check bool) "chose points" true (imp.Dft.points <> []);
  Alcotest.(check bool) "improved" true
    (imp.Dft.after_detected > imp.Dft.before_detected)

let test_dft_noop_when_full () =
  let c = get_si "chu150" in
  let imp = Dft.evaluate c ~faults:(Fault.universe_input_sa c) in
  Alcotest.(check int) "already full" imp.Dft.total imp.Dft.before_detected;
  Alcotest.(check (list int)) "no points" [] imp.Dft.points;
  Alcotest.(check int) "unchanged" imp.Dft.before_detected imp.Dft.after_detected

let test_dft_preserves_behaviour () =
  (* Observation points must not change the CSSG dynamics. *)
  let c = get_bd "vbe6a" in
  let g = Explicit.build c in
  let internal =
    Array.to_list (Circuit.gates c)
    |> List.find (fun gid ->
           not (Array.exists (fun o -> o = gid) (Circuit.outputs c)))
  in
  let c' = Dft.observe c [ internal ] in
  let g' = Explicit.build c' in
  Alcotest.(check int) "same states" (Cssg.n_states g) (Cssg.n_states g');
  Alcotest.(check int) "same edges" (Cssg.n_edges g) (Cssg.n_edges g')

let test_control_points_converta () =
  (* converta's redundant version is activation-limited (its CSSG has a
     single valid edge), so observation points cannot help — but a
     control point on the internal latch opens up the state space and
     recovers most of the coverage. *)
  let c = get_bd "converta" in
  let faults = Fault.universe_input_sa c in
  let before = Engine.run c ~faults in
  let pct r = 100.0 *. float_of_int (Engine.detected r) /. float_of_int (Engine.total r) in
  Alcotest.(check bool) "before is poor" true (pct before < 30.0);
  let y = Option.get (Circuit.find_node c "y") in
  let cp = Dft.insert_control_points c [ y ] in
  Alcotest.(check bool) "validates" true (Circuit.validate cp = Ok ());
  Alcotest.(check int) "one shared tm plus one tv" (Circuit.n_inputs c + 2)
    (Circuit.n_inputs cp);
  let after = Engine.run cp ~faults:(Fault.universe_input_sa cp) in
  Alcotest.(check bool) "after is much better" true (pct after > 60.0)

let test_control_points_behaviour_preserved_when_off () =
  (* With tm at 0 the controlled circuit's CSSG restricted to tm=0,
     tv=const vectors contains the original behaviour: replay a test
     program of the original circuit on the instrumented one. *)
  let c = get_si "vbe6a" in
  let r = Engine.run c ~faults:(Fault.universe_output_sa c) in
  let x = Option.get (Circuit.find_node c "x") in
  let cp = Dft.insert_control_points c [ x ] in
  let gcp = Explicit.build cp in
  let program = Tester.of_result r in
  List.iter
    (fun burst ->
      let rec follow i steps =
        match steps with
        | [] -> ()
        | step :: rest -> (
          (* original vector extended with tm=0 and tv=<reset value> *)
          let tv0 =
            (Option.get (Circuit.initial cp)).((Circuit.inputs cp).(Circuit.n_inputs cp - 1))
          in
          let v =
            Array.append step.Tester.inputs [| false; tv0 |]
          in
          match Cssg.apply gcp i v with
          | Some j ->
            (* outputs agree with the original expectation *)
            let outs = Circuit.output_values cp (Cssg.state gcp j) in
            Alcotest.(check (array bool)) "same outputs" step.Tester.expected outs;
            follow j rest
          | None -> Alcotest.fail "tm=0 edge missing in instrumented CSSG")
      in
      follow (List.hd (Cssg.initial gcp)) burst.Tester.steps)
    program.Tester.bursts

(* --- delay faults ------------------------------------------------------------ *)

let test_delay_universe () =
  let c = Figures.celem_handshake () in
  Alcotest.(check int) "2 per gate" (2 * Circuit.n_gates c)
    (List.length (Delay_fault.universe c))

let test_delay_celem () =
  (* A slow-to-rise C-element is caught by requesting and watching the
     acknowledge fail to arrive. *)
  let c = Figures.celem_handshake () in
  let g = Explicit.build c in
  let cel = Option.get (Circuit.find_node c "c") in
  (match Delay_fault.find_test g { Delay_fault.gate = cel; slow_to = true } with
  | Some seq ->
    Alcotest.(check bool) "replays" true
      (Delay_fault.check g { Delay_fault.gate = cel; slow_to = true } seq)
  | None -> Alcotest.fail "slow-to-rise C-element must be testable");
  let r = Delay_fault.run g in
  Alcotest.(check int) "all delay faults covered"
    (Delay_fault.total r) (Delay_fault.detected r)

let test_delay_untestable_on_oscillator () =
  (* fig1b has no valid vectors: no delay fault can be exercised. *)
  let c = Figures.fig1b () in
  let g = Explicit.build c in
  let r = Delay_fault.run g in
  Alcotest.(check int) "nothing detectable" 0 (Delay_fault.detected r)

let test_delay_suite_coverage () =
  (* On the SI suite, gross delay coverage should be high: the circuits
     are hazard-free and every gate transition is acknowledged. *)
  List.iter
    (fun nm ->
      let c = get_si nm in
      let g = Explicit.build c in
      let r = Delay_fault.run g in
      let pct =
        100.0 *. float_of_int (Delay_fault.detected r)
        /. float_of_int (Delay_fault.total r)
      in
      Alcotest.(check bool) (nm ^ " delay coverage") true (pct >= 75.0))
    [ "rcv-setup"; "hazard"; "chu150"; "ebergen" ]

(* --- composition -------------------------------------------------------------- *)

let rename name c =
  let text = Parser.to_string c in
  let body =
    String.sub text (String.index text '\n')
      (String.length text - String.index text '\n')
  in
  match Parser.parse_string ("circuit " ^ name ^ body) with
  | Ok c -> c
  | Error m -> Alcotest.fail m

let test_compose_pipeline () =
  let s1 = rename "s1" (get_si "ebergen") in
  let s2 = rename "s2" (get_si "ebergen") in
  match
    Compose.pair ~name:"pipe" ~connect_ab:[ ("ro", "ri") ]
      ~connect_ba:[ ("ai", "ao") ] s1 s2
  with
  | Error m -> Alcotest.fail m
  | Ok pipe ->
    Alcotest.(check bool) "validates" true (Circuit.validate pipe = Ok ());
    (* free inputs: s1.ri and s2.ao *)
    Alcotest.(check int) "2 free inputs" 2 (Circuit.n_inputs pipe);
    Alcotest.(check int) "10 gates" 10 (Circuit.n_gates pipe);
    let g = Explicit.build pipe in
    Alcotest.(check bool) "live graph" true (Cssg.n_edges g > 0);
    let r = Engine.run ~cssg:g pipe ~faults:(Fault.universe_input_sa pipe) in
    Alcotest.(check bool) "high coverage" true (Engine.coverage_pct r >= 90.0)

let test_compose_errors () =
  let s1 = rename "s1" (get_si "ebergen") in
  let s2 = rename "s2" (get_si "ebergen") in
  let check_err r frag =
    match r with
    | Ok _ -> Alcotest.failf "expected error mentioning %s" frag
    | Error m -> Alcotest.(check bool) (frag ^ " in " ^ m) true (contains m frag)
  in
  check_err
    (Compose.pair ~name:"x" ~connect_ab:[ ("nosuch", "ri") ] s1 s2)
    "unknown signal";
  check_err
    (Compose.pair ~name:"x" ~connect_ab:[ ("ro", "nosuch") ] s1 s2)
    "unknown input";
  check_err (Compose.pair ~name:"x" s1 s1) "distinct names";
  (* ri is an input of s1, not an output *)
  check_err
    (Compose.pair ~name:"x" ~connect_ab:[ ("ri", "ri") ] s1 s2)
    "is an input"

let test_compose_three_stages () =
  (* Nesting composition: a three-stage Muller pipeline.  The middle
     handshakes disappear from the tester's view, yet the composite
     remains fully analysable and highly testable. *)
  let s1 = rename "s1" (get_si "ebergen") in
  let s2 = rename "s2" (get_si "ebergen") in
  let s3 = rename "s3" (get_si "ebergen") in
  let pipe2 =
    match
      Compose.pair ~name:"p2" ~connect_ab:[ ("ro", "ri") ]
        ~connect_ba:[ ("ai", "ao") ] s1 s2
    with
    | Ok c -> c
    | Error m -> Alcotest.fail m
  in
  match
    Compose.pair ~name:"p3"
      ~connect_ab:[ ("s2.ro", "ri") ]
      ~connect_ba:[ ("ai", "s2.ao") ]
      pipe2 s3
  with
  | Error m -> Alcotest.fail m
  | Ok pipe3 ->
    Alcotest.(check int) "15 gates" 15 (Circuit.n_gates pipe3);
    Alcotest.(check int) "2 free inputs" 2 (Circuit.n_inputs pipe3);
    let g = Explicit.build pipe3 in
    Alcotest.(check bool) "bigger graph than one stage" true
      (Cssg.n_states g > 6);
    let r = Engine.run ~cssg:g pipe3 ~faults:(Fault.universe_output_sa pipe3) in
    Alcotest.(check bool) "high coverage" true (Engine.coverage_pct r >= 90.0)

let test_compose_series_only () =
  (* Series connection without feedback also works; the dangling
     handshake inputs stay with the tester. *)
  let s1 = rename "u1" (get_si "rcv-setup") in
  let s2 = rename "u2" (get_si "rcv-setup") in
  match Compose.pair ~name:"chain" ~connect_ab:[ ("set", "go") ] s1 s2 with
  | Error m -> Alcotest.fail m
  | Ok chain ->
    Alcotest.(check int) "1 free input" 1 (Circuit.n_inputs chain);
    let g = Explicit.build chain in
    Alcotest.(check bool) "alive" true (Cssg.n_edges g > 0)

(* --- symbolic justification & variable orders -------------------------------- *)

let test_symbolic_justification_same_coverage () =
  List.iter
    (fun make_c ->
      let c = make_c () in
      let faults = Fault.universe_input_sa c in
      let run engine =
        Engine.run
          ~config:{ Engine.default_config with enable_random = false; engine }
          c ~faults
      in
      let base = run Engine.Explicit in
      List.iter
        (fun engine ->
          let r = run engine in
          Alcotest.(check int) "same coverage"
            (Engine.detected base) (Engine.detected r);
          (* and the sequences it finds must replay *)
          List.iter
            (fun o ->
              match o.Testset.status with
              | Testset.Detected { sequence; phase = Testset.Three_phase } ->
                Alcotest.(check bool) "replays" true
                  (Detect.check_exact r.Engine.cssg o.Testset.fault sequence)
              | _ -> ())
            r.Engine.outcomes)
        [ Engine.Bdd; Engine.Sat ])
    [ Figures.celem_handshake; Figures.mutex_latch; (fun () -> get_si "vbe6a") ]

let test_node_order_invariance () =
  (* Any permutation must produce the same CSSG. *)
  let c = get_si "dff" in
  let n = Circuit.n_nodes c in
  let reversed = Array.init n (fun i -> n - 1 - i) in
  let a = Satg_sg.Symbolic.to_cssg (Satg_sg.Symbolic.build c) in
  let b = Satg_sg.Symbolic.to_cssg (Satg_sg.Symbolic.build ~node_order:reversed c) in
  Alcotest.(check int) "states" (Cssg.n_states a) (Cssg.n_states b);
  Alcotest.(check int) "edges" (Cssg.n_edges a) (Cssg.n_edges b)

let test_node_order_validation () =
  let c = get_si "dff" in
  let n = Circuit.n_nodes c in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Symbolic.build: node_order is not a permutation")
    (fun () ->
      ignore (Satg_sg.Symbolic.build ~node_order:(Array.make n 0) c));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Symbolic.build: node_order length mismatch")
    (fun () -> ignore (Satg_sg.Symbolic.build ~node_order:[| 0 |] c))

let suites =
  [
    ( "ext.tester",
      [ Alcotest.test_case "program" `Quick test_tester_program ] );
    ( "ext.dot",
      [
        Alcotest.test_case "circuit" `Quick test_dot_circuit;
        Alcotest.test_case "cssg" `Quick test_dot_cssg;
        Alcotest.test_case "stg" `Quick test_dot_stg;
      ] );
    ( "ext.dft",
      [
        Alcotest.test_case "observation points help" `Slow test_dft_observation_points;
        Alcotest.test_case "noop when full" `Quick test_dft_noop_when_full;
        Alcotest.test_case "behaviour preserved" `Quick test_dft_preserves_behaviour;
        Alcotest.test_case "control points (converta)" `Slow
          test_control_points_converta;
        Alcotest.test_case "control points off = original" `Quick
          test_control_points_behaviour_preserved_when_off;
      ] );
    ( "ext.delay",
      [
        Alcotest.test_case "universe" `Quick test_delay_universe;
        Alcotest.test_case "celem" `Quick test_delay_celem;
        Alcotest.test_case "oscillator" `Quick test_delay_untestable_on_oscillator;
        Alcotest.test_case "suite coverage" `Slow test_delay_suite_coverage;
      ] );
    ( "ext.compose",
      [
        Alcotest.test_case "pipeline" `Quick test_compose_pipeline;
        Alcotest.test_case "errors" `Quick test_compose_errors;
        Alcotest.test_case "three stages" `Slow test_compose_three_stages;
        Alcotest.test_case "series" `Quick test_compose_series_only;
      ] );
    ( "ext.symbolic",
      [
        Alcotest.test_case "symbolic justification" `Slow
          test_symbolic_justification_same_coverage;
        Alcotest.test_case "node order invariance" `Quick
          test_node_order_invariance;
        Alcotest.test_case "node order validation" `Quick
          test_node_order_validation;
      ] );
  ]
