(* Tests for the netlist substrate: builder, parser, gate semantics,
   structural analysis and the fault machinery. *)

open Satg_logic
open Satg_circuit
open Satg_fault
open Satg_bench

let build_and2 () =
  let b = Circuit.Builder.create "and2" in
  let a = Circuit.Builder.add_input b "a" in
  let c = Circuit.Builder.add_input b "c" in
  let z = Circuit.Builder.add_gate b ~name:"z" Gatefunc.And [ a; c ] in
  Circuit.Builder.mark_output b z;
  Circuit.Builder.finalize b

let test_builder_basic () =
  let c = build_and2 () in
  Alcotest.(check int) "inputs" 2 (Circuit.n_inputs c);
  Alcotest.(check int) "gates (2 buffers + and)" 3 (Circuit.n_gates c);
  Alcotest.(check int) "nodes" 5 (Circuit.n_nodes c);
  Alcotest.(check bool) "validates" true (Circuit.validate c = Ok ());
  (match Circuit.find_node c "z" with
  | Some _ -> ()
  | None -> Alcotest.fail "z not found");
  (* find_node on an input name returns the buffer, not the env node *)
  match Circuit.find_node c "a" with
  | Some id -> Alcotest.(check bool) "buffer is a gate" false (Circuit.is_env c id)
  | None -> Alcotest.fail "a not found"

let test_builder_errors () =
  let b = Circuit.Builder.create "dup" in
  let _ = Circuit.Builder.add_input b "a" in
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Builder: duplicate node name \"a$env\"") (fun () ->
      ignore (Circuit.Builder.add_input b "a"));
  let b2 = Circuit.Builder.create "undefined" in
  let _ = Circuit.Builder.declare_gate b2 ~name:"g" in
  Alcotest.check_raises "undefined gate"
    (Invalid_argument "Builder: gate \"g\" never defined") (fun () ->
      ignore (Circuit.Builder.finalize b2))

let test_semantics () =
  let c = build_and2 () in
  let z = Option.get (Circuit.find_node c "z") in
  (* State: a$env=1, a=0 (buffer lags), c$env=1, c=1, z=0. *)
  let s = Array.make 5 false in
  let a_env = (Circuit.inputs c).(0) and c_env = (Circuit.inputs c).(1) in
  let a_buf = Circuit.buffer_of_input c 0 and c_buf = Circuit.buffer_of_input c 1 in
  s.(a_env) <- true;
  s.(c_env) <- true;
  s.(c_buf) <- true;
  Alcotest.(check bool) "buffer a excited" true (Circuit.gate_excited c s a_buf);
  Alcotest.(check bool) "z not excited (a=0)" false (Circuit.gate_excited c s z);
  let s' = Circuit.fire c s a_buf in
  Alcotest.(check bool) "a fired" true s'.(a_buf);
  Alcotest.(check bool) "now z excited" true (Circuit.gate_excited c s' z);
  Alcotest.(check bool) "original unchanged" false s.(a_buf);
  Alcotest.(check (list int))
    "excited list" [ z ]
    (Circuit.excited_gates c s');
  Alcotest.(check bool) "not stable" false (Circuit.is_stable c s');
  let s'' = Circuit.fire c s' z in
  Alcotest.(check bool) "stable after z" true (Circuit.is_stable c s'')

let test_gatefunc_bool () =
  let t = true and f = false in
  Alcotest.(check bool) "nand" true (Gatefunc.eval_bool Gatefunc.Nand ~self:f [| t; f |]);
  Alcotest.(check bool) "xor3" true (Gatefunc.eval_bool Gatefunc.Xor ~self:f [| t; t; t |]);
  Alcotest.(check bool) "xnor" true (Gatefunc.eval_bool Gatefunc.Xnor ~self:f [| t; t |]);
  Alcotest.(check bool) "mux sel1" true (Gatefunc.eval_bool Gatefunc.Mux ~self:f [| t; t; f |]);
  Alcotest.(check bool) "mux sel0" false (Gatefunc.eval_bool Gatefunc.Mux ~self:f [| f; t; f |]);
  (* C-element: rise on all-1, fall on all-0, hold otherwise *)
  Alcotest.(check bool) "c rise" true (Gatefunc.eval_bool Gatefunc.Celem ~self:f [| t; t |]);
  Alcotest.(check bool) "c hold1" true (Gatefunc.eval_bool Gatefunc.Celem ~self:t [| t; f |]);
  Alcotest.(check bool) "c hold0" false (Gatefunc.eval_bool Gatefunc.Celem ~self:f [| t; f |]);
  Alcotest.(check bool) "c fall" false (Gatefunc.eval_bool Gatefunc.Celem ~self:t [| f; f |])

let tern = Alcotest.testable Ternary.pp Ternary.equal

let test_gatefunc_ternary () =
  let open Ternary in
  Alcotest.check tern "and absorbing" Zero
    (Gatefunc.eval_ternary Gatefunc.And ~self:Zero [| Zero; Phi |]);
  Alcotest.check tern "c hold vs phi" One
    (Gatefunc.eval_ternary Gatefunc.Celem ~self:One [| Phi; One |]);
  Alcotest.check tern "c uncertain fall" Phi
    (Gatefunc.eval_ternary Gatefunc.Celem ~self:One [| Phi; Zero |]);
  Alcotest.check tern "mux phi sel, equal branches" One
    (Gatefunc.eval_ternary Gatefunc.Mux ~self:Zero [| Phi; One; One |]);
  Alcotest.check tern "mux phi sel, diff branches" Phi
    (Gatefunc.eval_ternary Gatefunc.Mux ~self:Zero [| Phi; One; Zero |])

let test_parser_roundtrip () =
  List.iter
    (fun make ->
      let c = make () in
      let text = Parser.to_string c in
      match Parser.parse_string text with
      | Error m -> Alcotest.fail ("reparse failed: " ^ m)
      | Ok c' ->
        Alcotest.(check string) "same name" (Circuit.name c) (Circuit.name c');
        Alcotest.(check int) "same nodes" (Circuit.n_nodes c) (Circuit.n_nodes c');
        Alcotest.(check string)
          "same text" text (Parser.to_string c'))
    [ Figures.fig1a; Figures.fig1b; Figures.celem_handshake; Figures.mutex_latch ]

let test_parser_errors () =
  let check_err text frag =
    match Parser.parse_string text with
    | Ok _ -> Alcotest.failf "expected parse error containing %S" frag
    | Error m ->
      let contains s sub =
        let n = String.length sub in
        let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) (Printf.sprintf "%S in %S" frag m) true (contains m frag)
  in
  check_err "input A\nend" "circuit";
  check_err "circuit x\ngate z FROB a\nend" "unknown";
  check_err "circuit x\ninput A\ngate z AND A nosuch\nend" "unknown signal";
  check_err "circuit x\ninput A\nsop z ( A ) 11\nend" "width";
  check_err "circuit x\ninput A\ngate z NOT A\ninitial A=0\nend" "not assigned"

(* The linter must report every problem, with line numbers, instead of
   stopping at the first like the parser. *)
let test_lint_collects_all () =
  let text =
    {|circuit bad
input A B
gate A NOT B
gate g1 NOT A B
gate g2 FROB A
gate g3 AND A nosuch
sop g4 ( A B ) 11 1
output g1 missing
initial A=0 B=1 g1=1 g1=0 phantom=1
end|}
  in
  let diags = Parser.lint_string text in
  let has line frag =
    List.exists
      (fun d ->
        d.Parser.line = line
        &&
        let n = String.length frag in
        let rec at i =
          i + n <= String.length d.Parser.msg
          && (String.sub d.Parser.msg i n = frag || at (i + 1))
        in
        at 0)
      diags
  in
  let expect line frag =
    Alcotest.(check bool)
      (Printf.sprintf "line %d: %s" line frag)
      true (has line frag)
  in
  expect 3 "duplicate net \"A\"";
  expect 4 "does not take 2 fanin";
  expect 5 "unknown function \"FROB\"";
  expect 6 "unknown signal \"nosuch\"";
  expect 7 "width 1, expected 2";
  expect 8 "unknown signal \"missing\"";
  expect 9 "assigned twice";
  expect 9 "unknown signal \"phantom\"";
  (* sorted by line, and nothing spurious dragged in *)
  let lines = List.map (fun d -> d.Parser.line) diags in
  Alcotest.(check (list int)) "sorted by line" (List.sort compare lines) lines;
  Alcotest.(check bool) "several problems, one pass" true
    (List.length diags >= 8)

let test_lint_clean_and_file_level () =
  Alcotest.(check (list int)) "clean netlist lints clean" []
    (List.map
       (fun d -> d.Parser.line)
       (Parser.lint_string (Parser.to_string (Figures.fig1a ()))));
  match Parser.lint_string "input A\ngate z NOT A\nend" with
  | [] -> Alcotest.fail "missing 'circuit' must be reported"
  | d :: _ ->
    Alcotest.(check int) "file-level diagnostics use line 0" 0 d.Parser.line

(* A CRLF-encoded netlist must parse identically to its LF twin: the
   tokenizer used to leave '\r' glued to each line's last token, so
   every trailing signal name came out as "name\r" and the parse died
   with a baffling [unknown signal]. *)
let test_parser_crlf () =
  let lf = "circuit crlf\ninput A B\ngate z AND A B\noutput z\nend\n" in
  let crlf = String.concat "\r\n" (String.split_on_char '\n' lf) in
  match (Parser.parse_string lf, Parser.parse_string crlf) with
  | Ok c, Ok c' ->
    Alcotest.(check string) "same name" (Circuit.name c) (Circuit.name c');
    Alcotest.(check int) "same nodes" (Circuit.n_nodes c) (Circuit.n_nodes c');
    Alcotest.(check string)
      "same text" (Parser.to_string c) (Parser.to_string c')
  | Error m, _ -> Alcotest.fail ("LF parse failed: " ^ m)
  | _, Error m -> Alcotest.fail ("CRLF parse failed: " ^ m)

let test_initial_stability_check () =
  (* fig1b's initial is stable; flipping d makes it unstable. *)
  let text =
    {|circuit bad
input A
gate c NAND A d
gate d BUF c
initial A=0 c=1 d=0
end|}
  in
  match Parser.parse_string text with
  | Ok _ -> Alcotest.fail "expected instability error"
  | Error m ->
    Alcotest.(check bool) "mentions stability" true
      (String.length m > 0)

let test_structure () =
  let c = Figures.fig1b () in
  let cyclic = Structure.cyclic_gates c in
  Alcotest.(check int) "two gates in the loop" 2 (List.length cyclic);
  let fb = Structure.feedback_edges c in
  Alcotest.(check bool) "at least one cut" true (List.length fb >= 1);
  let lv = Structure.levels c ~break:fb in
  Array.iter (fun l -> Alcotest.(check bool) "level assigned" true (l >= 0)) lv;
  (* A purely combinational circuit has no cycles. *)
  let c2 = build_and2 () in
  Alcotest.(check (list int)) "no cycles" [] (Structure.cyclic_gates c2);
  Alcotest.(check (list pass)) "no feedback" []
    (List.map (fun (_ : Structure.edge) -> ()) (Structure.feedback_edges c2));
  Alcotest.(check int) "longest path" 2 (Structure.longest_path c2)

let test_self_loop_structure () =
  (* A SOP latch reading its own output is a self-loop. *)
  let c = Figures.fig1a () in
  let y = Option.get (Circuit.find_node c "y") in
  Alcotest.(check bool) "y cyclic" true (List.mem y (Structure.cyclic_gates c))

let test_fault_universes () =
  let c = Figures.celem_handshake () in
  (* Gates: 2 buffers (1 pin each) + CELEM (2 pins) = 4 pins, 8 input
     faults; 3 gates, 6 output faults. *)
  Alcotest.(check int) "input universe" 8 (List.length (Fault.universe_input_sa c));
  Alcotest.(check int) "output universe" 6 (List.length (Fault.universe_output_sa c));
  (* Buffer input faults are equivalent to the buffer output faults, so
     collapsing the union drops one fault per buffer pin polarity. *)
  let union = Fault.universe_input_sa c @ Fault.universe_output_sa c in
  let collapsed = Fault.collapse c union in
  Alcotest.(check int) "union collapses" (List.length union - 4)
    (List.length collapsed)

let test_fault_injection () =
  let c = Figures.celem_handshake () in
  let cel = Option.get (Circuit.find_node c "c") in
  (* Output stuck-at-1 on the C-element. *)
  let f = Fault.Output_sa { gate = cel; stuck = true } in
  let fc = Fault.inject c f in
  Alcotest.(check int) "same node count" (Circuit.n_nodes c) (Circuit.n_nodes fc);
  let s = Array.make (Circuit.n_nodes fc) false in
  Alcotest.(check bool) "stuck gate excited at 0" true (Circuit.gate_excited fc s cel);
  let s' = Circuit.fire fc s cel in
  Alcotest.(check bool) "fires to 1" true s'.(cel);
  (* Input stuck-at-0 on pin 1 adds a const node. *)
  let f2 = Fault.Input_sa { gate = cel; pin = 1; stuck = false } in
  let fc2 = Fault.inject c f2 in
  Alcotest.(check int) "one extra node" (Circuit.n_nodes c + 1) (Circuit.n_nodes fc2);
  Alcotest.(check bool) "initial dropped" true (Circuit.initial fc2 = None);
  (* With pin 1 stuck at 0 the C-element can never rise from 0. *)
  let s = Array.make (Circuit.n_nodes fc2) false in
  let s = Circuit.apply_input_vector fc2 s [| true; true |] in
  let s = Circuit.fire fc2 s (Circuit.buffer_of_input fc2 0) in
  let s = Circuit.fire fc2 s (Circuit.buffer_of_input fc2 1) in
  Alcotest.(check bool) "celem stays low" false (Circuit.gate_excited fc2 s cel)

let test_fault_names () =
  let c = Figures.fig1b () in
  let d = Option.get (Circuit.find_node c "d") in
  Alcotest.(check string) "output fault" "d/sa1"
    (Fault.to_string c (Fault.Output_sa { gate = d; stuck = true }));
  Alcotest.(check string) "input fault" "d.pin0(c)/sa0"
    (Fault.to_string c (Fault.Input_sa { gate = d; pin = 0; stuck = false }))

let suites =
  [
    ( "circuit",
      [
        Alcotest.test_case "builder basic" `Quick test_builder_basic;
        Alcotest.test_case "builder errors" `Quick test_builder_errors;
        Alcotest.test_case "fire/excited semantics" `Quick test_semantics;
        Alcotest.test_case "gatefunc bool" `Quick test_gatefunc_bool;
        Alcotest.test_case "gatefunc ternary" `Quick test_gatefunc_ternary;
        Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
        Alcotest.test_case "parser errors" `Quick test_parser_errors;
        Alcotest.test_case "lint collects all" `Quick test_lint_collects_all;
        Alcotest.test_case "lint clean + file-level" `Quick
          test_lint_clean_and_file_level;
        Alcotest.test_case "parser crlf" `Quick test_parser_crlf;
        Alcotest.test_case "initial stability" `Quick test_initial_stability_check;
        Alcotest.test_case "structure" `Quick test_structure;
        Alcotest.test_case "self loop" `Quick test_self_loop_structure;
      ] );
    ( "fault",
      [
        Alcotest.test_case "universes" `Quick test_fault_universes;
        Alcotest.test_case "injection" `Quick test_fault_injection;
        Alcotest.test_case "names" `Quick test_fault_names;
      ] );
  ]
