let () =
  let write path c =
    let oc = open_out path in
    output_string oc (Satg_circuit.Parser.to_string c);
    close_out oc
  in
  write "examples/netlists/celem_handshake.cct" (Satg_bench.Figures.celem_handshake ());
  write "examples/netlists/mutex_latch.cct" (Satg_bench.Figures.mutex_latch ())
