(* Experiment driver: regenerates every table and figure of the paper
   plus the ablations listed in DESIGN.md.

     dune exec bin/experiments.exe -- table1
     dune exec bin/experiments.exe -- table2
     dune exec bin/experiments.exe -- baseline
     dune exec bin/experiments.exe -- ablation-random
     dune exec bin/experiments.exe -- ablation-k
     dune exec bin/experiments.exe -- figures
     dune exec bin/experiments.exe -- delay       (extension: gross delay faults)
     dune exec bin/experiments.exe -- dft         (extension: observation points)
     dune exec bin/experiments.exe -- all          (everything above) *)

open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_core
open Satg_bench
open Satg_report

let printf = Printf.printf

(* --csv anywhere on the command line switches table rendering. *)
let csv_mode =
  Array.exists (fun a -> a = "--csv") Sys.argv

let render table =
  if csv_mode then Table.to_csv table else Table.to_ascii table

type bench_row = {
  name : string;
  out_given : int;  (* universe size before structural collapsing *)
  out_tot : int;  (* representatives actually targeted *)
  out_cov : int;
  in_given : int;
  in_tot : int;
  in_cov : int;
  rnd : int;
  three_ph : int;
  fsim : int;
  aborted : int;
  cpu : float;
}

let run_benchmark ?(config = Engine.default_config) name circuit =
  let t0 = Sys.time () in
  let g = Explicit.build ?k:config.Engine.k circuit in
  let out_r = Engine.run ~config ~cssg:g circuit ~faults:(Fault.universe_output_sa circuit) in
  let in_r = Engine.run ~config ~cssg:g circuit ~faults:(Fault.universe_input_sa circuit) in
  {
    name;
    out_given = Engine.total out_r;
    out_tot = out_r.Engine.faults_searched;
    out_cov = Engine.detected out_r;
    in_given = Engine.total in_r;
    in_tot = in_r.Engine.faults_searched;
    in_cov = Engine.detected in_r;
    rnd = Engine.detected_by in_r Testset.Random + Engine.detected_by out_r Testset.Random;
    three_ph =
      Engine.detected_by in_r Testset.Three_phase
      + Engine.detected_by out_r Testset.Three_phase;
    fsim =
      Engine.detected_by in_r Testset.Fault_simulation
      + Engine.detected_by out_r Testset.Fault_simulation;
    aborted = Engine.aborted in_r + Engine.aborted out_r;
    cpu = Sys.time () -. t0;
  }

let family_table title synth =
  (* "giv/tot" = raw universe size / representatives after structural
     fault collapsing (coverage is measured over the representatives) *)
  let table =
    Table.create
      ~header:
        [ "example"; "out giv/tot"; "out cov"; "in giv/tot"; "in cov"; "rnd";
          "3-ph"; "sim"; "abort"; "CPU(s)" ]
  in
  let rows =
    List.filter_map
      (fun e ->
        match synth e with
        | Error m ->
          printf "!! %s: synthesis failed: %s\n" e.Suite.name m;
          None
        | Ok c -> Some (run_benchmark e.Suite.name c))
      (Suite.all ())
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          Printf.sprintf "%d/%d" r.out_given r.out_tot;
          Table.cell_int r.out_cov;
          Printf.sprintf "%d/%d" r.in_given r.in_tot;
          Table.cell_int r.in_cov;
          Table.cell_int r.rnd; Table.cell_int r.three_ph;
          Table.cell_int r.fsim; Table.cell_aborted r.aborted;
          Table.cell_float r.cpu;
        ])
    rows;
  Table.add_separator table;
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let pct num den =
    if den = 0 then "n/a"
    else Table.cell_pct (100.0 *. float_of_int num /. float_of_int den)
  in
  Table.add_row table
    [
      "Total FC";
      Printf.sprintf "%d/%d"
        (sum (fun r -> r.out_given))
        (sum (fun r -> r.out_tot));
      pct (sum (fun r -> r.out_cov)) (sum (fun r -> r.out_given));
      Printf.sprintf "%d/%d"
        (sum (fun r -> r.in_given))
        (sum (fun r -> r.in_tot));
      pct (sum (fun r -> r.in_cov)) (sum (fun r -> r.in_given));
      Table.cell_int (sum (fun r -> r.rnd));
      Table.cell_int (sum (fun r -> r.three_ph));
      Table.cell_int (sum (fun r -> r.fsim));
      Table.cell_aborted (sum (fun r -> r.aborted));
      Table.cell_float (List.fold_left (fun acc r -> acc +. r.cpu) 0.0 rows);
    ];
  printf "\n== %s ==\n\n%s\n" title (render table)

let table1 () =
  family_table
    "Table 1: speed-independent circuits (complex-gate synthesis)"
    Suite.speed_independent

let table2 () =
  family_table
    "Table 2: hazard-free bounded-delay circuits (all-primes, decomposed)"
    Suite.bounded_delay

(* A3: the Banerjee-style synchronous baseline vs our engine (§6.1). *)
let baseline () =
  let table =
    Table.create
      ~header:
        [ "example"; "faults"; "ours"; "claimed"; "validated"; "truly valid";
          "optimistic" ]
  in
  List.iter
    (fun e ->
      match Suite.speed_independent e with
      | Error _ -> ()
      | Ok c ->
        let g = Explicit.build c in
        let faults = Fault.universe_input_sa c in
        let ours = Engine.run ~cssg:g c ~faults in
        let base = Baseline.run c ~cssg:g ~faults in
        let claimed = Baseline.claimed base in
        let truly = Baseline.truly_detected base in
        Table.add_row table
          [
            e.Suite.name;
            Table.cell_int (List.length faults);
            Table.cell_int (Engine.detected ours);
            Table.cell_int claimed;
            Table.cell_int (Baseline.validated base);
            Table.cell_int truly;
            Table.cell_int (claimed - truly);
          ])
    (Suite.all ());
  printf
    "\n== Baseline (virtual flip-flop synchronous ATPG, paper %s6.1) ==\n\n%s\n"
    "\xc2\xa7" (render table);
  printf
    "'claimed' counts tests found on the synchronous model; 'validated'\n\
     those surviving the unit-delay replay Banerjee et al. use (it sees\n\
     oscillation but only one interleaving); 'truly valid' those the exact\n\
     unbounded-delay model confirms.  'optimistic' = claimed - truly valid.\n"

(* A1: how much does random TPG buy, and at what cost? *)
let ablation_random () =
  let table =
    Table.create
      ~header:
        [ "example"; "faults"; "rnd only (1x3)"; "rnd only (8x24)";
          "full, no rnd"; "full CPU(s)"; "no-rnd CPU(s)" ]
  in
  List.iter
    (fun e ->
      match Suite.speed_independent e with
      | Error _ -> ()
      | Ok c ->
        let g = Explicit.build c in
        let faults = Fault.universe_input_sa c in
        let rnd_only cfg =
          let detected, _ = Random_tpg.run ~config:cfg g ~faults in
          List.length detected
        in
        let small = Random_tpg.default_config in
        let big = { Random_tpg.walks = 8; walk_length = 24; seed = 0x5eed } in
        let t0 = Sys.time () in
        let full = Engine.run ~cssg:g c ~faults in
        let t_full = Sys.time () -. t0 in
        let t1 = Sys.time () in
        let nornd =
          Engine.run
            ~config:{ Engine.default_config with enable_random = false }
            ~cssg:g c ~faults
        in
        let t_nornd = Sys.time () -. t1 in
        Table.add_row table
          [
            e.Suite.name;
            Table.cell_int (List.length faults);
            Table.cell_int (rnd_only small);
            Table.cell_int (rnd_only big);
            Table.cell_int (Engine.detected nornd);
            Table.cell_float t_full;
            Table.cell_float t_nornd;
          ];
        ignore full)
    (Suite.all ());
  printf "\n== Ablation A1: random TPG contribution (paper %s5.4) ==\n\n%s\n"
    "\xc2\xa7" (render table)

(* A2: sensitivity to the test-cycle budget k. *)
let ablation_k () =
  let table =
    Table.create
      ~header:[ "example"; "k"; "states"; "edges"; "in cov"; "in tot" ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e -> (
        match Suite.speed_independent e with
        | Error _ -> ()
        | Ok c ->
          List.iter
            (fun k ->
              let g = Explicit.build ~exploration:`Pure ~k c in
              let r =
                Engine.run
                  ~config:{ Engine.default_config with k = Some k }
                  ~cssg:g c ~faults:(Fault.universe_input_sa c)
              in
              Table.add_row table
                [
                  e.Suite.name; Table.cell_int k;
                  Table.cell_int (Cssg.n_states g);
                  Table.cell_int (Cssg.n_edges g);
                  Table.cell_int (Engine.detected r);
                  Table.cell_int (Engine.total r);
                ])
            [ 1; 2; 3; 4; 6; 8; Satg_circuit.Structure.default_k c ];
          Table.add_separator table))
    [ "ebergen"; "vbe10b"; "master-read" ];
  printf "\n== Ablation A2: test-cycle budget k (paper %s4.1) ==\n\n%s\n"
    "\xc2\xa7" (render table)

(* F1/F2: the paper's illustrative figures, as machine-checked facts. *)
let figures () =
  let open Satg_sim in
  printf "\n== Figure 1(a): non-confluence ==\n";
  let c = Figures.fig1a () in
  let reset = Option.get (Circuit.initial c) in
  (match Async_sim.apply_vector c ~k:64 reset [| true; false |] with
  | Async_sim.Non_confluent finals ->
    printf "vector 10 from reset: NON-CONFLUENT, %d stable outcomes:\n"
      (List.length finals);
    List.iter
      (fun s -> printf "  %s\n" (Circuit.state_to_string c s))
      finals
  | _ -> printf "unexpected outcome\n");
  printf "\n== Figure 1(b): oscillation ==\n";
  let c = Figures.fig1b () in
  let reset = Option.get (Circuit.initial c) in
  (match Async_sim.apply_vector c ~k:64 reset [| true |] with
  | Async_sim.Exceeds_budget ->
    printf "vector 1 from reset: still unstable after 64 firings (oscillates)\n"
  | _ -> printf "unexpected outcome\n");
  printf "\n== Figure 2: TCSG vs CSSG pruning ==\n";
  let c = Figures.mutex_latch () in
  let g = Explicit.build c in
  printf "%s\n" (Format.asprintf "%a" Cssg.pp g);
  printf
    "(note: states reachable only through invalid vectors stay in the graph\n\
     but have no incoming valid edge, exactly as s1 in the paper's figure 2)\n"

(* A4: BDD variable-ordering study (paper %s6: "studying better variable
   ordering strategies in the use of BDDs"). *)
let orderings c =
  let n = Circuit.n_nodes c in
  let creation = Array.init n Fun.id in
  let reversed = Array.init n (fun i -> n - 1 - i) in
  (* all environment nodes first, then buffers, then the other gates *)
  let inputs_first =
    let rank = Array.make n 0 in
    let next = ref 0 in
    let assign i =
      rank.(i) <- !next;
      incr next
    in
    Array.iter assign (Circuit.inputs c);
    Array.iteri (fun k _ -> assign (Circuit.buffer_of_input c k)) (Circuit.inputs c);
    for i = 0 to n - 1 do
      if not (Circuit.is_env c i || Array.exists (fun b -> Circuit.buffer_of_input c b = i) (Array.mapi (fun k _ -> k) (Circuit.inputs c))) then assign i
    done;
    rank
  in
  [ ("creation", creation); ("reversed", reversed); ("inputs-first", inputs_first) ]

let ablation_bdd () =
  let table =
    Table.create ~header:[ "example"; "ordering"; "live BDD nodes"; "states" ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e -> (
        match Suite.speed_independent e with
        | Error _ -> ()
        | Ok c ->
          List.iter
            (fun (label, node_order) ->
              let sym = Symbolic.build ~node_order c in
              Table.add_row table
                [
                  e.Suite.name; label;
                  Table.cell_int (Symbolic.live_nodes sym);
                  Table.cell_int (Symbolic.n_reachable sym);
                ])
            (orderings c);
          (* greedy sifting starting from the default order *)
          let base = Symbolic.build c in
          let sifted = Symbolic.build ~node_order:(Symbolic.sift_order base) c in
          Table.add_row table
            [
              e.Suite.name; "sifted";
              Table.cell_int (Symbolic.live_nodes sifted);
              Table.cell_int (Symbolic.n_reachable sifted);
            ];
          Table.add_separator table))
    [ "ebergen"; "master-read"; "vbe10b"; "mmu" ];
  printf
    "\n== Ablation A4: BDD variable ordering (paper %s6 future work) ==\n\n%s\n"
    "\xc2\xa7" (render table);
  printf
    "'live BDD nodes' counts the retained artefacts (R_I, R_delta,\n\
     reachable set, CSSG relation); all orderings yield the same graph.\n"

(* A5: structural fault collapsing -- classic equivalences shrink the
   universe before ATPG at no coverage cost. *)
let ablation_collapse () =
  let table =
    Table.create
      ~header:
        [ "example"; "full"; "collapsed"; "full cov"; "collapsed cov";
          "full CPU(s)"; "collapsed CPU(s)" ]
  in
  List.iter
    (fun e ->
      match Suite.speed_independent e with
      | Error _ -> ()
      | Ok c ->
        let g = Explicit.build c in
        let full = Fault.universe_input_sa c @ Fault.universe_output_sa c in
        let collapsed = Fault.collapse c full in
        (* the engine now collapses by default; this ablation measures
           the effect itself, so both arms run with collapsing off *)
        let cfg = { Engine.default_config with collapse = false } in
        let t0 = Sys.time () in
        let rf = Engine.run ~config:cfg ~cssg:g c ~faults:full in
        let t_full = Sys.time () -. t0 in
        let t1 = Sys.time () in
        let rc = Engine.run ~config:cfg ~cssg:g c ~faults:collapsed in
        let t_coll = Sys.time () -. t1 in
        Table.add_row table
          [
            e.Suite.name;
            Table.cell_int (List.length full);
            Table.cell_int (List.length collapsed);
            Table.cell_ratio (Engine.detected rf) (Engine.total rf);
            Table.cell_ratio (Engine.detected rc) (Engine.total rc);
            Table.cell_float t_full;
            Table.cell_float t_coll;
          ])
    (Suite.all ());
  printf
    "\n== Ablation A5: structural fault collapsing ==\n\n%s\n"
    (render table)

(* Extension E3: the paper's %s3 pessimism-buys-robustness claim, made
   executable: replay every generated test burst against concrete
   random bounded delays, on the good chip and on every targeted faulty
   chip. *)
let robustness () =
  let table =
    Table.create
      ~header:
        [ "example"; "seeds"; "good responses"; "fault detections"; "status" ]
  in
  let seeds = [ 3; 17; 29; 101; 443 ] in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e -> (
        match Suite.speed_independent e with
        | Error _ -> ()
        | Ok c ->
          let reset = Option.get (Circuit.initial c) in
          let r = Engine.run c ~faults:(Fault.universe_input_sa c) in
          let program = Tester.of_result r in
          let good_checks = ref 0 and good_ok = ref 0 in
          let fault_checks = ref 0 and fault_ok = ref 0 in
          List.iter
            (fun seed ->
              List.iter
                (fun burst ->
                  let sim =
                    Satg_sim.Timed_sim.create c
                      ~delays:(Satg_sim.Timed_sim.random_delays c ~seed)
                      reset
                  in
                  List.iter
                    (fun step ->
                      incr good_checks;
                      let s = Satg_sim.Timed_sim.apply_vector sim step.Tester.inputs in
                      if Circuit.output_values c s = step.Tester.expected then
                        incr good_ok)
                    burst.Tester.steps;
                  List.iter
                    (fun f ->
                      incr fault_checks;
                      let fc = Fault.inject c f in
                      let fsim =
                        Satg_sim.Timed_sim.create fc
                          ~delays:(Satg_sim.Timed_sim.random_delays fc ~seed)
                          (Fault.initial_faulty_state c f reset)
                      in
                      let mismatch =
                        Array.map
                          (fun o -> (Satg_sim.Timed_sim.state fsim).(o))
                          (Circuit.outputs fc)
                        <> program.Tester.reset_outputs
                        || List.exists
                             (fun step ->
                               let s =
                                 Satg_sim.Timed_sim.apply_vector fsim
                                   step.Tester.inputs
                               in
                               Array.map (fun o -> s.(o)) (Circuit.outputs fc)
                               <> step.Tester.expected)
                             burst.Tester.steps
                      in
                      if mismatch then incr fault_ok)
                    burst.Tester.targets)
                program.Tester.bursts)
            seeds;
          Table.add_row table
            [
              e.Suite.name;
              Table.cell_int (List.length seeds);
              Printf.sprintf "%d/%d" !good_ok !good_checks;
              Printf.sprintf "%d/%d" !fault_ok !fault_checks;
              (if !good_ok = !good_checks && !fault_ok = !fault_checks then "ok"
               else "MISMATCH");
            ]))
    Suite.names;
  printf
    "\n== Extension E3: bounded-delay robustness of the test programs (%s3) ==\n\n%s\n"
    "\xc2\xa7" (render table)

(* Extension E1: the fault-model widening the paper announces as future
   work -- gross gate-delay faults on the speed-independent family. *)
let delay () =
  let table =
    Table.create
      ~header:[ "example"; "delay faults"; "detected"; "abort"; "CPU(s)" ]
  in
  List.iter
    (fun e ->
      match Suite.speed_independent e with
      | Error _ -> ()
      | Ok c ->
        let g = Explicit.build c in
        let r = Delay_fault.run g in
        Table.add_row table
          [
            e.Suite.name;
            Table.cell_int (Delay_fault.total r);
            Table.cell_int (Delay_fault.detected r);
            Table.cell_aborted (Delay_fault.aborted r);
            Table.cell_float r.Delay_fault.cpu_seconds;
          ])
    (Suite.all ());
  printf
    "\n== Extension E1: gross gate-delay faults (paper %s7 future work) ==\n\n%s\n"
    "\xc2\xa7" (render table);
  printf
    "A gross delay fault blocks one transition direction of one gate for\n\
     longer than the test cycle; detection compares the exact set of\n\
     delayed-machine states against the good CSSG trace.\n"

(* Extension E2: observation-point DFT on the redundant family (the
   paper's %s6 remark that low-coverage circuits can be assisted). *)
let dft () =
  let table =
    Table.create
      ~header:
        [ "example"; "faults"; "before"; "points"; "after"; "recovered" ]
  in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some e -> (
        match Suite.bounded_delay e with
        | Error _ -> ()
        | Ok c ->
          let faults = Fault.universe_input_sa c in
          let imp = Dft.evaluate ~budget:3 c ~faults in
          Table.add_row table
            [
              e.Suite.name;
              Table.cell_int imp.Dft.total;
              Table.cell_int imp.Dft.before_detected;
              Table.cell_int (List.length imp.Dft.points);
              Table.cell_int imp.Dft.after_detected;
              Table.cell_int (imp.Dft.after_detected - imp.Dft.before_detected);
            ]))
    [ "converta"; "dff"; "trimos-send"; "vbe6a"; "vbe10b"; "mmu"; "nak-pa" ];
  printf
    "\n== Extension E2: observation points on the redundant family (%s6) ==\n\n%s\n"
    "\xc2\xa7" (render table);
  (* Control points: the activation-limited case. *)
  (match Suite.find "converta" with
  | None -> ()
  | Some e -> (
    match Suite.bounded_delay e with
    | Error _ -> ()
    | Ok c ->
      let pct r =
        100.0 *. float_of_int (Engine.detected r) /. float_of_int (Engine.total r)
      in
      let before = Engine.run c ~faults:(Fault.universe_input_sa c) in
      let y = Option.get (Satg_circuit.Circuit.find_node c "y") in
      let cp = Dft.insert_control_points c [ y ] in
      let after = Engine.run cp ~faults:(Fault.universe_input_sa cp) in
      printf
        "control point on converta's internal latch: %.1f%% of %d faults\n\
         before, %.1f%% of %d after (observation alone recovered nothing:\n\
         its problem is activation, not observability).\n"
        (pct before) (Engine.total before) (pct after) (Engine.total after)))

let all () =
  table1 ();
  table2 ();
  baseline ();
  ablation_random ();
  ablation_k ();
  ablation_bdd ();
  ablation_collapse ();
  figures ();
  delay ();
  dft ();
  robustness ()

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> List.filter (fun a -> a <> "--csv")
  in
  let cmd = match args with c :: _ -> c | [] -> "all" in
  match cmd with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "baseline" -> baseline ()
  | "ablation-random" -> ablation_random ()
  | "ablation-k" -> ablation_k ()
  | "figures" -> figures ()
  | "ablation-bdd" -> ablation_bdd ()
  | "delay" -> delay ()
  | "dft" -> dft ()
  | "robustness" -> robustness ()
  | "ablation-collapse" -> ablation_collapse ()
  | "all" -> all ()
  | other ->
    prerr_endline
      ("unknown experiment " ^ other
     ^ "; expected table1|table2|baseline|ablation-random|ablation-k|ablation-bdd|ablation-collapse|figures|delay|dft|robustness|all");
    exit 1
