(* Command-line front end.

     satg synth   SPEC.g   [--backend complex|decomposed|redundant] [-o OUT]
     satg cssg    FILE.cct [-k N] [--engine explicit|symbolic] [--dump]
     satg atpg    FILE.cct [--universe input|output|both] [-k N] [--no-random]
     satg program FILE.cct emit a synchronous tester program
     satg delay   FILE.cct gross gate-delay fault ATPG
     satg dft     FILE.cct recommend + evaluate observation points
     satg dot     FILE     graphviz (netlist .cct, spec .g, or --cssg)
     satg bench   [NAME]   list bundled benchmark STGs / print one
     satg gen     [FAMILY] generate a scalable benchmark-family instance
     satg check   FILE.cct validate a netlist and print structural stats

   The graph/ATPG commands accept --timeout SEC, --max-states N and
   --max-transitions N resource limits.  Exit codes: 0 = complete run,
   2 = run completed but degraded (truncated CSSG and/or aborted
   faults; printed results are lower bounds), 1 = error. *)

open Cmdliner
open Satg_guard
open Satg_pool
open Satg_circuit
open Satg_fault
open Satg_sg
open Satg_stg
open Satg_core
open Satg_bench
open Satg_inject
open Satg_store

(* [Session] below is the durable store's session (cache keys, journal);
   the pure run/render layer both the CLI and the daemon share lives in
   [Satg_core.Session]. *)
module Core_session = Satg_core.Session
module Proto = Satg_server.Proto

let exit_partial = 2

let read_circuit path =
  match Parser.parse_file path with
  | Ok c -> Ok c
  | Error m -> Error (Printf.sprintf "%s: %s" path m)

let or_die = function
  | Ok v -> v
  | Error m ->
    prerr_endline ("error: " ^ m);
    exit 1

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* SIGINT/SIGTERM drain the run instead of killing it: the handler
   cancels the run guard with [Interrupt], every in-flight search trips
   at its next probe, the wave merge commits (and journals) what is
   already done, and the normal epilogue prints the partial summary and
   exits 2.  Journaled [Interrupt] aborts are re-searched on resume. *)
let drain_on_signal guard =
  let handle =
    Sys.Signal_handle (fun _ -> Guard.cancel guard Guard.Interrupt)
  in
  try
    Sys.set_signal Sys.sigint handle;
    Sys.set_signal Sys.sigterm handle
  with Invalid_argument _ | Sys_error _ -> ()

(* --- synth ---------------------------------------------------------------- *)

let synth_cmd =
  let spec =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC.g")
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("complex", `Complex); ("decomposed", `Decomposed);
                    ("redundant", `Redundant) ])
          `Complex
      & info [ "backend"; "b" ] ~doc:"Synthesis backend.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT")
  in
  let run spec backend output =
    let stg = or_die (Stg.parse_file spec) in
    let circuit =
      or_die
        (match backend with
        | `Complex -> Synth.complex_gate stg
        | `Decomposed -> Synth.decomposed stg
        | `Redundant -> Synth.decomposed ~redundant:true stg)
    in
    let text = Parser.to_string circuit in
    match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%s)\n" path
        (Format.asprintf "%a" Circuit.pp_stats circuit)
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesize an STG specification into a netlist.")
    Term.(const run $ spec $ backend $ output)

(* --- cssg ----------------------------------------------------------------- *)

let k_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k" ] ~docv:"K" ~doc:"Test-cycle budget in gate firings.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget in seconds.  On expiry the run degrades \
           gracefully (truncated state graph, aborted faults) and exits \
           with code 2 instead of failing.")

let max_states_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-states" ] ~docv:"N"
        ~doc:
          "Ceiling on explored states (CSSG construction and per-fault \
           product search).")

let max_transitions_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-transitions" ] ~docv:"N"
        ~doc:"Ceiling on transition expansions, per phase / per fault.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~env:(Cmd.Env.info "SATG_JOBS")
        ~doc:
          "Run CSSG construction and the deterministic fault search on \
           $(docv) worker domains.  Merging is deterministic: the reported \
           coverage partition is identical for every $(docv).  The BDD \
           engine's deterministic phase stays sequential under this flag \
           (single-domain manager).  Default: the sequential pipeline.")

let reorder_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("none", Satg_bdd.Bdd.Reorder_none);
             ("sift", Satg_bdd.Bdd.Reorder_sift) ])
        Satg_bdd.Bdd.Reorder_none
    & info [ "reorder" ]
        ~doc:
          "Dynamic BDD variable reordering for the symbolic engine: \
           $(b,none) (default) or $(b,sift) (Rudell sifting, fired \
           automatically when the node store crosses a growth trigger).  \
           Reordering never changes the computed graph or the coverage \
           partition, only the representation size.")

let cluster_cap_arg =
  Arg.(
    value
    & opt int Symbolic.default_cluster_cap
    & info [ "cluster-cap" ] ~docv:"N"
        ~doc:
          "Node cap per frame-equality cluster in the symbolic engine's \
           partitioned early-quantification schedule.  Smaller caps mean \
           more, smaller conjuncts; the computed graph is identical for \
           every value.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print BDD-manager statistics (node counts, unique-table load, \
           per-op cache hit/miss) after the run.  Only the symbolic engine \
           has a BDD manager to report on.")

let cssg_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let engine =
    Arg.(
      value
      & opt (enum [ ("explicit", `Explicit); ("symbolic", `Symbolic) ]) `Explicit
      & info [ "engine"; "e" ] ~doc:"State-graph engine.")
  in
  let dump =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print every state and edge.")
  in
  let run file engine dump stats k jobs timeout max_states max_transitions
      reorder cluster_cap =
    let c = or_die (read_circuit file) in
    let guard = Guard.create ?timeout ?max_states ?max_transitions () in
    let g, bdd_stats =
      match engine with
      | `Explicit -> (
        match jobs with
        | Some j ->
          ( Pool.with_pool ~jobs:j (fun pool ->
                Explicit.build_par ?k ~guard ~pool c),
            None )
        | None -> (Explicit.build ?k ~guard c, None))
      | `Symbolic ->
        let sym = Symbolic.build ?k ~reorder ~cluster_cap ~guard c in
        let g = Symbolic.to_cssg sym in
        (* sampled after enumeration so the whole build is covered *)
        (g, Some (Symbolic.bdd_stats sym))
    in
    if dump then Format.printf "%a@." Cssg.pp g
    else Format.printf "%a@." Cssg.pp_stats g;
    (if stats then
       match bdd_stats with
       | Some s -> Format.printf "%a@." Satg_bdd.Bdd.pp_stats s
       | None -> Format.printf "bdd stats: n/a (explicit engine)@.");
    if Cssg.truncated g <> None then exit exit_partial
  in
  Cmd.v
    (Cmd.info "cssg"
       ~doc:"Build the Confluent Stable State Graph of a netlist.")
    Term.(
      const run $ file $ engine $ dump $ stats_arg $ k_arg $ jobs_arg
      $ timeout_arg $ max_states_arg $ max_transitions_arg $ reorder_arg
      $ cluster_cap_arg)

(* --- atpg ----------------------------------------------------------------- *)

let universe_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("input", Core_session.Input); ("output", Core_session.Output);
             ("both", Core_session.Both) ])
        Core_session.Input
    & info [ "universe"; "u" ] ~doc:"Fault universe.")

let no_random_arg =
  Arg.(value & flag & info [ "no-random" ] ~doc:"Skip the random TPG phase.")

let seed_arg =
  Arg.(value & opt int Random_tpg.default_config.Random_tpg.seed
       & info [ "seed" ] ~docv:"N")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every outcome.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("explicit", Engine.Explicit); ("bdd", Engine.Bdd);
             ("sat", Engine.Sat) ])
        Engine.Explicit
    & info [ "engine"; "e" ]
        ~doc:
          "Deterministic-phase backend: $(b,explicit) BFS (default), \
           $(b,bdd) symbolic justification, or $(b,sat) CDCL time-frame \
           search.  All three yield identical detected/undetected \
           partitions.")

let no_collapse_arg =
  Arg.(
    value & flag
    & info [ "no-collapse" ]
        ~doc:
          "Target the raw fault universe instead of one representative \
           per structural-equivalence class.")

(* The one-shot run, the daemon and the client all shape the same
   engine configuration from the same flags. *)
let make_config ~k ~no_random ~engine ~no_collapse ~jobs ~timeout ~max_states
    ~max_transitions ~reorder ~cluster_cap ~seed =
  {
    Engine.default_config with
    k;
    enable_random = not no_random;
    engine;
    collapse = not no_collapse;
    jobs;
    timeout;
    max_states;
    max_transitions;
    reorder;
    cluster_cap;
    random = { Random_tpg.default_config with seed };
  }

let atpg_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let universe = universe_arg in
  let no_random = no_random_arg in
  let seed = seed_arg in
  let verbose = verbose_arg in
  let engine = engine_arg in
  let symbolic =
    Arg.(
      value & flag
      & info [ "symbolic" ]
          ~doc:"Deprecated alias for $(b,--engine bdd).")
  in
  let no_collapse = no_collapse_arg in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~env:(Cmd.Env.info "SATG_CACHE_DIR")
          ~doc:
            "Durable session store.  Outcomes are journaled to \
             $(docv)/sessions as they land (crash-safe, fsync per \
             append) and a settled run is published to $(docv)/objects \
             keyed by (netlist, configuration); an identical later \
             invocation is served from the store with zero fault \
             searches.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the journal of an interrupted run from \
             $(b,--cache-dir) and search only the fault classes it did \
             not settle.  Output is bit-identical to the uninterrupted \
             run (timing aside).  Requires $(b,--cache-dir).")
  in
  (* Live, cached and daemon-served runs all render through
     [Core_session.render], so their stdout is diffable byte for byte
     (the recorded cpu time travels with the summary — goldens strip
     timing anyway). *)
  let print_result c verbose stats r =
    Core_session.render ~verbose Format.std_formatter c
      (Core_session.summary_of_result r);
    (if stats then
       match (r.Engine.bdd_stats, r.Engine.sat_stats) with
       | Some s, _ -> Format.printf "%a@." Satg_bdd.Bdd.pp_stats s
       | None, Some s ->
         Format.printf "%a@." Satg_sat.Sat.pp_stats s;
         Option.iter
           (fun (defined, interned) ->
             Format.printf "cnf: %d definitions, %d interned@." defined
               interned)
           r.Engine.cnf_defs
       | None, None ->
         Format.printf
           "engine stats: n/a (pass --engine bdd or --engine sat)@.");
    if Engine.partial r then exit exit_partial
  in
  let print_cached c verbose stats (p : Codec.result_payload) =
    Core_session.render ~verbose Format.std_formatter c p;
    if stats then Format.printf "engine stats: n/a (cached result)@.";
    if Core_session.degraded p then exit exit_partial
  in
  let run file universe no_random seed verbose engine symbolic no_collapse
      stats k jobs timeout max_states max_transitions reorder cluster_cap
      cache_dir resume =
    let c = or_die (read_circuit file) in
    let config =
      make_config ~k ~no_random
        ~engine:(if symbolic then Engine.Bdd else engine)
        ~no_collapse ~jobs ~timeout ~max_states ~max_transitions ~reorder
        ~cluster_cap ~seed
    in
    let guard = Guard.create ?timeout ?max_states ?max_transitions () in
    drain_on_signal guard;
    let engine_run ?settled ?on_outcome ~cleanup () =
      try Core_session.run ~guard ?settled ?on_outcome ~config c universe with
      | Inject.Injected m ->
        cleanup ();
        or_die (Error ("injected fault: " ^ m))
      | Unix.Unix_error (err, op, arg) ->
        cleanup ();
        or_die
          (Error
             (Printf.sprintf "%s %s: %s" op arg (Unix.error_message err)))
      | e ->
        cleanup ();
        raise e
    in
    match cache_dir with
    | None ->
      if resume then
        or_die (Error "--resume needs --cache-dir (or SATG_CACHE_DIR)");
      print_result c verbose stats (engine_run ~cleanup:(fun () -> ()) ())
    | Some dir -> (
      let key = Session.key_of ~netlist:(read_file file) ~universe ~config in
      match Session.cached ~dir ~key with
      | Some p ->
        Printf.eprintf
          "[store] hit %s: settled result served, 0 fault searches\n%!" key;
        print_cached c verbose stats p
      | None ->
        let t =
          match Session.start ~resume ~dir ~key () with
          | r -> or_die r
          | exception Inject.Injected m ->
            or_die (Error ("injected fault: " ^ m))
        in
        if resume then
          Printf.eprintf
            "[store] resume %s: %d fault classes settled from journal\n%!"
            key (Session.settled_count t);
        let cleanup () =
          (* the journal appends are already durable; a failure while
             sealing must not mask the error being reported *)
          try Session.finish t ~keep:true
          with e ->
            Printf.eprintf "[store] cleanup failed: %s\n%!"
              (Printexc.to_string e)
        in
        let r =
          engine_run ~settled:(Session.settled t)
            ~on_outcome:(Session.record t) ~cleanup ()
        in
        let complete = Session.cacheable r in
        (* never publish while the injection harness is armed: the
           outcomes may carry injected budget trips that a clean rerun
           would not reproduce *)
        (if complete && not (Inject.enabled ()) then
           try Session.publish ~dir ~key (Session.payload_of_result r)
           with e ->
             Printf.eprintf "[store] publish failed: %s\n%!"
               (Printexc.to_string e));
        (match Session.finish t ~keep:(not complete) with
        | () -> ()
        | exception Inject.Injected m ->
          or_die (Error ("injected fault: " ^ m))
        | exception Unix.Unix_error (err, op, arg) ->
          or_die
            (Error
               (Printf.sprintf "%s %s: %s" op arg (Unix.error_message err))));
        print_result c verbose stats r)
  in
  Cmd.v
    (Cmd.info "atpg" ~doc:"Generate synchronous test patterns for a netlist.")
    Term.(
      const run $ file $ universe $ no_random $ seed $ verbose $ engine
      $ symbolic $ no_collapse $ stats_arg $ k_arg $ jobs_arg $ timeout_arg
      $ max_states_arg $ max_transitions_arg $ reorder_arg $ cluster_cap_arg
      $ cache_dir $ resume)

(* --- bench ---------------------------------------------------------------- *)

let bench_cmd =
  let name_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME") in
  let run = function
    | None ->
      List.iter
        (fun e ->
          Printf.printf "%-16s %d inputs, %d outputs, %d transitions\n"
            e.Suite.name
            (List.length (Stg.input_signals e.Suite.stg))
            (List.length (Stg.output_signals e.Suite.stg))
            (Array.length e.Suite.stg.Stg.transitions))
        (Suite.all ())
    | Some nm -> (
      match Suite.find nm with
      | Some e -> print_string (Stg.to_string e.Suite.stg)
      | None ->
        prerr_endline ("unknown benchmark " ^ nm);
        exit 1)
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"List the bundled benchmark STGs or print one.")
    Term.(const run $ name_arg)

(* --- gen ------------------------------------------------------------------ *)

let gen_cmd =
  let family_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FAMILY")
  in
  let size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "size" ] ~docv:"N"
          ~doc:"Family size knob (stages / clients / stations / latches).  \
                Default: the family's own default size.")
  in
  let style_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("complex", `Complex); ("decomposed", `Decomposed);
                  ("redundant", `Redundant) ]))
          None
      & info [ "style" ]
          ~doc:
            "Synthesize the generated STG into a netlist with the given \
             backend and print the $(b,.cct) text instead of the $(b,.g) \
             specification.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT")
  in
  let emit output text =
    match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc
  in
  let run family size style output =
    match family with
    | None ->
      List.iter
        (fun (f : Satg_concepts.Families.family) ->
          Printf.printf "%-10s n = %-2d..%-2d (default %d, %s)  %s\n" f.fname
            f.min_n f.max_n f.default_n f.size_doc f.doc)
        Satg_concepts.Families.all
    | Some fname ->
      let n =
        match (size, Satg_concepts.Families.find fname) with
        | Some n, _ -> n
        | None, Some f -> f.default_n
        | None, None -> 0 (* generate reports the unknown family *)
      in
      let e = or_die (Suite.generate fname ~n) in
      (match style with
      | None -> emit output (Stg.to_string e.Suite.stg)
      | Some backend ->
        let circuit =
          or_die
            (match backend with
            | `Complex -> Synth.complex_gate e.Suite.stg
            | `Decomposed -> Synth.decomposed e.Suite.stg
            | `Redundant -> Synth.decomposed ~redundant:true e.Suite.stg)
        in
        emit output (Parser.to_string circuit))
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a benchmark-family instance (STG, or netlist with \
          --style).  Without FAMILY, list the available families.")
    Term.(const run $ family_arg $ size_arg $ style_arg $ output)

(* --- check ---------------------------------------------------------------- *)

(* Every diagnostic with its line number, then one clean nonzero exit —
   not just the parser's first complaint.  Shared with [client check],
   whose diagnostics arrive as a structured wire response. *)
let print_diags file diags =
  List.iter
    (fun d ->
      if d.Parser.line = 0 then Printf.eprintf "%s: %s\n" file d.Parser.msg
      else Printf.eprintf "%s:%d: %s\n" file d.Parser.line d.Parser.msg)
    diags;
  Printf.eprintf "%s: %d problem(s)\n" file (List.length diags);
  exit 1

let check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let run file =
    (* Lint first. *)
    (match Parser.lint_file file with
    | [] -> ()
    | exception Sys_error m -> or_die (Error m)
    | diags -> print_diags file diags);
    let c = or_die (read_circuit file) in
    (match Circuit.validate c with
    | Ok () -> ()
    | Error m -> or_die (Error m));
    (* the success report is the session layer's, shared with the
       daemon's [check] kind *)
    print_string (Core_session.check_report c)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Validate a netlist and print structural stats.")
    Term.(const run $ file)

(* --- program --------------------------------------------------------------- *)

let program_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let run file k timeout max_states max_transitions =
    let c = or_die (read_circuit file) in
    let config =
      { Engine.default_config with k; timeout; max_states; max_transitions }
    in
    let faults = Fault.universe_input_sa c @ Fault.universe_output_sa c in
    let r = Engine.run ~config c ~faults in
    print_string (Tester.to_string (Tester.of_result r));
    if Engine.partial r then exit exit_partial
  in
  Cmd.v
    (Cmd.info "program"
       ~doc:"Generate tests and emit them as a synchronous tester program.")
    Term.(
      const run $ file $ k_arg $ timeout_arg $ max_states_arg
      $ max_transitions_arg)

(* --- delay ----------------------------------------------------------------- *)

let delay_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let run file k timeout max_states max_transitions =
    let c = or_die (read_circuit file) in
    let guard = Guard.create ?timeout ?max_states ?max_transitions () in
    let g = Explicit.build ?k ~guard c in
    let r = Delay_fault.run ~guard g in
    List.iter
      (fun (f, status) ->
        match status with
        | Delay_fault.Found seq ->
          Format.printf "%s: detected by [%s]@." (Delay_fault.to_string c f)
            (Testset.sequence_to_string seq)
        | Delay_fault.Not_found ->
          Format.printf "%s: UNDETECTED@." (Delay_fault.to_string c f)
        | Delay_fault.Aborted reason ->
          Format.printf "%s: ABORTED (%s)@." (Delay_fault.to_string c f)
            (Guard.reason_to_string reason))
      r.Delay_fault.outcomes;
    Format.printf "%a@." Delay_fault.pp_summary r;
    if Cssg.truncated g <> None || Delay_fault.aborted r > 0 then
      exit exit_partial
  in
  Cmd.v
    (Cmd.info "delay" ~doc:"Gross gate-delay fault test generation.")
    Term.(
      const run $ file $ k_arg $ timeout_arg $ max_states_arg
      $ max_transitions_arg)

(* --- dft ------------------------------------------------------------------- *)

let dft_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let budget =
    Arg.(value & opt int 2 & info [ "budget" ] ~docv:"N"
         ~doc:"Maximum observation points to insert.")
  in
  let control =
    Arg.(value & opt_all string [] & info [ "control" ] ~docv:"SIGNAL"
         ~doc:"Insert a control point (test-mode mux) on the signal and \
               re-run ATPG; repeatable.")
  in
  let run file budget control k jobs timeout max_states max_transitions =
    let c = or_die (read_circuit file) in
    let faults = Fault.universe_input_sa c in
    (* The same config (test-cycle budget and resource limits) governs
       every ATPG run below, instrumented circuits included. *)
    let config =
      {
        Engine.default_config with
        k;
        jobs;
        timeout;
        max_states;
        max_transitions;
      }
    in
    if control = [] then begin
      let imp = Dft.evaluate ~budget ~config c ~faults in
      Format.printf "coverage before: %d/%d@." imp.Dft.before_detected imp.Dft.total;
      (match imp.Dft.points with
      | [] -> Format.printf "no observation points needed@."
      | points ->
        Format.printf "observation points:%s@."
          (String.concat ""
             (List.map (fun p -> " " ^ Circuit.node_name c p) points));
        Format.printf "coverage after:  %d/%d@." imp.Dft.after_detected imp.Dft.total);
      if imp.Dft.partial then exit exit_partial
    end
    else begin
      let nodes =
        List.map
          (fun nm ->
            match Circuit.find_node c nm with
            | Some id -> id
            | None -> or_die (Error ("unknown signal " ^ nm)))
          control
      in
      let before = Engine.run ~config c ~faults in
      let cp = Dft.insert_control_points c nodes in
      let after = Engine.run ~config cp ~faults:(Fault.universe_input_sa cp) in
      Format.printf "before: %d/%d; with control points: %d/%d@."
        (Engine.detected before) (Engine.total before)
        (Engine.detected after) (Engine.total after);
      if Engine.partial before || Engine.partial after then exit exit_partial
    end
  in
  Cmd.v
    (Cmd.info "dft"
       ~doc:"Recommend and evaluate test observation/control points.")
    Term.(
      const run $ file $ budget $ control $ k_arg $ jobs_arg $ timeout_arg
      $ max_states_arg $ max_transitions_arg)

(* --- dot ------------------------------------------------------------------- *)

let dot_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let what =
    Arg.(
      value
      & opt (enum [ ("circuit", `Circuit); ("cssg", `Cssg); ("stg", `Stg) ])
          `Circuit
      & info [ "view" ] ~doc:"What to render: circuit, cssg, or stg.")
  in
  let run file what k =
    match what with
    | `Stg ->
      let stg = or_die (Stg.parse_file file) in
      print_string (Stg.to_dot stg)
    | `Circuit ->
      let c = or_die (read_circuit file) in
      print_string (Dot.circuit c)
    | `Cssg ->
      let c = or_die (read_circuit file) in
      print_string (Cssg.to_dot (Explicit.build ?k c))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Graphviz export of a netlist, its CSSG, or an STG.")
    Term.(const run $ file $ what $ k_arg)

(* --- serve / client -------------------------------------------------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "SATG_SOCKET")
        ~doc:"Unix-domain socket path of the ATPG daemon.")

let serve_cmd =
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~env:(Cmd.Env.info "SATG_CACHE_DIR")
          ~doc:
            "Back the daemon's warm store with the durable object store at \
             $(docv) — shared, in both directions, with one-shot \
             $(b,--cache-dir) runs.")
  in
  let run socket jobs cache_dir =
    let service = Satg_server.Service.create ?cache_dir ?jobs () in
    let on_ready () = Printf.eprintf "[serve] listening on %s\n%!" socket in
    match Satg_server.Server.serve ~on_ready ~socket service with
    | Ok () ->
      (* the drain epilogue: final counters, visible to smoke tests *)
      Printf.eprintf "[serve] drained: %s\n%!"
        (String.concat ", "
           (List.map
              (fun (k, v) -> k ^ "=" ^ v)
              (Satg_server.Service.stats_fields service)))
    | Error m -> or_die (Error m)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent ATPG daemon: batched requests, per-request \
          QoS budgets, and a warm content-addressed result store.  \
          SIGINT/SIGTERM drain gracefully.")
    Term.(const run $ socket_arg $ jobs_arg $ cache_dir)

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request QoS deadline in milliseconds; the daemon maps it \
           onto the run's wall-clock guard budget, so a request that blows \
           it degrades (truncated graph, aborted faults, exit 2) instead \
           of hogging the daemon.  Overrides $(b,--timeout).")

let retry_for = 5.0 (* seconds to wait out a daemon that is still booting *)

let client_die = function
  | Proto.Failure { code; msg } -> or_die (Error (code ^ ": " ^ msg))
  | _ -> or_die (Error "unexpected response kind")

let request_or_die socket req =
  match Satg_server.Client.one_shot ~retry_for ~socket req with
  | Error m -> or_die (Error m)
  | Ok response -> response

let effective_timeout ~deadline_ms ~timeout =
  match deadline_ms with
  | Some ms -> Some (float_of_int ms /. 1000.)
  | None -> timeout

(* Renders exactly like the one-shot [atpg] path — both run through
   [Core_session.render] — and returns the member's exit code. *)
let print_response c verbose = function
  | Proto.Result { hit; payload } ->
    if hit then
      Printf.eprintf "[client] hit: settled result served, 0 fault searches\n%!";
    Core_session.render ~verbose Format.std_formatter c payload;
    if Core_session.degraded payload then exit_partial else 0
  | r -> client_die r

let client_atpg_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let run socket file universe no_random seed verbose engine no_collapse k
      deadline_ms timeout max_states max_transitions reorder cluster_cap =
    let netlist = read_file file in
    let c = or_die (read_circuit file) in
    let config =
      make_config ~k ~no_random ~engine ~no_collapse ~jobs:None
        ~timeout:(effective_timeout ~deadline_ms ~timeout)
        ~max_states ~max_transitions ~reorder ~cluster_cap ~seed
    in
    let response =
      request_or_die socket (Proto.Atpg { Proto.netlist; universe; config })
    in
    let code = print_response c verbose response in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:
         "Run ATPG on the daemon.  Output (and exit code) is bit-identical \
          to the one-shot $(b,satg atpg).")
    Term.(
      const run $ socket_arg $ file $ universe_arg $ no_random_arg $ seed_arg
      $ verbose_arg $ engine_arg $ no_collapse_arg $ k_arg $ deadline_arg
      $ timeout_arg $ max_states_arg $ max_transitions_arg $ reorder_arg
      $ cluster_cap_arg)

let client_cssg_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let dump =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print every state and edge.")
  in
  let run socket file dump k deadline_ms timeout max_states max_transitions =
    let response =
      request_or_die socket
        (Proto.Cssg
           {
             Proto.c_netlist = read_file file;
             c_k = k;
             c_dump = dump;
             c_timeout = effective_timeout ~deadline_ms ~timeout;
             c_max_states = max_states;
             c_max_transitions = max_transitions;
           })
    in
    match response with
    | Proto.Text { degraded; text } ->
      print_string text;
      if degraded then exit exit_partial
    | r -> client_die r
  in
  Cmd.v
    (Cmd.info "cssg" ~doc:"Build a CSSG on the daemon (explicit engine).")
    Term.(
      const run $ socket_arg $ file $ dump $ k_arg $ deadline_arg $ timeout_arg
      $ max_states_arg $ max_transitions_arg)

let client_check_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cct") in
  let run socket file =
    match request_or_die socket (Proto.Check (read_file file)) with
    | Proto.Text { text; _ } -> print_string text
    | Proto.Diags diags -> print_diags file diags
    | r -> client_die r
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate a netlist on the daemon; lint findings come back as a \
          structured wire response.")
    Term.(const run $ socket_arg $ file)

let client_batch_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE.cct")
  in
  let run socket files universe no_random seed verbose engine no_collapse k
      deadline_ms timeout max_states max_transitions reorder cluster_cap =
    let members =
      List.map (fun file -> (file, or_die (read_circuit file), read_file file))
        files
    in
    let config =
      make_config ~k ~no_random ~engine ~no_collapse ~jobs:None
        ~timeout:(effective_timeout ~deadline_ms ~timeout)
        ~max_states ~max_transitions ~reorder ~cluster_cap ~seed
    in
    let requests =
      List.map
        (fun (_, _, netlist) -> Proto.Atpg { Proto.netlist; universe; config })
        members
    in
    match request_or_die socket (Proto.Batch requests) with
    | Proto.Batch_r responses when List.length responses = List.length members ->
      let failed = ref false and degraded = ref false in
      List.iter2
        (fun (file, c, _) response ->
          Format.printf "== %s ==@." file;
          match response with
          | Proto.Failure { code; msg } ->
            (* per-member isolation: report and move on *)
            Printf.eprintf "error: %s: %s: %s\n%!" file code msg;
            failed := true
          | r ->
            if print_response c verbose r = exit_partial then degraded := true)
        members responses;
      if !failed then exit 1;
      if !degraded then exit exit_partial
    | r -> client_die r
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run one ATPG request per FILE as a single batch; same-netlist \
          members share one CSSG build on the daemon, and a member that \
          blows its budget degrades alone.")
    Term.(
      const run $ socket_arg $ files $ universe_arg $ no_random_arg $ seed_arg
      $ verbose_arg $ engine_arg $ no_collapse_arg $ k_arg $ deadline_arg
      $ timeout_arg $ max_states_arg $ max_transitions_arg $ reorder_arg
      $ cluster_cap_arg)

let client_stats_cmd =
  let run socket =
    match request_or_die socket Proto.Stats with
    | Proto.Stats_r fields ->
      List.iter (fun (k, v) -> Printf.printf "%s %s\n" k v) fields
    | r -> client_die r
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's server-side counters.")
    Term.(const run $ socket_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client" ~doc:"Send requests to a running satg daemon.")
    [ client_atpg_cmd; client_cssg_cmd; client_check_cmd; client_batch_cmd;
      client_stats_cmd ]

let () =
  (match Inject.configure_from_env () with
  | Ok () -> ()
  | Error m ->
    prerr_endline ("error: SATG_FAULT_INJECT: " ^ m);
    exit 1);
  let doc = "Synchronous test pattern generation for asynchronous circuits" in
  let info = Cmd.info "satg" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ synth_cmd; cssg_cmd; atpg_cmd; program_cmd; delay_cmd; dft_cmd;
            dot_cmd; bench_cmd; gen_cmd; check_cmd; serve_cmd; client_cmd ]))
