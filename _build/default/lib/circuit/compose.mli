(** Hierarchical composition of controllers (paper §7: "the synchronous
    abstraction … allows partitioning of large circuits into several
    interacting asynchronous circuits").

    Two circuits are merged into one netlist; selected outputs of each
    drive selected inputs of the other.  A driven input {e keeps its
    delay buffer} (it becomes an internal wire with delay, exactly like
    any other gate) but loses its environment node — the tester no
    longer controls it.  Node names are prefixed with the source
    circuit's name. *)

val pair :
  name:string ->
  ?connect_ab:(string * string) list ->
  ?connect_ba:(string * string) list ->
  Circuit.t ->
  Circuit.t ->
  (Circuit.t, string) result
(** [pair ~name ~connect_ab ~connect_ba a b] connects
    [(output of a, input of b)] pairs and, for feedback structures,
    [(output of b, input of a)] pairs.  Both circuits must carry reset
    states, and each connected input's reset value must agree with the
    driving output's reset value (otherwise the merged reset could not
    be stable).  Errors mention the offending signal. *)
