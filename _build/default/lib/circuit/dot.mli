(** Graphviz export of netlists (debugging / documentation aid). *)

val circuit : Circuit.t -> string
(** Environment nodes as plaintext, gates as boxes labelled with their
    function, primary outputs double-circled; feedback pins (per
    {!Structure.feedback_edges}) drawn dashed. *)
