lib/circuit/compose.mli: Circuit
