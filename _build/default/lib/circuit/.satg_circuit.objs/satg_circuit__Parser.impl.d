lib/circuit/parser.ml: Array Buffer Circuit Cover Cube Gatefunc Hashtbl List Printf Satg_logic String
