lib/circuit/gatefunc.ml: Array Cover Format Fun Satg_logic Ternary
