lib/circuit/structure.ml: Array Circuit List
