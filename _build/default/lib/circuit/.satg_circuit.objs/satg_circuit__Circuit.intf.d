lib/circuit/circuit.mli: Format Gatefunc Satg_logic Ternary
