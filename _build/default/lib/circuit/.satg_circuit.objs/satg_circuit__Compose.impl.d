lib/circuit/compose.ml: Array Circuit List Option Printf Result
