lib/circuit/dot.ml: Array Buffer Circuit Gatefunc List Printf String Structure
