lib/circuit/structure.mli: Circuit
