lib/circuit/gatefunc.mli: Cover Format Satg_logic Ternary
