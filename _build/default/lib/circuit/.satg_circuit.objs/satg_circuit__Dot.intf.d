lib/circuit/dot.mli: Circuit
