lib/circuit/circuit.ml: Array Format Fun Gatefunc Hashtbl List Option Printf Stdlib String
