let ( let* ) r f = Result.bind r f

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

(* Resolve a user-facing signal name to a node id, with diagnostics.
   Only primary outputs may drive another circuit. *)
let output_id c nm =
  match Circuit.find_node c nm with
  | Some id when Array.exists (fun o -> o = id) (Circuit.outputs c) -> Ok id
  | Some _ -> err "%s: %S is an input, not an output" (Circuit.name c) nm
  | None -> err "%s: unknown signal %S" (Circuit.name c) nm

let input_index c nm =
  let names = Circuit.input_names c in
  let rec find i =
    if i >= Array.length names then
      err "%s: unknown input %S" (Circuit.name c) nm
    else if names.(i) = nm then Ok i
    else find (i + 1)
  in
  find 0

let pair ~name ?(connect_ab = []) ?(connect_ba = []) a b =
  let* reset_a =
    Option.to_result ~none:(Circuit.name a ^ ": no reset state")
      (Circuit.initial a)
  in
  let* reset_b =
    Option.to_result ~none:(Circuit.name b ^ ": no reset state")
      (Circuit.initial b)
  in
  if Circuit.name a = Circuit.name b then
    err "circuits must have distinct names (both are %S)" (Circuit.name a)
  else begin
    (* Resolve connections to (driving node of src, input index of dst). *)
    let resolve src dst pairs =
      List.fold_left
        (fun acc (out_nm, in_nm) ->
          let* acc = acc in
          let* oid = output_id src out_nm in
          let* k = input_index dst in_nm in
          Ok ((oid, k) :: acc))
        (Ok []) pairs
    in
    let* ab = resolve a b connect_ab in
    let* ba = resolve b a connect_ba in
    (* Reset-value consistency for every connected pair. *)
    let* () =
      List.fold_left
        (fun acc (oid, k) ->
          let* () = acc in
          if reset_a.(oid) = reset_b.((Circuit.inputs b).(k)) then Ok ()
          else
            err "reset mismatch: %s.%s drives %s.%s" (Circuit.name a)
              (Circuit.node_name a oid) (Circuit.name b)
              (Circuit.input_names b).(k))
        (Ok ()) ab
    in
    let* () =
      List.fold_left
        (fun acc (oid, k) ->
          let* () = acc in
          if reset_b.(oid) = reset_a.((Circuit.inputs a).(k)) then Ok ()
          else
            err "reset mismatch: %s.%s drives %s.%s" (Circuit.name b)
              (Circuit.node_name b oid) (Circuit.name a)
              (Circuit.input_names a).(k))
        (Ok ()) ba
    in
    let builder = Circuit.Builder.create name in
    (* node maps: per circuit, old node id -> new node id *)
    let map_a = Array.make (Circuit.n_nodes a) (-1) in
    let map_b = Array.make (Circuit.n_nodes b) (-1) in
    let driven_inputs c links =
      let arr = Array.make (Circuit.n_inputs c) None in
      List.iter (fun (oid, k) -> arr.(k) <- Some oid) links;
      arr
    in
    let driven_b = driven_inputs b ab and driven_a = driven_inputs a ba in
    let prefix c nm = Circuit.name c ^ "." ^ nm in
    (* 1. Free inputs of both circuits become inputs of the composite;
       their buffer gates are created by the builder. *)
    let declare_free_inputs c map driven =
      Array.iteri
        (fun k env ->
          match driven.(k) with
          | Some _ -> ()
          | None ->
            let buf =
              Circuit.Builder.add_input builder
                (prefix c (Circuit.input_names c).(k))
            in
            map.(env) <- buf - 1;
            (* env node precedes its buffer *)
            map.(Circuit.buffer_of_input c k) <- buf)
        (Circuit.inputs c)
    in
    declare_free_inputs a map_a driven_a;
    declare_free_inputs b map_b driven_b;
    (* 2. Declare every gate (including the buffers of driven inputs,
       which survive as plain wire-delay buffers). *)
    let declare_gates c map =
      Array.iter
        (fun gid ->
          if map.(gid) < 0 then
            map.(gid) <-
              Circuit.Builder.declare_gate builder
                ~name:(prefix c (Circuit.node_name c gid)))
        (Circuit.gates c)
    in
    declare_gates a map_a;
    declare_gates b map_b;
    (* 3. Define gates, redirecting driven-input buffers across. *)
    let define_gates c map other_map driven =
      Array.iter
        (fun gid ->
          let is_declared =
            (* skip buffers already defined by add_input *)
            let rec is_free_buffer k =
              k < Circuit.n_inputs c
              && ((Circuit.buffer_of_input c k = gid && driven.(k) = None)
                 || is_free_buffer (k + 1))
            in
            not (is_free_buffer 0)
          in
          if is_declared then begin
            let fanin =
              Circuit.fanins c gid |> Array.to_list
              |> List.map (fun src ->
                     if Circuit.is_env c src then begin
                       (* env of a driven input: route to the driver *)
                       let k =
                         let rec find k =
                           if (Circuit.inputs c).(k) = src then k
                           else find (k + 1)
                         in
                         find 0
                       in
                       match driven.(k) with
                       | Some oid -> other_map.(oid)
                       | None -> map.(src)
                     end
                     else map.(src))
            in
            Circuit.Builder.define_gate builder map.(gid) (Circuit.func c gid)
              fanin
          end)
        (Circuit.gates c)
    in
    define_gates a map_a map_b driven_a;
    define_gates b map_b map_a driven_b;
    (* 4. All original primary outputs remain observable. *)
    Array.iter (fun o -> Circuit.Builder.mark_output builder map_a.(o)) (Circuit.outputs a);
    Array.iter (fun o -> Circuit.Builder.mark_output builder map_b.(o)) (Circuit.outputs b);
    match Circuit.Builder.finalize builder with
    | exception Invalid_argument m -> Error m
    | composite ->
      let st = Array.make (Circuit.n_nodes composite) false in
      let copy_reset map reset =
        Array.iteri (fun old nw -> if nw >= 0 then st.(nw) <- reset.(old)) map
      in
      copy_reset map_a reset_a;
      copy_reset map_b reset_b;
      (match Circuit.with_initial composite st with
      | c -> Ok c
      | exception Invalid_argument m -> Error m)
  end
