let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let circuit c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph \"%s\" {\n  rankdir=LR;\n" (escape (Circuit.name c));
  let is_output i = Array.exists (fun o -> o = i) (Circuit.outputs c) in
  for i = 0 to Circuit.n_nodes c - 1 do
    let name = escape (Circuit.node_name c i) in
    match Circuit.node c i with
    | Circuit.Env -> pr "  n%d [label=\"%s\", shape=plaintext];\n" i name
    | Circuit.Gate { func; _ } ->
      pr "  n%d [label=\"%s\\n%s\", shape=box%s];\n" i name
        (escape (Gatefunc.name func))
        (if is_output i then ", peripheries=2" else "")
  done;
  let feedback = Structure.feedback_edges c in
  let is_feedback gate pin =
    List.exists
      (fun e -> e.Structure.gate = gate && e.Structure.pin = pin)
      feedback
  in
  Array.iter
    (fun gid ->
      Array.iteri
        (fun pin src ->
          pr "  n%d -> n%d%s;\n" src gid
            (if is_feedback gid pin then " [style=dashed]" else ""))
        (Circuit.fanins c gid))
    (Circuit.gates c);
  pr "}\n";
  Buffer.contents buf
