(** Structural analysis of netlists: strongly connected components,
    feedback edges and combinational levels.  Used for circuit
    statistics, for estimating the test-cycle budget, and by the
    virtual flip-flop baseline (feedback cutting). *)

type edge = {
  gate : int;  (** reading gate node id *)
  pin : int;  (** fanin position within that gate *)
  src : int;  (** node being read *)
}

val sccs : Circuit.t -> int list list
(** Strongly connected components of the gate graph (edges go from a
    gate to the gates reading it), in reverse topological order.
    Singleton components without self-loops are included. *)

val cyclic_gates : Circuit.t -> int list
(** Gates involved in some cycle (including self-loops). *)

val feedback_edges : Circuit.t -> edge list
(** A set of fanin pins whose removal makes the gate graph acyclic
    (DFS back-edge heuristic; not guaranteed minimum).  Self-loops are
    always included. *)

val levels : Circuit.t -> break:edge list -> int array
(** Topological level of every node once the given edges are ignored;
    environment nodes are level 0.
    @raise Invalid_argument if cycles remain. *)

val longest_path : Circuit.t -> int
(** Length (in gates) of the longest acyclic path once
    {!feedback_edges} are removed; a crude settling-length estimate
    used for the default test-cycle budget [k]. *)

val default_k : Circuit.t -> int
(** Default test-cycle budget: [4 * n_gates], at least 8 (paper §4.1
    estimates [k] from the longest transition sequence; four firings
    per gate bounds the controllers considered here). *)
