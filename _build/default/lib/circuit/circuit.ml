type node =
  | Env
  | Gate of {
      func : Gatefunc.t;
      fanin : int array;
    }

type t = {
  name : string;
  nodes : node array;
  node_name : string array;
  inputs : int array;
  buffer_of : int array;
  outputs : int array;
  gate_ids : int array;
  fanout : int list array;  (* gate readers of each node *)
  by_name : (string, int) Hashtbl.t;
  initial : bool array option;
}

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type pending =
    | P_env
    | P_gate of Gatefunc.t * int array
    | P_declared

  type t = {
    cname : string;
    mutable rev_nodes : (string * pending) list;  (* reversed *)
    mutable count : int;
    mutable b_inputs : int list;  (* reversed env ids *)
    mutable b_buffers : int list;  (* reversed buffer ids *)
    mutable b_outputs : int list;  (* reversed *)
    names : (string, int) Hashtbl.t;
  }

  let create cname =
    {
      cname;
      rev_nodes = [];
      count = 0;
      b_inputs = [];
      b_buffers = [];
      b_outputs = [];
      names = Hashtbl.create 32;
    }

  let fresh b nm pending =
    if Hashtbl.mem b.names nm then
      invalid_arg (Printf.sprintf "Builder: duplicate node name %S" nm);
    let id = b.count in
    b.count <- id + 1;
    Hashtbl.replace b.names nm id;
    b.rev_nodes <- (nm, pending) :: b.rev_nodes;
    id

  let add_input b nm =
    let env = fresh b (nm ^ "$env") P_env in
    let buf = fresh b nm (P_gate (Gatefunc.Buf, [| env |])) in
    b.b_inputs <- env :: b.b_inputs;
    b.b_buffers <- buf :: b.b_buffers;
    buf

  let add_gate b ~name func ins =
    fresh b name (P_gate (func, Array.of_list ins))

  let declare_gate b ~name = fresh b name P_declared

  let define_gate b id func ins =
    (* rev_nodes is reversed: node [id] sits at position [count - 1 - id]
       from the front. *)
    let rec update_rev i = function
      | [] -> invalid_arg "Builder.define_gate: unknown node"
      | ((nm, pending) as entry) :: rest ->
        if i = id then
          match pending with
          | P_declared -> (nm, P_gate (func, Array.of_list ins)) :: rest
          | P_env | P_gate _ ->
            invalid_arg "Builder.define_gate: node already defined"
        else entry :: update_rev (i - 1) rest
    in
    b.rev_nodes <- update_rev (b.count - 1) b.rev_nodes

  let mark_output b id =
    if id < 0 || id >= b.count then invalid_arg "Builder.mark_output: bad id";
    b.b_outputs <- id :: b.b_outputs

  let finalize b =
    let nodes_list = List.rev b.rev_nodes in
    let n = b.count in
    let nodes = Array.make n Env in
    let node_name = Array.make n "" in
    List.iteri
      (fun i (nm, pending) ->
        node_name.(i) <- nm;
        match pending with
        | P_env -> nodes.(i) <- Env
        | P_declared ->
          invalid_arg (Printf.sprintf "Builder: gate %S never defined" nm)
        | P_gate (func, fanin) ->
          if not (Gatefunc.arity_ok func (Array.length fanin)) then
            invalid_arg
              (Printf.sprintf "Builder: gate %S has bad arity %d for %s" nm
                 (Array.length fanin) (Gatefunc.name func));
          Array.iter
            (fun src ->
              if src < 0 || src >= n then
                invalid_arg
                  (Printf.sprintf "Builder: gate %S reads bad node %d" nm src))
            fanin;
          nodes.(i) <- Gate { func; fanin })
      nodes_list;
    let gate_ids =
      Array.of_list
        (List.filteri
           (fun i _ -> match nodes.(i) with Gate _ -> true | Env -> false)
           (List.init n Fun.id))
    in
    let fanout = Array.make n [] in
    Array.iter
      (fun gid ->
        match nodes.(gid) with
        | Gate { fanin; _ } ->
          Array.iter (fun src -> fanout.(src) <- gid :: fanout.(src)) fanin
        | Env -> assert false)
      gate_ids;
    Array.iteri (fun i l -> fanout.(i) <- List.rev l) fanout;
    {
      name = b.cname;
      nodes;
      node_name;
      inputs = Array.of_list (List.rev b.b_inputs);
      buffer_of = Array.of_list (List.rev b.b_buffers);
      outputs = Array.of_list (List.rev b.b_outputs);
      gate_ids;
      fanout;
      by_name = Hashtbl.copy b.names;
      initial = None;
    }
end

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let name t = t.name
let n_nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let node_name t i = t.node_name.(i)
let find_node t nm = Hashtbl.find_opt t.by_name nm
let inputs t = t.inputs
let buffer_of_input t k = t.buffer_of.(k)

let input_names t =
  Array.map (fun buf -> t.node_name.(buf)) t.buffer_of

let outputs t = t.outputs
let gates t = t.gate_ids
let n_inputs t = Array.length t.inputs
let n_gates t = Array.length t.gate_ids
let initial t = t.initial
let is_env t i = match t.nodes.(i) with Env -> true | Gate _ -> false

let fanins t i =
  match t.nodes.(i) with
  | Gate { fanin; _ } -> fanin
  | Env -> invalid_arg "Circuit.fanins: environment node"

let func t i =
  match t.nodes.(i) with
  | Gate { func; _ } -> func
  | Env -> invalid_arg "Circuit.func: environment node"

let fanouts t i = t.fanout.(i)

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let eval_gate t s gid =
  match t.nodes.(gid) with
  | Env -> invalid_arg "Circuit.eval_gate: environment node"
  | Gate { func; fanin } ->
    let ins = Array.map (fun src -> s.(src)) fanin in
    Gatefunc.eval_bool func ~self:s.(gid) ins

let eval_gate_ternary t s gid =
  match t.nodes.(gid) with
  | Env -> invalid_arg "Circuit.eval_gate_ternary: environment node"
  | Gate { func; fanin } ->
    let ins = Array.map (fun src -> s.(src)) fanin in
    Gatefunc.eval_ternary func ~self:s.(gid) ins

let gate_excited t s gid = eval_gate t s gid <> s.(gid)

let excited_gates t s =
  Array.fold_right
    (fun gid acc -> if gate_excited t s gid then gid :: acc else acc)
    t.gate_ids []

let is_stable t s =
  Array.for_all (fun gid -> not (gate_excited t s gid)) t.gate_ids

let fire t s gid =
  let s' = Array.copy s in
  s'.(gid) <- eval_gate t s gid;
  s'

let apply_input_vector t s v =
  if Array.length v <> Array.length t.inputs then
    invalid_arg "Circuit.apply_input_vector: wrong vector length";
  let s' = Array.copy s in
  Array.iteri (fun k env -> s'.(env) <- v.(k)) t.inputs;
  s'

let input_vector_of_state t s = Array.map (fun env -> s.(env)) t.inputs
let output_values t s = Array.map (fun o -> s.(o)) t.outputs

let state_to_string (_ : t) s =
  String.init (Array.length s) (fun i -> if s.(i) then '1' else '0')

let with_initial t s =
  if Array.length s <> Array.length t.nodes then
    invalid_arg "Circuit.with_initial: wrong state length";
  let bad =
    Array.to_list t.gate_ids |> List.filter (fun gid -> gate_excited t s gid)
  in
  (match bad with
  | [] -> ()
  | gid :: _ ->
    invalid_arg
      (Printf.sprintf "Circuit.with_initial: gate %S not stable in reset state"
         t.node_name.(gid)));
  { t with initial = Some (Array.copy s) }

(* ------------------------------------------------------------------ *)
(* Transformation                                                      *)
(* ------------------------------------------------------------------ *)

let recompute_fanout nodes =
  let n = Array.length nodes in
  let fanout = Array.make n [] in
  Array.iteri
    (fun gid node ->
      match node with
      | Gate { fanin; _ } ->
        Array.iter (fun src -> fanout.(src) <- gid :: fanout.(src)) fanin
      | Env -> ())
    nodes;
  Array.map List.rev fanout

let add_const_node t b =
  let n = Array.length t.nodes in
  let nodes = Array.append t.nodes [| Gate { func = Gatefunc.Const b; fanin = [||] } |] in
  let nm = Printf.sprintf "$const%d_%s" n (if b then "1" else "0") in
  let node_name = Array.append t.node_name [| nm |] in
  let by_name = Hashtbl.copy t.by_name in
  Hashtbl.replace by_name nm n;
  let initial =
    Option.map (fun s -> Array.append s [| b |]) t.initial
  in
  ( {
      t with
      nodes;
      node_name;
      by_name;
      gate_ids = Array.append t.gate_ids [| n |];
      fanout = recompute_fanout nodes;
      initial;
    },
    n )

let retarget_pin t ~gate ~pin target =
  (match t.nodes.(gate) with
  | Env -> invalid_arg "Circuit.retarget_pin: environment node"
  | Gate { fanin; _ } ->
    if pin < 0 || pin >= Array.length fanin then
      invalid_arg "Circuit.retarget_pin: bad pin");
  if target < 0 || target >= Array.length t.nodes then
    invalid_arg "Circuit.retarget_pin: bad target";
  let nodes = Array.copy t.nodes in
  (match nodes.(gate) with
  | Gate { func; fanin } ->
    let fanin = Array.copy fanin in
    fanin.(pin) <- target;
    nodes.(gate) <- Gate { func; fanin }
  | Env -> assert false);
  { t with nodes; fanout = recompute_fanout nodes }

let replace_func t ~gate f =
  match t.nodes.(gate) with
  | Env -> invalid_arg "Circuit.replace_func: environment node"
  | Gate { fanin; _ } ->
    (* Keep the fanin when the new function accepts it; otherwise allow
       only nullary replacements (constants, for output stuck-at
       faults), which drop the fanin. *)
    let fanin =
      if Gatefunc.arity_ok f (Array.length fanin) then fanin
      else if Gatefunc.arity_ok f 0 then [||]
      else invalid_arg "Circuit.replace_func: arity mismatch"
    in
    let nodes = Array.copy t.nodes in
    nodes.(gate) <- Gate { func = f; fanin };
    { t with nodes; fanout = recompute_fanout nodes }

(* ------------------------------------------------------------------ *)
(* Validation / stats                                                  *)
(* ------------------------------------------------------------------ *)

let validate t =
  let n = Array.length t.nodes in
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iteri
    (fun i nd ->
      match nd with
      | Env -> ()
      | Gate { func; fanin } ->
        if not (Gatefunc.arity_ok func (Array.length fanin)) then
          bad "gate %s: arity %d invalid for %s" t.node_name.(i)
            (Array.length fanin) (Gatefunc.name func);
        Array.iter
          (fun src ->
            if src < 0 || src >= n then
              bad "gate %s: fanin out of range" t.node_name.(i))
          fanin)
    t.nodes;
  Array.iteri
    (fun k env ->
      match t.nodes.(env) with
      | Env -> (
        match t.nodes.(t.buffer_of.(k)) with
        | Gate { func = Gatefunc.Buf; fanin = [| src |] } when src = env -> ()
        | Gate _ | Env -> bad "input %d: buffer wiring broken" k)
      | Gate _ -> bad "input %d: not an environment node" k)
    t.inputs;
  Array.iter
    (fun o ->
      if o < 0 || o >= n then bad "output id out of range"
      else if is_env t o then bad "output %s is an environment node" t.node_name.(o))
    t.outputs;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))

let pp_stats fmt t =
  Format.fprintf fmt
    "circuit %s: %d inputs, %d outputs, %d gates (%d nodes total)" t.name
    (n_inputs t) (Array.length t.outputs) (n_gates t) (n_nodes t)

let without_initial t = { t with initial = None }

let with_extra_outputs t extra =
  let n = Array.length t.nodes in
  List.iter
    (fun o ->
      if o < 0 || o >= n then invalid_arg "Circuit.with_extra_outputs: bad id";
      if is_env t o then
        invalid_arg "Circuit.with_extra_outputs: environment node")
    extra;
  let fresh =
    List.filter
      (fun o -> not (Array.exists (fun o' -> o' = o) t.outputs))
      (List.sort_uniq Stdlib.compare extra)
  in
  { t with outputs = Array.append t.outputs (Array.of_list fresh) }
