(** Gate function library.

    Every gate computes its function instantaneously; the unbounded
    inertial delay sits on the gate output (see {!Satg_sim}).  A gate
    whose behaviour depends on its own output (state-holding gates such
    as the Muller C-element, or complex gates synthesized with
    feedback) receives its current output value through [self]. *)

open Satg_logic

type t =
  | Buf  (** identity; also used to model primary-input delays *)
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor  (** parity for arity > 2 *)
  | Xnor
  | Mux  (** [MUX(s, a, b)] is [if s then a else b]; arity exactly 3 *)
  | Celem
      (** Muller C-element: output rises when all inputs are 1, falls
          when all are 0, otherwise holds.  Implicit self-feedback. *)
  | Const of bool  (** constant; arity 0; used for fault injection *)
  | Sop of Cover.t
      (** complex gate given as sum-of-products over its fanins, in
          fanin order; self-feedback is expressed by listing the gate's
          own output among its fanins *)

val arity_ok : t -> int -> bool
(** Whether the function accepts the given fanin count. *)

val is_state_holding : t -> bool
(** [true] for {!Celem} (depends on [self]). *)

val eval_bool : t -> self:bool -> bool array -> bool

val eval_ternary : t -> self:Ternary.t -> Ternary.t array -> Ternary.t
(** Monotone ternary extension used by Eichelberger simulation.  For
    {!Sop} this is the SOP-shaped extension (hazards in the cover show
    up as {!Ternary.Phi}), for primitives the natural extension. *)

val name : t -> string
(** Upper-case mnemonic ("AND", "CELEM", "CONST0", "SOP"). *)

val of_name : string -> t option
(** Inverse of {!name} for the fixed-function gates; [None] for
    unknown names (and for "SOP", which needs a cover). *)

val pp : Format.formatter -> t -> unit
