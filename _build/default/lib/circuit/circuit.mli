(** Gate-level asynchronous circuit netlists.

    A circuit is a set of {e nodes}.  Each node holds one bit of circuit
    state:

    - an {e environment node} carries the value driven by the tester on
      a primary input;
    - a {e gate node} carries a gate output.

    Following the paper (§3), every primary input is modelled as a
    {!Gatefunc.Buf} gate fed by its environment node, so input wires
    have delays like any other gate.  A full circuit state is a
    [bool array] indexed by node id, covering environment values and
    all gate outputs. *)

open Satg_logic

type node =
  | Env  (** environment side of a primary input *)
  | Gate of {
      func : Gatefunc.t;
      fanin : int array;  (** node ids, in function-argument order *)
    }

type t

(** {1 Construction} *)

module Builder : sig
  type circuit := t
  type t

  val create : string -> t

  val add_input : t -> string -> int
  (** Declare a primary input; creates the environment node and its
      delay buffer, and returns the {e buffer output} node id (the
      signal the rest of the netlist should read). *)

  val add_gate : t -> name:string -> Gatefunc.t -> int list -> int
  (** Add a gate reading the given nodes; returns its output node id.
      Forward references are allowed via {!declare_gate}. *)

  val declare_gate : t -> name:string -> int
  (** Reserve a gate node (for feedback loops); define it later with
      {!define_gate}. *)

  val define_gate : t -> int -> Gatefunc.t -> int list -> unit

  val mark_output : t -> int -> unit
  (** Mark a node as a primary output observed by the tester. *)

  val finalize : t -> circuit
  (** @raise Invalid_argument on arity errors, undefined gates or
      dangling node references. *)
end

val with_initial : t -> bool array -> t
(** Attach a reset state (indexed by node id).
    @raise Invalid_argument on wrong length or if some gate is not
    stable in it. *)

(** {1 Accessors} *)

val name : t -> string
val n_nodes : t -> int
val node : t -> int -> node
val node_name : t -> int -> string

val find_node : t -> string -> int option
(** Look a node up by name.  For a primary input [x] this returns the
    buffer output; the environment node is named ["x$env"]. *)

val inputs : t -> int array
(** Environment node ids, in declaration order. *)

val buffer_of_input : t -> int -> int
(** [buffer_of_input c k] is the buffer gate fed by the [k]-th input. *)

val input_names : t -> string array
val outputs : t -> int array
val gates : t -> int array
(** All gate node ids in creation order. *)

val n_inputs : t -> int
val n_gates : t -> int
val initial : t -> bool array option
val fanins : t -> int -> int array
val func : t -> int -> Gatefunc.t
val fanouts : t -> int -> int list
(** Gate nodes reading the given node. *)

val is_env : t -> int -> bool

(** {1 Semantics} *)

val eval_gate : t -> bool array -> int -> bool
(** Instantaneous function value of a gate in a state. *)

val eval_gate_ternary : t -> Ternary.t array -> int -> Ternary.t

val gate_excited : t -> bool array -> int -> bool
(** Output differs from function value. *)

val excited_gates : t -> bool array -> int list
val is_stable : t -> bool array -> bool

val fire : t -> bool array -> int -> bool array
(** New state with the given (excited or not) gate output set to its
    function value; the input state is not mutated. *)

val apply_input_vector : t -> bool array -> bool array -> bool array
(** [apply_input_vector c s v] returns [s] with the environment nodes
    overwritten by [v] (length {!n_inputs}). *)

val input_vector_of_state : t -> bool array -> bool array
val output_values : t -> bool array -> bool array

val state_to_string : t -> bool array -> string
(** One character per node, ['0'] / ['1'], in node-id order. *)

(** {1 Transformation (fault injection etc.)} *)

val add_const_node : t -> bool -> t * int
(** Append a constant gate; returns the new circuit and the node id.
    The initial state, if any, is extended with the constant value. *)

val retarget_pin : t -> gate:int -> pin:int -> int -> t
(** Redirect one fanin pin of a gate to another node. *)

val replace_func : t -> gate:int -> Gatefunc.t -> t
(** Swap a gate's function (arity must match the existing fanin). *)

(** {1 Misc} *)

val validate : t -> (unit, string) result
val pp_stats : Format.formatter -> t -> unit

val without_initial : t -> t
(** Drop the reset state (fault injection invalidates it: the faulty
    circuit need not be stable in the good circuit's reset state). *)

val with_extra_outputs : t -> int list -> t
(** Mark additional nodes as primary outputs (test observation points).
    Duplicates are ignored.
    @raise Invalid_argument on environment nodes or bad ids. *)
