type edge = {
  gate : int;
  pin : int;
  src : int;
}

(* Tarjan's SCC over gate nodes.  Successors of gate g are the gates
   reading g's output. *)
let sccs c =
  let n = Circuit.n_nodes c in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (Circuit.fanouts c v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  Array.iter
    (fun g -> if index.(g) = -1 then strongconnect g)
    (Circuit.gates c);
  List.rev !components

let has_self_loop c g =
  Array.exists (fun src -> src = g) (Circuit.fanins c g)

let cyclic_gates c =
  List.concat_map
    (function
      | [ g ] -> if has_self_loop c g then [ g ] else []
      | comp -> comp)
    (sccs c)

(* DFS over gates; a fanin pin reading a node currently on the DFS stack
   is a back edge and gets cut.  Implicit C-element self-feedback is a
   semantic (not structural) loop, so it needs no cutting. *)
let feedback_edges c =
  let n = Circuit.n_nodes c in
  let colour = Array.make n 0 in
  (* 0 white, 1 on stack, 2 done *)
  let cut = ref [] in
  let rec visit g =
    colour.(g) <- 1;
    Array.iteri
      (fun pin src ->
        if not (Circuit.is_env c src) then
          if colour.(src) = 1 then cut := { gate = g; pin; src } :: !cut
          else if colour.(src) = 0 then visit src)
      (Circuit.fanins c g);
    colour.(g) <- 2
  in
  Array.iter (fun g -> if colour.(g) = 0 then visit g) (Circuit.gates c);
  List.rev !cut

let levels c ~break =
  let n = Circuit.n_nodes c in
  let is_cut g pin = List.exists (fun e -> e.gate = g && e.pin = pin) break in
  let level = Array.make n (-1) in
  Array.iter (fun env -> level.(env) <- 0) (Circuit.inputs c);
  let rec compute v =
    if level.(v) >= 0 then level.(v)
    else if Circuit.is_env c v then begin
      level.(v) <- 0;
      0
    end
    else begin
      level.(v) <- -2;
      (* mark in progress to detect remaining cycles *)
      let worst = ref 0 in
      Array.iteri
        (fun pin src ->
          if not (is_cut v pin) then begin
            if level.(src) = -2 then
              invalid_arg "Structure.levels: cycle not broken";
            worst := max !worst (compute src)
          end)
        (Circuit.fanins c v);
      level.(v) <- !worst + 1;
      level.(v)
    end
  in
  Array.iter (fun g -> ignore (compute g)) (Circuit.gates c);
  level

let longest_path c =
  let break = feedback_edges c in
  let lv = levels c ~break in
  Array.fold_left max 0 lv

let default_k c = max 8 (4 * Circuit.n_gates c)
