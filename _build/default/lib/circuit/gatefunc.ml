open Satg_logic

type t =
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Mux
  | Celem
  | Const of bool
  | Sop of Cover.t

let arity_ok t n =
  match t with
  | Buf | Not -> n = 1
  | And | Or | Nand | Nor | Xor | Xnor -> n >= 1
  | Mux -> n = 3
  | Celem -> n >= 2
  | Const _ -> n = 0
  | Sop cover -> Cover.n_vars cover = n

let is_state_holding = function
  | Celem -> true
  | Buf | Not | And | Or | Nand | Nor | Xor | Xnor | Mux | Const _ | Sop _ ->
    false

let fold_and ins = Array.for_all Fun.id ins
let fold_or ins = Array.exists Fun.id ins

let fold_parity ins =
  Array.fold_left (fun acc b -> if b then not acc else acc) false ins

let eval_bool t ~self ins =
  match t with
  | Buf -> ins.(0)
  | Not -> not ins.(0)
  | And -> fold_and ins
  | Or -> fold_or ins
  | Nand -> not (fold_and ins)
  | Nor -> not (fold_or ins)
  | Xor -> fold_parity ins
  | Xnor -> not (fold_parity ins)
  | Mux -> if ins.(0) then ins.(1) else ins.(2)
  | Celem -> if fold_and ins then true else if fold_or ins then self else false
  | Const b -> b
  | Sop cover -> Cover.eval cover ins

let tern_and ins =
  Array.fold_left Ternary.and_ Ternary.One ins

let tern_or ins =
  Array.fold_left Ternary.or_ Ternary.Zero ins

let tern_parity ins =
  Array.fold_left Ternary.xor_ Ternary.Zero ins

let eval_ternary t ~self ins =
  match t with
  | Buf -> ins.(0)
  | Not -> Ternary.not_ ins.(0)
  | And -> tern_and ins
  | Or -> tern_or ins
  | Nand -> Ternary.not_ (tern_and ins)
  | Nor -> Ternary.not_ (tern_or ins)
  | Xor -> tern_parity ins
  | Xnor -> Ternary.not_ (tern_parity ins)
  | Mux -> (
    match ins.(0) with
    | Ternary.One -> ins.(1)
    | Ternary.Zero -> ins.(2)
    | Ternary.Phi -> Ternary.lub ins.(1) ins.(2))
  | Celem ->
    (* SOP-shaped extension of  c' = AND(ins) + self * OR(ins). *)
    Ternary.or_ (tern_and ins) (Ternary.and_ self (tern_or ins))
  | Const b -> Ternary.of_bool b
  | Sop cover -> Cover.eval_ternary cover ins

let name = function
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Mux -> "MUX"
  | Celem -> "CELEM"
  | Const false -> "CONST0"
  | Const true -> "CONST1"
  | Sop _ -> "SOP"

let of_name = function
  | "BUF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "OR" -> Some Or
  | "NAND" -> Some Nand
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "MUX" -> Some Mux
  | "CELEM" | "C" -> Some Celem
  | "CONST0" -> Some (Const false)
  | "CONST1" -> Some (Const true)
  | _ -> None

let pp fmt t =
  match t with
  | Sop cover -> Format.fprintf fmt "SOP[%a]" Cover.pp cover
  | _ -> Format.pp_print_string fmt (name t)
