(** Text format for circuits (".cct").

    {v
    # comment
    circuit fig1a
    input A B
    gate a NOT B
    gate c AND a b
    celem y a c          # shorthand for gate y CELEM a c
    sop w ( a b c ) 11- --1
    output y
    initial A=0 B=1 a=1 c=0 y=0 w=0
    end
    v}

    Gate definitions may reference later gates (feedback).  The
    [initial] line assigns every gate by name; assigning an input name
    sets both the environment node and its buffer. *)

val parse_string : string -> (Circuit.t, string) result
val parse_file : string -> (Circuit.t, string) result

val to_string : Circuit.t -> string
(** Render in the same format (modulo comments); [parse_string] of the
    result reproduces the circuit. *)
