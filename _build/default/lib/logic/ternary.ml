type t =
  | Zero
  | One
  | Phi

let equal a b =
  match a, b with
  | Zero, Zero | One, One | Phi, Phi -> true
  | (Zero | One | Phi), _ -> false

let to_int = function Zero -> 0 | One -> 1 | Phi -> 2
let compare a b = Stdlib.compare (to_int a) (to_int b)
let of_bool b = if b then One else Zero

let to_bool_opt = function
  | Zero -> Some false
  | One -> Some true
  | Phi -> None

let is_binary = function Zero | One -> true | Phi -> false
let lub a b = if equal a b then a else Phi
let leq a b = equal a b || equal b Phi
let not_ = function Zero -> One | One -> Zero | Phi -> Phi

let and_ a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | Phi), (One | Phi) -> Phi

let or_ a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | Phi), (Zero | Phi) -> Phi

let xor_ a b =
  match a, b with
  | Phi, _ | _, Phi -> Phi
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let and_list vs = List.fold_left and_ One vs
let or_list vs = List.fold_left or_ Zero vs
let to_char = function Zero -> '0' | One -> '1' | Phi -> 'X'

let of_char = function
  | '0' -> Some Zero
  | '1' -> Some One
  | 'X' | 'x' | '*' -> Some Phi
  | _ -> None

let pp fmt v = Format.pp_print_char fmt (to_char v)

let vector_of_string s =
  let decode i c =
    match of_char c with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Ternary.vector_of_string: bad char %C at %d" c i)
  in
  Array.init (String.length s) (fun i -> decode i s.[i])

let vector_to_string v = String.init (Array.length v) (fun i -> to_char v.(i))
let vector_is_binary v = Array.for_all is_binary v

let vector_lub a b =
  if Array.length a <> Array.length b then
    invalid_arg "Ternary.vector_lub: length mismatch";
  Array.init (Array.length a) (fun i -> lub a.(i) b.(i))
