(* Implicants are (value, dash) pairs: [dash] bits are don't-care
   positions, [value] gives the fixed bits (0 on dashed positions).
   Variable 0 is the most significant bit, matching Cube.of_minterm. *)

module Imp = struct
  type t = int * int

  let compare = Stdlib.compare
end

module ImpSet = Set.Make (Imp)

let popcount =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0

let check_args ~n ~minterms =
  if n < 0 || n > 24 then invalid_arg "Qm: variable count out of [0, 24]";
  List.iter
    (fun m ->
      if m < 0 || m >= 1 lsl n then invalid_arg "Qm: minterm out of range")
    minterms

let cube_of_imp n (value, dash) =
  let bit_of i =
    let b = 1 lsl (n - 1 - i) in
    if dash land b <> 0 then Cube.D
    else if value land b <> 0 then Cube.T
    else Cube.F
  in
  Cube.make (Array.init n bit_of)

let imp_covers (value, dash) m = m land lnot dash = value

(* One round of pairwise merging: implicants with the same dash mask
   whose values differ in exactly one bit combine.  Returns the merged
   set and the subset of [imps] that took part in no merge. *)
let merge_round imps =
  let merged = Hashtbl.create 64 in
  let used = Hashtbl.create 64 in
  let arr = Array.of_list (ImpSet.elements imps) in
  let k = Array.length arr in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let (v1, d1) = arr.(i) and (v2, d2) = arr.(j) in
      if d1 = d2 then begin
        let diff = v1 lxor v2 in
        if diff <> 0 && diff land (diff - 1) = 0 then begin
          Hashtbl.replace merged (v1 land lnot diff, d1 lor diff) ();
          Hashtbl.replace used arr.(i) ();
          Hashtbl.replace used arr.(j) ()
        end
      end
    done
  done;
  let next = Hashtbl.fold (fun imp () acc -> ImpSet.add imp acc) merged ImpSet.empty in
  let primes =
    ImpSet.filter (fun imp -> not (Hashtbl.mem used imp)) imps
  in
  (next, primes)

let primes_imp ~on ~dc =
  let initial =
    List.fold_left
      (fun acc m -> ImpSet.add (m, 0) acc)
      ImpSet.empty (on @ dc)
  in
  let rec loop current primes =
    if ImpSet.is_empty current then primes
    else
      let next, stuck = merge_round current in
      loop next (ImpSet.union primes stuck)
  in
  loop initial ImpSet.empty

let primes ~n ~on ~dc =
  check_args ~n ~minterms:(on @ dc);
  primes_imp ~on ~dc |> ImpSet.elements |> List.map (cube_of_imp n)

(* Cover selection: essential primes first, then repeatedly the prime
   covering the most still-uncovered on-set minterms (ties broken by
   fewer literals, i.e. more dashes). *)
let select_cover prime_list on =
  let uncovered = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace uncovered m ()) on;
  let covering m = List.filter (fun p -> imp_covers p m) prime_list in
  let chosen = ref [] in
  let take p =
    chosen := p :: !chosen;
    Hashtbl.iter
      (fun m () -> if imp_covers p m then Hashtbl.remove uncovered m)
      (Hashtbl.copy uncovered)
  in
  (* Essentials. *)
  List.iter
    (fun m ->
      if Hashtbl.mem uncovered m then
        match covering m with
        | [ p ] -> take p
        | [] | _ :: _ :: _ -> ())
    on;
  (* Greedy remainder. *)
  let gain p =
    Hashtbl.fold
      (fun m () acc -> if imp_covers p m then acc + 1 else acc)
      uncovered 0
  in
  while Hashtbl.length uncovered > 0 do
    let best =
      List.fold_left
        (fun best p ->
          let g = gain p in
          match best with
          | None -> if g > 0 then Some (p, g) else None
          | Some (_, gb) ->
            if g > gb || (g = gb && g > 0 && popcount (snd p) > 0) then
              if g > gb then Some (p, g) else best
            else best)
        None prime_list
    in
    match best with
    | Some (p, _) -> take p
    | None ->
      (* Unreachable: every on-set minterm is covered by some prime. *)
      assert false
  done;
  List.rev !chosen

let minimize ~n ~on ~dc =
  check_args ~n ~minterms:(on @ dc);
  let on = List.sort_uniq Stdlib.compare on in
  if on = [] then Cover.empty n
  else
    let prime_list = ImpSet.elements (primes_imp ~on ~dc) in
    let selected = select_cover prime_list on in
    Cover.make ~n (List.map (cube_of_imp n) selected)

let minimize_f ~n f =
  let on = ref [] and dc = ref [] in
  for m = (1 lsl n) - 1 downto 0 do
    match f m with
    | Some true -> on := m :: !on
    | Some false -> ()
    | None -> dc := m :: !dc
  done;
  minimize ~n ~on:!on ~dc:!dc
