(** Three-valued (ternary) logic in the style of Eichelberger's hazard
    analysis.  The third value {!Phi} denotes an uncertain or changing
    signal; it is the top of the information ordering
    [Zero <= Phi], [One <= Phi]. *)

type t =
  | Zero
  | One
  | Phi  (** uncertain / in transition *)

val equal : t -> t -> bool
val compare : t -> t -> int

val of_bool : bool -> t

val to_bool_opt : t -> bool option
(** [to_bool_opt v] is [Some b] when [v] is binary, [None] for {!Phi}. *)

val is_binary : t -> bool

val lub : t -> t -> t
(** Least upper bound in the uncertainty lattice: [lub a b] is [a] when
    [a = b] and {!Phi} otherwise. *)

val leq : t -> t -> bool
(** Information ordering: [leq a b] iff [a = b] or [b = Phi]. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor_ : t -> t -> t

val and_list : t list -> t
val or_list : t list -> t

val to_char : t -> char
(** ['0'], ['1'] or ['X']. *)

val of_char : char -> t option
(** Inverse of {!to_char}; also accepts ['x'] and ['*'] for {!Phi}. *)

val pp : Format.formatter -> t -> unit

val vector_of_string : string -> t array
(** [vector_of_string "10X"] is [[|One; Zero; Phi|]].
    @raise Invalid_argument on any other character. *)

val vector_to_string : t array -> string

val vector_is_binary : t array -> bool

val vector_lub : t array -> t array -> t array
(** Pointwise {!lub}.  @raise Invalid_argument on length mismatch. *)
