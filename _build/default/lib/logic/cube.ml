type lit =
  | F
  | T
  | D

type t = lit array

let make lits = Array.copy lits
let universe n = Array.make n D

let of_string s =
  let decode i = function
    | '0' -> F
    | '1' -> T
    | '-' -> D
    | c -> invalid_arg (Printf.sprintf "Cube.of_string: bad char %C at %d" c i)
  in
  Array.init (String.length s) (fun i -> decode i s.[i])

let lit_to_char = function F -> '0' | T -> '1' | D -> '-'
let to_string c = String.init (Array.length c) (fun i -> lit_to_char c.(i))
let size = Array.length
let lit c i = c.(i)
let lits c = Array.copy c

let of_minterm n m =
  assert (n >= 0 && n <= Sys.int_size - 2);
  Array.init n (fun i -> if m land (1 lsl (n - 1 - i)) <> 0 then T else F)

let num_literals c =
  Array.fold_left (fun acc l -> if l = D then acc else acc + 1) 0 c

let contains_vector c v =
  assert (Array.length v = Array.length c);
  let ok i l =
    match l with F -> not v.(i) | T -> v.(i) | D -> true
  in
  let rec loop i = i >= Array.length c || (ok i c.(i) && loop (i + 1)) in
  loop 0

let contains_minterm c m =
  let n = Array.length c in
  let bit i = m land (1 lsl (n - 1 - i)) <> 0 in
  let ok i l = match l with F -> not (bit i) | T -> bit i | D -> true in
  let rec loop i = i >= n || (ok i c.(i) && loop (i + 1)) in
  loop 0

let covers a b =
  assert (Array.length a = Array.length b);
  let ok la lb =
    match la, lb with
    | D, _ -> true
    | F, F | T, T -> true
    | F, (T | D) | T, (F | D) -> false
  in
  let rec loop i = i >= Array.length a || (ok a.(i) b.(i) && loop (i + 1)) in
  loop 0

let intersect a b =
  assert (Array.length a = Array.length b);
  let n = Array.length a in
  let out = Array.make n D in
  let rec loop i =
    if i >= n then Some out
    else
      match a.(i), b.(i) with
      | F, T | T, F -> None
      | D, l | l, D ->
        out.(i) <- l;
        loop (i + 1)
      | F, F ->
        out.(i) <- F;
        loop (i + 1)
      | T, T ->
        out.(i) <- T;
        loop (i + 1)
  in
  loop 0

let supercube a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> if a.(i) = b.(i) then a.(i) else D)

let cofactor c ~var ~value =
  match c.(var), value with
  | F, true | T, false -> None
  | (F | T | D), _ ->
    let out = Array.copy c in
    out.(var) <- D;
    Some out

let eval_ternary c v =
  assert (Array.length v = Array.length c);
  let rec loop i acc =
    if i >= Array.length c || acc = Ternary.Zero then acc
    else
      let acc =
        match c.(i) with
        | D -> acc
        | T -> Ternary.and_ acc v.(i)
        | F -> Ternary.and_ acc (Ternary.not_ v.(i))
      in
      loop (i + 1) acc
  in
  loop 0 Ternary.One

let minterms c =
  let n = Array.length c in
  let rec expand i acc =
    if i >= n then acc
    else
      let acc =
        match c.(i) with
        | F -> acc
        | T -> List.map (fun m -> m lor (1 lsl (n - 1 - i))) acc
        | D ->
          List.concat_map
            (fun m -> [ m; m lor (1 lsl (n - 1 - i)) ])
            acc
      in
      expand (i + 1) acc
  in
  List.sort Stdlib.compare (expand 0 [ 0 ])

let equal a b = a = b
let compare = Stdlib.compare
let pp fmt c = Format.pp_print_string fmt (to_string c)
