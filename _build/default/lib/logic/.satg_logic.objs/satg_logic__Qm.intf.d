lib/logic/qm.mli: Cover Cube
