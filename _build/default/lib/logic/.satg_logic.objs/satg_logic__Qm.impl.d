lib/logic/qm.ml: Array Cover Cube Hashtbl List Set Stdlib
