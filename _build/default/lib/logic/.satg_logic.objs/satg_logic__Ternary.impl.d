lib/logic/ternary.ml: Array Format List Printf Stdlib String
