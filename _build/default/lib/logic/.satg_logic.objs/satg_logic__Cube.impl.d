lib/logic/cube.ml: Array Format List Printf Stdlib String Sys Ternary
