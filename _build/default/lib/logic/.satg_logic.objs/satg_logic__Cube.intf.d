lib/logic/cube.mli: Format Ternary
