lib/logic/cover.ml: Cube Format List Printf Stdlib Ternary
