(** Sum-of-products covers: a cover is a set of {!Cube.t} over a common
    variable count and denotes the union of its cubes. *)

type t

val make : n:int -> Cube.t list -> t
(** @raise Invalid_argument if some cube has a different width. *)

val empty : int -> t
(** The constant-0 function over [n] variables. *)

val tautology : int -> t
(** The constant-1 function over [n] variables. *)

val n_vars : t -> int
val cubes : t -> Cube.t list
val cube_count : t -> int
val is_empty : t -> bool

val eval : t -> bool array -> bool
val eval_minterm : t -> int -> bool

val eval_ternary : t -> Ternary.t array -> Ternary.t
(** Ternary OR over the cubes' ternary evaluations (the natural
    monotone extension of the SOP form, used in hazard analysis). *)

val minterms : t -> int list
(** Sorted, de-duplicated minterm list (exponential; small covers
    only). *)

val add_cube : t -> Cube.t -> t

val irredundant : t -> t
(** Remove cubes covered by single other cubes (cheap syntactic
    filter, not a full irredundancy check). *)

val equal_semantics : t -> t -> bool
(** Exhaustive semantic equality; exponential in [n_vars], intended for
    tests and small synthesis instances. *)

val pp : Format.formatter -> t -> unit
