type t = {
  n : int;
  cubes : Cube.t list;
}

let make ~n cubes =
  List.iter
    (fun c ->
      if Cube.size c <> n then
        invalid_arg
          (Printf.sprintf "Cover.make: cube %s has width %d, expected %d"
             (Cube.to_string c) (Cube.size c) n))
    cubes;
  { n; cubes }

let empty n = { n; cubes = [] }
let tautology n = { n; cubes = [ Cube.universe n ] }
let n_vars t = t.n
let cubes t = t.cubes
let cube_count t = List.length t.cubes
let is_empty t = t.cubes = []
let eval t v = List.exists (fun c -> Cube.contains_vector c v) t.cubes
let eval_minterm t m = List.exists (fun c -> Cube.contains_minterm c m) t.cubes

let eval_ternary t v =
  let rec loop acc = function
    | [] -> acc
    | c :: rest ->
      let acc = Ternary.or_ acc (Cube.eval_ternary c v) in
      if acc = Ternary.One then acc else loop acc rest
  in
  loop Ternary.Zero t.cubes

let minterms t =
  List.concat_map Cube.minterms t.cubes
  |> List.sort_uniq Stdlib.compare

let add_cube t c =
  if Cube.size c <> t.n then invalid_arg "Cover.add_cube: width mismatch";
  { t with cubes = c :: t.cubes }

let irredundant t =
  let rec filter kept = function
    | [] -> List.rev kept
    | c :: rest ->
      let covered_elsewhere =
        List.exists (fun c' -> Cube.covers c' c) rest
        || List.exists (fun c' -> Cube.covers c' c) kept
      in
      if covered_elsewhere then filter kept rest else filter (c :: kept) rest
  in
  { t with cubes = filter [] t.cubes }

let equal_semantics a b =
  a.n = b.n
  &&
  let rec loop m =
    m >= 1 lsl a.n || (eval_minterm a m = eval_minterm b m && loop (m + 1))
  in
  loop 0

let pp fmt t =
  if t.cubes = [] then Format.pp_print_string fmt "<empty>"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " + ")
      Cube.pp fmt t.cubes
