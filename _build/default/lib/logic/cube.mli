(** Cubes (products of literals) over a fixed set of [n] Boolean
    variables.  A cube assigns each variable one of {!lit}; the cube
    denotes the set of minterms compatible with all its literals. *)

type lit =
  | F  (** negative literal: variable must be 0 *)
  | T  (** positive literal: variable must be 1 *)
  | D  (** don't-care: variable unconstrained *)

type t
(** Immutable cube over a fixed number of variables. *)

val make : lit array -> t
(** [make lits] builds a cube; the array is copied. *)

val universe : int -> t
(** The cube with [n] don't-cares (the full Boolean space). *)

val of_string : string -> t
(** ['0'] = {!F}, ['1'] = {!T}, ['-'] = {!D}.
    @raise Invalid_argument on any other character. *)

val to_string : t -> string
val size : t -> int
val lit : t -> int -> lit
val lits : t -> lit array

val of_minterm : int -> int -> t
(** [of_minterm n m] is the full cube for minterm [m] over [n]
    variables; variable 0 is the most significant bit of [m]. *)

val num_literals : t -> int
(** Number of non-don't-care positions. *)

val contains_vector : t -> bool array -> bool
val contains_minterm : t -> int -> bool

val covers : t -> t -> bool
(** [covers a b] iff every minterm of [b] is a minterm of [a]. *)

val intersect : t -> t -> t option
(** [None] when the cubes share no minterm. *)

val supercube : t -> t -> t
(** Smallest cube containing both arguments. *)

val cofactor : t -> var:int -> value:bool -> t option
(** Cube restricted to [var = value]; [None] if incompatible.  The
    resulting cube still ranges over all [n] variables with [var]
    forced to don't-care. *)

val eval_ternary : t -> Ternary.t array -> Ternary.t
(** Ternary AND of the cube's literals against a ternary input vector. *)

val minterms : t -> int list
(** All minterms of the cube (exponential in don't-cares). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
