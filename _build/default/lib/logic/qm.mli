(** Two-level logic minimization by the Quine–McCluskey procedure with
    essential-prime extraction and a greedy cover for the remainder.
    Exact prime generation, heuristic covering — adequate for the
    controller-sized functions produced by STG synthesis. *)

val primes : n:int -> on:int list -> dc:int list -> Cube.t list
(** All prime implicants of the (on ∪ dc) set over [n] variables. *)

val minimize : n:int -> on:int list -> dc:int list -> Cover.t
(** A cover of [on] using only minterms in [on ∪ dc].
    @raise Invalid_argument if [n < 0], [n > 24], or a minterm is out of
    range. *)

val minimize_f : n:int -> (int -> bool option) -> Cover.t
(** [minimize_f ~n f] minimizes the function whose value on minterm [m]
    is [f m]; [None] marks a don't-care. *)
