lib/sg/explicit.ml: Array Async_sim Circuit Cssg Hashtbl List Option Queue Satg_circuit Satg_sim Structure
