lib/sg/symbolic.ml: Array Bdd Circuit Cover Cssg Cube Fun Gatefunc Hashtbl List Satg_bdd Satg_circuit Satg_logic Stdlib Structure
