lib/sg/cssg.mli: Circuit Format Satg_circuit
