lib/sg/symbolic.mli: Bdd Circuit Cssg Satg_bdd Satg_circuit
