lib/sg/explicit.mli: Circuit Cssg Satg_circuit
