lib/sg/cssg.ml: Array Buffer Circuit Format Hashtbl List Printf Queue Satg_circuit String
