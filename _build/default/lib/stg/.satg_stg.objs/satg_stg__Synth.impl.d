lib/stg/synth.ml: Array Circuit Cover Cube Fun Gatefunc Hashtbl List Option Printf Qm Satg_circuit Satg_logic Stg
