lib/stg/stg.ml: Array Buffer Fun Hashtbl List Printf Queue String
