lib/stg/synth.mli: Circuit Satg_circuit Satg_logic Stg
