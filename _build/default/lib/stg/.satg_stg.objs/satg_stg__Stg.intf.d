lib/stg/stg.mli:
