open Satg_logic
open Satg_circuit

let covers_with sg select =
  let t = sg.Stg.stg in
  let n_sig = Array.length t.Stg.signals in
  let on, dc = Stg.next_state_tables sg in
  List.filteri (fun s _ -> not (Stg.is_input t s)) (Array.to_list t.Stg.signals)
  |> List.mapi (fun i nm ->
         let s = t.Stg.n_inputs + i in
         (nm, select ~n:n_sig ~on:on.(s) ~dc))

let next_state_covers sg = covers_with sg Qm.minimize

(* Maximally-redundant cover: every prime implicant of (on, dc) that
   covers at least one on-set minterm.  This is the classic
   fully-hazard-free two-level cover; its redundant cubes are what make
   some of the Table 2 circuits poorly testable. *)
let all_primes_cover ~n ~on ~dc =
  if on = [] then Cover.empty n
  else
    let useful p = List.exists (fun m -> Cube.contains_minterm p m) on in
    Cover.make ~n (List.filter useful (Qm.primes ~n ~on ~dc))

let prime_covers sg = covers_with sg all_primes_cover

(* A two-level cover can glitch on a single-input change only when two
   of its cubes oppose in some literal (one requires a signal high, the
   other low).  These are the functions SIS's hazard-free synthesis has
   to patch with redundant cubes. *)
let has_opposing_pair cover =
  let cubes = Array.of_list (Cover.cubes cover) in
  let opposing c1 c2 =
    let l1 = Cube.lits c1 and l2 = Cube.lits c2 in
    let rec scan i =
      i < Array.length l1
      && ((match (l1.(i), l2.(i)) with
          | Cube.T, Cube.F | Cube.F, Cube.T -> true
          | _ -> false)
         || scan (i + 1))
    in
    scan 0
  in
  let n = Array.length cubes in
  let rec pairs i j =
    if i >= n then false
    else if j >= n then pairs (i + 1) (i + 2)
    else opposing cubes.(i) cubes.(j) || pairs i (j + 1)
  in
  pairs 0 1

(* Hazard-driven redundancy (the Table 2 style): hazard-prone functions
   get their full prime cover, unate-ish ones keep the minimum. *)
let hazard_free_covers sg =
  covers_with sg (fun ~n ~on ~dc ->
      let minimal = Qm.minimize ~n ~on ~dc in
      if has_opposing_pair minimal then all_primes_cover ~n ~on ~dc
      else minimal)

(* Columns actually referenced by a cover, ascending. *)
let support cover =
  let n = Cover.n_vars cover in
  let used = Array.make n false in
  List.iter
    (fun cube ->
      Array.iteri (fun i l -> if l <> Cube.D then used.(i) <- true) (Cube.lits cube))
    (Cover.cubes cover);
  List.filter (fun i -> used.(i)) (List.init n Fun.id)

(* Re-express a cover over only its support columns. *)
let shrink cover cols =
  let cols = Array.of_list cols in
  let n' = Array.length cols in
  Cover.make ~n:n'
    (List.map
       (fun cube ->
         let lits = Cube.lits cube in
         Cube.make (Array.map (fun c -> lits.(c)) cols))
       (Cover.cubes cover))

let prepare stg =
  match Stg.explore stg with
  | Error m -> Error (Printf.sprintf "%s: %s" stg.Stg.name m)
  | Ok sg -> (
    match Stg.check_csc sg with
    | Error m -> Error (Printf.sprintf "%s: %s" stg.Stg.name m)
    | Ok () -> Ok sg)

(* Shared scaffolding: builder with input buffers and declared output
   gates; returns the node id of every signal. *)
let scaffold stg b =
  let t = stg in
  let signal_node = Array.make (Array.length t.Stg.signals) (-1) in
  Array.iteri
    (fun s nm ->
      if Stg.is_input t s then
        signal_node.(s) <- Circuit.Builder.add_input b nm)
    t.Stg.signals;
  Array.iteri
    (fun s nm ->
      if not (Stg.is_input t s) then
        signal_node.(s) <- Circuit.Builder.declare_gate b ~name:nm)
    t.Stg.signals;
  signal_node

let initial_state_of circuit stg signal_node =
  (* Environment, buffers and signal gates carry the STG initial values;
     auxiliary gates (decomposition internals) are settled by sweeping
     evaluations to a fixpoint with the signal nodes held. *)
  let n = Circuit.n_nodes circuit in
  let st = Array.make n false in
  let held = Array.make n false in
  Array.iteri
    (fun s v ->
      let node = signal_node.(s) in
      st.(node) <- v;
      held.(node) <- true;
      if Stg.is_input stg s then begin
        (* set the env node feeding the buffer *)
        match Circuit.find_node circuit (Circuit.node_name circuit node ^ "$env") with
        | Some env ->
          st.(env) <- v;
          held.(env) <- true
        | None -> ()
      end)
    stg.Stg.init_values;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= Circuit.n_gates circuit + 1 do
    changed := false;
    incr rounds;
    Array.iter
      (fun gid ->
        if not held.(gid) then begin
          let v = Circuit.eval_gate circuit st gid in
          if v <> st.(gid) then begin
            st.(gid) <- v;
            changed := true
          end
        end)
      (Circuit.gates circuit)
  done;
  st

let finalize_with_initial b stg signal_node =
  match Circuit.Builder.finalize b with
  | exception Invalid_argument m -> Error m
  | circuit -> (
    let st = initial_state_of circuit stg signal_node in
    match Circuit.with_initial circuit st with
    | c -> Ok c
    | exception Invalid_argument m ->
      Error (Printf.sprintf "%s (initial marking excites an output?)" m))

(* --- complex-gate backend ------------------------------------------------ *)

let complex_gate stg =
  match prepare stg with
  | Error _ as e -> e
  | Ok sg ->
    let covers = next_state_covers sg in
    let b = Circuit.Builder.create stg.Stg.name in
    let signal_node = scaffold stg b in
    List.iter
      (fun (nm, cover) ->
        let s = Option.get (Stg.signal_index stg nm) in
        let gate = signal_node.(s) in
        if Cover.is_empty cover then
          Circuit.Builder.define_gate b gate (Gatefunc.Const false) []
        else
          let cols = support cover in
          if cols = [] then
            (* tautology: reachable codes make it constant 1 *)
            Circuit.Builder.define_gate b gate (Gatefunc.Const true) []
          else
            let small = shrink cover cols in
            let fanin = List.map (fun c -> signal_node.(c)) cols in
            Circuit.Builder.define_gate b gate (Gatefunc.Sop small) fanin)
      covers;
    Array.iteri
      (fun s nm ->
        ignore nm;
        if not (Stg.is_input stg s) then
          Circuit.Builder.mark_output b signal_node.(s))
      stg.Stg.signals;
    finalize_with_initial b stg signal_node

(* --- consensus (redundant covers) ---------------------------------------- *)

let consensus_of c1 c2 =
  let l1 = Cube.lits c1 and l2 = Cube.lits c2 in
  let n = Array.length l1 in
  let opposing = ref [] in
  for i = 0 to n - 1 do
    match (l1.(i), l2.(i)) with
    | Cube.T, Cube.F | Cube.F, Cube.T -> opposing := i :: !opposing
    | _ -> ()
  done;
  match !opposing with
  | [ v ] ->
    let merged =
      Array.init n (fun i ->
          if i = v then Cube.D
          else
            match (l1.(i), l2.(i)) with
            | Cube.D, l | l, Cube.D -> l
            | l, _ -> l)
    in
    (* The merge is only a consensus when the non-opposing literals are
       compatible, which the [opposing] scan guarantees. *)
    Some (Cube.make merged)
  | _ -> None

let add_consensus cover =
  let cubes = Cover.cubes cover in
  let extra = ref [] in
  let covered cube =
    List.exists (fun c -> Cube.covers c cube) cubes
    || List.exists (fun c -> Cube.covers c cube) !extra
  in
  List.iteri
    (fun i c1 ->
      List.iteri
        (fun j c2 ->
          if j > i then
            match consensus_of c1 c2 with
            | Some c when not (covered c) -> extra := c :: !extra
            | Some _ | None -> ())
        cubes)
    cubes;
  List.fold_left Cover.add_cube cover (List.rev !extra)

(* --- decomposed (SIS-like) backend ---------------------------------------- *)

let decomposed ?(redundant = false) stg =
  match prepare stg with
  | Error _ as e -> e
  | Ok sg ->
    let covers = if redundant then hazard_free_covers sg else next_state_covers sg in
    let b = Circuit.Builder.create (stg.Stg.name ^ if redundant then "_hf" else "_2l") in
    let signal_node = scaffold stg b in
    (* One shared inverter per negatively-referenced signal. *)
    let inverters = Hashtbl.create 16 in
    let inv s =
      match Hashtbl.find_opt inverters s with
      | Some id -> id
      | None ->
        let id =
          Circuit.Builder.add_gate b
            ~name:(Printf.sprintf "n_%s" stg.Stg.signals.(s))
            Gatefunc.Not
            [ signal_node.(s) ]
        in
        Hashtbl.replace inverters s id;
        id
    in
    List.iter
      (fun (nm, cover) ->
        let s = Option.get (Stg.signal_index stg nm) in
        let root = signal_node.(s) in
        if Cover.is_empty cover then
          Circuit.Builder.define_gate b root (Gatefunc.Const false) []
        else begin
          (* Terms: left-leaning chains of 2-input ANDs. *)
          let term_nodes =
            List.mapi
              (fun ti cube ->
                let lit_nodes =
                  List.concat
                    (List.mapi
                       (fun v l ->
                         match l with
                         | Cube.D -> []
                         | Cube.T -> [ signal_node.(v) ]
                         | Cube.F -> [ inv v ])
                       (Array.to_list (Cube.lits cube)))
                in
                match lit_nodes with
                | [] ->
                  (* universal cube: constant 1 term *)
                  [ Circuit.Builder.add_gate b
                      ~name:(Printf.sprintf "%s_t%d_one" nm ti)
                      (Gatefunc.Const true) [] ]
                  |> List.hd
                | [ single ] -> single
                | first :: rest ->
                  let _, final =
                    List.fold_left
                      (fun (j, acc) lit ->
                        ( j + 1,
                          Circuit.Builder.add_gate b
                            ~name:(Printf.sprintf "%s_t%d_a%d" nm ti j)
                            Gatefunc.And [ acc; lit ] ))
                      (0, first) rest
                  in
                  final)
              (Cover.cubes cover)
          in
          match term_nodes with
          | [] -> assert false
          | [ single ] ->
            Circuit.Builder.define_gate b root Gatefunc.Buf [ single ]
          | first :: second :: rest ->
            (* Chain all but the last OR into auxiliary gates; the final
               OR is the signal gate itself. *)
            let rec chain j acc = function
              | [] -> (acc, None)
              | [ last ] -> (acc, Some last)
              | x :: rest ->
                let g =
                  Circuit.Builder.add_gate b
                    ~name:(Printf.sprintf "%s_o%d" nm j)
                    Gatefunc.Or [ acc; x ]
                in
                chain (j + 1) g rest
            in
            let acc, last = chain 0 first (second :: rest) in
            (match last with
            | Some last -> Circuit.Builder.define_gate b root Gatefunc.Or [ acc; last ]
            | None -> assert false)
        end)
      covers;
    Array.iteri
      (fun s _nm ->
        if not (Stg.is_input stg s) then
          Circuit.Builder.mark_output b signal_node.(s))
      stg.Stg.signals;
    finalize_with_initial b stg signal_node
