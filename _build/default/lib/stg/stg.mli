(** Signal Transition Graphs: Petri nets whose transitions are signal
    edges ([a+] / [a-]), the standard specification formalism for
    asynchronous controllers (and the input language of Petrify, which
    synthesized the paper's benchmarks).

    The text format is a dialect of the astg [.g] format:

    {v
    .model xyz
    .inputs a b
    .outputs c
    .graph
    a+ c+          # arc(s): a+ -> implicit place -> c+
    c+ b+ a-       # one implicit place per target
    p0 a+          # explicit place p0 -> a+
    b+ p0
    .marking { <a+,c+> p0 }
    .init a=0 b=0 c=0
    .end
    v}

    Transition labels may carry instance suffixes ([a+/2]).  Initial
    signal values are explicit ([.init]); every signal must be
    assigned. *)

type dir =
  | Rise
  | Fall

type transition = {
  signal : int;  (** index into {!signals} *)
  dir : dir;
  label : string;  (** e.g. "a+/2" *)
}

type place = {
  pname : string;
  pre : int list;  (** transitions producing tokens here *)
  post : int list;  (** transitions consuming tokens *)
}

type t = {
  name : string;
  signals : string array;  (** inputs first, then outputs *)
  n_inputs : int;
  transitions : transition array;
  places : place array;
  marking : int array;  (** initial tokens per place *)
  init_values : bool array;  (** per signal *)
}

val input_signals : t -> string list
val output_signals : t -> string list
val is_input : t -> int -> bool
val signal_index : t -> string -> int option

val parse_string : string -> (t, string) result
val parse_file : string -> (t, string) result
val to_string : t -> string

(** {1 Token-game semantics} *)

val enabled : t -> int array -> int list
(** Transitions enabled in a marking. *)

val fire : t -> int array -> int -> int array
(** Fire a transition (assumed enabled); returns the new marking. *)

(** {1 Reachability / state graph} *)

type sg_state = {
  mark : int array;
  values : bool array;  (** signal values in this state *)
}

type sg = {
  stg : t;
  states : sg_state array;
  excited : bool array array;
      (** [excited.(s).(sig)]: some transition of [sig] enabled in
          state [s] *)
  initial_state : int;
}

val explore : ?bound:int -> t -> (sg, string) result
(** Full reachability with consistency checking (a [+] transition may
    only fire when the signal is 0, and vice versa) and boundedness
    checking ([bound] tokens per place, default 2).  Errors mention the
    offending transition. *)

val check_csc : sg -> (unit, string) result
(** Complete State Coding: any two reachable states with identical
    codes must agree on the excitation of every {e output} signal. *)

val next_state_tables : sg -> int list array * int list
(** [(on, dc)]: for every signal [s], [on.(s)] lists the minterms (over
    the signal code, signal 0 = MSB) where the next-state function of
    [s] is 1; [dc] is the shared don't-care list (codes never reached).
    Meaningful only if {!check_csc} passed.
    @raise Invalid_argument beyond 20 signals. *)

val to_dot : t -> string
(** Graphviz rendering of the Petri net: transitions as boxes (inputs
    grey), places as circles (implicit single-arc places elided into
    direct edges), initial tokens as bullet labels. *)

val check_output_persistency : sg -> (unit, string) result
(** Speed-independence prerequisite: no enabled {e output} transition
    may be disabled by firing another transition (of a different
    signal).  A violating STG specifies behaviour no delay-insensitive
    gate implementation can exhibit deterministically. *)
