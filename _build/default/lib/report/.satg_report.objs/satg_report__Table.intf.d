lib/report/table.mli:
