(** Small circuits reproducing the paper's illustrative figures.

    The netlists are reconstructions with the same observable
    behaviour as the figures (the paper prints waveform-level traces,
    not complete netlists): {!fig1a} shows non-confluence of the
    settling state, {!fig1b} shows oscillation, {!celem_handshake} is a
    well-behaved speed-independent fragment whose TCSG equals its CSSG
    (figure 2 walkthrough). *)

open Satg_circuit

val fig1a : unit -> Circuit.t
(** Inputs [A B]; an AND gate [c] feeds a set-dominant latch [y].
    From the reset state (A,B) = (0,1), applying (1,0) races the
    rising [a] against the falling [b]: if [a] wins, a pulse on [c]
    sets [y].  Two stable outcomes — non-confluent. *)

val fig1b : unit -> Circuit.t
(** Input [A]; [c = NAND(a, d)], [d = BUF(c)].  Raising [A]
    from the reset state starts the oscillation [c- d- c+ d+ ...]. *)

val celem_handshake : unit -> Circuit.t
(** Inputs [A B]; output [c = CELEM(a, b)].  Every input vector is
    valid from every stable state: the CSSG keeps the full TCSG. *)

val mutex_latch : unit -> Circuit.t
(** Inputs [R S]; cross-coupled NOR latch with outputs [Q QB].  Has
    both valid vectors and an invalid one ((1,1) -> (0,0) races). *)
