lib/bench_circuits/figures.ml: Parser Satg_circuit
