lib/bench_circuits/suite.ml: Lazy List Printf Satg_stg Stg Synth
