lib/bench_circuits/figures.mli: Circuit Satg_circuit
