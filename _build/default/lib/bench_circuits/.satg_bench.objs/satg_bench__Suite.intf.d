lib/bench_circuits/suite.mli: Circuit Satg_circuit Satg_stg Stg
