open Satg_circuit

let parse_exn text =
  match Parser.parse_string text with
  | Ok c -> c
  | Error m -> invalid_arg ("Figures: bad builtin circuit: " ^ m)

let fig1a () =
  parse_exn
    {|circuit fig1a
input A B
gate c AND A B
sop y ( c y ) 1- -1     # set-dominant latch: y = c + y
output y
initial A=0 B=1 c=0 y=0
end|}

let fig1b () =
  parse_exn
    {|circuit fig1b
input A
gate c NAND A d
gate d BUF c
output d
initial A=0 c=1 d=1
end|}

let celem_handshake () =
  parse_exn
    {|circuit celem_handshake
input A B
celem c A B
output c
initial A=0 B=0 c=0
end|}

let mutex_latch () =
  parse_exn
    {|circuit mutex_latch
input R S
gate Q NOR R QB
gate QB NOR S Q
output Q QB
initial R=0 S=0 Q=1 QB=0
end|}
