(** The full ATPG pipeline (paper §2): CSSG abstraction, random TPG,
    three-phase deterministic ATPG, and fault simulation of every found
    test against the remaining faults. *)

open Satg_circuit
open Satg_fault
open Satg_sg

type config = {
  k : int option;  (** test-cycle budget; [None] = default heuristic *)
  enable_random : bool;
  enable_fault_sim : bool;
  symbolic_justification : bool;
      (** justify through the BDD engine instead of explicit BFS *)
  random : Random_tpg.config;
  three_phase : Three_phase.config;
}

val default_config : config

type result = {
  circuit : Circuit.t;
  cssg : Cssg.t;
  outcomes : Testset.outcome list;  (** in input fault order *)
  cpu_seconds : float;
}

val run : ?config:config -> ?cssg:Cssg.t -> Circuit.t -> faults:Fault.t list -> result
(** [cssg] lets callers reuse a prebuilt graph (e.g. across the two
    fault universes of one benchmark). *)

val total : result -> int
val detected : result -> int

val detected_by : result -> Testset.phase -> int
(** Faults whose first detection came from the given phase. *)

val coverage_pct : result -> float
val undetected_faults : result -> Fault.t list
val pp_summary : Format.formatter -> result -> unit
